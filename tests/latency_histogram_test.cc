#include "common/latency_histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace stardust {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.TotalNanos(), 0u);
  EXPECT_EQ(h.MeanNanos(), 0.0);
  EXPECT_EQ(h.PercentileNanos(0.5), 0u);
}

TEST(LatencyHistogramTest, BucketsArePowersOfTwo) {
  LatencyHistogram h;
  h.Record(0);     // bucket 0: [0, 2)
  h.Record(1);     // bucket 0
  h.Record(2);     // bucket 1: [2, 4)
  h.Record(3);     // bucket 1
  h.Record(1024);  // bucket 10: [1024, 2048)
  h.Record(2047);  // bucket 10
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(10), 2u);
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_EQ(h.TotalNanos(), 0u + 1 + 2 + 3 + 1024 + 2047);
}

TEST(LatencyHistogramTest, OverflowSamplesLandInTheLastBucket) {
  LatencyHistogram h;
  h.Record(~std::uint64_t{0});
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(h.Count(), 1u);
}

TEST(LatencyHistogramTest, PercentilesAreConservativeUpperBounds) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.Record(100);    // bucket [64, 128)
  for (int i = 0; i < 10; ++i) h.Record(10000);  // bucket [8192, 16384)
  EXPECT_EQ(h.PercentileNanos(0.50), 128u);
  EXPECT_EQ(h.PercentileNanos(0.90), 128u);
  EXPECT_EQ(h.PercentileNanos(0.99), 16384u);
  EXPECT_EQ(h.PercentileNanos(1.00), 16384u);
  EXPECT_NEAR(h.MeanNanos(), (90 * 100.0 + 10 * 10000.0) / 100.0, 1e-9);
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.TotalNanos(), 0u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram h;
  const int threads = 4;
  const int per_thread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < per_thread; ++i) {
        h.Record(static_cast<std::uint64_t>(i % 4096));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.Count(),
            static_cast<std::uint64_t>(threads) * per_thread);
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    bucket_sum += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_sum, h.Count());
}

}  // namespace
}  // namespace stardust
