// Tests for the continuous-query subsystem (src/query + engine wiring):
// registry validation/versioning, checkpoint round trips, and the
// flagship integration property — one IngestEngine serving all three
// query classes of the paper concurrently against live multi-producer
// ingestion, with the hits arriving through the alert bus.
#include "query/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "query/sinks.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

// Fleet (aggregate) configuration: SUM monitoring, base window 10.
StardustConfig AggregateConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 4;
  config.history = 200;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

// Online unit-sphere DWT core for pattern queries (Algorithm 3).
StardustConfig PatternCoreConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 4;
  config.r_max = 8.0;
  config.base_window = 8;
  config.num_levels = 2;
  config.history = 1024;
  config.box_capacity = 1;
  config.update_period = 1;
  config.index_features = true;
  return config;
}

// Batch z-normalized DWT core for correlation queries (T == W, c == 1).
StardustConfig CorrelationCoreConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = 8;
  config.num_levels = 2;
  config.history = 1024;
  config.box_capacity = 1;
  config.update_period = 8;  // T == W: batch algorithm
  return config;
}

QueryConfig FullQueryConfig() {
  QueryConfig config;
  config.enable_patterns = true;
  config.pattern = PatternCoreConfig();
  config.enable_correlation = true;
  config.correlation = CorrelationCoreConfig();
  config.correlator_period_ms = 5;
  return config;
}

std::vector<WindowThreshold> FleetThresholds() {
  // High fleet thresholds: the fleet's own alarm counters stay quiet so
  // the tests observe only the registered queries' alerts.
  return {{10, 1e9}, {20, 1e9}};
}

std::filesystem::path TempDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// --- Registry unit tests ----------------------------------------------

TEST(QueryRegistryTest, RegisterAssignsUniqueMonotonicIds) {
  QueryRegistry registry(AggregateConfig(), FullQueryConfig());
  const std::uint64_t v0 = registry.version();
  auto a = registry.Register(QuerySpec::Aggregate(20, 100.0));
  auto b = registry.Register(QuerySpec::Aggregate(10, 5.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), kInvalidQueryId);
  EXPECT_LT(a.value(), b.value());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_GT(registry.version(), v0);

  ASSERT_TRUE(registry.Unregister(a.value()).ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Unregister(a.value()).code(), StatusCode::kNotFound);

  // Ids are never reused, even after unregistration.
  auto c = registry.Register(QuerySpec::Aggregate(20, 1.0));
  ASSERT_TRUE(c.ok());
  EXPECT_GT(c.value(), b.value());
}

TEST(QueryRegistryTest, SnapshotSplitsQueriesByKind) {
  QueryRegistry registry(AggregateConfig(), FullQueryConfig());
  ASSERT_TRUE(registry.Register(QuerySpec::Aggregate(20, 100.0)).ok());
  ASSERT_TRUE(
      registry.Register(QuerySpec::Pattern(std::vector<double>(8, 1.0), 0.1))
          .ok());
  ASSERT_TRUE(registry.Register(QuerySpec::Correlation(0.5)).ok());
  auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot->aggregate.size(), 1u);
  EXPECT_EQ(snapshot->pattern.size(), 1u);
  EXPECT_EQ(snapshot->correlation.size(), 1u);
  EXPECT_EQ(snapshot->size(), 3u);
}

TEST(QueryRegistryTest, ValidatesAggregateSpecs) {
  QueryRegistry registry(AggregateConfig(), FullQueryConfig());
  // Not a multiple of the base window (10).
  EXPECT_EQ(registry.Register(QuerySpec::Aggregate(15, 1.0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register(QuerySpec::Aggregate(0, 1.0)).status().code(),
            StatusCode::kInvalidArgument);
  // window / W == 16 == 2^num_levels: one past the largest resolution.
  EXPECT_EQ(registry.Register(QuerySpec::Aggregate(160, 1.0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      registry.Register(QuerySpec::Aggregate(20, std::nan(""))).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_TRUE(registry.Register(QuerySpec::Aggregate(80, 1.0)).ok());
}

TEST(QueryRegistryTest, ValidatesPatternAndCorrelationSpecs) {
  QueryRegistry registry(AggregateConfig(), FullQueryConfig());
  // Pattern core base window is 8.
  EXPECT_EQ(
      registry.Register(QuerySpec::Pattern(std::vector<double>(12, 1.0), 0.1))
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register(QuerySpec::Pattern({}, 0.1)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      registry.Register(QuerySpec::Pattern(std::vector<double>(8, 1.0), -1.0))
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  // Correlation core has 2 levels.
  EXPECT_EQ(registry.Register(QuerySpec::Correlation(0.5, 2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register(QuerySpec::Correlation(-0.5)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(registry.Register(QuerySpec::Correlation(0.5, 1)).ok());
}

TEST(QueryRegistryTest, DisabledKindsAreRejectedUpFront) {
  QueryRegistry registry(AggregateConfig(), QueryConfig{});
  EXPECT_EQ(
      registry.Register(QuerySpec::Pattern(std::vector<double>(8, 1.0), 0.1))
          .status()
          .code(),
      StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Register(QuerySpec::Correlation(0.5)).status().code(),
            StatusCode::kFailedPrecondition);
  // Aggregate queries always work: they run against the fleet monitors.
  EXPECT_TRUE(registry.Register(QuerySpec::Aggregate(20, 1.0)).ok());
}

TEST(QueryRegistryTest, SerializeRestoreRoundTripsIdsAndAllocator) {
  QueryRegistry source(AggregateConfig(), FullQueryConfig());
  const QueryId agg =
      std::move(source.Register(QuerySpec::Aggregate(20, 42.0))).value();
  const QueryId pat =
      std::move(
          source.Register(QuerySpec::Pattern({1, 2, 3, 4, 5, 6, 7, 8}, 0.25)))
          .value();
  const QueryId corr =
      std::move(source.Register(QuerySpec::Correlation(0.5, 0))).value();
  ASSERT_TRUE(source.Unregister(pat).ok());
  const std::string bytes = source.Serialize();

  QueryRegistry restored(AggregateConfig(), FullQueryConfig());
  ASSERT_TRUE(restored.Restore(bytes).ok());
  EXPECT_EQ(restored.size(), 2u);
  const auto metrics = restored.Metrics();
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].id, agg);
  EXPECT_EQ(metrics[0].kind, QueryKind::kAggregate);
  EXPECT_EQ(metrics[1].id, corr);
  EXPECT_EQ(metrics[1].kind, QueryKind::kCorrelation);
  // The id allocator continues the checkpointed lineage: the next id is
  // strictly above everything ever allocated, including the unregistered
  // pattern query's.
  auto next = restored.Register(QuerySpec::Aggregate(10, 1.0));
  ASSERT_TRUE(next.ok());
  EXPECT_GT(next.value(), corr);

  QueryRegistry nonempty(AggregateConfig(), FullQueryConfig());
  ASSERT_TRUE(nonempty.Register(QuerySpec::Aggregate(10, 1.0)).ok());
  EXPECT_EQ(nonempty.Restore(bytes).code(),
            StatusCode::kFailedPrecondition);
}

TEST(QueryRegistryTest, RestoreRevalidatesAgainstCurrentConfig) {
  QueryRegistry source(AggregateConfig(), FullQueryConfig());
  ASSERT_TRUE(
      source.Register(QuerySpec::Pattern(std::vector<double>(8, 1.0), 0.1))
          .ok());
  const std::string bytes = source.Serialize();
  // An engine without pattern support cannot adopt this checkpoint.
  QueryRegistry plain(AggregateConfig(), QueryConfig{});
  EXPECT_EQ(plain.Restore(bytes).code(), StatusCode::kFailedPrecondition);
}

TEST(QueryRegistryTest, RestoreRejectsCorruptSnapshots) {
  QueryRegistry source(AggregateConfig(), FullQueryConfig());
  ASSERT_TRUE(source.Register(QuerySpec::Aggregate(20, 1.0)).ok());
  ASSERT_TRUE(source.Register(QuerySpec::Correlation(0.5)).ok());
  const std::string bytes = source.Serialize();

  QueryRegistry target(AggregateConfig(), FullQueryConfig());
  EXPECT_FALSE(target.Restore("").ok());
  EXPECT_FALSE(target.Restore("garbage").ok());
  std::string truncated = bytes.substr(0, bytes.size() - 3);
  EXPECT_FALSE(target.Restore(truncated).ok());
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(target.Restore(flipped).ok());
  EXPECT_EQ(target.size(), 0u);  // failed restores leave it empty
  ASSERT_TRUE(target.Restore(bytes).ok());
}

// --- Alert rate limiting (QuerySpec::WithAlertRate) --------------------

TEST(QueryRegistryTest, ValidatesAlertRateFields) {
  QueryRegistry registry(AggregateConfig(), FullQueryConfig());
  // A positive rate needs a burst.
  EXPECT_EQ(registry.Register(QuerySpec::Aggregate(20, 1.0).WithAlertRate(
                                  5.0, 0))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(registry
                   .Register(QuerySpec::Aggregate(20, 1.0).WithAlertRate(
                       -1.0, 4))
                   .ok());
  EXPECT_FALSE(registry
                   .Register(QuerySpec::Aggregate(20, 1.0).WithAlertRate(
                       std::numeric_limits<double>::infinity(), 4))
                   .ok());
  // Rate 0 disables the limit; the burst is ignored.
  EXPECT_TRUE(
      registry.Register(QuerySpec::Aggregate(20, 1.0).WithAlertRate(0.0, 0))
          .ok());
  EXPECT_TRUE(
      registry.Register(QuerySpec::Aggregate(20, 1.0).WithAlertRate(2.5, 8))
          .ok());
}

TEST(QueryRegistryTest, TokenBucketSuppressesBeyondBurst) {
  // A near-zero refill rate makes the bucket effectively burst-only, so
  // the admit/suppress sequence is deterministic regardless of timing.
  RegisteredQuery limited(
      1, QuerySpec::Aggregate(20, 1.0).WithAlertRate(1e-9, 2));
  EXPECT_TRUE(limited.AllowAlert());
  EXPECT_TRUE(limited.AllowAlert());
  EXPECT_FALSE(limited.AllowAlert());
  EXPECT_FALSE(limited.AllowAlert());
  EXPECT_EQ(limited.rate_limited.load(), 2u);

  RegisteredQuery unlimited(2, QuerySpec::Aggregate(20, 1.0));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.AllowAlert());
  EXPECT_EQ(unlimited.rate_limited.load(), 0u);
}

TEST(QueryRegistryTest, SerializePreservesRateLimitFields) {
  QueryRegistry source(AggregateConfig(), FullQueryConfig());
  ASSERT_TRUE(
      source.Register(QuerySpec::Aggregate(20, 1.0).WithAlertRate(2.5, 8))
          .ok());
  QueryRegistry restored(AggregateConfig(), FullQueryConfig());
  ASSERT_TRUE(restored.Restore(source.Serialize()).ok());
  const auto snapshot = restored.snapshot();
  ASSERT_EQ(snapshot->aggregate.size(), 1u);
  EXPECT_EQ(snapshot->aggregate[0]->spec.alert_rate_per_sec, 2.5);
  EXPECT_EQ(snapshot->aggregate[0]->spec.alert_burst, 8u);
}

// Backward compatibility: a v1 registry snapshot (no rate-limit fields)
// restores with the limit disabled.
TEST(QueryRegistryTest, RestoresV1SnapshotsWithRateLimitDisabled) {
  Writer payload;
  payload.U64(2);  // next_id
  payload.U64(1);  // count
  payload.U64(1);  // id
  QuerySpec spec = QuerySpec::Aggregate(20, 42.0);
  spec.SaveTo(&payload, /*version=*/1);

  Writer envelope;
  const char magic[4] = {'S', 'D', 'Q', 'R'};
  envelope.Bytes(magic, sizeof(magic));
  envelope.U32(1);  // registry version 1
  envelope.U64(Fnv1a(payload.buffer()));
  envelope.Bytes(payload.buffer().data(), payload.buffer().size());

  QueryRegistry restored(AggregateConfig(), FullQueryConfig());
  ASSERT_TRUE(restored.Restore(envelope.buffer()).ok());
  const auto snapshot = restored.snapshot();
  ASSERT_EQ(snapshot->aggregate.size(), 1u);
  EXPECT_EQ(snapshot->aggregate[0]->spec.window, 20u);
  EXPECT_EQ(snapshot->aggregate[0]->spec.threshold, 42.0);
  EXPECT_EQ(snapshot->aggregate[0]->spec.alert_rate_per_sec, 0.0);
  EXPECT_TRUE(snapshot->aggregate[0]->AllowAlert());
}

// Engine integration of the limiter: four streams cross the aggregate
// threshold together, the bucket admits exactly `burst` alerts, and the
// suppressed hits are visible in the per-query counters and metrics JSON.
TEST(QueryEngineTest, RateLimitedQueryCapsPublishedAlerts) {
  EngineConfig econfig;
  econfig.num_shards = 1;
  auto engine = std::move(IngestEngine::Create(AggregateConfig(),
                                               FleetThresholds(), 4, econfig))
                    .value();
  auto ring = std::make_shared<RingSink>();
  engine->alerts().AddSink(ring);
  const QueryId id =
      std::move(engine->RegisterQuery(
                    QuerySpec::Aggregate(10, 100.0).WithAlertRate(1e-9, 1)))
          .value();
  for (int t = 0; t < 10; ++t) {
    for (StreamId s = 0; s < 4; ++s) {
      ASSERT_TRUE(engine->Post(s, 50.0).ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Stop().ok());

  // All four streams alarmed (hits) but the bucket admitted one alert.
  EXPECT_EQ(ring->total(), 1u);
  const auto metrics = engine->queries().Metrics();
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].id, id);
  EXPECT_EQ(metrics[0].hits, 4u);
  EXPECT_EQ(metrics[0].rate_limited, 3u);
  EXPECT_NE(engine->MetricsJson().find("\"rate_limited\":3"),
            std::string::npos);
}

// --- Engine integration -----------------------------------------------

// The subsystem's acceptance property: ONE engine concurrently serves an
// aggregate burst query, a pattern query, and a correlation query against
// live multi-producer ingestion, and each class delivers exactly the
// planted hits through the alert bus.
//
// Data plan (6 streams, 2 shards, 400 steps):
//  - streams 0 and 1 (different shards) carry an identical sine wave
//    -> the correlation pair {0, 1};
//  - stream 2 holds at 1.0 and bursts to 50.0 on t in [300, 340)
//    -> the aggregate alert (SUM over trailing 20 >= 200);
//  - stream 3 is noise with a distinctive 16-value shape planted at
//    t in [200, 216) -> the pattern match at end_time 215;
//  - streams 4 and 5 are independent noise (must stay silent).
TEST(QueryEngineTest, ServesAllThreeQueryClassesConcurrently) {
  constexpr std::size_t kStreams = 6;
  constexpr std::uint64_t kSteps = 400;
  EngineConfig econfig;
  econfig.num_shards = 2;
  // Small apply batches so query evaluation samples the burst while it is
  // in the trailing window (a single huge batch could step right over an
  // edge-triggered crossing).
  econfig.max_batch = 8;
  econfig.query = FullQueryConfig();
  auto engine =
      std::move(IngestEngine::Create(AggregateConfig(), FleetThresholds(),
                                     kStreams, econfig))
          .value();

  auto ring = std::make_shared<RingSink>();
  engine->alerts().AddSink(ring);

  std::vector<double> planted(16);
  for (std::size_t i = 0; i < planted.size(); ++i) {
    planted[i] = 2.0 * std::sin(1.3 * static_cast<double>(i)) +
                 static_cast<double>(i % 3);
  }
  const QueryId agg_id =
      std::move(engine->RegisterQuery(QuerySpec::Aggregate(20, 200.0)))
          .value();
  const QueryId pat_id =
      std::move(engine->RegisterQuery(QuerySpec::Pattern(planted, 0.05)))
          .value();
  const QueryId corr_id =
      std::move(engine->RegisterQuery(QuerySpec::Correlation(0.3)))
          .value();
  ASSERT_NE(agg_id, pat_id);
  ASSERT_NE(pat_id, corr_id);

  const auto value_at = [&planted](StreamId s, std::uint64_t t,
                                   std::mt19937* rng) {
    switch (s) {
      case 0:
      case 1:
        return std::sin(0.07 * static_cast<double>(t));
      case 2:
        return (t >= 300 && t < 340) ? 50.0 : 1.0;
      case 3:
        if (t >= 200 && t < 216) return planted[t - 200];
        [[fallthrough]];
      default: {
        std::uniform_real_distribution<double> noise(-1.0, 1.0);
        return noise(*rng);
      }
    }
  };

  // Two producers with disjoint stream sets; per-stream order preserved.
  const auto produce = [&](std::vector<StreamId> streams,
                           std::uint32_t seed) {
    std::mt19937 rng(seed);
    for (std::uint64_t t = 0; t < kSteps; ++t) {
      for (StreamId s : streams) {
        ASSERT_TRUE(engine->Post(s, value_at(s, t, &rng)).ok());
      }
    }
  };
  std::thread producer_a(produce, std::vector<StreamId>{0, 1, 2}, 1u);
  std::thread producer_b(produce, std::vector<StreamId>{3, 4, 5}, 2u);
  producer_a.join();
  producer_b.join();
  ASSERT_TRUE(engine->Flush().ok());

  // Aggregate and pattern alerts are flushed synchronously with the data.
  bool burst_alert = false;
  bool pattern_alert = false;
  for (const Alert& alert : ring->Snapshot()) {
    if (alert.kind == QueryKind::kAggregate) {
      EXPECT_EQ(alert.query, agg_id);
      EXPECT_EQ(alert.stream, 2u) << "aggregate alert on a quiet stream";
      EXPECT_EQ(alert.window, 20u);
      EXPECT_GE(alert.value, 200.0);
      burst_alert = true;
    } else if (alert.kind == QueryKind::kPattern) {
      EXPECT_EQ(alert.query, pat_id);
      EXPECT_EQ(alert.stream, 3u) << "pattern match on the wrong stream";
      EXPECT_LE(alert.value, 0.05);
      if (alert.end_time == 215) pattern_alert = true;
    }
  }
  EXPECT_TRUE(burst_alert);
  EXPECT_TRUE(pattern_alert);

  // The correlator is time-driven: give it a bounded window to evaluate
  // the final common feature time.
  bool corr_alert = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!corr_alert && std::chrono::steady_clock::now() < deadline) {
    for (const Alert& alert : ring->Snapshot()) {
      if (alert.kind != QueryKind::kCorrelation) continue;
      EXPECT_EQ(alert.query, corr_id);
      const auto pair = std::minmax(alert.stream, alert.stream_b);
      EXPECT_EQ(pair.first, 0u) << "spurious correlated pair";
      EXPECT_EQ(pair.second, 1u) << "spurious correlated pair";
      EXPECT_LE(alert.value, 0.3);
      corr_alert = true;
    }
    if (!corr_alert) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(corr_alert) << "correlator never reported the planted pair";

  // Per-query counters were maintained throughout.
  std::uint64_t hits_total = 0;
  for (const auto& m : engine->queries().Metrics()) {
    EXPECT_GT(m.evals, 0u) << "query " << m.id << " never evaluated";
    EXPECT_EQ(m.errors, 0u);
    hits_total += m.hits;
  }
  EXPECT_GE(hits_total, 3u);
  EXPECT_GT(engine->metrics().alerts_published.load(), 0u);
  EXPECT_GT(engine->metrics().correlator_rounds.load(), 0u);

  ASSERT_TRUE(engine->Stop().ok());
  // Everything published made it out before Stop returned.
  EXPECT_EQ(engine->alerts().published(), engine->alerts().delivered());
}

TEST(QueryEngineTest, UnregisteredQueryStopsAlerting) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  auto engine = std::move(IngestEngine::Create(
                              AggregateConfig(), FleetThresholds(), 4,
                              econfig))
                    .value();
  auto ring = std::make_shared<RingSink>();
  engine->alerts().AddSink(ring);
  const QueryId id =
      std::move(engine->RegisterQuery(QuerySpec::Aggregate(10, 100.0)))
          .value();

  for (int t = 0; t < 40; ++t) {
    ASSERT_TRUE(engine->Post(0, 50.0).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  const std::uint64_t before = ring->total();
  EXPECT_GE(before, 1u);  // edge-triggered: the burst fired once

  ASSERT_TRUE(engine->UnregisterQuery(id).ok());
  for (int t = 0; t < 200; ++t) {
    ASSERT_TRUE(engine->Post(0, 50.0).ok());
    ASSERT_TRUE(engine->Post(0, 0.0).ok());  // re-arm any edge state
  }
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(ring->total(), before);
  ASSERT_TRUE(engine->Stop().ok());
}

TEST(QueryEngineTest, CheckpointRestoreKeepsRegistryLineage) {
  const std::filesystem::path dir = TempDir("stardust_query_ck_test");
  EngineConfig econfig;
  econfig.num_shards = 2;
  QueryId keep_id = kInvalidQueryId;
  QueryId dropped_id = kInvalidQueryId;
  {
    auto engine = std::move(IngestEngine::Create(
                                AggregateConfig(), FleetThresholds(), 4,
                                econfig))
                      .value();
    dropped_id =
        std::move(engine->RegisterQuery(QuerySpec::Aggregate(10, 5.0)))
            .value();
    keep_id =
        std::move(engine->RegisterQuery(QuerySpec::Aggregate(20, 7.0)))
            .value();
    ASSERT_TRUE(engine->UnregisterQuery(dropped_id).ok());
    for (StreamId s = 0; s < 4; ++s) {
      for (int t = 0; t < 50; ++t) {
        ASSERT_TRUE(engine->Post(s, 1.0).ok());
      }
    }
    ASSERT_TRUE(engine->Flush().ok());
    ASSERT_TRUE(engine->Checkpoint(dir.string()).ok());
    ASSERT_TRUE(engine->Stop().ok());
  }

  auto restored = std::move(IngestEngine::Create(
                                AggregateConfig(), FleetThresholds(), 4,
                                econfig, dir.string()))
                      .value();
  EXPECT_EQ(restored->queries().size(), 1u);
  const auto metrics = restored->queries().Metrics();
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].id, keep_id);
  // New registrations continue the pre-crash id lineage: ids are never
  // reused across a restore, even the unregistered one's.
  auto fresh = restored->RegisterQuery(QuerySpec::Aggregate(10, 1.0));
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh.value(), keep_id);
  EXPECT_GT(fresh.value(), dropped_id);
  ASSERT_TRUE(restored->Stop().ok());
  std::filesystem::remove_all(dir);
}

TEST(QueryEngineTest, RestoredEngineStillEvaluatesQueries) {
  const std::filesystem::path dir = TempDir("stardust_query_ck_eval_test");
  EngineConfig econfig;
  econfig.num_shards = 2;
  {
    auto engine = std::move(IngestEngine::Create(
                                AggregateConfig(), FleetThresholds(), 4,
                                econfig))
                      .value();
    ASSERT_TRUE(
        engine->RegisterQuery(QuerySpec::Aggregate(10, 100.0)).ok());
    for (StreamId s = 0; s < 4; ++s) {
      for (int t = 0; t < 30; ++t) {
        ASSERT_TRUE(engine->Post(s, 1.0).ok());
      }
    }
    ASSERT_TRUE(engine->Flush().ok());
    ASSERT_TRUE(engine->Checkpoint(dir.string()).ok());
    ASSERT_TRUE(engine->Stop().ok());
  }

  auto restored = std::move(IngestEngine::Create(
                                AggregateConfig(), FleetThresholds(), 4,
                                econfig, dir.string()))
                      .value();
  auto ring = std::make_shared<RingSink>();
  restored->alerts().AddSink(ring);
  // The restored query alarms as soon as post-restore data crosses it.
  for (int t = 0; t < 20; ++t) {
    ASSERT_TRUE(restored->Post(1, 60.0).ok());
  }
  ASSERT_TRUE(restored->Flush().ok());
  const auto alerts = ring->Snapshot();
  ASSERT_GE(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, QueryKind::kAggregate);
  EXPECT_EQ(alerts[0].stream, 1u);
  ASSERT_TRUE(restored->Stop().ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace stardust
