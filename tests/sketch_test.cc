// Accuracy bounds, windowed semantics, batched-append equivalence, and
// serialization round-trips of the sketch measures (src/sketch).
#include "sketch/measure.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serialize.h"
#include "sketch/countmin.h"
#include "sketch/hll.h"
#include "sketch/quantile.h"

namespace stardust {
namespace {

// --- HyperLogLog --------------------------------------------------------

TEST(HyperLogLogTest, AccuracyWithinTwoPercentAt16kRegisters) {
  // Standard error of HLL is ~1.04/sqrt(m); precision 14 = 16384
  // registers gives ~0.8%, so 2% is a comfortable deterministic bound
  // for these fixed seeds.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    HyperLogLog hll(14);
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      hll.Add(std::floor(rng.NextDouble(0.0, 100000.0)) + 0.5);
    }
    // ~100000 distinct values were drawn; compute the exact count.
    std::vector<double> values;
    Rng replay(seed);
    for (int i = 0; i < n; ++i) {
      values.push_back(std::floor(replay.NextDouble(0.0, 100000.0)) + 0.5);
    }
    std::sort(values.begin(), values.end());
    const double exact = static_cast<double>(
        std::unique(values.begin(), values.end()) - values.begin());
    EXPECT_NEAR(hll.Estimate(), exact, 0.02 * exact) << "seed " << seed;
  }
}

TEST(HyperLogLogTest, SmallCardinalitiesAreNearExact) {
  HyperLogLog hll(12);
  for (int i = 0; i < 50; ++i) hll.Add(static_cast<double>(i));
  EXPECT_NEAR(hll.Estimate(), 50.0, 1.5);
  // Repeats change nothing.
  for (int i = 0; i < 50; ++i) hll.Add(static_cast<double>(i));
  EXPECT_NEAR(hll.Estimate(), 50.0, 1.5);
}

TEST(HyperLogLogTest, SpanMatchesScalarAppends) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 4097; ++i) {
    values.push_back(std::floor(rng.NextDouble(0.0, 500.0)));
  }
  HyperLogLog scalar(10), batched(10);
  for (double v : values) scalar.Add(v);
  batched.AddSpan(values.data(), values.size());
  EXPECT_DOUBLE_EQ(scalar.Estimate(), batched.Estimate());
}

TEST(HyperLogLogTest, MergeEqualsUnion) {
  HyperLogLog a(12), b(12), both(12);
  for (int i = 0; i < 4000; ++i) {
    a.Add(static_cast<double>(i));
    both.Add(static_cast<double>(i));
  }
  for (int i = 2000; i < 6000; ++i) {
    b.Add(static_cast<double>(i));
    both.Add(static_cast<double>(i));
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), both.Estimate());
  HyperLogLog other(13);
  EXPECT_FALSE(other.Merge(b).ok());
}

TEST(HyperLogLogTest, SerializationRoundTrip) {
  HyperLogLog hll(11);
  for (int i = 0; i < 10000; ++i) hll.Add(static_cast<double>(i % 3000));
  Writer writer;
  hll.SaveTo(&writer);
  Reader reader(writer.buffer());
  HyperLogLog restored(11);
  ASSERT_TRUE(restored.RestoreFrom(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_DOUBLE_EQ(restored.Estimate(), hll.Estimate());
  // A snapshot for a different precision is rejected, not misread.
  Reader again(writer.buffer());
  HyperLogLog mismatched(12);
  EXPECT_FALSE(mismatched.RestoreFrom(&again).ok());
}

TEST(HyperLogLogTest, ZeroFoldsToPositiveZero) {
  HyperLogLog a(10), b(10);
  a.Add(0.0);
  b.Add(-0.0);
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

// --- CountMin -----------------------------------------------------------

TEST(CountMinTest, OvercountBoundedByEpsilonN) {
  // Classic guarantee: estimate(v) >= true(v), and with probability
  // 1 - delta the over-count stays below epsilon * N. With depth 4 and
  // fixed seeds this holds deterministically here.
  const double epsilon = 0.01;
  CountMin cm(epsilon, 4, 16);
  Rng rng(11);
  std::vector<std::uint64_t> truth(1000, 0);
  std::uint64_t n = 0;
  for (int i = 0; i < 200000; ++i) {
    // Zipf-ish skew: low ids are hot.
    const auto id = static_cast<std::size_t>(
        1000.0 * rng.NextDouble(0.0, 1.0) * rng.NextDouble(0.0, 1.0));
    const auto key = std::min<std::size_t>(id, 999);
    ++truth[key];
    ++n;
    cm.Add(static_cast<double>(key));
  }
  for (std::size_t key = 0; key < truth.size(); ++key) {
    const std::uint64_t est = cm.EstimateCount(static_cast<double>(key));
    EXPECT_GE(est, truth[key]) << "key " << key;
    EXPECT_LE(est, truth[key] + static_cast<std::uint64_t>(
                                    epsilon * static_cast<double>(n)))
        << "key " << key;
  }
}

TEST(CountMinTest, HeavyHitterCountFindsTheHotValues) {
  CountMin cm(0.005, 4, 32);
  // Two values own 30% each; the rest is a long uniform tail.
  Rng rng(23);
  for (int i = 0; i < 50000; ++i) {
    const double roll = rng.NextDouble(0.0, 1.0);
    double v;
    if (roll < 0.3) {
      v = -1.0;
    } else if (roll < 0.6) {
      v = -2.0;
    } else {
      v = std::floor(rng.NextDouble(0.0, 5000.0));
    }
    cm.Add(v);
  }
  EXPECT_EQ(cm.HeavyHitterCount(0.25), 2u);
  EXPECT_EQ(cm.HeavyHitterCount(0.5), 0u);
}

TEST(CountMinTest, SpanMatchesScalarAppends) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) {
    values.push_back(std::floor(rng.NextDouble(0.0, 40.0)));
  }
  CountMin scalar(0.02, 3, 8), batched(0.02, 3, 8);
  for (double v : values) scalar.Add(v);
  batched.AddSpan(values.data(), values.size());
  EXPECT_EQ(scalar.total(), batched.total());
  for (int key = 0; key < 40; ++key) {
    EXPECT_EQ(scalar.EstimateCount(key), batched.EstimateCount(key));
  }
  EXPECT_EQ(scalar.HeavyHitterCount(0.01), batched.HeavyHitterCount(0.01));
}

TEST(CountMinTest, MergeAddsCounts) {
  CountMin a(0.01, 4, 16), b(0.01, 4, 16), both(0.01, 4, 16);
  for (int i = 0; i < 3000; ++i) {
    const double v = std::floor(static_cast<double>(i % 7));
    a.Add(v);
    both.Add(v);
  }
  for (int i = 0; i < 2000; ++i) {
    const double v = std::floor(static_cast<double>(i % 5));
    b.Add(v);
    both.Add(v);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.total(), both.total());
  for (int key = 0; key < 7; ++key) {
    EXPECT_EQ(a.EstimateCount(key), both.EstimateCount(key));
  }
  CountMin other(0.1, 2, 16);
  EXPECT_FALSE(other.Merge(b).ok());
}

TEST(CountMinTest, SerializationRoundTrip) {
  CountMin cm(0.02, 4, 8);
  for (int i = 0; i < 10000; ++i) {
    cm.Add(std::floor(static_cast<double>(i % 11)));
  }
  Writer writer;
  cm.SaveTo(&writer);
  Reader reader(writer.buffer());
  CountMin restored(0.02, 4, 8);
  ASSERT_TRUE(restored.RestoreFrom(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored.total(), cm.total());
  for (int key = 0; key < 11; ++key) {
    EXPECT_EQ(restored.EstimateCount(key), cm.EstimateCount(key));
  }
  // A truncated payload is rejected, not misread.
  std::string trunc(writer.buffer().substr(0, writer.buffer().size() / 2));
  Reader bad(trunc);
  CountMin victim(0.02, 4, 8);
  EXPECT_FALSE(victim.RestoreFrom(&bad).ok());
}

// --- Windowed measures --------------------------------------------------

SketchConfig DistinctConfig(std::uint64_t window) {
  SketchConfig config;
  config.kind = SketchKind::kDistinct;
  config.window = window;
  config.hll_precision = 12;
  return config;
}

TEST(SketchMeasureTest, DistinctWindowForgetsOldValues) {
  SketchConfig config = DistinctConfig(64);
  auto measure = CreateSketchMeasure(config);
  // First 64 appends: 32 distinct values; not ready before the window
  // fills.
  for (int i = 0; i < 63; ++i) {
    measure->Append(static_cast<double>(i % 32));
    EXPECT_FALSE(measure->Ready());
  }
  measure->Append(31.0);
  ASSERT_TRUE(measure->Ready());
  EXPECT_NEAR(measure->Estimate(), 32.0, 1.0);
  // Flood with a single value: once the old buckets rotate out (window
  // + one bucket width), the distinct count falls to 1.
  for (int i = 0; i < 64 + 16; ++i) measure->Append(7.0);
  EXPECT_NEAR(measure->Estimate(), 1.0, 0.1);
}

TEST(SketchMeasureTest, HeavyHitterWindowTracksDominance) {
  SketchConfig config;
  config.kind = SketchKind::kHeavyHitters;
  config.window = 64;
  config.phi = 0.4;
  auto measure = CreateSketchMeasure(config);
  for (int i = 0; i < 64; ++i) measure->Append(1.0);
  ASSERT_TRUE(measure->Ready());
  EXPECT_DOUBLE_EQ(measure->Estimate(), 1.0);  // one dominant value
  // Cycle 10 distinct values: nobody holds 40% once the constant run
  // ages out.
  for (int i = 0; i < 64 + 16; ++i) {
    measure->Append(static_cast<double>(10 + i % 10));
  }
  EXPECT_DOUBLE_EQ(measure->Estimate(), 0.0);
}

TEST(SketchMeasureTest, QuantileWindowTracksRecentDistribution) {
  SketchConfig config;
  config.kind = SketchKind::kQuantile;
  config.window = 64;
  config.q = 0.5;
  auto measure = CreateSketchMeasure(config);
  Rng rng(3);
  for (int i = 0; i < 64; ++i) measure->Append(rng.NextDouble(0.0, 1.0));
  ASSERT_TRUE(measure->Ready());
  EXPECT_NEAR(measure->Estimate(), 0.5, 0.25);
  // Shift the distribution up by 10; the windowed median follows once
  // the staggered estimators cycle through.
  for (int i = 0; i < 5 * 64; ++i) {
    measure->Append(10.0 + rng.NextDouble(0.0, 1.0));
  }
  EXPECT_NEAR(measure->Estimate(), 10.5, 0.3);
}

TEST(SketchMeasureTest, QuantileRankErrorOnUniformStream) {
  SketchConfig config;
  config.kind = SketchKind::kQuantile;
  config.window = 512;
  config.q = 0.9;
  auto measure = CreateSketchMeasure(config);
  Rng rng(41);
  for (int i = 0; i < 4096; ++i) {
    measure->Append(rng.NextDouble(0.0, 1.0));
  }
  // Exact p90 of U(0,1) is 0.9; allow a 5%-of-range rank error for the
  // windowed P^2 estimate.
  EXPECT_NEAR(measure->Estimate(), 0.9, 0.05);
}

TEST(SketchMeasureTest, AppendRunMatchesScalarForEveryKind) {
  for (const SketchKind kind :
       {SketchKind::kDistinct, SketchKind::kHeavyHitters,
        SketchKind::kQuantile}) {
    SketchConfig config;
    config.kind = kind;
    config.window = 48;  // not a multiple of the run lengths below
    config.buckets = 5;
    auto scalar = CreateSketchMeasure(config);
    auto batched = CreateSketchMeasure(config);
    Rng rng(static_cast<std::uint64_t>(kind) + 100);
    std::vector<double> pending;
    for (int i = 0; i < 1000; ++i) {
      pending.push_back(std::floor(rng.NextDouble(0.0, 20.0)));
      if (pending.size() == 7 || i == 999) {
        for (double v : pending) scalar->Append(v);
        batched->AppendRun(pending.data(), pending.size());
        pending.clear();
      }
    }
    EXPECT_EQ(scalar->Ready(), batched->Ready());
    EXPECT_DOUBLE_EQ(scalar->Estimate(), batched->Estimate())
        << "kind " << SketchKindName(kind);
    // State-identical, not just estimate-identical.
    Writer a, b;
    scalar->SaveTo(&a);
    batched->SaveTo(&b);
    EXPECT_EQ(a.buffer(), b.buffer()) << "kind " << SketchKindName(kind);
  }
}

TEST(SketchMeasureTest, SerializationRoundTripForEveryKind) {
  for (const SketchKind kind :
       {SketchKind::kDistinct, SketchKind::kHeavyHitters,
        SketchKind::kQuantile}) {
    SketchConfig config;
    config.kind = kind;
    config.window = 32;
    auto measure = CreateSketchMeasure(config);
    Rng rng(static_cast<std::uint64_t>(kind) + 7);
    for (int i = 0; i < 333; ++i) {
      measure->Append(std::floor(rng.NextDouble(0.0, 12.0)));
    }
    Writer writer;
    measure->SaveTo(&writer);
    auto restored = CreateSketchMeasure(config);
    Reader reader(writer.buffer());
    ASSERT_TRUE(restored->RestoreFrom(&reader).ok())
        << SketchKindName(kind);
    EXPECT_TRUE(reader.AtEnd());
    EXPECT_EQ(restored->appends(), measure->appends());
    EXPECT_EQ(restored->Ready(), measure->Ready());
    EXPECT_DOUBLE_EQ(restored->Estimate(), measure->Estimate());
    // Identical continuations after restore.
    for (int i = 0; i < 100; ++i) {
      const double v = std::floor(rng.NextDouble(0.0, 12.0));
      measure->Append(v);
      restored->Append(v);
    }
    EXPECT_DOUBLE_EQ(restored->Estimate(), measure->Estimate());
    // Truncation fails closed.
    std::string trunc(
        writer.buffer().substr(0, writer.buffer().size() - 3));
    Reader bad(trunc);
    auto victim = CreateSketchMeasure(config);
    EXPECT_FALSE(victim->RestoreFrom(&bad).ok());
  }
}

TEST(SketchConfigTest, ValidateRejectsBadKnobs) {
  SketchConfig config = DistinctConfig(16);
  EXPECT_TRUE(config.Validate().ok());
  config.window = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = DistinctConfig(16);
  config.hll_precision = 3;
  EXPECT_FALSE(config.Validate().ok());
  config = DistinctConfig(16);
  config.buckets = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = DistinctConfig(16);
  config.epsilon = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = DistinctConfig(16);
  config.q = 1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(SketchConfigTest, SerializationRoundTrip) {
  SketchConfig config;
  config.kind = SketchKind::kHeavyHitters;
  config.window = 128;
  config.buckets = 8;
  config.epsilon = 0.003;
  config.depth = 5;
  config.phi = 0.2;
  config.candidates = 64;
  Writer writer;
  config.SaveTo(&writer);
  SketchConfig restored;
  Reader reader(writer.buffer());
  ASSERT_TRUE(restored.RestoreFrom(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored, config);
}

// --- P2 snapshot (promoted from src/transform) --------------------------

TEST(P2QuantileSnapshotTest, RoundTripAndQuantileMismatch) {
  P2Quantile q(0.75);
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) q.Add(rng.NextGaussian());
  Writer writer;
  q.SaveTo(&writer);
  P2Quantile restored(0.75);
  Reader reader(writer.buffer());
  ASSERT_TRUE(restored.RestoreFrom(&reader).ok());
  EXPECT_DOUBLE_EQ(restored.Value(), q.Value());
  P2Quantile wrong(0.5);
  Reader again(writer.buffer());
  EXPECT_FALSE(wrong.RestoreFrom(&again).ok());
}

}  // namespace
}  // namespace stardust
