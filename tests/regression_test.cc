#include "transform/regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stardust {
namespace {

TEST(OnlineMomentsTest, MeanAndVarianceExact) {
  OnlineMoments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(v);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(m.StdDev(), 2.0);
  EXPECT_DOUBLE_EQ(m.CoefficientOfVariation(), 0.4);
}

TEST(OnlineMomentsTest, SingleValue) {
  OnlineMoments m;
  m.Add(3.0);
  EXPECT_EQ(m.Mean(), 3.0);
  EXPECT_EQ(m.Variance(), 0.0);
}

TEST(OnlineMomentsTest, NumericallyStableUnderLargeOffset) {
  // Welford must not lose the variance of small deviations around a huge
  // mean (the naive Σx² formula would).
  OnlineMoments m;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    m.Add(1e9 + rng.NextDouble(-1.0, 1.0));
  }
  EXPECT_NEAR(m.Variance(), 1.0 / 3.0, 0.02);
}

TEST(OnlineMomentsTest, ZeroMeanCvIsZero) {
  OnlineMoments m;
  m.Add(-1.0);
  m.Add(1.0);
  EXPECT_EQ(m.CoefficientOfVariation(), 0.0);
}

TEST(OnlineRegressionTest, ExactLineIsRecovered) {
  OnlineLinearRegression reg;
  for (double x : {0.0, 1.0, 2.0, 5.0, 9.0}) {
    reg.Add(x, 3.0 * x - 2.0);
  }
  EXPECT_NEAR(reg.Slope(), 3.0, 1e-12);
  EXPECT_NEAR(reg.Intercept(), -2.0, 1e-12);
  EXPECT_NEAR(reg.R2(), 1.0, 1e-12);
  EXPECT_NEAR(reg.Predict(100.0), 298.0, 1e-9);
}

TEST(OnlineRegressionTest, ConstantXHasZeroSlope) {
  OnlineLinearRegression reg;
  reg.Add(2.0, 1.0);
  reg.Add(2.0, 5.0);
  EXPECT_EQ(reg.Slope(), 0.0);
  EXPECT_EQ(reg.R2(), 0.0);
  EXPECT_DOUBLE_EQ(reg.Intercept(), 3.0);  // falls back to mean y
}

TEST(OnlineRegressionTest, MatchesClosedFormOnRandomData) {
  Rng rng(2);
  OnlineLinearRegression reg;
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble(-10, 10);
    const double y = 0.7 * x + 1.3 + rng.NextGaussian();
    xs.push_back(x);
    ys.push_back(y);
    reg.Add(x, y);
  }
  // Closed-form least squares.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const double intercept = (sy - slope * sx) / n;
  EXPECT_NEAR(reg.Slope(), slope, 1e-9);
  EXPECT_NEAR(reg.Intercept(), intercept, 1e-9);
  EXPECT_GT(reg.R2(), 0.8);
  EXPECT_LE(reg.R2(), 1.0);
  // The noise keeps R² well below 1.
  EXPECT_LT(reg.R2(), 0.999);
}

TEST(OnlineRegressionTest, UncorrelatedDataHasLowR2) {
  Rng rng(3);
  OnlineLinearRegression reg;
  for (int i = 0; i < 2000; ++i) {
    reg.Add(rng.NextDouble(-1, 1), rng.NextDouble(-1, 1));
  }
  EXPECT_LT(reg.R2(), 0.02);
}

}  // namespace
}  // namespace stardust
