#include "baselines/swt.h"

#include <gtest/gtest.h>

#include "stream/bursty_source.h"

namespace stardust {
namespace {

std::vector<WindowThreshold> Train(AggregateKind kind, std::size_t base,
                                   std::size_t m, double lambda,
                                   std::uint64_t seed) {
  BurstySource source(seed);
  const std::vector<double> training = source.Take(4000);
  std::vector<std::size_t> windows;
  for (std::size_t i = 1; i <= m; ++i) windows.push_back(i * base);
  return TrainThresholds(kind, training, windows, lambda);
}

TEST(SwtTest, CreateValidation) {
  EXPECT_FALSE(
      SwtMonitor::Create(AggregateKind::kMin, 10, {{10, 1.0}}).ok());
  EXPECT_FALSE(SwtMonitor::Create(AggregateKind::kSum, 0, {{10, 1.0}}).ok());
  EXPECT_FALSE(SwtMonitor::Create(AggregateKind::kSum, 10, {}).ok());
  EXPECT_FALSE(
      SwtMonitor::Create(AggregateKind::kSum, 10, {{0, 1.0}}).ok());
  EXPECT_TRUE(
      SwtMonitor::Create(AggregateKind::kSum, 10, {{10, 1.0}}).ok());
}

// The SWT filter is sound for monotone aggregates over non-negative data:
// every exact alarm is also a candidate.
TEST(SwtTest, NoFalseDismissalsOnEventCounts) {
  const auto thresholds = Train(AggregateKind::kSum, 20, 8, 3.0, 11);
  ASSERT_FALSE(thresholds.empty());
  auto swt =
      std::move(SwtMonitor::Create(AggregateKind::kSum, 20, thresholds))
          .value();
  std::vector<std::size_t> windows;
  for (const auto& wt : thresholds) windows.push_back(wt.window);
  SlidingAggregateTracker oracle(AggregateKind::kSum, windows);
  BurstySource source(12);
  std::uint64_t exact_alarms = 0;
  for (int t = 0; t < 6000; ++t) {
    const double v = source.Next();
    swt->Append(v);
    oracle.Push(v);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (oracle.Ready(i) &&
          oracle.Current(i) >= thresholds[i].threshold) {
        ++exact_alarms;
      }
    }
  }
  const AlarmStats total = swt->TotalStats();
  EXPECT_EQ(total.true_alarms, exact_alarms);
  EXPECT_GE(total.candidates, total.true_alarms);
  EXPECT_GT(total.candidates, 0u);
}

// Windows exactly at a dyadic multiple of the base are monitored by a
// same-size level window — the filter for them is exact.
TEST(SwtTest, DyadicWindowIsMonitoredExactly) {
  // One window equal to base: level 0 window == query window, and the
  // level threshold equals the window's own threshold.
  auto swt = std::move(SwtMonitor::Create(AggregateKind::kSum, 16,
                                          {{16, 100.0}}))
                 .value();
  BurstySource source(13);
  for (int t = 0; t < 3000; ++t) swt->Append(source.Next());
  const AlarmStats stats = swt->stats(0);
  EXPECT_EQ(stats.candidates, stats.true_alarms);
}

// SWT's level filter (superset window + smallest threshold of the level)
// is never tighter than checking each window by itself: Stardust's exact
// per-window filter produces no more candidates.
TEST(SwtTest, LevelFilterIsLooserThanPerWindowFilter) {
  const auto thresholds = Train(AggregateKind::kSum, 20, 10, 2.5, 14);
  ASSERT_FALSE(thresholds.empty());
  auto swt =
      std::move(SwtMonitor::Create(AggregateKind::kSum, 20, thresholds))
          .value();
  std::vector<std::size_t> windows;
  for (const auto& wt : thresholds) windows.push_back(wt.window);
  SlidingAggregateTracker oracle(AggregateKind::kSum, windows);
  BurstySource source(15);
  std::uint64_t exact_alarms = 0;
  for (int t = 0; t < 6000; ++t) {
    const double v = source.Next();
    swt->Append(v);
    oracle.Push(v);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (oracle.Ready(i) &&
          oracle.Current(i) >= thresholds[i].threshold) {
        ++exact_alarms;
      }
    }
  }
  EXPECT_GE(swt->TotalStats().candidates, exact_alarms);
}

TEST(SwtTest, SpreadMonitoringIsSupported) {
  BurstySource training(16);
  const auto data = training.Take(3000);
  const auto thresholds =
      TrainThresholds(AggregateKind::kSpread, data, {25, 50, 100}, 2.0);
  ASSERT_EQ(thresholds.size(), 3u);
  auto swt = std::move(SwtMonitor::Create(AggregateKind::kSpread, 25,
                                          thresholds))
                 .value();
  BurstySource source(17);
  for (int t = 0; t < 4000; ++t) swt->Append(source.Next());
  EXPECT_GE(swt->TotalStats().candidates, swt->TotalStats().true_alarms);
}

TEST(SwtTest, PerWindowStatsExposeLevels) {
  const auto thresholds = Train(AggregateKind::kSum, 10, 4, 3.0, 18);
  auto swt =
      std::move(SwtMonitor::Create(AggregateKind::kSum, 10, thresholds))
          .value();
  EXPECT_EQ(swt->num_windows(), thresholds.size());
  for (std::size_t i = 0; i < swt->num_windows(); ++i) {
    EXPECT_EQ(swt->threshold(i).window, thresholds[i].window);
  }
}

}  // namespace
}  // namespace stardust
