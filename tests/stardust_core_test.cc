#include "core/stardust.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stream/random_walk.h"
#include "transform/sliding_tracker.h"

namespace stardust {
namespace {

StardustConfig SumConfig(std::size_t c) {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 4;
  config.num_levels = 5;  // windows 4 .. 64
  config.history = 256;
  config.box_capacity = c;
  config.update_period = 1;
  return config;
}

TEST(RecordIdTest, RoundTrip) {
  const RecordId id = MakeRecordId(7, 123456);
  EXPECT_EQ(RecordStream(id), 7u);
  EXPECT_EQ(RecordSeq(id), 123456u);
}

TEST(StardustTest, CreateValidatesConfig) {
  StardustConfig bad = SumConfig(1);
  bad.base_window = 0;
  EXPECT_FALSE(Stardust::Create(bad).ok());
  EXPECT_TRUE(Stardust::Create(SumConfig(1)).ok());
}

TEST(StardustTest, AppendRejectsUnknownStream) {
  auto core = std::move(Stardust::Create(SumConfig(1))).value();
  EXPECT_FALSE(core->Append(0, 1.0).ok());
  EXPECT_EQ(core->AddStream(), 0u);
  EXPECT_TRUE(core->Append(0, 1.0).ok());
}

TEST(StardustTest, AggregateIntervalValidation) {
  auto core = std::move(Stardust::Create(SumConfig(1))).value();
  const StreamId s = core->AddStream();
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(core->Append(s, 1.0).ok());
  EXPECT_FALSE(core->AggregateInterval(s, 0).ok());    // zero window
  EXPECT_FALSE(core->AggregateInterval(s, 6).ok());    // not multiple of W
  EXPECT_FALSE(core->AggregateInterval(s, 256).ok());  // b = 64 needs 7 bits
  EXPECT_FALSE(core->AggregateInterval(s, 104 * 4).ok());
  EXPECT_TRUE(core->AggregateInterval(s, 4).ok());
  EXPECT_TRUE(core->AggregateInterval(s, 100).ok());  // b = 25 = 11001b
}

TEST(StardustTest, UnitBoxesGiveExactIntervals) {
  auto core = std::move(Stardust::Create(SumConfig(1))).value();
  const StreamId s = core->AddStream();
  // Deterministic data: value t at time t.
  for (int t = 0; t < 120; ++t) {
    ASSERT_TRUE(core->Append(s, static_cast<double>(t)).ok());
  }
  // Window 28 = b 7 = 111b: sum of 92..119 inclusive.
  Result<ScalarInterval> interval = core->AggregateInterval(s, 28);
  ASSERT_TRUE(interval.ok());
  const double expected = (92.0 + 119.0) * 28.0 / 2.0;
  EXPECT_NEAR(interval.value().lo, expected, 1e-9);
  EXPECT_NEAR(interval.value().hi, expected, 1e-9);
}

// Algorithm 2's guarantee: the interval always brackets the true
// aggregate, for every box capacity and every decomposable window.
class StardustIntervalProperty
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StardustIntervalProperty, IntervalBracketsExactAggregate) {
  auto core = std::move(Stardust::Create(SumConfig(GetParam()))).value();
  const StreamId s = core->AddStream();
  const std::vector<std::size_t> windows{4, 8, 12, 20, 28, 60, 100, 124};
  SlidingAggregateTracker tracker(AggregateKind::kSum, windows);
  RandomWalkSource source(77);
  for (int t = 0; t < 400; ++t) {
    const double v = source.Next();
    ASSERT_TRUE(core->Append(s, v).ok());
    tracker.Push(v);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (!tracker.Ready(i)) continue;
      Result<ScalarInterval> interval =
          core->AggregateInterval(s, windows[i]);
      ASSERT_TRUE(interval.ok()) << interval.status().ToString();
      const double exact = tracker.Current(i);
      EXPECT_GE(exact, interval.value().lo - 1e-6);
      EXPECT_LE(exact, interval.value().hi + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BoxCapacities, StardustIntervalProperty,
                         ::testing::Values(1, 2, 8, 32));

TEST(StardustTest, SpreadIntervalBracketsExact) {
  StardustConfig config = SumConfig(8);
  config.aggregate = AggregateKind::kSpread;
  auto core = std::move(Stardust::Create(config)).value();
  const StreamId s = core->AddStream();
  SlidingAggregateTracker tracker(AggregateKind::kSpread, {36});
  RandomWalkSource source(78);
  for (int t = 0; t < 300; ++t) {
    const double v = source.Next();
    ASSERT_TRUE(core->Append(s, v).ok());
    tracker.Push(v);
    if (!tracker.Ready(0)) continue;
    Result<ScalarInterval> interval = core->AggregateInterval(s, 36);
    ASSERT_TRUE(interval.ok());
    const double exact = tracker.Current(0);
    EXPECT_GE(exact, interval.value().lo - 1e-9);
    EXPECT_LE(exact, interval.value().hi + 1e-9);
  }
}

TEST(StardustTest, AggregateQueryVerifiesCandidates) {
  auto core = std::move(Stardust::Create(SumConfig(4))).value();
  const StreamId s = core->AddStream();
  for (int t = 0; t < 100; ++t) {
    ASSERT_TRUE(core->Append(s, 1.0).ok());
  }
  // Sum over window 20 is exactly 20.
  Result<Stardust::AggregateAnswer> low =
      core->AggregateQuery(s, 20, 19.0);
  ASSERT_TRUE(low.ok());
  EXPECT_TRUE(low.value().candidate);
  EXPECT_TRUE(low.value().alarm);
  EXPECT_NEAR(low.value().exact, 20.0, 1e-9);

  Result<Stardust::AggregateAnswer> high =
      core->AggregateQuery(s, 20, 21.0);
  ASSERT_TRUE(high.ok());
  EXPECT_FALSE(high.value().candidate);
  EXPECT_FALSE(high.value().alarm);
  EXPECT_TRUE(std::isnan(high.value().exact));
}

TEST(StardustTest, IndexedDwtModeMaintainsLevelTrees) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 2;
  config.r_max = 110.0;
  config.base_window = 8;
  config.num_levels = 3;
  config.history = 64;
  config.box_capacity = 4;
  config.update_period = 1;
  config.index_features = true;
  auto core = std::move(Stardust::Create(config)).value();
  const StreamId a = core->AddStream();
  const StreamId b = core->AddStream();
  RandomWalkSource sa(1), sb(2);
  for (int t = 0; t < 300; ++t) {
    ASSERT_TRUE(core->Append(a, sa.Next()).ok());
    ASSERT_TRUE(core->Append(b, sb.Next()).ok());
  }
  for (std::size_t j = 0; j < config.num_levels; ++j) {
    EXPECT_GT(core->index(j).size(), 0u) << "level " << j;
    EXPECT_TRUE(core->index(j).CheckInvariants().ok());
    // Index only holds sealed, unexpired boxes: bounded by history.
    EXPECT_LE(core->index(j).size(),
              2 * (config.history / config.box_capacity + 1));
  }
}

}  // namespace
}  // namespace stardust
