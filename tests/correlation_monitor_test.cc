#include "core/correlation_monitor.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "baselines/linear_scan.h"
#include "common/rng.h"
#include "stream/dataset.h"

namespace stardust {
namespace {

StardustConfig CorrelationConfig(std::size_t w, std::size_t levels,
                                 std::size_t f) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = f;
  config.base_window = w;
  config.num_levels = levels;
  config.history = w << (levels - 1);  // N = W · 2^J
  config.box_capacity = 1;
  config.update_period = w;
  return config;
}

/// Builds M streams where streams 0 and 1 are strongly correlated (shared
/// signal plus small independent noise) and the rest are independent.
Dataset CorrelatedDataset(std::size_t m, std::size_t len,
                          std::uint64_t seed) {
  Dataset dataset;
  Rng rng(seed);
  std::vector<double> shared(len);
  double walk = 50.0;
  for (double& v : shared) {
    walk += rng.NextDouble() - 0.5;
    v = walk;
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> stream(len);
    if (i < 2) {
      for (std::size_t t = 0; t < len; ++t) {
        stream[t] = shared[t] + 0.02 * rng.NextGaussian();
      }
    } else {
      double independent = rng.NextDouble(0.0, 100.0);
      for (std::size_t t = 0; t < len; ++t) {
        independent += rng.NextDouble() - 0.5;
        stream[t] = independent;
      }
    }
    dataset.streams.push_back(std::move(stream));
  }
  dataset.r_min = 0.0;
  dataset.r_max = 200.0;
  return dataset;
}

TEST(CorrelationMonitorTest, CreateValidation) {
  StardustConfig config = CorrelationConfig(16, 5, 2);
  EXPECT_TRUE(CorrelationMonitor::Create(config, 4, 0.1).ok());
  EXPECT_FALSE(CorrelationMonitor::Create(config, 0, 0.1).ok());
  EXPECT_FALSE(CorrelationMonitor::Create(config, 4, -1.0).ok());
  StardustConfig online = config;
  online.update_period = 1;
  online.exact_levels = true;
  EXPECT_FALSE(CorrelationMonitor::Create(online, 4, 0.1).ok());
  StardustConfig wrong_norm = config;
  wrong_norm.normalization = Normalization::kUnitSphere;
  EXPECT_FALSE(CorrelationMonitor::Create(wrong_norm, 4, 0.1).ok());
  StardustConfig short_history = config;
  short_history.history = config.history * 2;
  EXPECT_FALSE(CorrelationMonitor::Create(short_history, 4, 0.1).ok());
}

TEST(CorrelationMonitorTest, DetectsPlantedCorrelatedPair) {
  const std::size_t len = 512;
  const Dataset dataset = CorrelatedDataset(6, len, 42);
  auto monitor = std::move(CorrelationMonitor::Create(
                               CorrelationConfig(16, 5, 4), 6, 0.2))
                     .value();
  std::vector<double> values(6);
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t i = 0; i < 6; ++i) values[i] = dataset.streams[i][t];
    ASSERT_TRUE(monitor->AppendAll(values).ok());
  }
  // The planted pair (0, 1) must have been reported and verified.
  bool found = false;
  for (const auto& pair : monitor->last_round()) {
    if (pair.a == 0 && pair.b == 1) {
      found = true;
      EXPECT_TRUE(pair.verified);
      EXPECT_LT(pair.distance, 0.2);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GT(monitor->stats().true_pairs, 0u);
}

// Soundness + completeness of one detection round against the exact
// oracle: every truly correlated pair is a candidate (feature distance
// lower-bounds window distance), and verified pairs match the oracle.
TEST(CorrelationMonitorTest, LastRoundMatchesLinearScan) {
  const std::size_t w = 16, levels = 4;  // N = 128
  const std::size_t n = w << (levels - 1);
  const std::size_t len = 256;
  const double radius = 0.6;
  const Dataset dataset = CorrelatedDataset(8, len, 7);
  auto monitor = std::move(CorrelationMonitor::Create(
                               CorrelationConfig(w, levels, 4), 8, radius))
                     .value();
  std::vector<double> values(8);
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t i = 0; i < 8; ++i) values[i] = dataset.streams[i][t];
    ASSERT_TRUE(monitor->AppendAll(values).ok());
  }
  const auto expected = ScanCorrelatedPairs(dataset, n, radius);
  std::set<std::pair<std::uint32_t, std::uint32_t>> expected_set(
      expected.begin(), expected.end());
  std::set<std::pair<std::uint32_t, std::uint32_t>> verified_set;
  for (const auto& pair : monitor->last_round()) {
    if (pair.verified) verified_set.insert({pair.a, pair.b});
  }
  EXPECT_EQ(verified_set, expected_set);
  // Candidates of the round dominate the verified pairs.
  EXPECT_GE(monitor->last_round().size(), verified_set.size());
}

TEST(CorrelationMonitorTest, NoDetectionBeforeHistoryFills) {
  auto monitor = std::move(CorrelationMonitor::Create(
                               CorrelationConfig(8, 3, 2), 3, 0.5))
                     .value();
  std::vector<double> values{1.0, 2.0, 3.0};
  for (int t = 0; t < 31; ++t) {  // N = 32: one short of a full window
    ASSERT_TRUE(monitor->AppendAll(values).ok());
  }
  EXPECT_EQ(monitor->stats().candidates, 0u);
  EXPECT_TRUE(monitor->last_round().empty());
}

TEST(CorrelationMonitorTest, IdenticalStreamsAlwaysPair) {
  auto monitor = std::move(CorrelationMonitor::Create(
                               CorrelationConfig(8, 3, 2), 2, 0.1))
                     .value();
  Rng rng(3);
  double walk = 10.0;
  for (int t = 0; t < 128; ++t) {
    walk += rng.NextDouble() - 0.5;
    ASSERT_TRUE(monitor->AppendAll({walk, walk}).ok());
  }
  EXPECT_GT(monitor->stats().candidates, 0u);
  EXPECT_EQ(monitor->stats().candidates, monitor->stats().true_pairs);
  EXPECT_EQ(monitor->stats().Precision(), 1.0);
}

TEST(CorrelationMonitorTest, ValueCountMustMatchStreams) {
  auto monitor = std::move(CorrelationMonitor::Create(
                               CorrelationConfig(8, 3, 2), 3, 0.5))
                     .value();
  EXPECT_FALSE(monitor->AppendAll({1.0, 2.0}).ok());
}

}  // namespace
}  // namespace stardust
