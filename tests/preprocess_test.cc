#include "stream/preprocess.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stardust {
namespace {

Dataset Single(std::vector<double> values) {
  Dataset d;
  d.streams.push_back(std::move(values));
  d.r_min = 0.0;
  d.r_max = 1.0;
  return d;
}

const double kNan = std::nan("");

TEST(FillGapsTest, InteriorGapInterpolatesLinearly) {
  const auto out = FillGaps(Single({1.0, kNan, kNan, 4.0}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().streams[0], (std::vector<double>{1.0, 2.0, 3.0,
                                                         4.0}));
}

TEST(FillGapsTest, EdgesClampToNearestFinite) {
  const auto out = FillGaps(Single({kNan, kNan, 5.0, kNan}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().streams[0],
            (std::vector<double>{5.0, 5.0, 5.0, 5.0}));
}

TEST(FillGapsTest, InfinityTreatedAsGap) {
  const auto out = FillGaps(Single({2.0, INFINITY, 4.0}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().streams[0], (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(FillGapsTest, AllNanFails) {
  EXPECT_FALSE(FillGaps(Single({kNan, kNan})).ok());
}

TEST(FillGapsTest, CleanStreamUnchanged) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  const auto out = FillGaps(Single(values));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().streams[0], values);
}

TEST(ResampleTest, AveragesBlocksAndDropsTail) {
  const auto out = Resample(Single({1, 3, 5, 7, 100}), 2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().streams[0], (std::vector<double>{2.0, 6.0}));
}

TEST(ResampleTest, FactorOneIsIdentity) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  const auto out = Resample(Single(values), 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().streams[0], values);
}

TEST(ResampleTest, Validation) {
  EXPECT_FALSE(Resample(Single({1.0}), 0).ok());
  EXPECT_FALSE(Resample(Single({1.0}), 2).ok());
}

TEST(DetrendTest, RemovesExactLinearRamp) {
  std::vector<double> ramp(100);
  for (std::size_t t = 0; t < ramp.size(); ++t) {
    ramp[t] = 5.0 + 0.25 * static_cast<double>(t);
  }
  const auto out = Detrend(Single(ramp));
  ASSERT_TRUE(out.ok());
  const auto& flat = out.value().streams[0];
  // Flat at the original mean level.
  const double expected = 5.0 + 0.25 * 99.0 / 2.0;
  for (double v : flat) EXPECT_NEAR(v, expected, 1e-9);
}

TEST(DetrendTest, PreservesFluctuationsAroundTrend) {
  Rng rng(4);
  std::vector<double> values(500);
  std::vector<double> noise(500);
  for (std::size_t t = 0; t < values.size(); ++t) {
    noise[t] = rng.NextGaussian();
    values[t] = 100.0 - 0.1 * static_cast<double>(t) + noise[t];
  }
  const auto out = Detrend(Single(values));
  ASSERT_TRUE(out.ok());
  // Residuals correlate strongly with the injected noise.
  const auto& detrended = out.value().streams[0];
  double mean = 0.0;
  for (double v : detrended) mean += v;
  mean /= detrended.size();
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  double noise_mean = 0.0;
  for (double v : noise) noise_mean += v;
  noise_mean /= noise.size();
  for (std::size_t t = 0; t < detrended.size(); ++t) {
    cov += (detrended[t] - mean) * (noise[t] - noise_mean);
    var_a += (detrended[t] - mean) * (detrended[t] - mean);
    var_b += (noise[t] - noise_mean) * (noise[t] - noise_mean);
  }
  EXPECT_GT(cov / std::sqrt(var_a * var_b), 0.99);
}

TEST(DetrendTest, NeedsTwoValues) {
  EXPECT_FALSE(Detrend(Single({1.0})).ok());
}

TEST(PreprocessTest, PipelineComposes) {
  // Gaps -> fill -> resample -> detrend on a noisy ramp with holes.
  std::vector<double> values(64);
  for (std::size_t t = 0; t < values.size(); ++t) {
    values[t] = static_cast<double>(t) + (t % 7 == 0 ? kNan : 0.0);
  }
  auto filled = FillGaps(Single(values));
  ASSERT_TRUE(filled.ok());
  auto down = Resample(filled.value(), 4);
  ASSERT_TRUE(down.ok());
  ASSERT_EQ(down.value().length(), 16u);
  auto flat = Detrend(down.value());
  ASSERT_TRUE(flat.ok());
  for (double v : flat.value().streams[0]) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace stardust
