#include "baselines/mrindex.h"

#include <set>

#include <gtest/gtest.h>

#include "baselines/linear_scan.h"
#include "stream/dataset.h"

namespace stardust {
namespace {

MrIndexOptions Options(const Dataset& dataset) {
  MrIndexOptions options;
  options.base_window = 16;
  options.num_levels = 4;
  options.box_capacity = 8;
  options.coefficients = 4;
  options.history = 1024;
  options.r_max = dataset.r_max;
  return options;
}

std::set<std::pair<StreamId, std::uint64_t>> MatchSet(
    const std::vector<PatternMatch>& matches) {
  std::set<std::pair<StreamId, std::uint64_t>> out;
  for (const auto& m : matches) out.emplace(m.stream, m.end_time);
  return out;
}

TEST(MrIndexTest, BuildAndQuery) {
  const Dataset dataset = MakeRandomWalkDataset(3, 512, 6);
  auto mr = std::move(MrIndex::Build(dataset, Options(dataset))).value();
  const std::size_t len = 80, start = 100;
  std::vector<double> query(dataset.streams[0].begin() + start,
                            dataset.streams[0].begin() + start + len);
  const auto result = mr->Query(query, 1e-9);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(MatchSet(result.value().matches).count({0, start + len - 1}),
            1u);
}

TEST(MrIndexTest, EqualsLinearScanAcrossRadii) {
  const Dataset dataset = MakeRandomWalkDataset(4, 512, 7);
  auto mr = std::move(MrIndex::Build(dataset, Options(dataset))).value();
  const auto queries = MakeQueryWorkload(4, {48, 112, 176}, 8);
  for (double radius : {0.005, 0.02, 0.05}) {
    for (const auto& query : queries) {
      const auto result = mr->Query(query, radius);
      ASSERT_TRUE(result.ok());
      const auto expected = MatchSet(
          ScanPatternMatches(dataset, query, radius,
                             Normalization::kUnitSphere, dataset.r_max));
      EXPECT_EQ(MatchSet(result.value().matches), expected);
    }
  }
}

// MR-Index stores exact per-level features, so with identical settings its
// candidate set is never larger than online Stardust's (whose merged
// extents only widen boxes) — the quality relationship behind Figure 5.
TEST(MrIndexTest, CandidatesNoLooserThanIncrementalStardust) {
  const Dataset dataset = MakeRandomWalkDataset(4, 512, 9);
  const MrIndexOptions options = Options(dataset);
  auto mr = std::move(MrIndex::Build(dataset, options)).value();

  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = options.coefficients;
  config.r_max = options.r_max;
  config.base_window = options.base_window;
  config.num_levels = options.num_levels;
  config.history = options.history;
  config.box_capacity = options.box_capacity;
  config.update_period = 1;
  config.index_features = true;
  auto core = std::move(Stardust::Create(config)).value();
  for (std::size_t i = 0; i < dataset.num_streams(); ++i) {
    const StreamId id = core->AddStream();
    for (double v : dataset.streams[i]) {
      ASSERT_TRUE(core->Append(id, v).ok());
    }
  }
  PatternQueryEngine online(*core);

  const auto queries = MakeQueryWorkload(5, {112}, 10);
  std::uint64_t mr_candidates = 0, online_candidates = 0;
  for (const auto& query : queries) {
    const auto a = mr->Query(query, 0.02);
    const auto b = online.QueryOnline(query, 0.02);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    mr_candidates += a.value().candidates;
    online_candidates += b.value().candidates;
    EXPECT_EQ(MatchSet(a.value().matches), MatchSet(b.value().matches));
  }
  EXPECT_LE(mr_candidates, online_candidates);
}

}  // namespace
}  // namespace stardust
