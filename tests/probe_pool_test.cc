// Tests for the correlator's probe worker pool (src/query/probe_pool):
// the exactly-once task contract across worker counts (including the
// inline zero-worker degradation), reuse across many generations, and
// the auto worker resolution.
#include "query/probe_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace stardust {
namespace {

TEST(ProbePoolTest, RunsEveryTaskExactlyOnce) {
  for (const std::size_t workers : {0u, 1u, 2u, 3u}) {
    ProbePool pool(workers);
    EXPECT_EQ(pool.workers(), workers);
    for (const std::size_t num_tasks : {0u, 1u, 7u, 1000u}) {
      std::vector<std::atomic<int>> counts(num_tasks);
      for (auto& c : counts) c.store(0);
      pool.Run(num_tasks, [&counts](std::size_t task) {
        ASSERT_LT(task, counts.size());
        counts[task].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < num_tasks; ++i) {
        EXPECT_EQ(counts[i].load(), 1)
            << "task " << i << " with " << workers << " workers";
      }
    }
  }
}

// The pool lives across rounds: many back-to-back generations with
// different task counts and different callables must stay exactly-once
// (this is the lifetime race the rendezvous protocol exists for — a
// late-waking worker must never touch a finished generation's state).
TEST(ProbePoolTest, ReusableAcrossGenerations) {
  ProbePool pool(2);
  std::atomic<std::size_t> total{0};
  std::size_t expected = 0;
  for (std::size_t round = 0; round < 200; ++round) {
    const std::size_t num_tasks = round % 17;
    pool.Run(num_tasks, [&total](std::size_t task) {
      total.fetch_add(task + 1, std::memory_order_relaxed);
    });
    expected += num_tasks * (num_tasks + 1) / 2;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ProbePoolTest, ResolveWorkersHonorsExplicitCountAndClampsAuto) {
  EXPECT_EQ(ProbePool::ResolveWorkers(3), 3u);
  EXPECT_EQ(ProbePool::ResolveWorkers(1), 1u);
  // Auto: never more than 4, and 0 on a single-hardware-thread host.
  const std::size_t resolved = ProbePool::ResolveWorkers(0);
  EXPECT_LE(resolved, 4u);
}

TEST(ProbePoolTest, DestructionWithIdleWorkersIsClean) {
  auto pool = std::make_unique<ProbePool>(3);
  pool->Run(5, [](std::size_t) {});
  pool.reset();  // must join without a pending generation wedging workers
  SUCCEED();
}

}  // namespace
}  // namespace stardust
