#include "common/status.h"

#include <gtest/gtest.h>

namespace stardust {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad window");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad window");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "Aborted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status Propagates(bool fail) {
  SD_RETURN_NOT_OK(fail ? Fails() : Succeeds());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates(false).ok());
  EXPECT_EQ(Propagates(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace stardust
