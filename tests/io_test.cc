#include "stream/io.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stream/dataset.h"

namespace stardust {
namespace {

TEST(CsvTest, ParsesPlainNumericCsv) {
  const std::string text = "1.0,2.0\n3.5,-4.0\n5,6\n";
  Result<Dataset> result = ParseDatasetCsv(text);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = result.value();
  EXPECT_EQ(d.num_streams(), 2u);
  EXPECT_EQ(d.length(), 3u);
  EXPECT_EQ(d.streams[0], (std::vector<double>{1.0, 3.5, 5.0}));
  EXPECT_EQ(d.streams[1], (std::vector<double>{2.0, -4.0, 6.0}));
  EXPECT_LE(d.r_min, -4.0);
  EXPECT_GE(d.r_max, 6.0);
}

TEST(CsvTest, SkipsHeaderRow) {
  const std::string text = "sensor_a,sensor_b\n1,2\n3,4\n";
  Result<Dataset> result = ParseDatasetCsv(text);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().length(), 2u);
}

TEST(CsvTest, SkipsBlankLinesAndCarriageReturns) {
  const std::string text = "1,2\r\n\n3,4\r\n";
  Result<Dataset> result = ParseDatasetCsv(text);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().length(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseDatasetCsv("1,2\n3\n").ok());
}

TEST(CsvTest, RejectsNonNumericDataRow) {
  EXPECT_FALSE(ParseDatasetCsv("1,2\n3,oops\n").ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseDatasetCsv("").ok());
  EXPECT_FALSE(ParseDatasetCsv("only,a,header\n").ok());
}

TEST(CsvTest, SingleColumn) {
  Result<Dataset> result = ParseDatasetCsv("1\n2\n3\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_streams(), 1u);
  EXPECT_EQ(result.value().length(), 3u);
}

TEST(CsvTest, RoundTripIsExact) {
  const Dataset original = MakeRandomWalkDataset(3, 50, 123);
  const std::string text = FormatDatasetCsv(original);
  Result<Dataset> result = ParseDatasetCsv(text);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().num_streams(), original.num_streams());
  for (std::size_t s = 0; s < original.num_streams(); ++s) {
    ASSERT_EQ(result.value().streams[s].size(), original.streams[s].size());
    for (std::size_t t = 0; t < original.streams[s].size(); ++t) {
      EXPECT_EQ(result.value().streams[s][t], original.streams[s][t])
          << "stream " << s << " t " << t;
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  const Dataset original = MakeHostLoadDataset(2, 40, 9);
  const std::string path = ::testing::TempDir() + "/stardust_io_test.csv";
  ASSERT_TRUE(SaveDatasetCsv(original, path).ok());
  Result<Dataset> loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().streams, original.streams);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  Result<Dataset> result = LoadDatasetCsv("/no/such/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// --- ParseCsvRow (line-oriented ingest, stardust_cli ingest) ------------

TEST(CsvTest, ParseCsvRowParsesNumericFields) {
  std::vector<double> row;
  ASSERT_TRUE(ParseCsvRow("1.5, -2,3e2", &row).ok());
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 1.5);
  EXPECT_EQ(row[1], -2.0);
  EXPECT_EQ(row[2], 300.0);
}

TEST(CsvTest, ParseCsvRowClearsPreviousContents) {
  std::vector<double> row = {9.0, 9.0};
  ASSERT_TRUE(ParseCsvRow("4", &row).ok());
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], 4.0);
}

TEST(CsvTest, ParseCsvRowNamesTheOffendingColumn) {
  std::vector<double> row;
  const Status bad = ParseCsvRow("1,oops,3", &row);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("column 2"), std::string::npos);
  EXPECT_NE(bad.message().find("oops"), std::string::npos);
  // An empty field (trailing comma) is diagnosed too.
  EXPECT_FALSE(ParseCsvRow("1,2,", &row).ok());
  EXPECT_FALSE(ParseCsvRow("", &row).ok());
}

}  // namespace
}  // namespace stardust

