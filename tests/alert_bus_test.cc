#include "query/alert_bus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "query/sinks.h"

namespace stardust {
namespace {

Alert MakeAlert(std::uint64_t n) {
  Alert alert;
  alert.query = n;
  alert.kind = QueryKind::kAggregate;
  alert.stream = static_cast<StreamId>(n);
  alert.window = 20;
  alert.end_time = 100 + n;
  alert.epoch = n;
  alert.value = 1.5 * static_cast<double>(n);
  alert.threshold = 1.0;
  return alert;
}

std::filesystem::path TempDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(AlertJsonTest, EncodesEveryField) {
  Alert alert;
  alert.query = 3;
  alert.kind = QueryKind::kPattern;
  alert.stream = 5;
  alert.stream_b = 0;
  alert.window = 32;
  alert.end_time = 511;
  alert.epoch = 14;
  alert.value = 0.5;
  alert.threshold = 0.75;
  EXPECT_EQ(AlertToJson(alert),
            "{\"query\":3,\"kind\":\"pattern\",\"stream\":5,"
            "\"stream_b\":0,\"window\":32,\"end_time\":511,\"epoch\":14,"
            "\"value\":0.5,\"threshold\":0.75}");
}

TEST(AlertBusTest, DeliversInOrderToAllSinks) {
  AlertBus bus(64, OverloadPolicy::kBlock);
  auto ring = std::make_shared<RingSink>();
  std::vector<std::uint64_t> seen;
  auto callback = std::make_shared<CallbackSink>(
      [&seen](const Alert& alert) { seen.push_back(alert.query); });
  bus.AddSink(ring);
  bus.AddSink(callback);
  bus.Start();
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(bus.Publish(MakeAlert(i)).ok());
  }
  ASSERT_TRUE(bus.WaitDrained().ok());
  bus.Stop();
  EXPECT_EQ(bus.published(), 10u);
  EXPECT_EQ(bus.delivered(), 10u);
  ASSERT_EQ(seen.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
  const std::vector<Alert> kept = ring->Snapshot();
  ASSERT_EQ(kept.size(), 10u);
  EXPECT_EQ(kept.front().query, 0u);
  EXPECT_EQ(kept.back().query, 9u);
  EXPECT_GT(bus.delivery_latency().Count(), 0u);
}

TEST(AlertBusTest, PublishBeforeStartIsDeliveredAfterStart) {
  AlertBus bus(16, OverloadPolicy::kBlock);
  auto ring = std::make_shared<RingSink>();
  bus.AddSink(ring);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(bus.Publish(MakeAlert(i)).ok());
  }
  EXPECT_EQ(ring->total(), 0u);
  bus.Start();
  ASSERT_TRUE(bus.WaitDrained().ok());
  EXPECT_EQ(ring->total(), 5u);
  bus.Stop();
}

// Overflow property, kDropNewest: the queue keeps the FIRST `capacity`
// alerts; later ones are dropped and counted, and the conservation law
// published == delivered + dropped holds.
TEST(AlertBusTest, DropNewestKeepsOldestAlerts) {
  AlertBus bus(4, OverloadPolicy::kDropNewest);
  auto ring = std::make_shared<RingSink>();
  bus.AddSink(ring);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(bus.Publish(MakeAlert(i)).ok());
  }
  EXPECT_EQ(bus.dropped_newest(), 6u);
  bus.Start();
  bus.Stop();
  EXPECT_EQ(bus.delivered(), 4u);
  EXPECT_EQ(bus.published(), bus.delivered() + bus.dropped_newest());
  const std::vector<Alert> kept = ring->Snapshot();
  ASSERT_EQ(kept.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(kept[i].query, i);
}

// Overflow property, kDropOldest: the queue keeps the LAST `capacity`
// alerts; the oldest are displaced and counted.
TEST(AlertBusTest, DropOldestKeepsNewestAlerts) {
  AlertBus bus(4, OverloadPolicy::kDropOldest);
  auto ring = std::make_shared<RingSink>();
  bus.AddSink(ring);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(bus.Publish(MakeAlert(i)).ok());
  }
  EXPECT_EQ(bus.dropped_oldest(), 6u);
  bus.Start();
  bus.Stop();
  EXPECT_EQ(bus.delivered(), 4u);
  EXPECT_EQ(bus.published(), bus.delivered() + bus.dropped_oldest());
  const std::vector<Alert> kept = ring->Snapshot();
  ASSERT_EQ(kept.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(kept[i].query, 6 + i);
}

// Overflow property, kBlock: a publisher against a full queue waits until
// the dispatcher frees space; nothing is lost.
TEST(AlertBusTest, BlockPolicyAppliesBackpressure) {
  AlertBus bus(2, OverloadPolicy::kBlock);
  auto ring = std::make_shared<RingSink>();
  bus.AddSink(ring);
  ASSERT_TRUE(bus.Publish(MakeAlert(0)).ok());
  ASSERT_TRUE(bus.Publish(MakeAlert(1)).ok());
  std::atomic<bool> third_published{false};
  std::thread publisher([&bus, &third_published] {
    ASSERT_TRUE(bus.Publish(MakeAlert(2)).ok());
    third_published.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_published.load());  // full queue, no dispatcher yet
  bus.Start();
  publisher.join();
  EXPECT_TRUE(third_published.load());
  EXPECT_GE(bus.block_waits(), 1u);
  ASSERT_TRUE(bus.WaitDrained().ok());
  bus.Stop();
  EXPECT_EQ(bus.delivered(), 3u);
  EXPECT_EQ(bus.dropped_newest() + bus.dropped_oldest(), 0u);
}

TEST(AlertBusTest, StopDrainsPendingAlertsAndRejectsLaterPublishes) {
  AlertBus bus(16, OverloadPolicy::kBlock);
  auto ring = std::make_shared<RingSink>();
  bus.AddSink(ring);
  bus.Start();
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(bus.Publish(MakeAlert(i)).ok());
  }
  bus.Stop();
  EXPECT_EQ(ring->total(), 8u);
  const Status rejected = bus.Publish(MakeAlert(9));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kAborted);
  bus.Stop();  // idempotent
}

TEST(AlertBusTest, WaitDrainedRequiresStartedBus) {
  AlertBus bus(16, OverloadPolicy::kBlock);
  EXPECT_EQ(bus.WaitDrained().code(), StatusCode::kFailedPrecondition);
}

TEST(AlertBusTest, RemoveSinkStopsDelivery) {
  AlertBus bus(16, OverloadPolicy::kBlock);
  auto ring = std::make_shared<RingSink>();
  const AlertBus::SinkId id = bus.AddSink(ring);
  bus.Start();
  ASSERT_TRUE(bus.Publish(MakeAlert(0)).ok());
  ASSERT_TRUE(bus.WaitDrained().ok());
  EXPECT_TRUE(bus.RemoveSink(id));
  EXPECT_FALSE(bus.RemoveSink(id));  // already gone
  ASSERT_TRUE(bus.Publish(MakeAlert(1)).ok());
  ASSERT_TRUE(bus.WaitDrained().ok());
  bus.Stop();
  EXPECT_EQ(ring->total(), 1u);
}

TEST(AlertBusTest, RingSinkRetainsOnlyTheMostRecent) {
  RingSink sink(3);
  for (std::uint64_t i = 0; i < 7; ++i) sink.OnAlert(MakeAlert(i));
  EXPECT_EQ(sink.total(), 7u);
  const std::vector<Alert> kept = sink.Snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].query, 4u);
  EXPECT_EQ(kept[2].query, 6u);
}

TEST(AlertBusTest, JsonlFileSinkWritesOneLinePerAlert) {
  const std::filesystem::path dir = TempDir("stardust_jsonl_sink_test");
  const std::string path = (dir / "alerts.jsonl").string();
  {
    AlertBus bus(16, OverloadPolicy::kBlock);
    auto sink = std::move(JsonlFileSink::Open(path)).value();
    bus.AddSink(std::shared_ptr<JsonlFileSink>(std::move(sink)));
    bus.Start();
    for (std::uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(bus.Publish(MakeAlert(i)).ok());
    }
    bus.Stop();  // flushes the sink
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(lines[i], AlertToJson(MakeAlert(i)));
  }
  std::filesystem::remove_all(dir);
}

// Many producers racing one dispatcher: everything published is either
// delivered or accounted as dropped, never lost or duplicated.
TEST(AlertBusTest, ConcurrentPublishersConserveAlerts) {
  AlertBus bus(32, OverloadPolicy::kDropOldest);
  auto ring = std::make_shared<RingSink>(100000);
  bus.AddSink(ring);
  bus.Start();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kThreads; ++p) {
    producers.emplace_back([&bus, p] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(
            bus.Publish(MakeAlert(static_cast<std::uint64_t>(p) * kPerThread +
                                  i))
                .ok());
      }
    });
  }
  for (std::thread& t : producers) t.join();
  bus.Stop();
  EXPECT_EQ(bus.published(), kThreads * kPerThread);
  EXPECT_EQ(bus.published(), bus.delivered() + bus.dropped_oldest());
  EXPECT_EQ(ring->total(), bus.delivered());
}

// Regression: a bus that was never started used to drop its queued
// alerts on Stop — no dispatcher ever ran, yet Stop returned as if the
// queue had drained. Stop now delivers the tail inline.
TEST(AlertBusTest, StopWithoutStartDeliversQueuedAlerts) {
  AlertBus bus(16, OverloadPolicy::kBlock);
  auto ring = std::make_shared<RingSink>();
  bus.AddSink(ring);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(bus.Publish(MakeAlert(i)).ok());
  }
  bus.Stop();  // never started
  EXPECT_EQ(ring->total(), 5u);
  EXPECT_EQ(bus.delivered(), 5u);
  const std::vector<Alert> kept = ring->Snapshot();
  ASSERT_EQ(kept.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(kept[i].query, i);
}

// Same regression through a file sink: the last partial batch must be on
// disk when Stop returns, started dispatcher or not.
TEST(AlertBusTest, StopWithoutStartFlushesFileSink) {
  const std::filesystem::path dir = TempDir("stardust_stop_flush_test");
  const std::string path = (dir / "alerts.jsonl").string();
  {
    AlertBus bus(16, OverloadPolicy::kBlock);
    auto sink = std::move(JsonlFileSink::Open(path)).value();
    bus.AddSink(std::shared_ptr<JsonlFileSink>(std::move(sink)));
    for (std::uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(bus.Publish(MakeAlert(i)).ok());
    }
    bus.Stop();
    // Read back before destruction: durability must come from Stop's
    // flush, not from the sink destructor.
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);
    for (std::uint64_t i = 0; i < 3; ++i) {
      EXPECT_EQ(lines[i], AlertToJson(MakeAlert(i)));
    }
  }
  std::filesystem::remove_all(dir);
}

// Regression: a second Stop used to return immediately once the first had
// merely set the stopping flag, before the queue tail was delivered or
// the sinks flushed. Both racing Stops must observe full delivery.
TEST(AlertBusTest, ConcurrentStopsBothWaitForDelivery) {
  AlertBus bus(64, OverloadPolicy::kBlock);
  auto ring = std::make_shared<RingSink>();
  auto slow = std::make_shared<CallbackSink>([](const Alert&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  bus.AddSink(slow);
  bus.AddSink(ring);
  bus.Start();
  static constexpr std::uint64_t kAlerts = 8;
  for (std::uint64_t i = 0; i < kAlerts; ++i) {
    ASSERT_TRUE(bus.Publish(MakeAlert(i)).ok());
  }
  std::atomic<int> stops_returned{0};
  std::vector<std::thread> stoppers;
  for (int t = 0; t < 2; ++t) {
    stoppers.emplace_back([&bus, &ring, &stops_returned] {
      bus.Stop();
      // Whichever Stop returns first must already observe everything
      // delivered; the buggy fast path returned mid-drain.
      EXPECT_EQ(ring->total(), kAlerts);
      stops_returned.fetch_add(1);
    });
  }
  for (std::thread& t : stoppers) t.join();
  EXPECT_EQ(stops_returned.load(), 2);
  EXPECT_EQ(bus.delivered(), kAlerts);
}

}  // namespace
}  // namespace stardust
