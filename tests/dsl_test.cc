// Monitor DSL: document parser strictness, assess-range grammar,
// monitor round-trips, and fail-closed compilation (src/dsl).
#include "dsl/monitor.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsl/text.h"

namespace stardust::dsl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- Text parser --------------------------------------------------------

TEST(TextParserTest, ParsesMapsListsAndScalars) {
  const std::string doc =
      "name: demo   # trailing comment\n"
      "limits:\n"
      "  low: 3\n"
      "  high: \"quoted: value\"\n"
      "items:\n"
      "  - first: 1\n"
      "    second: 2\n"
      "  - first: 3\n"
      "    second: 4\n";
  Result<TextNode> root = ParseTextDocument(doc, "test");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  const TextNode* name = root.value().Get("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->scalar, "demo");
  EXPECT_EQ(name->line, 1u);
  const TextNode* limits = root.value().Get("limits");
  ASSERT_NE(limits, nullptr);
  ASSERT_EQ(limits->kind, TextNode::Kind::kMap);
  EXPECT_EQ(limits->Get("low")->scalar, "3");
  EXPECT_EQ(limits->Get("high")->scalar, "quoted: value");
  const TextNode* items = root.value().Get("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->kind, TextNode::Kind::kList);
  ASSERT_EQ(items->items.size(), 2u);
  EXPECT_EQ(items->items[1].Get("second")->scalar, "4");
  EXPECT_EQ(items->items[1].Get("second")->line, 9u);
}

TEST(TextParserTest, LiteralBlockKeepsLinesAndPosition) {
  const std::string doc =
      "rows: |\n"
      "  1, 2, 3\n"
      "  4, 5, 6   # kept verbatim, not a comment\n"
      "after: yes\n";
  Result<TextNode> root = ParseTextDocument(doc, "test");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  const TextNode* rows = root.value().Get("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_TRUE(rows->literal_block);
  EXPECT_EQ(rows->line, 2u);
  EXPECT_EQ(rows->scalar, "1, 2, 3\n4, 5, 6   # kept verbatim, not a comment");
  EXPECT_EQ(root.value().Get("after")->scalar, "yes");
}

struct BadDoc {
  const char* doc;
  const char* position;  // expected "line:col" fragment in the message
};

class TextParserRejects : public ::testing::TestWithParam<BadDoc> {};

TEST_P(TextParserRejects, WithPositionedDiagnostic) {
  Result<TextNode> root = ParseTextDocument(GetParam().doc, "bad");
  ASSERT_FALSE(root.ok()) << GetParam().doc;
  const std::string expect = std::string("bad:") + GetParam().position;
  EXPECT_NE(root.status().message().find(expect), std::string::npos)
      << root.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    HostileInputs, TextParserRejects,
    ::testing::Values(
        BadDoc{"", "1:1"},                          // empty document
        BadDoc{"# only comments\n", "1:1"},         // still empty
        BadDoc{"  indented: 1\n", "1:3"},           // top level not col 1
        BadDoc{"a: 1\na: 2\n", "2:1"},              // duplicate key
        BadDoc{"plain scalar\n", "1:1"},            // no key
        BadDoc{"a: 1\n\tb: 2\n", "2:1"},            // tab indentation
        BadDoc{"a:\n", "1:1"},                      // missing value
        BadDoc{"a: \"unterminated\n", "1:4"},       // bad quote
        BadDoc{"a: 1\n    b: 2\n", "2:5"},          // stray deep indent
        BadDoc{"list:\n  - 1\n  -\n", "3:3"},       // empty list item
        BadDoc{"rows: |\nafter: 1\n", "1:1"},       // empty literal block
        BadDoc{"a: 1\nb\n", "2:1"}));               // key without colon

// --- Assess ranges ------------------------------------------------------

TEST(AssessRangeTest, ParsesIntervalAndComparatorForms) {
  Result<AssessRange> r = ParseAssessRange("(5, 15]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().lo, 5.0);
  EXPECT_EQ(r.value().hi, 15.0);
  EXPECT_FALSE(r.value().lo_inclusive);
  EXPECT_TRUE(r.value().hi_inclusive);
  EXPECT_FALSE(r.value().Contains(5.0));
  EXPECT_TRUE(r.value().Contains(15.0));

  r = ParseAssessRange(">0.97");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().lo, 0.97);
  EXPECT_FALSE(r.value().lo_inclusive);
  EXPECT_EQ(r.value().hi, kInf);
  EXPECT_FALSE(r.value().Contains(0.97));
  EXPECT_TRUE(r.value().Contains(1.0));

  r = ParseAssessRange("<= -2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().hi, -2.0);
  EXPECT_TRUE(r.value().hi_inclusive);
  EXPECT_EQ(r.value().lo, -kInf);

  r = ParseAssessRange("[-inf, 12)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().lo, -kInf);
  EXPECT_EQ(r.value().hi, 12.0);
  EXPECT_FALSE(r.value().hi_inclusive);
}

TEST(AssessRangeTest, RejectsMalformedAndEmptyRanges) {
  for (const char* bad :
       {"", "5", "[5]", "[a, b]", "[5, 4]", "(5, 5)", ">(3)", ">",
        "[5, 6", "{5, 6}", "[nan, 5]", ">nan"}) {
    EXPECT_FALSE(ParseAssessRange(bad).ok()) << "'" << bad << "'";
  }
}

TEST(AssessRangeTest, FormatParsesBackExactly) {
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    AssessRange range;
    switch (i % 4) {
      case 0:
        range.lo = rng.NextGaussian() * 100.0;
        range.hi = range.lo + std::abs(rng.NextGaussian()) + 0.001;
        break;
      case 1:
        range.lo = -kInf;
        range.hi = rng.NextGaussian();
        break;
      case 2:
        range.lo = rng.NextGaussian();
        range.hi = kInf;
        break;
      case 3:
        range.lo = range.hi = std::floor(rng.NextDouble(-50.0, 50.0));
        break;
    }
    range.lo_inclusive = i % 3 != 0 || range.lo == range.hi;
    range.hi_inclusive = i % 5 != 0 || range.lo == range.hi;
    ASSERT_TRUE(range.Validate().ok());
    Result<AssessRange> back = ParseAssessRange(FormatAssessRange(range));
    ASSERT_TRUE(back.ok()) << FormatAssessRange(range);
    EXPECT_EQ(back.value(), range) << FormatAssessRange(range);
  }
}

// --- Monitor round-trip and compilation ---------------------------------

MonitorDef SampleMonitor(int i) {
  MonitorDef def;
  switch (i % 4) {
    case 0:
      def.name = "burst";
      def.measure = "sum";
      def.window = 8;
      def.assess = {.lo = 0.0, .hi = 12.0};
      def.alert_rate = 2.5;
      def.alert_burst = 4;
      break;
    case 1:
      def.name = "variety";
      def.measure = "distinct";
      def.window = 32;
      def.assess = {.hi = 8.0, .hi_inclusive = false};
      def.precision = 14;
      def.buckets = 8;
      break;
    case 2:
      def.name = "p99";
      def.measure = "quantile";
      def.window = 128;
      def.assess = {.lo = 0.0, .hi = 3.0};
      def.q = 0.99;
      break;
    default:
      def.name = "dominant";
      def.measure = "heavy_hitters";
      def.window = 64;
      def.assess = {.lo = 1.0};
      def.epsilon = 0.005;
      def.depth = 5;
      def.phi = 0.4;
      def.candidates = 16;
      break;
  }
  return def;
}

TEST(MonitorTest, FormatParsesBackToTheSameDefinition) {
  for (int i = 0; i < 4; ++i) {
    const MonitorDef def = SampleMonitor(i);
    const std::string text = "monitors:\n" + FormatMonitor(def);
    Result<TextNode> root = ParseTextDocument(text, "roundtrip");
    ASSERT_TRUE(root.ok()) << root.status().ToString() << "\n" << text;
    const TextNode* monitors = root.value().Get("monitors");
    ASSERT_NE(monitors, nullptr);
    ASSERT_EQ(monitors->items.size(), 1u);
    Result<MonitorDef> back =
        MonitorFromNode(monitors->items[0], "roundtrip");
    ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << text;
    EXPECT_EQ(back.value(), def) << text;
  }
}

TEST(MonitorTest, UnknownKeysFailClosed) {
  const std::string doc =
      "- name: m\n"
      "  measure: sum\n"
      "  window: 8\n"
      "  assess: \"[0, 1]\"\n"
      "  threshold: 5\n";  // not a monitor key
  Result<TextNode> root = ParseTextDocument(doc, "strict");
  ASSERT_TRUE(root.ok());
  Result<MonitorDef> def =
      MonitorFromNode(root.value().items[0], "strict");
  ASSERT_FALSE(def.ok());
  EXPECT_NE(def.status().message().find("unknown monitor key 'threshold'"),
            std::string::npos)
      << def.status().ToString();
  EXPECT_NE(def.status().message().find("strict:5:"), std::string::npos)
      << def.status().ToString();
}

TEST(MonitorTest, MissingRequiredKeysAreDiagnosed) {
  const char* docs[] = {
      "- measure: sum\n  window: 8\n  assess: \"[0, 1]\"\n",   // no name
      "- name: m\n  window: 8\n  assess: \"[0, 1]\"\n",        // no measure
      "- name: m\n  measure: sum\n  assess: \"[0, 1]\"\n",     // no window
      "- name: m\n  measure: sum\n  window: 8\n",              // no assess
      "- name: m\n  measure: mean\n  window: 8\n  assess: \">0\"\n",
      "- name: m\n  measure: sum\n  window: x\n  assess: \">0\"\n",
      "- name: m\n  measure: sum\n  window: 8\n  assess: \"oops\"\n",
  };
  for (const char* doc : docs) {
    Result<TextNode> root = ParseTextDocument(doc, "strict");
    ASSERT_TRUE(root.ok()) << doc;
    EXPECT_FALSE(MonitorFromNode(root.value().items[0], "strict").ok())
        << doc;
  }
}

TEST(MonitorTest, CompileLowersExactAndSketchMeasures) {
  MonitorDef exact = SampleMonitor(0);
  Result<QuerySpec> spec = CompileMonitor(exact, AggregateKind::kSum);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().kind, QueryKind::kAggregate);
  EXPECT_EQ(spec.value().window, 8u);
  EXPECT_EQ(spec.value().assess.hi, 12.0);
  EXPECT_EQ(spec.value().alert_rate_per_sec, 2.5);
  EXPECT_EQ(spec.value().alert_burst, 4u);
  // The measure must match the engine's exact aggregate.
  EXPECT_FALSE(CompileMonitor(exact, AggregateKind::kMax).ok());

  MonitorDef sketch = SampleMonitor(3);
  spec = CompileMonitor(sketch, AggregateKind::kSum);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().kind, QueryKind::kSketch);
  EXPECT_EQ(spec.value().sketch.kind, SketchKind::kHeavyHitters);
  EXPECT_EQ(spec.value().sketch.window, 64u);
  EXPECT_EQ(spec.value().sketch.phi, 0.4);
  EXPECT_EQ(spec.value().window, 64u);  // mirrors the sketch window

  // Bad sketch knobs surface the monitor name.
  sketch.precision = 99;
  sketch.measure = "distinct";
  Result<QuerySpec> bad = CompileMonitor(sketch, AggregateKind::kSum);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("dominant"), std::string::npos);
}

}  // namespace
}  // namespace stardust::dsl
