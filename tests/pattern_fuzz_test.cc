// Randomized configuration sweep for the pattern engines: for random
// (W, levels, c, f, M, radius) the reported match sets must equal the
// linear-scan oracle — the completeness/soundness pair under every knob
// setting, not just the curated ones.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "baselines/linear_scan.h"
#include "common/rng.h"
#include "core/pattern_query.h"
#include "stream/dataset.h"

namespace stardust {
namespace {

std::set<std::pair<StreamId, std::uint64_t>> MatchSet(
    const std::vector<PatternMatch>& matches) {
  std::set<std::pair<StreamId, std::uint64_t>> out;
  for (const auto& m : matches) out.emplace(m.stream, m.end_time);
  return out;
}

class PatternConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatternConfigFuzz, OnlineAndBatchEqualOracleUnderRandomConfigs) {
  Rng rng(GetParam() * 131 + 7);
  // Random valid DWT configuration.
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = rng.NextDouble() < 0.8
                             ? Normalization::kUnitSphere
                             : Normalization::kNone;
  config.base_window = std::size_t{8} << rng.NextUint64(3);  // 8/16/32
  config.num_levels = 3 + rng.NextUint64(2);                 // 3 or 4
  config.coefficients =
      std::min<std::size_t>(config.base_window,
                            std::size_t{2} << rng.NextUint64(3));
  config.history = 2048;
  config.box_capacity = 1 + rng.NextUint64(16);
  config.update_period = 1;
  config.index_features = true;

  const std::size_t m = 2 + rng.NextUint64(3);
  const std::size_t length =
      config.LevelWindow(config.num_levels - 1) * 3 + 100;
  const Dataset dataset =
      MakeRandomWalkDataset(m, length, GetParam() * 17 + 3);
  config.r_max = dataset.r_max;
  ASSERT_TRUE(config.Validate().ok());

  StardustConfig batch_config = config;
  batch_config.box_capacity = 1;
  batch_config.update_period = config.base_window;

  auto online_core = std::move(Stardust::Create(config)).value();
  auto batch_core = std::move(Stardust::Create(batch_config)).value();
  for (std::size_t i = 0; i < m; ++i) {
    const StreamId a = online_core->AddStream();
    const StreamId b = batch_core->AddStream();
    for (double v : dataset.streams[i]) {
      ASSERT_TRUE(online_core->Append(a, v).ok());
      ASSERT_TRUE(batch_core->Append(b, v).ok());
    }
  }
  PatternQueryEngine online(*online_core);
  PatternQueryEngine batch(*batch_core);

  // Random query lengths (multiples of W, within the top resolution) and
  // radii; queries are perturbed subsequences so matches exist sometimes.
  for (int q = 0; q < 6; ++q) {
    const std::size_t max_b =
        (std::size_t{1} << config.num_levels) - 1;
    const std::size_t b = 2 + rng.NextUint64(max_b - 1);
    const std::size_t len = b * config.base_window;
    if (len > length / 2) continue;
    const std::size_t stream = rng.NextUint64(m);
    const std::size_t start = rng.NextUint64(length - len + 1);
    std::vector<double> query(dataset.streams[stream].begin() + start,
                              dataset.streams[stream].begin() + start + len);
    for (double& v : query) v += 0.05 * (rng.NextDouble() - 0.5);
    const double radius =
        (config.normalization == Normalization::kUnitSphere ? 0.01 : 1.0) *
        std::pow(4.0, rng.NextDouble(-1.0, 1.0));

    const auto expected = MatchSet(
        ScanPatternMatches(dataset, query, radius, config.normalization,
                           dataset.r_max));

    const auto online_result = online.QueryOnline(query, radius);
    ASSERT_TRUE(online_result.ok()) << online_result.status().ToString();
    ASSERT_EQ(MatchSet(online_result.value().matches), expected)
        << "online: W=" << config.base_window << " c="
        << config.box_capacity << " f=" << config.coefficients
        << " len=" << len << " r=" << radius;

    if (len >= 2 * config.base_window - 1) {
      const auto batch_result = batch.QueryBatch(query, radius);
      ASSERT_TRUE(batch_result.ok()) << batch_result.status().ToString();
      ASSERT_EQ(MatchSet(batch_result.value().matches), expected)
          << "batch: W=" << config.base_window << " f="
          << config.coefficients << " len=" << len << " r=" << radius;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace stardust
