// Tests for the correlator's persistent candidate indexes
// (src/query/correlation_index): the superset contract every kind must
// honor, upsert change detection, erase/reuse, and the grid's clamping
// and neighbor-enumeration fallback paths.
#include "query/correlation_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "geom/mbr.h"

namespace stardust {
namespace {

constexpr CorrelationIndexKind kAllKinds[] = {CorrelationIndexKind::kGrid,
                                              CorrelationIndexKind::kRTree,
                                              CorrelationIndexKind::kBruteForce};

Point RandomPoint(std::mt19937* rng, std::size_t dims, double span) {
  std::uniform_real_distribution<double> coord(-span, span);
  Point p(dims);
  for (double& x : p) x = coord(*rng);
  return p;
}

// The verified neighbor set (candidates filtered by exact distance) must
// be identical for every kind: each promises a superset of the true ball
// and the exact filter removes exactly the overshoot.
std::set<std::size_t> VerifiedNeighbors(const CorrelationIndex& index,
                                        const std::vector<Point>& points,
                                        const Point& q, double radius) {
  std::vector<std::size_t> candidates;
  index.Candidates(q, radius, &candidates);
  // The superset contract also forbids duplicates.
  std::vector<std::size_t> sorted = candidates;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate candidate from " << CorrelationIndexKindName(index.kind());
  std::set<std::size_t> verified;
  for (const std::size_t slot : candidates) {
    if (Dist2(points[slot], q) <= radius * radius) verified.insert(slot);
  }
  return verified;
}

TEST(CorrelationIndexTest, KindsAgreeOnVerifiedNeighbors) {
  constexpr std::size_t kDims = 4;
  constexpr std::size_t kPoints = 200;
  constexpr double kRadius = 1.5;
  std::mt19937 rng(7);
  std::vector<Point> points;
  points.reserve(kPoints);
  for (std::size_t i = 0; i < kPoints; ++i) {
    points.push_back(RandomPoint(&rng, kDims, 4.0));
  }
  std::vector<std::unique_ptr<CorrelationIndex>> indexes;
  for (const CorrelationIndexKind kind : kAllKinds) {
    indexes.push_back(CorrelationIndex::Create(kind, kDims, kRadius));
    ASSERT_NE(indexes.back(), nullptr);
    EXPECT_EQ(indexes.back()->kind(), kind);
    EXPECT_EQ(indexes.back()->dims(), kDims);
    for (std::size_t i = 0; i < kPoints; ++i) {
      EXPECT_TRUE(indexes.back()->Upsert(i, points[i]));
    }
    EXPECT_EQ(indexes.back()->size(), kPoints);
  }
  for (std::size_t trial = 0; trial < 50; ++trial) {
    const Point q = RandomPoint(&rng, kDims, 4.0);
    const std::set<std::size_t> reference =
        VerifiedNeighbors(*indexes.back(), points, q, kRadius);
    for (const auto& index : indexes) {
      EXPECT_EQ(VerifiedNeighbors(*index, points, q, kRadius), reference)
          << CorrelationIndexKindName(index->kind()) << " trial " << trial;
    }
  }
}

TEST(CorrelationIndexTest, UpsertDetectsUnchangedPoints) {
  for (const CorrelationIndexKind kind : kAllKinds) {
    auto index = CorrelationIndex::Create(kind, 2, 0.5);
    const Point a{1.0, 2.0};
    const Point b{1.0, 2.5};
    EXPECT_TRUE(index->Upsert(3, a)) << CorrelationIndexKindName(kind);
    // Identical re-put: no change, the cheap path for periodic data.
    EXPECT_FALSE(index->Upsert(3, a)) << CorrelationIndexKindName(kind);
    EXPECT_TRUE(index->Upsert(3, b)) << CorrelationIndexKindName(kind);
    EXPECT_EQ(index->size(), 1u);
    // The index serves the slot at its new position, not the old one.
    std::vector<std::size_t> candidates;
    index->Candidates(b, 0.1, &candidates);
    EXPECT_EQ(candidates, std::vector<std::size_t>{3});
    candidates.clear();
    index->Candidates(a, 0.1, &candidates);
    for (const std::size_t slot : candidates) {
      EXPECT_GT(Dist2(b, a), 0.0);  // superset may still include it...
      EXPECT_EQ(slot, 3u);          // ...but never anything else
    }
  }
}

TEST(CorrelationIndexTest, EraseFreesSlotsAndIgnoresDeadOnes) {
  for (const CorrelationIndexKind kind : kAllKinds) {
    auto index = CorrelationIndex::Create(kind, 2, 1.0);
    const Point a{0.0, 0.0};
    const Point b{0.25, 0.25};
    ASSERT_TRUE(index->Upsert(0, a));
    ASSERT_TRUE(index->Upsert(1, b));
    index->Erase(0);
    EXPECT_EQ(index->size(), 1u);
    std::vector<std::size_t> candidates;
    index->Candidates(a, 10.0, &candidates);
    EXPECT_EQ(candidates, std::vector<std::size_t>{1})
        << CorrelationIndexKindName(kind);
    index->Erase(0);  // already dead: no-op
    index->Erase(7);  // never lived: no-op
    EXPECT_EQ(index->size(), 1u);
    // A freed slot id can be reused.
    EXPECT_TRUE(index->Upsert(0, b));
    candidates.clear();
    index->Candidates(b, 0.01, &candidates);
    std::sort(candidates.begin(), candidates.end());
    EXPECT_EQ(candidates, (std::vector<std::size_t>{0, 1}));
  }
}

// A radius spanning vastly more cells than are occupied must take the
// occupied-cell sweep instead of enumerating the neighbor block — and
// still return everything.
TEST(CorrelationIndexTest, GridWideRadiusSweepsOccupiedCells) {
  constexpr std::size_t kDims = 4;
  auto index = CorrelationIndex::Create(CorrelationIndexKind::kGrid, kDims,
                                        /*cell=*/0.125);
  std::mt19937 rng(11);
  std::vector<Point> points;
  for (std::size_t i = 0; i < 64; ++i) {
    points.push_back(RandomPoint(&rng, kDims, 100.0));
    ASSERT_TRUE(index->Upsert(i, points.back()));
  }
  std::vector<std::size_t> candidates;
  index->Candidates(Point(kDims, 0.0), /*radius=*/1000.0, &candidates);
  EXPECT_EQ(candidates.size(), points.size());
}

// Coordinates beyond the quantized range clamp to the boundary cell;
// clamping is monotone, so far-out points and far-out queries land in
// the same cells and the superset contract survives.
TEST(CorrelationIndexTest, GridClampsExtremeCoordinatesSoundly) {
  auto index =
      CorrelationIndex::Create(CorrelationIndexKind::kGrid, 2, /*cell=*/1.0);
  const Point far_out{1e12, -1e12};
  const Point near_origin{0.0, 0.0};
  ASSERT_TRUE(index->Upsert(0, far_out));
  ASSERT_TRUE(index->Upsert(1, near_origin));
  std::vector<std::size_t> candidates;
  index->Candidates(Point{9e11, -9e11}, /*radius=*/2.0, &candidates);
  // Exact verification happens downstream; here the far-out point MUST
  // appear (both clamp to the boundary cell) even though the true
  // distance exceeds the radius.
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 0u),
            candidates.end());
}

TEST(CorrelationIndexTest, KindNamesAreStable) {
  EXPECT_STREQ(CorrelationIndexKindName(CorrelationIndexKind::kGrid), "grid");
  EXPECT_STREQ(CorrelationIndexKindName(CorrelationIndexKind::kRTree),
               "rtree");
  EXPECT_STREQ(CorrelationIndexKindName(CorrelationIndexKind::kBruteForce),
               "brute_force");
}

}  // namespace
}  // namespace stardust
