// Crash-safety tests of the engine checkpoint/restore path: manifest
// format, recovery semantics, and crash injection at every phase of the
// atomic file protocol (common/atomic_file.h).
#include "engine/checkpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.h"
#include "common/serialize.h"
#include "engine/engine.h"
#include "stream/bursty_source.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

namespace fs = std::filesystem;

StardustConfig StreamConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 4;
  config.history = 200;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

std::vector<WindowThreshold> Thresholds(double lambda) {
  BurstySource source(21);
  const std::vector<double> training = source.Take(3000);
  return TrainThresholds(AggregateKind::kSum, training, {10, 20, 40},
                         lambda);
}

/// Fresh empty directory under the test tempdir.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::unique_ptr<IngestEngine> MakeEngine(std::size_t streams,
                                         std::size_t shards,
                                         const std::string& restore_dir = {}) {
  EngineConfig econfig;
  econfig.num_shards = shards;
  Result<std::unique_ptr<IngestEngine>> engine = IngestEngine::Create(
      StreamConfig(), Thresholds(2.0), streams, econfig, restore_dir);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return engine.ok() ? std::move(engine).value() : nullptr;
}

/// Posts `count` deterministic values per stream, round-robin, and waits
/// until the workers applied them all.
void Feed(IngestEngine* engine, std::vector<BurstySource>* sources,
          int count) {
  for (int t = 0; t < count; ++t) {
    for (StreamId s = 0; s < engine->num_streams(); ++s) {
      ASSERT_TRUE(engine->Post(s, (*sources)[s].Next()).ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());
}

std::vector<BurstySource> Sources(std::size_t streams, std::uint64_t seed) {
  std::vector<BurstySource> sources;
  sources.reserve(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    sources.emplace_back(seed + s);
  }
  return sources;
}

/// Every externally observable monitoring answer of the two engines must
/// agree exactly.
void ExpectSameAnswers(const IngestEngine& a, const IngestEngine& b) {
  ASSERT_EQ(a.num_streams(), b.num_streams());
  ASSERT_EQ(a.num_windows(), b.num_windows());
  for (StreamId s = 0; s < a.num_streams(); ++s) {
    const AlarmStats want = a.StreamTotal(s);
    const AlarmStats got = b.StreamTotal(s);
    EXPECT_EQ(got.candidates, want.candidates) << "stream " << s;
    EXPECT_EQ(got.true_alarms, want.true_alarms) << "stream " << s;
    EXPECT_EQ(got.checks, want.checks) << "stream " << s;
    EXPECT_EQ(b.StreamAppendCount(s), a.StreamAppendCount(s))
        << "stream " << s;
  }
  for (std::size_t w = 0; w < a.num_windows(); ++w) {
    auto want = a.CurrentlyAlarming(w);
    auto got = b.CurrentlyAlarming(w);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), want.value()) << "window " << w;
  }
}

TEST(CheckpointManifestTest, FileNamesEncodeShardAndSeq) {
  EXPECT_EQ(CheckpointShardFileName(0, 1), "shard-0-ck1.snap");
  EXPECT_EQ(CheckpointShardFileName(3, 12), "shard-3-ck12.snap");
  EXPECT_EQ(CheckpointManifestFileName(7), "manifest-7.ck");
  EXPECT_EQ(CheckpointQueriesFileName(5), "queries-ck5.qry");
}

TEST(CheckpointManifestTest, RoundTripCarriesQueryRegistryEntry) {
  CheckpointManifest manifest;
  manifest.seq = 9;
  manifest.num_streams = 2;
  manifest.num_shards = 1;
  manifest.shards = {{"shard-0-ck9.snap", 4, 80, 0x1111ULL}};
  manifest.queries_file = "queries-ck9.qry";
  manifest.queries_checksum = 0x2222ULL;
  Result<CheckpointManifest> parsed =
      ParseManifest(SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().queries_file, "queries-ck9.qry");
  EXPECT_EQ(parsed.value().queries_checksum, 0x2222ULL);
}

// Manifests written before the query subsystem existed (version 1: shard
// entries only) must still parse; they restore with an empty registry.
TEST(CheckpointManifestTest, ParsesVersion1ManifestsWithoutQueries) {
  Writer payload;
  payload.U64(7);     // seq
  payload.U64(2);     // num_streams
  payload.U64(1);     // num_shards
  payload.U64(1024);  // queue_capacity
  payload.U64(8);     // max_producers
  payload.U64(256);   // max_batch
  payload.U8(0);      // overload
  payload.U64(1);     // shard entries
  const std::string file = "shard-0-ck7.snap";
  payload.U64(file.size());
  payload.Bytes(file.data(), file.size());
  payload.U64(3);      // epoch
  payload.U64(99);     // appended
  payload.U64(0xabc);  // checksum

  Writer envelope;
  const char magic[4] = {'S', 'D', 'M', 'F'};
  envelope.Bytes(magic, sizeof(magic));
  envelope.U32(1);  // the pre-query manifest version
  envelope.U64(Fnv1a(payload.buffer()));
  envelope.Bytes(payload.buffer().data(), payload.buffer().size());

  Result<CheckpointManifest> parsed =
      ParseManifest(std::move(envelope.TakeBuffer()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().seq, 7u);
  ASSERT_EQ(parsed.value().shards.size(), 1u);
  EXPECT_EQ(parsed.value().shards[0].file, "shard-0-ck7.snap");
  EXPECT_TRUE(parsed.value().queries_file.empty());
  EXPECT_EQ(parsed.value().queries_checksum, 0u);
}

TEST(CheckpointManifestTest, RejectsEscapingQueriesFileName) {
  CheckpointManifest manifest;
  manifest.seq = 1;
  manifest.num_streams = 1;
  manifest.num_shards = 1;
  manifest.shards = {{"shard-0-ck1.snap", 1, 1, 1}};
  manifest.queries_file = "../queries-ck1.qry";
  EXPECT_FALSE(ParseManifest(SerializeManifest(manifest)).ok());
}

TEST(CheckpointManifestTest, RoundTrip) {
  CheckpointManifest manifest;
  manifest.seq = 42;
  manifest.num_streams = 6;
  manifest.num_shards = 2;
  manifest.queue_capacity = 1024;
  manifest.max_producers = 8;
  manifest.max_batch = 256;
  manifest.overload = 1;
  manifest.shards = {{"shard-0-ck42.snap", 10, 300, 0xdeadbeefULL},
                     {"shard-1-ck42.snap", 11, 301, 0xfeedfaceULL}};
  Result<CheckpointManifest> parsed =
      ParseManifest(SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const CheckpointManifest& got = parsed.value();
  EXPECT_EQ(got.seq, 42u);
  EXPECT_EQ(got.num_streams, 6u);
  EXPECT_EQ(got.num_shards, 2u);
  EXPECT_EQ(got.queue_capacity, 1024u);
  EXPECT_EQ(got.max_producers, 8u);
  EXPECT_EQ(got.max_batch, 256u);
  EXPECT_EQ(got.overload, 1);
  ASSERT_EQ(got.shards.size(), 2u);
  EXPECT_EQ(got.shards[0].file, "shard-0-ck42.snap");
  EXPECT_EQ(got.shards[0].epoch, 10u);
  EXPECT_EQ(got.shards[0].appended, 300u);
  EXPECT_EQ(got.shards[0].checksum, 0xdeadbeefULL);
  EXPECT_EQ(got.shards[1].file, "shard-1-ck42.snap");
}

TEST(CheckpointManifestTest, RejectsCorruption) {
  CheckpointManifest manifest;
  manifest.seq = 1;
  manifest.num_streams = 1;
  manifest.num_shards = 1;
  manifest.shards = {{"shard-0-ck1.snap", 1, 1, 1}};
  const std::string bytes = SerializeManifest(manifest);

  EXPECT_FALSE(ParseManifest("").ok());
  EXPECT_FALSE(ParseManifest("garbage").ok());
  EXPECT_FALSE(ParseManifest(bytes.substr(0, bytes.size() / 2)).ok());
  EXPECT_FALSE(ParseManifest(bytes + '\0').ok());
  for (std::size_t pos : {std::size_t{0}, std::size_t{5}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5a);
    EXPECT_FALSE(ParseManifest(corrupt).ok()) << "pos " << pos;
  }
}

TEST(CheckpointManifestTest, RejectsEscapingFileNames) {
  CheckpointManifest manifest;
  manifest.seq = 1;
  manifest.num_streams = 1;
  manifest.num_shards = 1;
  manifest.shards = {{"../../etc/passwd", 1, 1, 1}};
  EXPECT_FALSE(ParseManifest(SerializeManifest(manifest)).ok());
}

TEST(CheckpointRestoreTest, RoundTripPreservesEveryAnswer) {
  const std::string dir = FreshDir("ck_roundtrip");
  auto engine = MakeEngine(6, 2);
  ASSERT_NE(engine, nullptr);
  auto sources = Sources(6, 500);
  Feed(engine.get(), &sources, 1200);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  EXPECT_EQ(engine->metrics().checkpoints.load(), 1u);
  EXPECT_EQ(engine->last_checkpoint_seq(), 1u);

  auto restored = MakeEngine(6, 2, dir);
  ASSERT_NE(restored, nullptr);
  ExpectSameAnswers(*engine, *restored);
  // Epoch stamps continue the pre-crash lineage, not a fresh count.
  std::vector<ShardStamp> stamps;
  restored->FleetTotal(&stamps);
  std::uint64_t appended = 0;
  for (const ShardStamp& stamp : stamps) appended += stamp.appended;
  EXPECT_EQ(appended, 6u * 1200u);
  EXPECT_EQ(restored->last_checkpoint_seq(), 1u);
}

// The acceptance property: restore + identical tail == uninterrupted run,
// down to every alarm counter and alarming-stream list.
TEST(CheckpointRestoreTest, RestoredEngineContinuesBitExact) {
  const std::string dir = FreshDir("ck_continue");
  auto uninterrupted = MakeEngine(6, 3);
  auto crashing = MakeEngine(6, 3);
  ASSERT_NE(uninterrupted, nullptr);
  ASSERT_NE(crashing, nullptr);

  auto sources_a = Sources(6, 900);
  auto sources_b = Sources(6, 900);
  Feed(uninterrupted.get(), &sources_a, 800);
  Feed(crashing.get(), &sources_b, 800);
  ASSERT_TRUE(crashing->Checkpoint(dir).ok());
  // "Crash": drop the engine without any further persistence.
  crashing.reset();

  auto restored = MakeEngine(6, 3, dir);
  ASSERT_NE(restored, nullptr);
  // Replay the tail into both; the tail values continue the same
  // deterministic per-stream sequences.
  auto tail_a = sources_a;
  Feed(uninterrupted.get(), &sources_a, 700);
  Feed(restored.get(), &tail_a, 700);
  ExpectSameAnswers(*uninterrupted, *restored);
}

TEST(CheckpointRestoreTest, ValidatesShape) {
  const std::string dir = FreshDir("ck_shape");
  auto engine = MakeEngine(6, 2);
  ASSERT_NE(engine, nullptr);
  auto sources = Sources(6, 100);
  Feed(engine.get(), &sources, 300);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());

  EngineConfig two_shards;
  two_shards.num_shards = 2;
  // Wrong stream count.
  EXPECT_FALSE(IngestEngine::Create(StreamConfig(), Thresholds(2.0), 5,
                                    two_shards, dir)
                   .ok());
  // Wrong shard count: placement would scramble the streams.
  EngineConfig three_shards;
  three_shards.num_shards = 3;
  EXPECT_FALSE(IngestEngine::Create(StreamConfig(), Thresholds(2.0), 6,
                                    three_shards, dir)
                   .ok());
  // Wrong thresholds.
  EXPECT_FALSE(IngestEngine::Create(StreamConfig(), Thresholds(4.0), 6,
                                    two_shards, dir)
                   .ok());
  // Matching shape restores fine.
  EXPECT_TRUE(IngestEngine::Create(StreamConfig(), Thresholds(2.0), 6,
                                   two_shards, dir)
                  .ok());
}

TEST(CheckpointRestoreTest, EmptyOrMissingDirectoryIsNotFound) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  const std::string empty = FreshDir("ck_empty");
  Result<std::unique_ptr<IngestEngine>> from_empty = IngestEngine::Create(
      StreamConfig(), Thresholds(2.0), 4, econfig, empty);
  ASSERT_FALSE(from_empty.ok());
  EXPECT_EQ(from_empty.status().code(), StatusCode::kNotFound);
  Result<std::unique_ptr<IngestEngine>> from_missing = IngestEngine::Create(
      StreamConfig(), Thresholds(2.0), 4, econfig,
      empty + "/does-not-exist");
  ASSERT_FALSE(from_missing.ok());
  EXPECT_EQ(from_missing.status().code(), StatusCode::kNotFound);
}

// Inject a crash at every phase of the atomic write protocol, during the
// second checkpoint. Whatever the phase, recovery must come up with the
// complete state of the first checkpoint — never a blend, never a torn
// file.
TEST(CheckpointCrashTest, CrashAtEveryPhaseFallsBackToPreviousCheckpoint) {
  for (const AtomicWritePhase crash_phase :
       {AtomicWritePhase::kTmpCreated, AtomicWritePhase::kTmpMidWrite,
        AtomicWritePhase::kTmpWritten, AtomicWritePhase::kBeforeRename}) {
    const std::string dir =
        FreshDir("ck_crash_" +
                 std::to_string(static_cast<int>(crash_phase)));
    auto engine = MakeEngine(4, 2);
    ASSERT_NE(engine, nullptr);
    auto sources = Sources(4, 4200);
    Feed(engine.get(), &sources, 500);
    ASSERT_TRUE(engine->Checkpoint(dir).ok());

    // Reference: answers as of checkpoint 1.
    auto reference = MakeEngine(4, 2, dir);
    ASSERT_NE(reference, nullptr);

    // More data, then a checkpoint that dies at the injected phase.
    Feed(engine.get(), &sources, 400);
    SetAtomicFileHookForTest(
        [crash_phase](AtomicWritePhase phase, const std::string&) {
          return phase != crash_phase;
        });
    const Status crashed = engine->Checkpoint(dir);
    SetAtomicFileHookForTest(nullptr);
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.code(), StatusCode::kAborted);
    EXPECT_EQ(engine->metrics().checkpoint_failures.load(), 1u);

    auto recovered = MakeEngine(4, 2, dir);
    ASSERT_NE(recovered, nullptr)
        << "phase " << static_cast<int>(crash_phase);
    EXPECT_EQ(recovered->last_checkpoint_seq(), 1u);
    ExpectSameAnswers(*reference, *recovered);
  }
}

// A crash that kills only the manifest write — after every shard file
// already landed — must also resolve to the previous checkpoint: the
// manifest is the commit point.
TEST(CheckpointCrashTest, CrashOnManifestWriteOnlyFallsBack) {
  const std::string dir = FreshDir("ck_crash_manifest");
  auto engine = MakeEngine(4, 2);
  ASSERT_NE(engine, nullptr);
  auto sources = Sources(4, 4300);
  Feed(engine.get(), &sources, 500);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  auto reference = MakeEngine(4, 2, dir);
  ASSERT_NE(reference, nullptr);

  Feed(engine.get(), &sources, 400);
  SetAtomicFileHookForTest(
      [](AtomicWritePhase phase, const std::string& path) {
        return !(phase == AtomicWritePhase::kBeforeRename &&
                 path.find("manifest-") != std::string::npos);
      });
  const Status crashed = engine->Checkpoint(dir);
  SetAtomicFileHookForTest(nullptr);
  ASSERT_FALSE(crashed.ok());

  // The orphaned shard-ck2 files exist but no manifest commits them.
  EXPECT_TRUE(fs::exists(fs::path(dir) / "shard-0-ck2.snap"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "manifest-2.ck"));
  auto recovered = MakeEngine(4, 2, dir);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->last_checkpoint_seq(), 1u);
  ExpectSameAnswers(*reference, *recovered);
}

// Post-crash corruption of the newest checkpoint's files (truncation,
// bit flips, deletion) must fall back to the previous one. Each
// corruption runs against a freshly built pair of checkpoints.
TEST(CheckpointCrashTest, CorruptNewestCheckpointFallsBack) {
  const auto corruptions =
      std::vector<std::function<void(const std::string&)>>{
          // Truncate a shard file of checkpoint 2.
          [](const std::string& dir) {
            fs::resize_file(fs::path(dir) / "shard-0-ck2.snap", 10);
          },
          // Flip one byte in the middle of a shard file.
          [](const std::string& dir) {
            const fs::path path = fs::path(dir) / "shard-1-ck2.snap";
            std::fstream f(path,
                           std::ios::in | std::ios::out | std::ios::binary);
            f.seekg(0, std::ios::end);
            const std::streamoff mid =
                static_cast<std::streamoff>(f.tellg()) / 2;
            char c = 0;
            f.seekg(mid);
            f.read(&c, 1);
            c = static_cast<char>(c ^ 0x5a);
            f.seekp(mid);
            f.write(&c, 1);
          },
          // Delete a shard file outright.
          [](const std::string& dir) {
            fs::remove(fs::path(dir) / "shard-0-ck2.snap");
          },
          // Truncate the manifest itself.
          [](const std::string& dir) {
            fs::resize_file(fs::path(dir) / "manifest-2.ck", 6);
          },
      };
  for (std::size_t i = 0; i < corruptions.size(); ++i) {
    const std::string dir = FreshDir("ck_corrupt_" + std::to_string(i));
    auto engine = MakeEngine(4, 2);
    ASSERT_NE(engine, nullptr);
    auto sources = Sources(4, 4400);
    Feed(engine.get(), &sources, 500);
    ASSERT_TRUE(engine->Checkpoint(dir).ok());
    auto reference = MakeEngine(4, 2, dir);
    ASSERT_NE(reference, nullptr);
    Feed(engine.get(), &sources, 400);
    ASSERT_TRUE(engine->Checkpoint(dir).ok());

    corruptions[i](dir);
    Result<CheckpointManifest> found = FindLatestValidCheckpoint(dir);
    ASSERT_TRUE(found.ok())
        << "corruption " << i << ": " << found.status().ToString();
    EXPECT_EQ(found.value().seq, 1u) << "corruption " << i;
    auto recovered = MakeEngine(4, 2, dir);
    ASSERT_NE(recovered, nullptr) << "corruption " << i;
    ExpectSameAnswers(*reference, *recovered);
  }
}

// The query-registry file is covered by the same checksum discipline as
// the shard files: corrupting it invalidates the whole checkpoint and
// recovery falls back to the previous one.
TEST(CheckpointCrashTest, CorruptQueriesFileFallsBack) {
  const std::string dir = FreshDir("ck_corrupt_queries");
  auto engine = MakeEngine(4, 2);
  ASSERT_NE(engine, nullptr);
  ASSERT_TRUE(engine->RegisterQuery(QuerySpec::Aggregate(10, 5.0)).ok());
  auto sources = Sources(4, 4800);
  Feed(engine.get(), &sources, 500);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  auto reference = MakeEngine(4, 2, dir);
  ASSERT_NE(reference, nullptr);
  EXPECT_EQ(reference->queries().size(), 1u);
  Feed(engine.get(), &sources, 400);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());

  {
    const fs::path path = fs::path(dir) / "queries-ck2.qry";
    ASSERT_TRUE(fs::exists(path));
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    char c = 0;
    f.seekg(4);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(4);
    f.write(&c, 1);
  }
  Result<CheckpointManifest> found = FindLatestValidCheckpoint(dir);
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(found.value().seq, 1u);
  auto recovered = MakeEngine(4, 2, dir);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->queries().size(), 1u);
  ExpectSameAnswers(*reference, *recovered);
}

TEST(CheckpointGcTest, KeepsCurrentAndPreviousDropsOlderAndTmp) {
  const std::string dir = FreshDir("ck_gc");
  auto engine = MakeEngine(2, 1);
  ASSERT_NE(engine, nullptr);
  auto sources = Sources(2, 4500);
  // A stray tmp file from a hypothetical interrupted writer.
  { std::ofstream(dir + "/shard-0-ck9.snap.tmp") << "partial"; }
  Feed(engine.get(), &sources, 200);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  Feed(engine.get(), &sources, 200);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  Feed(engine.get(), &sources, 200);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());

  // Checkpoints 2 and 3 survive; 1 and the tmp leftover are gone.
  EXPECT_FALSE(fs::exists(fs::path(dir) / "shard-0-ck9.snap.tmp"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "manifest-1.ck"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "shard-0-ck1.snap"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "queries-ck1.qry"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "manifest-2.ck"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "manifest-3.ck"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "queries-ck2.qry"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "queries-ck3.qry"));
  Result<CheckpointManifest> found = FindLatestValidCheckpoint(dir);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().seq, 3u);
}

TEST(CheckpointRestoreTest, SequenceLineageContinuesAfterRestore) {
  const std::string dir = FreshDir("ck_lineage");
  auto engine = MakeEngine(2, 1);
  ASSERT_NE(engine, nullptr);
  auto sources = Sources(2, 4600);
  Feed(engine.get(), &sources, 300);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  engine.reset();

  auto restored = MakeEngine(2, 1, dir);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->last_checkpoint_seq(), 2u);
  ASSERT_TRUE(restored->Checkpoint(dir).ok());
  // The new checkpoint continues the lineage at 3 and keeps 2 as
  // fallback.
  EXPECT_EQ(restored->last_checkpoint_seq(), 3u);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "manifest-2.ck"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "manifest-3.ck"));
}

TEST(CheckpointRestoreTest, BackgroundThreadCheckpointsPeriodically) {
  const std::string dir = FreshDir("ck_background");
  EngineConfig econfig;
  econfig.num_shards = 2;
  econfig.checkpoint_period_ms = 5;
  econfig.checkpoint_dir = dir;
  auto engine = std::move(IngestEngine::Create(StreamConfig(),
                                               Thresholds(2.0), 4, econfig))
                    .value();
  auto sources = Sources(4, 4700);
  Feed(engine.get(), &sources, 500);
  // Wait for the background thread to land at least one checkpoint.
  for (int i = 0; i < 400 && engine->last_checkpoint_seq() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(engine->metrics().checkpoints.load(), 0u);
  ASSERT_TRUE(engine->Stop().ok());
  const std::uint64_t seq_at_stop = engine->last_checkpoint_seq();
  ASSERT_GT(seq_at_stop, 0u);
  // Stop() joins the thread: no more checkpoints after it returns.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(engine->last_checkpoint_seq(), seq_at_stop);

  auto restored = MakeEngine(4, 2, dir);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->last_checkpoint_seq(), seq_at_stop);
}

TEST(CheckpointRestoreTest, PeriodRequiresDirectory) {
  EngineConfig econfig;
  econfig.checkpoint_period_ms = 50;
  EXPECT_FALSE(
      IngestEngine::Create(StreamConfig(), Thresholds(2.0), 4, econfig)
          .ok());
}

}  // namespace
}  // namespace stardust
