#include "core/fleet_monitor.h"

#include <gtest/gtest.h>

#include "core/correlation_monitor.h"
#include "stream/bursty_source.h"
#include "stream/random_walk.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

StardustConfig FleetConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 4;
  config.history = 200;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

std::vector<WindowThreshold> FleetThresholds(double lambda) {
  BurstySource source(21);
  const std::vector<double> training = source.Take(3000);
  return TrainThresholds(AggregateKind::kSum, training, {10, 20, 40},
                         lambda);
}

TEST(FleetMonitorTest, CreateValidation) {
  EXPECT_FALSE(
      FleetAggregateMonitor::Create(FleetConfig(), FleetThresholds(3.0), 0)
          .ok());
  EXPECT_FALSE(
      FleetAggregateMonitor::Create(FleetConfig(), {}, 3).ok());
  EXPECT_TRUE(
      FleetAggregateMonitor::Create(FleetConfig(), FleetThresholds(3.0), 3)
          .ok());
}

TEST(FleetMonitorTest, RejectsAnEmptyFleetWithACheckedError) {
  Result<std::unique_ptr<FleetAggregateMonitor>> empty =
      FleetAggregateMonitor::Create(FleetConfig(), FleetThresholds(3.0), 0);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(FleetMonitorTest, SharedWindowAccessors) {
  auto fleet = std::move(FleetAggregateMonitor::Create(
                             FleetConfig(), FleetThresholds(3.0), 2))
                   .value();
  EXPECT_EQ(fleet->num_windows(), 3u);
  EXPECT_EQ(fleet->threshold(0).window, 10u);
  EXPECT_EQ(fleet->threshold(2).window, 40u);
  EXPECT_EQ(fleet->AppendCount(0), 0u);
  ASSERT_TRUE(fleet->Append(0, 1.0).ok());
  EXPECT_EQ(fleet->AppendCount(0), 1u);
  EXPECT_EQ(fleet->AppendCount(1), 0u);
}

TEST(FleetMonitorTest, PerStreamAndFleetTotalsAreConsistent) {
  auto fleet = std::move(FleetAggregateMonitor::Create(
                             FleetConfig(), FleetThresholds(2.0), 4))
                   .value();
  std::vector<std::unique_ptr<BurstySource>> sources;
  for (std::uint64_t i = 0; i < 4; ++i) {
    sources.push_back(std::make_unique<BurstySource>(100 + i));
  }
  std::vector<double> values(4);
  for (int t = 0; t < 2000; ++t) {
    for (std::size_t i = 0; i < 4; ++i) values[i] = sources[i]->Next();
    ASSERT_TRUE(fleet->AppendAll(values).ok());
  }
  AlarmStats manual;
  for (StreamId i = 0; i < 4; ++i) {
    const AlarmStats s = fleet->StreamTotal(i);
    manual.candidates += s.candidates;
    manual.true_alarms += s.true_alarms;
    manual.checks += s.checks;
  }
  const AlarmStats total = fleet->FleetTotal();
  EXPECT_EQ(total.candidates, manual.candidates);
  EXPECT_EQ(total.true_alarms, manual.true_alarms);
  EXPECT_EQ(total.checks, manual.checks);
  EXPECT_GT(total.checks, 0u);
}

TEST(FleetMonitorTest, CurrentlyAlarmingPicksTheHotStream) {
  auto fleet = std::move(FleetAggregateMonitor::Create(
                             FleetConfig(), FleetThresholds(3.0), 3))
                   .value();
  // Stream 1 runs hot (values far above the trained thresholds).
  BurstySource calm_a(200), calm_b(201);
  for (int t = 0; t < 500; ++t) {
    ASSERT_TRUE(fleet->Append(0, calm_a.Next()).ok());
    ASSERT_TRUE(fleet->Append(1, 10000.0).ok());
    ASSERT_TRUE(fleet->Append(2, calm_b.Next()).ok());
  }
  for (std::size_t window_index = 0; window_index < fleet->num_windows();
       ++window_index) {
    Result<std::vector<StreamId>> alarming =
        fleet->CurrentlyAlarming(window_index);
    ASSERT_TRUE(alarming.ok());
    ASSERT_EQ(alarming.value().size(), 1u) << "window " << window_index;
    EXPECT_EQ(alarming.value()[0], 1u);
  }
  EXPECT_FALSE(fleet->CurrentlyAlarming(99).ok());
}

TEST(FleetMonitorTest, ShortStreamIsNotAlarming) {
  auto fleet = std::move(FleetAggregateMonitor::Create(
                             FleetConfig(), FleetThresholds(3.0), 2))
                   .value();
  ASSERT_TRUE(fleet->Append(0, 1.0).ok());  // far too short for window 10
  Result<std::vector<StreamId>> alarming = fleet->CurrentlyAlarming(0);
  ASSERT_TRUE(alarming.ok());
  EXPECT_TRUE(alarming.value().empty());
}

TEST(FleetMonitorTest, AppendValidation) {
  auto fleet = std::move(FleetAggregateMonitor::Create(
                             FleetConfig(), FleetThresholds(3.0), 2))
                   .value();
  EXPECT_FALSE(fleet->Append(5, 1.0).ok());
  EXPECT_FALSE(fleet->AppendAll({1.0}).ok());
  EXPECT_TRUE(fleet->AppendAll({1.0, 2.0}).ok());
}

// TopKPairs extension of the correlation monitor (tested here to keep
// the correlation test file focused on the paper's semantics).
TEST(TopKPairsTest, RanksThePlantedPairFirst) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = 8;
  config.num_levels = 4;  // N = 64
  config.history = 64;
  config.box_capacity = 1;
  config.update_period = 8;
  auto monitor =
      std::move(CorrelationMonitor::Create(config, 5, 0.1)).value();
  EXPECT_FALSE(monitor->TopKPairs(2).ok());  // no round yet
  RandomWalkSource base(7);
  std::vector<double> walks{0, 0, 40, 80, 120};
  Rng rng(8);
  std::vector<double> values(5);
  for (int t = 0; t < 200; ++t) {
    const double shared = base.Next();
    values[0] = shared;
    values[1] = shared + 0.01 * rng.NextGaussian();
    for (std::size_t i = 2; i < 5; ++i) {
      walks[i] += rng.NextDouble() - 0.5;
      values[i] = walks[i];
    }
    ASSERT_TRUE(monitor->AppendAll(values).ok());
  }
  Result<std::vector<CorrelationMonitor::ReportedPair>> top =
      monitor->TopKPairs(3);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top.value().size(), 3u);
  EXPECT_EQ(top.value()[0].a, 0u);
  EXPECT_EQ(top.value()[0].b, 1u);
  for (std::size_t i = 1; i < top.value().size(); ++i) {
    EXPECT_GE(top.value()[i].distance, top.value()[i - 1].distance);
  }
}

}  // namespace
}  // namespace stardust
