#include "core/snapshot.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/atomic_file.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/pattern_query.h"
#include "stream/random_walk.h"

namespace stardust {
namespace {

StardustConfig IndexedDwtConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 4;
  config.r_max = 110.0;
  config.base_window = 16;
  config.num_levels = 4;
  config.history = 256;
  config.box_capacity = 4;
  config.update_period = 1;
  config.index_features = true;
  return config;
}

StardustConfig AggregateConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSpread;
  config.base_window = 10;
  config.num_levels = 4;
  config.history = 160;
  config.box_capacity = 3;
  config.update_period = 1;
  return config;
}

std::unique_ptr<Stardust> BuildAndFeed(const StardustConfig& config,
                                       std::size_t streams,
                                       std::size_t length,
                                       std::uint64_t seed) {
  auto core = std::move(Stardust::Create(config)).value();
  for (std::size_t i = 0; i < streams; ++i) {
    const StreamId id = core->AddStream();
    RandomWalkSource source(seed + i);
    for (std::size_t t = 0; t < length; ++t) {
      EXPECT_TRUE(core->Append(id, source.Next()).ok());
    }
  }
  return core;
}

void ExpectSameState(const Stardust& a, const Stardust& b) {
  ASSERT_EQ(a.num_streams(), b.num_streams());
  for (StreamId s = 0; s < a.num_streams(); ++s) {
    const StreamSummarizer& sa = a.summarizer(s);
    const StreamSummarizer& sb = b.summarizer(s);
    ASSERT_EQ(sa.now(), sb.now());
    ASSERT_EQ(sa.TotalBoxCount(), sb.TotalBoxCount());
    for (std::size_t j = 0; j < a.config().num_levels; ++j) {
      std::vector<FeatureBox> boxes_a, boxes_b;
      sa.thread(j).ForEachBox(
          [&](const FeatureBox& box) { boxes_a.push_back(box); });
      sb.thread(j).ForEachBox(
          [&](const FeatureBox& box) { boxes_b.push_back(box); });
      ASSERT_EQ(boxes_a.size(), boxes_b.size());
      for (std::size_t i = 0; i < boxes_a.size(); ++i) {
        EXPECT_TRUE(boxes_a[i].extent == boxes_b[i].extent);
        EXPECT_EQ(boxes_a[i].first_time, boxes_b[i].first_time);
        EXPECT_EQ(boxes_a[i].count, boxes_b[i].count);
        EXPECT_EQ(boxes_a[i].seq, boxes_b[i].seq);
        EXPECT_EQ(boxes_a[i].sealed, boxes_b[i].sealed);
      }
    }
  }
  if (a.config().index_features) {
    for (std::size_t j = 0; j < a.config().num_levels; ++j) {
      EXPECT_EQ(a.index(j).size(), b.index(j).size());
      EXPECT_TRUE(b.index(j).CheckInvariants().ok());
    }
  }
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  auto original = BuildAndFeed(IndexedDwtConfig(), 3, 500, 1);
  const std::string bytes = SerializeSnapshot(*original);
  Result<std::unique_ptr<Stardust>> restored = DeserializeSnapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameState(*original, *restored.value());
}

TEST(SnapshotTest, AggregateRoundTrip) {
  auto original = BuildAndFeed(AggregateConfig(), 2, 300, 2);
  Result<std::unique_ptr<Stardust>> restored =
      DeserializeSnapshot(SerializeSnapshot(*original));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameState(*original, *restored.value());
  // Intervals answered identically.
  for (std::size_t w : {10u, 30u, 70u}) {
    const auto ia = original->AggregateInterval(0, w);
    const auto ib = restored.value()->AggregateInterval(0, w);
    ASSERT_TRUE(ia.ok());
    ASSERT_TRUE(ib.ok());
    EXPECT_EQ(ia.value().lo, ib.value().lo);
    EXPECT_EQ(ia.value().hi, ib.value().hi);
  }
}

// The strongest property: a restored instance, fed the same continuation,
// stays bit-identical to the uninterrupted original — queries included.
TEST(SnapshotTest, ContinuationIsBitExact) {
  const StardustConfig config = IndexedDwtConfig();
  auto original = BuildAndFeed(config, 2, 300, 3);
  Result<std::unique_ptr<Stardust>> restored =
      DeserializeSnapshot(SerializeSnapshot(*original));
  ASSERT_TRUE(restored.ok());
  // Continue both with the same 250 further values per stream.
  std::vector<RandomWalkSource> sources{RandomWalkSource(91),
                                        RandomWalkSource(92)};
  for (int t = 0; t < 250; ++t) {
    for (StreamId s = 0; s < 2; ++s) {
      const double v = sources[s].Next();
      ASSERT_TRUE(original->Append(s, v).ok());
      ASSERT_TRUE(restored.value()->Append(s, v).ok());
    }
  }
  ExpectSameState(*original, *restored.value());
  // Identical pattern answers.
  PatternQueryEngine engine_a(*original);
  PatternQueryEngine engine_b(*restored.value());
  RandomWalkSource query_source(99);
  const std::vector<double> query = query_source.Take(48);
  const auto ra = engine_a.QueryOnline(query, 0.05);
  const auto rb = engine_b.QueryOnline(query, 0.05);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value().candidates, rb.value().candidates);
  ASSERT_EQ(ra.value().matches.size(), rb.value().matches.size());
  for (std::size_t i = 0; i < ra.value().matches.size(); ++i) {
    EXPECT_EQ(ra.value().matches[i].stream, rb.value().matches[i].stream);
    EXPECT_EQ(ra.value().matches[i].end_time,
              rb.value().matches[i].end_time);
    EXPECT_EQ(ra.value().matches[i].distance,
              rb.value().matches[i].distance);
  }
}

TEST(SnapshotTest, FileRoundTrip) {
  auto original = BuildAndFeed(AggregateConfig(), 1, 200, 4);
  const std::string path =
      ::testing::TempDir() + "/stardust_snapshot_test.bin";
  ASSERT_TRUE(SaveSnapshot(*original, path).ok());
  Result<std::unique_ptr<Stardust>> restored = LoadSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameState(*original, *restored.value());
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeSnapshot("").ok());
  EXPECT_FALSE(DeserializeSnapshot("not a snapshot at all").ok());
  EXPECT_FALSE(LoadSnapshot("/no/such/snapshot.bin").ok());
}

TEST(SnapshotTest, RejectsTruncation) {
  auto original = BuildAndFeed(AggregateConfig(), 1, 150, 5);
  const std::string bytes = SerializeSnapshot(*original);
  for (std::size_t keep :
       {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(DeserializeSnapshot(bytes.substr(0, keep)).ok())
        << "kept " << keep << " of " << bytes.size();
  }
}

TEST(SnapshotTest, RejectsBitFlips) {
  auto original = BuildAndFeed(AggregateConfig(), 1, 150, 6);
  const std::string bytes = SerializeSnapshot(*original);
  // Flip a byte in the payload region (past magic+version+checksum).
  for (std::size_t pos : {std::size_t{20}, bytes.size() / 2, bytes.size() - 3}) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5a);
    EXPECT_FALSE(DeserializeSnapshot(corrupt).ok()) << "pos " << pos;
  }
}

TEST(SnapshotTest, RejectsTrailingBytes) {
  auto original = BuildAndFeed(AggregateConfig(), 1, 150, 7);
  std::string bytes = SerializeSnapshot(*original);
  bytes += '\0';
  EXPECT_FALSE(DeserializeSnapshot(bytes).ok());
}

// Regression: the header's declared stream count used to be trusted up to
// 2^32 before any payload-size check, so 8 corrupt bytes could drive a
// multi-gigabyte restore loop. The count is now bounded by the remaining
// payload bytes.
TEST(SnapshotTest, RejectsHugeDeclaredStreamCount) {
  // An empty instance: num_streams is the final 8 payload bytes.
  auto core = std::move(Stardust::Create(AggregateConfig())).value();
  const std::string bytes = SerializeSnapshot(*core);
  ASSERT_TRUE(DeserializeSnapshot(bytes).ok());
  const std::string payload = bytes.substr(16);  // magic+version+checksum
  for (const std::uint64_t huge :
       {std::uint64_t{1} << 33, std::uint64_t{1000000},
        std::uint64_t{1} << 20}) {
    std::string patched = payload;
    for (int i = 0; i < 8; ++i) {
      patched[patched.size() - 8 + static_cast<std::size_t>(i)] =
          static_cast<char>(huge >> (8 * i));
    }
    // Rebuild a checksum-valid envelope so only the count bound can
    // reject it.
    Writer envelope;
    envelope.Bytes("SDSN", 4);
    envelope.U32(1);
    envelope.U64(Fnv1a(patched));
    envelope.Bytes(patched.data(), patched.size());
    Result<std::unique_ptr<Stardust>> restored =
        DeserializeSnapshot(envelope.buffer());
    ASSERT_FALSE(restored.ok()) << "count " << huge;
    EXPECT_NE(restored.status().message().find("stream count"),
              std::string::npos)
        << restored.status().ToString();
  }
}

// ---------------------------------------------------------------------
// v2 fleet snapshots
// ---------------------------------------------------------------------

std::vector<WindowThreshold> FleetThresholds() {
  return {{10, 4.0}, {20, 6.0}, {40, 9.0}};
}

std::unique_ptr<FleetAggregateMonitor> BuildFleet(std::size_t streams,
                                                  std::size_t length,
                                                  std::uint64_t seed) {
  auto fleet = std::move(FleetAggregateMonitor::Create(
                             AggregateConfig(), FleetThresholds(), streams))
                   .value();
  std::vector<RandomWalkSource> sources;
  for (std::size_t s = 0; s < streams; ++s) {
    sources.emplace_back(seed + s);
  }
  for (std::size_t t = 0; t < length; ++t) {
    for (StreamId s = 0; s < streams; ++s) {
      EXPECT_TRUE(fleet->Append(s, sources[s].Next()).ok());
    }
  }
  return fleet;
}

void ExpectSameFleet(const FleetAggregateMonitor& a,
                     const FleetAggregateMonitor& b) {
  ASSERT_EQ(a.num_streams(), b.num_streams());
  ASSERT_EQ(a.num_windows(), b.num_windows());
  for (StreamId s = 0; s < a.num_streams(); ++s) {
    EXPECT_EQ(b.AppendCount(s), a.AppendCount(s)) << "stream " << s;
    for (std::size_t w = 0; w < a.num_windows(); ++w) {
      const AlarmStats& want = a.stats(s, w);
      const AlarmStats& got = b.stats(s, w);
      EXPECT_EQ(got.candidates, want.candidates) << s << "/" << w;
      EXPECT_EQ(got.true_alarms, want.true_alarms) << s << "/" << w;
      EXPECT_EQ(got.checks, want.checks) << s << "/" << w;
    }
  }
  for (std::size_t w = 0; w < a.num_windows(); ++w) {
    auto want = a.CurrentlyAlarming(w);
    auto got = b.CurrentlyAlarming(w);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), want.value()) << "window " << w;
  }
}

TEST(FleetSnapshotTest, RoundTripPreservesMonitoringState) {
  auto original = BuildFleet(3, 400, 10);
  Result<std::unique_ptr<FleetAggregateMonitor>> restored =
      DeserializeFleetSnapshot(SerializeFleetSnapshot(*original));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameFleet(*original, *restored.value());
}

// Restore + identical continuation == uninterrupted run, including the
// alarm counters and currently-alarming sets along the way.
TEST(FleetSnapshotTest, ContinuationIsBitExact) {
  auto original = BuildFleet(3, 350, 20);
  Result<std::unique_ptr<FleetAggregateMonitor>> restored =
      DeserializeFleetSnapshot(SerializeFleetSnapshot(*original));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::vector<RandomWalkSource> sources{RandomWalkSource(71),
                                        RandomWalkSource(72),
                                        RandomWalkSource(73)};
  for (int t = 0; t < 300; ++t) {
    for (StreamId s = 0; s < 3; ++s) {
      const double v = sources[s].Next();
      ASSERT_TRUE(original->Append(s, v).ok());
      ASSERT_TRUE(restored.value()->Append(s, v).ok());
    }
    if (t % 50 == 0) {
      ExpectSameFleet(*original, *restored.value());
    }
  }
  ExpectSameFleet(*original, *restored.value());
}

// Randomized shapes and histories: every configuration must round-trip
// and continue exactly.
TEST(FleetSnapshotTest, RandomizedConfigsRoundTrip) {
  Rng rng(2026);
  const std::vector<std::size_t> window_pool{10, 20, 40, 80};
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t streams = 1 + rng.NextUint64(4);
    std::vector<WindowThreshold> thresholds;
    for (std::size_t w : window_pool) {
      if (thresholds.empty() || rng.NextUint64(2) == 0) {
        thresholds.push_back(
            {w, rng.NextDouble(2.0, 12.0)});
      }
    }
    auto fleet = std::move(FleetAggregateMonitor::Create(
                               AggregateConfig(), thresholds, streams))
                     .value();
    const std::size_t length = 50 + rng.NextUint64(350);
    for (std::size_t t = 0; t < length; ++t) {
      for (StreamId s = 0; s < streams; ++s) {
        ASSERT_TRUE(fleet->Append(s, rng.NextDouble(-10.0, 10.0)).ok());
      }
    }
    Result<std::unique_ptr<FleetAggregateMonitor>> restored =
        DeserializeFleetSnapshot(SerializeFleetSnapshot(*fleet));
    ASSERT_TRUE(restored.ok())
        << "trial " << trial << ": " << restored.status().ToString();
    ExpectSameFleet(*fleet, *restored.value());
    for (int t = 0; t < 100; ++t) {
      for (StreamId s = 0; s < streams; ++s) {
        const double v = rng.NextDouble(-10.0, 10.0);
        ASSERT_TRUE(fleet->Append(s, v).ok());
        ASSERT_TRUE(restored.value()->Append(s, v).ok());
      }
    }
    ExpectSameFleet(*fleet, *restored.value());
  }
}

TEST(FleetSnapshotTest, RejectsCorruption) {
  auto original = BuildFleet(2, 200, 30);
  const std::string bytes = SerializeFleetSnapshot(*original);
  EXPECT_FALSE(DeserializeFleetSnapshot("").ok());
  EXPECT_FALSE(
      DeserializeFleetSnapshot(bytes.substr(0, bytes.size() / 2)).ok());
  std::string trailing = bytes;
  trailing += '\0';
  EXPECT_FALSE(DeserializeFleetSnapshot(trailing).ok());
  for (std::size_t pos :
       {std::size_t{20}, bytes.size() / 2, bytes.size() - 3}) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5a);
    EXPECT_FALSE(DeserializeFleetSnapshot(corrupt).ok()) << "pos " << pos;
  }
}

// Loading the wrong version through the wrong entry point fails with a
// message that names the right one.
TEST(FleetSnapshotTest, CrossVersionLoadsGivePointedErrors) {
  auto stardust = BuildAndFeed(AggregateConfig(), 1, 100, 40);
  auto fleet = BuildFleet(2, 100, 41);
  const std::string v1 = SerializeSnapshot(*stardust);
  const std::string v2 = SerializeFleetSnapshot(*fleet);

  Result<std::unique_ptr<FleetAggregateMonitor>> v1_as_fleet =
      DeserializeFleetSnapshot(v1);
  ASSERT_FALSE(v1_as_fleet.ok());
  EXPECT_NE(v1_as_fleet.status().message().find("LoadSnapshot"),
            std::string::npos)
      << v1_as_fleet.status().ToString();

  Result<std::unique_ptr<Stardust>> v2_as_stardust = DeserializeSnapshot(v2);
  ASSERT_FALSE(v2_as_stardust.ok());
  EXPECT_NE(v2_as_stardust.status().message().find("LoadFleetSnapshot"),
            std::string::npos)
      << v2_as_stardust.status().ToString();
}

TEST(FleetSnapshotTest, FileRoundTripAndCrashKeepsOldFile) {
  const std::string path =
      ::testing::TempDir() + "/stardust_fleet_snapshot_test.bin";
  std::remove(path.c_str());
  auto state_a = BuildFleet(2, 250, 50);
  ASSERT_TRUE(SaveFleetSnapshot(*state_a, path).ok());

  // A crash during a later save must leave the first snapshot loadable.
  auto state_b = BuildFleet(2, 500, 51);
  SetAtomicFileHookForTest([](AtomicWritePhase phase, const std::string&) {
    return phase != AtomicWritePhase::kBeforeRename;
  });
  EXPECT_FALSE(SaveFleetSnapshot(*state_b, path).ok());
  SetAtomicFileHookForTest(nullptr);

  Result<std::unique_ptr<FleetAggregateMonitor>> loaded =
      LoadFleetSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameFleet(*state_a, *loaded.value());
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---------------------------------------------------------------------
// v1 backward compatibility
// ---------------------------------------------------------------------

// Frozen bytes of a v1 snapshot: AggregateConfig(), one stream, thirty
// values of (t % 7) * 1.5 - 3.0. Generated once from the v1 serializer
// and embedded so that any accidental change to the on-disk format (or to
// the restore path) breaks this test rather than silently orphaning
// users' existing snapshot files.
constexpr const char* kV1FixtureHex =
    "5344534e0100000059019322f5b732e600030102000000000000000000000000"
    "00f03f0a000000000000000400000000000000a0000000000000000300000000"
    "000000010000000000000000000001000000000000001e000000000000001e00"
    "00000000000000000000000008c0000000000000f8bf00000000000000000000"
    "00000000f83f0000000000000840000000000000124000000000000018400000"
    "0000000008c0000000000000f8bf0000000000000000000000000000f83f0000"
    "0000000008400000000000001240000000000000184000000000000008c00000"
    "00000000f8bf0000000000000000000000000000f83f00000000000008400000"
    "000000001240000000000000184000000000000008c0000000000000f8bf0000"
    "000000000000000000000000f83f000000000000084000000000000012400000"
    "00000000184000000000000008c0000000000000f8bf04000000000000000200"
    "0000000000000300000000000000010000000000000001090000000000000007"
    "0000000000000007000000000000000200000000000000000000000000184000"
    "000000000008c00200000000000000000000000000184000000000000008c009"
    "0000000000000003000000000000000000000001020000000000000000000000"
    "0000184000000000000008c00200000000000000000000000000184000000000"
    "000008c00c000000000000000300000001000000000000000102000000000000"
    "00000000000000184000000000000008c0020000000000000000000000000018"
    "4000000000000008c00f00000000000000030000000200000000000000010200"
    "000000000000000000000000184000000000000008c002000000000000000000"
    "00000000184000000000000008c0120000000000000003000000030000000000"
    "0000010200000000000000000000000000184000000000000008c00200000000"
    "000000000000000000184000000000000008c015000000000000000300000004"
    "00000000000000010200000000000000000000000000184000000000000008c0"
    "0200000000000000000000000000184000000000000008c01800000000000000"
    "0300000005000000000000000102000000000000000000000000001840000000"
    "00000008c00200000000000000000000000000184000000000000008c01b0000"
    "0000000000030000000600000000000000010200000000000000030000000000"
    "0000010000000000000001130000000000000004000000000000000400000000"
    "0000000200000000000000000000000000184000000000000008c00200000000"
    "000000000000000000184000000000000008c013000000000000000300000000"
    "00000000000000010200000000000000000000000000184000000000000008c0"
    "0200000000000000000000000000184000000000000008c01600000000000000"
    "0300000001000000000000000102000000000000000000000000001840000000"
    "00000008c00200000000000000000000000000184000000000000008c0190000"
    "0000000000030000000200000000000000010200000000000000000000000000"
    "184000000000000008c002000000000000000000000000001840000000000000"
    "08c01c0000000000000002000000030000000000000000020000000000000003"
    "0000000000000001000000000000000000000000000000000000000000000000"
    "0000000000000000020000000000000003000000000000000100000000000000"
    "00000000000000000000000000000000000000000000000000";

std::string FromHex(const std::string& hex) {
  std::string bytes;
  bytes.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    const auto nibble = [](char c) -> unsigned {
      if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
      return static_cast<unsigned>(c - 'a') + 10;
    };
    bytes.push_back(
        static_cast<char>(nibble(hex[i]) << 4 | nibble(hex[i + 1])));
  }
  return bytes;
}

TEST(SnapshotTest, V1FixtureStaysLoadable) {
  const std::string bytes = FromHex(kV1FixtureHex);
  ASSERT_EQ(bytes.size(), 1305u);
  Result<std::unique_ptr<Stardust>> restored = DeserializeSnapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // Rebuild the fixture state live; the restored instance must match it
  // exactly — and keep matching through a continuation.
  auto expected = std::move(Stardust::Create(AggregateConfig())).value();
  const StreamId id = expected->AddStream();
  for (int t = 0; t < 30; ++t) {
    ASSERT_TRUE(expected->Append(id, (t % 7) * 1.5 - 3.0).ok());
  }
  ExpectSameState(*expected, *restored.value());
  for (int t = 30; t < 120; ++t) {
    const double v = (t % 7) * 1.5 - 3.0;
    ASSERT_TRUE(expected->Append(id, v).ok());
    ASSERT_TRUE(restored.value()->Append(id, v).ok());
  }
  ExpectSameState(*expected, *restored.value());
}

}  // namespace
}  // namespace stardust
