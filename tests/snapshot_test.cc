#include "core/snapshot.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/pattern_query.h"
#include "stream/random_walk.h"

namespace stardust {
namespace {

StardustConfig IndexedDwtConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 4;
  config.r_max = 110.0;
  config.base_window = 16;
  config.num_levels = 4;
  config.history = 256;
  config.box_capacity = 4;
  config.update_period = 1;
  config.index_features = true;
  return config;
}

StardustConfig AggregateConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSpread;
  config.base_window = 10;
  config.num_levels = 4;
  config.history = 160;
  config.box_capacity = 3;
  config.update_period = 1;
  return config;
}

std::unique_ptr<Stardust> BuildAndFeed(const StardustConfig& config,
                                       std::size_t streams,
                                       std::size_t length,
                                       std::uint64_t seed) {
  auto core = std::move(Stardust::Create(config)).value();
  for (std::size_t i = 0; i < streams; ++i) {
    const StreamId id = core->AddStream();
    RandomWalkSource source(seed + i);
    for (std::size_t t = 0; t < length; ++t) {
      EXPECT_TRUE(core->Append(id, source.Next()).ok());
    }
  }
  return core;
}

void ExpectSameState(const Stardust& a, const Stardust& b) {
  ASSERT_EQ(a.num_streams(), b.num_streams());
  for (StreamId s = 0; s < a.num_streams(); ++s) {
    const StreamSummarizer& sa = a.summarizer(s);
    const StreamSummarizer& sb = b.summarizer(s);
    ASSERT_EQ(sa.now(), sb.now());
    ASSERT_EQ(sa.TotalBoxCount(), sb.TotalBoxCount());
    for (std::size_t j = 0; j < a.config().num_levels; ++j) {
      std::vector<FeatureBox> boxes_a, boxes_b;
      sa.thread(j).ForEachBox(
          [&](const FeatureBox& box) { boxes_a.push_back(box); });
      sb.thread(j).ForEachBox(
          [&](const FeatureBox& box) { boxes_b.push_back(box); });
      ASSERT_EQ(boxes_a.size(), boxes_b.size());
      for (std::size_t i = 0; i < boxes_a.size(); ++i) {
        EXPECT_TRUE(boxes_a[i].extent == boxes_b[i].extent);
        EXPECT_EQ(boxes_a[i].first_time, boxes_b[i].first_time);
        EXPECT_EQ(boxes_a[i].count, boxes_b[i].count);
        EXPECT_EQ(boxes_a[i].seq, boxes_b[i].seq);
        EXPECT_EQ(boxes_a[i].sealed, boxes_b[i].sealed);
      }
    }
  }
  if (a.config().index_features) {
    for (std::size_t j = 0; j < a.config().num_levels; ++j) {
      EXPECT_EQ(a.index(j).size(), b.index(j).size());
      EXPECT_TRUE(b.index(j).CheckInvariants().ok());
    }
  }
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  auto original = BuildAndFeed(IndexedDwtConfig(), 3, 500, 1);
  const std::string bytes = SerializeSnapshot(*original);
  Result<std::unique_ptr<Stardust>> restored = DeserializeSnapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameState(*original, *restored.value());
}

TEST(SnapshotTest, AggregateRoundTrip) {
  auto original = BuildAndFeed(AggregateConfig(), 2, 300, 2);
  Result<std::unique_ptr<Stardust>> restored =
      DeserializeSnapshot(SerializeSnapshot(*original));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameState(*original, *restored.value());
  // Intervals answered identically.
  for (std::size_t w : {10u, 30u, 70u}) {
    const auto ia = original->AggregateInterval(0, w);
    const auto ib = restored.value()->AggregateInterval(0, w);
    ASSERT_TRUE(ia.ok());
    ASSERT_TRUE(ib.ok());
    EXPECT_EQ(ia.value().lo, ib.value().lo);
    EXPECT_EQ(ia.value().hi, ib.value().hi);
  }
}

// The strongest property: a restored instance, fed the same continuation,
// stays bit-identical to the uninterrupted original — queries included.
TEST(SnapshotTest, ContinuationIsBitExact) {
  const StardustConfig config = IndexedDwtConfig();
  auto original = BuildAndFeed(config, 2, 300, 3);
  Result<std::unique_ptr<Stardust>> restored =
      DeserializeSnapshot(SerializeSnapshot(*original));
  ASSERT_TRUE(restored.ok());
  // Continue both with the same 250 further values per stream.
  std::vector<RandomWalkSource> sources{RandomWalkSource(91),
                                        RandomWalkSource(92)};
  for (int t = 0; t < 250; ++t) {
    for (StreamId s = 0; s < 2; ++s) {
      const double v = sources[s].Next();
      ASSERT_TRUE(original->Append(s, v).ok());
      ASSERT_TRUE(restored.value()->Append(s, v).ok());
    }
  }
  ExpectSameState(*original, *restored.value());
  // Identical pattern answers.
  PatternQueryEngine engine_a(*original);
  PatternQueryEngine engine_b(*restored.value());
  RandomWalkSource query_source(99);
  const std::vector<double> query = query_source.Take(48);
  const auto ra = engine_a.QueryOnline(query, 0.05);
  const auto rb = engine_b.QueryOnline(query, 0.05);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value().candidates, rb.value().candidates);
  ASSERT_EQ(ra.value().matches.size(), rb.value().matches.size());
  for (std::size_t i = 0; i < ra.value().matches.size(); ++i) {
    EXPECT_EQ(ra.value().matches[i].stream, rb.value().matches[i].stream);
    EXPECT_EQ(ra.value().matches[i].end_time,
              rb.value().matches[i].end_time);
    EXPECT_EQ(ra.value().matches[i].distance,
              rb.value().matches[i].distance);
  }
}

TEST(SnapshotTest, FileRoundTrip) {
  auto original = BuildAndFeed(AggregateConfig(), 1, 200, 4);
  const std::string path =
      ::testing::TempDir() + "/stardust_snapshot_test.bin";
  ASSERT_TRUE(SaveSnapshot(*original, path).ok());
  Result<std::unique_ptr<Stardust>> restored = LoadSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameState(*original, *restored.value());
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeSnapshot("").ok());
  EXPECT_FALSE(DeserializeSnapshot("not a snapshot at all").ok());
  EXPECT_FALSE(LoadSnapshot("/no/such/snapshot.bin").ok());
}

TEST(SnapshotTest, RejectsTruncation) {
  auto original = BuildAndFeed(AggregateConfig(), 1, 150, 5);
  const std::string bytes = SerializeSnapshot(*original);
  for (std::size_t keep :
       {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(DeserializeSnapshot(bytes.substr(0, keep)).ok())
        << "kept " << keep << " of " << bytes.size();
  }
}

TEST(SnapshotTest, RejectsBitFlips) {
  auto original = BuildAndFeed(AggregateConfig(), 1, 150, 6);
  const std::string bytes = SerializeSnapshot(*original);
  // Flip a byte in the payload region (past magic+version+checksum).
  for (std::size_t pos : {std::size_t{20}, bytes.size() / 2, bytes.size() - 3}) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5a);
    EXPECT_FALSE(DeserializeSnapshot(corrupt).ok()) << "pos " << pos;
  }
}

TEST(SnapshotTest, RejectsTrailingBytes) {
  auto original = BuildAndFeed(AggregateConfig(), 1, 150, 7);
  std::string bytes = SerializeSnapshot(*original);
  bytes += '\0';
  EXPECT_FALSE(DeserializeSnapshot(bytes).ok());
}

}  // namespace
}  // namespace stardust
