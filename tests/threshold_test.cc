#include "stream/threshold.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stardust {
namespace {

TEST(SlidingAggregateTest, SumSeries) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y =
      SlidingAggregate(AggregateKind::kSum, x, 2);
  EXPECT_EQ(y, (std::vector<double>{3, 5, 7, 9}));
}

TEST(SlidingAggregateTest, MaxAndMinSeries) {
  const std::vector<double> x{3, 1, 4, 1, 5};
  EXPECT_EQ(SlidingAggregate(AggregateKind::kMax, x, 3),
            (std::vector<double>{4, 4, 5}));
  EXPECT_EQ(SlidingAggregate(AggregateKind::kMin, x, 3),
            (std::vector<double>{1, 1, 1}));
}

TEST(SlidingAggregateTest, SpreadSeries) {
  const std::vector<double> x{3, 1, 4, 1, 5};
  EXPECT_EQ(SlidingAggregate(AggregateKind::kSpread, x, 2),
            (std::vector<double>{2, 3, 3, 4}));
}

TEST(SlidingAggregateTest, WindowEqualsLength) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y =
      SlidingAggregate(AggregateKind::kSum, x, 3);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_EQ(y[0], 6.0);
}

TEST(SlidingAggregatePropertyTest, MatchesBruteForce) {
  Rng rng(71);
  std::vector<double> x(300);
  for (double& v : x) v = rng.NextDouble(-50, 50);
  for (std::size_t w : {1u, 2u, 17u, 100u}) {
    const std::vector<double> max_series =
        SlidingAggregate(AggregateKind::kMax, x, w);
    ASSERT_EQ(max_series.size(), x.size() - w + 1);
    for (std::size_t i = 0; i < max_series.size(); ++i) {
      EXPECT_EQ(max_series[i],
                *std::max_element(x.begin() + i, x.begin() + i + w));
    }
  }
}

TEST(TrainThresholdsTest, MeanPlusLambdaSigma) {
  // Training data where the sliding SUM of window 2 is {3, 5, 7}:
  // mean = 5, variance = 8/3.
  const std::vector<double> training{1, 2, 3, 4};
  const std::vector<WindowThreshold> thresholds =
      TrainThresholds(AggregateKind::kSum, training, {2}, 2.0);
  ASSERT_EQ(thresholds.size(), 1u);
  EXPECT_EQ(thresholds[0].window, 2u);
  EXPECT_NEAR(thresholds[0].threshold, 5.0 + 2.0 * std::sqrt(8.0 / 3.0),
              1e-12);
}

TEST(TrainThresholdsTest, SkipsWindowsLargerThanTraining) {
  const std::vector<double> training{1, 2, 3};
  const std::vector<WindowThreshold> thresholds =
      TrainThresholds(AggregateKind::kSum, training, {2, 10}, 1.0);
  ASSERT_EQ(thresholds.size(), 1u);
  EXPECT_EQ(thresholds[0].window, 2u);
}

TEST(TrainThresholdsTest, LargerLambdaRaisesThreshold) {
  Rng rng(72);
  std::vector<double> training(500);
  for (double& v : training) v = rng.NextDouble(0, 10);
  const auto low = TrainThresholds(AggregateKind::kSum, training, {20}, 1.0);
  const auto high = TrainThresholds(AggregateKind::kSum, training, {20}, 5.0);
  ASSERT_EQ(low.size(), 1u);
  ASSERT_EQ(high.size(), 1u);
  EXPECT_LT(low[0].threshold, high[0].threshold);
}

TEST(TrainThresholdsTest, MultipleWindowsKeepOrder) {
  Rng rng(73);
  std::vector<double> training(200);
  for (double& v : training) v = rng.NextDouble(0, 1);
  const auto out = TrainThresholds(AggregateKind::kSpread, training,
                                   {10, 20, 40}, 2.0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].window, 10u);
  EXPECT_EQ(out[1].window, 20u);
  EXPECT_EQ(out[2].window, 40u);
}

}  // namespace
}  // namespace stardust
