// Tests for the per-level update schedules: the paper's uniform online
// (T = 1) and batch (T = W) algorithms plus the dyadic SWAT schedule
// (T_j = T · 2^j), whose summary space is O(log N).
#include <gtest/gtest.h>

#include "core/summarizer.h"
#include "stream/random_walk.h"

namespace stardust {
namespace {

StardustConfig DyadicConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 8;
  config.num_levels = 5;  // windows 8..128, periods 1..16
  config.history = 256;
  config.box_capacity = 1;
  config.update_period = 1;
  config.update_schedule = UpdateSchedule::kDyadic;
  return config;
}

TEST(ScheduleTest, LevelPeriodScaling) {
  StardustConfig config = DyadicConfig();
  EXPECT_EQ(config.LevelPeriod(0), 1u);
  EXPECT_EQ(config.LevelPeriod(1), 2u);
  EXPECT_EQ(config.LevelPeriod(4), 16u);
  config.update_schedule = UpdateSchedule::kUniform;
  EXPECT_EQ(config.LevelPeriod(4), 1u);
}

TEST(ScheduleTest, DyadicRequiresUnitBoxes) {
  StardustConfig config = DyadicConfig();
  EXPECT_TRUE(config.Validate().ok());
  config.box_capacity = 4;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ScheduleTest, DyadicFeatureTimesAreAligned) {
  StreamSummarizer summarizer(DyadicConfig());
  RandomWalkSource source(1);
  for (int t = 0; t < 300; ++t) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  const StardustConfig& config = summarizer.config();
  for (std::size_t j = 0; j < config.num_levels; ++j) {
    const std::size_t w = config.LevelWindow(j);
    const std::size_t period = config.LevelPeriod(j);
    std::size_t found = 0;
    for (std::uint64_t t = 0; t < 300; ++t) {
      const FeatureBox* box = summarizer.thread(j).Find(t);
      if (box == nullptr) continue;
      ++found;
      EXPECT_EQ((t + 1 - w) % period, 0u) << "level " << j << " t " << t;
    }
    // All aligned feature times still inside the history are retained.
    std::size_t expected = 0;
    const std::uint64_t min_time = 300 - config.history;
    for (std::uint64_t t = w - 1; t < 300; t += period) {
      if (t >= min_time) ++expected;
    }
    EXPECT_EQ(found, expected) << "level " << j;
  }
}

TEST(ScheduleTest, DyadicFeaturesAreExact) {
  StreamSummarizer summarizer(DyadicConfig());
  RandomWalkSource source(2);
  for (int t = 0; t < 300; ++t) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  const StardustConfig& config = summarizer.config();
  for (std::size_t j = 0; j < config.num_levels; ++j) {
    const std::size_t w = config.LevelWindow(j);
    for (std::uint64_t t = 100; t < 300; ++t) {
      const FeatureBox* box = summarizer.thread(j).Find(t);
      if (box == nullptr) continue;
      Result<Point> exact = summarizer.ExactFeature(t, w);
      // Old windows may have partially left the raw buffer.
      if (!exact.ok()) continue;
      EXPECT_NEAR(box->extent.lo(0), exact.value()[0], 1e-9);
      EXPECT_NEAR(box->extent.hi(0), exact.value()[0], 1e-9);
    }
  }
}

// SWAT's space claim: with T_j = 2^j the number of retained boxes per
// level is O(history / (W·2^j) ... effectively bounded and the TOTAL
// across levels grows only logarithmically with the history.
TEST(ScheduleTest, DyadicSummarySpaceIsLogarithmic) {
  StardustConfig config = DyadicConfig();
  config.history = 128;
  StreamSummarizer summarizer(config);
  RandomWalkSource source(3);
  for (int t = 0; t < 5000; ++t) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  std::size_t total_boxes = 0;
  for (std::size_t j = 0; j < config.num_levels; ++j) {
    const std::size_t boxes = summarizer.thread(j).box_count();
    // Θ(history / T_j) per level (Theorem 4.3 with the dyadic schedule).
    EXPECT_LE(boxes, config.history / config.LevelPeriod(j) + 2)
        << "level " << j;
    total_boxes += boxes;
  }
  // Uniform T=1 would retain ~num_levels · history boxes; the dyadic
  // schedule stays within 2·history + O(levels).
  EXPECT_LE(total_boxes, 2 * config.history + 2 * config.num_levels);
}

TEST(ScheduleTest, DwtDyadicAlsoSupported) {
  StardustConfig config = DyadicConfig();
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 2;
  config.r_max = 110.0;
  ASSERT_TRUE(config.Validate().ok());
  StreamSummarizer summarizer(config);
  RandomWalkSource source(4);
  for (int t = 0; t < 300; ++t) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  const FeatureBox* top =
      summarizer.thread(config.num_levels - 1).Find(
          summarizer.thread(config.num_levels - 1).last_time());
  ASSERT_NE(top, nullptr);
  Result<Point> exact = summarizer.ExactFeature(
      summarizer.thread(config.num_levels - 1).last_time(),
      config.LevelWindow(config.num_levels - 1));
  ASSERT_TRUE(exact.ok());
  for (std::size_t d = 0; d < exact.value().size(); ++d) {
    EXPECT_NEAR(top->extent.lo(d), exact.value()[d], 1e-9);
  }
}

}  // namespace
}  // namespace stardust
