#include "core/level_state.h"

#include <gtest/gtest.h>

namespace stardust {
namespace {

Mbr PointBox(double v) { return Mbr::FromPoint({v}); }

TEST(LevelThreadTest, BoxesSealAtCapacity) {
  LevelThread thread(/*dims=*/1, /*capacity=*/3, /*stride=*/1);
  EXPECT_EQ(thread.Append(0, PointBox(1.0)), nullptr);
  EXPECT_EQ(thread.Append(1, PointBox(2.0)), nullptr);
  const FeatureBox* sealed = thread.Append(2, PointBox(3.0));
  ASSERT_NE(sealed, nullptr);
  EXPECT_TRUE(sealed->sealed);
  EXPECT_EQ(sealed->count, 3u);
  EXPECT_EQ(sealed->first_time, 0u);
  EXPECT_EQ(sealed->seq, 0u);
  EXPECT_EQ(sealed->extent.lo(0), 1.0);
  EXPECT_EQ(sealed->extent.hi(0), 3.0);
}

TEST(LevelThreadTest, NextBoxStartsAfterSeal) {
  LevelThread thread(1, 2, 1);
  thread.Append(5, PointBox(1.0));
  thread.Append(6, PointBox(2.0));
  EXPECT_EQ(thread.Append(7, PointBox(9.0)), nullptr);
  EXPECT_EQ(thread.box_count(), 2u);
  const FeatureBox* second = thread.Find(7);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->seq, 1u);
  EXPECT_EQ(second->first_time, 7u);
  EXPECT_FALSE(second->sealed);
}

TEST(LevelThreadTest, FindMapsTimesToBoxes) {
  LevelThread thread(1, 2, 1);
  for (int t = 0; t < 6; ++t) {
    thread.Append(t, PointBox(static_cast<double>(t)));
  }
  for (int t = 0; t < 6; ++t) {
    const FeatureBox* box = thread.Find(t);
    ASSERT_NE(box, nullptr) << "t=" << t;
    EXPECT_EQ(box->seq, static_cast<std::uint64_t>(t / 2));
  }
  EXPECT_EQ(thread.Find(6), nullptr);   // future
  EXPECT_EQ(thread.last_time(), 5u);
}

TEST(LevelThreadTest, StridedFeatureTimes) {
  LevelThread thread(1, 1, 4);  // batch: stride 4, capacity 1
  thread.Append(7, PointBox(1.0));
  thread.Append(11, PointBox(2.0));
  thread.Append(15, PointBox(3.0));
  EXPECT_NE(thread.Find(7), nullptr);
  EXPECT_NE(thread.Find(11), nullptr);
  EXPECT_EQ(thread.Find(9), nullptr);  // misaligned
  EXPECT_EQ(thread.Find(11)->extent.lo(0), 2.0);
}

TEST(LevelThreadTest, ExpireDropsOnlySealedOldBoxes) {
  LevelThread thread(1, 2, 1);
  for (int t = 0; t < 5; ++t) {
    thread.Append(t, PointBox(static_cast<double>(t)));
  }
  // Boxes: seq0 {0,1} sealed, seq1 {2,3} sealed, seq2 {4} filling.
  std::vector<std::uint64_t> removed;
  thread.ExpireBefore(3, [&](const FeatureBox& b) {
    removed.push_back(b.seq);
  });
  // Box 0's last time (1) < 3 → removed; box 1's last time (3) >= 3 → kept.
  EXPECT_EQ(removed, (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(thread.Find(1), nullptr);
  EXPECT_NE(thread.Find(2), nullptr);
  // The filling box survives even a far-future cutoff.
  thread.ExpireBefore(100, [&](const FeatureBox& b) {
    removed.push_back(b.seq);
  });
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_EQ(thread.box_count(), 1u);
  EXPECT_FALSE(thread.empty());
}

TEST(LevelThreadTest, FindBySeqAfterExpiry) {
  LevelThread thread(1, 1, 1);
  for (int t = 0; t < 10; ++t) {
    thread.Append(t, PointBox(static_cast<double>(t)));
  }
  thread.ExpireBefore(5, nullptr);
  EXPECT_EQ(thread.FindBySeq(3), nullptr);
  ASSERT_NE(thread.FindBySeq(7), nullptr);
  EXPECT_EQ(thread.FindBySeq(7)->extent.lo(0), 7.0);
  EXPECT_EQ(thread.FindBySeq(42), nullptr);
}

TEST(LevelThreadTest, ExtentCoversAllAppendedFeatures) {
  LevelThread thread(2, 4, 1);
  Mbr a = Mbr::FromPoint({1.0, -1.0});
  Mbr b = Mbr::FromPoint({3.0, 2.0});
  Mbr c({0.0, 0.0}, {0.5, 0.5});  // extents (merged features) also allowed
  thread.Append(0, a);
  thread.Append(1, b);
  thread.Append(2, c);
  const FeatureBox* box = thread.Find(0);
  ASSERT_NE(box, nullptr);
  EXPECT_EQ(box->extent.lo(0), 0.0);
  EXPECT_EQ(box->extent.hi(0), 3.0);
  EXPECT_EQ(box->extent.lo(1), -1.0);
  EXPECT_EQ(box->extent.hi(1), 2.0);
}

}  // namespace
}  // namespace stardust
