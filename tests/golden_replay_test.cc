// Golden-replay equivalence of the compiled-plan evaluation path.
//
// The engine used to evaluate queries directly against its cores (the
// "seed" path: per-batch Algorithm-2 filter+verify over the fleet, the
// uncompiled Algorithm-3 pattern query, per-round z-normalization in the
// correlator). The feature-pipeline refactor replaced that with compiled
// EvalPlans over a shared FeatureStore. These tests re-implement the seed
// semantics verbatim as reference evaluators — plain rolling sums for
// Algorithm 2, an independently-fed Stardust core driving QueryOnline for
// Algorithm 3, an independently-fed correlation core with brute-force
// pair verification for Section 5.3 — replay identical data through both,
// and require the alert sequences to match exactly per query class.
//
// Data is integer-valued so every aggregate and distance both sides
// compute is exact in double precision: any divergence is a semantic
// difference, never rounding noise. Batch boundaries are pinned with
// Pause/post/Resume/Flush cycles (one batch per step), and correlator
// rounds run only through TriggerCorrelatorRound against an effectively
// disabled background period.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "core/fleet_monitor.h"
#include "core/level_state.h"
#include "core/pattern_query.h"
#include "core/snapshot.h"
#include "core/stardust.h"
#include "core/summarizer.h"
#include "engine/checkpoint.h"
#include "engine/engine.h"
#include "geom/mbr.h"
#include "query/sinks.h"
#include "stream/threshold.h"
#include "transform/feature.h"

namespace stardust {
namespace {

constexpr std::size_t kStreams = 4;
constexpr int kSteps = 400;

// Fleet (aggregate) configuration: SUM monitoring, base window 10.
StardustConfig AggregateConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 4;
  config.history = 200;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

// Online unit-sphere DWT core for pattern queries (Algorithm 3).
StardustConfig PatternCoreConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 4;
  config.r_max = 8.0;
  config.base_window = 8;
  config.num_levels = 2;
  config.history = 1024;
  config.box_capacity = 1;
  config.update_period = 1;
  config.index_features = true;
  return config;
}

// Batch z-normalized DWT core for correlation queries (T == W, c == 1).
StardustConfig CorrelationCoreConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = 8;
  config.num_levels = 2;
  config.history = 1024;
  config.box_capacity = 1;
  config.update_period = 8;  // T == W: batch algorithm
  return config;
}

QueryConfig GoldenQueryConfig() {
  QueryConfig config;
  config.enable_patterns = true;
  config.pattern = PatternCoreConfig();
  config.enable_correlation = true;
  config.correlation = CorrelationCoreConfig();
  // Rounds fire only through TriggerCorrelatorRound.
  config.correlator_period_ms = 3600 * 1000;
  return config;
}

// The planted 16-step shape for the pattern query.
std::vector<double> PatternShape() {
  return {1, 5, 2, 8, 3, 7, 4, 6, 1, 5, 2, 8, 3, 7, 4, 6};
}

// Deterministic integer-valued data (see file comment):
//  - streams 0 and 1 share a 5-periodic wave, except stream 1 diverges
//    on t in [150, 250) — the correlation pair forms, breaks, re-forms;
//  - stream 2 holds at 1 and bursts to 50 on [100, 140) and [300, 340)
//    — two rising edges for the aggregate query;
//  - stream 3 is hash noise with the pattern shape planted at [200, 216).
double ValueAt(StreamId stream, int t) {
  switch (stream) {
    case 0:
      return static_cast<double>(t % 5 + 1);
    case 1:
      if (t >= 150 && t < 250) {
        return static_cast<double>((t * 13 + 7) % 9 + 1);
      }
      return static_cast<double>(t % 5 + 1);
    case 2:
      return ((t >= 100 && t < 140) || (t >= 300 && t < 340)) ? 50.0 : 1.0;
    default: {
      if (t >= 200 && t < 216) return PatternShape()[t - 200];
      return static_cast<double>((t * 31 + 11) % 10);
    }
  }
}

// One expected or observed alert, stripped to the fields both paths must
// agree on (epoch numbering differs by construction and is not compared).
struct GoldenAlert {
  QueryId query = 0;
  StreamId a = 0;
  StreamId b = 0;
  std::size_t window = 0;
  std::uint64_t end_time = 0;
  double value = 0.0;
  double threshold = 0.0;

  bool operator<(const GoldenAlert& o) const {
    return std::tie(end_time, query, a, b) <
           std::tie(o.end_time, o.query, o.a, o.b);
  }
};

std::vector<GoldenAlert> OfKind(const std::vector<Alert>& alerts,
                                QueryKind kind) {
  std::vector<GoldenAlert> out;
  for (const Alert& alert : alerts) {
    if (alert.kind != kind) continue;
    out.push_back({alert.query, alert.stream, alert.stream_b, alert.window,
                   alert.end_time, alert.value, alert.threshold});
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectSameSequence(const std::vector<GoldenAlert>& seed,
                        const std::vector<GoldenAlert>& plan,
                        const char* what) {
  ASSERT_EQ(seed.size(), plan.size()) << what << " alert count diverged";
  for (std::size_t i = 0; i < seed.size(); ++i) {
    EXPECT_EQ(seed[i].query, plan[i].query) << what << " alert " << i;
    EXPECT_EQ(seed[i].a, plan[i].a) << what << " alert " << i;
    EXPECT_EQ(seed[i].b, plan[i].b) << what << " alert " << i;
    EXPECT_EQ(seed[i].window, plan[i].window) << what << " alert " << i;
    EXPECT_EQ(seed[i].end_time, plan[i].end_time) << what << " alert " << i;
    EXPECT_DOUBLE_EQ(seed[i].value, plan[i].value) << what << " alert " << i;
    EXPECT_DOUBLE_EQ(seed[i].threshold, plan[i].threshold)
        << what << " alert " << i;
  }
}

// Seed-path Algorithm 2: per batch, per stream, exact rolling aggregate
// with a rising-edge latch. Integer data keeps the sums exact.
class SeedAggregate {
 public:
  SeedAggregate(QueryId id, std::size_t window, double threshold)
      : id_(id), window_(window), threshold_(threshold),
        tails_(kStreams), sums_(kStreams, 0.0), edge_(kStreams, 0) {}

  void OnBatch(const std::vector<double>& values, std::uint64_t appended,
               std::vector<GoldenAlert>* out) {
    for (StreamId s = 0; s < kStreams; ++s) {
      tails_[s].push_back(values[s]);
      sums_[s] += values[s];
      if (tails_[s].size() > window_) {
        sums_[s] -= tails_[s].front();
        tails_[s].pop_front();
      }
      if (tails_[s].size() < window_) continue;  // not ready
      const bool alarm = sums_[s] >= threshold_;
      if (alarm && edge_[s] == 0) {
        out->push_back(
            {id_, s, 0, window_, appended - 1, sums_[s], threshold_});
      }
      edge_[s] = alarm ? 1 : 0;
    }
  }

 private:
  const QueryId id_;
  const std::size_t window_;
  const double threshold_;
  std::vector<std::deque<double>> tails_;
  std::vector<double> sums_;
  std::vector<char> edge_;
};

TEST(GoldenReplayTest, PlanPathMatchesSeedPathForEveryQueryClass) {
  EngineConfig econfig;
  econfig.num_shards = 1;
  econfig.start_paused = true;
  econfig.query = GoldenQueryConfig();
  auto engine = std::move(IngestEngine::Create(AggregateConfig(),
                                               {{10, 1e9}, {20, 1e9}},
                                               kStreams, econfig))
                    .value();
  auto ring = std::make_shared<RingSink>(1 << 16);
  engine->alerts().AddSink(ring);

  // Reference cores, fed the identical tuple sequence.
  auto ref_pattern = std::move(Stardust::Create(PatternCoreConfig())).value();
  auto ref_corr = std::move(Stardust::Create(CorrelationCoreConfig())).value();
  for (std::size_t s = 0; s < kStreams; ++s) {
    ref_pattern->AddStream();
    ref_corr->AddStream();
  }

  // Pattern and correlation queries from the start; the aggregate query
  // registers mid-stream (step 50) to exercise the tracker backfill
  // against the seed path's "window inside retained history" semantics.
  const double kPatternRadius = 0.05;
  const QueryId pattern_id =
      std::move(engine->RegisterQuery(
                    QuerySpec::Pattern(PatternShape(), kPatternRadius)))
          .value();
  const double kCorrRadius = 0.5;
  const QueryId corr_id =
      std::move(engine->RegisterQuery(QuerySpec::Correlation(kCorrRadius, 0)))
          .value();
  const std::size_t kAggWindow = 20;
  const double kAggThreshold = 200.0;
  QueryId agg_id = 0;
  std::unique_ptr<SeedAggregate> seed_agg;

  std::vector<GoldenAlert> seed_aggregate_alerts;
  std::vector<GoldenAlert> seed_pattern_alerts;
  std::vector<GoldenAlert> seed_corr_alerts;
  std::vector<std::uint64_t> pattern_watermark(kStreams, 0);
  std::set<std::pair<StreamId, StreamId>> corr_active;
  bool corr_has_last = false;
  std::uint64_t corr_last_time = 0;

  const std::size_t corr_level = 0;
  const std::size_t corr_window =
      CorrelationCoreConfig().LevelWindow(corr_level);
  std::vector<double> values(kStreams, 0.0);
  std::vector<double> raw_window;
  std::vector<std::vector<double>> znormed(kStreams);
  std::vector<char> present(kStreams, 0);

  for (int t = 0; t < kSteps; ++t) {
    if (t == 50) {
      agg_id = std::move(engine->RegisterQuery(
                             QuerySpec::Aggregate(kAggWindow, kAggThreshold)))
                   .value();
      seed_agg = std::make_unique<SeedAggregate>(agg_id, kAggWindow,
                                                 kAggThreshold);
    }

    // One pinned batch: post one tuple per stream while paused, then let
    // the worker apply them all at once.
    for (StreamId s = 0; s < kStreams; ++s) {
      values[s] = ValueAt(s, t);
      ASSERT_TRUE(engine->Post(s, values[s]).ok());
      ASSERT_TRUE(ref_pattern->Append(s, values[s]).ok());
      ASSERT_TRUE(ref_corr->Append(s, values[s]).ok());
    }
    engine->Resume();
    ASSERT_TRUE(engine->Flush().ok());
    engine->Pause();
    const std::uint64_t appended = static_cast<std::uint64_t>(t) + 1;

    // Seed Algorithm 2.
    if (seed_agg != nullptr) {
      seed_agg->OnBatch(values, appended, &seed_aggregate_alerts);
    }

    // Seed Algorithm 3: the uncompiled online pattern query over the
    // reference core, deduplicated by the per-stream delivery watermark.
    const PatternQueryEngine pattern_engine(*ref_pattern);
    const Result<PatternResult> result =
        pattern_engine.QueryOnline(PatternShape(), kPatternRadius);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const PatternMatch& match : result.value().matches) {
      if (match.end_time + 1 <= pattern_watermark[match.stream]) continue;
      pattern_watermark[match.stream] = match.end_time + 1;
      seed_pattern_alerts.push_back({pattern_id, match.stream, 0,
                                     PatternShape().size(), match.end_time,
                                     match.distance, kPatternRadius});
    }

    // Seed correlator round (Section 5.3): align every stream on the
    // slowest latest feature time, z-normalize the exact windows, verify
    // all pairs brute-force, rising-edge the pair set.
    engine->TriggerCorrelatorRound();
    std::uint64_t t_round = 0;
    bool any = false;
    for (StreamId s = 0; s < kStreams; ++s) {
      const LevelThread& thread = ref_corr->summarizer(s).thread(corr_level);
      if (thread.empty()) continue;
      t_round = any ? std::min(t_round, thread.last_time())
                    : thread.last_time();
      any = true;
    }
    if (any && (!corr_has_last || t_round != corr_last_time)) {
      corr_has_last = true;
      corr_last_time = t_round;
      for (StreamId s = 0; s < kStreams; ++s) {
        present[s] = 0;
        const StreamSummarizer& summarizer = ref_corr->summarizer(s);
        if (summarizer.thread(corr_level).Find(t_round) == nullptr) continue;
        if (!summarizer.GetWindow(t_round, corr_window, &raw_window).ok()) {
          continue;
        }
        znormed[s].resize(corr_window);
        double mean = 0.0;
        double norm2 = 0.0;
        ZNormalizeTo(raw_window.data(), corr_window, znormed[s].data(),
                     &mean, &norm2);
        present[s] = 1;
      }
      std::set<std::pair<StreamId, StreamId>> current;
      for (StreamId i = 0; i < kStreams; ++i) {
        if (present[i] == 0) continue;
        for (StreamId j = i + 1; j < kStreams; ++j) {
          if (present[j] == 0) continue;
          const double d2 = Dist2(znormed[i], znormed[j]);
          if (d2 > kCorrRadius * kCorrRadius) continue;
          current.emplace(i, j);
          if (corr_active.count({i, j}) != 0) continue;
          seed_corr_alerts.push_back({corr_id, i, j, corr_window, t_round,
                                      std::sqrt(d2), kCorrRadius});
        }
      }
      corr_active.swap(current);
    }
  }
  ASSERT_TRUE(engine->Stop().ok());

  const std::vector<Alert> observed = ring->Snapshot();
  std::sort(seed_aggregate_alerts.begin(), seed_aggregate_alerts.end());
  std::sort(seed_pattern_alerts.begin(), seed_pattern_alerts.end());
  std::sort(seed_corr_alerts.begin(), seed_corr_alerts.end());

  // The data plants at least one event per class, so an accidentally
  // silent class cannot vacuously pass.
  EXPECT_GE(seed_aggregate_alerts.size(), 2u);  // two bursts
  EXPECT_GE(seed_pattern_alerts.size(), 1u);
  EXPECT_GE(seed_corr_alerts.size(), 2u);  // pair forms, breaks, re-forms

  ExpectSameSequence(seed_aggregate_alerts,
                     OfKind(observed, QueryKind::kAggregate), "aggregate");
  ExpectSameSequence(seed_pattern_alerts,
                     OfKind(observed, QueryKind::kPattern), "pattern");
  ExpectSameSequence(seed_corr_alerts,
                     OfKind(observed, QueryKind::kCorrelation), "correlation");
}

// ---------------------------------------------------------------------------
// Batched columnar maintenance equivalence: the AppendRun path must leave
// every byte of summary state identical to per-value Append, at any run
// length. Serialized snapshots are the comparison medium — they cover
// raw history, level threads, box extents, alarm statistics, and tracker
// state, so "checksummed summary state" here is byte equality plus an
// FNV-1a digest for compact failure messages.

std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Run-length schedules the batched paths are replayed under (cycled over
// the input): the scalar boundary case, small runs, an odd length that
// never aligns with windows or box capacities, a full engine batch, and
// a mixed interleaving.
const std::vector<std::vector<std::size_t>>& RunSchedules() {
  static const std::vector<std::vector<std::size_t>> kSchedules = {
      {1}, {2}, {7}, {64}, {1, 2, 7, 64, 3, 5}};
  return kSchedules;
}

std::string SerializeSummarizers(const Stardust& core) {
  Writer writer;
  for (StreamId s = 0; s < core.num_streams(); ++s) {
    core.summarizer(s).SaveTo(&writer);
  }
  return writer.TakeBuffer();
}

// Core configurations spanning every summarizer code path the batched
// kernels replaced: incremental aggregate with box merging (c > 1),
// indexed online unit-sphere DWT (half-merge, Lemma A.1), batch
// z-normalized DWT (T == W), and the exact-levels ablation.
std::vector<std::pair<std::string, StardustConfig>> BatchedCoreConfigs() {
  std::vector<std::pair<std::string, StardustConfig>> configs;
  configs.emplace_back("aggregate_c2", AggregateConfig());
  configs.emplace_back("unit_sphere_indexed", PatternCoreConfig());
  configs.emplace_back("znorm_batch", CorrelationCoreConfig());
  StardustConfig exact = PatternCoreConfig();
  exact.exact_levels = true;
  exact.index_features = false;
  configs.emplace_back("exact_levels", exact);
  return configs;
}

TEST(BatchedMaintenanceTest, StardustAppendRunMatchesAppendBitExactly) {
  constexpr std::size_t kCoreStreams = 3;
  constexpr int kCoreSteps = 400;
  for (const auto& [name, config] : BatchedCoreConfigs()) {
    for (const std::vector<std::size_t>& schedule : RunSchedules()) {
      auto scalar = std::move(Stardust::Create(config)).value();
      auto batched = std::move(Stardust::Create(config)).value();
      for (std::size_t s = 0; s < kCoreStreams; ++s) {
        scalar->AddStream();
        batched->AddStream();
      }
      std::vector<double> values(kCoreSteps);
      for (StreamId s = 0; s < kCoreStreams; ++s) {
        for (int t = 0; t < kCoreSteps; ++t) {
          values[t] = ValueAt(s % kStreams, t);
          ASSERT_TRUE(scalar->Append(s, values[t]).ok());
        }
        std::size_t offset = 0;
        std::size_t turn = 0;
        while (offset < values.size()) {
          const std::size_t len = std::min(
              schedule[turn++ % schedule.size()], values.size() - offset);
          ASSERT_TRUE(
              batched->AppendRun(s, values.data() + offset, len).ok());
          offset += len;
        }
      }
      const std::string scalar_state = SerializeSummarizers(*scalar);
      const std::string batched_state = SerializeSummarizers(*batched);
      EXPECT_EQ(Fnv1a(scalar_state), Fnv1a(batched_state))
          << name << " schedule[0]=" << schedule[0]
          << ": state checksum diverged";
      ASSERT_EQ(scalar_state, batched_state)
          << name << " schedule[0]=" << schedule[0];
    }
  }
}

TEST(BatchedMaintenanceTest, FleetAppendRunMatchesAppendAlarmsAndState) {
  constexpr std::size_t kFleetStreams = 3;
  constexpr int kFleetSteps = 400;
  // Thresholds the golden data actually crosses, so alarm statistics are
  // non-trivially exercised (window-10 sums of the periodic wave reach
  // 30; window-20 sums of the burst stream reach 1000).
  const std::vector<WindowThreshold> thresholds = {{10, 25.0}, {20, 120.0}};
  for (const std::vector<std::size_t>& schedule : RunSchedules()) {
    auto scalar = std::move(FleetAggregateMonitor::Create(
                                AggregateConfig(), thresholds, kFleetStreams))
                      .value();
    auto batched = std::move(FleetAggregateMonitor::Create(
                                 AggregateConfig(), thresholds, kFleetStreams))
                       .value();
    std::vector<double> values(kFleetSteps);
    for (StreamId s = 0; s < kFleetStreams; ++s) {
      for (int t = 0; t < kFleetSteps; ++t) {
        values[t] = ValueAt(s % kStreams, t);
        ASSERT_TRUE(scalar->Append(s, values[t]).ok());
      }
      std::size_t offset = 0;
      std::size_t turn = 0;
      while (offset < values.size()) {
        const std::size_t len = std::min(schedule[turn++ % schedule.size()],
                                         values.size() - offset);
        ASSERT_TRUE(batched->AppendRun(s, values.data() + offset, len).ok());
        offset += len;
      }
    }
    const AlarmStats scalar_stats = scalar->FleetTotal();
    const AlarmStats batched_stats = batched->FleetTotal();
    EXPECT_EQ(scalar_stats.checks, batched_stats.checks);
    EXPECT_EQ(scalar_stats.candidates, batched_stats.candidates);
    EXPECT_EQ(scalar_stats.true_alarms, batched_stats.true_alarms);
    EXPECT_GT(scalar_stats.true_alarms, 0u);  // not vacuous
    const std::string scalar_state = SerializeFleetSnapshot(*scalar);
    const std::string batched_state = SerializeFleetSnapshot(*batched);
    EXPECT_EQ(Fnv1a(scalar_state), Fnv1a(batched_state));
    ASSERT_EQ(scalar_state, batched_state)
        << "schedule[0]=" << schedule[0] << ": fleet state diverged";
  }
}

TEST(BatchedMaintenanceTest, AppendRunRejectsNonFiniteLikeAppend) {
  // A run containing a non-finite value must reject exactly the tuples
  // the scalar path rejects and leave identical state behind.
  const std::vector<WindowThreshold> thresholds = {{10, 25.0}};
  auto scalar = std::move(FleetAggregateMonitor::Create(AggregateConfig(),
                                                        thresholds, 1))
                    .value();
  auto batched = std::move(FleetAggregateMonitor::Create(AggregateConfig(),
                                                         thresholds, 1))
                     .value();
  std::vector<double> values;
  for (int t = 0; t < 40; ++t) values.push_back(ValueAt(0, t));
  values[17] = std::nan("");
  for (double v : values) {
    const Status status = scalar->Append(0, v);
    EXPECT_EQ(status.ok(), std::isfinite(v));
  }
  const Status run_status = batched->AppendRun(0, values.data(),
                                               values.size());
  EXPECT_FALSE(run_status.ok());
  // Replay the remainder the way the shard does: split around the bad
  // value and run the finite pieces.
  auto batched2 = std::move(FleetAggregateMonitor::Create(AggregateConfig(),
                                                          thresholds, 1))
                      .value();
  ASSERT_TRUE(batched2->AppendRun(0, values.data(), 17).ok());
  EXPECT_FALSE(batched2->Append(0, values[17]).ok());
  ASSERT_TRUE(
      batched2->AppendRun(0, values.data() + 18, values.size() - 18).ok());
  ASSERT_EQ(SerializeFleetSnapshot(*scalar), SerializeFleetSnapshot(*batched2));
}

// Engine-level golden replay at batched run lengths: each pinned batch
// carries `group` consecutive steps (so every stream's run has length
// `group` in one ApplyBatch), and the seed-path references check alarms
// once per batch — the same cadence the engine evaluates its plan at.
// `stream_major` posts all of one stream's values before the next
// stream's (instead of round-robin by step), exercising GroupRuns'
// stable scatter under a different interleaving of the same tuples.
void RunBatchedGoldenReplay(int group, bool stream_major) {
  EngineConfig econfig;
  econfig.num_shards = 1;
  econfig.start_paused = true;
  econfig.query = GoldenQueryConfig();
  auto engine = std::move(IngestEngine::Create(AggregateConfig(),
                                               {{10, 1e9}, {20, 1e9}},
                                               kStreams, econfig))
                    .value();
  auto ring = std::make_shared<RingSink>(1 << 16);
  engine->alerts().AddSink(ring);

  auto ref_pattern = std::move(Stardust::Create(PatternCoreConfig())).value();
  auto ref_fleet = std::move(FleetAggregateMonitor::Create(
                                 AggregateConfig(), {{10, 1e9}, {20, 1e9}},
                                 kStreams))
                       .value();
  for (std::size_t s = 0; s < kStreams; ++s) ref_pattern->AddStream();

  const double kPatternRadius = 0.05;
  const QueryId pattern_id =
      std::move(engine->RegisterQuery(
                    QuerySpec::Pattern(PatternShape(), kPatternRadius)))
          .value();
  const std::size_t kAggWindow = 20;
  const double kAggThreshold = 200.0;
  QueryId agg_id = 0;

  // Seed Algorithm 2 with per-batch alarm checks: exact rolling sums per
  // value, rising-edge latch evaluated once per applied batch.
  std::vector<std::deque<double>> tails(kStreams);
  std::vector<double> sums(kStreams, 0.0);
  std::vector<char> edge(kStreams, 0);
  std::vector<GoldenAlert> seed_aggregate_alerts;
  std::vector<GoldenAlert> seed_pattern_alerts;
  std::vector<std::uint64_t> pattern_watermark(kStreams, 0);

  for (int t0 = 0; t0 < kSteps; t0 += group) {
    const int steps = std::min(group, kSteps - t0);
    if (t0 <= 50 && 50 < t0 + steps && agg_id == 0) {
      agg_id = std::move(engine->RegisterQuery(
                             QuerySpec::Aggregate(kAggWindow, kAggThreshold)))
                   .value();
    }
    // Post the whole group while paused; references see the identical
    // per-stream value sequences regardless of the posting interleaving.
    const auto post = [&](StreamId s, int t) {
      const double v = ValueAt(s, t);
      ASSERT_TRUE(engine->Post(s, v).ok());
      ASSERT_TRUE(ref_pattern->Append(s, v).ok());
      ASSERT_TRUE(ref_fleet->Append(s, v).ok());
      tails[s].push_back(v);
      sums[s] += v;
      if (tails[s].size() > kAggWindow) {
        sums[s] -= tails[s].front();
        tails[s].pop_front();
      }
    };
    if (stream_major) {
      for (StreamId s = 0; s < kStreams; ++s) {
        for (int k = 0; k < steps; ++k) post(s, t0 + k);
      }
    } else {
      for (int k = 0; k < steps; ++k) {
        for (StreamId s = 0; s < kStreams; ++s) post(s, t0 + k);
      }
    }
    engine->Resume();
    ASSERT_TRUE(engine->Flush().ok());
    engine->Pause();
    const std::uint64_t appended = static_cast<std::uint64_t>(t0 + steps);

    if (agg_id != 0) {
      for (StreamId s = 0; s < kStreams; ++s) {
        if (tails[s].size() < kAggWindow) continue;
        const bool alarm = sums[s] >= kAggThreshold;
        if (alarm && edge[s] == 0) {
          seed_aggregate_alerts.push_back({agg_id, s, 0, kAggWindow,
                                           appended - 1, sums[s],
                                           kAggThreshold});
        }
        edge[s] = alarm ? 1 : 0;
      }
    }
    const PatternQueryEngine pattern_engine(*ref_pattern);
    const Result<PatternResult> result =
        pattern_engine.QueryOnline(PatternShape(), kPatternRadius);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const PatternMatch& match : result.value().matches) {
      if (match.end_time + 1 <= pattern_watermark[match.stream]) continue;
      pattern_watermark[match.stream] = match.end_time + 1;
      seed_pattern_alerts.push_back({pattern_id, match.stream, 0,
                                     PatternShape().size(), match.end_time,
                                     match.distance, kPatternRadius});
    }
  }

  // State equivalence: checkpoint the engine and require the restored
  // shard fleet to serialize byte-identically to the per-value reference
  // fleet (one shard, so stream order lines up).
  const std::string dir =
      std::string(::testing::TempDir()) + "/golden_batched_" +
      std::to_string(group) + (stream_major ? "_sm" : "_rr");
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  const CheckpointManifest manifest =
      std::move(FindLatestValidCheckpoint(dir)).value();
  ASSERT_EQ(manifest.shards.size(), 1u);
  auto restored =
      std::move(LoadFleetSnapshot(dir + "/" + manifest.shards[0].file))
          .value();
  const std::string engine_state = SerializeFleetSnapshot(*restored);
  const std::string ref_state = SerializeFleetSnapshot(*ref_fleet);
  EXPECT_EQ(Fnv1a(engine_state), Fnv1a(ref_state));
  ASSERT_EQ(engine_state, ref_state)
      << "group=" << group << " fleet state diverged from per-value replay";

  ASSERT_TRUE(engine->Stop().ok());
  const std::vector<Alert> observed = ring->Snapshot();
  std::sort(seed_aggregate_alerts.begin(), seed_aggregate_alerts.end());
  std::sort(seed_pattern_alerts.begin(), seed_pattern_alerts.end());
  EXPECT_GE(seed_aggregate_alerts.size(), 1u);
  EXPECT_GE(seed_pattern_alerts.size(), 1u);
  ExpectSameSequence(seed_aggregate_alerts,
                     OfKind(observed, QueryKind::kAggregate), "aggregate");
  ExpectSameSequence(seed_pattern_alerts,
                     OfKind(observed, QueryKind::kPattern), "pattern");
}

TEST(BatchedGoldenReplayTest, RunLength2) { RunBatchedGoldenReplay(2, false); }
TEST(BatchedGoldenReplayTest, RunLength7StreamMajor) {
  RunBatchedGoldenReplay(7, true);
}
TEST(BatchedGoldenReplayTest, RunLength64) {
  RunBatchedGoldenReplay(64, false);
}

}  // namespace
}  // namespace stardust
