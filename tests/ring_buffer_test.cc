#include "common/ring_buffer.h"

#include <gtest/gtest.h>

namespace stardust {
namespace {

TEST(RingBufferTest, EmptyState) {
  RingBuffer<int> buf(4);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.first_position(), 0u);
  EXPECT_FALSE(buf.Contains(0));
}

TEST(RingBufferTest, PushAndRetrieveBeforeWrap) {
  RingBuffer<int> buf(4);
  for (int i = 0; i < 3; ++i) buf.Push(i * 10);
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.first_position(), 0u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(buf.Contains(i));
    EXPECT_EQ(buf.At(i), i * 10);
  }
  EXPECT_FALSE(buf.Contains(3));
}

TEST(RingBufferTest, OverwritesOldestAfterWrap) {
  RingBuffer<int> buf(4);
  for (int i = 0; i < 10; ++i) buf.Push(i);
  EXPECT_EQ(buf.size(), 10u);
  EXPECT_EQ(buf.first_position(), 6u);
  EXPECT_FALSE(buf.Contains(5));
  for (int i = 6; i < 10; ++i) {
    ASSERT_TRUE(buf.Contains(i));
    EXPECT_EQ(buf.At(i), i);
  }
}

TEST(RingBufferTest, CopyWindowAcrossWrapBoundary) {
  RingBuffer<int> buf(5);
  for (int i = 0; i < 8; ++i) buf.Push(i);
  std::vector<int> window;
  buf.CopyWindow(4, 4, &window);
  EXPECT_EQ(window, (std::vector<int>{4, 5, 6, 7}));
}

TEST(RingBufferTest, CopyEmptyWindow) {
  RingBuffer<int> buf(3);
  buf.Push(1);
  std::vector<int> window{9, 9};
  buf.CopyWindow(0, 0, &window);
  EXPECT_TRUE(window.empty());
}

TEST(RingBufferTest, CapacityOneKeepsLatest) {
  RingBuffer<double> buf(1);
  buf.Push(1.0);
  buf.Push(2.0);
  EXPECT_FALSE(buf.Contains(0));
  ASSERT_TRUE(buf.Contains(1));
  EXPECT_EQ(buf.At(1), 2.0);
}

TEST(RingBufferTest, LongRunPositionsStayConsistent) {
  RingBuffer<std::uint64_t> buf(7);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    buf.Push(i);
    const std::uint64_t first = buf.first_position();
    for (std::uint64_t p = first; p <= i; ++p) {
      ASSERT_EQ(buf.At(p), p);
    }
  }
}

TEST(SpscRingTest, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRingTest, PushPopFifoSingleThreaded) {
  SpscRing<int> ring(4);
  int v = -1;
  EXPECT_FALSE(ring.TryPop(&v));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full
  EXPECT_EQ(ring.ApproxSize(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));
  EXPECT_TRUE(ring.ApproxEmpty());
}

TEST(SpscRingTest, SlotsAreReusableAcrossManyWraps) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  for (int round = 0; round < 3000; ++round) {
    const std::size_t burst = 1 + round % 7;  // vary the occupancy
    for (std::size_t k = 0; k < burst; ++k) {
      ASSERT_TRUE(ring.TryPush(next_push));
      ++next_push;
    }
    std::uint64_t v = 0;
    for (std::size_t k = 0; k < burst; ++k) {
      ASSERT_TRUE(ring.TryPop(&v));
      ASSERT_EQ(v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.ApproxEmpty());
}

TEST(SpscRingTest, StealOldestMakesRoomForTheNewest) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.TryPush(i));
  ASSERT_FALSE(ring.TryPush(4));
  int victim = -1;
  ASSERT_TRUE(ring.TryPop(&victim));  // the kDropOldest reclaim
  EXPECT_EQ(victim, 0);
  EXPECT_TRUE(ring.TryPush(4));
  int v = -1;
  for (int expected : {1, 2, 3, 4}) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, expected);
  }
}

}  // namespace
}  // namespace stardust
