#include "common/ring_buffer.h"

#include <gtest/gtest.h>

namespace stardust {
namespace {

TEST(RingBufferTest, EmptyState) {
  RingBuffer<int> buf(4);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.first_position(), 0u);
  EXPECT_FALSE(buf.Contains(0));
}

TEST(RingBufferTest, PushAndRetrieveBeforeWrap) {
  RingBuffer<int> buf(4);
  for (int i = 0; i < 3; ++i) buf.Push(i * 10);
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.first_position(), 0u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(buf.Contains(i));
    EXPECT_EQ(buf.At(i), i * 10);
  }
  EXPECT_FALSE(buf.Contains(3));
}

TEST(RingBufferTest, OverwritesOldestAfterWrap) {
  RingBuffer<int> buf(4);
  for (int i = 0; i < 10; ++i) buf.Push(i);
  EXPECT_EQ(buf.size(), 10u);
  EXPECT_EQ(buf.first_position(), 6u);
  EXPECT_FALSE(buf.Contains(5));
  for (int i = 6; i < 10; ++i) {
    ASSERT_TRUE(buf.Contains(i));
    EXPECT_EQ(buf.At(i), i);
  }
}

TEST(RingBufferTest, CopyWindowAcrossWrapBoundary) {
  RingBuffer<int> buf(5);
  for (int i = 0; i < 8; ++i) buf.Push(i);
  std::vector<int> window;
  buf.CopyWindow(4, 4, &window);
  EXPECT_EQ(window, (std::vector<int>{4, 5, 6, 7}));
}

TEST(RingBufferTest, CopyEmptyWindow) {
  RingBuffer<int> buf(3);
  buf.Push(1);
  std::vector<int> window{9, 9};
  buf.CopyWindow(0, 0, &window);
  EXPECT_TRUE(window.empty());
}

TEST(RingBufferTest, CapacityOneKeepsLatest) {
  RingBuffer<double> buf(1);
  buf.Push(1.0);
  buf.Push(2.0);
  EXPECT_FALSE(buf.Contains(0));
  ASSERT_TRUE(buf.Contains(1));
  EXPECT_EQ(buf.At(1), 2.0);
}

TEST(RingBufferTest, LongRunPositionsStayConsistent) {
  RingBuffer<std::uint64_t> buf(7);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    buf.Push(i);
    const std::uint64_t first = buf.first_position();
    for (std::uint64_t p = first; p <= i; ++p) {
      ASSERT_EQ(buf.At(p), p);
    }
  }
}

}  // namespace
}  // namespace stardust
