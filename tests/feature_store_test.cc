// Tests for the compute-once feature state introduced by the pipeline
// refactor: FeatureStore ring/rotation semantics and byte-stable
// serialization, FeaturePipeline "SDFP" snapshot round trips (including
// core-presence compatibility and corruption rejection), and the v3
// checkpoint manifest with per-shard feature entries (plus v1/v2
// manifests hand-built byte-for-byte to pin backward compatibility).
#include "core/feature_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "core/fleet_monitor.h"
#include "core/stardust.h"
#include "engine/checkpoint.h"
#include "engine/engine.h"
#include "engine/feature_pipeline.h"
#include "query/eval_plan.h"
#include "query/registry.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

constexpr std::size_t kStreams = 4;

// Same core shapes as the engine integration tests (query_test.cc).
StardustConfig AggregateConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 4;
  config.history = 200;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

StardustConfig PatternCoreConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 4;
  config.r_max = 8.0;
  config.base_window = 8;
  config.num_levels = 2;
  config.history = 1024;
  config.box_capacity = 1;
  config.update_period = 1;
  config.index_features = true;
  return config;
}

StardustConfig CorrelationCoreConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = 8;
  config.num_levels = 2;
  config.history = 1024;
  config.box_capacity = 1;
  config.update_period = 8;  // T == W: batch algorithm
  return config;
}

QueryConfig FullQueryConfig() {
  QueryConfig config;
  config.enable_patterns = true;
  config.pattern = PatternCoreConfig();
  config.enable_correlation = true;
  config.correlation = CorrelationCoreConfig();
  config.correlator_period_ms = 3600 * 1000;
  return config;
}

std::vector<WindowThreshold> FleetThresholds() {
  return {{10, 1e9}, {20, 1e9}};
}

std::unique_ptr<Stardust> MakeCore(const StardustConfig& config) {
  auto created = Stardust::Create(config);
  EXPECT_TRUE(created.ok()) << created.status().message();
  std::unique_ptr<Stardust> core = std::move(created.value());
  for (std::size_t s = 0; s < kStreams; ++s) core->AddStream();
  return core;
}

// Deterministic integer-valued signal (exact in double).
double ValueAt(std::size_t stream, std::uint64_t t) {
  return static_cast<double>((stream + 1) * (t % 7 + 1));
}

std::string SerializeStore(const FeatureStore& store) {
  Writer writer;
  store.SaveTo(&writer);
  return std::move(writer.TakeBuffer());
}

// --- Cache-geometry capacity derivation --------------------------------

TEST(FeatureStoreTest, EntryBytesCountsEveryColumn) {
  // time (8) + dims + window + mean + norm2 doubles + head/count u32s.
  EXPECT_EQ(FeatureStoreEntryBytes(/*window=*/8, /*dims=*/4),
            8u + (4 + 8 + 2) * 8u + 2 * 4u);
}

TEST(FeatureStoreTest, DeriveStoreCapacityTargetsHalfTheCache) {
  // 64 streams x 200-byte entries = 12800 bytes per ring slot; half of a
  // 1 MiB cache budgets 524288 bytes -> 40 slots, inside the clamps.
  EXPECT_EQ(DeriveStoreCapacity(64, 200, 1 << 20), 40u);
  // A huge cache clamps to the ceiling, a tiny one to the floor.
  EXPECT_EQ(DeriveStoreCapacity(4, 100, 1 << 30), 64u);
  EXPECT_EQ(DeriveStoreCapacity(1024, 4096, 1 << 16), 4u);
}

TEST(FeatureStoreTest, DeriveStoreCapacityFallsBackOnUnknownInputs) {
  // Zero/unknown geometry (no probed cache, empty shard, zero-sized
  // entry) must yield the pipeline's fixed default, never a clamp edge.
  EXPECT_EQ(DeriveStoreCapacity(64, 200, 0), 8u);
  EXPECT_EQ(DeriveStoreCapacity(0, 200, 1 << 20), 8u);
  EXPECT_EQ(DeriveStoreCapacity(64, 0, 1 << 20), 8u);
}

TEST(FeatureStoreTest, StoreCapacityOverrideTakesPrecedence) {
  // An explicit capacity bypasses derivation entirely: the pipeline's
  // store is built with exactly the requested ring size.
  FeaturePipeline pipeline(nullptr, MakeCore(CorrelationCoreConfig()),
                           kStreams, /*store_capacity=*/3);
  EXPECT_EQ(pipeline.store().capacity(), 3u);
  // And an engine built with the EngineConfig override (instead of
  // cache-geometry derivation) must construct and run cleanly.
  EngineConfig econfig;
  econfig.num_shards = 1;
  econfig.store_capacity = 3;
  econfig.query = FullQueryConfig();
  auto engine = std::move(IngestEngine::Create(AggregateConfig(),
                                               FleetThresholds(),
                                               /*num_streams=*/2, econfig))
                    .value();
  ASSERT_TRUE(engine->Post(0, 1.0).ok());
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Stop().ok());
}

// --- FeatureStore unit tests ------------------------------------------

TEST(FeatureStoreTest, PutFindLatestAndRotation) {
  FeatureStore store(2, /*capacity=*/3);
  store.SetLevels({{/*level=*/0, /*window=*/4, /*dims=*/2}});
  ASSERT_TRUE(store.has_level(0));
  EXPECT_FALSE(store.has_level(1));

  std::uint64_t latest = 0;
  EXPECT_FALSE(store.Latest(0, 0, &latest));

  // Four strictly increasing puts into a capacity-3 ring: the oldest
  // time (3) must rotate out, the newest three stay addressable.
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint64_t t = 3 + 4 * i;
    const double feature[2] = {1.0 * static_cast<double>(t), -2.0};
    const double znormed[4] = {0.5, -0.5, 1.5, -1.5};
    store.Put(0, 0, t, feature, znormed, /*mean=*/10.0 + static_cast<double>(t),
              /*norm2=*/4.0);
  }
  EXPECT_EQ(store.puts(), 4u);

  FeatureStore::View view;
  EXPECT_FALSE(store.Find(0, 0, 3, &view));   // rotated out
  EXPECT_FALSE(store.Find(0, 0, 9, &view));   // never cached
  EXPECT_FALSE(store.Find(0, 1, 15, &view));  // other stream untouched
  EXPECT_FALSE(store.Find(1, 0, 15, &view));  // unmonitored level

  ASSERT_TRUE(store.Find(0, 0, 15, &view));
  EXPECT_EQ(view.time, 15u);
  ASSERT_EQ(view.dims, 2u);
  ASSERT_EQ(view.window, 4u);
  EXPECT_DOUBLE_EQ(view.feature[0], 15.0);
  EXPECT_DOUBLE_EQ(view.feature[1], -2.0);
  EXPECT_DOUBLE_EQ(view.znormed[2], 1.5);
  EXPECT_DOUBLE_EQ(view.mean, 25.0);
  EXPECT_DOUBLE_EQ(view.norm2, 4.0);
  ASSERT_TRUE(store.Find(0, 0, 7, &view));  // oldest survivor
  EXPECT_EQ(view.time, 7u);

  ASSERT_TRUE(store.Latest(0, 0, &latest));
  EXPECT_EQ(latest, 15u);
  EXPECT_FALSE(store.Latest(0, 1, &latest));

  EXPECT_GE(store.hits(), 2u);
  EXPECT_GE(store.misses(), 4u);

  store.Clear();
  EXPECT_FALSE(store.Find(0, 0, 15, &view));
  EXPECT_TRUE(store.has_level(0));  // level set survives Clear
}

TEST(FeatureStoreTest, SetLevelsKeepsUnchangedSlabsAndDropsReshaped) {
  FeatureStore store(1, 4);
  store.SetLevels({{0, 4, 2}, {1, 8, 2}});
  const double feature[2] = {1.0, 2.0};
  const double znormed[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  store.Put(0, 0, 3, feature, znormed, 0.0, 1.0);
  store.Put(1, 0, 7, feature, znormed, 0.0, 1.0);

  // Level 0 unchanged (entry kept); level 1 reshaped (entry dropped);
  // level 2 added (starts empty).
  store.SetLevels({{0, 4, 2}, {1, 8, 4}, {2, 16, 4}});
  FeatureStore::View view;
  EXPECT_TRUE(store.Find(0, 0, 3, &view));
  EXPECT_FALSE(store.Find(1, 0, 7, &view));
  std::uint64_t latest = 0;
  EXPECT_FALSE(store.Latest(2, 0, &latest));
}

TEST(FeatureStoreTest, SaveRestoreRoundTripIsByteStable) {
  FeatureStore store(2, 3);
  store.SetLevels({{0, 4, 2}, {1, 8, 3}});
  const double znormed[8] = {1, -1, 2, -2, 3, -3, 4, -4};
  for (std::uint64_t i = 0; i < 5; ++i) {
    const double feature[3] = {static_cast<double>(i), -1.0, 0.25};
    store.Put(0, i % 2, 3 + 4 * i, feature, znormed,
              static_cast<double>(i), 2.0);
  }
  store.BumpEpoch();
  store.BumpEpoch();

  const std::string bytes = SerializeStore(store);
  FeatureStore restored(2, 3);
  Reader reader(bytes);
  ASSERT_TRUE(restored.RestoreFrom(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());

  EXPECT_EQ(restored.epoch(), store.epoch());
  EXPECT_EQ(restored.puts(), store.puts());
  FeatureStore::View a;
  FeatureStore::View b;
  ASSERT_TRUE(store.Find(0, 1, 15, &a));
  ASSERT_TRUE(restored.Find(0, 1, 15, &b));
  EXPECT_EQ(a.time, b.time);
  EXPECT_DOUBLE_EQ(a.feature[0], b.feature[0]);
  EXPECT_DOUBLE_EQ(a.znormed[3], b.znormed[3]);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.norm2, b.norm2);

  // Ring heads and counts are serialized, so re-serialization is
  // byte-identical — the checkpoint layer can rely on stable checksums.
  EXPECT_EQ(SerializeStore(restored), bytes);
}

TEST(FeatureStoreTest, RestoreRejectsShapeMismatchAndCorruption) {
  FeatureStore store(2, 3);
  store.SetLevels({{0, 4, 2}});
  const double feature[2] = {1.0, 2.0};
  const double znormed[4] = {1, -1, 2, -2};
  store.Put(0, 0, 3, feature, znormed, 0.5, 2.0);
  const std::string bytes = SerializeStore(store);

  {
    FeatureStore wrong_streams(3, 3);
    Reader reader(bytes);
    EXPECT_FALSE(wrong_streams.RestoreFrom(&reader).ok());
  }
  {
    FeatureStore wrong_capacity(2, 4);
    Reader reader(bytes);
    EXPECT_FALSE(wrong_capacity.RestoreFrom(&reader).ok());
  }
  {
    // Truncation fails and must not clobber the target's existing state.
    FeatureStore target(2, 3);
    target.SetLevels({{0, 4, 2}});
    target.Put(0, 1, 7, feature, znormed, 0.25, 8.0);
    const std::string truncated = bytes.substr(0, bytes.size() - 5);
    Reader reader(truncated);
    EXPECT_FALSE(target.RestoreFrom(&reader).ok());
    FeatureStore::View view;
    ASSERT_TRUE(target.Find(0, 1, 7, &view));
    EXPECT_DOUBLE_EQ(view.norm2, 8.0);
  }
}

// --- FeaturePipeline snapshot round trip ------------------------------

class FeaturePipelineSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fleet = FleetAggregateMonitor::Create(AggregateConfig(),
                                               FleetThresholds(), kStreams);
    ASSERT_TRUE(fleet.ok());
    fleet_ = std::move(fleet.value());

    registry_ = std::make_unique<QueryRegistry>(AggregateConfig(),
                                                FullQueryConfig());
    ASSERT_TRUE(registry_->Register(QuerySpec::Aggregate(20, 100.0)).ok());
    ASSERT_TRUE(
        registry_
            ->Register(QuerySpec::Pattern({1, 5, 2, 8, 3, 7, 4, 6}, 0.05))
            .ok());
    ASSERT_TRUE(registry_->Register(QuerySpec::Correlation(0.5, 0)).ok());

    agg_config_ = AggregateConfig();
    pattern_config_ = PatternCoreConfig();
    corr_config_ = CorrelationCoreConfig();
    PlanContext ctx;
    ctx.fleet = &agg_config_;
    ctx.pattern = &pattern_config_;
    ctx.correlation = &corr_config_;
    plan_ = CompileEvalPlan(*registry_->snapshot(), registry_->version(), ctx);
    ASSERT_NE(plan_, nullptr);
  }

  std::unique_ptr<FeaturePipeline> MakePipeline(bool with_pattern,
                                                bool with_corr) {
    return std::make_unique<FeaturePipeline>(
        with_pattern ? MakeCore(pattern_config_) : nullptr,
        with_corr ? MakeCore(corr_config_) : nullptr, kStreams);
  }

  // Drives `steps` synchronized batches through the fleet and pipeline,
  // mirroring the shard worker's apply loop.
  void Feed(FeaturePipeline* pipeline, std::uint64_t steps) {
    std::vector<StreamId> touched;
    for (StreamId s = 0; s < kStreams; ++s) touched.push_back(s);
    for (std::uint64_t t = 0; t < steps; ++t) {
      for (StreamId s = 0; s < kStreams; ++s) {
        ASSERT_TRUE(fleet_->Append(s, ValueAt(s, t)).ok());
        ASSERT_TRUE(pipeline->Append(s, ValueAt(s, t)).ok());
      }
      pipeline->FinishBatch(touched);
    }
  }

  std::unique_ptr<FleetAggregateMonitor> fleet_;
  std::unique_ptr<QueryRegistry> registry_;
  StardustConfig agg_config_;
  StardustConfig pattern_config_;
  StardustConfig corr_config_;
  std::shared_ptr<const EvalPlan> plan_;
};

TEST_F(FeaturePipelineSnapshotTest, SerializeRestoreRoundTrip) {
  std::unique_ptr<FeaturePipeline> pipeline = MakePipeline(true, true);
  pipeline->AdoptPlan(*plan_, *fleet_);
  Feed(pipeline.get(), 40);

  const FeaturePipeline::Counters counters = pipeline->counters();
  EXPECT_EQ(counters.batches, 40u);
  EXPECT_EQ(counters.appends, 40u * kStreams);
  // Level 0 (window 8, update period 8) produced aligned features at
  // t = 7, 15, 23, 31, 39 for each stream, cached exactly once.
  EXPECT_EQ(counters.store_puts, 5u * kStreams);

  const std::string bytes = pipeline->Serialize();
  std::unique_ptr<FeaturePipeline> restored = MakePipeline(true, true);
  ASSERT_TRUE(restored->Restore(bytes).ok());

  // The restored store serves the same views without recomputation.
  EXPECT_EQ(restored->store().puts(), counters.store_puts);
  for (StreamId s = 0; s < kStreams; ++s) {
    std::uint64_t t_a = 0;
    std::uint64_t t_b = 0;
    ASSERT_TRUE(pipeline->store().Latest(0, s, &t_a));
    ASSERT_TRUE(restored->store().Latest(0, s, &t_b));
    EXPECT_EQ(t_a, t_b);
    EXPECT_EQ(t_a, 39u);

    FeatureStore::View a;
    FeatureStore::View b;
    ASSERT_TRUE(pipeline->CorrelationFeature(0, s, 39, &a));
    ASSERT_TRUE(restored->CorrelationFeature(0, s, 39, &b));
    ASSERT_EQ(a.dims, b.dims);
    ASSERT_EQ(a.window, b.window);
    for (std::size_t d = 0; d < a.dims; ++d) {
      EXPECT_DOUBLE_EQ(a.feature[d], b.feature[d]);
    }
    for (std::size_t i = 0; i < a.window; ++i) {
      EXPECT_DOUBLE_EQ(a.znormed[i], b.znormed[i]);
    }
    EXPECT_DOUBLE_EQ(a.mean, b.mean);
    EXPECT_DOUBLE_EQ(a.norm2, b.norm2);
  }

  // Trackers are deliberately not serialized: AdoptPlan on the restored
  // pipeline rebuilds them from the fleet's raw history and must land on
  // the same exact aggregate the live pipeline maintains.
  restored->AdoptPlan(*plan_, *fleet_);
  ASSERT_FALSE(plan_->aggregate_windows.empty());
  for (StreamId s = 0; s < kStreams; ++s) {
    ASSERT_TRUE(pipeline->TrackerReady(s, 0));
    ASSERT_TRUE(restored->TrackerReady(s, 0));
    double expected = 0.0;
    for (std::uint64_t t = 20; t < 40; ++t) expected += ValueAt(s, t);
    EXPECT_DOUBLE_EQ(pipeline->TrackerValue(s, 0), expected);
    EXPECT_DOUBLE_EQ(restored->TrackerValue(s, 0), expected);
  }
}

TEST_F(FeaturePipelineSnapshotTest, RestoreRejectsCorruptBytes) {
  std::unique_ptr<FeaturePipeline> pipeline = MakePipeline(true, true);
  pipeline->AdoptPlan(*plan_, *fleet_);
  Feed(pipeline.get(), 16);
  const std::string bytes = pipeline->Serialize();

  {
    std::string bad_magic = bytes;
    bad_magic[0] ^= 0x5a;
    std::unique_ptr<FeaturePipeline> target = MakePipeline(true, true);
    EXPECT_FALSE(target->Restore(bad_magic).ok());
  }
  {
    std::unique_ptr<FeaturePipeline> target = MakePipeline(true, true);
    EXPECT_FALSE(target->Restore(bytes.substr(0, bytes.size() / 2)).ok());
  }
  {
    std::string flipped = bytes;
    flipped[bytes.size() / 2] ^= 0x01;  // payload bit flip → checksum fails
    std::unique_ptr<FeaturePipeline> target = MakePipeline(true, true);
    EXPECT_FALSE(target->Restore(flipped).ok());
  }
  {
    std::unique_ptr<FeaturePipeline> target = MakePipeline(true, true);
    EXPECT_FALSE(target->Restore(std::string()).ok());
  }
}

TEST_F(FeaturePipelineSnapshotTest, RestoreChecksCorePresence) {
  // Bytes carrying a correlation core must not restore into a pipeline
  // without one.
  std::unique_ptr<FeaturePipeline> full = MakePipeline(true, true);
  full->AdoptPlan(*plan_, *fleet_);
  Feed(full.get(), 16);
  std::unique_ptr<FeaturePipeline> pattern_only = MakePipeline(true, false);
  EXPECT_FALSE(pattern_only->Restore(full->Serialize()).ok());

  // The reverse is allowed: a snapshot without a correlation core leaves
  // this pipeline's core empty (pre-v3 checkpoints warm up).
  const std::string pattern_bytes = pattern_only->Serialize();
  std::unique_ptr<FeaturePipeline> target = MakePipeline(true, true);
  EXPECT_TRUE(target->Restore(pattern_bytes).ok());

  // Stream-count mismatch is structural corruption.
  FeaturePipeline narrow(nullptr, nullptr, kStreams - 1);
  FeaturePipeline wide(nullptr, nullptr, kStreams);
  EXPECT_FALSE(narrow.Restore(wide.Serialize()).ok());
}

// --- Checkpoint manifest versions -------------------------------------

CheckpointManifest BaseManifest() {
  CheckpointManifest manifest;
  manifest.seq = 7;
  manifest.num_streams = 4;
  manifest.num_shards = 2;
  manifest.queue_capacity = 1024;
  manifest.max_producers = 4;
  manifest.max_batch = 256;
  manifest.overload = 1;
  for (std::size_t i = 0; i < 2; ++i) {
    CheckpointShardEntry entry;
    entry.file = CheckpointShardFileName(i, 7);
    entry.epoch = 10 + i;
    entry.appended = 100 + i;
    entry.checksum = 0xabcdef00 + i;
    manifest.shards.push_back(entry);
  }
  return manifest;
}

void WriteManifestPrefix(Writer* payload, const CheckpointManifest& m) {
  payload->U64(m.seq);
  payload->U64(m.num_streams);
  payload->U64(m.num_shards);
  payload->U64(m.queue_capacity);
  payload->U64(m.max_producers);
  payload->U64(m.max_batch);
  payload->U8(m.overload);
  payload->U64(m.shards.size());
  for (const CheckpointShardEntry& entry : m.shards) {
    payload->U64(entry.file.size());
    payload->Bytes(entry.file.data(), entry.file.size());
    payload->U64(entry.epoch);
    payload->U64(entry.appended);
    payload->U64(entry.checksum);
  }
}

std::string ManifestEnvelope(std::uint32_t version,
                             const std::string& payload) {
  Writer envelope;
  const char magic[4] = {'S', 'D', 'M', 'F'};
  envelope.Bytes(magic, sizeof(magic));
  envelope.U32(version);
  envelope.U64(Fnv1a(payload));
  envelope.Bytes(payload.data(), payload.size());
  return std::move(envelope.TakeBuffer());
}

TEST(CheckpointManifestTest, V3RoundTripWithFeatureEntries) {
  CheckpointManifest manifest = BaseManifest();
  manifest.queries_file = CheckpointQueriesFileName(7);
  manifest.queries_checksum = 0x1234;
  for (std::size_t i = 0; i < 2; ++i) {
    CheckpointFeatureEntry entry;
    entry.file = CheckpointFeaturesFileName(i, 7);
    entry.checksum = 0x9999 + i;
    manifest.features.push_back(entry);
  }

  auto parsed = ParseManifest(SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const CheckpointManifest& m = parsed.value();
  EXPECT_EQ(m.seq, 7u);
  EXPECT_EQ(m.num_streams, 4u);
  EXPECT_EQ(m.num_shards, 2u);
  EXPECT_EQ(m.queue_capacity, 1024u);
  EXPECT_EQ(m.max_producers, 4u);
  EXPECT_EQ(m.max_batch, 256u);
  EXPECT_EQ(m.overload, 1u);
  ASSERT_EQ(m.shards.size(), 2u);
  EXPECT_EQ(m.shards[1].file, CheckpointShardFileName(1, 7));
  EXPECT_EQ(m.shards[1].epoch, 11u);
  EXPECT_EQ(m.shards[1].appended, 101u);
  EXPECT_EQ(m.shards[1].checksum, 0xabcdef01u);
  EXPECT_EQ(m.queries_file, CheckpointQueriesFileName(7));
  EXPECT_EQ(m.queries_checksum, 0x1234u);
  ASSERT_EQ(m.features.size(), 2u);
  EXPECT_EQ(m.features[0].file, CheckpointFeaturesFileName(0, 7));
  EXPECT_EQ(m.features[1].checksum, 0x999au);
}

TEST(CheckpointManifestTest, RejectsFeatureCountShardMismatch) {
  // A v3 manifest must carry zero feature entries or exactly one per
  // shard; anything else is a torn checkpoint.
  CheckpointManifest manifest = BaseManifest();
  CheckpointFeatureEntry entry;
  entry.file = CheckpointFeaturesFileName(0, 7);
  entry.checksum = 1;
  manifest.features.push_back(entry);
  EXPECT_FALSE(ParseManifest(SerializeManifest(manifest)).ok());
}

TEST(CheckpointManifestTest, RejectsEscapingFileNames) {
  CheckpointManifest manifest = BaseManifest();
  manifest.shards[0].file = "../shard-0-ck7.snap";
  EXPECT_FALSE(ParseManifest(SerializeManifest(manifest)).ok());
}

TEST(CheckpointManifestTest, ParsesHandBuiltV2Manifest) {
  // Byte-for-byte v2 manifest (pre-feature-pipeline): shard entries plus
  // the registry file, no feature section. Must parse with features
  // empty so the engine restores with warm-up cores.
  const CheckpointManifest base = BaseManifest();
  Writer payload;
  WriteManifestPrefix(&payload, base);
  const std::string queries = CheckpointQueriesFileName(7);
  payload.U64(queries.size());
  payload.Bytes(queries.data(), queries.size());
  payload.U64(0x7777);

  auto parsed = ParseManifest(ManifestEnvelope(2, payload.buffer()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().queries_file, queries);
  EXPECT_EQ(parsed.value().queries_checksum, 0x7777u);
  EXPECT_TRUE(parsed.value().features.empty());
}

TEST(CheckpointManifestTest, ParsesHandBuiltV1Manifest) {
  // Byte-for-byte v1 manifest: shard entries only. Registry and feature
  // sections must come back empty.
  const CheckpointManifest base = BaseManifest();
  Writer payload;
  WriteManifestPrefix(&payload, base);

  auto parsed = ParseManifest(ManifestEnvelope(1, payload.buffer()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().num_shards, 2u);
  ASSERT_EQ(parsed.value().shards.size(), 2u);
  EXPECT_TRUE(parsed.value().queries_file.empty());
  EXPECT_TRUE(parsed.value().features.empty());
}

TEST(CheckpointManifestTest, RejectsBadVersionsAndChecksum) {
  const CheckpointManifest base = BaseManifest();
  Writer payload;
  WriteManifestPrefix(&payload, base);

  EXPECT_FALSE(ParseManifest(ManifestEnvelope(0, payload.buffer())).ok());
  EXPECT_FALSE(ParseManifest(ManifestEnvelope(9, payload.buffer())).ok());

  std::string flipped = ManifestEnvelope(1, payload.buffer());
  flipped[flipped.size() - 1] ^= 0x01;
  EXPECT_FALSE(ParseManifest(flipped).ok());

  // v1 envelope with trailing v2 bytes the version says should not exist.
  Writer extended;
  WriteManifestPrefix(&extended, base);
  extended.U64(0);
  extended.U64(0);
  EXPECT_FALSE(ParseManifest(ManifestEnvelope(1, extended.buffer())).ok());
}

}  // namespace
}  // namespace stardust
