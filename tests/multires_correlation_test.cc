// Tests for multi-resolution correlation detection (§2.4's "correlated
// at some level of abstraction"): pairs that are only correlated over
// short recent windows are caught at fine levels while long-window
// detection misses them, and vice versa.
#include "core/correlation_monitor.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transform/feature.h"

namespace stardust {
namespace {

StardustConfig MultiConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = 16;
  config.num_levels = 4;  // windows 16, 32, 64, 128
  config.history = 128;
  config.box_capacity = 1;
  config.update_period = 16;
  return config;
}

TEST(MultiResCorrelationTest, CreateValidation) {
  // Out-of-range level.
  EXPECT_FALSE(
      CorrelationMonitor::Create(MultiConfig(), 3, 0.5, {7}).ok());
  // Valid subsets.
  EXPECT_TRUE(
      CorrelationMonitor::Create(MultiConfig(), 3, 0.5, {0, 2}).ok());
  EXPECT_TRUE(
      CorrelationMonitor::Create(MultiConfig(), 3, 0.5, {3}).ok());
  // Default (empty) requires top window == history.
  StardustConfig config = MultiConfig();
  config.history = 256;
  EXPECT_FALSE(CorrelationMonitor::Create(config, 3, 0.5).ok());
  EXPECT_TRUE(CorrelationMonitor::Create(config, 3, 0.5, {3}).ok());
}

TEST(MultiResCorrelationTest, MonitoredLevelsAreSortedAndDeduped) {
  auto monitor = std::move(CorrelationMonitor::Create(
                               MultiConfig(), 3, 0.5, {2, 0, 2}))
                     .value();
  EXPECT_EQ(monitor->monitored_levels(),
            (std::vector<std::size_t>{0, 2}));
}

// Two streams share a signal only during the most recent 32 ticks: a
// fine level (window 32) must report them; the coarse level (window 128)
// must not.
TEST(MultiResCorrelationTest, RecentCorrelationOnlyVisibleAtFineLevels) {
  auto monitor = std::move(CorrelationMonitor::Create(
                               MultiConfig(), 2, 0.4, {1, 3}))
                     .value();
  Rng rng(3);
  double wa = 20.0, wb = 120.0;
  const std::size_t total = 256;
  for (std::size_t t = 0; t < total; ++t) {
    wa += rng.NextDouble() - 0.5;
    if (t < total - 32) {
      wb += rng.NextDouble() - 0.5;  // independent early history
    } else {
      wb = wa + 100.0;  // perfectly correlated tail
    }
    ASSERT_TRUE(monitor->AppendAll({wa, wb}).ok());
  }
  bool fine_hit = false, coarse_hit = false;
  for (const auto& pair : monitor->last_round()) {
    if (!pair.verified) continue;
    if (pair.level == 1) fine_hit = true;
    if (pair.level == 3) coarse_hit = true;
  }
  EXPECT_TRUE(fine_hit) << "window-32 correlation missed at level 1";
  EXPECT_FALSE(coarse_hit)
      << "level 3 should not see the briefly-correlated pair";
}

// Fully correlated streams are reported at every monitored level, and the
// per-level counters sum to the total.
TEST(MultiResCorrelationTest, FullCorrelationVisibleEverywhere) {
  auto monitor = std::move(CorrelationMonitor::Create(
                               MultiConfig(), 2, 0.2, {0, 1, 2, 3}))
                     .value();
  Rng rng(5);
  double walk = 50.0;
  for (std::size_t t = 0; t < 256; ++t) {
    walk += rng.NextDouble() - 0.5;
    ASSERT_TRUE(monitor->AppendAll({walk, walk + 3.0}).ok());
  }
  std::set<std::size_t> verified_levels;
  for (const auto& pair : monitor->last_round()) {
    if (pair.verified) verified_levels.insert(pair.level);
    EXPECT_EQ(pair.window, MultiConfig().LevelWindow(pair.level));
  }
  EXPECT_EQ(verified_levels, (std::set<std::size_t>{0, 1, 2, 3}));
  PairStats manual;
  for (std::size_t i = 0; i < monitor->monitored_levels().size(); ++i) {
    manual.candidates += monitor->level_stats(i).candidates;
    manual.true_pairs += monitor->level_stats(i).true_pairs;
  }
  EXPECT_EQ(manual.candidates, monitor->stats().candidates);
  EXPECT_EQ(manual.true_pairs, monitor->stats().true_pairs);
}

// Verified pairs at each level match the exact oracle for that level's
// window.
TEST(MultiResCorrelationTest, EveryLevelMatchesItsOracle) {
  const StardustConfig config = MultiConfig();
  auto monitor =
      std::move(CorrelationMonitor::Create(config, 6, 0.7, {0, 2}))
          .value();
  Rng rng(7);
  std::vector<std::vector<double>> streams(6);
  std::vector<double> walks{10, 10.2, 40, 70, 100, 130};
  std::vector<double> values(6);
  for (std::size_t t = 0; t < 192; ++t) {
    for (std::size_t i = 0; i < 6; ++i) {
      walks[i] += rng.NextDouble() - 0.5;
      if (i == 1) walks[1] = walks[0] + 0.2;  // planted pair
      values[i] = walks[i];
      streams[i].push_back(values[i]);
    }
    ASSERT_TRUE(monitor->AppendAll(values).ok());
  }
  for (std::size_t level : {0u, 2u}) {
    const std::size_t w = config.LevelWindow(level);
    std::set<std::pair<StreamId, StreamId>> oracle;
    std::vector<std::vector<double>> z(6);
    for (std::size_t i = 0; i < 6; ++i) {
      std::vector<double> window(streams[i].end() - w, streams[i].end());
      z[i] = ZNormalize(window);
    }
    for (StreamId i = 0; i < 6; ++i) {
      for (StreamId j = i + 1; j < 6; ++j) {
        if (Dist2(z[i], z[j]) <= 0.7 * 0.7) oracle.insert({i, j});
      }
    }
    std::set<std::pair<StreamId, StreamId>> reported;
    for (const auto& pair : monitor->last_round()) {
      if (pair.level == level && pair.verified) {
        reported.insert({pair.a, pair.b});
      }
    }
    EXPECT_EQ(reported, oracle) << "level " << level;
  }
}

}  // namespace
}  // namespace stardust
