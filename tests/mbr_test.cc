#include "geom/mbr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stardust {
namespace {

TEST(MbrTest, EmptyBoxProperties) {
  Mbr box(3);
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.dims(), 3u);
  EXPECT_EQ(box.Area(), 0.0);
  EXPECT_EQ(box.Margin(), 0.0);
}

TEST(MbrTest, FromPointIsDegenerate) {
  Mbr box = Mbr::FromPoint({1.0, 2.0});
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.Area(), 0.0);
  EXPECT_TRUE(box.Contains(Point{1.0, 2.0}));
  EXPECT_FALSE(box.Contains(Point{1.0, 2.1}));
}

TEST(MbrTest, ExpandGrowsToCoverPoints) {
  Mbr box(2);
  box.Expand(Point{0.0, 0.0});
  box.Expand(Point{2.0, -1.0});
  EXPECT_EQ(box.lo(0), 0.0);
  EXPECT_EQ(box.hi(0), 2.0);
  EXPECT_EQ(box.lo(1), -1.0);
  EXPECT_EQ(box.hi(1), 0.0);
  EXPECT_EQ(box.Area(), 2.0);
  EXPECT_EQ(box.Margin(), 3.0);
}

TEST(MbrTest, ExpandWithBoxCoversBoth) {
  Mbr a({0.0, 0.0}, {1.0, 1.0});
  Mbr b({2.0, -1.0}, {3.0, 0.5});
  a.Expand(b);
  EXPECT_TRUE(a.Contains(b));
  EXPECT_EQ(a.lo(1), -1.0);
  EXPECT_EQ(a.hi(0), 3.0);
}

TEST(MbrTest, OverlapArea) {
  Mbr a({0.0, 0.0}, {2.0, 2.0});
  Mbr b({1.0, 1.0}, {3.0, 3.0});
  EXPECT_EQ(a.OverlapArea(b), 1.0);
  Mbr c({5.0, 5.0}, {6.0, 6.0});
  EXPECT_EQ(a.OverlapArea(c), 0.0);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersects(b));
}

TEST(MbrTest, TouchingBoxesIntersectWithZeroOverlap) {
  Mbr a({0.0, 0.0}, {1.0, 1.0});
  Mbr b({1.0, 0.0}, {2.0, 1.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.OverlapArea(b), 0.0);
}

TEST(MbrTest, EnlargementOfCoveredPointIsZero) {
  Mbr a({0.0, 0.0}, {2.0, 2.0});
  EXPECT_EQ(a.Enlargement(Point{1.0, 1.0}), 0.0);
  EXPECT_GT(a.Enlargement(Point{3.0, 1.0}), 0.0);
}

TEST(MbrTest, MinDistToInsidePointIsZero) {
  Mbr a({0.0, 0.0}, {2.0, 2.0});
  EXPECT_EQ(a.MinDist2(Point{1.0, 1.5}), 0.0);
  EXPECT_DOUBLE_EQ(a.MinDist2(Point{3.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(a.MinDist2(Point{-1.0, 1.0}), 1.0);
}

TEST(MbrTest, BoxToBoxMinDist) {
  Mbr a({0.0, 0.0}, {1.0, 1.0});
  Mbr b({3.0, 0.0}, {4.0, 1.0});
  EXPECT_DOUBLE_EQ(a.MinDist2(b), 4.0);
  Mbr c({0.5, 0.5}, {2.0, 2.0});
  EXPECT_EQ(a.MinDist2(c), 0.0);
}

TEST(MbrTest, MaxDistDominatesMinDist) {
  Mbr a({0.0, 0.0}, {2.0, 1.0});
  const Point p{5.0, 5.0};
  EXPECT_GE(a.MaxDist2(p), a.MinDist2(p));
  EXPECT_DOUBLE_EQ(a.MaxDist2(p), 25.0 + 25.0);
}

TEST(MbrTest, InflateGrowsSymmetrically) {
  Mbr a({1.0, 1.0}, {2.0, 2.0});
  a.Inflate(0.5);
  EXPECT_EQ(a.lo(0), 0.5);
  EXPECT_EQ(a.hi(1), 2.5);
}

TEST(MbrTest, Dist2Basics) {
  EXPECT_DOUBLE_EQ(Dist2({0.0, 0.0}, {3.0, 4.0}), 25.0);
  EXPECT_EQ(Dist2({1.0}, {1.0}), 0.0);
}

// Property: MinDist2(p, box) <= Dist2(p, q) <= MaxDist2(p, box) for every
// q inside the box.
TEST(MbrPropertyTest, MinMaxDistBracketEveryInnerPoint) {
  Rng rng(101);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t dims = 1 + rng.NextUint64(4);
    Point lo(dims), hi(dims), p(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      const double a = rng.NextDouble(-10, 10);
      const double b = rng.NextDouble(-10, 10);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
      p[d] = rng.NextDouble(-20, 20);
    }
    Mbr box(lo, hi);
    // Random point inside the box.
    Point q(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      q[d] = rng.NextDouble(lo[d], hi[d] + 1e-12);
    }
    const double d2 = Dist2(p, q);
    EXPECT_LE(box.MinDist2(p), d2 + 1e-9);
    EXPECT_GE(box.MaxDist2(p), d2 - 1e-9);
  }
}

// Property: expansion is monotone — the expanded box contains everything
// the original contained plus the new point.
TEST(MbrPropertyTest, ExpandIsMonotone) {
  Rng rng(202);
  for (int iter = 0; iter < 200; ++iter) {
    Mbr box(2);
    std::vector<Point> points;
    for (int i = 0; i < 10; ++i) {
      Point p{rng.NextDouble(-5, 5), rng.NextDouble(-5, 5)};
      box.Expand(p);
      points.push_back(p);
      for (const Point& q : points) EXPECT_TRUE(box.Contains(q));
    }
  }
}

// Property: overlap is symmetric and bounded by both areas.
TEST(MbrPropertyTest, OverlapSymmetricAndBounded) {
  Rng rng(303);
  for (int iter = 0; iter < 300; ++iter) {
    auto random_box = [&] {
      Point lo(2), hi(2);
      for (int d = 0; d < 2; ++d) {
        const double a = rng.NextDouble(-4, 4);
        const double b = rng.NextDouble(-4, 4);
        lo[d] = std::min(a, b);
        hi[d] = std::max(a, b);
      }
      return Mbr(lo, hi);
    };
    const Mbr a = random_box();
    const Mbr b = random_box();
    const double ab = a.OverlapArea(b);
    EXPECT_DOUBLE_EQ(ab, b.OverlapArea(a));
    EXPECT_LE(ab, a.Area() + 1e-12);
    EXPECT_LE(ab, b.Area() + 1e-12);
    EXPECT_EQ(ab > 0.0 || a.MinDist2(b) == 0.0, a.Intersects(b));
  }
}

}  // namespace
}  // namespace stardust
