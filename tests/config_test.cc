#include "core/config.h"

#include <gtest/gtest.h>

namespace stardust {
namespace {

StardustConfig AggregateConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 20;
  config.num_levels = 6;
  config.history = 20 << 5;
  config.box_capacity = 5;
  config.update_period = 1;
  return config;
}

StardustConfig DwtConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 2;
  config.r_max = 1.0;
  config.base_window = 16;
  config.num_levels = 4;
  config.history = 16 << 3;
  config.box_capacity = 4;
  config.update_period = 1;
  config.index_features = true;
  return config;
}

TEST(ConfigTest, ValidConfigsPass) {
  EXPECT_TRUE(AggregateConfig().Validate().ok());
  EXPECT_TRUE(DwtConfig().Validate().ok());
}

TEST(ConfigTest, LevelWindowDoubles) {
  const StardustConfig config = DwtConfig();
  EXPECT_EQ(config.LevelWindow(0), 16u);
  EXPECT_EQ(config.LevelWindow(1), 32u);
  EXPECT_EQ(config.LevelWindow(3), 128u);
}

TEST(ConfigTest, FeatureDims) {
  StardustConfig config = AggregateConfig();
  EXPECT_EQ(config.FeatureDims(), 1u);
  config.aggregate = AggregateKind::kSpread;
  EXPECT_EQ(config.FeatureDims(), 2u);
  EXPECT_EQ(DwtConfig().FeatureDims(), 2u);
}

TEST(ConfigTest, RejectsZeroParameters) {
  StardustConfig config = AggregateConfig();
  config.base_window = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = AggregateConfig();
  config.num_levels = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = AggregateConfig();
  config.box_capacity = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = AggregateConfig();
  config.update_period = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, BatchRequiresUnitBoxCapacity) {
  StardustConfig config = AggregateConfig();
  config.update_period = 20;
  config.box_capacity = 5;
  EXPECT_FALSE(config.Validate().ok());
  config.box_capacity = 1;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigTest, HistoryMustCoverTopWindow) {
  StardustConfig config = DwtConfig();
  config.history = config.LevelWindow(config.num_levels - 1) - 1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, DwtRequiresPowerOfTwoWindowAndCoefficients) {
  StardustConfig config = DwtConfig();
  config.base_window = 24;
  EXPECT_FALSE(config.Validate().ok());
  config = DwtConfig();
  config.coefficients = 3;
  EXPECT_FALSE(config.Validate().ok());
  config = DwtConfig();
  config.coefficients = 32;  // > base_window
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, ZNormOnlineIncrementalIsRejected) {
  StardustConfig config = DwtConfig();
  config.normalization = Normalization::kZNorm;
  config.update_period = 1;
  EXPECT_FALSE(config.Validate().ok());
  // Batch mode is the supported correlation configuration.
  config.update_period = config.base_window;
  config.box_capacity = 1;
  EXPECT_TRUE(config.Validate().ok());
  // As is exact recomputation per level.
  config.update_period = 1;
  config.exact_levels = true;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigTest, AggregateAllowsNonPowerOfTwoBaseWindow) {
  StardustConfig config = AggregateConfig();
  config.base_window = 100;
  config.history = 100 << 5;
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace stardust
