#include "dwt/haar.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dwt/filters.h"

namespace stardust {
namespace {

std::vector<double> RandomSignal(Rng* rng, std::size_t n) {
  std::vector<double> x(n);
  for (double& v : x) v = rng->NextDouble(-5.0, 5.0);
  return x;
}

double Energy(const std::vector<double>& x) {
  double e = 0.0;
  for (double v : x) e += v * v;
  return e;
}

TEST(IsPowerOfTwoTest, Basics) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(1023));
}

TEST(HaarTest, LengthOneIsIdentity) {
  const std::vector<double> x{3.5};
  EXPECT_EQ(HaarDwt(x), x);
  EXPECT_EQ(HaarInverse(x), x);
}

TEST(HaarTest, KnownTransformOfConstantSignal) {
  // A constant signal has all its energy in the approximation coefficient.
  const std::vector<double> x(8, 2.0);
  const std::vector<double> coeffs = HaarDwt(x);
  EXPECT_NEAR(coeffs[0], 2.0 * std::sqrt(8.0), 1e-12);
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    EXPECT_NEAR(coeffs[i], 0.0, 1e-12);
  }
}

TEST(HaarTest, KnownTransformOfStep) {
  const std::vector<double> x{1.0, 1.0, -1.0, -1.0};
  const std::vector<double> coeffs = HaarDwt(x);
  EXPECT_NEAR(coeffs[0], 0.0, 1e-12);  // mean zero
  EXPECT_NEAR(coeffs[1], 2.0, 1e-12);  // the step lives at the top detail
  EXPECT_NEAR(coeffs[2], 0.0, 1e-12);
  EXPECT_NEAR(coeffs[3], 0.0, 1e-12);
}

TEST(HaarTest, InverseRoundTrip) {
  Rng rng(1);
  for (std::size_t n : {2u, 4u, 8u, 64u, 256u}) {
    const std::vector<double> x = RandomSignal(&rng, n);
    const std::vector<double> back = HaarInverse(HaarDwt(x));
    ASSERT_EQ(back.size(), x.size());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
  }
}

TEST(HaarTest, EnergyPreserved) {
  Rng rng(2);
  for (int iter = 0; iter < 50; ++iter) {
    const std::vector<double> x = RandomSignal(&rng, 128);
    EXPECT_NEAR(Energy(HaarDwt(x)), Energy(x), 1e-8);
  }
}

TEST(HaarTest, ApproxFullLengthIsIdentity) {
  Rng rng(3);
  const std::vector<double> x = RandomSignal(&rng, 16);
  EXPECT_EQ(HaarApprox(x, 16), x);
}

TEST(HaarTest, ApproxOneIsScaledMean) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> a = HaarApprox(x, 1);
  ASSERT_EQ(a.size(), 1u);
  // Orthonormal scaling: a = sum / sqrt(n).
  EXPECT_NEAR(a[0], 10.0 / 2.0, 1e-12);
}

TEST(HaarTest, PrefixMatchesFullTransform) {
  Rng rng(4);
  const std::vector<double> x = RandomSignal(&rng, 64);
  const std::vector<double> full = HaarDwt(x);
  const std::vector<double> prefix = HaarPrefix(x, 8);
  ASSERT_EQ(prefix.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(prefix[i], full[i]);
}

// The property the feature representation relies on (see dwt/haar.h): the
// length-f approximation vector is a unitary change of basis of the first
// f ordered DWT coefficients, so pairwise L2 distances are identical.
TEST(HaarPropertyTest, ApproxAndPrefixDistancesAgree) {
  Rng rng(5);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t n = 64;
    for (std::size_t f : {1u, 2u, 4u, 8u, 16u}) {
      const std::vector<double> x = RandomSignal(&rng, n);
      const std::vector<double> y = RandomSignal(&rng, n);
      auto dist2 = [](const std::vector<double>& a,
                      const std::vector<double>& b) {
        double s = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
          s += (a[i] - b[i]) * (a[i] - b[i]);
        }
        return s;
      };
      const double approx_d =
          dist2(HaarApprox(x, f), HaarApprox(y, f));
      const double prefix_d = dist2(HaarPrefix(x, f), HaarPrefix(y, f));
      EXPECT_NEAR(approx_d, prefix_d, 1e-9 * (1.0 + approx_d));
    }
  }
}

// Truncated-feature distance lower-bounds the true distance (the index
// filter's soundness).
TEST(HaarPropertyTest, FeatureDistanceLowerBoundsSignalDistance) {
  Rng rng(6);
  for (int iter = 0; iter < 100; ++iter) {
    const std::vector<double> x = RandomSignal(&rng, 64);
    const std::vector<double> y = RandomSignal(&rng, 64);
    double signal_d = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      signal_d += (x[i] - y[i]) * (x[i] - y[i]);
    }
    for (std::size_t f : {1u, 2u, 4u, 8u, 32u}) {
      const std::vector<double> fx = HaarApprox(x, f);
      const std::vector<double> fy = HaarApprox(y, f);
      double feature_d = 0.0;
      for (std::size_t i = 0; i < f; ++i) {
        feature_d += (fx[i] - fy[i]) * (fx[i] - fy[i]);
      }
      EXPECT_LE(feature_d, signal_d + 1e-9);
    }
  }
}

TEST(EnergyFractionTest, FullLengthKeepsEverything) {
  Rng rng(20);
  std::vector<std::vector<double>> windows;
  for (int i = 0; i < 10; ++i) windows.push_back(RandomSignal(&rng, 32));
  EXPECT_NEAR(ApproxEnergyFraction(windows, 32), 1.0, 1e-12);
}

TEST(EnergyFractionTest, MonotoneInF) {
  Rng rng(21);
  std::vector<std::vector<double>> windows;
  for (int i = 0; i < 20; ++i) windows.push_back(RandomSignal(&rng, 64));
  double prev = 0.0;
  for (std::size_t f = 1; f <= 64; f *= 2) {
    const double fraction = ApproxEnergyFraction(windows, f);
    EXPECT_GE(fraction, prev - 1e-12) << "f=" << f;
    EXPECT_LE(fraction, 1.0 + 1e-12);
    prev = fraction;
  }
}

TEST(EnergyFractionTest, ZeroWindowsCountAsFull) {
  const std::vector<std::vector<double>> windows{{0.0, 0.0, 0.0, 0.0}};
  EXPECT_EQ(ApproxEnergyFraction(windows, 1), 1.0);
}

// The paper's premise (§4): smooth real-world-like series concentrate
// energy in very few coefficients, so the suggested f is tiny relative
// to the window; white noise spreads energy evenly, so the suggested f
// approaches the window length.
TEST(SuggestCoefficientsTest, SmoothSeriesNeedFewNoiseNeedsMany) {
  Rng rng(22);
  std::vector<std::vector<double>> smooth, noise;
  for (int i = 0; i < 20; ++i) {
    std::vector<double> s(64);
    double walk = 100.0;
    for (double& v : s) {
      walk += rng.NextDouble() - 0.5;
      v = walk;
    }
    smooth.push_back(std::move(s));
    std::vector<double> n(64);
    for (double& v : n) v = rng.NextGaussian();
    noise.push_back(std::move(n));
  }
  const std::size_t f_smooth = SuggestCoefficientCount(smooth, 0.95);
  const std::size_t f_noise = SuggestCoefficientCount(noise, 0.95);
  EXPECT_LE(f_smooth, 4u);
  EXPECT_GE(f_noise, 32u);
  EXPECT_TRUE(IsPowerOfTwo(f_smooth));
}

TEST(SuggestCoefficientsTest, ExactFractionBoundary) {
  // A constant window puts all energy in f = 1.
  const std::vector<std::vector<double>> windows{{3.0, 3.0, 3.0, 3.0}};
  EXPECT_EQ(SuggestCoefficientCount(windows, 1.0), 1u);
}

TEST(FiltersTest, HaarTapsAndDelta) {
  const WaveletFilter& haar = HaarFilter();
  ASSERT_EQ(haar.lowpass.size(), 2u);
  EXPECT_NEAR(haar.lowpass[0], 1.0 / std::sqrt(2.0), 1e-15);
  EXPECT_EQ(haar.DeltaAmplitude(), 0.0);
}

TEST(FiltersTest, Db4HasNegativeTapAndPositiveDelta) {
  const WaveletFilter& db4 = Daubechies4Filter();
  ASSERT_EQ(db4.lowpass.size(), 4u);
  const double min_tap =
      *std::min_element(db4.lowpass.begin(), db4.lowpass.end());
  EXPECT_LT(min_tap, 0.0);
  EXPECT_NEAR(db4.DeltaAmplitude(), -min_tap, 1e-15);
  // Orthonormal filter: taps sum to sqrt(2), squared taps sum to 1.
  const double sum =
      std::accumulate(db4.lowpass.begin(), db4.lowpass.end(), 0.0);
  EXPECT_NEAR(sum, std::sqrt(2.0), 1e-12);
  double sumsq = 0.0;
  for (double h : db4.lowpass) sumsq += h * h;
  EXPECT_NEAR(sumsq, 1.0, 1e-12);
}

}  // namespace
}  // namespace stardust
