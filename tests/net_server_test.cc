// Loopback end-to-end tests of the network front door (src/net):
// producers stream batches into a live NetServer over real sockets, the
// engine evaluates continuous queries, and subscribers receive every
// alert with strictly increasing sequence numbers — across disconnects,
// reconnects, and a full server checkpoint/restore cycle
// (docs/NETWORK.md). Sequence-number conservation is the acceptance
// property: no alert is lost, none is delivered twice to an up-to-date
// subscriber.
#include "net/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/alert_hub.h"
#include "net/client.h"
#include "stream/threshold.h"

namespace stardust::net {
namespace {

// Fleet configuration: SUM monitoring, base window 10 (the registered
// aggregate query below fires once per stream per threshold crossing).
StardustConfig AggregateConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 4;
  config.history = 200;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

std::vector<WindowThreshold> FleetThresholds() {
  // Parked out of range: alerts come from registered queries only.
  return {{10, 1e9}, {20, 1e9}};
}

std::filesystem::path TempDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::unique_ptr<IngestEngine> MakeEngine(std::size_t num_streams,
                                         const EngineConfig& econfig,
                                         const std::string& restore = {}) {
  auto engine = IngestEngine::Create(AggregateConfig(), FleetThresholds(),
                                     num_streams, econfig, restore);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// One run of `count` copies of `value` for every stream in [0, n).
BatchMessage UniformBatch(std::size_t n, std::size_t count, double value) {
  BatchMessage batch;
  for (std::size_t s = 0; s < n; ++s) {
    batch.runs.push_back({static_cast<std::uint32_t>(s),
                          std::vector<double>(count, value)});
  }
  return batch;
}

/// Collects exactly `n` alerts, acking each; fails the test on timeout.
std::vector<AlertFrameMessage> Collect(SubscriberClient* sub,
                                       std::size_t n,
                                       bool ack = true) {
  std::vector<AlertFrameMessage> out;
  while (out.size() < n) {
    Result<AlertFrameMessage> alert = sub->Next(5000);
    if (!alert.ok()) {
      ADD_FAILURE() << "subscriber timed out after " << out.size() << "/"
                    << n << " alerts: " << alert.status().ToString();
      break;
    }
    if (ack) {
      EXPECT_TRUE(sub->Ack(alert.value().seq).ok());
    }
    out.push_back(std::move(alert).value());
  }
  return out;
}

void ExpectStrictlyIncreasing(const std::vector<AlertFrameMessage>& alerts) {
  for (std::size_t i = 1; i < alerts.size(); ++i) {
    EXPECT_GT(alerts[i].seq, alerts[i - 1].seq);
  }
}

// --- Basic loopback path ------------------------------------------------

TEST(NetServerTest, ProducerBatchesFeedEngineAndSubscriberGetsAlerts) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  econfig.max_batch = 8;
  auto engine = MakeEngine(4, econfig);
  ASSERT_TRUE(
      engine->RegisterQuery(QuerySpec::Aggregate(10, 100.0)).ok());
  auto server = std::move(NetServer::Start(engine.get())).value();
  ASSERT_NE(server->port(), 0);

  auto sub = std::move(SubscriberClient::Connect("127.0.0.1",
                                                 server->port(), "sub-a"))
                 .value();
  EXPECT_EQ(sub->resume_from(), 0u);

  auto producer =
      std::move(ProducerClient::Connect("127.0.0.1", server->port()))
          .value();
  // 30 x 50.0 per stream: every stream's trailing-10 sum crosses 100
  // once -> exactly one alert per stream.
  Result<BatchAckMessage> ack = producer->Send(UniformBatch(4, 30, 50.0));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.value().accepted, 120u);
  EXPECT_EQ(ack.value().dropped, 0u);
  ASSERT_TRUE(engine->Flush().ok());

  const std::vector<AlertFrameMessage> alerts = Collect(sub.get(), 4);
  ASSERT_EQ(alerts.size(), 4u);
  ExpectStrictlyIncreasing(alerts);
  std::set<std::uint64_t> seqs;
  for (const auto& alert : alerts) {
    seqs.insert(alert.seq);
    // The JSON line carries its sequence number (AlertBus schema plus a
    // leading "seq" field).
    EXPECT_NE(alert.json.find("\"seq\":"), std::string::npos);
    EXPECT_NE(alert.json.find("\"kind\":"), std::string::npos);
  }
  EXPECT_EQ(*seqs.begin(), 1u);
  EXPECT_EQ(*seqs.rbegin(), 4u);

  const NetMetricsSnapshot metrics = server->Metrics();
  EXPECT_EQ(metrics.batches, 1u);
  EXPECT_EQ(metrics.accepted, 120u);
  EXPECT_EQ(metrics.alerts_sent, 4u);
  EXPECT_EQ(metrics.corrupt_frames, 0u);
  const std::string json = server->MetricsJson();
  EXPECT_NE(json.find("\"net\":{"), std::string::npos);
  EXPECT_NE(json.find("\"hub\":{"), std::string::npos);

  ASSERT_TRUE(server->Stop().ok());
  ASSERT_TRUE(engine->Stop().ok());
}

TEST(NetServerTest, UnknownStreamsCountAsDroppedAndTheFeedSurvives) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  auto engine = MakeEngine(4, econfig);
  auto server = std::move(NetServer::Start(engine.get())).value();
  auto producer =
      std::move(ProducerClient::Connect("127.0.0.1", server->port()))
          .value();

  BatchMessage bad;
  bad.runs.push_back({999, {1.0, 2.0, 3.0}});  // no such stream
  bad.runs.push_back({0, {1.0}});
  Result<BatchAckMessage> ack = producer->Send(bad);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value().accepted, 1u);
  EXPECT_EQ(ack.value().dropped, 3u);

  // The connection is still healthy after the partial drop.
  ack = producer->Send(UniformBatch(4, 5, 1.0));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value().accepted, 20u);

  ASSERT_TRUE(server->Stop().ok());
  ASSERT_TRUE(engine->Stop().ok());
}

TEST(NetServerTest, EmptySubscriberIdIsRejectedClientSide) {
  EXPECT_FALSE(SubscriberClient::Connect("127.0.0.1", 1, "").ok());
}

// --- Fan-out and sequence conservation ----------------------------------

// N producers, two subscribers: both observe the identical sequence
// 1..K with no gaps and no duplicates, regardless of which producer
// drove which alert.
TEST(NetServerTest, TwoSubscribersSeeTheSameGaplessSequence) {
  constexpr std::size_t kStreams = 8;
  EngineConfig econfig;
  econfig.num_shards = 4;
  econfig.max_batch = 8;
  auto engine = MakeEngine(kStreams, econfig);
  ASSERT_TRUE(
      engine->RegisterQuery(QuerySpec::Aggregate(10, 100.0)).ok());
  auto server = std::move(NetServer::Start(engine.get())).value();

  auto sub_a = std::move(SubscriberClient::Connect(
                             "127.0.0.1", server->port(), "sub-a"))
                   .value();
  auto sub_b = std::move(SubscriberClient::Connect(
                             "127.0.0.1", server->port(), "sub-b"))
                   .value();

  // Three producer connections, each feeding its own slice of streams
  // from its own thread. Pulsing high/low drives one crossing per pulse
  // per stream: 2 pulses x 8 streams = 16 alerts.
  constexpr std::size_t kPulses = 2;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([p, port = server->port()] {
      auto client =
          std::move(ProducerClient::Connect("127.0.0.1", port)).value();
      for (std::size_t pulse = 0; pulse < kPulses; ++pulse) {
        for (std::uint32_t s = static_cast<std::uint32_t>(p); s < kStreams;
             s += 3) {
          BatchMessage high;
          high.runs.push_back({s, std::vector<double>(20, 50.0)});
          ASSERT_TRUE(client->Send(high).ok());
          BatchMessage low;
          low.runs.push_back({s, std::vector<double>(20, 0.0)});
          ASSERT_TRUE(client->Send(low).ok());
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ASSERT_TRUE(engine->Flush().ok());

  constexpr std::size_t kExpected = kPulses * kStreams;
  const auto alerts_a = Collect(sub_a.get(), kExpected);
  const auto alerts_b = Collect(sub_b.get(), kExpected);
  ASSERT_EQ(alerts_a.size(), kExpected);
  ASSERT_EQ(alerts_b.size(), kExpected);
  ExpectStrictlyIncreasing(alerts_a);
  ExpectStrictlyIncreasing(alerts_b);
  // Identical, gapless 1..K on both subscriptions.
  for (std::size_t i = 0; i < kExpected; ++i) {
    EXPECT_EQ(alerts_a[i].seq, i + 1);
    EXPECT_EQ(alerts_b[i].seq, i + 1);
    EXPECT_EQ(alerts_a[i].json, alerts_b[i].json);
  }

  ASSERT_TRUE(server->Stop().ok());
  ASSERT_TRUE(engine->Stop().ok());
}

// A subscriber killed mid-stream reconnects with the same id and resumes
// exactly after its last acknowledged sequence — nothing lost, nothing
// redelivered.
TEST(NetServerTest, KilledSubscriberResumesFromItsCursor) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  econfig.max_batch = 8;
  auto engine = MakeEngine(4, econfig);
  ASSERT_TRUE(
      engine->RegisterQuery(QuerySpec::Aggregate(10, 100.0)).ok());
  auto server = std::move(NetServer::Start(engine.get())).value();
  auto producer =
      std::move(ProducerClient::Connect("127.0.0.1", server->port()))
          .value();

  auto sub = std::move(SubscriberClient::Connect(
                           "127.0.0.1", server->port(), "phoenix"))
                 .value();
  ASSERT_TRUE(producer->Send(UniformBatch(4, 20, 50.0)).ok());
  ASSERT_TRUE(engine->Flush().ok());
  const auto first = Collect(sub.get(), 2);  // ack only the first two
  ASSERT_EQ(first.size(), 2u);
  sub->Close();  // killed mid-run, alerts 3 and 4 unacknowledged

  // More alerts flow while the subscriber is gone.
  ASSERT_TRUE(producer->Send(UniformBatch(4, 20, 0.0)).ok());
  ASSERT_TRUE(producer->Send(UniformBatch(4, 20, 50.0)).ok());
  ASSERT_TRUE(engine->Flush().ok());

  auto reborn = std::move(SubscriberClient::Connect(
                              "127.0.0.1", server->port(), "phoenix"))
                    .value();
  EXPECT_EQ(reborn->resume_from(), first.back().seq);
  const auto rest = Collect(reborn.get(), 6);  // 2 unacked + 4 new
  ASSERT_EQ(rest.size(), 6u);
  ExpectStrictlyIncreasing(rest);
  EXPECT_EQ(rest.front().seq, first.back().seq + 1);
  EXPECT_EQ(rest.back().seq, 8u);

  ASSERT_TRUE(server->Stop().ok());
  ASSERT_TRUE(engine->Stop().ok());
}

// --- Checkpoint / restore -----------------------------------------------

// The flagship durability property: a full server restart in the middle
// of a subscription. The hub's sequence allocator, the replay ring, and
// the subscriber's cursor ride the engine checkpoint (manifest v4), so
// after restore the subscriber replays exactly its unacknowledged suffix
// and new alerts continue the sequence with no reuse.
TEST(NetServerTest, CheckpointRestoreConservesSequencesAndCursors) {
  const auto dir = TempDir("stardust_net_ckpt_test");
  EngineConfig econfig;
  econfig.num_shards = 2;
  econfig.max_batch = 8;

  std::uint64_t acked = 0;
  std::uint64_t last_seen = 0;
  {
    auto engine = MakeEngine(4, econfig);
    ASSERT_TRUE(
        engine->RegisterQuery(QuerySpec::Aggregate(10, 100.0)).ok());
    auto server = std::move(NetServer::Start(engine.get())).value();
    auto producer =
        std::move(ProducerClient::Connect("127.0.0.1", server->port()))
            .value();
    auto sub = std::move(SubscriberClient::Connect(
                             "127.0.0.1", server->port(), "durable"))
                   .value();

    ASSERT_TRUE(producer->Send(UniformBatch(4, 20, 50.0)).ok());
    ASSERT_TRUE(engine->Flush().ok());
    // Consume all four alerts but acknowledge only the first two.
    const auto alerts = Collect(sub.get(), 4, /*ack=*/false);
    ASSERT_EQ(alerts.size(), 4u);
    acked = alerts[1].seq;
    last_seen = alerts[3].seq;
    ASSERT_TRUE(sub->Ack(acked).ok());
    // Give the ack a moment to land before the checkpoint.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    ASSERT_TRUE(server->Stop().ok());
    ASSERT_TRUE(engine->Checkpoint(dir.string()).ok());
    ASSERT_TRUE(engine->Stop().ok());
  }

  {
    auto engine = MakeEngine(4, econfig, dir.string());
    EXPECT_FALSE(engine->restored_net_state().empty());
    auto server = std::move(NetServer::Start(engine.get())).value();
    // Allocator continued: nothing before last_seen + 1 is ever reused.
    EXPECT_EQ(server->hub().next_seq(), last_seen + 1);

    auto sub = std::move(SubscriberClient::Connect(
                             "127.0.0.1", server->port(), "durable"))
                   .value();
    EXPECT_EQ(sub->resume_from(), acked);
    // The unacknowledged suffix replays first...
    const auto replay = Collect(sub.get(), 2);
    ASSERT_EQ(replay.size(), 2u);
    EXPECT_EQ(replay.front().seq, acked + 1);
    EXPECT_EQ(replay.back().seq, last_seen);

    // ...and new alerts extend the same sequence. The restored monitors
    // are still saturated, so dip below the threshold and re-cross.
    auto producer =
        std::move(ProducerClient::Connect("127.0.0.1", server->port()))
            .value();
    ASSERT_TRUE(producer->Send(UniformBatch(4, 20, 0.0)).ok());
    ASSERT_TRUE(producer->Send(UniformBatch(4, 20, 50.0)).ok());
    ASSERT_TRUE(engine->Flush().ok());
    const auto fresh = Collect(sub.get(), 4);
    ASSERT_EQ(fresh.size(), 4u);
    ExpectStrictlyIncreasing(fresh);
    EXPECT_EQ(fresh.front().seq, last_seen + 1);

    ASSERT_TRUE(server->Stop().ok());
    ASSERT_TRUE(engine->Stop().ok());
  }
  std::filesystem::remove_all(dir);
}

// --- Backpressure -------------------------------------------------------

// Under kBlock with the workers paused, a full ring parks the batch:
// the ack is withheld (TCP backpressure to the producer) until the
// engine drains, and every value is eventually accepted — none dropped.
TEST(NetServerTest, BlockPolicyParksTheBatchUntilTheEngineDrains) {
  EngineConfig econfig;
  econfig.num_shards = 1;
  econfig.queue_capacity = 64;
  econfig.overload = OverloadPolicy::kBlock;
  econfig.start_paused = true;
  auto engine = MakeEngine(2, econfig);
  auto server = std::move(NetServer::Start(engine.get())).value();
  auto producer =
      std::move(ProducerClient::Connect("127.0.0.1", server->port()))
          .value();

  constexpr std::size_t kValues = 400;  // far beyond the ring capacity
  std::atomic<bool> acked{false};
  std::thread sender([&] {
    Result<BatchAckMessage> ack =
        producer->Send(UniformBatch(2, kValues, 1.0));
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    EXPECT_EQ(ack.value().accepted, 2 * kValues);
    EXPECT_EQ(ack.value().dropped, 0u);
    acked = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(acked.load());  // parked: the ring is full, workers paused
  engine->Resume();
  sender.join();
  EXPECT_TRUE(acked.load());
  EXPECT_GE(server->Metrics().backpressure_episodes, 1u);
  EXPECT_EQ(engine->StreamAppendCount(0), 0u + kValues);

  ASSERT_TRUE(server->Stop().ok());
  ASSERT_TRUE(engine->Stop().ok());
}

// --- Admin plane --------------------------------------------------------

TEST(NetServerTest, AdminFramesDumpPlacementAndDriveMigration) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  auto engine = MakeEngine(4, econfig);
  auto server = std::move(NetServer::Start(engine.get())).value();
  auto admin =
      std::move(AdminClient::Connect("127.0.0.1", server->port())).value();

  // Placement dump: the live table as JSON, no Hello required.
  Result<AdminResultMessage> dump = admin->PlacementDump();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_TRUE(dump.value().ok);
  EXPECT_NE(dump.value().json.find("\"epoch\":0"), std::string::npos);
  EXPECT_NE(dump.value().json.find("\"num_shards\":2"), std::string::npos);

  // Migrate stream 0 off its modulo-default shard 0.
  Result<AdminResultMessage> moved = admin->Migrate(0, 1);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_TRUE(moved.value().ok) << moved.value().message;
  EXPECT_EQ(engine->placement().ShardOf(0), 1u);
  EXPECT_EQ(engine->metrics().migrations.load(), 1u);
  EXPECT_NE(moved.value().json.find("\"epoch\":1"), std::string::npos);

  // A refusal travels back as ok=0 with the engine's message, and the
  // connection survives to serve the next request.
  Result<AdminResultMessage> refused = admin->Migrate(0, 99);
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  EXPECT_FALSE(refused.value().ok);
  EXPECT_FALSE(refused.value().message.empty());

  Result<AdminResultMessage> dump2 = admin->PlacementDump();
  ASSERT_TRUE(dump2.ok()) << dump2.status().ToString();
  EXPECT_NE(dump2.value().json.find("\"epoch\":1"), std::string::npos);

  // The migrated stream still ingests through the front door.
  auto producer =
      std::move(ProducerClient::Connect("127.0.0.1", server->port()))
          .value();
  Result<BatchAckMessage> ack = producer->Send(UniformBatch(4, 8, 1.0));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.value().accepted, 4u * 8u);
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->StreamAppendCount(0), 8u);

  EXPECT_EQ(server->Metrics().admin_requests, 4u);
  ASSERT_TRUE(server->Stop().ok());
  ASSERT_TRUE(engine->Stop().ok());
}

// --- AlertHub unit behavior ---------------------------------------------

TEST(AlertHubTest, SnapshotRoundTripsAndRejectsCorruption) {
  AlertHub::Options options;
  options.replay_capacity = 8;
  AlertHub hub(options);
  Alert alert;
  alert.query = 3;
  alert.kind = QueryKind::kAggregate;
  alert.stream = 1;
  alert.window = 10;
  alert.end_time = 99;
  alert.value = 123.5;
  alert.threshold = 100.0;
  for (int i = 0; i < 5; ++i) hub.OnAlert(alert);
  // Attach the at-zero subscriber first: once both cursors are known the
  // min-acked prune keeps every entry (b has acknowledged nothing).
  hub.Attach("b", 0);
  hub.Attach("a", 2);

  const std::string bytes = hub.Serialize();
  AlertHub restored;
  ASSERT_TRUE(restored.Restore(bytes).ok());
  EXPECT_EQ(restored.next_seq(), 6u);
  EXPECT_EQ(restored.retained(), 5u);
  const auto cursors = restored.Cursors();
  ASSERT_EQ(cursors.size(), 2u);

  std::vector<SequencedAlert> fetched;
  std::uint64_t skipped = 0;
  EXPECT_EQ(restored.FetchAfter(2, 10, &fetched, &skipped), 3u);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(fetched.front().seq, 3u);
  EXPECT_EQ(fetched.front().alert.value, 123.5);

  AlertHub target;
  EXPECT_FALSE(target.Restore("").ok());
  EXPECT_FALSE(target.Restore("garbage").ok());
  EXPECT_FALSE(target.Restore(bytes.substr(0, bytes.size() - 2)).ok());
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x08;
  EXPECT_FALSE(target.Restore(flipped).ok());
}

TEST(AlertHubTest, DropOldestEvictsAndReportsTheGap) {
  AlertHub::Options options;
  options.replay_capacity = 4;
  options.overflow = OverloadPolicy::kDropOldest;
  AlertHub hub(options);
  Alert alert;
  alert.kind = QueryKind::kAggregate;
  for (int i = 0; i < 10; ++i) hub.OnAlert(alert);
  EXPECT_EQ(hub.retained(), 4u);
  EXPECT_EQ(hub.dropped_oldest(), 6u);

  std::vector<SequencedAlert> fetched;
  std::uint64_t skipped = 0;
  // A subscriber at cursor 0 lost 1..6; retention starts at 7.
  EXPECT_EQ(hub.FetchAfter(0, 10, &fetched, &skipped), 4u);
  EXPECT_EQ(skipped, 6u);
  EXPECT_EQ(fetched.front().seq, 7u);
}

TEST(AlertHubTest, DropNewestNeverCreatesSequenceGaps) {
  AlertHub::Options options;
  options.replay_capacity = 4;
  options.overflow = OverloadPolicy::kDropNewest;
  AlertHub hub(options);
  Alert alert;
  alert.kind = QueryKind::kAggregate;
  for (int i = 0; i < 10; ++i) hub.OnAlert(alert);
  EXPECT_EQ(hub.retained(), 4u);
  EXPECT_EQ(hub.dropped_newest(), 6u);
  EXPECT_EQ(hub.next_seq(), 5u);  // refused before stamping: 1..4 exist

  std::vector<SequencedAlert> fetched;
  std::uint64_t skipped = 0;
  EXPECT_EQ(hub.FetchAfter(0, 10, &fetched, &skipped), 4u);
  EXPECT_EQ(skipped, 0u);
}

}  // namespace
}  // namespace stardust::net
