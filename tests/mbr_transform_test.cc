#include "dwt/mbr_transform.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dwt/incremental.h"

namespace stardust {
namespace {

Mbr RandomBox(Rng* rng, std::size_t dims) {
  Point lo(dims), hi(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const double a = rng->NextDouble(-3.0, 3.0);
    const double b = rng->NextDouble(-3.0, 3.0);
    lo[d] = std::min(a, b);
    hi[d] = std::max(a, b);
  }
  return Mbr(lo, hi);
}

Point RandomInside(Rng* rng, const Mbr& box) {
  Point p(box.dims());
  for (std::size_t d = 0; d < box.dims(); ++d) {
    p[d] = rng->NextDouble(box.lo(d), box.hi(d) + 1e-300);
  }
  return p;
}

struct TransformCase {
  const WaveletFilter* filter;
  std::size_t dims;
  double rescale;
};

class MbrTransformProperty : public ::testing::TestWithParam<TransformCase> {
};

// Lemma A.2's guarantee: for every x in B, the transformed feature lies
// inside the transformed box — for all three algorithms.
TEST_P(MbrTransformProperty, ContainmentHoldsForInnerPoints) {
  const TransformCase c = GetParam();
  Rng rng(42 + c.dims);
  for (int iter = 0; iter < 200; ++iter) {
    const Mbr box = RandomBox(&rng, c.dims);
    const Mbr by_corners = TransformMbrCorners(box, *c.filter, c.rescale);
    const Mbr by_lohi = TransformMbrLoHi(box, *c.filter, c.rescale);
    const Mbr by_interval = TransformMbrInterval(box, *c.filter, c.rescale);
    for (int s = 0; s < 20; ++s) {
      const Point x = RandomInside(&rng, box);
      std::vector<double> y = LowpassDownsample(x, *c.filter);
      for (double& v : y) v *= c.rescale;
      for (std::size_t d = 0; d < y.size(); ++d) {
        EXPECT_GE(y[d], by_corners.lo(d) - 1e-9);
        EXPECT_LE(y[d], by_corners.hi(d) + 1e-9);
        EXPECT_GE(y[d], by_lohi.lo(d) - 1e-9);
        EXPECT_LE(y[d], by_lohi.hi(d) + 1e-9);
        EXPECT_GE(y[d], by_interval.lo(d) - 1e-9);
        EXPECT_LE(y[d], by_interval.hi(d) + 1e-9);
      }
    }
  }
}

// Online I is the tightest; interval arithmetic never beats it but never
// loses to the δ scheme.
TEST_P(MbrTransformProperty, TightnessOrdering) {
  const TransformCase c = GetParam();
  Rng rng(99 + c.dims);
  for (int iter = 0; iter < 200; ++iter) {
    const Mbr box = RandomBox(&rng, c.dims);
    const Mbr by_corners = TransformMbrCorners(box, *c.filter, c.rescale);
    const Mbr by_lohi = TransformMbrLoHi(box, *c.filter, c.rescale);
    const Mbr by_interval = TransformMbrInterval(box, *c.filter, c.rescale);
    for (std::size_t d = 0; d < by_corners.dims(); ++d) {
      // corners ⊆ interval ⊆ lohi
      EXPECT_GE(by_corners.lo(d), by_interval.lo(d) - 1e-9);
      EXPECT_LE(by_corners.hi(d), by_interval.hi(d) + 1e-9);
      EXPECT_GE(by_interval.lo(d), by_lohi.lo(d) - 1e-9);
      EXPECT_LE(by_interval.hi(d), by_lohi.hi(d) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FiltersAndDims, MbrTransformProperty,
    ::testing::Values(TransformCase{&HaarFilter(), 2, 1.0},
                      TransformCase{&HaarFilter(), 4, 1.0},
                      TransformCase{&HaarFilter(), 8, 1.0 / std::sqrt(2.0)},
                      TransformCase{&Daubechies4Filter(), 4, 1.0},
                      TransformCase{&Daubechies4Filter(), 8, 1.0},
                      TransformCase{&Daubechies4Filter(), 8,
                                    1.0 / std::sqrt(2.0)}));

// For Haar (non-negative taps, δ = 0) all three algorithms coincide.
TEST(MbrTransformTest, HaarSchemesCoincide) {
  Rng rng(7);
  for (int iter = 0; iter < 100; ++iter) {
    const Mbr box = RandomBox(&rng, 6);
    const Mbr a = TransformMbrCorners(box, HaarFilter());
    const Mbr b = TransformMbrLoHi(box, HaarFilter());
    const Mbr c = TransformMbrInterval(box, HaarFilter());
    for (std::size_t d = 0; d < a.dims(); ++d) {
      EXPECT_NEAR(a.lo(d), b.lo(d), 1e-12);
      EXPECT_NEAR(a.hi(d), b.hi(d), 1e-12);
      EXPECT_NEAR(a.lo(d), c.lo(d), 1e-12);
      EXPECT_NEAR(a.hi(d), c.hi(d), 1e-12);
    }
  }
}

TEST(MbrTransformTest, DegenerateBoxMapsToTransformedPoint) {
  const Point x{1.0, 2.0, 3.0, 4.0};
  const Mbr box = Mbr::FromPoint(x);
  const Mbr out = TransformMbrLoHi(box, HaarFilter());
  const std::vector<double> y = LowpassDownsample(x, HaarFilter());
  for (std::size_t d = 0; d < y.size(); ++d) {
    EXPECT_NEAR(out.lo(d), y[d], 1e-12);
    EXPECT_NEAR(out.hi(d), y[d], 1e-12);
  }
}

// MergeMbrHalvesHaar is TransformMbrLoHi on the concatenation.
TEST(MbrTransformTest, MergeHalvesMatchesConcatenatedTransform) {
  Rng rng(8);
  for (int iter = 0; iter < 100; ++iter) {
    const Mbr left = RandomBox(&rng, 4);
    const Mbr right = RandomBox(&rng, 4);
    Point lo = left.lo(), hi = left.hi();
    lo.insert(lo.end(), right.lo().begin(), right.lo().end());
    hi.insert(hi.end(), right.hi().begin(), right.hi().end());
    const Mbr concat(lo, hi);
    const double rescale = 1.0 / std::sqrt(2.0);
    const Mbr merged = MergeMbrHalvesHaar(left, right, rescale);
    const Mbr direct = TransformMbrLoHi(concat, HaarFilter(), rescale);
    for (std::size_t d = 0; d < merged.dims(); ++d) {
      EXPECT_NEAR(merged.lo(d), direct.lo(d), 1e-12);
      EXPECT_NEAR(merged.hi(d), direct.hi(d), 1e-12);
    }
  }
}

// The error-bound statement of Appendix A.1: each output extent is at most
// twice the input's largest pairwise extent sum (loose sanity bound for
// the Haar rotation argument).
TEST(MbrTransformTest, HaarOutputExtentBound) {
  Rng rng(9);
  for (int iter = 0; iter < 100; ++iter) {
    const Mbr box = RandomBox(&rng, 4);
    const Mbr out = TransformMbrCorners(box, HaarFilter());
    double max_in = 0.0;
    for (std::size_t d = 0; d < box.dims(); ++d) {
      max_in = std::max(max_in, box.hi(d) - box.lo(d));
    }
    for (std::size_t d = 0; d < out.dims(); ++d) {
      EXPECT_LE(out.hi(d) - out.lo(d), 2.0 * max_in + 1e-9);
    }
  }
}

}  // namespace
}  // namespace stardust
