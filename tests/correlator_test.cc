// Correlator regression + equivalence suite (src/engine correlator over
// src/query/correlation_index):
//  - golden equivalence: every index kind × shard count emits the
//    IDENTICAL correlation alert set as the brute-force all-pairs path
//    on a deterministic workload with rising-edge churn;
//  - alert conservation under query register/unregister churn across
//    1/2/4 shards on the indexed path;
//  - fault-injection: a failed level group is retried (alerts delayed,
//    never dropped), later groups still evaluate, correlator_errors
//    counts it;
//  - expire-then-recorrelate: a pair whose features expire re-alerts
//    when it correlates again (the active set is not left stale);
//  - round accounting: correlator_rounds counts once per round however
//    many levels evaluate, per-level counts in correlator_level_evals.
//
// All tests drive rounds synchronously with TriggerCorrelatorRound and
// an effectively-infinite correlator_period_ms, so every engine sees the
// same round boundaries and the alert sets are exactly comparable.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "engine/engine.h"
#include "query/sinks.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

// Fleet (aggregate) configuration; thresholds far out of reach so only
// the registered queries alert.
StardustConfig FleetConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 2;
  config.history = 200;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

std::vector<WindowThreshold> QuietThresholds() {
  return {{10, 1e9}, {20, 1e9}};
}

// Batch z-normalized DWT correlation core (T == W, c == 1): levels 0 and
// 1 monitor windows 8 and 16 at aligned times every 8 values.
StardustConfig CorrelationCore(std::size_t history) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = 8;
  config.num_levels = 2;
  config.history = history;
  config.box_capacity = 1;
  config.update_period = 8;
  return config;
}

EngineConfig CorrelatorEngineConfig(std::size_t shards,
                                    CorrelationIndexKind kind) {
  EngineConfig econfig;
  econfig.num_shards = shards;
  econfig.query.enable_correlation = true;
  econfig.query.correlation = CorrelationCore(1024);
  // The background thread must never race a triggered round.
  econfig.query.correlator_period_ms = 3600000;
  econfig.query.correlation_index_kind = kind;
  return econfig;
}

// Deterministic per-(stream, time) workload, identical for every engine:
//  - streams 0 and 1 share a sine wave, except stream 1 deviates hard on
//    t in [64, 128) -> the pair alerts, drops out, and re-alerts;
//  - streams 2 and 3 share a slower wave throughout -> one alert;
//  - streams 4..7 are deterministic pseudo-noise at distinct frequencies.
double WorkloadValue(StreamId s, std::uint64_t t) {
  const double x = static_cast<double>(t);
  switch (s) {
    case 0:
      return std::sin(0.37 * x);
    case 1:
      return std::sin(0.37 * x) +
             ((t >= 64 && t < 128) ? 5.0 * std::sin(3.1 * x) : 0.0);
    case 2:
    case 3:
      return std::sin(0.11 * x + 1.0);
    default:
      return std::sin((0.53 + 0.17 * static_cast<double>(s)) * x) +
             0.3 * std::sin(1.9 * x + static_cast<double>(s));
  }
}

// Canonical, order-independent view of a correlation alert. `value` is
// the exact verified window distance — identical across kinds and shard
// counts because every path computes it from the same z-normed windows.
using AlertKey = std::tuple<QueryId, StreamId, StreamId, std::size_t,
                            std::uint64_t, std::uint64_t, std::int64_t>;

std::multiset<AlertKey> CorrelationAlertSet(const std::vector<Alert>& alerts) {
  std::multiset<AlertKey> out;
  for (const Alert& alert : alerts) {
    if (alert.kind != QueryKind::kCorrelation) continue;
    out.insert({alert.query, alert.stream, alert.stream_b, alert.window,
                alert.end_time, alert.epoch,
                static_cast<std::int64_t>(std::llround(alert.value * 1e9))});
  }
  return out;
}

// Runs the 6-phase workload on one engine configuration and returns its
// correlation alert multiset. Each phase posts 32 values per stream,
// flushes, and triggers one synchronous correlator round; a decoy query
// is registered after phase 2 and unregistered after phase 4, so the
// plan (and the derived grid cell) changes mid-run on every engine.
std::multiset<AlertKey> RunGoldenWorkload(std::size_t shards,
                                          CorrelationIndexKind kind,
                                          bool churn_decoy) {
  constexpr std::size_t kStreams = 8;
  constexpr std::size_t kPhases = 6;
  constexpr std::uint64_t kStepsPerPhase = 32;
  auto engine = std::move(IngestEngine::Create(
                              FleetConfig(), QuietThresholds(), kStreams,
                              CorrelatorEngineConfig(shards, kind)))
                    .value();
  auto ring = std::make_shared<RingSink>();
  engine->alerts().AddSink(ring);
  EXPECT_TRUE(
      std::move(engine->RegisterQuery(QuerySpec::Correlation(0.3))).ok());
  QueryId decoy = kInvalidQueryId;
  std::uint64_t t = 0;
  for (std::size_t phase = 0; phase < kPhases; ++phase) {
    for (std::uint64_t step = 0; step < kStepsPerPhase; ++step, ++t) {
      for (StreamId s = 0; s < kStreams; ++s) {
        EXPECT_TRUE(engine->Post(s, WorkloadValue(s, t)).ok());
      }
    }
    EXPECT_TRUE(engine->Flush().ok());
    engine->TriggerCorrelatorRound();
    if (churn_decoy && phase == 2) {
      decoy = std::move(engine->RegisterQuery(QuerySpec::Correlation(0.6, 0)))
                  .value();
    }
    if (churn_decoy && phase == 4) {
      EXPECT_TRUE(engine->UnregisterQuery(decoy).ok());
      decoy = kInvalidQueryId;
    }
  }
  EXPECT_TRUE(engine->Stop().ok());
  // Stop drains the bus: everything published has reached the sink.
  EXPECT_EQ(engine->alerts().published(), engine->alerts().delivered());
  return CorrelationAlertSet(ring->Snapshot());
}

// The tentpole's acceptance property: the persistent-index parallel
// correlator emits the identical alert set as the all-pairs reference,
// for every index kind, at every shard count, under plan churn.
TEST(CorrelatorEquivalenceTest, GoldenAlertSetsMatchAllPairsEverywhere) {
  const std::multiset<AlertKey> golden =
      RunGoldenWorkload(1, CorrelationIndexKind::kBruteForce, true);
  // The workload's rising-edge plan: pair (0,1) alerts, deviates out of
  // the radius, and re-alerts; pair (2,3) alerts once.
  std::multiset<std::pair<StreamId, StreamId>> pairs;
  for (const AlertKey& key : golden) {
    pairs.emplace(std::get<1>(key), std::get<2>(key));
  }
  EXPECT_GE(pairs.count({0, 1}), 2u) << "pair (0,1) never re-alerted";
  EXPECT_GE(pairs.count({2, 3}), 1u);
  for (const auto& pair : pairs) {
    const bool planted = (pair.first == 0 && pair.second == 1) ||
                         (pair.first == 2 && pair.second == 3);
    EXPECT_TRUE(planted) << "spurious pair (" << pair.first << ", "
                         << pair.second << ")";
  }
  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const CorrelationIndexKind kind :
         {CorrelationIndexKind::kGrid, CorrelationIndexKind::kRTree,
          CorrelationIndexKind::kBruteForce}) {
      EXPECT_EQ(RunGoldenWorkload(shards, kind, true), golden)
          << CorrelationIndexKindName(kind) << " at " << shards << " shards";
    }
  }
}

// Alert conservation under heavier registry churn: re-registering and
// dropping decoy queries every phase must never lose or duplicate the
// planted pairs' alerts, at any shard count, on the indexed path.
TEST(CorrelatorStressTest, ChurnConservesAlertsAcrossShardCounts) {
  constexpr std::size_t kStreams = 8;
  constexpr std::uint64_t kStepsPerPhase = 32;
  constexpr std::size_t kPhases = 6;
  std::multiset<AlertKey> reference;
  bool have_reference = false;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    auto engine = std::move(IngestEngine::Create(
                                FleetConfig(), QuietThresholds(), kStreams,
                                CorrelatorEngineConfig(
                                    shards, CorrelationIndexKind::kGrid)))
                      .value();
    auto ring = std::make_shared<RingSink>();
    engine->alerts().AddSink(ring);
    const QueryId main_id =
        std::move(engine->RegisterQuery(QuerySpec::Correlation(0.3))).value();
    QueryId decoy = kInvalidQueryId;
    std::uint64_t t = 0;
    for (std::size_t phase = 0; phase < kPhases; ++phase) {
      // Register/unregister churn on every phase boundary: a correlation
      // decoy (forces plan + index-cell changes) and an aggregate decoy.
      if (decoy != kInvalidQueryId) {
        ASSERT_TRUE(engine->UnregisterQuery(decoy).ok());
      }
      decoy = std::move(engine->RegisterQuery(QuerySpec::Correlation(
                            0.4 + 0.05 * static_cast<double>(phase), 0)))
                  .value();
      const QueryId agg =
          std::move(engine->RegisterQuery(QuerySpec::Aggregate(10, 1e12)))
              .value();
      for (std::uint64_t step = 0; step < kStepsPerPhase; ++step, ++t) {
        for (StreamId s = 0; s < kStreams; ++s) {
          ASSERT_TRUE(engine->Post(s, WorkloadValue(s, t)).ok());
        }
      }
      ASSERT_TRUE(engine->Flush().ok());
      engine->TriggerCorrelatorRound();
      ASSERT_TRUE(engine->UnregisterQuery(agg).ok());
    }
    ASSERT_TRUE(engine->Stop().ok());
    // Only the stable main query is comparable across shard counts.
    std::vector<Alert> main_alerts;
    for (const Alert& alert : ring->Snapshot()) {
      if (alert.query == main_id) main_alerts.push_back(alert);
    }
    for (const Alert& alert : main_alerts) {
      const auto pair = std::minmax(alert.stream, alert.stream_b);
      const bool planted = (pair.first == 0 && pair.second == 1) ||
                           (pair.first == 2 && pair.second == 3);
      EXPECT_TRUE(planted) << "spurious pair at " << shards << " shards";
    }
    const std::multiset<AlertKey> alerts = CorrelationAlertSet(main_alerts);
    EXPECT_FALSE(alerts.empty());
    if (!have_reference) {
      reference = alerts;
      have_reference = true;
    } else {
      EXPECT_EQ(alerts, reference) << shards << " shards";
    }
  }
}

// Waits until the ring holds `count` correlation alerts for `query` (the
// bus delivers asynchronously even for synchronous rounds).
std::vector<Alert> AwaitCorrelationAlerts(const RingSink& ring, QueryId query,
                                          std::size_t count) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::vector<Alert> hits;
  for (;;) {
    hits.clear();
    for (const Alert& alert : ring.Snapshot()) {
      if (alert.kind == QueryKind::kCorrelation && alert.query == query) {
        hits.push_back(alert);
      }
    }
    if (hits.size() >= count || std::chrono::steady_clock::now() >= deadline) {
      return hits;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// Satellite regression: a transient gather failure on one level group
// must not stamp the round time (the round retries and its alerts arrive
// late instead of never), must not abort the remaining groups, and is
// counted in correlator_errors.
TEST(CorrelatorFaultTest, FailedLevelGroupRetriesWithoutLosingAlerts) {
  constexpr std::size_t kStreams = 2;
  EngineConfig econfig = CorrelatorEngineConfig(1, CorrelationIndexKind::kGrid);
  std::atomic<bool> fail_level0{false};
  econfig.correlator_fault_hook = [&fail_level0](std::size_t level) {
    return level == 0 && fail_level0.load();
  };
  auto engine = std::move(IngestEngine::Create(FleetConfig(),
                                               QuietThresholds(), kStreams,
                                               econfig))
                    .value();
  auto ring = std::make_shared<RingSink>();
  engine->alerts().AddSink(ring);
  const QueryId low_id =
      std::move(engine->RegisterQuery(QuerySpec::Correlation(0.3, 0))).value();
  const QueryId top_id =
      std::move(engine->RegisterQuery(QuerySpec::Correlation(0.3, 1))).value();

  for (std::uint64_t t = 0; t < 32; ++t) {
    for (StreamId s = 0; s < kStreams; ++s) {
      ASSERT_TRUE(engine->Post(s, std::sin(0.37 * static_cast<double>(t)))
                      .ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());

  // Round 1: level 0 fails, level 1 evaluates and alerts.
  fail_level0.store(true);
  engine->TriggerCorrelatorRound();
  const EngineMetrics& metrics = engine->metrics();
  EXPECT_EQ(metrics.correlator_errors.load(), 1u);
  EXPECT_EQ(metrics.correlator_rounds.load(), 1u);
  ASSERT_EQ(metrics.correlator_num_levels, 2u);
  EXPECT_EQ(metrics.correlator_level_evals[0].load(), 0u);
  EXPECT_EQ(metrics.correlator_level_evals[1].load(), 1u);
  ASSERT_TRUE(engine->alerts().WaitDrained().ok());
  const std::vector<Alert> top_hits = AwaitCorrelationAlerts(*ring, top_id, 1);
  ASSERT_EQ(top_hits.size(), 1u) << "healthy level blocked by failed one";
  EXPECT_TRUE(AwaitCorrelationAlerts(*ring, low_id, 0).empty());

  // Round 2, no new data: the failed level retries the SAME round time
  // and its alert arrives; the healthy level does not re-evaluate.
  fail_level0.store(false);
  engine->TriggerCorrelatorRound();
  const std::vector<Alert> low_hits = AwaitCorrelationAlerts(*ring, low_id, 1);
  ASSERT_EQ(low_hits.size(), 1u) << "failed level's alerts were dropped";
  const auto pair = std::minmax(low_hits[0].stream, low_hits[0].stream_b);
  EXPECT_EQ(pair.first, 0u);
  EXPECT_EQ(pair.second, 1u);
  EXPECT_EQ(metrics.correlator_errors.load(), 1u);
  EXPECT_EQ(metrics.correlator_level_evals[0].load(), 1u);
  EXPECT_EQ(metrics.correlator_level_evals[1].load(), 1u);

  const std::string json = engine->MetricsJson();
  EXPECT_NE(json.find("\"correlator_errors\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"correlator_level_evals\":[1,1]"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"correlation_evals\":"), std::string::npos) << json;
  ASSERT_TRUE(engine->Stop().ok());
}

// Satellite regression: a pair that alerted, then became un-gatherable
// (one stream's features expired at the round time), must re-alert when
// it correlates again — the round with fewer than two features still
// replaces (clears) the active pair sets.
TEST(CorrelatorExpireTest, ExpiredPairReAlertsWhenItRecorrelates) {
  constexpr std::size_t kStreams = 2;
  EngineConfig econfig = CorrelatorEngineConfig(1, CorrelationIndexKind::kGrid);
  econfig.query.correlation = CorrelationCore(/*history=*/32);
  // Keep only the latest aligned feature per stream in the store, so a
  // stream that raced ahead cannot serve old round times from cache.
  econfig.store_capacity = 1;
  auto engine = std::move(IngestEngine::Create(FleetConfig(),
                                               QuietThresholds(), kStreams,
                                               econfig))
                    .value();
  auto ring = std::make_shared<RingSink>();
  engine->alerts().AddSink(ring);
  const QueryId id =
      std::move(engine->RegisterQuery(QuerySpec::Correlation(0.3))).value();
  const auto wave = [](std::uint64_t t) {
    return std::sin(0.37 * static_cast<double>(t));
  };

  // Phase 1: both streams in lockstep -> the pair alerts.
  for (std::uint64_t t = 0; t < 32; ++t) {
    ASSERT_TRUE(engine->Post(0, wave(t)).ok());
    ASSERT_TRUE(engine->Post(1, wave(t)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  engine->TriggerCorrelatorRound();
  ASSERT_EQ(AwaitCorrelationAlerts(*ring, id, 1).size(), 1u);

  // Phase 2: stream 1 races 64 values ahead while stream 0 advances one
  // update period. The round time tracks the slower stream 0, where
  // stream 1's history has already expired: the round evaluates with a
  // single feature and must CLEAR the active pair set.
  for (std::uint64_t t = 32; t < 40; ++t) {
    ASSERT_TRUE(engine->Post(0, wave(t)).ok());
  }
  for (std::uint64_t t = 32; t < 96; ++t) {
    ASSERT_TRUE(engine->Post(1, wave(t)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  engine->TriggerCorrelatorRound();

  // Phase 3: stream 0 catches up; both serve the same round time again
  // and the pair re-alerts. (The pre-index correlator skipped the active
  // set replacement on the one-feature round, so the pair stayed
  // "active" forever and this second alert never fired.)
  for (std::uint64_t t = 40; t < 96; ++t) {
    ASSERT_TRUE(engine->Post(0, wave(t)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  engine->TriggerCorrelatorRound();
  const std::vector<Alert> hits = AwaitCorrelationAlerts(*ring, id, 2);
  ASSERT_EQ(hits.size(), 2u) << "expired pair never re-alerted";
  EXPECT_NE(hits[0].end_time, hits[1].end_time);
  ASSERT_TRUE(engine->Stop().ok());
}

// Satellite regression: rounds are counted once per invocation even when
// several level groups evaluate, the per-level breakdown lives in
// correlator_level_evals, and the alert epoch carries the round number.
TEST(CorrelatorMetricsTest, RoundsCountOncePerInvocationAcrossLevels) {
  constexpr std::size_t kStreams = 2;
  auto engine =
      std::move(IngestEngine::Create(
                    FleetConfig(), QuietThresholds(), kStreams,
                    CorrelatorEngineConfig(1, CorrelationIndexKind::kGrid)))
          .value();
  auto ring = std::make_shared<RingSink>();
  engine->alerts().AddSink(ring);
  const QueryId low_id =
      std::move(engine->RegisterQuery(QuerySpec::Correlation(0.3, 0))).value();
  const QueryId top_id =
      std::move(engine->RegisterQuery(QuerySpec::Correlation(0.3, 1))).value();
  for (std::uint64_t t = 0; t < 32; ++t) {
    for (StreamId s = 0; s < kStreams; ++s) {
      ASSERT_TRUE(engine->Post(s, std::sin(0.37 * static_cast<double>(t)))
                      .ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());
  engine->TriggerCorrelatorRound();

  // Both levels evaluated in ONE round (the pre-index correlator counted
  // one round per level group, and the skew leaked into alert.epoch).
  const EngineMetrics& metrics = engine->metrics();
  EXPECT_EQ(metrics.correlator_rounds.load(), 1u);
  ASSERT_EQ(metrics.correlator_num_levels, 2u);
  EXPECT_EQ(metrics.correlator_level_evals[0].load(), 1u);
  EXPECT_EQ(metrics.correlator_level_evals[1].load(), 1u);
  const std::vector<Alert> low = AwaitCorrelationAlerts(*ring, low_id, 1);
  const std::vector<Alert> top = AwaitCorrelationAlerts(*ring, top_id, 1);
  ASSERT_EQ(low.size(), 1u);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(low[0].epoch, 1u);
  EXPECT_EQ(top[0].epoch, 1u);

  // An idle trigger (no new data) evaluates nothing and counts nothing.
  engine->TriggerCorrelatorRound();
  EXPECT_EQ(metrics.correlator_rounds.load(), 1u);
  EXPECT_EQ(metrics.correlator_errors.load(), 0u);
  ASSERT_TRUE(engine->Stop().ok());
}

}  // namespace
}  // namespace stardust
