#include "core/surprise_monitor.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transform/feature.h"

namespace stardust {
namespace {

StardustConfig SurpriseConfig(std::size_t w, std::size_t levels,
                              double r_max) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 8;
  config.r_max = r_max;
  config.base_window = w;
  config.num_levels = levels;
  config.history = 4096;
  config.box_capacity = 1;
  config.update_period = 1;
  config.index_features = true;
  return config;
}

TEST(SurpriseMonitorTest, CreateValidation) {
  StardustConfig config = SurpriseConfig(16, 3, 10.0);
  EXPECT_TRUE(SurpriseMonitor::Create(config, 2, 0.1).ok());
  EXPECT_FALSE(SurpriseMonitor::Create(config, 0, 0.1).ok());
  EXPECT_FALSE(SurpriseMonitor::Create(config, 2, 0.0).ok());
  EXPECT_FALSE(SurpriseMonitor::Create(config, 2, 0.1, {9}).ok());
  StardustConfig boxed = config;
  boxed.box_capacity = 4;
  EXPECT_FALSE(SurpriseMonitor::Create(boxed, 2, 0.1).ok());
  StardustConfig unindexed = config;
  unindexed.index_features = false;
  EXPECT_FALSE(SurpriseMonitor::Create(unindexed, 2, 0.1).ok());
}

// A strictly periodic stream is never surprising after warm-up — every
// window repeats an earlier one exactly.
TEST(SurpriseMonitorTest, PeriodicStreamStaysQuiet) {
  auto monitor = std::move(SurpriseMonitor::Create(
                               SurpriseConfig(16, 2, 10.0), 1, 0.05))
                     .value();
  std::vector<SurpriseEvent> events;
  for (int t = 0; t < 600; ++t) {
    const double v =
        5.0 + 3.0 * std::sin(2.0 * std::numbers::pi * t / 16.0);
    ASSERT_TRUE(monitor->Append(0, v, &events).ok());
  }
  EXPECT_TRUE(events.empty())
      << "first event at t=" << events.front().end_time;
  EXPECT_GT(monitor->stats().checks, 0u);
}

// Injecting a one-off shape into an otherwise periodic stream fires an
// event covering the anomaly, and only then.
TEST(SurpriseMonitorTest, InjectedAnomalyFiresOnce) {
  auto monitor = std::move(SurpriseMonitor::Create(
                               SurpriseConfig(16, 2, 10.0), 1, 0.05))
                     .value();
  std::vector<SurpriseEvent> events;
  const std::size_t anomaly_start = 400, anomaly_len = 32;
  for (std::size_t t = 0; t < 800; ++t) {
    double v = 5.0 + 3.0 * std::sin(2.0 * std::numbers::pi * t / 16.0);
    if (t >= anomaly_start && t < anomaly_start + anomaly_len) {
      v = 9.5;  // flat clipping episode: a shape the stream never makes
    }
    ASSERT_TRUE(monitor->Append(0, v, &events).ok());
  }
  ASSERT_FALSE(events.empty());
  for (const auto& event : events) {
    // Every event's window overlaps the anomaly.
    EXPECT_GE(event.end_time + event.window, anomaly_start + 1)
        << "event at " << event.end_time;
    EXPECT_LT(event.end_time, anomaly_start + anomaly_len + event.window);
    EXPECT_GT(event.novelty, 0.05);
  }
}

// A shape is only novel once: repeating the same anomaly later is
// recognized as seen-before (within the retained history).
TEST(SurpriseMonitorTest, RepeatedAnomalyIsNotNovel) {
  auto monitor = std::move(SurpriseMonitor::Create(
                               SurpriseConfig(16, 2, 10.0), 1, 0.05))
                     .value();
  auto value_at = [](std::size_t t) {
    double v = 5.0 + 3.0 * std::sin(2.0 * std::numbers::pi * t / 16.0);
    const bool in_first = t >= 300 && t < 332;
    const bool in_second = t >= 700 && t < 732;
    if (in_first || in_second) v = 9.5;
    return v;
  };
  std::vector<SurpriseEvent> first_events, second_events;
  for (std::size_t t = 0; t < 500; ++t) {
    ASSERT_TRUE(monitor->Append(0, value_at(t), &first_events).ok());
  }
  for (std::size_t t = 500; t < 900; ++t) {
    ASSERT_TRUE(monitor->Append(0, value_at(t), &second_events).ok());
  }
  EXPECT_FALSE(first_events.empty());
  EXPECT_TRUE(second_events.empty())
      << "repeat at t=" << second_events.front().end_time;
}

// Cross-stream mode: a shape one stream has already produced is not
// novel when another stream produces it, unless within_stream is set.
TEST(SurpriseMonitorTest, CrossStreamHistorySuppresses) {
  auto value_at = [](std::size_t t, bool with_anomaly) {
    double v = 5.0 + 3.0 * std::sin(2.0 * std::numbers::pi * t / 16.0);
    if (with_anomaly && t >= 200 && t < 232) v = 9.5;
    return v;
  };
  for (bool within_stream : {false, true}) {
    auto monitor = std::move(SurpriseMonitor::Create(
                                 SurpriseConfig(16, 2, 10.0), 2, 0.05, {},
                                 within_stream))
                       .value();
    std::vector<SurpriseEvent> events;
    // Stream 1 replays stream 0 exactly, delayed by 256 ticks (a period multiple, no splice seam) (so its
    // anomaly arrives after stream 0's is already indexed fleet-wide).
    for (std::size_t t = 0; t < 600; ++t) {
      ASSERT_TRUE(monitor->Append(0, value_at(t, true), &events).ok());
      const double delayed =
          t >= 256 ? value_at(t - 256, true) : value_at(t, false);
      ASSERT_TRUE(monitor->Append(1, delayed, &events).ok());
    }
    bool stream1_fired = false;
    for (const auto& event : events) {
      if (event.stream == 1) stream1_fired = true;
    }
    if (within_stream) {
      EXPECT_TRUE(stream1_fired)
          << "within-stream novelty must ignore stream 0's history";
    } else {
      EXPECT_FALSE(stream1_fired)
          << "fleet-wide history should recognize the repeated shape";
    }
  }
}

}  // namespace
}  // namespace stardust
