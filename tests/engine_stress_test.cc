// Concurrency stress for the ingestion engine and its SPSC rings. These
// tests are the payload of the CI thread-sanitizer job (-DSTARDUST_SANITIZE
// =thread): they exercise multi-producer posting, drop-oldest stealing,
// and concurrent snapshot reads while workers are applying batches.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/ring_buffer.h"
#include "engine/engine.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

StardustConfig StreamConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 8;
  config.num_levels = 3;
  config.history = 64;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

std::vector<WindowThreshold> Thresholds() {
  std::vector<double> training;
  for (int i = 0; i < 2000; ++i) {
    training.push_back(static_cast<double>(i % 17));
  }
  return TrainThresholds(AggregateKind::kSum, training, {8, 16}, 2.0);
}

// SPSC ring ping-pong: every pushed value arrives exactly once, in order.
TEST(SpscRingStressTest, HandsOverEveryValueInOrder) {
  SpscRing<std::uint64_t> ring(256);
  const std::uint64_t total = 200000;
  std::atomic<bool> fail{false};
  std::thread consumer([&] {
    std::uint64_t expected = 0;
    while (expected < total) {
      std::uint64_t v;
      if (ring.TryPop(&v)) {
        if (v != expected) {
          fail.store(true);
          return;
        }
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < total; ++i) {
    while (!ring.TryPush(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_FALSE(fail.load());
  EXPECT_TRUE(ring.ApproxEmpty());
}

// The drop-oldest path has the producer popping its own ring while the
// consumer pops concurrently: every value must surface exactly once, on
// exactly one side.
TEST(SpscRingStressTest, ProducerStealRacesConsumerSafely) {
  SpscRing<std::uint64_t> ring(64);
  const std::uint64_t total = 100000;
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> done{false};
  std::atomic<bool> duplicate{false};
  std::vector<std::uint8_t> consumer_seen(total, 0);

  std::thread consumer([&] {
    std::uint64_t v;
    while (!done.load(std::memory_order_acquire)) {
      if (ring.TryPop(&v)) {
        consumer_seen[v]++;
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    while (ring.TryPop(&v)) {
      consumer_seen[v]++;
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::uint64_t stolen = 0;
  std::vector<std::uint8_t> producer_seen(total, 0);
  for (std::uint64_t i = 0; i < total; ++i) {
    while (!ring.TryPush(i)) {
      std::uint64_t victim;
      if (ring.TryPop(&victim)) {
        producer_seen[victim]++;
        ++stolen;
      }
    }
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(consumed.load() + stolen, total);
  for (std::uint64_t i = 0; i < total; ++i) {
    const int times = consumer_seen[i] + producer_seen[i];
    if (times != 1) duplicate.store(true);
  }
  EXPECT_FALSE(duplicate.load()) << "a value was lost or duplicated";
}

// Multi-producer ingestion under kBlock: nothing is lost, nothing is
// duplicated, per-stream append counts come out exact.
TEST(EngineStressTest, MultiProducerBlockLosesNothing) {
  const std::size_t streams = 16;
  const std::size_t producers = 4;
  const std::uint64_t posts_per_producer = 20000;
  EngineConfig econfig;
  econfig.num_shards = 4;
  econfig.queue_capacity = 128;  // small: forces real backpressure
  econfig.max_producers = producers;
  econfig.overload = OverloadPolicy::kBlock;
  auto engine = std::move(IngestEngine::Create(StreamConfig(), Thresholds(),
                                               streams, econfig))
                    .value();

  std::atomic<bool> post_failed{false};
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      // Producer p posts to every stream in a producer-specific rotation.
      for (std::uint64_t i = 0; i < posts_per_producer; ++i) {
        const StreamId stream =
            static_cast<StreamId>((i + p * 7) % streams);
        if (!engine->Post(stream, static_cast<double>(i % 100)).ok()) {
          post_failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(post_failed.load());
  ASSERT_TRUE(engine->Flush().ok());

  const std::uint64_t total = producers * posts_per_producer;
  EXPECT_EQ(engine->metrics().posted.load(), total);
  EXPECT_EQ(engine->metrics().appended.load(), total);
  EXPECT_EQ(engine->metrics().dropped_newest.load(), 0u);
  EXPECT_EQ(engine->metrics().dropped_oldest.load(), 0u);
  EXPECT_EQ(engine->metrics().append_errors.load(), 0u);
  // Each producer hits each stream exactly posts_per_producer / streams
  // times (both are multiples), so per-stream counts are exact.
  std::uint64_t sum = 0;
  for (StreamId s = 0; s < streams; ++s) {
    const std::uint64_t count = engine->StreamAppendCount(s);
    EXPECT_EQ(count, total / streams) << "stream " << s;
    sum += count;
  }
  EXPECT_EQ(sum, total);
  ASSERT_TRUE(engine->Stop().ok());
}

// Readers snapshotting while producers and workers run: no torn reads
// (TSan checks the synchronization; the assert checks monotonic epochs).
TEST(EngineStressTest, ConcurrentReadersSeeMonotonicEpochs) {
  const std::size_t streams = 8;
  EngineConfig econfig;
  econfig.num_shards = 2;
  econfig.max_producers = 2;
  auto engine = std::move(IngestEngine::Create(StreamConfig(), Thresholds(),
                                               streams, econfig))
                    .value();

  std::atomic<bool> stop_readers{false};
  std::atomic<bool> monotonic{true};
  std::thread reader([&] {
    std::vector<std::uint64_t> last_epoch(engine->num_shards(), 0);
    std::vector<ShardStamp> stamps;
    while (!stop_readers.load(std::memory_order_acquire)) {
      engine->FleetTotal(&stamps);
      for (const ShardStamp& stamp : stamps) {
        if (stamp.epoch < last_epoch[stamp.shard]) monotonic.store(false);
        last_epoch[stamp.shard] = stamp.epoch;
      }
      (void)engine->CurrentlyAlarming(0);
      (void)engine->MetricsJson();
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < 15000; ++i) {
        const StreamId stream = static_cast<StreamId>((i + p) % streams);
        ASSERT_TRUE(engine->Post(stream, static_cast<double>(i % 50)).ok());
      }
    });
  }
  for (auto& t : producers) t.join();
  ASSERT_TRUE(engine->Flush().ok());
  stop_readers.store(true, std::memory_order_release);
  reader.join();
  EXPECT_TRUE(monotonic.load());
  EXPECT_EQ(engine->metrics().appended.load(), 2u * 15000u);
}

// More producer threads than slots: the surplus thread gets a clean error
// instead of corrupting someone else's ring.
TEST(EngineStressTest, ProducerSlotExhaustionIsACleanError) {
  EngineConfig econfig;
  econfig.max_producers = 1;
  auto engine = std::move(IngestEngine::Create(StreamConfig(), Thresholds(),
                                               2, econfig))
                    .value();
  ASSERT_TRUE(engine->Post(0, 1.0).ok());  // this thread takes slot 0
  Status other_status = Status::OK();
  std::thread other([&] { other_status = engine->Post(1, 1.0); });
  other.join();
  EXPECT_FALSE(other_status.ok());
  EXPECT_EQ(other_status.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->metrics().appended.load(), 1u);
}

}  // namespace
}  // namespace stardust
