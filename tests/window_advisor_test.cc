#include "core/window_advisor.h"


#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"

namespace stardust {
namespace {

/// Poisson-ish background with rectangular bursts of a fixed duration.
std::vector<double> BurstsOfDuration(std::size_t length,
                                     std::size_t burst_len, double boost,
                                     std::size_t gap, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(length);
  std::size_t next_burst = gap;
  std::size_t burst_left = 0;
  for (std::size_t t = 0; t < length; ++t) {
    double rate = 20.0;
    if (burst_left > 0) {
      rate += boost;
      --burst_left;
    } else if (--next_burst == 0) {
      burst_left = burst_len;
      next_burst = gap;
    }
    out[t] = rate + std::sqrt(rate) * rng.NextGaussian();
  }
  return out;
}

TEST(WindowAdvisorTest, CreateValidation) {
  EXPECT_FALSE(WindowAdvisor::Create(AggregateKind::kSum, 0, 3).ok());
  EXPECT_FALSE(WindowAdvisor::Create(AggregateKind::kSum, 8, 0).ok());
  EXPECT_TRUE(WindowAdvisor::Create(AggregateKind::kSum, 8, 5).ok());
}

TEST(WindowAdvisorTest, RecommendRequiresData) {
  auto advisor =
      std::move(WindowAdvisor::Create(AggregateKind::kSum, 8, 4)).value();
  EXPECT_FALSE(advisor->RecommendWindow().ok());
  for (int i = 0; i < 100; ++i) advisor->Append(1.0);
  EXPECT_TRUE(advisor->RecommendWindow().ok());
}

// The paper's motivating use case for parameter estimation: the advisor
// should pick the window size matching the hidden bursts' timescale.
TEST(WindowAdvisorTest, RecommendedWindowTracksBurstDuration) {
  // Windows 8, 16, ..., 512.
  for (std::size_t burst_len : {16u, 128u}) {
    auto advisor =
        std::move(WindowAdvisor::Create(AggregateKind::kSum, 8, 7)).value();
    const auto data =
        BurstsOfDuration(40000, burst_len, 30.0, 1500, 7 + burst_len);
    for (double v : data) advisor->Append(v);
    Result<std::size_t> recommended = advisor->RecommendWindow();
    ASSERT_TRUE(recommended.ok());
    // The scan-statistic SNR peaks at w ≈ burst duration; allow one
    // dyadic level of slack on either side.
    EXPECT_GE(recommended.value(), burst_len / 2) << "L=" << burst_len;
    EXPECT_LE(recommended.value(), burst_len * 2) << "L=" << burst_len;
  }
}

TEST(WindowAdvisorTest, AdviceIsSortedAndComplete) {
  auto advisor =
      std::move(WindowAdvisor::Create(AggregateKind::kSum, 8, 5)).value();
  const auto data = BurstsOfDuration(5000, 32, 25.0, 400, 11);
  for (double v : data) advisor->Append(v);
  const auto advice = advisor->Advise(3.0);
  ASSERT_EQ(advice.size(), 5u);
  for (std::size_t i = 1; i < advice.size(); ++i) {
    EXPECT_GE(advice[i - 1].score, advice[i].score);
  }
  // Windows are the dyadic family.
  std::uint64_t seen = 0;
  for (const auto& a : advice) seen |= a.window;
  EXPECT_EQ(seen, (8u | 16u | 32u | 64u | 128u));
}

TEST(WindowAdvisorTest, ThresholdMatchesMoments) {
  auto advisor =
      std::move(WindowAdvisor::Create(AggregateKind::kSum, 4, 1)).value();
  // Constant stream: aggregate over window 4 is always 4v.
  for (int i = 0; i < 100; ++i) advisor->Append(2.5);
  const auto advice = advisor->Advise(5.0);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_NEAR(advice[0].threshold, 10.0, 1e-9);  // μ = 10, σ = 0
  EXPECT_EQ(advice[0].score, 0.0);               // degenerate σ
  EXPECT_NEAR(advice[0].drift, 0.0, 1e-9);
}

TEST(WindowAdvisorTest, AlarmRateGrowsWithSmallerLambda) {
  auto advisor =
      std::move(WindowAdvisor::Create(AggregateKind::kSum, 8, 3)).value();
  const auto data = BurstsOfDuration(8000, 32, 25.0, 500, 13);
  for (double v : data) advisor->Append(v);
  const auto strict = advisor->Advise(6.0);
  const auto loose = advisor->Advise(0.0);
  for (std::size_t i = 0; i < strict.size(); ++i) {
    // Match windows (both sorted by score over the same data).
    for (const auto& l : loose) {
      if (l.window == strict[i].window) {
        EXPECT_GE(l.alarm_rate, strict[i].alarm_rate);
      }
    }
  }
}

TEST(WindowAdvisorTest, DriftIsDetectedOnTrendingStream) {
  auto advisor =
      std::move(WindowAdvisor::Create(AggregateKind::kSum, 8, 2)).value();
  for (int t = 0; t < 2000; ++t) {
    advisor->Append(0.01 * t);  // linear ramp
  }
  const auto advice = advisor->Advise(3.0);
  for (const auto& a : advice) {
    // Sum over window w of a ramp with step s drifts by w·s per arrival.
    const double expected =
        0.01 * static_cast<double>(a.window);
    EXPECT_NEAR(a.drift, expected, expected * 0.05) << "w=" << a.window;
  }
}

}  // namespace
}  // namespace stardust
