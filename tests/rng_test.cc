#include "common/rng.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

namespace stardust {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble(-3.5, 2.5);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NextUint64Bounded) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextUint64CoversAllResidues) {
  Rng rng(15);
  bool seen[7] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.NextUint64(7)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.NextInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(21);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextExponential(4.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(SplitMix64Test, KnownFirstOutputsDiffer) {
  SplitMix64 a(0), b(1);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(SplitMix64Test, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace stardust
