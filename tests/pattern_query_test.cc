#include "core/pattern_query.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/linear_scan.h"
#include "stream/dataset.h"

namespace stardust {
namespace {

StardustConfig PatternConfig(std::size_t c, std::size_t period,
                             double r_max) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 4;
  config.r_max = r_max;
  config.base_window = 16;
  config.num_levels = 4;  // windows 16, 32, 64, 128
  config.history = 1024;
  config.box_capacity = c;
  config.update_period = period;
  config.index_features = true;
  return config;
}

std::unique_ptr<Stardust> FeedDataset(const StardustConfig& config,
                                      const Dataset& dataset) {
  auto core = std::move(Stardust::Create(config)).value();
  for (std::size_t i = 0; i < dataset.num_streams(); ++i) {
    const StreamId id = core->AddStream();
    for (double v : dataset.streams[i]) {
      EXPECT_TRUE(core->Append(id, v).ok());
    }
  }
  return core;
}

std::set<std::pair<StreamId, std::uint64_t>> MatchSet(
    const std::vector<PatternMatch>& matches) {
  std::set<std::pair<StreamId, std::uint64_t>> out;
  for (const auto& m : matches) out.emplace(m.stream, m.end_time);
  return out;
}

class PatternQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = MakeRandomWalkDataset(4, 512, 1234);
  }
  Dataset dataset_;
};

TEST_F(PatternQueryTest, OnlineConfigValidation) {
  auto core = FeedDataset(PatternConfig(4, 1, dataset_.r_max), dataset_);
  PatternQueryEngine engine(*core);
  std::vector<double> query(48, 1.0);
  EXPECT_FALSE(engine.QueryOnline(query, -1.0).ok());
  EXPECT_FALSE(engine.QueryOnline(std::vector<double>(50, 1.0), 0.1).ok());
  EXPECT_FALSE(
      engine.QueryOnline(std::vector<double>(16 * 16, 1.0), 0.1).ok());
  EXPECT_TRUE(engine.QueryOnline(query, 0.1).ok());
  // A batch query against an online index is a config error.
  EXPECT_FALSE(engine.QueryBatch(query, 0.1).ok());
}

TEST_F(PatternQueryTest, PlantedSubsequenceIsFoundOnline) {
  auto core = FeedDataset(PatternConfig(4, 1, dataset_.r_max), dataset_);
  PatternQueryEngine engine(*core);
  // The query IS a window of stream 2: distance 0, must be found.
  const std::size_t len = 16 * 5;  // b = 5 = 101b: two pieces
  const std::size_t start = 200;
  std::vector<double> query(dataset_.streams[2].begin() + start,
                            dataset_.streams[2].begin() + start + len);
  Result<PatternResult> result = engine.QueryOnline(query, 1e-9);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto matches = MatchSet(result.value().matches);
  EXPECT_TRUE(matches.count({2, start + len - 1}) == 1)
      << "planted match missing";
}

TEST_F(PatternQueryTest, PlantedSubsequenceIsFoundBatch) {
  auto core = FeedDataset(PatternConfig(1, 16, dataset_.r_max), dataset_);
  PatternQueryEngine engine(*core);
  const std::size_t len = 16 * 7;
  const std::size_t start = 128;
  std::vector<double> query(dataset_.streams[1].begin() + start,
                            dataset_.streams[1].begin() + start + len);
  Result<PatternResult> result = engine.QueryBatch(query, 1e-9);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto matches = MatchSet(result.value().matches);
  EXPECT_TRUE(matches.count({1, start + len - 1}) == 1);
}

struct RadiusCase {
  double radius;
  std::size_t query_len;
};

class PatternCompleteness : public ::testing::TestWithParam<RadiusCase> {};

// Completeness against the linear-scan oracle: with the history covering
// the whole stream, both algorithms report exactly the true match set
// (the filters are sound — no false dismissals — and verification removes
// every false alarm).
TEST_P(PatternCompleteness, OnlineEqualsLinearScan) {
  const RadiusCase c = GetParam();
  const Dataset dataset = MakeRandomWalkDataset(4, 512, 99);
  auto core = FeedDataset(PatternConfig(4, 1, dataset.r_max), dataset);
  PatternQueryEngine engine(*core);
  const auto queries = MakeQueryWorkload(5, {c.query_len}, 7);
  for (const auto& query : queries) {
    Result<PatternResult> result = engine.QueryOnline(query, c.radius);
    ASSERT_TRUE(result.ok());
    const auto expected = MatchSet(ScanPatternMatches(
        dataset, query, c.radius, Normalization::kUnitSphere,
        dataset.r_max));
    EXPECT_EQ(MatchSet(result.value().matches), expected);
    EXPECT_GE(result.value().candidates, result.value().matches.size());
  }
}

TEST_P(PatternCompleteness, BatchEqualsLinearScan) {
  const RadiusCase c = GetParam();
  const Dataset dataset = MakeRandomWalkDataset(4, 512, 99);
  auto core = FeedDataset(PatternConfig(1, 16, dataset.r_max), dataset);
  PatternQueryEngine engine(*core);
  const auto queries = MakeQueryWorkload(5, {c.query_len}, 8);
  for (const auto& query : queries) {
    Result<PatternResult> result = engine.QueryBatch(query, c.radius);
    ASSERT_TRUE(result.ok());
    const auto expected = MatchSet(ScanPatternMatches(
        dataset, query, c.radius, Normalization::kUnitSphere,
        dataset.r_max));
    EXPECT_EQ(MatchSet(result.value().matches), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RadiiAndLengths, PatternCompleteness,
    ::testing::Values(RadiusCase{0.002, 48}, RadiusCase{0.01, 80},
                      RadiusCase{0.05, 112}, RadiusCase{0.02, 240}));

// Self-match sanity: querying with a full window of each stream at radius
// slightly above 0 returns at least that window, online and batch.
TEST_F(PatternQueryTest, EveryStreamFindsItself) {
  auto online = FeedDataset(PatternConfig(8, 1, dataset_.r_max), dataset_);
  auto batch = FeedDataset(PatternConfig(1, 16, dataset_.r_max), dataset_);
  PatternQueryEngine online_engine(*online);
  PatternQueryEngine batch_engine(*batch);
  for (StreamId s = 0; s < dataset_.num_streams(); ++s) {
    const std::size_t len = 96;
    const std::size_t start = 300;
    std::vector<double> query(dataset_.streams[s].begin() + start,
                              dataset_.streams[s].begin() + start + len);
    const auto r1 = online_engine.QueryOnline(query, 1e-6);
    const auto r2 = batch_engine.QueryBatch(query, 1e-6);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(MatchSet(r1.value().matches).count({s, start + len - 1}), 1u);
    EXPECT_EQ(MatchSet(r2.value().matches).count({s, start + len - 1}), 1u);
  }
}

// Larger box capacity cannot lose matches (the extent filter only gets
// looser), and candidate counts grow.
TEST_F(PatternQueryTest, BoxCapacityTradesPrecisionNotRecall) {
  const std::size_t len = 112;
  const auto queries = MakeQueryWorkload(3, {len}, 17);
  std::vector<std::set<std::pair<StreamId, std::uint64_t>>> match_sets;
  std::vector<std::uint64_t> candidate_counts;
  for (std::size_t c : {1u, 8u, 64u}) {
    auto core = FeedDataset(PatternConfig(c, 1, dataset_.r_max), dataset_);
    PatternQueryEngine engine(*core);
    std::set<std::pair<StreamId, std::uint64_t>> all;
    std::uint64_t candidates = 0;
    for (const auto& query : queries) {
      const auto result = engine.QueryOnline(query, 0.02);
      ASSERT_TRUE(result.ok());
      for (const auto& m : result.value().matches) {
        all.emplace(m.stream, m.end_time);
      }
      candidates += result.value().candidates;
    }
    match_sets.push_back(all);
    candidate_counts.push_back(candidates);
  }
  EXPECT_EQ(match_sets[0], match_sets[1]);
  EXPECT_EQ(match_sets[0], match_sets[2]);
  EXPECT_LE(candidate_counts[0], candidate_counts[1]);
  EXPECT_LE(candidate_counts[1], candidate_counts[2]);
}

}  // namespace
}  // namespace stardust
