// Concurrency stress for the continuous-query subsystem: query
// registration and unregistration racing live multi-producer ingestion
// and the correlator. Run under TSan in CI; the assertions here are the
// invariants that must hold regardless of interleaving (unique ids,
// consistent registry size, conserved alert accounting).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "query/sinks.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

StardustConfig AggregateConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 3;
  config.history = 100;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

EngineConfig StressEngineConfig() {
  EngineConfig econfig;
  econfig.num_shards = 2;
  econfig.max_batch = 32;
  econfig.query.enable_patterns = true;
  econfig.query.pattern.transform = TransformKind::kDwt;
  econfig.query.pattern.normalization = Normalization::kUnitSphere;
  econfig.query.pattern.coefficients = 4;
  econfig.query.pattern.r_max = 8.0;
  econfig.query.pattern.base_window = 8;
  econfig.query.pattern.num_levels = 2;
  econfig.query.pattern.history = 64;
  econfig.query.pattern.update_period = 1;
  econfig.query.pattern.index_features = true;
  econfig.query.enable_correlation = true;
  econfig.query.correlation.transform = TransformKind::kDwt;
  econfig.query.correlation.normalization = Normalization::kZNorm;
  econfig.query.correlation.coefficients = 4;
  econfig.query.correlation.base_window = 8;
  econfig.query.correlation.num_levels = 2;
  econfig.query.correlation.history = 64;
  econfig.query.correlation.update_period = 8;
  econfig.query.correlator_period_ms = 2;
  return econfig;
}

// Register/unregister churn from multiple threads while producers post and
// the shard workers + correlator evaluate against whatever snapshot they
// hold. Every returned id must be unique and the registry must account
// for exactly the registrations that were not unregistered.
TEST(QueryStressTest, RegisterUnregisterRacesLiveIngestion) {
  constexpr std::size_t kStreams = 4;
  constexpr int kProducers = 2;
  constexpr int kChurners = 2;
  constexpr int kChurnIterations = 150;
  constexpr std::uint64_t kStepsPerStream = 4000;

  auto engine = std::move(IngestEngine::Create(AggregateConfig(),
                                               {{10, 1e9}}, kStreams,
                                               StressEngineConfig()))
                    .value();
  auto ring = std::make_shared<RingSink>(1 << 16);
  engine->alerts().AddSink(ring);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, p] {
      // Disjoint stream sets: streams p and p + kProducers.
      const StreamId streams[2] = {static_cast<StreamId>(p),
                                   static_cast<StreamId>(p + kProducers)};
      for (std::uint64_t t = 0; t < kStepsPerStream; ++t) {
        for (StreamId s : streams) {
          // A low/high square wave: crosses aggregate thresholds often so
          // churned queries really alert while they exist.
          const double value = (t / 16) % 2 == 0 ? 1.0 : 9.0;
          ASSERT_TRUE(engine->Post(s, value).ok());
        }
      }
    });
  }

  std::mutex ids_mu;
  std::vector<QueryId> all_ids;
  std::atomic<int> registered{0};
  std::atomic<int> unregistered{0};
  std::vector<std::thread> churners;
  for (int c = 0; c < kChurners; ++c) {
    churners.emplace_back([&, c] {
      std::vector<QueryId> mine;
      for (int i = 0; i < kChurnIterations; ++i) {
        QuerySpec spec;
        switch ((c + i) % 3) {
          case 0:
            spec = QuerySpec::Aggregate(10 * (1 + i % 4), 50.0 + i);
            break;
          case 1:
            spec = QuerySpec::Pattern(
                std::vector<double>(8, 1.0 + 0.1 * i), 0.2);
            break;
          default:
            spec = QuerySpec::Correlation(0.25 + 0.01 * (i % 10));
            break;
        }
        auto id = engine->RegisterQuery(std::move(spec));
        ASSERT_TRUE(id.ok());
        mine.push_back(id.value());
        registered.fetch_add(1);
        // Unregister every other query, sometimes after letting it run.
        if (i % 2 == 1) {
          const QueryId victim = mine[mine.size() - 2];
          ASSERT_TRUE(engine->UnregisterQuery(victim).ok());
          unregistered.fetch_add(1);
        }
        if (i % 16 == 0) std::this_thread::yield();
      }
      std::lock_guard<std::mutex> lock(ids_mu);
      all_ids.insert(all_ids.end(), mine.begin(), mine.end());
    });
  }

  for (std::thread& t : churners) t.join();
  for (std::thread& t : producers) t.join();
  ASSERT_TRUE(engine->Flush().ok());

  // Every id handed out is unique — across threads, across kinds, across
  // unregistrations.
  std::set<QueryId> unique(all_ids.begin(), all_ids.end());
  EXPECT_EQ(unique.size(), all_ids.size());
  EXPECT_EQ(static_cast<int>(all_ids.size()), registered.load());
  EXPECT_EQ(unique.count(kInvalidQueryId), 0u);

  // The registry holds exactly the surviving queries.
  EXPECT_EQ(engine->queries().size(),
            static_cast<std::size_t>(registered.load() -
                                     unregistered.load()));

  ASSERT_TRUE(engine->Stop().ok());

  // Alert accounting is conserved under all the churn.
  const AlertBus& bus = engine->alerts();
  EXPECT_EQ(bus.published(),
            bus.delivered() + bus.dropped_newest() + bus.dropped_oldest());
  EXPECT_EQ(ring->total(), bus.delivered());
  // The square wave crosses the churned thresholds: the subsystem really
  // evaluated and alerted while being reconfigured.
  EXPECT_GT(bus.delivered(), 0u);
  for (const auto& m : engine->queries().Metrics()) {
    EXPECT_NE(m.id, kInvalidQueryId);
  }
}

// Sinks added and removed while alerts flow: no lost dispatcher, no
// crash, and the permanent sink sees every delivered alert.
TEST(QueryStressTest, SinkChurnDuringDelivery) {
  constexpr std::uint64_t kSteps = 3000;
  EngineConfig econfig;
  econfig.num_shards = 2;
  econfig.max_batch = 16;
  auto engine = std::move(IngestEngine::Create(AggregateConfig(),
                                               {{10, 1e9}}, 2, econfig))
                    .value();
  auto permanent = std::make_shared<RingSink>(1 << 16);
  engine->alerts().AddSink(permanent);
  ASSERT_TRUE(engine->RegisterQuery(QuerySpec::Aggregate(10, 40.0)).ok());

  std::atomic<bool> stop_churn{false};
  std::thread churner([&engine, &stop_churn] {
    while (!stop_churn.load()) {
      auto transient = std::make_shared<RingSink>();
      const AlertBus::SinkId id = engine->alerts().AddSink(transient);
      std::this_thread::yield();
      ASSERT_TRUE(engine->alerts().RemoveSink(id));
    }
  });

  for (std::uint64_t t = 0; t < kSteps; ++t) {
    const double value = (t / 8) % 2 == 0 ? 0.0 : 9.0;
    ASSERT_TRUE(engine->Post(0, value).ok());
    ASSERT_TRUE(engine->Post(1, value).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  stop_churn.store(true);
  churner.join();
  ASSERT_TRUE(engine->Stop().ok());

  EXPECT_GT(permanent->total(), 0u);
  EXPECT_EQ(permanent->total(), engine->alerts().delivered());
}

}  // namespace
}  // namespace stardust
