#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pattern_query.h"
#include "rtree/rtree.h"
#include "stream/dataset.h"
#include "transform/feature.h"

namespace stardust {
namespace {

// ---------------------------------------------------------------------------
// RTree::SearchKNearest
// ---------------------------------------------------------------------------

Mbr RandomBox(Rng* rng, std::size_t dims) {
  Point lo(dims), hi(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    lo[d] = rng->NextDouble(-50, 50);
    hi[d] = lo[d] + rng->NextDouble(0, 4);
  }
  return Mbr(lo, hi);
}

TEST(KnnTest, EmptyTreeAndZeroK) {
  RTree tree(2);
  std::vector<RTreeEntry> out;
  tree.SearchKNearest({0.0, 0.0}, 3, &out);
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(tree.Insert(Mbr::FromPoint({1.0, 1.0}), 1).ok());
  tree.SearchKNearest({0.0, 0.0}, 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(KnnTest, KLargerThanTreeReturnsEverything) {
  RTree tree(2);
  for (RecordId id = 0; id < 5; ++id) {
    ASSERT_TRUE(
        tree.Insert(Mbr::FromPoint({double(id), 0.0}), id).ok());
  }
  std::vector<RTreeEntry> out;
  tree.SearchKNearest({0.0, 0.0}, 50, &out);
  EXPECT_EQ(out.size(), 5u);
  // Sorted by distance: ids 0..4 in order.
  for (RecordId id = 0; id < 5; ++id) EXPECT_EQ(out[id].id, id);
}

struct KnnParam {
  std::size_t dims;
  std::size_t count;
  std::size_t k;
};

class KnnMatchesBruteForce : public ::testing::TestWithParam<KnnParam> {};

TEST_P(KnnMatchesBruteForce, DistancesAgree) {
  const KnnParam param = GetParam();
  RTree tree(param.dims, RTreeOptions{.max_entries = 8});
  Rng rng(500 + param.count + param.k);
  std::vector<RTreeEntry> reference;
  for (RecordId id = 0; id < param.count; ++id) {
    const Mbr box = RandomBox(&rng, param.dims);
    ASSERT_TRUE(tree.Insert(box, id).ok());
    reference.push_back({box, id});
  }
  for (int trial = 0; trial < 25; ++trial) {
    Point q(param.dims);
    for (std::size_t d = 0; d < param.dims; ++d) {
      q[d] = rng.NextDouble(-60, 60);
    }
    std::vector<RTreeEntry> out;
    tree.SearchKNearest(q, param.k, &out);
    ASSERT_EQ(out.size(), std::min(param.k, param.count));
    // Brute-force k smallest MinDists.
    std::vector<double> dists;
    for (const auto& e : reference) dists.push_back(e.box.MinDist2(q));
    std::sort(dists.begin(), dists.end());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_NEAR(out[i].box.MinDist2(q), dists[i], 1e-9)
          << "rank " << i;
      if (i > 0) {
        EXPECT_GE(out[i].box.MinDist2(q), out[i - 1].box.MinDist2(q));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KnnMatchesBruteForce,
    ::testing::Values(KnnParam{2, 100, 1}, KnnParam{2, 500, 10},
                      KnnParam{4, 300, 5}, KnnParam{1, 200, 25},
                      KnnParam{8, 200, 3}));

// ---------------------------------------------------------------------------
// PatternQueryEngine::TopKOnline
// ---------------------------------------------------------------------------

class TopKTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = MakeRandomWalkDataset(4, 512, 777);
    StardustConfig config;
    config.transform = TransformKind::kDwt;
    config.normalization = Normalization::kUnitSphere;
    config.coefficients = 4;
    config.r_max = dataset_.r_max;
    config.base_window = 16;
    config.num_levels = 4;
    config.history = 1024;
    config.box_capacity = 8;
    config.update_period = 1;
    config.index_features = true;
    core_ = std::move(Stardust::Create(config)).value();
    for (std::size_t i = 0; i < dataset_.num_streams(); ++i) {
      const StreamId id = core_->AddStream();
      for (double v : dataset_.streams[i]) {
        ASSERT_TRUE(core_->Append(id, v).ok());
      }
    }
  }

  /// All (stream, end, distance) sorted ascending — the oracle.
  std::vector<PatternMatch> Oracle(const std::vector<double>& query) const {
    std::vector<PatternMatch> all;
    const std::vector<double> qn =
        NormalizeUnitSphere(query, dataset_.r_max);
    for (std::size_t s = 0; s < dataset_.num_streams(); ++s) {
      const auto& stream = dataset_.streams[s];
      for (std::size_t start = 0; start + query.size() <= stream.size();
           ++start) {
        std::vector<double> window(stream.begin() + start,
                                   stream.begin() + start + query.size());
        const std::vector<double> wn =
            NormalizeUnitSphere(window, dataset_.r_max);
        all.push_back({static_cast<StreamId>(s),
                       start + query.size() - 1,
                       std::sqrt(Dist2(qn, wn))});
      }
    }
    std::sort(all.begin(), all.end(),
              [](const PatternMatch& a, const PatternMatch& b) {
                return a.distance < b.distance;
              });
    return all;
  }

  Dataset dataset_;
  std::unique_ptr<Stardust> core_;
};

TEST_F(TopKTest, TopOneIsTheNearestWindow) {
  PatternQueryEngine engine(*core_);
  const auto queries = MakeQueryWorkload(5, {48, 80}, 3);
  for (const auto& query : queries) {
    const auto result = engine.TopKOnline(query, 1);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().size(), 1u);
    const auto oracle = Oracle(query);
    EXPECT_NEAR(result.value()[0].distance, oracle[0].distance, 1e-9);
  }
}

TEST_F(TopKTest, TopKDistancesMatchOracle) {
  PatternQueryEngine engine(*core_);
  // Query drawn from the data so near matches exist.
  std::vector<double> query(dataset_.streams[1].begin() + 100,
                            dataset_.streams[1].begin() + 100 + 64);
  for (std::size_t k : {1u, 5u, 20u}) {
    const auto result = engine.TopKOnline(query, k);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().size(), k);
    const auto oracle = Oracle(query);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(result.value()[i].distance, oracle[i].distance, 1e-9)
          << "rank " << i << " k " << k;
    }
  }
}

TEST_F(TopKTest, ZeroKReturnsEmpty) {
  PatternQueryEngine engine(*core_);
  std::vector<double> query(48, 1.0);
  const auto result = engine.TopKOnline(query, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST_F(TopKTest, InvalidQueryLengthPropagates) {
  PatternQueryEngine engine(*core_);
  EXPECT_FALSE(engine.TopKOnline(std::vector<double>(50, 1.0), 3).ok());
}

}  // namespace
}  // namespace stardust
