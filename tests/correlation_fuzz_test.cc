// Randomized configuration sweep for correlation detection: under random
// (W, levels, f, M, radius) the verified pairs of the final round must
// equal the exact oracle, and candidates must always cover them.
#include <set>

#include <gtest/gtest.h>

#include "baselines/linear_scan.h"
#include "common/rng.h"
#include "core/correlation_monitor.h"
#include "stream/dataset.h"
#include "transform/feature.h"

namespace stardust {
namespace {

class CorrelationConfigFuzz
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorrelationConfigFuzz, FinalRoundMatchesOracle) {
  Rng rng(GetParam() * 977 + 11);
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.base_window = std::size_t{8} << rng.NextUint64(3);  // 8/16/32
  config.num_levels = 3 + rng.NextUint64(3);                 // 3..5
  config.coefficients = std::min<std::size_t>(
      config.base_window / 2, std::size_t{2} << rng.NextUint64(3));
  config.history = config.LevelWindow(config.num_levels - 1);
  config.box_capacity = 1;
  config.update_period = config.base_window;
  ASSERT_TRUE(config.Validate().ok());
  const std::size_t n = config.history;

  const std::size_t m = 4 + rng.NextUint64(6);
  const double radius = 0.2 + rng.NextDouble() * 1.2;

  auto monitor =
      std::move(CorrelationMonitor::Create(config, m, radius)).value();

  // Random-walk streams with one planted near-duplicate pair.
  Dataset dataset = MakeRandomWalkDataset(m, n * 2, GetParam() * 3 + 1);
  for (std::size_t t = 0; t < dataset.length(); ++t) {
    dataset.streams[1][t] =
        dataset.streams[0][t] + 0.02 * rng.NextGaussian();
  }
  std::vector<double> values(m);
  for (std::size_t t = 0; t < dataset.length(); ++t) {
    for (std::size_t i = 0; i < m; ++i) values[i] = dataset.streams[i][t];
    ASSERT_TRUE(monitor->AppendAll(values).ok());
  }

  const auto oracle = ScanCorrelatedPairs(dataset, n, radius);
  std::set<std::pair<std::uint32_t, std::uint32_t>> expected(
      oracle.begin(), oracle.end());
  std::set<std::pair<std::uint32_t, std::uint32_t>> verified;
  for (const auto& pair : monitor->last_round()) {
    if (pair.verified) verified.insert({pair.a, pair.b});
  }
  ASSERT_EQ(verified, expected)
      << "W=" << config.base_window << " J=" << config.num_levels
      << " f=" << config.coefficients << " m=" << m << " r=" << radius;
  EXPECT_TRUE(expected.count({0, 1}) == 1);  // the planted pair is real
  EXPECT_GE(monitor->stats().candidates, monitor->stats().true_pairs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrelationConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace stardust
