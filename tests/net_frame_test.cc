// Wire-tier robustness: codec round trips (with hostile-input rejection)
// and FrameParser behavior on truncated, torn, and bit-flipped streams —
// one damaged frame must never poison a connection (docs/NETWORK.md).
#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "net/codec.h"

namespace stardust::net {
namespace {

// --- Codec round trips --------------------------------------------------

TEST(CodecTest, HelloRoundTripsBothRoles) {
  HelloMessage producer;
  producer.role = PeerRole::kProducer;
  HelloMessage out;
  ASSERT_TRUE(DecodeHello(EncodeHello(producer), &out).ok());
  EXPECT_EQ(out.role, PeerRole::kProducer);
  EXPECT_TRUE(out.subscriber_id.empty());

  HelloMessage subscriber;
  subscriber.role = PeerRole::kSubscriber;
  subscriber.subscriber_id = "dashboard-7";
  subscriber.resume_after = 123456789;
  ASSERT_TRUE(DecodeHello(EncodeHello(subscriber), &out).ok());
  EXPECT_EQ(out.role, PeerRole::kSubscriber);
  EXPECT_EQ(out.subscriber_id, "dashboard-7");
  EXPECT_EQ(out.resume_after, 123456789u);
}

TEST(CodecTest, HelloAckRoundTrips) {
  HelloAckMessage msg;
  msg.next_seq = 42;
  msg.resume_from = 17;
  HelloAckMessage out;
  ASSERT_TRUE(DecodeHelloAck(EncodeHelloAck(msg), &out).ok());
  EXPECT_EQ(out.next_seq, 42u);
  EXPECT_EQ(out.resume_from, 17u);
}

TEST(CodecTest, BatchRoundTripsRunsExactly) {
  BatchMessage msg;
  msg.runs.push_back({7, {1.5, -2.25, 0.0, 1e300}});
  msg.runs.push_back({0, {}});  // empty run is legal
  msg.runs.push_back({4294967295u, {3.14159}});
  BatchMessage out;
  ASSERT_TRUE(DecodeBatch(EncodeBatch(msg), &out).ok());
  ASSERT_EQ(out.runs.size(), 3u);
  EXPECT_EQ(out.runs[0].stream, 7u);
  EXPECT_EQ(out.runs[0].values, msg.runs[0].values);
  EXPECT_TRUE(out.runs[1].values.empty());
  EXPECT_EQ(out.runs[2].stream, 4294967295u);
  EXPECT_EQ(out.runs[2].values, msg.runs[2].values);
  EXPECT_EQ(out.total_values(), 5u);
}

TEST(CodecTest, RemainingMessagesRoundTrip) {
  BatchAckMessage ack{100, 3};
  BatchAckMessage ack_out;
  ASSERT_TRUE(DecodeBatchAck(EncodeBatchAck(ack), &ack_out).ok());
  EXPECT_EQ(ack_out.accepted, 100u);
  EXPECT_EQ(ack_out.dropped, 3u);

  AlertFrameMessage alert;
  alert.seq = 991;
  alert.json = "{\"seq\":991,\"query\":1}";
  AlertFrameMessage alert_out;
  ASSERT_TRUE(DecodeAlertFrame(EncodeAlertFrame(alert), &alert_out).ok());
  EXPECT_EQ(alert_out.seq, 991u);
  EXPECT_EQ(alert_out.json, alert.json);

  SubscriberAckMessage sub{556};
  SubscriberAckMessage sub_out;
  ASSERT_TRUE(
      DecodeSubscriberAck(EncodeSubscriberAck(sub), &sub_out).ok());
  EXPECT_EQ(sub_out.acked_seq, 556u);

  ErrorMessage err{9, "wrong role"};
  ErrorMessage err_out;
  ASSERT_TRUE(DecodeError(EncodeError(err), &err_out).ok());
  EXPECT_EQ(err_out.code, 9);
  EXPECT_EQ(err_out.message, "wrong role");
}

// Every strict prefix of every encoding must fail its own decoder — a
// torn payload surfaces as InvalidArgument, never as a crash or a bogus
// partially-filled message.
TEST(CodecTest, EveryTruncationOfEveryMessageIsRejected) {
  HelloMessage hello;
  hello.role = PeerRole::kSubscriber;
  hello.subscriber_id = "sub";
  hello.resume_after = 5;
  BatchMessage batch;
  batch.runs.push_back({3, {1.0, 2.0}});
  AlertFrameMessage alert;
  alert.seq = 8;
  alert.json = "{}";
  const auto check = [](const std::string& bytes, auto decode) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_FALSE(decode(bytes.substr(0, len)).ok())
          << "prefix length " << len << " of " << bytes.size();
    }
  };
  check(EncodeHello(hello), [](const std::string& p) {
    HelloMessage m;
    return DecodeHello(p, &m);
  });
  check(EncodeHelloAck({1, 2}), [](const std::string& p) {
    HelloAckMessage m;
    return DecodeHelloAck(p, &m);
  });
  check(EncodeBatch(batch), [](const std::string& p) {
    BatchMessage m;
    return DecodeBatch(p, &m);
  });
  check(EncodeBatchAck({4, 1}), [](const std::string& p) {
    BatchAckMessage m;
    return DecodeBatchAck(p, &m);
  });
  check(EncodeAlertFrame(alert), [](const std::string& p) {
    AlertFrameMessage m;
    return DecodeAlertFrame(p, &m);
  });
  check(EncodeSubscriberAck({7}), [](const std::string& p) {
    SubscriberAckMessage m;
    return DecodeSubscriberAck(p, &m);
  });
  check(EncodeError({1, "x"}), [](const std::string& p) {
    ErrorMessage m;
    return DecodeError(p, &m);
  });
}

TEST(CodecTest, TrailingBytesAreRejected) {
  HelloAckMessage out;
  EXPECT_FALSE(DecodeHelloAck(EncodeHelloAck({1, 2}) + "x", &out).ok());
  BatchMessage batch;
  batch.runs.push_back({0, {1.0}});
  BatchMessage bout;
  EXPECT_FALSE(
      DecodeBatch(EncodeBatch(batch) + std::string(1, '\0'), &bout).ok());
}

// Hostile declared lengths must be rejected before any allocation.
TEST(CodecTest, RejectsHostileDeclaredLengths) {
  {
    Writer w;  // Hello with a 1 GiB subscriber id
    w.U8(static_cast<std::uint8_t>(PeerRole::kSubscriber));
    w.U64(std::uint64_t{1} << 30);
    HelloMessage out;
    EXPECT_FALSE(DecodeHello(w.buffer(), &out).ok());
  }
  {
    Writer w;  // Batch declaring 2^60 runs
    w.U64(std::uint64_t{1} << 60);
    w.U32(0);
    BatchMessage out;
    EXPECT_FALSE(DecodeBatch(w.buffer(), &out).ok());
  }
  {
    Writer w;  // Hello with an unknown role
    w.U8(99);
    w.U64(0);
    w.U64(0);
    HelloMessage out;
    EXPECT_FALSE(DecodeHello(w.buffer(), &out).ok());
  }
}

// --- Frame parser -------------------------------------------------------

std::string Payload(const char* text) { return std::string(text); }

TEST(FrameParserTest, RoundTripsSingleAndBackToBackFrames) {
  FrameParser parser;
  const std::string a = EncodeFrame(FrameType::kHello, Payload("one"));
  const std::string b = EncodeFrame(FrameType::kBatch, Payload("two!"));
  const std::string wire = a + b;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(parser.Next(&frame));
  EXPECT_EQ(frame.type, static_cast<std::uint16_t>(FrameType::kHello));
  EXPECT_EQ(frame.payload, "one");
  ASSERT_TRUE(parser.Next(&frame));
  EXPECT_EQ(frame.type, static_cast<std::uint16_t>(FrameType::kBatch));
  EXPECT_EQ(frame.payload, "two!");
  EXPECT_FALSE(parser.Next(&frame));
  EXPECT_EQ(parser.corrupt_frames(), 0u);
  EXPECT_EQ(parser.skipped_bytes(), 0u);
}

TEST(FrameParserTest, EmptyPayloadFrameIsLegal) {
  FrameParser parser;
  const std::string wire = EncodeFrame(FrameType::kBatchAck, "");
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(parser.Next(&frame));
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameParserTest, ByteAtATimeFeedingEmitsWholeFrames) {
  FrameParser parser;
  const std::string wire =
      EncodeFrame(FrameType::kAlert, Payload("{\"seq\":1}"));
  Frame frame;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.Feed(wire.data() + i, 1);
    EXPECT_FALSE(parser.Next(&frame));
  }
  parser.Feed(wire.data() + wire.size() - 1, 1);
  ASSERT_TRUE(parser.Next(&frame));
  EXPECT_EQ(frame.payload, "{\"seq\":1}");
}

TEST(FrameParserTest, ResyncsPastGarbagePrefix) {
  FrameParser parser;
  const std::string garbage = "this is not a frame at all.......";
  const std::string good = EncodeFrame(FrameType::kHello, Payload("ok"));
  const std::string wire = garbage + good;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(parser.Next(&frame));
  EXPECT_EQ(frame.payload, "ok");
  EXPECT_EQ(parser.skipped_bytes(), garbage.size());
}

TEST(FrameParserTest, DropsBitFlippedPayloadAndKeepsTheStream) {
  FrameParser parser;
  std::string bad = EncodeFrame(FrameType::kBatch, Payload("payload"));
  bad[kFrameHeaderBytes + 2] ^= 0x10;  // flip one payload bit
  const std::string good = EncodeFrame(FrameType::kBatch, Payload("clean"));
  const std::string wire = bad + good;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(parser.Next(&frame));
  EXPECT_EQ(frame.payload, "clean");
  EXPECT_EQ(parser.corrupt_frames(), 1u);
  EXPECT_EQ(parser.skipped_bytes(), bad.size());
  EXPECT_FALSE(parser.Next(&frame));
}

TEST(FrameParserTest, FlippedChecksumDropsTheFrame) {
  FrameParser parser;
  std::string bad = EncodeFrame(FrameType::kHello, Payload("abc"));
  bad[12] ^= 0x01;  // checksum field
  const std::string good = EncodeFrame(FrameType::kHello, Payload("def"));
  const std::string wire = bad + good;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(parser.Next(&frame));
  EXPECT_EQ(frame.payload, "def");
  EXPECT_EQ(parser.corrupt_frames(), 1u);
}

TEST(FrameParserTest, CorruptedMagicSkipsToTheNextFrame) {
  FrameParser parser;
  std::string bad = EncodeFrame(FrameType::kHello, Payload("lost"));
  bad[0] ^= 0xff;
  const std::string good = EncodeFrame(FrameType::kHello, Payload("found"));
  const std::string wire = bad + good;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(parser.Next(&frame));
  EXPECT_EQ(frame.payload, "found");
  EXPECT_EQ(parser.skipped_bytes(), bad.size());
}

TEST(FrameParserTest, TornHeaderResynchronizesOnTheNextFrame) {
  FrameParser parser;
  const std::string torn =
      EncodeFrame(FrameType::kBatch, Payload("never finished"))
          .substr(0, 10);
  const std::string good = EncodeFrame(FrameType::kBatch, Payload("whole"));
  const std::string wire = torn + good;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(parser.Next(&frame));
  EXPECT_EQ(frame.payload, "whole");
  EXPECT_EQ(parser.skipped_bytes(), torn.size());
}

TEST(FrameParserTest, AbsurdDeclaredLengthIsNotTrusted) {
  FrameParser parser(/*max_frame_bytes=*/1024);
  std::string bad = EncodeFrame(FrameType::kBatch, Payload("x"));
  bad[8] = bad[9] = bad[10] = bad[11] = static_cast<char>(0xff);
  const std::string good = EncodeFrame(FrameType::kBatch, Payload("sane"));
  const std::string wire = bad + good;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(parser.Next(&frame));
  EXPECT_EQ(frame.payload, "sane");
  EXPECT_FALSE(parser.Next(&frame));
}

TEST(FrameParserTest, WrongVersionIsSkipped) {
  FrameParser parser;
  std::string bad = EncodeFrame(FrameType::kHello, Payload("v2?"));
  bad[4] = 0x7f;
  const std::string good = EncodeFrame(FrameType::kHello, Payload("v1"));
  const std::string wire = bad + good;
  parser.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(parser.Next(&frame));
  EXPECT_EQ(frame.payload, "v1");
}

// Property test: random batches, framed and fed in random-sized chunks
// with occasional injected garbage between frames, all survive exactly.
TEST(FrameParserTest, RandomizedChunkedStreamRoundTrips) {
  std::mt19937 rng(20260808);
  FrameParser parser;
  std::vector<BatchMessage> sent;
  std::string wire;
  for (int i = 0; i < 50; ++i) {
    BatchMessage batch;
    const std::size_t runs = 1 + rng() % 4;
    for (std::size_t r = 0; r < runs; ++r) {
      StreamRun run;
      run.stream = rng() % 64;
      const std::size_t n = rng() % 16;
      for (std::size_t v = 0; v < n; ++v) {
        run.values.push_back(
            static_cast<double>(rng()) / 1e3 - 2e6);
      }
      batch.runs.push_back(std::move(run));
    }
    if (rng() % 5 == 0) {
      // Injected garbage: the parser must resync past it. Avoid 'S' so
      // the garbage cannot open a fake magic that swallows real bytes.
      wire += std::string(1 + rng() % 7, 'g');
    }
    wire += EncodeFrame(FrameType::kBatch, EncodeBatch(batch));
    sent.push_back(std::move(batch));
  }
  std::size_t offset = 0;
  std::size_t decoded = 0;
  Frame frame;
  while (offset < wire.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng() % 37, wire.size() - offset);
    parser.Feed(wire.data() + offset, chunk);
    offset += chunk;
    while (parser.Next(&frame)) {
      BatchMessage got;
      ASSERT_TRUE(DecodeBatch(frame.payload, &got).ok());
      ASSERT_LT(decoded, sent.size());
      ASSERT_EQ(got.runs.size(), sent[decoded].runs.size());
      for (std::size_t r = 0; r < got.runs.size(); ++r) {
        EXPECT_EQ(got.runs[r].stream, sent[decoded].runs[r].stream);
        EXPECT_EQ(got.runs[r].values, sent[decoded].runs[r].values);
      }
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, sent.size());
  EXPECT_EQ(parser.corrupt_frames(), 0u);
}

}  // namespace
}  // namespace stardust::net
