#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stardust {
namespace {

Mbr RandomBox(Rng* rng, std::size_t dims, double span, double max_extent) {
  Point lo(dims), hi(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    lo[d] = rng->NextDouble(-span, span);
    hi[d] = lo[d] + rng->NextDouble(0.0, max_extent);
  }
  return Mbr(lo, hi);
}

std::vector<RecordId> SortedIds(std::vector<RTreeEntry> entries) {
  std::vector<RecordId> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree(2);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  std::vector<RTreeEntry> out;
  tree.SearchIntersects(Mbr({-1, -1}, {1, 1}), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, InsertRejectsBadBoxes) {
  RTree tree(2);
  EXPECT_FALSE(tree.Insert(Mbr(3), 1).ok());   // wrong dims
  EXPECT_FALSE(tree.Insert(Mbr(2), 1).ok());   // empty box
  EXPECT_TRUE(tree.Insert(Mbr::FromPoint({0.0, 0.0}), 1).ok());
}

TEST(RTreeTest, SingleInsertIsFindable) {
  RTree tree(2);
  const Mbr box({0.0, 0.0}, {1.0, 1.0});
  ASSERT_TRUE(tree.Insert(box, 7).ok());
  std::vector<RTreeEntry> out;
  tree.SearchIntersects(Mbr({0.5, 0.5}, {2.0, 2.0}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 7u);
  EXPECT_TRUE(out[0].box == box);
}

TEST(RTreeTest, DeleteMissingReturnsNotFound) {
  RTree tree(2);
  ASSERT_TRUE(tree.Insert(Mbr::FromPoint({1.0, 1.0}), 1).ok());
  EXPECT_EQ(tree.Delete(Mbr::FromPoint({2.0, 2.0}), 1).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(tree.Delete(Mbr::FromPoint({1.0, 1.0}), 9).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(tree.Delete(Mbr::FromPoint({1.0, 1.0}), 1).ok());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(RTreeTest, GrowsBeyondOneNodeAndStaysConsistent) {
  RTree tree(2, RTreeOptions{.max_entries = 8});
  Rng rng(42);
  for (RecordId id = 0; id < 500; ++id) {
    ASSERT_TRUE(tree.Insert(RandomBox(&rng, 2, 100.0, 2.0), id).ok());
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GT(tree.height(), 1u);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
}

TEST(RTreeTest, ForEachVisitsEverything) {
  RTree tree(1, RTreeOptions{.max_entries = 4});
  for (RecordId id = 0; id < 64; ++id) {
    ASSERT_TRUE(
        tree.Insert(Mbr::FromPoint({static_cast<double>(id)}), id).ok());
  }
  std::vector<RecordId> seen;
  tree.ForEach([&](const RTreeEntry& e) { seen.push_back(e.id); });
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 64u);
  for (RecordId id = 0; id < 64; ++id) EXPECT_EQ(seen[id], id);
}

struct RTreeParam {
  std::size_t dims;
  std::size_t max_entries;
  std::size_t count;
  SplitPolicy split = SplitPolicy::kRStar;
};

class RTreeMatchesBruteForce : public ::testing::TestWithParam<RTreeParam> {};

TEST_P(RTreeMatchesBruteForce, IntersectionQueries) {
  const RTreeParam param = GetParam();
  RTree tree(param.dims, RTreeOptions{.max_entries = param.max_entries,
                                      .split_policy = param.split});
  Rng rng(1000 + param.count);
  std::vector<RTreeEntry> reference;
  for (RecordId id = 0; id < param.count; ++id) {
    const Mbr box = RandomBox(&rng, param.dims, 50.0, 5.0);
    ASSERT_TRUE(tree.Insert(box, id).ok());
    reference.push_back({box, id});
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int q = 0; q < 50; ++q) {
    const Mbr query = RandomBox(&rng, param.dims, 50.0, 20.0);
    std::vector<RTreeEntry> out;
    tree.SearchIntersects(query, &out);
    std::vector<RecordId> expected;
    for (const auto& e : reference) {
      if (e.box.Intersects(query)) expected.push_back(e.id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(SortedIds(out), expected);
  }
}

TEST_P(RTreeMatchesBruteForce, WithinRadiusQueries) {
  const RTreeParam param = GetParam();
  RTree tree(param.dims, RTreeOptions{.max_entries = param.max_entries,
                                      .split_policy = param.split});
  Rng rng(2000 + param.count);
  std::vector<RTreeEntry> reference;
  for (RecordId id = 0; id < param.count; ++id) {
    const Mbr box = RandomBox(&rng, param.dims, 50.0, 5.0);
    ASSERT_TRUE(tree.Insert(box, id).ok());
    reference.push_back({box, id});
  }
  for (int q = 0; q < 50; ++q) {
    Point center(param.dims);
    for (std::size_t d = 0; d < param.dims; ++d) {
      center[d] = rng.NextDouble(-50, 50);
    }
    const double radius = rng.NextDouble(0.0, 30.0);
    std::vector<RTreeEntry> out;
    tree.SearchWithin(center, radius, &out);
    std::vector<RecordId> expected;
    for (const auto& e : reference) {
      if (e.box.MinDist2(center) <= radius * radius) {
        expected.push_back(e.id);
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(SortedIds(out), expected);
  }
}

TEST_P(RTreeMatchesBruteForce, DeleteHalfThenQueriesStillExact) {
  const RTreeParam param = GetParam();
  RTree tree(param.dims, RTreeOptions{.max_entries = param.max_entries,
                                      .split_policy = param.split});
  Rng rng(3000 + param.count);
  std::vector<RTreeEntry> reference;
  for (RecordId id = 0; id < param.count; ++id) {
    const Mbr box = RandomBox(&rng, param.dims, 50.0, 5.0);
    ASSERT_TRUE(tree.Insert(box, id).ok());
    reference.push_back({box, id});
  }
  // Delete a random half.
  std::vector<RTreeEntry> kept;
  for (const auto& e : reference) {
    if (rng.NextDouble() < 0.5) {
      ASSERT_TRUE(tree.Delete(e.box, e.id).ok());
    } else {
      kept.push_back(e);
    }
  }
  EXPECT_EQ(tree.size(), kept.size());
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  for (int q = 0; q < 30; ++q) {
    const Mbr query = RandomBox(&rng, param.dims, 50.0, 20.0);
    std::vector<RTreeEntry> out;
    tree.SearchIntersects(query, &out);
    std::vector<RecordId> expected;
    for (const auto& e : kept) {
      if (e.box.Intersects(query)) expected.push_back(e.id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(SortedIds(out), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RTreeMatchesBruteForce,
    ::testing::Values(RTreeParam{1, 8, 200}, RTreeParam{2, 8, 500},
                      RTreeParam{2, 32, 500}, RTreeParam{4, 16, 300},
                      RTreeParam{8, 32, 300}, RTreeParam{2, 8, 2000},
                      RTreeParam{2, 8, 500, SplitPolicy::kQuadratic},
                      RTreeParam{4, 16, 300, SplitPolicy::kQuadratic},
                      RTreeParam{2, 8, 2000, SplitPolicy::kQuadratic}));

TEST(RTreeTest, SlidingWindowWorkloadStaysBalanced) {
  // Insert/delete in FIFO order, the exact pattern Stardust's history
  // expiry produces.
  RTree tree(2, RTreeOptions{.max_entries = 16});
  Rng rng(77);
  std::vector<std::pair<Mbr, RecordId>> live;
  RecordId next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    const Mbr box = RandomBox(&rng, 2, 10.0, 1.0);
    ASSERT_TRUE(tree.Insert(box, next_id).ok());
    live.emplace_back(box, next_id);
    ++next_id;
    if (live.size() > 256) {
      ASSERT_TRUE(tree.Delete(live.front().first, live.front().second).ok());
      live.erase(live.begin());
    }
  }
  EXPECT_EQ(tree.size(), 256u);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
}

TEST(RTreeTest, DuplicateBoxesWithDistinctIdsCoexist) {
  RTree tree(2, RTreeOptions{.max_entries = 4});
  const Mbr box = Mbr::FromPoint({1.0, 1.0});
  for (RecordId id = 0; id < 30; ++id) {
    ASSERT_TRUE(tree.Insert(box, id).ok());
  }
  std::vector<RTreeEntry> out;
  tree.SearchWithin({1.0, 1.0}, 0.0, &out);
  EXPECT_EQ(out.size(), 30u);
  ASSERT_TRUE(tree.Delete(box, 17).ok());
  out.clear();
  tree.SearchWithin({1.0, 1.0}, 0.0, &out);
  EXPECT_EQ(out.size(), 29u);
}

}  // namespace
}  // namespace stardust
