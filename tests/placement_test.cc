// Elastic stream placement: the PlacementTable routing map, live
// MigrateStream correctness (state equivalence against an unmigrated
// twin engine), the rebalancer thread, and the checkpoint v6 placement
// manifest — including crash injection on the placement file write and
// pre-v6 manifest compatibility.
#include "engine/placement.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.h"
#include "common/serialize.h"
#include "engine/checkpoint.h"
#include "engine/engine.h"
#include "stream/bursty_source.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

namespace fs = std::filesystem;

StardustConfig StreamConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 4;
  config.history = 200;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

std::vector<WindowThreshold> Thresholds(double lambda) {
  BurstySource source(21);
  const std::vector<double> training = source.Take(3000);
  return TrainThresholds(AggregateKind::kSum, training, {10, 20, 40},
                         lambda);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::unique_ptr<IngestEngine> MakeEngine(std::size_t streams,
                                         std::size_t shards,
                                         const std::string& restore_dir = {}) {
  EngineConfig econfig;
  econfig.num_shards = shards;
  Result<std::unique_ptr<IngestEngine>> engine = IngestEngine::Create(
      StreamConfig(), Thresholds(2.0), streams, econfig, restore_dir);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return engine.ok() ? std::move(engine).value() : nullptr;
}

std::vector<BurstySource> Sources(std::size_t streams, std::uint64_t seed) {
  std::vector<BurstySource> sources;
  sources.reserve(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    sources.emplace_back(seed + s);
  }
  return sources;
}

void Feed(IngestEngine* engine, std::vector<BurstySource>* sources,
          int count) {
  for (int t = 0; t < count; ++t) {
    for (StreamId s = 0; s < engine->num_streams(); ++s) {
      ASSERT_TRUE(engine->Post(s, (*sources)[s].Next()).ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());
}

/// Every externally observable monitoring answer of the two engines must
/// agree exactly — including the serialized per-stream state bytes.
void ExpectSameAnswers(const IngestEngine& a, const IngestEngine& b) {
  ASSERT_EQ(a.num_streams(), b.num_streams());
  ASSERT_EQ(a.num_windows(), b.num_windows());
  for (StreamId s = 0; s < a.num_streams(); ++s) {
    const AlarmStats want = a.StreamTotal(s);
    const AlarmStats got = b.StreamTotal(s);
    EXPECT_EQ(got.candidates, want.candidates) << "stream " << s;
    EXPECT_EQ(got.true_alarms, want.true_alarms) << "stream " << s;
    EXPECT_EQ(got.checks, want.checks) << "stream " << s;
    EXPECT_EQ(b.StreamAppendCount(s), a.StreamAppendCount(s))
        << "stream " << s;
    std::string want_state;
    std::string got_state;
    ASSERT_TRUE(a.DebugStreamState(s, &want_state).ok()) << "stream " << s;
    ASSERT_TRUE(b.DebugStreamState(s, &got_state).ok()) << "stream " << s;
    EXPECT_EQ(got_state, want_state)
        << "serialized state diverged on stream " << s;
  }
  for (std::size_t w = 0; w < a.num_windows(); ++w) {
    auto want = a.CurrentlyAlarming(w);
    auto got = b.CurrentlyAlarming(w);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), want.value()) << "window " << w;
  }
}

// --- PlacementTable unit -------------------------------------------------

TEST(PlacementTableTest, DefaultsToModuloHash) {
  PlacementTable table(7, 3);
  EXPECT_EQ(table.epoch(), 0u);
  for (StreamId s = 0; s < 7; ++s) {
    EXPECT_EQ(table.ShardOf(s), s % 3) << "stream " << s;
  }
}

TEST(PlacementTableTest, SetShardBumpsEpochAndKeepsOldSnapshotsValid) {
  PlacementTable table(4, 2);
  const PlacementTable::Snapshot* before = table.Acquire();
  ASSERT_TRUE(table.SetShard(1, 0).ok());
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_EQ(table.ShardOf(1), 0u);
  // The retired snapshot is immutable and still readable (wait-free
  // readers may hold it across the flip).
  EXPECT_EQ(before->epoch, 0u);
  EXPECT_EQ(before->shard_of[1], 1u);
  ASSERT_TRUE(table.SetShard(1, 1).ok());
  EXPECT_EQ(table.epoch(), 2u);
  EXPECT_EQ(table.ShardOf(1), 1u);
}

TEST(PlacementTableTest, RejectsOutOfRangeArguments) {
  PlacementTable table(4, 2);
  EXPECT_FALSE(table.SetShard(4, 0).ok());
  EXPECT_FALSE(table.SetShard(0, 2).ok());
  EXPECT_FALSE(table.Reset(1, {0, 1, 0}).ok());     // wrong length
  EXPECT_FALSE(table.Reset(1, {0, 1, 0, 2}).ok());  // shard out of range
  ASSERT_TRUE(table.Reset(5, {1, 0, 1, 0}).ok());
  EXPECT_EQ(table.epoch(), 5u);
  EXPECT_EQ(table.ShardOf(0), 1u);
}

TEST(PlacementTableTest, ToJsonCarriesEpochAndMap) {
  PlacementTable table(3, 2);
  ASSERT_TRUE(table.SetShard(2, 1).ok());
  const std::string json = table.ToJson();
  EXPECT_NE(json.find("\"epoch\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"num_shards\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard_of\":[0,1,1]"), std::string::npos) << json;
}

// --- Live migration ------------------------------------------------------

TEST(MigrateStreamTest, RejectsInvalidArguments) {
  auto engine = MakeEngine(4, 2);
  ASSERT_NE(engine, nullptr);
  EXPECT_FALSE(engine->MigrateStream(99, 0, 1).ok());  // unknown stream
  EXPECT_FALSE(engine->MigrateStream(0, 0, 9).ok());   // bad target
  EXPECT_FALSE(engine->MigrateStream(0, 9, 1).ok());   // bad source
  EXPECT_FALSE(engine->MigrateStream(0, 0, 0).ok());   // from == to
  EXPECT_FALSE(engine->MigrateStream(0, 1, 0).ok());   // wrong owner
  ASSERT_TRUE(engine->Stop().ok());
  EXPECT_FALSE(engine->MigrateStream(0, 1).ok());  // stopped engine
}

TEST(MigrateStreamTest, RefusesPausedShards) {
  auto engine = MakeEngine(4, 2);
  ASSERT_NE(engine, nullptr);
  engine->Pause();
  EXPECT_FALSE(engine->MigrateStream(0, 1).ok());
  engine->Resume();
  EXPECT_TRUE(engine->MigrateStream(0, 1).ok());
  ASSERT_TRUE(engine->Stop().ok());
}

// The core elasticity property: a migrated engine answers every
// monitoring question exactly as an unmigrated twin fed the identical
// data, and the moved stream's serialized state is byte-identical.
TEST(MigrateStreamTest, MigratedEngineMatchesUnmigratedTwin) {
  const std::size_t kStreams = 6;
  auto subject = MakeEngine(kStreams, 3);
  auto golden = MakeEngine(kStreams, 3);
  ASSERT_NE(subject, nullptr);
  ASSERT_NE(golden, nullptr);
  auto subject_sources = Sources(kStreams, 500);
  auto golden_sources = Sources(kStreams, 500);

  Feed(subject.get(), &subject_sources, 300);
  Feed(golden.get(), &golden_sources, 300);

  // Move stream 0 off its home shard, feed more, move it again (to the
  // third shard), feed, and finally return it home: state must survive
  // arbitrary itineraries, not just one hop.
  ASSERT_TRUE(subject->MigrateStream(0, 0, 1).ok());
  EXPECT_EQ(subject->ShardOf(0), 1u);
  EXPECT_EQ(subject->placement().epoch(), 1u);
  Feed(subject.get(), &subject_sources, 200);
  Feed(golden.get(), &golden_sources, 200);

  ASSERT_TRUE(subject->MigrateStream(0, 2).ok());
  ASSERT_TRUE(subject->MigrateStream(5, 0).ok());
  Feed(subject.get(), &subject_sources, 200);
  Feed(golden.get(), &golden_sources, 200);

  ASSERT_TRUE(subject->MigrateStream(0, 0).ok());
  Feed(subject.get(), &subject_sources, 100);
  Feed(golden.get(), &golden_sources, 100);

  EXPECT_EQ(subject->metrics().migrations.load(), 4u);
  EXPECT_GT(subject->metrics().migrated_bytes.load(), 0u);
  ExpectSameAnswers(*golden, *subject);
  ASSERT_TRUE(subject->Stop().ok());
  ASSERT_TRUE(golden->Stop().ok());
}

// Migration under live concurrent producers: no tuple is lost or
// duplicated while the placement flips mid-ingest.
TEST(MigrateStreamTest, ConservesTuplesUnderConcurrentProducers) {
  const std::size_t kStreams = 4;
  auto engine = MakeEngine(kStreams, 2);
  ASSERT_NE(engine, nullptr);
  constexpr int kPerProducer = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&engine, p] {
      BurstySource source(900 + p);
      for (int t = 0; t < kPerProducer; ++t) {
        const StreamId s = static_cast<StreamId>((p * 2 + t) % kStreams);
        ASSERT_TRUE(engine->Post(s, source.Next()).ok());
      }
    });
  }
  // Bounce stream 0 between the shards while the producers run.
  for (int hop = 0; hop < 6; ++hop) {
    const Status moved =
        engine->MigrateStream(0, engine->ShardOf(0) == 0 ? 1 : 0);
    ASSERT_TRUE(moved.ok()) << moved.ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& p : producers) p.join();
  const Status flushed = engine->Flush();
  ASSERT_TRUE(flushed.ok()) << flushed.ToString();
  std::uint64_t appended = 0;
  for (StreamId s = 0; s < kStreams; ++s) {
    appended += engine->StreamAppendCount(s);
  }
  EXPECT_EQ(appended, 2u * kPerProducer);
  ASSERT_TRUE(engine->Stop().ok());
}

// --- Rebalancer ----------------------------------------------------------

// A hot-skewed workload (every active stream hashes to shard 0) must
// make the background rebalancer move load off the hot shard.
TEST(RebalancerTest, MovesAStreamOffTheHotShard) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  econfig.rebalance_period_ms = 5;
  econfig.rebalance_min_delta = 64;
  Result<std::unique_ptr<IngestEngine>> created = IngestEngine::Create(
      StreamConfig(), Thresholds(2.0), 4, econfig);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();

  // Streams 0 and 2 both live on shard 0 under the modulo default; feed
  // them exclusively until a rebalance tick separates them.
  BurstySource source(77);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (engine->metrics().migrations.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int t = 0; t < 512; ++t) {
      ASSERT_TRUE(engine->Post(0, source.Next()).ok());
      ASSERT_TRUE(engine->Post(2, source.Next()).ok());
    }
    ASSERT_TRUE(engine->Flush().ok());
  }
  EXPECT_GE(engine->metrics().migrations.load(), 1u);
  // The two hot streams no longer share shard 0.
  EXPECT_NE(engine->ShardOf(0), engine->ShardOf(2));
  ASSERT_TRUE(engine->Stop().ok());
}

// --- Checkpoint v6 -------------------------------------------------------

TEST(PlacementCheckpointTest, FileNameEncodesSeq) {
  EXPECT_EQ(CheckpointPlacementFileName(3), "placement-ck3.plc");
  EXPECT_EQ(CheckpointPlacementFileName(12), "placement-ck12.plc");
}

TEST(PlacementCheckpointTest, ManifestRoundTripCarriesPlacement) {
  CheckpointManifest manifest;
  manifest.seq = 4;
  manifest.num_streams = 2;
  manifest.num_shards = 1;
  manifest.shards = {{"shard-0-ck4.snap", 1, 1, 1}};
  manifest.placement_file = "placement-ck4.plc";
  manifest.placement_checksum = 0xbeef;
  Result<CheckpointManifest> parsed =
      ParseManifest(SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().placement_file, "placement-ck4.plc");
  EXPECT_EQ(parsed.value().placement_checksum, 0xbeefULL);
}

// A version-5 manifest (everything through the net-state entry, no
// placement fields) must still parse; it restores with the modulo
// default placement.
TEST(PlacementCheckpointTest, ParsesVersion5ManifestsWithoutPlacement) {
  Writer payload;
  payload.U64(7);     // seq
  payload.U64(2);     // num_streams
  payload.U64(1);     // num_shards
  payload.U64(1024);  // queue_capacity
  payload.U64(8);     // max_producers
  payload.U64(256);   // max_batch
  payload.U8(0);      // overload
  payload.U64(1);     // shard entries
  const std::string file = "shard-0-ck7.snap";
  payload.U64(file.size());
  payload.Bytes(file.data(), file.size());
  payload.U64(3);      // epoch
  payload.U64(99);     // appended
  payload.U64(0xabc);  // checksum
  payload.U64(0);      // queries file (none)
  payload.U64(0);      // queries checksum
  payload.U64(0);      // feature entries
  payload.U64(0);      // net file (none)
  payload.U64(0);      // net checksum

  Writer envelope;
  const char magic[4] = {'S', 'D', 'M', 'F'};
  envelope.Bytes(magic, sizeof(magic));
  envelope.U32(5);  // the pre-placement manifest version
  envelope.U64(Fnv1a(payload.buffer()));
  envelope.Bytes(payload.buffer().data(), payload.buffer().size());

  Result<CheckpointManifest> parsed =
      ParseManifest(std::move(envelope.TakeBuffer()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().seq, 7u);
  EXPECT_TRUE(parsed.value().placement_file.empty());
  EXPECT_EQ(parsed.value().placement_checksum, 0u);
}

// Checkpoint after migrations, restore, and the restored engine both
// keeps the migrated placement and matches the origin's answers.
TEST(PlacementCheckpointTest, RestoreKeepsMigratedPlacement) {
  const std::string dir = FreshDir("placement_restore");
  const std::size_t kStreams = 5;
  auto origin = MakeEngine(kStreams, 2);
  ASSERT_NE(origin, nullptr);
  auto sources = Sources(kStreams, 640);
  Feed(origin.get(), &sources, 400);
  ASSERT_TRUE(origin->MigrateStream(0, 1).ok());
  ASSERT_TRUE(origin->MigrateStream(3, 0).ok());
  Feed(origin.get(), &sources, 100);
  ASSERT_TRUE(origin->Checkpoint(dir).ok());

  auto restored = MakeEngine(kStreams, 2, dir);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->placement().epoch(), origin->placement().epoch());
  for (StreamId s = 0; s < kStreams; ++s) {
    EXPECT_EQ(restored->ShardOf(s), origin->ShardOf(s)) << "stream " << s;
  }
  ExpectSameAnswers(*origin, *restored);

  // The restored engine keeps working — including migrating the moved
  // stream again.
  auto origin_more = sources;
  Feed(origin.get(), &sources, 100);
  Feed(restored.get(), &origin_more, 100);
  ASSERT_TRUE(restored->MigrateStream(0, 0).ok());
  EXPECT_EQ(restored->StreamAppendCount(0), 600u);
  ASSERT_TRUE(origin->Stop().ok());
  ASSERT_TRUE(restored->Stop().ok());
}

// A crash while writing the placement file must not produce a corrupt
// "latest" checkpoint: recovery falls back to the previous complete one.
TEST(PlacementCheckpointTest, CrashOnPlacementWriteKeepsPreviousCheckpoint) {
  const std::string dir = FreshDir("placement_crash");
  const std::size_t kStreams = 4;
  auto origin = MakeEngine(kStreams, 2);
  ASSERT_NE(origin, nullptr);
  auto sources = Sources(kStreams, 820);
  Feed(origin.get(), &sources, 200);
  ASSERT_TRUE(origin->Checkpoint(dir).ok());

  ASSERT_TRUE(origin->MigrateStream(1, 0).ok());
  Feed(origin.get(), &sources, 200);
  SetAtomicFileHookForTest(
      [](AtomicWritePhase, const std::string& path) {
        return path.find("placement-ck") == std::string::npos;
      });
  EXPECT_FALSE(origin->Checkpoint(dir).ok());
  SetAtomicFileHookForTest(nullptr);
  EXPECT_GE(origin->metrics().checkpoint_failures.load(), 1u);

  // Recovery lands on checkpoint 1: 200 rows per stream, modulo layout.
  auto restored = MakeEngine(kStreams, 2, dir);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->placement().epoch(), 0u);
  for (StreamId s = 0; s < kStreams; ++s) {
    EXPECT_EQ(restored->StreamAppendCount(s), 200u) << "stream " << s;
    EXPECT_EQ(restored->ShardOf(s), s % 2) << "stream " << s;
  }
  ASSERT_TRUE(origin->Stop().ok());
  ASSERT_TRUE(restored->Stop().ok());
}

}  // namespace
}  // namespace stardust
