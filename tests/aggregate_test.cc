#include "transform/aggregate.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stardust {
namespace {

std::vector<double> RandomWindow(Rng* rng, std::size_t n) {
  std::vector<double> x(n);
  for (double& v : x) v = rng->NextDouble(-10.0, 10.0);
  return x;
}

TEST(AggregateTest, FeatureDims) {
  EXPECT_EQ(AggregateFeatureDims(AggregateKind::kSum), 1u);
  EXPECT_EQ(AggregateFeatureDims(AggregateKind::kMax), 1u);
  EXPECT_EQ(AggregateFeatureDims(AggregateKind::kMin), 1u);
  EXPECT_EQ(AggregateFeatureDims(AggregateKind::kSpread), 2u);
}

TEST(AggregateTest, Names) {
  EXPECT_STREQ(AggregateKindName(AggregateKind::kSum), "SUM");
  EXPECT_STREQ(AggregateKindName(AggregateKind::kSpread), "SPREAD");
}

TEST(AggregateTest, ExactFeatures) {
  const std::vector<double> w{3.0, -1.0, 4.0, 1.0};
  EXPECT_EQ(AggregateExactFeature(AggregateKind::kSum, w), Point{7.0});
  EXPECT_EQ(AggregateExactFeature(AggregateKind::kMax, w), Point{4.0});
  EXPECT_EQ(AggregateExactFeature(AggregateKind::kMin, w), Point{-1.0});
  EXPECT_EQ(AggregateExactFeature(AggregateKind::kSpread, w),
            (Point{4.0, -1.0}));
}

TEST(AggregateTest, ScalarValues) {
  EXPECT_EQ(AggregateScalar(AggregateKind::kSum, {7.0}), 7.0);
  EXPECT_EQ(AggregateScalar(AggregateKind::kSpread, {4.0, -1.0}), 5.0);
}

// Lemma 4.1: merging the exact features of the two halves gives the exact
// feature of the whole window.
TEST(AggregatePropertyTest, MergeFeaturesIsExact) {
  Rng rng(31);
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin,
        AggregateKind::kSpread}) {
    for (int iter = 0; iter < 200; ++iter) {
      const std::size_t half = 1 + rng.NextUint64(32);
      const std::vector<double> a = RandomWindow(&rng, half);
      const std::vector<double> b = RandomWindow(&rng, half);
      std::vector<double> whole = a;
      whole.insert(whole.end(), b.begin(), b.end());
      const Point merged =
          AggregateMergeFeatures(kind, AggregateExactFeature(kind, a),
                                 AggregateExactFeature(kind, b));
      const Point direct = AggregateExactFeature(kind, whole);
      ASSERT_EQ(merged.size(), direct.size());
      for (std::size_t i = 0; i < merged.size(); ++i) {
        // SUM accumulates in a different order: allow rounding slack.
        EXPECT_NEAR(merged[i], direct[i],
                    1e-12 * (1.0 + std::abs(direct[i])));
      }
    }
  }
}

// Lemma 4.2: the merged extent of two boxes brackets the merged feature of
// any pair of features inside them.
TEST(AggregatePropertyTest, MergeExtentsBracketInnerFeatures) {
  Rng rng(32);
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin,
        AggregateKind::kSpread}) {
    const std::size_t dims = AggregateFeatureDims(kind);
    for (int iter = 0; iter < 300; ++iter) {
      // Build each box the way the system does: bound a handful of valid
      // features (max >= min for SPREAD) and sample one of them.
      auto random_feature_box = [&](Point* sample) {
        Mbr box(dims);
        std::vector<Point> features;
        for (int k = 0; k < 4; ++k) {
          Point f(dims);
          for (std::size_t d = 0; d < dims; ++d) {
            f[d] = rng.NextDouble(-10, 10);
          }
          if (kind == AggregateKind::kSpread && f[0] < f[1]) {
            std::swap(f[0], f[1]);
          }
          box.Expand(f);
          features.push_back(std::move(f));
        }
        *sample = features[rng.NextUint64(features.size())];
        return box;
      };
      Point fa, fb;
      const Mbr ba = random_feature_box(&fa);
      const Mbr bb = random_feature_box(&fb);
      const Mbr merged_box = AggregateMergeExtents(kind, ba, bb);
      const Point merged_feature = AggregateMergeFeatures(kind, fa, fb);
      for (std::size_t d = 0; d < dims; ++d) {
        EXPECT_GE(merged_feature[d], merged_box.lo(d) - 1e-12);
        EXPECT_LE(merged_feature[d], merged_box.hi(d) + 1e-12);
      }
      // And the scalar bound brackets the scalar value.
      const ScalarInterval bound = AggregateScalarBound(kind, merged_box);
      const double scalar = AggregateScalar(kind, merged_feature);
      EXPECT_GE(scalar, bound.lo - 1e-12);
      EXPECT_LE(scalar, bound.hi + 1e-12);
    }
  }
}

TEST(AggregateTest, SpreadScalarBoundClampsAtZero) {
  // max in [0, 1], min in [0.5, 2]: lower spread bound would be -2.
  const Mbr extent({0.0, 0.5}, {1.0, 2.0});
  const ScalarInterval bound =
      AggregateScalarBound(AggregateKind::kSpread, extent);
  EXPECT_EQ(bound.lo, 0.0);
  EXPECT_EQ(bound.hi, 0.5);
}

TEST(AggregateTest, SumExtentMergeAddsEndpoints) {
  const Mbr a({1.0}, {2.0});
  const Mbr b({10.0}, {20.0});
  const Mbr merged = AggregateMergeExtents(AggregateKind::kSum, a, b);
  EXPECT_EQ(merged.lo(0), 11.0);
  EXPECT_EQ(merged.hi(0), 22.0);
}

}  // namespace
}  // namespace stardust
