// Scenario harness end-to-end (src/dsl/scenario.h), sketch state across
// engine checkpoint/restore, and query-registry version compatibility.
#include "dsl/scenario.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "query/sinks.h"

namespace stardust {
namespace {

using dsl::ParseScenario;
using dsl::RunScenario;
using dsl::ScenarioDef;
using dsl::ScenarioReport;

// A compact scenario: one stream bursts through eight distinct codes, so
// the sum monitor and the distinct monitor each alarm exactly once.
constexpr char kScenario[] = R"(scenario: unit
streams: 2
base_window: 4
shards: 2
monitors:
  - name: burst
    measure: sum
    window: 8
    assess: "[0, 10]"
  - name: variety
    measure: distinct
    window: 16
    assess: "<5"
expect:
  min_alerts: 2
  monitors:
    - name: burst
      min: 1
      max: 4
    - name: variety
      min: 1
      max: 4
tuples: |
)";

std::string BuildScenarioText() {
  std::string text = kScenario;
  char row[64];
  for (int t = 0; t < 96; ++t) {
    double s0 = 0.0;
    if (t >= 40 && t < 72) s0 = static_cast<double>(3 + t % 8);
    std::snprintf(row, sizeof(row), "  %g, 1\n", s0);
    text += row;
  }
  return text;
}

TEST(ScenarioTest, ParsesAndRunsEndToEnd) {
  Result<ScenarioDef> def = ParseScenario(BuildScenarioText(), "unit.yaml");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def.value().name, "unit");
  EXPECT_EQ(def.value().streams, 2u);
  EXPECT_EQ(def.value().rows.size(), 96u);
  ASSERT_EQ(def.value().monitors.size(), 2u);

  std::vector<Alert> alerts;
  std::mutex mu;
  Result<ScenarioReport> report =
      RunScenario(def.value(), [&](const Alert& alert) {
        std::lock_guard<std::mutex> lock(mu);
        alerts.push_back(alert);
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().monitors.size(), 2u);
  EXPECT_GE(report.value().monitors[0].alerts, 1u);  // burst
  EXPECT_GE(report.value().monitors[1].alerts, 1u);  // variety
  EXPECT_EQ(report.value().total_alerts,
            report.value().monitors[0].alerts +
                report.value().monitors[1].alerts);
  // Every alert came from the bursting stream.
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(alerts.size(), report.value().total_alerts);
  for (const Alert& alert : alerts) EXPECT_EQ(alert.stream, 0u);
}

TEST(ScenarioTest, ViolatedExpectationFailsWithEveryBound) {
  std::string text = BuildScenarioText();
  // Demand an impossible alert count from the healthy monitor bounds.
  const std::string from = "min_alerts: 2";
  text.replace(text.find(from), from.size(), "min_alerts: 1000");
  Result<ScenarioDef> def = ParseScenario(text, "unit.yaml");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  Result<ScenarioReport> report = RunScenario(def.value());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(report.status().message().find("total alerts"),
            std::string::npos)
      << report.status().ToString();
}

TEST(ScenarioTest, ParserDiagnosesBadTupleRows) {
  std::string text = BuildScenarioText();
  text += "  3, oops\n";  // malformed CSV cell on the last row
  Result<ScenarioDef> def = ParseScenario(text, "unit.yaml");
  ASSERT_FALSE(def.ok());
  // The diagnostic names the file and the absolute row line.
  EXPECT_NE(def.status().message().find("unit.yaml:"), std::string::npos);
  EXPECT_NE(def.status().message().find("not a number"), std::string::npos)
      << def.status().ToString();

  std::string wide = BuildScenarioText();
  wide += "  1, 2, 3\n";  // wrong column count
  def = ParseScenario(wide, "unit.yaml");
  ASSERT_FALSE(def.ok());
  EXPECT_NE(def.status().message().find("3 column(s)"), std::string::npos)
      << def.status().ToString();
}

// --- Sketch state across checkpoint/restore -----------------------------

class SketchCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("stardust_sketch_ck_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(SketchCheckpointTest, MeasuresSurviveRestore) {
  StardustConfig fleet;
  fleet.transform = TransformKind::kAggregate;
  fleet.aggregate = AggregateKind::kSum;
  fleet.base_window = 4;
  fleet.num_levels = 1;
  fleet.history = 64;
  fleet.box_capacity = 4;
  fleet.update_period = 1;
  std::vector<WindowThreshold> thresholds = {{4, 1e18}};
  EngineConfig econfig;
  econfig.num_shards = 2;
  econfig.max_batch = 4;

  SketchConfig config;
  config.kind = SketchKind::kDistinct;
  config.window = 16;
  AssessRange assess;
  assess.hi = 5.0;
  assess.hi_inclusive = false;  // conform while distinct < 5

  std::uint64_t appends_before = 0;
  {
    Result<std::unique_ptr<IngestEngine>> engine =
        IngestEngine::Create(fleet, thresholds, 2, econfig);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE(
        engine.value()->RegisterQuery(QuerySpec::Sketch(config, assess))
            .ok());
    // High-variety feed: the distinct window fills and alarms.
    for (int t = 0; t < 32; ++t) {
      ASSERT_TRUE(engine.value()->Post(0, static_cast<double>(t % 8)).ok());
      ASSERT_TRUE(engine.value()->Post(1, 1.0).ok());
    }
    ASSERT_TRUE(engine.value()->Flush().ok());
    ASSERT_TRUE(engine.value()->Checkpoint(dir_.string()).ok());
    for (const ShardMetricsSnapshot& m : engine.value()->ShardMetrics()) {
      appends_before += m.sketch_appends;
      EXPECT_EQ(m.sketch_slots, 1u);
    }
    EXPECT_EQ(appends_before, 64u);
    ASSERT_TRUE(engine.value()->Stop().ok());
  }

  // Restore: the sketch slots come back warm — measures are Ready with
  // their append counters intact — and the rising-edge state comes back
  // too (manifest v6), so the alarm that was already announced before
  // the checkpoint is not re-announced.
  Result<std::unique_ptr<IngestEngine>> engine = IngestEngine::Create(
      fleet, thresholds, 2, econfig, dir_.string());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::uint64_t appends_after = 0;
  for (const ShardMetricsSnapshot& m : engine.value()->ShardMetrics()) {
    appends_after += m.sketch_appends;
    EXPECT_EQ(m.sketch_slots, 1u);
  }
  EXPECT_EQ(appends_after, appends_before);

  // The registry came back with the sketch query already registered —
  // no re-registration needed.
  EXPECT_EQ(engine.value()->queries().snapshot()->sketch.size(), 1u);
  auto ring = std::make_shared<RingSink>();
  engine.value()->alerts().AddSink(ring);
  // Constant feed: the distinct window collapses to one value, the
  // condition conforms, and the restored edge state resets. The alarm
  // was announced before the checkpoint, so nothing fires here.
  for (int t = 0; t < 20; ++t) {
    ASSERT_TRUE(engine.value()->Post(0, 0.0).ok());
    ASSERT_TRUE(engine.value()->Post(1, 1.0).ok());
  }
  ASSERT_TRUE(engine.value()->Flush().ok());
  EXPECT_TRUE(ring->Snapshot().empty())
      << "restored edge state should suppress the already-announced alarm";
  // High-variety feed: the distinct count crosses the bound again and
  // the fresh rising edge alerts — without re-warming a full window,
  // because the measure state survived the restore.
  for (int t = 0; t < 16; ++t) {
    ASSERT_TRUE(engine.value()->Post(0, static_cast<double>(t % 8)).ok());
    ASSERT_TRUE(engine.value()->Post(1, 1.0).ok());
  }
  ASSERT_TRUE(engine.value()->Flush().ok());
  ASSERT_TRUE(engine.value()->Stop().ok());
  const std::vector<Alert> alerts = ring->Snapshot();
  ASSERT_FALSE(alerts.empty())
      << "a fresh rising edge after restore should alarm";
  EXPECT_EQ(alerts[0].kind, QueryKind::kSketch);
  EXPECT_EQ(alerts[0].stream, 0u);
  EXPECT_GE(alerts[0].value, 5.0);
}

// --- QuerySpec version compatibility ------------------------------------

TEST(QuerySpecCompatTest, V2PayloadsSynthesizeTheLegacyAssessRange) {
  QuerySpec spec = QuerySpec::Aggregate(32, 7.5);
  spec.WithAlertRate(2.0, 3);
  Writer writer;
  spec.SaveTo(&writer, 2);  // pre-assess layout
  QuerySpec restored;
  Reader reader(writer.buffer());
  ASSERT_TRUE(restored.RestoreFrom(&reader, 2).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored.kind, QueryKind::kAggregate);
  EXPECT_EQ(restored.window, 32u);
  EXPECT_EQ(restored.threshold, 7.5);
  // Synthesized conformance range: (-inf, threshold), upper exclusive.
  EXPECT_EQ(restored.assess.hi, 7.5);
  EXPECT_FALSE(restored.assess.hi_inclusive);
  EXPECT_TRUE(restored.assess.Contains(7.49));
  EXPECT_FALSE(restored.assess.Contains(7.5));
  EXPECT_EQ(restored.sketch, SketchConfig{});
  // A v2 reader never sees the sketch kind.
  QuerySpec sketch_spec = QuerySpec::Sketch(SketchConfig{.window = 8}, {});
  Writer w3;
  sketch_spec.SaveTo(&w3, 3);
  QuerySpec as_v2;
  Reader r3(w3.buffer());
  EXPECT_FALSE(as_v2.RestoreFrom(&r3, 2).ok());
}

TEST(QuerySpecCompatTest, V3RoundTripsAssessAndSketch) {
  SketchConfig config;
  config.kind = SketchKind::kQuantile;
  config.window = 64;
  config.q = 0.95;
  AssessRange assess;
  assess.lo = 0.0;
  assess.hi = 3.0;
  assess.lo_inclusive = false;
  QuerySpec spec = QuerySpec::Sketch(config, assess);
  Writer writer;
  spec.SaveTo(&writer, 3);
  QuerySpec restored;
  Reader reader(writer.buffer());
  ASSERT_TRUE(restored.RestoreFrom(&reader, 3).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored.kind, QueryKind::kSketch);
  EXPECT_EQ(restored.sketch, config);
  EXPECT_EQ(restored.assess, assess);
  EXPECT_EQ(restored.window, 64u);
}

}  // namespace
}  // namespace stardust
