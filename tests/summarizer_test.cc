#include "core/summarizer.h"

#include <gtest/gtest.h>

#include "stream/random_walk.h"

namespace stardust {
namespace {

StardustConfig DwtOnline(std::size_t c) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 2;
  config.r_max = 110.0;
  config.base_window = 8;
  config.num_levels = 4;  // windows 8, 16, 32, 64
  config.history = 256;
  config.box_capacity = c;
  config.update_period = 1;
  return config;
}

StardustConfig AggregateOnline(AggregateKind kind, std::size_t c) {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = kind;
  config.base_window = 10;
  config.num_levels = 4;  // windows 10, 20, 40, 80
  config.history = 400;
  config.box_capacity = c;
  config.update_period = 1;
  return config;
}

// The single-pass incremental computation (Figure 1(b)): with c = 1 every
// level's merged feature is EXACT — it equals the feature computed
// directly from the raw window (Lemmas 4.1 / A.1).
TEST(SummarizerTest, IncrementalDwtFeaturesAreExactWithUnitBoxes) {
  StreamSummarizer summarizer(DwtOnline(1));
  RandomWalkSource source(5);
  for (int t = 0; t < 200; ++t) {
    summarizer.Append(source.Next(), nullptr, nullptr);
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t w = summarizer.config().LevelWindow(j);
      if (summarizer.now() < w) continue;
      const FeatureBox* box = summarizer.thread(j).Find(t);
      ASSERT_NE(box, nullptr) << "level " << j << " t " << t;
      Result<Point> exact = summarizer.ExactFeature(t, w);
      ASSERT_TRUE(exact.ok());
      for (std::size_t d = 0; d < exact.value().size(); ++d) {
        EXPECT_NEAR(box->extent.lo(d), exact.value()[d], 1e-9);
        EXPECT_NEAR(box->extent.hi(d), exact.value()[d], 1e-9);
      }
    }
  }
}

TEST(SummarizerTest, IncrementalAggregatesAreExactWithUnitBoxes) {
  for (AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin,
        AggregateKind::kSpread}) {
    StreamSummarizer summarizer(AggregateOnline(kind, 1));
    RandomWalkSource source(6);
    for (int t = 0; t < 200; ++t) {
      summarizer.Append(source.Next(), nullptr, nullptr);
      for (std::size_t j = 0; j < 4; ++j) {
        const std::size_t w = summarizer.config().LevelWindow(j);
        if (summarizer.now() < w) continue;
        const FeatureBox* box = summarizer.thread(j).Find(t);
        ASSERT_NE(box, nullptr);
        Result<Point> exact = summarizer.ExactFeature(t, w);
        ASSERT_TRUE(exact.ok());
        for (std::size_t d = 0; d < exact.value().size(); ++d) {
          EXPECT_NEAR(box->extent.lo(d), exact.value()[d], 1e-9);
        }
      }
    }
  }
}

// The central approximation guarantee (Lemmas 4.2 / A.2): with boxes of
// any capacity, the extent at every level CONTAINS the exact feature for
// every window it summarizes.
class SummarizerContainment : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(SummarizerContainment, DwtExtentsContainExactFeatures) {
  StreamSummarizer summarizer(DwtOnline(GetParam()));
  RandomWalkSource source(7);
  for (int t = 0; t < 300; ++t) {
    summarizer.Append(source.Next(), nullptr, nullptr);
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t w = summarizer.config().LevelWindow(j);
      if (summarizer.now() < w) continue;
      const FeatureBox* box = summarizer.thread(j).Find(t);
      ASSERT_NE(box, nullptr);
      Result<Point> exact = summarizer.ExactFeature(t, w);
      ASSERT_TRUE(exact.ok());
      for (std::size_t d = 0; d < exact.value().size(); ++d) {
        EXPECT_GE(exact.value()[d], box->extent.lo(d) - 1e-9)
            << "level " << j << " t " << t << " c " << GetParam();
        EXPECT_LE(exact.value()[d], box->extent.hi(d) + 1e-9);
      }
    }
  }
}

TEST_P(SummarizerContainment, AggregateExtentsContainExactFeatures) {
  StreamSummarizer summarizer(
      AggregateOnline(AggregateKind::kSpread, GetParam()));
  RandomWalkSource source(8);
  for (int t = 0; t < 300; ++t) {
    summarizer.Append(source.Next(), nullptr, nullptr);
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t w = summarizer.config().LevelWindow(j);
      if (summarizer.now() < w) continue;
      const FeatureBox* box = summarizer.thread(j).Find(t);
      ASSERT_NE(box, nullptr);
      Result<Point> exact = summarizer.ExactFeature(t, w);
      ASSERT_TRUE(exact.ok());
      for (std::size_t d = 0; d < exact.value().size(); ++d) {
        EXPECT_GE(exact.value()[d], box->extent.lo(d) - 1e-9);
        EXPECT_LE(exact.value()[d], box->extent.hi(d) + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BoxCapacities, SummarizerContainment,
                         ::testing::Values(1, 2, 5, 16));

TEST(SummarizerTest, BatchModeComputesExactFeaturesEveryWArrivals) {
  StardustConfig config = DwtOnline(1);
  config.update_period = config.base_window;  // batch
  StreamSummarizer summarizer(config);
  RandomWalkSource source(9);
  for (int t = 0; t < 200; ++t) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  for (std::size_t j = 0; j < 4; ++j) {
    const std::size_t w = config.LevelWindow(j);
    std::size_t found = 0;
    for (std::uint64_t t = 0; t < 200; ++t) {
      const FeatureBox* box = summarizer.thread(j).Find(t);
      if (box == nullptr) continue;
      ++found;
      // Feature times are aligned: (t + 1 - w) % W == 0.
      EXPECT_EQ((t + 1 - w) % config.base_window, 0u);
      Result<Point> exact = summarizer.ExactFeature(t, w);
      ASSERT_TRUE(exact.ok());
      for (std::size_t d = 0; d < exact.value().size(); ++d) {
        EXPECT_NEAR(box->extent.lo(d), exact.value()[d], 1e-9);
      }
    }
    EXPECT_EQ(found, (200 - w) / config.base_window + 1);
  }
}

TEST(SummarizerTest, ExactLevelsModeMatchesIncrementalWithUnitBoxes) {
  StardustConfig incremental = DwtOnline(1);
  StardustConfig exact = DwtOnline(1);
  exact.exact_levels = true;
  StreamSummarizer a(incremental), b(exact);
  RandomWalkSource source(10);
  for (int t = 0; t < 150; ++t) {
    const double v = source.Next();
    a.Append(v, nullptr, nullptr);
    b.Append(v, nullptr, nullptr);
  }
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::uint64_t t = 100; t < 150; ++t) {
      const FeatureBox* ba = a.thread(j).Find(t);
      const FeatureBox* bb = b.thread(j).Find(t);
      ASSERT_EQ(ba == nullptr, bb == nullptr);
      if (ba == nullptr) continue;
      for (std::size_t d = 0; d < ba->extent.dims(); ++d) {
        EXPECT_NEAR(ba->extent.lo(d), bb->extent.lo(d), 1e-9);
        EXPECT_NEAR(ba->extent.hi(d), bb->extent.hi(d), 1e-9);
      }
    }
  }
}

TEST(SummarizerTest, SealedAndExpiredBoxesAreReported) {
  StardustConfig config = DwtOnline(4);
  config.history = 64;  // equal to the top window: aggressive expiry
  StreamSummarizer summarizer(config);
  RandomWalkSource source(11);
  std::vector<BoxRef> sealed, expired;
  for (int t = 0; t < 500; ++t) {
    summarizer.Append(source.Next(), &sealed, &expired);
  }
  EXPECT_GT(sealed.size(), 0u);
  EXPECT_GT(expired.size(), 0u);
  // Every expired box was sealed earlier.
  EXPECT_LE(expired.size(), sealed.size());
  // Retained state is bounded by the history (space property of
  // Theorem 4.3: Θ(w_j / c) boxes per level).
  for (std::size_t j = 0; j < config.num_levels; ++j) {
    EXPECT_LE(summarizer.thread(j).box_count(),
              config.history / config.box_capacity + 2);
  }
}

TEST(SummarizerTest, GetWindowErrors) {
  StreamSummarizer summarizer(DwtOnline(1));
  RandomWalkSource source(12);
  for (int t = 0; t < 50; ++t) summarizer.Append(source.Next(), nullptr,
                                                 nullptr);
  std::vector<double> out;
  EXPECT_FALSE(summarizer.GetWindow(100, 8, &out).ok());  // future
  EXPECT_FALSE(summarizer.GetWindow(3, 8, &out).ok());    // before start
  EXPECT_FALSE(summarizer.GetWindow(49, 0, &out).ok());   // empty
  EXPECT_TRUE(summarizer.GetWindow(49, 50, &out).ok());
  EXPECT_EQ(out.size(), 50u);
}

}  // namespace
}  // namespace stardust
