// Alert conservation across live migrations: two identical engines —
// one static, one whose streams are shuffled between shards mid-ingest —
// replay the same deterministic data with all four query classes
// registered (aggregate, pattern, correlation, sketch) and must publish
// the identical alert multiset. Batch boundaries are pinned with
// Pause/post/Resume/Flush cycles so the comparison is exact, and
// correlator rounds run only through TriggerCorrelatorRound; migrations
// fire between pinned batches, while the engines run un-paused. Alert
// epochs are excluded from the comparison: the moved stream's shard
// epoch legitimately differs between the layouts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "engine/engine.h"
#include "query/sinks.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

constexpr std::size_t kStreams = 6;
constexpr std::size_t kShards = 3;
constexpr int kSteps = 400;

StardustConfig AggregateConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 4;
  config.history = 200;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

StardustConfig PatternCoreConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 4;
  config.r_max = 8.0;
  config.base_window = 8;
  config.num_levels = 2;
  // Short retention: the planted match expires from the index well
  // before the restore test's checkpoint cut, so the restored engine's
  // empty delivery watermark cannot re-find it.
  config.history = 64;
  config.box_capacity = 1;
  config.update_period = 1;
  config.index_features = true;
  return config;
}

StardustConfig CorrelationCoreConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = 8;
  config.num_levels = 2;
  config.history = 1024;
  config.box_capacity = 1;
  config.update_period = 8;  // T == W: batch algorithm
  return config;
}

// The planted 16-step shape for the pattern query.
std::vector<double> PatternShape() {
  return {1, 5, 2, 8, 3, 7, 4, 6, 1, 5, 2, 8, 3, 7, 4, 6};
}

// Deterministic integer-valued data planting at least one event per
// query class:
//  - streams 0 and 1 share a 5-periodic wave except t in [150, 250) —
//    the correlation pair forms, breaks, re-forms;
//  - stream 2 holds at 1 and bursts to 50 on [100, 140) and [300, 340)
//    — rising edges for the aggregate query;
//  - stream 3 is hash noise with the pattern planted at [200, 216);
//  - streams 4 and 5 are distinct-value ramps whose cardinality swings
//    drive the sketch query out of its assess range.
double ValueAt(StreamId stream, int t) {
  switch (stream) {
    case 0:
      return static_cast<double>(t % 5 + 1);
    case 1:
      if (t >= 150 && t < 250) {
        return static_cast<double>((t * 13 + 7) % 9 + 1);
      }
      return static_cast<double>(t % 5 + 1);
    case 2:
      return ((t >= 100 && t < 140) || (t >= 300 && t < 340)) ? 50.0 : 1.0;
    case 3:
      if (t >= 200 && t < 216) return PatternShape()[t - 200];
      return static_cast<double>((t * 31 + 11) % 10);
    case 4:
      // Low cardinality normally, a burst of fresh values on [120, 180).
      if (t >= 120 && t < 180) return static_cast<double>(1000 + t);
      return static_cast<double>(t % 3);
    default:
      return static_cast<double>(t % 7);
  }
}

std::unique_ptr<IngestEngine> MakeQueryEngine() {
  EngineConfig econfig;
  econfig.num_shards = kShards;
  econfig.start_paused = true;
  econfig.query.enable_patterns = true;
  econfig.query.pattern = PatternCoreConfig();
  econfig.query.enable_correlation = true;
  econfig.query.correlation = CorrelationCoreConfig();
  // Rounds fire only through TriggerCorrelatorRound.
  econfig.query.correlator_period_ms = 3600 * 1000;
  Result<std::unique_ptr<IngestEngine>> engine = IngestEngine::Create(
      AggregateConfig(), {{10, 1e9}, {20, 1e9}}, kStreams, econfig);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return engine.ok() ? std::move(engine).value() : nullptr;
}

void RegisterQueries(IngestEngine* engine) {
  ASSERT_TRUE(
      engine->RegisterQuery(QuerySpec::Aggregate(20, 200.0)).ok());
  ASSERT_TRUE(
      engine->RegisterQuery(QuerySpec::Pattern(PatternShape(), 0.05)).ok());
  ASSERT_TRUE(engine->RegisterQuery(QuerySpec::Correlation(0.5, 0)).ok());
  SketchConfig sketch;
  sketch.kind = SketchKind::kDistinct;
  sketch.window = 40;
  sketch.buckets = 4;
  AssessRange assess;
  assess.hi = 20.0;  // the [120, 180) burst on stream 4 exceeds this
  ASSERT_TRUE(engine->RegisterQuery(QuerySpec::Sketch(sketch, assess)).ok());
}

/// One alert stripped of its epoch (shard epochs legitimately differ
/// between the migrated and static layouts).
using AlertKey = std::tuple<QueryId, int, StreamId, StreamId, std::size_t,
                            std::uint64_t, double, double>;

std::vector<AlertKey> KeysOf(const std::vector<Alert>& alerts) {
  std::vector<AlertKey> keys;
  keys.reserve(alerts.size());
  for (const Alert& alert : alerts) {
    keys.emplace_back(alert.query, static_cast<int>(alert.kind),
                      alert.stream, alert.stream_b, alert.window,
                      alert.end_time, alert.value, alert.threshold);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::size_t CountKind(const std::vector<Alert>& alerts, QueryKind kind) {
  std::size_t n = 0;
  for (const Alert& alert : alerts) n += alert.kind == kind ? 1 : 0;
  return n;
}

/// Feeds one pinned batch (one tuple per stream) to both engines.
void PinnedStep(IngestEngine* subject, IngestEngine* golden, int t) {
  for (StreamId s = 0; s < kStreams; ++s) {
    const double v = ValueAt(s, t);
    ASSERT_TRUE(subject->Post(s, v).ok());
    ASSERT_TRUE(golden->Post(s, v).ok());
  }
  for (IngestEngine* engine : {subject, golden}) {
    engine->Resume();
    ASSERT_TRUE(engine->Flush().ok());
    engine->Pause();
    engine->TriggerCorrelatorRound();
  }
}

TEST(MigrationStressTest, AlertMultisetSurvivesRandomMigrations) {
  auto subject = MakeQueryEngine();
  auto golden = MakeQueryEngine();
  ASSERT_NE(subject, nullptr);
  ASSERT_NE(golden, nullptr);
  auto subject_ring = std::make_shared<RingSink>(1 << 16);
  auto golden_ring = std::make_shared<RingSink>(1 << 16);
  subject->alerts().AddSink(subject_ring);
  golden->alerts().AddSink(golden_ring);
  RegisterQueries(subject.get());
  RegisterQueries(golden.get());

  // Deterministic migration schedule: every 23 steps, the subject moves
  // one stream to the next shard over — including mid-burst (t=115,
  // stream 2 while its aggregate window is rising), mid-pattern (t=207,
  // stream 3 inside the planted shape), mid-divergence (t=161, stream 1
  // while its correlation pair is broken), and mid-sketch-burst (t=138,
  // stream 4 with fresh values in flight).
  std::uint64_t migrations = 0;
  for (int t = 0; t < kSteps; ++t) {
    if (t > 0 && t % 23 == 0) {
      const StreamId victim = static_cast<StreamId>((t / 23) % kStreams);
      const std::size_t from = subject->ShardOf(victim);
      const std::size_t to = (from + 1) % kShards;
      // The engines sit paused between pinned batches; migration needs
      // running workers on both sides.
      subject->Resume();
      const Status moved = subject->MigrateStream(victim, from, to);
      subject->Pause();
      ASSERT_TRUE(moved.ok()) << "t=" << t << ": " << moved.ToString();
      ++migrations;
    }
    PinnedStep(subject.get(), golden.get(), t);
  }
  EXPECT_GE(migrations, 17u);
  ASSERT_TRUE(subject->Stop().ok());
  ASSERT_TRUE(golden->Stop().ok());

  const std::vector<Alert> subject_alerts = subject_ring->Snapshot();
  const std::vector<Alert> golden_alerts = golden_ring->Snapshot();
  // Every class fired: the comparison is not vacuous for any of them.
  EXPECT_GE(CountKind(golden_alerts, QueryKind::kAggregate), 2u);
  EXPECT_GE(CountKind(golden_alerts, QueryKind::kPattern), 1u);
  EXPECT_GE(CountKind(golden_alerts, QueryKind::kCorrelation), 2u);
  EXPECT_GE(CountKind(golden_alerts, QueryKind::kSketch), 1u);
  EXPECT_EQ(KeysOf(subject_alerts), KeysOf(golden_alerts));
  EXPECT_EQ(subject->metrics().migrations.load(), migrations);
}

// The same property under checkpoint/restore: the subject checkpoints
// mid-run with a migrated layout, a restored twin takes over, and the
// combined alert stream still matches the static golden engine.
TEST(MigrationStressTest, RestoredMigratedEngineContinuesTheAlertStream) {
  const std::string dir = ::testing::TempDir() + "/migration_stress_ck";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto subject = MakeQueryEngine();
  auto golden = MakeQueryEngine();
  ASSERT_NE(subject, nullptr);
  ASSERT_NE(golden, nullptr);
  auto subject_ring = std::make_shared<RingSink>(1 << 16);
  auto golden_ring = std::make_shared<RingSink>(1 << 16);
  subject->alerts().AddSink(subject_ring);
  golden->alerts().AddSink(golden_ring);
  RegisterQueries(subject.get());
  RegisterQueries(golden.get());

  constexpr int kCut = 230;  // past the first burst and the pattern plant
  for (int t = 0; t < kCut; ++t) {
    if (t == 100) {
      subject->Resume();
      ASSERT_TRUE(subject->MigrateStream(2, (subject->ShardOf(2) + 1) %
                                                kShards).ok());
      ASSERT_TRUE(subject->MigrateStream(4, (subject->ShardOf(4) + 1) %
                                                kShards).ok());
      subject->Pause();
    }
    PinnedStep(subject.get(), golden.get(), t);
  }
  ASSERT_TRUE(subject->Checkpoint(dir).ok());
  ASSERT_TRUE(subject->Stop().ok());

  EngineConfig econfig;
  econfig.num_shards = kShards;
  econfig.start_paused = true;
  econfig.query.enable_patterns = true;
  econfig.query.pattern = PatternCoreConfig();
  econfig.query.enable_correlation = true;
  econfig.query.correlation = CorrelationCoreConfig();
  econfig.query.correlator_period_ms = 3600 * 1000;
  Result<std::unique_ptr<IngestEngine>> restored_result =
      IngestEngine::Create(AggregateConfig(), {{10, 1e9}, {20, 1e9}},
                           kStreams, econfig, dir);
  ASSERT_TRUE(restored_result.ok()) << restored_result.status().ToString();
  auto restored = std::move(restored_result).value();
  EXPECT_EQ(restored->ShardOf(2), subject->ShardOf(2));
  EXPECT_EQ(restored->ShardOf(4), subject->ShardOf(4));
  auto restored_ring = std::make_shared<RingSink>(1 << 16);
  restored->alerts().AddSink(restored_ring);

  for (int t = kCut; t < kSteps; ++t) {
    PinnedStep(restored.get(), golden.get(), t);
  }
  ASSERT_TRUE(restored->Stop().ok());
  ASSERT_TRUE(golden->Stop().ok());

  std::vector<Alert> combined = subject_ring->Snapshot();
  const std::vector<Alert> tail = restored_ring->Snapshot();
  combined.insert(combined.end(), tail.begin(), tail.end());
  const std::vector<Alert> golden_alerts = golden_ring->Snapshot();
  EXPECT_GE(CountKind(golden_alerts, QueryKind::kAggregate), 2u);
  EXPECT_GE(CountKind(golden_alerts, QueryKind::kSketch), 1u);
  EXPECT_EQ(KeysOf(combined), KeysOf(golden_alerts));
}

}  // namespace
}  // namespace stardust
