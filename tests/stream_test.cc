#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stream/bursty_source.h"
#include "stream/dataset.h"
#include "stream/host_load_source.h"
#include "stream/packet_source.h"
#include "stream/random_walk.h"

namespace stardust {
namespace {

TEST(RandomWalkTest, DeterministicPerSeed) {
  RandomWalkSource a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const double va = a.Next();
    EXPECT_EQ(va, b.Next());
    diverged = diverged || va != c.Next();
  }
  EXPECT_TRUE(diverged);
}

TEST(RandomWalkTest, StepsBoundedByHalf) {
  RandomWalkSource source(7);
  double prev = source.Next();
  for (int i = 0; i < 10000; ++i) {
    const double next = source.Next();
    EXPECT_LE(std::abs(next - prev), 0.5);
    prev = next;
  }
}

TEST(RandomWalkTest, StartsWithinOffsetRange) {
  // x[1] = R + (u - 0.5) with R in [0, 100): first value in (-0.5, 100.5).
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    RandomWalkSource source(seed);
    const double v = source.Next();
    EXPECT_GT(v, -0.5);
    EXPECT_LT(v, 100.5);
  }
}

TEST(BurstySourceTest, NonNegativeCounts) {
  BurstySource source(11);
  for (int i = 0; i < 20000; ++i) EXPECT_GE(source.Next(), 0.0);
}

TEST(BurstySourceTest, BurstsActuallyOccurAndElevateCounts) {
  BurstySourceOptions options;
  options.background_rate = 10.0;
  options.mean_burst_gap = 200.0;
  BurstySource source(13, options);
  double burst_sum = 0.0, calm_sum = 0.0;
  std::uint64_t burst_n = 0, calm_n = 0;
  for (int i = 0; i < 100000; ++i) {
    const double v = source.Next();
    if (source.burst_active()) {
      burst_sum += v;
      ++burst_n;
    } else {
      calm_sum += v;
      ++calm_n;
    }
  }
  ASSERT_GT(burst_n, 0u);
  ASSERT_GT(calm_n, 0u);
  EXPECT_GT(burst_sum / burst_n, calm_sum / calm_n);
  EXPECT_NEAR(calm_sum / calm_n, options.background_rate,
              options.background_rate * 0.2);
}

TEST(PacketSourceTest, NonNegativeAndVariable) {
  PacketSource source(17);
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 50000; ++i) {
    const double v = source.Next();
    EXPECT_GE(v, 0.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi, lo * 1.5 + 1.0);  // regime shifts produce real spread
}

TEST(HostLoadTest, LoadsAreNonNegativeAndAutocorrelated) {
  HostLoadSource source(19);
  std::vector<double> x;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(source.Next());
    EXPECT_GE(x.back(), 0.0);
  }
  // Lag-1 autocorrelation of a smooth load trace should be high.
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= x.size();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    num += (x[i] - mean) * (x[i + 1] - mean);
  }
  for (double v : x) den += (v - mean) * (v - mean);
  EXPECT_GT(num / den, 0.8);
}

TEST(DatasetTest, RandomWalkDatasetShape) {
  const Dataset d = MakeRandomWalkDataset(5, 100, 1);
  EXPECT_EQ(d.num_streams(), 5u);
  EXPECT_EQ(d.length(), 100u);
  for (const auto& s : d.streams) {
    for (double v : s) {
      EXPECT_GE(v, d.r_min);
      EXPECT_LE(v, d.r_max);
    }
  }
}

TEST(DatasetTest, StreamsDifferAcrossSeedsAndIndices) {
  const Dataset d = MakeRandomWalkDataset(3, 50, 2);
  EXPECT_NE(d.streams[0], d.streams[1]);
  const Dataset e = MakeRandomWalkDataset(3, 50, 3);
  EXPECT_NE(d.streams[0], e.streams[0]);
}

TEST(DatasetTest, RescaleMapsToTargetRange) {
  Dataset d = MakeRandomWalkDataset(4, 200, 5);
  RescaleDataset(&d, 1.0);
  EXPECT_EQ(d.r_min, 0.0);
  EXPECT_EQ(d.r_max, 1.0);
  for (const auto& s : d.streams) {
    for (double v : s) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(DatasetTest, QueryWorkloadUsesRequestedLengths) {
  const std::vector<std::size_t> lengths{64, 128, 192};
  const auto queries = MakeQueryWorkload(50, lengths, 9);
  ASSERT_EQ(queries.size(), 50u);
  bool saw[3] = {};
  for (const auto& q : queries) {
    const auto it =
        std::find(lengths.begin(), lengths.end(), q.size());
    ASSERT_NE(it, lengths.end());
    saw[it - lengths.begin()] = true;
  }
  EXPECT_TRUE(saw[0] && saw[1] && saw[2]);
}

TEST(DatasetTest, BurstAndPacketDatasetsAreSingleStream) {
  EXPECT_EQ(MakeBurstDataset(500, 1).num_streams(), 1u);
  EXPECT_EQ(MakePacketDataset(500, 1).num_streams(), 1u);
}

}  // namespace
}  // namespace stardust
