#include "engine/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/fleet_monitor.h"
#include "engine/feature_pipeline.h"
#include "engine/metrics.h"
#include "engine/shard.h"
#include "stream/bursty_source.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

StardustConfig StreamConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 4;
  config.history = 200;
  config.box_capacity = 2;
  config.update_period = 1;
  return config;
}

std::vector<WindowThreshold> Thresholds(double lambda) {
  BurstySource source(21);
  const std::vector<double> training = source.Take(3000);
  return TrainThresholds(AggregateKind::kSum, training, {10, 20, 40},
                         lambda);
}

TEST(IngestEngineTest, CreateValidation) {
  EXPECT_FALSE(
      IngestEngine::Create(StreamConfig(), Thresholds(2.0), 0).ok());
  EXPECT_FALSE(IngestEngine::Create(StreamConfig(), {}, 4).ok());
  EngineConfig bad;
  bad.num_shards = 0;
  EXPECT_FALSE(
      IngestEngine::Create(StreamConfig(), Thresholds(2.0), 4, bad).ok());
  EXPECT_TRUE(
      IngestEngine::Create(StreamConfig(), Thresholds(2.0), 4).ok());
}

TEST(IngestEngineTest, ShardCountIsCappedAtStreamCount) {
  EngineConfig config;
  config.num_shards = 8;
  auto engine = std::move(IngestEngine::Create(StreamConfig(),
                                               Thresholds(2.0), 3, config))
                    .value();
  EXPECT_EQ(engine->num_shards(), 3u);
  EXPECT_EQ(engine->num_streams(), 3u);
  EXPECT_EQ(engine->num_windows(), 3u);
}

// Regression for the shape accessors: num_windows() indexes shards_[0]
// and ShardOf() takes stream modulo the shard count, both of which were
// undefined on an (hypothetically) shardless engine. They are now guarded
// with SD_CHECK/SD_DCHECK; this pins the behavior on the smallest engine
// Create can produce.
TEST(IngestEngineTest, MinimalEngineShapeAccessorsAreSafe) {
  EngineConfig config;
  config.num_shards = 1;
  auto engine = std::move(IngestEngine::Create(StreamConfig(),
                                               Thresholds(2.0), 1, config))
                    .value();
  EXPECT_EQ(engine->num_shards(), 1u);
  EXPECT_EQ(engine->num_streams(), 1u);
  EXPECT_EQ(engine->num_windows(), 3u);
  EXPECT_EQ(engine->ShardOf(0), 0u);
  ASSERT_TRUE(engine->Stop().ok());
}

// The core acceptance property: a 1-shard engine fed by one producer is
// bit-for-bit the same computation as a direct FleetAggregateMonitor
// replay of the same sequence.
TEST(IngestEngineTest, SingleShardMatchesDirectReplay) {
  const std::size_t streams = 4;
  const auto thresholds = Thresholds(2.0);
  auto direct = std::move(FleetAggregateMonitor::Create(
                              StreamConfig(), thresholds, streams))
                    .value();
  EngineConfig econfig;
  econfig.num_shards = 1;
  econfig.queue_capacity = 64;
  auto engine = std::move(IngestEngine::Create(StreamConfig(), thresholds,
                                               streams, econfig))
                    .value();

  std::vector<std::unique_ptr<BurstySource>> sources;
  for (std::uint64_t i = 0; i < streams; ++i) {
    sources.push_back(std::make_unique<BurstySource>(300 + i));
  }
  for (int t = 0; t < 2000; ++t) {
    for (StreamId s = 0; s < streams; ++s) {
      const double v = sources[s]->Next();
      ASSERT_TRUE(direct->Append(s, v).ok());
      ASSERT_TRUE(engine->Post(s, v).ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());

  for (StreamId s = 0; s < streams; ++s) {
    const AlarmStats want = direct->StreamTotal(s);
    const AlarmStats got = engine->StreamTotal(s);
    EXPECT_EQ(got.candidates, want.candidates) << "stream " << s;
    EXPECT_EQ(got.true_alarms, want.true_alarms) << "stream " << s;
    EXPECT_EQ(got.checks, want.checks) << "stream " << s;
    EXPECT_EQ(engine->StreamAppendCount(s), 2000u);
  }
  const AlarmStats want_total = direct->FleetTotal();
  std::vector<ShardStamp> stamps;
  const AlarmStats got_total = engine->FleetTotal(&stamps);
  EXPECT_EQ(got_total.candidates, want_total.candidates);
  EXPECT_EQ(got_total.true_alarms, want_total.true_alarms);
  EXPECT_EQ(got_total.checks, want_total.checks);
  ASSERT_EQ(stamps.size(), 1u);
  EXPECT_EQ(stamps[0].appended, 2000u * streams);

  for (std::size_t w = 0; w < engine->num_windows(); ++w) {
    auto want_alarming = direct->CurrentlyAlarming(w);
    auto got_alarming = engine->CurrentlyAlarming(w);
    ASSERT_TRUE(want_alarming.ok());
    ASSERT_TRUE(got_alarming.ok());
    EXPECT_EQ(got_alarming.value(), want_alarming.value()) << "window " << w;
  }
}

// Sharded and unsharded runs agree too: per-stream monitors are
// independent, so the partitioning must not change any per-stream result.
TEST(IngestEngineTest, ShardedMatchesDirectReplayPerStream) {
  const std::size_t streams = 6;
  const auto thresholds = Thresholds(2.0);
  auto direct = std::move(FleetAggregateMonitor::Create(
                              StreamConfig(), thresholds, streams))
                    .value();
  EngineConfig econfig;
  econfig.num_shards = 3;
  auto engine = std::move(IngestEngine::Create(StreamConfig(), thresholds,
                                               streams, econfig))
                    .value();
  ASSERT_EQ(engine->num_shards(), 3u);

  BurstySource source(77);
  for (int t = 0; t < 1500; ++t) {
    for (StreamId s = 0; s < streams; ++s) {
      const double v = source.Next();
      ASSERT_TRUE(direct->Append(s, v).ok());
      ASSERT_TRUE(engine->Post(s, v).ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());
  for (StreamId s = 0; s < streams; ++s) {
    const AlarmStats want = direct->StreamTotal(s);
    const AlarmStats got = engine->StreamTotal(s);
    EXPECT_EQ(got.candidates, want.candidates) << "stream " << s;
    EXPECT_EQ(got.true_alarms, want.true_alarms) << "stream " << s;
    EXPECT_EQ(got.checks, want.checks) << "stream " << s;
  }
  for (std::size_t w = 0; w < engine->num_windows(); ++w) {
    auto want_alarming = direct->CurrentlyAlarming(w);
    auto got_alarming = engine->CurrentlyAlarming(w);
    ASSERT_TRUE(want_alarming.ok());
    ASSERT_TRUE(got_alarming.ok());
    EXPECT_EQ(got_alarming.value(), want_alarming.value()) << "window " << w;
  }
}

TEST(IngestEngineTest, PostBatchAndValidation) {
  auto engine =
      std::move(IngestEngine::Create(StreamConfig(), Thresholds(2.0), 2))
          .value();
  EXPECT_FALSE(engine->Post(5, 1.0).ok());
  std::vector<StreamValue> batch;
  for (int t = 0; t < 100; ++t) {
    batch.push_back({0, 1.0 * t});
    batch.push_back({1, 2.0 * t});
  }
  ASSERT_TRUE(engine->PostBatch(batch).ok());
  const std::vector<StreamValue> bad_batch{{9, 1.0}};
  EXPECT_FALSE(engine->PostBatch(bad_batch).ok());
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->StreamAppendCount(0), 100u);
  EXPECT_EQ(engine->StreamAppendCount(1), 100u);
  ASSERT_TRUE(engine->Stop().ok());
  EXPECT_FALSE(engine->Post(0, 1.0).ok());
  EXPECT_TRUE(engine->Stop().ok());  // idempotent
}

// Fill a paused engine's queue beyond capacity and check the drop
// counters account for exactly the overflow.
TEST(IngestEngineTest, DropNewestCountsTheOverflow) {
  EngineConfig econfig;
  econfig.num_shards = 1;
  econfig.queue_capacity = 64;  // power of two: exact ring capacity
  econfig.overload = OverloadPolicy::kDropNewest;
  econfig.start_paused = true;  // nothing drains until Resume
  auto engine = std::move(IngestEngine::Create(StreamConfig(),
                                               Thresholds(2.0), 1, econfig))
                    .value();
  const std::uint64_t posts = 64 + 37;
  for (std::uint64_t i = 0; i < posts; ++i) {
    ASSERT_TRUE(engine->Post(0, 1.0).ok());
  }
  EXPECT_EQ(engine->metrics().dropped_newest.load(), 37u);
  engine->Resume();
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->StreamAppendCount(0), 64u);  // the oldest 64 survived
  EXPECT_EQ(engine->metrics().posted.load(), 64u);
  EXPECT_EQ(engine->metrics().appended.load(), 64u);
  EXPECT_EQ(engine->metrics().dropped_oldest.load(), 0u);
}

TEST(IngestEngineTest, DropOldestKeepsTheFreshestData) {
  EngineConfig econfig;
  econfig.num_shards = 1;
  econfig.queue_capacity = 64;
  econfig.overload = OverloadPolicy::kDropOldest;
  econfig.start_paused = true;
  auto engine = std::move(IngestEngine::Create(StreamConfig(),
                                               Thresholds(2.0), 1, econfig))
                    .value();
  const std::uint64_t posts = 64 + 37;
  for (std::uint64_t i = 0; i < posts; ++i) {
    ASSERT_TRUE(engine->Post(0, 1.0).ok());
  }
  EXPECT_EQ(engine->metrics().dropped_oldest.load(), 37u);
  engine->Resume();
  ASSERT_TRUE(engine->Flush().ok());
  // Every post was accepted; the 37 oldest were reclaimed unprocessed.
  EXPECT_EQ(engine->metrics().posted.load(), posts);
  EXPECT_EQ(engine->StreamAppendCount(0), 64u);
  EXPECT_EQ(engine->metrics().appended.load(), 64u);
  EXPECT_EQ(engine->metrics().dropped_newest.load(), 0u);
}

TEST(IngestEngineTest, MetricsJsonHasTheSchemaFields) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  auto engine = std::move(IngestEngine::Create(StreamConfig(),
                                               Thresholds(2.0), 4, econfig))
                    .value();
  for (int t = 0; t < 200; ++t) {
    for (StreamId s = 0; s < 4; ++s) {
      ASSERT_TRUE(engine->Post(s, 1.0 * t).ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());
  const std::string json = engine->MetricsJson();
  for (const char* field :
       {"\"posted\":800", "\"appended\":800", "\"dropped_newest\":0",
        "\"dropped_oldest\":0", "\"append_latency_ns\"", "\"p99\"",
        "\"buckets\"", "\"shards\":[", "\"queue_high_water\"",
        "\"epoch\"", "\"pin_failures\":0", "\"pinned\":false",
        "\"maintain_ns_per_append\"", "\"apply_batch_ns\"",
        "\"kernels\":{\"backend\":\"", "\"haar_down\":", "\"run_cutoff\":"}) {
    EXPECT_NE(json.find(field), std::string::npos)
        << "missing " << field << " in " << json;
  }
  EXPECT_EQ(engine->metrics().append_latency.Count(), 800u);
}

// Regression: a kBlock producer spinning against a full ring used to spin
// forever if the worker was paused when Stop() was called — Stop joins
// the workers, the producer never frees, deadlock. The wait loop now
// checks the stop flag and bails out with Aborted.
TEST(IngestEngineTest, BlockedPostDoesNotDeadlockStop) {
  EngineConfig econfig;
  econfig.num_shards = 1;
  econfig.queue_capacity = 64;
  econfig.overload = OverloadPolicy::kBlock;
  econfig.start_paused = true;  // the worker never drains
  auto engine = std::move(IngestEngine::Create(StreamConfig(),
                                               Thresholds(2.0), 1, econfig))
                    .value();

  std::atomic<bool> returned{false};
  Status blocked_status;
  // Rings are per producer, so the fill and the blocking post must come
  // from the same thread.
  std::thread producer([&] {
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(engine->Post(0, 1.0).ok());
    }
    blocked_status = engine->Post(0, 2.0);  // ring full: blocks
    returned.store(true, std::memory_order_release);
  });
  // Let the producer reach the blocking wait.
  for (int i = 0; i < 100 && !returned.load(std::memory_order_acquire);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(engine->Stop().ok());
  producer.join();  // the regression: this join used to hang forever
  EXPECT_TRUE(returned.load());
  // The blocked post either squeezed in while the worker drained for
  // shutdown, or was cleanly aborted — never stuck, never a crash.
  EXPECT_TRUE(blocked_status.ok() ||
              blocked_status.code() == StatusCode::kAborted)
      << blocked_status.ToString();
}

TEST(IngestEngineTest, EpochStampsAdvanceWithAppliedBatches) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  auto engine = std::move(IngestEngine::Create(StreamConfig(),
                                               Thresholds(2.0), 4, econfig))
                    .value();
  std::vector<ShardStamp> before;
  engine->FleetTotal(&before);
  for (int t = 0; t < 300; ++t) {
    for (StreamId s = 0; s < 4; ++s) {
      ASSERT_TRUE(engine->Post(s, 1.0).ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());
  std::vector<ShardStamp> after;
  engine->FleetTotal(&after);
  ASSERT_EQ(before.size(), 2u);
  ASSERT_EQ(after.size(), 2u);
  std::uint64_t appended = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_GT(after[i].epoch, before[i].epoch);
    EXPECT_EQ(after[i].shard, i);
    appended += after[i].appended;
  }
  EXPECT_EQ(appended, 1200u);
}

// The compute-once contract of the feature pipeline (docs/FEATURES.md):
// every applied batch updates the pipeline exactly once, so the pipeline
// counters track the shard epoch and append count exactly — no batch is
// skipped and none is processed twice.
TEST(IngestEngineTest, FeaturePipelineUpdatesExactlyOncePerBatch) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  auto engine = std::move(IngestEngine::Create(StreamConfig(),
                                               Thresholds(2.0), 4, econfig))
                    .value();
  for (int t = 0; t < 250; ++t) {
    for (StreamId s = 0; s < 4; ++s) {
      ASSERT_TRUE(engine->Post(s, 1.0 * t).ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());
  std::uint64_t pipeline_appends = 0;
  for (const ShardMetricsSnapshot& shard : engine->ShardMetrics()) {
    EXPECT_EQ(shard.pipeline_batches, shard.epoch)
        << "shard " << shard.shard
        << ": pipeline updated a different number of times than batches "
           "were applied";
    EXPECT_EQ(shard.pipeline_appends, shard.appended);
    pipeline_appends += shard.pipeline_appends;
  }
  EXPECT_EQ(pipeline_appends, 1000u);
  const std::string json = engine->MetricsJson();
  for (const char* field : {"\"pipeline\"", "\"znorm_computes\"",
                            "\"plan\"", "\"queries\":["}) {
    EXPECT_NE(json.find(field), std::string::npos)
        << "missing " << field << " in " << json;
  }
}

// Regression: the worker used to scan the producer rings from slot 0 on
// every sweep, so a producer keeping ring 0 full under kBlock could
// starve every later ring indefinitely (its blocked producers never
// progressed). The drain now rotates its starting ring per sweep; this
// pins that by demanding rings 1 and 2 drain while a thread keeps ring 0
// saturated. max_batch (16) is deliberately smaller than what ring 0 can
// supply, so an unrotated drain would fill every batch from ring 0 alone.
TEST(ShardTest, DrainRotationKeepsSaturatedProducerFromStarvingOthers) {
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kQueue = 64;
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 2;
  config.history = 40;
  auto fleet = std::move(FleetAggregateMonitor::Create(config, {{10, 1e9}},
                                                       kProducers))
                   .value();
  auto pipeline =
      std::make_unique<FeaturePipeline>(nullptr, nullptr, kProducers);
  EngineMetrics metrics;
  Shard shard(0, 1, kProducers, kQueue, OverloadPolicy::kBlock,
              /*max_batch=*/16, std::move(fleet), std::move(pipeline),
              nullptr, nullptr, &metrics);
  shard.set_paused(true);
  shard.Start();
  // Fill every ring while the worker is paused (producer p -> stream p).
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < kQueue; ++i) {
      ASSERT_TRUE(shard.Push(p, static_cast<StreamId>(p), 1.0).ok());
    }
  }
  // Keep ring 0 under constant kBlock pressure from its own thread.
  std::thread pusher([&shard] {
    for (int i = 0; i < 200000; ++i) {
      if (!shard.Push(0, 0, 1.0).ok()) return;  // Aborted at shutdown
    }
  });
  shard.set_paused(false);
  // Mid-flight fairness: by the time 12 batches' worth of tuples have
  // been applied, a rotating drain has visited every ring several times
  // while ring 0 was never empty. The old fixed-start drain would have
  // served those first ~192 tuples entirely from ring 0.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (shard.applied() < 12 * 16 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_GE(shard.applied(), 12u * 16u) << "worker made no progress";
  std::uint64_t count1 = 0;
  std::uint64_t count2 = 0;
  ASSERT_TRUE(shard.FindStreamAppendCount(1, &count1));
  ASSERT_TRUE(shard.FindStreamAppendCount(2, &count2));
  EXPECT_GE(count1, 16u)
      << "producer 1 starved behind the saturated ring 0";
  EXPECT_GE(count2, 16u)
      << "producer 2 starved behind the saturated ring 0";
  shard.RequestStop();
  pusher.join();
  shard.Join();
  EXPECT_TRUE(shard.worker_status().ok());
}

// pin_shards with a failing affinity call must degrade gracefully: one
// pin_failures tick per shard, workers unpinned but fully functional,
// and never an abort.
TEST(IngestEngineTest, PinFailureIsCountedOnceAndNonFatal) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  econfig.pin_shards = true;
  std::atomic<int> attempts{0};
  econfig.pin_hook = [&attempts](std::size_t) {
    attempts.fetch_add(1);
    return false;  // injected affinity failure
  };
  auto engine = std::move(IngestEngine::Create(StreamConfig(),
                                               Thresholds(2.0), 4, econfig))
                    .value();
  for (int t = 0; t < 100; ++t) {
    for (StreamId s = 0; s < 4; ++s) {
      ASSERT_TRUE(engine->Post(s, 1.0 * t).ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(attempts.load(), 2);  // one attempt per shard, not per batch
  EXPECT_EQ(engine->metrics().pin_failures.load(), 2u);
  EXPECT_EQ(engine->metrics().appended.load(), 400u);
  const std::string json = engine->MetricsJson();
  EXPECT_NE(json.find("\"pin_failures\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pinned\":false"), std::string::npos) << json;
  ASSERT_TRUE(engine->Stop().ok());
}

TEST(IngestEngineTest, PinSuccessIsReportedPerShard) {
  EngineConfig econfig;
  econfig.num_shards = 2;
  econfig.pin_shards = true;
  std::atomic<int> attempts{0};
  econfig.pin_hook = [&attempts](std::size_t) {
    attempts.fetch_add(1);
    return true;
  };
  auto engine = std::move(IngestEngine::Create(StreamConfig(),
                                               Thresholds(2.0), 4, econfig))
                    .value();
  for (StreamId s = 0; s < 4; ++s) {
    ASSERT_TRUE(engine->Post(s, 1.0).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(engine->metrics().pin_failures.load(), 0u);
  const std::string json = engine->MetricsJson();
  EXPECT_NE(json.find("\"pinned\":true"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"pinned\":false"), std::string::npos) << json;
  ASSERT_TRUE(engine->Stop().ok());
}

}  // namespace
}  // namespace stardust
