#include "baselines/generalmatch.h"

#include <set>

#include <gtest/gtest.h>

#include "baselines/linear_scan.h"
#include "stream/dataset.h"

namespace stardust {
namespace {

GeneralMatchOptions Options(const Dataset& dataset, std::size_t w,
                            std::size_t f) {
  GeneralMatchOptions options;
  options.window = w;
  options.coefficients = f;
  options.normalization = Normalization::kUnitSphere;
  options.r_max = dataset.r_max;
  return options;
}

std::set<std::pair<StreamId, std::uint64_t>> MatchSet(
    const std::vector<PatternMatch>& matches) {
  std::set<std::pair<StreamId, std::uint64_t>> out;
  for (const auto& m : matches) out.emplace(m.stream, m.end_time);
  return out;
}

TEST(GeneralMatchTest, BuildValidation) {
  const Dataset dataset = MakeRandomWalkDataset(2, 256, 1);
  GeneralMatchOptions options = Options(dataset, 48, 2);  // not power of 2
  EXPECT_FALSE(GeneralMatch::Build(dataset, options).ok());
  options = Options(dataset, 32, 64);  // f > w
  EXPECT_FALSE(GeneralMatch::Build(dataset, options).ok());
  options = Options(dataset, 32, 2);
  EXPECT_TRUE(GeneralMatch::Build(dataset, options).ok());
}

TEST(GeneralMatchTest, IndexHoldsDisjointWindows) {
  const Dataset dataset = MakeRandomWalkDataset(3, 256, 2);
  auto gm =
      std::move(GeneralMatch::Build(dataset, Options(dataset, 32, 2)))
          .value();
  EXPECT_EQ(gm->index().size(), 3u * (256 / 32));
}

TEST(GeneralMatchTest, PlantedSubsequenceIsFound) {
  const Dataset dataset = MakeRandomWalkDataset(4, 512, 3);
  auto gm =
      std::move(GeneralMatch::Build(dataset, Options(dataset, 32, 4)))
          .value();
  const std::size_t len = 100, start = 217;
  std::vector<double> query(dataset.streams[3].begin() + start,
                            dataset.streams[3].begin() + start + len);
  const auto result = gm->Query(query, 1e-9);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(MatchSet(result.value().matches).count({3, start + len - 1}),
            1u);
}

// Completeness against the linear-scan oracle at several radii.
class GeneralMatchCompleteness : public ::testing::TestWithParam<double> {};

TEST_P(GeneralMatchCompleteness, EqualsLinearScan) {
  const double radius = GetParam();
  const Dataset dataset = MakeRandomWalkDataset(4, 512, 44);
  auto gm =
      std::move(GeneralMatch::Build(dataset, Options(dataset, 32, 4)))
          .value();
  const auto queries = MakeQueryWorkload(5, {96, 128, 160}, 45);
  for (const auto& query : queries) {
    const auto result = gm->Query(query, radius);
    ASSERT_TRUE(result.ok());
    const auto expected = MatchSet(
        ScanPatternMatches(dataset, query, radius,
                           Normalization::kUnitSphere, dataset.r_max));
    EXPECT_EQ(MatchSet(result.value().matches), expected);
    EXPECT_GE(result.value().candidates, result.value().matches.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, GeneralMatchCompleteness,
                         ::testing::Values(0.002, 0.01, 0.05));

TEST(GeneralMatchTest, QueryShorterThanTwoWindowsRejected) {
  const Dataset dataset = MakeRandomWalkDataset(2, 256, 5);
  auto gm =
      std::move(GeneralMatch::Build(dataset, Options(dataset, 64, 2)))
          .value();
  EXPECT_FALSE(gm->Query(std::vector<double>(100, 1.0), 0.1).ok());
  EXPECT_TRUE(gm->Query(std::vector<double>(127, 1.0), 0.1).ok());
}

}  // namespace
}  // namespace stardust
