#include "common/atomic_file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace stardust {
namespace {

namespace fs = std::filesystem;

std::string TestPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  fs::remove(path);
  fs::remove(path + ".tmp");
  return path;
}

TEST(AtomicFileTest, WriteThenReadRoundTrip) {
  const std::string path = TestPath("atomic_roundtrip.bin");
  const std::string payload = "hello\0world with \x01 binary bytes";
  ASSERT_TRUE(AtomicWriteFile(path, payload).ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload);
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // tmp was renamed away
}

TEST(AtomicFileTest, OverwriteReplacesWholeFile) {
  const std::string path = TestPath("atomic_overwrite.bin");
  ASSERT_TRUE(AtomicWriteFile(path, std::string(4096, 'a')).ok());
  ASSERT_TRUE(AtomicWriteFile(path, "short").ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "short");
}

TEST(AtomicFileTest, EmptyPayloadIsFine) {
  const std::string path = TestPath("atomic_empty.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "").ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
}

TEST(AtomicFileTest, ReadMissingFileIsNotFound) {
  Result<std::string> read =
      ReadFileToString(::testing::TempDir() + "/no/such/file.bin");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

// The core guarantee: a crash at any phase of the protocol leaves the
// previous file contents fully intact and loadable.
TEST(AtomicFileTest, CrashAtAnyPhaseKeepsThePreviousFile) {
  for (const AtomicWritePhase crash_phase :
       {AtomicWritePhase::kTmpCreated, AtomicWritePhase::kTmpMidWrite,
        AtomicWritePhase::kTmpWritten, AtomicWritePhase::kBeforeRename}) {
    const std::string path =
        TestPath("atomic_crash_" +
                 std::to_string(static_cast<int>(crash_phase)) + ".bin");
    const std::string old_payload(1000, 'x');
    ASSERT_TRUE(AtomicWriteFile(path, old_payload).ok());

    SetAtomicFileHookForTest(
        [crash_phase](AtomicWritePhase phase, const std::string&) {
          return phase != crash_phase;
        });
    const Status crashed = AtomicWriteFile(path, std::string(1000, 'y'));
    SetAtomicFileHookForTest(nullptr);
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.code(), StatusCode::kAborted);

    Result<std::string> read = ReadFileToString(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), old_payload)
        << "phase " << static_cast<int>(crash_phase);
  }
}

// The mid-write injection point really does leave a torn tmp file — the
// scenario the rename protocol exists to contain.
TEST(AtomicFileTest, MidWriteCrashLeavesTornTmpOnly) {
  const std::string path = TestPath("atomic_torn.bin");
  const std::string payload(1000, 'z');
  SetAtomicFileHookForTest([](AtomicWritePhase phase, const std::string&) {
    return phase != AtomicWritePhase::kTmpMidWrite;
  });
  ASSERT_FALSE(AtomicWriteFile(path, payload).ok());
  SetAtomicFileHookForTest(nullptr);
  EXPECT_FALSE(fs::exists(path));
  ASSERT_TRUE(fs::exists(path + ".tmp"));
  EXPECT_EQ(fs::file_size(path + ".tmp"), payload.size() / 2);
}

}  // namespace
}  // namespace stardust
