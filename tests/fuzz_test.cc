// Randomized stress tests: long interleaved operation sequences checked
// against reference models and structural invariants at every step group.
#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/stardust.h"
#include "rtree/rtree.h"
#include "stream/random_walk.h"
#include "transform/sliding_tracker.h"

namespace stardust {
namespace {

// ---------------------------------------------------------------------------
// R*-tree: random interleavings of insert / delete / queries vs a flat
// reference model.
// ---------------------------------------------------------------------------

struct FuzzParam {
  std::uint64_t seed;
  std::size_t dims;
  std::size_t max_entries;
  double delete_probability;
};

class RTreeFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(RTreeFuzz, MixedWorkloadStaysExact) {
  const FuzzParam param = GetParam();
  Rng rng(param.seed);
  RTree tree(param.dims, RTreeOptions{.max_entries = param.max_entries});
  std::map<RecordId, Mbr> model;
  RecordId next_id = 0;
  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < param.delete_probability && !model.empty()) {
      // Delete a pseudo-random live record.
      auto it = model.begin();
      std::advance(it, rng.NextUint64(model.size()));
      ASSERT_TRUE(tree.Delete(it->second, it->first).ok());
      model.erase(it);
    } else {
      Point lo(param.dims), hi(param.dims);
      for (std::size_t d = 0; d < param.dims; ++d) {
        lo[d] = rng.NextDouble(-100, 100);
        hi[d] = lo[d] + rng.NextDouble(0, 10);
      }
      Mbr box(lo, hi);
      ASSERT_TRUE(tree.Insert(box, next_id).ok());
      model.emplace(next_id, std::move(box));
      ++next_id;
    }
    if (step % 200 == 199) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << tree.CheckInvariants().ToString() << " at step " << step;
      ASSERT_EQ(tree.size(), model.size());
      // One random range query vs the model.
      Point q(param.dims);
      for (std::size_t d = 0; d < param.dims; ++d) {
        q[d] = rng.NextDouble(-100, 100);
      }
      const double radius = rng.NextDouble(0, 50);
      std::vector<RTreeEntry> out;
      tree.SearchWithin(q, radius, &out);
      std::vector<RecordId> got;
      for (const auto& e : out) got.push_back(e.id);
      std::sort(got.begin(), got.end());
      std::vector<RecordId> expected;
      for (const auto& [id, box] : model) {
        if (box.MinDist2(q) <= radius * radius) expected.push_back(id);
      }
      ASSERT_EQ(got, expected) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RTreeFuzz,
    ::testing::Values(FuzzParam{1, 2, 8, 0.3}, FuzzParam{2, 2, 8, 0.5},
                      FuzzParam{3, 3, 16, 0.45}, FuzzParam{4, 2, 4, 0.5},
                      FuzzParam{5, 5, 32, 0.4}));

// ---------------------------------------------------------------------------
// Summarizer: random configurations keep the containment invariant and
// the aggregate interval bracket over long streams with expiry churn.
// ---------------------------------------------------------------------------

class SummarizerConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SummarizerConfigFuzz, RandomConfigKeepsBrackets) {
  Rng rng(GetParam());
  // Random but valid aggregate configuration.
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = static_cast<AggregateKind>(rng.NextUint64(4));
  config.base_window = 1 + rng.NextUint64(24);
  config.num_levels = 2 + rng.NextUint64(4);
  config.box_capacity = 1 + rng.NextUint64(20);
  config.update_period = 1;
  const std::size_t top = config.LevelWindow(config.num_levels - 1);
  config.history = top + rng.NextUint64(3 * top);
  ASSERT_TRUE(config.Validate().ok());

  auto core = std::move(Stardust::Create(config)).value();
  const StreamId s = core->AddStream();
  // Monitor a handful of decomposable windows.
  std::vector<std::size_t> windows;
  const std::size_t max_b =
      std::min<std::size_t>((std::size_t{1} << config.num_levels) - 1,
                            config.history / config.base_window);
  for (int i = 0; i < 4; ++i) {
    windows.push_back((1 + rng.NextUint64(max_b)) * config.base_window);
  }
  SlidingAggregateTracker oracle(config.aggregate, windows);
  RandomWalkSource source(GetParam() * 7 + 1);
  const std::size_t run = 3 * config.history + 100;
  for (std::size_t t = 0; t < run; ++t) {
    const double v = source.Next();
    ASSERT_TRUE(core->Append(s, v).ok());
    oracle.Push(v);
    if (t % 7 != 0) continue;  // sample checks to keep runtime bounded
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (!oracle.Ready(i)) continue;
      Result<ScalarInterval> interval =
          core->AggregateInterval(s, windows[i]);
      ASSERT_TRUE(interval.ok())
          << interval.status().ToString() << " w=" << windows[i];
      const double exact = oracle.Current(i);
      ASSERT_GE(exact, interval.value().lo - 1e-6)
          << "w=" << windows[i] << " t=" << t << " c="
          << config.box_capacity;
      ASSERT_LE(exact, interval.value().hi + 1e-6);
    }
  }
  // Space stays bounded by the history (expiry works at any config).
  EXPECT_LE(core->summarizer(s).TotalBoxCount(),
            config.num_levels * (config.history / config.box_capacity + 2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummarizerConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Indexed DWT mode: long run with aggressive expiry keeps index and
// threads consistent.
// ---------------------------------------------------------------------------

TEST(IndexChurnFuzz, LongRunWithTightHistory) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 2;
  config.r_max = 110.0;
  config.base_window = 8;
  config.num_levels = 3;
  config.history = 32;  // == top window: maximal churn
  config.box_capacity = 3;
  config.update_period = 1;
  config.index_features = true;
  auto core = std::move(Stardust::Create(config)).value();
  const StreamId a = core->AddStream();
  const StreamId b = core->AddStream();
  RandomWalkSource sa(1), sb(2);
  for (int t = 0; t < 20000; ++t) {
    ASSERT_TRUE(core->Append(a, sa.Next()).ok());
    ASSERT_TRUE(core->Append(b, sb.Next()).ok());
    if (t % 1000 == 999) {
      for (std::size_t j = 0; j < config.num_levels; ++j) {
        ASSERT_TRUE(core->index(j).CheckInvariants().ok());
        // Every indexed box is still reachable through its thread.
        core->index(j).ForEach([&](const RTreeEntry& entry) {
          const StreamId stream = RecordStream(entry.id);
          const FeatureBox* box =
              core->summarizer(stream).thread(j).FindBySeq(
                  RecordSeq(entry.id));
          ASSERT_NE(box, nullptr);
          ASSERT_TRUE(box->extent == entry.box);
        });
      }
    }
  }
  // Index sizes bounded by history.
  for (std::size_t j = 0; j < config.num_levels; ++j) {
    EXPECT_LE(core->index(j).size(),
              2 * (config.history / config.box_capacity + 2));
  }
}

TEST(InputValidationTest, NonFiniteValuesRejected) {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 4;
  config.num_levels = 2;
  config.history = 8;
  auto core = std::move(Stardust::Create(config)).value();
  const StreamId s = core->AddStream();
  EXPECT_FALSE(core->Append(s, std::nan("")).ok());
  EXPECT_FALSE(core->Append(s, INFINITY).ok());
  EXPECT_FALSE(core->Append(s, -INFINITY).ok());
  EXPECT_TRUE(core->Append(s, 1.0).ok());
}

}  // namespace
}  // namespace stardust
