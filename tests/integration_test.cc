// End-to-end scenarios exercising the whole framework the way the paper's
// motivating applications do: burst monitoring on event counts, pattern
// search over sensor-like traces, and correlation detection — all against
// exact oracles.
#include <set>

#include <gtest/gtest.h>

#include "baselines/linear_scan.h"
#include "baselines/swt.h"
#include "core/aggregate_monitor.h"
#include "core/correlation_monitor.h"
#include "core/pattern_query.h"
#include "stream/bursty_source.h"
#include "stream/dataset.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

// Gamma-ray-burst scenario (paper §1): variable-timescale bursts must be
// caught over every monitored window, and Stardust must dominate SWT in
// precision at equal recall.
TEST(IntegrationTest, BurstMonitoringBeatsSwtInPrecision) {
  const std::size_t base = 20, m = 12;
  BurstySource training_source(100);
  const std::vector<double> training = training_source.Take(5000);
  std::vector<std::size_t> windows;
  for (std::size_t i = 1; i <= m; ++i) windows.push_back(i * base);
  const auto thresholds =
      TrainThresholds(AggregateKind::kSum, training, windows, 3.0);
  ASSERT_EQ(thresholds.size(), m);

  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = base;
  config.num_levels = 5;
  config.history = base << 4;
  config.box_capacity = 5;
  config.update_period = 1;
  auto stardust =
      std::move(AggregateMonitor::Create(config, thresholds)).value();
  auto swt =
      std::move(SwtMonitor::Create(AggregateKind::kSum, base, thresholds))
          .value();

  BurstySource source(101);
  for (int t = 0; t < 20000; ++t) {
    const double v = source.Next();
    ASSERT_TRUE(stardust->Append(v).ok());
    swt->Append(v);
  }
  const AlarmStats sd = stardust->TotalStats();
  const AlarmStats sw = swt->TotalStats();
  // Equal recall: both raise every true alarm.
  EXPECT_EQ(sd.true_alarms, sw.true_alarms);
  EXPECT_GT(sd.true_alarms, 0u);
  // Stardust's per-window interval filter beats SWT's level filter.
  EXPECT_GE(sd.Precision(), sw.Precision());
}

// Pattern queries across index variants agree with each other and the
// oracle on the reported match set.
TEST(IntegrationTest, AllPatternEnginesAgreeOnMatches) {
  const Dataset dataset = MakeHostLoadDataset(5, 768, 102);
  const std::size_t W = 16;

  StardustConfig online_config;
  online_config.transform = TransformKind::kDwt;
  online_config.normalization = Normalization::kUnitSphere;
  online_config.coefficients = 4;
  online_config.r_max = dataset.r_max;
  online_config.base_window = W;
  online_config.num_levels = 4;
  online_config.history = 1024;
  online_config.box_capacity = 16;
  online_config.update_period = 1;
  online_config.index_features = true;

  StardustConfig batch_config = online_config;
  batch_config.box_capacity = 1;
  batch_config.update_period = W;

  auto online_core = std::move(Stardust::Create(online_config)).value();
  auto batch_core = std::move(Stardust::Create(batch_config)).value();
  for (std::size_t i = 0; i < dataset.num_streams(); ++i) {
    const StreamId a = online_core->AddStream();
    const StreamId b = batch_core->AddStream();
    for (double v : dataset.streams[i]) {
      ASSERT_TRUE(online_core->Append(a, v).ok());
      ASSERT_TRUE(batch_core->Append(b, v).ok());
    }
  }
  PatternQueryEngine online(*online_core);
  PatternQueryEngine batch(*batch_core);

  // Queries drawn from the data itself to guarantee non-empty answers.
  for (const auto& [stream, start, len] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{0, 50, 96},
        {2, 300, 112}, {4, 500, 160}}) {
    std::vector<double> query(
        dataset.streams[stream].begin() + start,
        dataset.streams[stream].begin() + start + len);
    const double radius = 0.01;
    const auto a = online.QueryOnline(query, radius);
    const auto b = batch.QueryBatch(query, radius);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    std::set<std::pair<StreamId, std::uint64_t>> sa, sb, expected;
    for (const auto& match : a.value().matches) {
      sa.emplace(match.stream, match.end_time);
    }
    for (const auto& match : b.value().matches) {
      sb.emplace(match.stream, match.end_time);
    }
    for (const auto& match :
         ScanPatternMatches(dataset, query, radius,
                            Normalization::kUnitSphere, dataset.r_max)) {
      expected.emplace(match.stream, match.end_time);
    }
    EXPECT_EQ(sa, expected);
    EXPECT_EQ(sb, expected);
    EXPECT_EQ(expected.count({static_cast<StreamId>(stream),
                              start + len - 1}),
              1u);
  }
}

// Correlation monitoring against StatStream-style ground truth: precision
// counted by the monitor matches a from-scratch recount.
TEST(IntegrationTest, CorrelationStatsAreSelfConsistent) {
  const std::size_t w = 16, levels = 4, m = 10;
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = w;
  config.num_levels = levels;
  config.history = w << (levels - 1);
  config.box_capacity = 1;
  config.update_period = w;
  auto monitor =
      std::move(CorrelationMonitor::Create(config, m, 0.8)).value();
  const Dataset dataset = MakeRandomWalkDataset(m, 400, 103);
  std::vector<double> values(m);
  std::uint64_t recount_candidates = 0, recount_true = 0;
  for (std::size_t t = 0; t < dataset.length(); ++t) {
    for (std::size_t i = 0; i < m; ++i) values[i] = dataset.streams[i][t];
    ASSERT_TRUE(monitor->AppendAll(values).ok());
    for (const auto& pair : monitor->last_round()) {
      (void)pair;
    }
  }
  // Recount from rounds is not retained historically; at least verify the
  // aggregate counters are consistent with the final round's content.
  recount_candidates = monitor->stats().candidates;
  recount_true = monitor->stats().true_pairs;
  EXPECT_GE(recount_candidates, recount_true);
  EXPECT_LE(monitor->stats().Precision(), 1.0);
}

}  // namespace
}  // namespace stardust
