#include "core/aggregate_monitor.h"

#include <gtest/gtest.h>

#include "stream/bursty_source.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

StardustConfig MonitorConfig(AggregateKind kind, std::size_t base,
                             std::size_t levels, std::size_t c) {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = kind;
  config.base_window = base;
  config.num_levels = levels;
  config.history = base << (levels - 1);
  config.box_capacity = c;
  config.update_period = 1;
  return config;
}

std::vector<WindowThreshold> TrainedThresholds(AggregateKind kind,
                                               std::size_t base,
                                               std::size_t m, double lambda,
                                               std::uint64_t seed) {
  BurstySource source(seed);
  const std::vector<double> training = source.Take(4000);
  std::vector<std::size_t> windows;
  for (std::size_t i = 1; i <= m; ++i) windows.push_back(i * base);
  return TrainThresholds(kind, training, windows, lambda);
}

TEST(AggregateMonitorTest, CreateValidation) {
  const StardustConfig config = MonitorConfig(AggregateKind::kSum, 20, 6, 5);
  EXPECT_FALSE(
      AggregateMonitor::Create(config, {}).ok());  // no windows
  EXPECT_FALSE(
      AggregateMonitor::Create(config, {{30, 1.0}}).ok());  // not multiple
  EXPECT_FALSE(
      AggregateMonitor::Create(config, {{20 * 64, 1.0}}).ok());  // too large
  StardustConfig dwt = config;
  dwt.transform = TransformKind::kDwt;
  dwt.base_window = 16;
  dwt.history = 16 << 5;
  EXPECT_FALSE(AggregateMonitor::Create(dwt, {{16, 1.0}}).ok());
  StardustConfig batch = config;
  batch.update_period = config.base_window;
  batch.box_capacity = 1;
  EXPECT_FALSE(AggregateMonitor::Create(batch, {{20, 1.0}}).ok());
  StardustConfig dyadic = config;
  dyadic.update_schedule = UpdateSchedule::kDyadic;
  dyadic.box_capacity = 1;
  EXPECT_FALSE(AggregateMonitor::Create(dyadic, {{20, 1.0}}).ok());
  EXPECT_TRUE(AggregateMonitor::Create(config, {{20, 1.0}, {40, 2.0}}).ok());
}

// Stardust with c = 1 is the exact algorithm: no false alarms, precision 1
// (paper §6.1.1: "Stardust with c = 1 is the exact algorithm").
TEST(AggregateMonitorTest, UnitBoxCapacityHasNoFalseAlarms) {
  const auto thresholds =
      TrainedThresholds(AggregateKind::kSum, 20, 10, 4.0, 1);
  ASSERT_FALSE(thresholds.empty());
  auto monitor = std::move(AggregateMonitor::Create(
                               MonitorConfig(AggregateKind::kSum, 20, 5, 1),
                               thresholds))
                     .value();
  BurstySource source(2);
  for (int t = 0; t < 8000; ++t) {
    ASSERT_TRUE(monitor->Append(source.Next()).ok());
  }
  const AlarmStats total = monitor->TotalStats();
  EXPECT_GT(total.candidates, 0u);  // some bursts fired
  EXPECT_EQ(total.candidates, total.true_alarms);
  EXPECT_EQ(total.Precision(), 1.0);
}

// Candidates always include every true alarm (the filter is an upper
// bound — no false dismissals), at any box capacity.
class MonitorNoFalseDismissals
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MonitorNoFalseDismissals, CandidatesCoverExactAlarms) {
  const auto thresholds =
      TrainedThresholds(AggregateKind::kSum, 20, 8, 3.0, 3);
  ASSERT_FALSE(thresholds.empty());
  auto monitor =
      std::move(AggregateMonitor::Create(
                    MonitorConfig(AggregateKind::kSum, 20, 5, GetParam()),
                    thresholds))
          .value();
  // Track exact alarms independently.
  std::vector<std::size_t> windows;
  for (const auto& wt : thresholds) windows.push_back(wt.window);
  SlidingAggregateTracker oracle(AggregateKind::kSum, windows);
  BurstySource source(4);
  std::uint64_t exact_alarms = 0;
  for (int t = 0; t < 6000; ++t) {
    const double v = source.Next();
    ASSERT_TRUE(monitor->Append(v).ok());
    oracle.Push(v);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (oracle.Ready(i) &&
          oracle.Current(i) >= thresholds[i].threshold) {
        ++exact_alarms;
      }
    }
  }
  const AlarmStats total = monitor->TotalStats();
  EXPECT_EQ(total.true_alarms, exact_alarms);
  EXPECT_GE(total.candidates, total.true_alarms);
}

INSTANTIATE_TEST_SUITE_P(BoxCapacities, MonitorNoFalseDismissals,
                         ::testing::Values(1, 5, 25, 100));

// Larger box capacity means a looser filter: candidate counts are
// monotone non-decreasing in c on identical data (the accuracy/space
// trade-off of Section 4).
TEST(AggregateMonitorTest, PrecisionDegradesGracefullyWithBoxCapacity) {
  const auto thresholds =
      TrainedThresholds(AggregateKind::kSum, 20, 8, 3.0, 5);
  ASSERT_FALSE(thresholds.empty());
  std::uint64_t prev_candidates = 0;
  bool first = true;
  for (std::size_t c : {1u, 5u, 25u, 125u}) {
    auto monitor = std::move(AggregateMonitor::Create(
                                 MonitorConfig(AggregateKind::kSum, 20, 5, c),
                                 thresholds))
                       .value();
    BurstySource source(6);
    for (int t = 0; t < 6000; ++t) {
      ASSERT_TRUE(monitor->Append(source.Next()).ok());
    }
    const AlarmStats total = monitor->TotalStats();
    if (!first) {
      EXPECT_GE(total.candidates, prev_candidates) << "c=" << c;
    }
    prev_candidates = total.candidates;
    first = false;
  }
}

TEST(AggregateMonitorTest, SpreadMonitoringWorks) {
  BurstySource training_source(7);
  const std::vector<double> training = training_source.Take(3000);
  const auto thresholds = TrainThresholds(AggregateKind::kSpread, training,
                                          {50, 100, 200}, 2.0);
  ASSERT_EQ(thresholds.size(), 3u);
  auto monitor =
      std::move(AggregateMonitor::Create(
                    MonitorConfig(AggregateKind::kSpread, 50, 3, 10),
                    thresholds))
          .value();
  BurstySource source(8);
  for (int t = 0; t < 4000; ++t) {
    ASSERT_TRUE(monitor->Append(source.Next()).ok());
  }
  const AlarmStats total = monitor->TotalStats();
  EXPECT_GT(total.checks, 0u);
  EXPECT_GE(total.candidates, total.true_alarms);
}

TEST(AggregateMonitorTest, PerWindowStatsSumToTotal) {
  const auto thresholds =
      TrainedThresholds(AggregateKind::kSum, 20, 5, 2.0, 9);
  auto monitor = std::move(AggregateMonitor::Create(
                               MonitorConfig(AggregateKind::kSum, 20, 4, 5),
                               thresholds))
                     .value();
  BurstySource source(10);
  for (int t = 0; t < 3000; ++t) {
    ASSERT_TRUE(monitor->Append(source.Next()).ok());
  }
  AlarmStats manual;
  for (std::size_t i = 0; i < monitor->num_windows(); ++i) {
    manual.candidates += monitor->stats(i).candidates;
    manual.true_alarms += monitor->stats(i).true_alarms;
    manual.checks += monitor->stats(i).checks;
  }
  const AlarmStats total = monitor->TotalStats();
  EXPECT_EQ(total.candidates, manual.candidates);
  EXPECT_EQ(total.true_alarms, manual.true_alarms);
  EXPECT_EQ(total.checks, manual.checks);
}

}  // namespace
}  // namespace stardust
