#include "dwt/incremental.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dwt/haar.h"
#include "transform/feature.h"

namespace stardust {
namespace {

std::vector<double> RandomSignal(Rng* rng, std::size_t n) {
  std::vector<double> x(n);
  for (double& v : x) v = rng->NextDouble(0.0, 10.0);
  return x;
}

// Lemma A.1: the level-j feature of a window equals the merge of the
// level-(j-1) features of its halves.
TEST(IncrementalDwtTest, MergeHalvesEqualsDirectTransform) {
  Rng rng(10);
  for (int iter = 0; iter < 100; ++iter) {
    for (std::size_t w : {8u, 32u, 128u}) {
      for (std::size_t f : {1u, 2u, 4u}) {
        const std::vector<double> x = RandomSignal(&rng, w);
        const std::vector<double> left(x.begin(), x.begin() + w / 2);
        const std::vector<double> right(x.begin() + w / 2, x.end());
        const std::vector<double> merged =
            MergeHalvesHaar(HaarApprox(left, f), HaarApprox(right, f));
        const std::vector<double> direct = HaarApprox(x, f);
        ASSERT_EQ(merged.size(), f);
        for (std::size_t i = 0; i < f; ++i) {
          EXPECT_NEAR(merged[i], direct[i], 1e-9);
        }
      }
    }
  }
}

// The unit-hypersphere normalization (Equation 2) folds into the merge as
// an extra 1/sqrt(2): merging normalized half-features with that rescale
// yields the normalized feature of the doubled window.
TEST(IncrementalDwtTest, NormalizedMergeNeedsSqrt2Rescale) {
  Rng rng(11);
  const double r_max = 10.0;
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t w = 64, f = 4;
    const std::vector<double> x = RandomSignal(&rng, w);
    const std::vector<double> left(x.begin(), x.begin() + w / 2);
    const std::vector<double> right(x.begin() + w / 2, x.end());
    const std::vector<double> fl =
        HaarApprox(NormalizeUnitSphere(left, r_max), f);
    const std::vector<double> fr =
        HaarApprox(NormalizeUnitSphere(right, r_max), f);
    const std::vector<double> merged =
        MergeHalvesHaar(fl, fr, 1.0 / std::sqrt(2.0));
    const std::vector<double> direct =
        HaarApprox(NormalizeUnitSphere(x, r_max), f);
    for (std::size_t i = 0; i < f; ++i) {
      EXPECT_NEAR(merged[i], direct[i], 1e-12);
    }
  }
}

// Chained merges across several levels stay exact (single-pass pyramid of
// Figure 1(b)).
TEST(IncrementalDwtTest, MultiLevelPyramidStaysExact) {
  Rng rng(12);
  const std::size_t f = 2;
  const std::size_t w0 = 8;
  const std::size_t levels = 4;  // windows 8, 16, 32, 64
  const std::vector<double> x = RandomSignal(&rng, w0 << (levels - 1));
  // Level-0 features of consecutive windows of size w0.
  std::vector<std::vector<double>> feats;
  for (std::size_t start = 0; start + w0 <= x.size(); start += w0) {
    feats.push_back(HaarApprox(
        std::vector<double>(x.begin() + start, x.begin() + start + w0), f));
  }
  // Pairwise merge up the pyramid.
  for (std::size_t level = 1; level < levels; ++level) {
    std::vector<std::vector<double>> next;
    for (std::size_t i = 0; i + 1 < feats.size(); i += 2) {
      next.push_back(MergeHalvesHaar(feats[i], feats[i + 1]));
    }
    feats = std::move(next);
  }
  ASSERT_EQ(feats.size(), 1u);
  const std::vector<double> direct = HaarApprox(x, f);
  for (std::size_t i = 0; i < f; ++i) {
    EXPECT_NEAR(feats[0][i], direct[i], 1e-9);
  }
}

TEST(IncrementalDwtTest, GeneralMergeMatchesHaarSpecialization) {
  Rng rng(13);
  const std::vector<double> left = RandomSignal(&rng, 4);
  const std::vector<double> right = RandomSignal(&rng, 4);
  const std::vector<double> a = MergeHalvesHaar(left, right, 0.7);
  const std::vector<double> b = MergeHalves(left, right, HaarFilter(), 0.7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(IncrementalDwtTest, LowpassDownsampleHalvesLength) {
  const std::vector<double> in{1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0};
  const std::vector<double> out = LowpassDownsample(in, HaarFilter());
  ASSERT_EQ(out.size(), 4u);
  const double s2 = std::sqrt(2.0);
  EXPECT_NEAR(out[0], 2.0 / s2, 1e-12);
  EXPECT_NEAR(out[1], 4.0 / s2, 1e-12);
  EXPECT_NEAR(out[2], 6.0 / s2, 1e-12);
  EXPECT_NEAR(out[3], 8.0 / s2, 1e-12);
}

TEST(IncrementalDwtTest, Db4StepCommutesWithConcatenation) {
  // For a periodized general filter the merge is still one low-pass step
  // on the concatenation; verify against direct computation.
  Rng rng(14);
  const std::vector<double> left = RandomSignal(&rng, 8);
  const std::vector<double> right = RandomSignal(&rng, 8);
  std::vector<double> concat = left;
  concat.insert(concat.end(), right.begin(), right.end());
  const std::vector<double> direct =
      LowpassDownsample(concat, Daubechies4Filter());
  const std::vector<double> merged =
      MergeHalves(left, right, Daubechies4Filter());
  ASSERT_EQ(direct.size(), merged.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], merged[i], 1e-12);
  }
}

}  // namespace
}  // namespace stardust
