#include "baselines/statstream.h"

#include <cmath>
#include <complex>
#include <numbers>
#include <set>

#include <gtest/gtest.h>

#include "baselines/linear_scan.h"
#include "common/rng.h"
#include "stream/dataset.h"
#include "transform/feature.h"

namespace stardust {
namespace {

TEST(StatStreamTest, CreateValidation) {
  StatStreamOptions options;
  options.history = 64;
  options.basic_window = 8;
  options.coefficients = 2;
  options.cell_size = 0.1;
  options.radius = 0.1;
  EXPECT_TRUE(StatStream::Create(options, 2).ok());
  StatStreamOptions bad = options;
  bad.coefficients = 3;  // must be even
  EXPECT_FALSE(StatStream::Create(bad, 2).ok());
  bad = options;
  bad.history = 60;  // not a multiple of the basic window
  EXPECT_FALSE(StatStream::Create(bad, 2).ok());
  bad = options;
  bad.cell_size = 0.0;
  EXPECT_FALSE(StatStream::Create(bad, 2).ok());
  EXPECT_FALSE(StatStream::Create(options, 0).ok());
}

// The incrementally maintained feature equals the one computed from
// scratch: feature = √(2/N)·X_k/‖x−μ‖ for the current window.
TEST(StatStreamTest, IncrementalDftMatchesDirectComputation) {
  StatStreamOptions options;
  options.history = 32;
  options.basic_window = 4;
  options.coefficients = 4;
  options.cell_size = 0.1;
  options.radius = 0.0;  // no pairs: we only exercise maintenance
  auto ss = std::move(StatStream::Create(options, 1)).value();
  Rng rng(5);
  std::vector<double> data;
  double walk = 10.0;
  for (int t = 0; t < 200; ++t) {
    walk += rng.NextDouble() - 0.5;
    data.push_back(walk);
    ASSERT_TRUE(ss->AppendAll({walk}).ok());
    const std::size_t n = options.history;
    if (data.size() < n || (data.size() - n) % options.basic_window != 0) {
      continue;
    }
    // Direct: unnormalized DFT of the current window, z-scaled.
    const std::vector<double> window(data.end() - n, data.end());
    double mean = 0.0;
    for (double v : window) mean += v;
    mean /= n;
    double norm2 = 0.0;
    for (double v : window) norm2 += (v - mean) * (v - mean);
    const double scale = std::sqrt(2.0 / n) / std::sqrt(norm2);
    for (std::size_t k = 1; k <= options.coefficients / 2; ++k) {
      std::complex<double> x{0.0, 0.0};
      for (std::size_t idx = 0; idx < n; ++idx) {
        const double angle =
            -2.0 * std::numbers::pi * static_cast<double>(k * idx) / n;
        x += window[idx] * std::complex<double>{std::cos(angle),
                                                std::sin(angle)};
      }
      EXPECT_NEAR(ss->feature(0)[2 * (k - 1)], x.real() * scale, 1e-6)
          << "t=" << t << " k=" << k;
      EXPECT_NEAR(ss->feature(0)[2 * (k - 1) + 1], x.imag() * scale, 1e-6);
    }
  }
}

// Parseval soundness: the feature distance lower-bounds the z-normalized
// window distance, so grid probing with reach ⌈r/cell⌉ cannot dismiss a
// truly correlated pair.
TEST(StatStreamTest, DetectsAllTrulyCorrelatedPairs) {
  StatStreamOptions options;
  options.history = 64;
  options.basic_window = 8;
  options.coefficients = 4;
  options.cell_size = 0.05;
  options.radius = 0.5;
  const std::size_t m = 8;
  auto ss = std::move(StatStream::Create(options, m)).value();
  // Streams 0/1 strongly correlated, rest independent.
  Rng rng(9);
  Dataset dataset;
  dataset.streams.resize(m);
  std::vector<double> values(m);
  double shared = 20.0;
  std::vector<double> walks(m, 50.0);
  for (int t = 0; t < 256; ++t) {
    shared += rng.NextDouble() - 0.5;
    for (std::size_t i = 0; i < m; ++i) {
      if (i < 2) {
        values[i] = shared + 0.01 * rng.NextGaussian();
      } else {
        walks[i] += rng.NextDouble() - 0.5;
        values[i] = walks[i];
      }
      dataset.streams[i].push_back(values[i]);
    }
    ASSERT_TRUE(ss->AppendAll(values).ok());
  }
  EXPECT_GT(ss->stats().candidates, 0u);
  EXPECT_GT(ss->stats().true_pairs, 0u);
  // The exact pair count over the final window matches the oracle's view
  // of the last detection round... at minimum the planted pair is caught.
  const auto oracle =
      ScanCorrelatedPairs(dataset, options.history, options.radius);
  std::set<std::pair<std::uint32_t, std::uint32_t>> oracle_set(
      oracle.begin(), oracle.end());
  EXPECT_TRUE(oracle_set.count({0, 1}) == 1);
}

TEST(StatStreamTest, PrecisionNeverExceedsOne) {
  StatStreamOptions options;
  options.history = 32;
  options.basic_window = 8;
  options.coefficients = 2;
  options.cell_size = 0.2;
  options.radius = 0.4;
  auto ss = std::move(StatStream::Create(options, 5)).value();
  const Dataset dataset = MakeRandomWalkDataset(5, 200, 33);
  std::vector<double> values(5);
  for (std::size_t t = 0; t < 200; ++t) {
    for (std::size_t i = 0; i < 5; ++i) values[i] = dataset.streams[i][t];
    ASSERT_TRUE(ss->AppendAll(values).ok());
  }
  EXPECT_GE(ss->stats().candidates, ss->stats().true_pairs);
  EXPECT_LE(ss->stats().Precision(), 1.0);
}

TEST(StatStreamTest, RejectsWrongValueCount) {
  StatStreamOptions options;
  options.history = 16;
  options.basic_window = 4;
  auto ss = std::move(StatStream::Create(options, 3)).value();
  EXPECT_FALSE(ss->AppendAll({1.0}).ok());
}

}  // namespace
}  // namespace stardust
