// Death tests for the invariant-check macros: programming errors abort
// with a useful message rather than corrupting state silently.
#include "common/check.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "common/ring_buffer.h"
#include "dwt/haar.h"
#include "engine/feature_pipeline.h"
#include "engine/shard.h"
#include "geom/mbr.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SD_CHECK(1 == 2), "SD_CHECK failed");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  SD_CHECK(true);
  SUCCEED();
}

#ifndef NDEBUG
TEST(CheckDeathTest, InvertedMbrExtentsAbort) {
  // Per-dimension extent ordering is a debug-only check.
  EXPECT_DEATH(Mbr({2.0}, {1.0}), "SD_CHECK failed");
}
#endif

TEST(CheckDeathTest, NonPowerOfTwoDwtAborts) {
  const std::vector<double> x(6, 1.0);
  EXPECT_DEATH(HaarDwt(x), "SD_CHECK failed");
}

TEST(CheckDeathTest, ZeroCapacityRingBufferAborts) {
  EXPECT_DEATH(RingBuffer<int>(0), "SD_CHECK failed");
}

// Guards behind IngestEngine::num_windows()/ShardOf(): a shard can never
// be built with a shape that would make the engine's modulo/index
// arithmetic undefined.
std::unique_ptr<FleetAggregateMonitor> TestFleet() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 10;
  config.num_levels = 2;
  config.history = 40;
  return std::move(FleetAggregateMonitor::Create(config, {{10, 1.0}}, 2))
      .value();
}

std::unique_ptr<FeaturePipeline> TestPipeline() {
  return std::make_unique<FeaturePipeline>(nullptr, nullptr, 2);
}

TEST(CheckDeathTest, ShardWithNullFleetAborts) {
  EXPECT_DEATH(Shard(0, 1, 1, 64, OverloadPolicy::kBlock, 16, nullptr,
                     TestPipeline(), nullptr, nullptr, nullptr),
               "SD_CHECK failed");
}

TEST(CheckDeathTest, ShardWithNullPipelineAborts) {
  EXPECT_DEATH(Shard(0, 1, 1, 64, OverloadPolicy::kBlock, 16, TestFleet(),
                     nullptr, nullptr, nullptr, nullptr),
               "SD_CHECK failed");
}

TEST(CheckDeathTest, ShardWithZeroShardCountAborts) {
  EXPECT_DEATH(Shard(0, 0, 1, 64, OverloadPolicy::kBlock, 16, TestFleet(),
                     TestPipeline(), nullptr, nullptr, nullptr),
               "SD_CHECK failed");
}

TEST(CheckDeathTest, ShardWithOutOfRangeIndexAborts) {
  EXPECT_DEATH(Shard(3, 2, 1, 64, OverloadPolicy::kBlock, 16, TestFleet(),
                     TestPipeline(), nullptr, nullptr, nullptr),
               "SD_CHECK failed");
}

TEST(CheckDeathTest, ShardWithRegistryButNoBusAborts) {
  QueryRegistry registry(StardustConfig{}, QueryConfig{});
  EXPECT_DEATH(Shard(0, 1, 1, 64, OverloadPolicy::kBlock, 16, TestFleet(),
                     TestPipeline(), &registry, nullptr, nullptr),
               "SD_CHECK failed");
}

#ifdef NDEBUG
TEST(CheckDeathTest, DcheckCompiledOutInRelease) {
  // SD_DCHECK is a no-op with NDEBUG: this must not abort.
  SD_DCHECK(1 == 2);
  SUCCEED();
}
#endif

}  // namespace
}  // namespace stardust
