// Death tests for the invariant-check macros: programming errors abort
// with a useful message rather than corrupting state silently.
#include "common/check.h"

#include <gtest/gtest.h>

#include "common/ring_buffer.h"
#include "dwt/haar.h"
#include "geom/mbr.h"

namespace stardust {
namespace {

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SD_CHECK(1 == 2), "SD_CHECK failed");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  SD_CHECK(true);
  SUCCEED();
}

#ifndef NDEBUG
TEST(CheckDeathTest, InvertedMbrExtentsAbort) {
  // Per-dimension extent ordering is a debug-only check.
  EXPECT_DEATH(Mbr({2.0}, {1.0}), "SD_CHECK failed");
}
#endif

TEST(CheckDeathTest, NonPowerOfTwoDwtAborts) {
  const std::vector<double> x(6, 1.0);
  EXPECT_DEATH(HaarDwt(x), "SD_CHECK failed");
}

TEST(CheckDeathTest, ZeroCapacityRingBufferAborts) {
  EXPECT_DEATH(RingBuffer<int>(0), "SD_CHECK failed");
}

#ifdef NDEBUG
TEST(CheckDeathTest, DcheckCompiledOutInRelease) {
  // SD_DCHECK is a no-op with NDEBUG: this must not abort.
  SD_DCHECK(1 == 2);
  SUCCEED();
}
#endif

}  // namespace
}  // namespace stardust
