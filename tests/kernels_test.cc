// Equivalence suite for the runtime-dispatched SIMD kernels
// (common/kernels.h).
//
// The dispatch layer's contract is bit-for-bit equality with the scalar
// reference for elementwise kernels and comparison reductions (including
// the ±0.0 tie rescan), and ULP-bounded equality for the opt-in
// reassociating reductions. Every test below runs under every backend the
// host CPU supports, across lane-remainder lengths n = 1 .. 2·8+1 (one
// past two AVX-512 vectors), so partial final vectors and the tiny-n
// scalar tails are all exercised.

#include "common/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/aligned.h"
#include "common/serialize.h"
#include "core/config.h"
#include "core/stardust.h"

namespace stardust {
namespace {

// Deterministic value stream with repeated values (comparison ties), sign
// flips, and mixed magnitudes.
class ValueGen {
 public:
  explicit ValueGen(std::uint64_t seed) : state_(seed) {}

  double Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint32_t r = static_cast<std::uint32_t>(state_ >> 33);
    // One value in 8 repeats a small integer so reductions see ties.
    if ((r & 7u) == 0) return static_cast<double>((r >> 3) % 5);
    const double mag = static_cast<double>(r % 100000) / 997.0;
    return (r & 1u) ? mag : -mag;
  }

  std::vector<double> Take(std::size_t n) {
    std::vector<double> v(n);
    for (double& x : v) x = Next();
    return v;
  }

 private:
  std::uint64_t state_;
};

std::vector<kernels::Backend> SupportedBackends() {
  std::vector<kernels::Backend> out = {kernels::Backend::kScalar};
  if (kernels::MaxSupportedBackend() >= kernels::Backend::kAvx2) {
    out.push_back(kernels::Backend::kAvx2);
  }
  if (kernels::MaxSupportedBackend() >= kernels::Backend::kAvx512) {
    out.push_back(kernels::Backend::kAvx512);
  }
  return out;
}

void ForceBackend(kernels::Backend backend) {
  ASSERT_TRUE(kernels::SetBackend(kernels::BackendName(backend)));
  ASSERT_EQ(kernels::SelectedBackend(), backend);
}

// Restores the startup-selected backend after each forced-backend test so
// test order never changes what later tests run under.
struct BackendGuard {
  ~BackendGuard() { kernels::SetBackend("auto"); }
};

std::uint64_t Bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Scalar references, reimplemented here (not calls into the library) so a
// regression in the library's scalar loops cannot hide itself.
double RefMax(const std::vector<double>& v) {
  double mx = v[0];
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (mx < v[i]) mx = v[i];
  }
  return mx;
}

double RefMin(const std::vector<double>& v) {
  double mn = v[0];
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] < mn) mn = v[i];
  }
  return mn;
}

void RefSpread(const std::vector<double>& v, double* mx, double* mn) {
  double hi = v[0], lo = v[0];
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (!(v[i] < hi)) hi = v[i];
    if (v[i] < lo) lo = v[i];
  }
  *mx = hi;
  *mn = lo;
}

constexpr std::size_t kMaxLanes = 8;  // AVX-512 doubles per vector

TEST(KernelsTest, BackendNamesAndClamping) {
  BackendGuard guard;
  EXPECT_STREQ(kernels::BackendName(kernels::Backend::kScalar), "scalar");
  EXPECT_STREQ(kernels::BackendName(kernels::Backend::kAvx2), "avx2");
  EXPECT_STREQ(kernels::BackendName(kernels::Backend::kAvx512), "avx512");
  EXPECT_FALSE(kernels::SetBackend("sse9"));
  // A request above the CPU's best tier clamps instead of failing.
  ASSERT_TRUE(kernels::SetBackend("avx512"));
  EXPECT_LE(kernels::SelectedBackend(), kernels::MaxSupportedBackend());
  ASSERT_TRUE(kernels::SetBackend("scalar"));
  EXPECT_EQ(kernels::SelectedBackend(), kernels::Backend::kScalar);
  ASSERT_TRUE(kernels::SetBackend("auto"));
  EXPECT_EQ(kernels::SelectedBackend(), kernels::MaxSupportedBackend());
}

TEST(KernelsTest, ElementwiseKernelsBitIdenticalAcrossBackends) {
  BackendGuard guard;
  ValueGen gen(20050405);
  const double scale = 1.0 / std::sqrt(2.0);
  for (std::size_t half = 1; half <= 2 * kMaxLanes + 1; ++half) {
    const std::vector<double> in = gen.Take(2 * half);
    // Scalar reference output.
    ForceBackend(kernels::Backend::kScalar);
    std::vector<double> down_ref(half), approx_ref(half), detail_ref(half);
    std::vector<double> apply_ref(2 * half), copy_ref(2 * half);
    kernels::HaarDown(in.data(), half, scale, down_ref.data());
    kernels::HaarStep(in.data(), half, scale, approx_ref.data(),
                      detail_ref.data());
    kernels::ZNormApply(in.data(), 2 * half, 0.25, 1.75, apply_ref.data());
    kernels::Copy(in.data(), 2 * half, copy_ref.data());
    for (kernels::Backend backend : SupportedBackends()) {
      ForceBackend(backend);
      std::vector<double> down(half), approx(half), detail(half);
      std::vector<double> apply(2 * half), copy(2 * half);
      kernels::HaarDown(in.data(), half, scale, down.data());
      kernels::HaarStep(in.data(), half, scale, approx.data(),
                        detail.data());
      kernels::ZNormApply(in.data(), 2 * half, 0.25, 1.75, apply.data());
      kernels::Copy(in.data(), 2 * half, copy.data());
      for (std::size_t k = 0; k < half; ++k) {
        EXPECT_EQ(Bits(down[k]), Bits(down_ref[k]))
            << "haar_down lane " << k << " half " << half << " backend "
            << kernels::BackendName(backend);
        EXPECT_EQ(Bits(approx[k]), Bits(approx_ref[k]));
        EXPECT_EQ(Bits(detail[k]), Bits(detail_ref[k]));
      }
      for (std::size_t k = 0; k < 2 * half; ++k) {
        EXPECT_EQ(Bits(apply[k]), Bits(apply_ref[k]));
        EXPECT_EQ(Bits(copy[k]), Bits(copy_ref[k]));
      }
    }
  }
}

TEST(KernelsTest, ComparisonReductionsBitIdenticalAcrossBackends) {
  BackendGuard guard;
  ValueGen gen(42);
  for (std::size_t n = 1; n <= 2 * kMaxLanes + 1; ++n) {
    for (int round = 0; round < 8; ++round) {
      const std::vector<double> v = gen.Take(n);
      const double ref_max = RefMax(v);
      const double ref_min = RefMin(v);
      double ref_smx, ref_smn;
      RefSpread(v, &ref_smx, &ref_smn);
      for (kernels::Backend backend : SupportedBackends()) {
        ForceBackend(backend);
        EXPECT_EQ(Bits(kernels::ReduceMax(v.data(), n)), Bits(ref_max));
        EXPECT_EQ(Bits(kernels::ReduceMin(v.data(), n)), Bits(ref_min));
        double smx, smn;
        kernels::ReduceSpread(v.data(), n, &smx, &smn);
        EXPECT_EQ(Bits(smx), Bits(ref_smx));
        EXPECT_EQ(Bits(smn), Bits(ref_smn));
      }
    }
  }
}

TEST(KernelsTest, SignedZeroTiesResolveToScalarOrder) {
  BackendGuard guard;
  // Mixed ±0.0 extrema: the comparison loops never swap on equality, so
  // the sign of the returned zero is pinned to the reference tie order.
  // Vector max/min cannot see the difference (−0.0 == +0.0), so the
  // backends rescan scalar when the result is zero.
  const double pz = 0.0, nz = -0.0;
  const std::vector<std::vector<double>> cases = {
      {nz, pz}, {pz, nz}, {nz, nz, pz, pz, nz, pz, nz, pz, nz},
      {-1.0, nz, pz, -2.0}, {pz, pz, pz, pz, pz, pz, pz, pz, nz},
      {nz, nz, nz, nz, nz, nz, nz, nz, pz, nz, nz, nz, nz, nz, nz, nz, nz}};
  for (const std::vector<double>& v : cases) {
    const double ref_max = RefMax(v);
    const double ref_min = RefMin(v);
    double ref_smx, ref_smn;
    RefSpread(v, &ref_smx, &ref_smn);
    for (kernels::Backend backend : SupportedBackends()) {
      ForceBackend(backend);
      EXPECT_EQ(Bits(kernels::ReduceMax(v.data(), v.size())), Bits(ref_max));
      EXPECT_EQ(Bits(kernels::ReduceMin(v.data(), v.size())), Bits(ref_min));
      double smx, smn;
      kernels::ReduceSpread(v.data(), v.size(), &smx, &smn);
      EXPECT_EQ(Bits(smx), Bits(ref_smx));
      EXPECT_EQ(Bits(smn), Bits(ref_smn));
    }
  }
}

TEST(KernelsTest, FastReductionsMatchWithinUlpBound) {
  BackendGuard guard;
  ValueGen gen(7);
  for (std::size_t n = 1; n <= 2 * kMaxLanes + 1; ++n) {
    const std::vector<double> v = gen.Take(n);
    double ref_sum = 0.0;
    for (double x : v) ref_sum += x;
    double ref_mean = ref_sum / static_cast<double>(n);
    double ref_norm2 = 0.0;
    for (double x : v) ref_norm2 += (x - ref_mean) * (x - ref_mean);
    // Reassociation error is bounded by n * eps relative to the sum of
    // absolute values (the classical recursive-summation bound).
    double abs_sum = 0.0;
    for (double x : v) abs_sum += std::fabs(x);
    const double tol = static_cast<double>(n) *
                       std::numeric_limits<double>::epsilon() *
                       (abs_sum + 1.0);
    for (kernels::Backend backend : SupportedBackends()) {
      ForceBackend(backend);
      EXPECT_NEAR(kernels::ReduceSum(v.data(), n), ref_sum, tol);
      double mean, norm2;
      kernels::ZNormMoments(v.data(), n, &mean, &norm2);
      EXPECT_NEAR(mean, ref_mean, tol);
      EXPECT_NEAR(norm2, ref_norm2, tol * (abs_sum + 1.0));
    }
  }
}

TEST(KernelsTest, InvocationCountersTrackCalls) {
  BackendGuard guard;
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  kernels::ResetKernelCounters();
  EXPECT_EQ(kernels::KernelCount(kernels::kIdReduceMax), 0u);
  kernels::ReduceMax(v.data(), v.size());
  kernels::ReduceMax(v.data(), v.size());
  kernels::ReduceMin(v.data(), v.size());
  EXPECT_EQ(kernels::KernelCount(kernels::kIdReduceMax), 2u);
  EXPECT_EQ(kernels::KernelCount(kernels::kIdReduceMin), 1u);
  EXPECT_STREQ(kernels::KernelName(kernels::kIdReduceMax), "reduce_max");
  EXPECT_EQ(kernels::KernelCount(kernels::kNumKernels + 5), 0u);
}

TEST(KernelsTest, RunCutoffResolvedPerBackend) {
  BackendGuard guard;
  for (kernels::Backend backend : SupportedBackends()) {
    ForceBackend(backend);
    // Calibrated crossover: every measured tier currently sits at 2 (see
    // kernels.cc). The invariant the engine relies on is positivity and
    // stability across SetBackend calls, not the exact value.
    EXPECT_GE(kernels::BatchedRunCutoff(), 1u);
  }
}

TEST(KernelsTest, AlignedVectorsAreCacheLineAligned) {
  for (std::size_t n : {1, 3, 7, 64, 1000}) {
    AlignedVector<double> v(n, 0.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u)
        << "size " << n;
    v.resize(n + 17);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  }
  static_assert(sizeof(AlignedVector<double>) == sizeof(std::vector<double>),
                "aligned allocator must stay stateless");
}

StardustConfig AggregateConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 8;
  config.num_levels = 3;
  config.history = 128;
  config.box_capacity = 4;
  config.update_period = 1;
  config.index_features = false;
  return config;
}

TEST(KernelsTest, NonFiniteRunsPreserveScalarErrorSemantics) {
  BackendGuard guard;
  for (kernels::Backend backend : SupportedBackends()) {
    ForceBackend(backend);
    for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                       std::numeric_limits<double>::infinity(),
                       -std::numeric_limits<double>::infinity()}) {
      auto batched = std::move(Stardust::Create(AggregateConfig())).value();
      auto scalar = std::move(Stardust::Create(AggregateConfig())).value();
      const StreamId bs = batched->AddStream();
      const StreamId ss = scalar->AddStream();
      ValueGen gen(11);
      std::vector<double> run = gen.Take(32);
      run[19] = bad;
      const Status batched_status = batched->AppendRun(bs, run.data(),
                                                       run.size());
      Status scalar_status = Status::OK();
      for (double v : run) {
        scalar_status = scalar->Append(ss, v);
        if (!scalar_status.ok()) break;
      }
      // Same error on exactly the offending value...
      ASSERT_FALSE(batched_status.ok());
      ASSERT_FALSE(scalar_status.ok());
      EXPECT_EQ(batched_status.ToString(), scalar_status.ToString());
      // ...and the applied prefix state is bit-identical.
      Writer bw, sw;
      batched->summarizer(bs).SaveTo(&bw);
      scalar->summarizer(ss).SaveTo(&sw);
      EXPECT_EQ(bw.buffer(), sw.buffer());
    }
  }
}

TEST(KernelsTest, AppendRunStateMatchesScalarUnderEveryBackend) {
  BackendGuard guard;
  for (kernels::Backend backend : SupportedBackends()) {
    ForceBackend(backend);
    for (AggregateKind kind : {AggregateKind::kSum, AggregateKind::kMax,
                               AggregateKind::kMin, AggregateKind::kSpread}) {
      StardustConfig config = AggregateConfig();
      config.aggregate = kind;
      auto batched = std::move(Stardust::Create(config)).value();
      auto scalar = std::move(Stardust::Create(config)).value();
      const StreamId bs = batched->AddStream();
      const StreamId ss = scalar->AddStream();
      ValueGen gen(5 + static_cast<int>(kind));
      // Mixed run lengths around the cutoff, vector width, and ring wrap.
      for (std::size_t len : {1, 2, 3, 7, 8, 9, 16, 17, 64, 129}) {
        const std::vector<double> run = gen.Take(len);
        ASSERT_TRUE(batched->AppendRun(bs, run.data(), len).ok());
        for (double v : run) ASSERT_TRUE(scalar->Append(ss, v).ok());
      }
      Writer bw, sw;
      batched->summarizer(bs).SaveTo(&bw);
      scalar->summarizer(ss).SaveTo(&sw);
      EXPECT_EQ(Fnv1a(bw.buffer()), Fnv1a(sw.buffer()))
          << "backend " << kernels::BackendName(backend) << " kind "
          << static_cast<int>(kind);
    }
  }
}

}  // namespace
}  // namespace stardust
