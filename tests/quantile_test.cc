#include "sketch/quantile.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stardust {
namespace {

double ExactQuantile(std::vector<double> data, double p) {
  std::sort(data.begin(), data.end());
  const double rank = p * static_cast<double>(data.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, data.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return data[lo] * (1.0 - frac) + data[hi] * frac;
}

TEST(P2QuantileTest, SmallSamplesAreExact) {
  P2Quantile median(0.5);
  median.Add(5.0);
  EXPECT_EQ(median.Value(), 5.0);
  median.Add(1.0);
  EXPECT_NEAR(median.Value(), 3.0, 1e-12);
  median.Add(9.0);
  EXPECT_NEAR(median.Value(), 5.0, 1e-12);
}

struct QuantileCase {
  double p;
  int distribution;  // 0 uniform, 1 gaussian, 2 exponential
};

class P2Accuracy : public ::testing::TestWithParam<QuantileCase> {};

TEST_P(P2Accuracy, TracksExactQuantileWithinTolerance) {
  const QuantileCase c = GetParam();
  Rng rng(17 + c.distribution);
  P2Quantile estimator(c.p);
  std::vector<double> data;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = 0.0;
    switch (c.distribution) {
      case 0:
        v = rng.NextDouble(-3.0, 7.0);
        break;
      case 1:
        v = 2.0 + 3.0 * rng.NextGaussian();
        break;
      case 2:
        v = rng.NextExponential(0.5);
        break;
    }
    data.push_back(v);
    estimator.Add(v);
  }
  const double exact = ExactQuantile(data, c.p);
  const double spread = ExactQuantile(data, 0.95) - ExactQuantile(data, 0.05);
  EXPECT_NEAR(estimator.Value(), exact, 0.05 * spread)
      << "p=" << c.p << " dist=" << c.distribution;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, P2Accuracy,
    ::testing::Values(QuantileCase{0.25, 0}, QuantileCase{0.5, 0},
                      QuantileCase{0.75, 0}, QuantileCase{0.5, 1},
                      QuantileCase{0.25, 1}, QuantileCase{0.9, 1},
                      QuantileCase{0.5, 2}, QuantileCase{0.75, 2}));

TEST(P2QuantileTest, MonotoneQuantilesStayOrdered) {
  Rng rng(99);
  P2Quantile q25(0.25), q50(0.5), q75(0.75);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextGaussian() + (i % 100 == 0 ? 50.0 : 0.0);
    q25.Add(v);
    q50.Add(v);
    q75.Add(v);
    if (i > 20) {
      EXPECT_LE(q25.Value(), q50.Value() + 1e-9);
      EXPECT_LE(q50.Value(), q75.Value() + 1e-9);
    }
  }
}

TEST(P2QuantileTest, GoldenQuartilesUnchangedAfterSketchPromotion) {
  // Pinned outputs from before the estimator moved to src/sketch: the
  // promotion added snapshot support but must not change the estimates.
  Rng rng(2024);
  P2Quantile q25(0.25), q50(0.5), q75(0.75);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble(0.0, 100.0);
    q25.Add(v);
    q50.Add(v);
    q75.Add(v);
  }
  EXPECT_NEAR(q25.Value(), 24.941157236296, 1e-9);
  EXPECT_NEAR(q50.Value(), 50.166019042706, 1e-9);
  EXPECT_NEAR(q75.Value(), 74.864861642945, 1e-9);
}

TEST(P2QuantileTest, ConstantStream) {
  P2Quantile q(0.5);
  for (int i = 0; i < 100; ++i) q.Add(4.2);
  EXPECT_DOUBLE_EQ(q.Value(), 4.2);
}

TEST(P2QuantileTest, RobustToOutlierSpikes) {
  // 10% massive outliers should barely move the median.
  Rng rng(7);
  P2Quantile q(0.5);
  for (int i = 0; i < 50000; ++i) {
    q.Add(i % 10 == 0 ? 1e6 : rng.NextDouble(0.0, 1.0));
  }
  EXPECT_GT(q.Value(), 0.3);
  EXPECT_LT(q.Value(), 0.9);
}

}  // namespace
}  // namespace stardust
