#include "transform/feature.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stardust {
namespace {

std::vector<double> RandomWindow(Rng* rng, std::size_t n, double lo,
                                 double hi) {
  std::vector<double> x(n);
  for (double& v : x) v = rng->NextDouble(lo, hi);
  return x;
}

TEST(FeatureTest, UnitSphereNormalizationFormula) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> n = NormalizeUnitSphere(x, 10.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(n[i], x[i] / (2.0 * 10.0));
  }
}

// Equation 2 maps any window with values in [0, R_max] into the unit
// hyper-sphere (norm <= 1).
TEST(FeatureTest, UnitSphereNormIsAtMostOne) {
  Rng rng(1);
  for (int iter = 0; iter < 100; ++iter) {
    const std::vector<double> x = RandomWindow(&rng, 64, 0.0, 7.5);
    const std::vector<double> n = NormalizeUnitSphere(x, 7.5);
    double norm2 = 0.0;
    for (double v : n) norm2 += v * v;
    EXPECT_LE(norm2, 1.0 + 1e-12);
  }
}

TEST(FeatureTest, ZNormalizeHasZeroMeanUnitNorm) {
  Rng rng(2);
  for (int iter = 0; iter < 100; ++iter) {
    const std::vector<double> x = RandomWindow(&rng, 32, -5.0, 5.0);
    const std::vector<double> z = ZNormalize(x);
    double mean = 0.0, norm2 = 0.0;
    for (double v : z) {
      mean += v;
      norm2 += v * v;
    }
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(norm2, 1.0, 1e-9);
  }
}

TEST(FeatureTest, ZNormalizeConstantWindowIsZero) {
  const std::vector<double> z = ZNormalize({3.0, 3.0, 3.0});
  for (double v : z) EXPECT_EQ(v, 0.0);
}

TEST(FeatureTest, ZNormalizeIsShiftAndScaleInvariant) {
  Rng rng(3);
  const std::vector<double> x = RandomWindow(&rng, 16, -1.0, 1.0);
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = 4.0 * x[i] + 11.0;
  const std::vector<double> zx = ZNormalize(x);
  const std::vector<double> zy = ZNormalize(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(zx[i], zy[i], 1e-9);
  }
}

// corr = 1 - d²/2 identity (Section 2.4): Pearson correlation computed
// directly equals the one recovered from the z-normalized distance.
TEST(FeatureTest, CorrelationDistanceIdentity) {
  Rng rng(4);
  for (int iter = 0; iter < 100; ++iter) {
    const std::vector<double> x = RandomWindow(&rng, 64, -5.0, 5.0);
    const std::vector<double> y = RandomWindow(&rng, 64, -5.0, 5.0);
    const double d2 = Dist2(ZNormalize(x), ZNormalize(y));
    const double via_distance = CorrelationFromDist2(d2);
    const double direct = PearsonCorrelation(x, y);
    EXPECT_NEAR(via_distance, direct, 1e-9);
  }
}

TEST(FeatureTest, PerfectCorrelationAndAnticorrelation) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> pos(x.size()), neg(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    pos[i] = 2.0 * x[i] + 1.0;
    neg[i] = -3.0 * x[i] + 2.0;
  }
  EXPECT_NEAR(PearsonCorrelation(x, pos), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(FeatureTest, DistanceForMinCorrelationRoundTrip) {
  for (double corr : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const double d = DistanceForMinCorrelation(corr);
    EXPECT_NEAR(CorrelationFromDist2(d * d), corr, 1e-12);
  }
}

TEST(FeatureTest, DwtFeatureLengthAndLinearity) {
  Rng rng(5);
  const std::vector<double> x = RandomWindow(&rng, 32, -1.0, 1.0);
  const Point f = DwtFeature(x, 4);
  ASSERT_EQ(f.size(), 4u);
  // Linearity: feature of 2x equals 2·feature of x.
  std::vector<double> x2(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) x2[i] = 2.0 * x[i];
  const Point f2 = DwtFeature(x2, 4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(f2[i], 2.0 * f[i], 1e-12);
}

TEST(FeatureTest, NormalizeWindowDispatch) {
  const std::vector<double> x{2.0, 4.0};
  EXPECT_EQ(NormalizeWindow(x, Normalization::kNone, 1.0), x);
  EXPECT_EQ(NormalizeWindow(x, Normalization::kUnitSphere, 2.0),
            NormalizeUnitSphere(x, 2.0));
  EXPECT_EQ(NormalizeWindow(x, Normalization::kZNorm, 1.0), ZNormalize(x));
}

}  // namespace
}  // namespace stardust
