#include "transform/sliding_tracker.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stardust {
namespace {

double BruteForce(AggregateKind kind, const std::vector<double>& data,
                  std::size_t end, std::size_t w) {
  const auto first = data.begin() + (end + 1 - w);
  const auto last = data.begin() + (end + 1);
  switch (kind) {
    case AggregateKind::kSum: {
      double s = 0.0;
      for (auto it = first; it != last; ++it) s += *it;
      return s;
    }
    case AggregateKind::kMax:
      return *std::max_element(first, last);
    case AggregateKind::kMin:
      return *std::min_element(first, last);
    case AggregateKind::kSpread:
      return *std::max_element(first, last) - *std::min_element(first, last);
  }
  return 0.0;
}

class SlidingTrackerProperty
    : public ::testing::TestWithParam<AggregateKind> {};

TEST_P(SlidingTrackerProperty, MatchesBruteForceOnRandomData) {
  const AggregateKind kind = GetParam();
  Rng rng(55);
  const std::vector<std::size_t> windows{1, 3, 7, 20, 64};
  SlidingAggregateTracker tracker(kind, windows);
  std::vector<double> data;
  for (std::size_t t = 0; t < 500; ++t) {
    const double v = rng.NextDouble(-100.0, 100.0);
    data.push_back(v);
    tracker.Push(v);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (t + 1 < windows[i]) {
        EXPECT_FALSE(tracker.Ready(i));
        continue;
      }
      ASSERT_TRUE(tracker.Ready(i));
      EXPECT_NEAR(tracker.Current(i),
                  BruteForce(kind, data, t, windows[i]), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SlidingTrackerProperty,
                         ::testing::Values(AggregateKind::kSum,
                                           AggregateKind::kMax,
                                           AggregateKind::kMin,
                                           AggregateKind::kSpread));

TEST(SlidingTrackerTest, WindowOfOneTracksLatestValue) {
  SlidingAggregateTracker tracker(AggregateKind::kMax, {1});
  tracker.Push(5.0);
  EXPECT_EQ(tracker.Current(0), 5.0);
  tracker.Push(-2.0);
  EXPECT_EQ(tracker.Current(0), -2.0);
}

TEST(SlidingTrackerTest, NowCounts) {
  SlidingAggregateTracker tracker(AggregateKind::kSum, {4});
  EXPECT_EQ(tracker.now(), 0u);
  tracker.Push(1.0);
  tracker.Push(1.0);
  EXPECT_EQ(tracker.now(), 2u);
  EXPECT_FALSE(tracker.Ready(0));
}

TEST(SlidingTrackerTest, SumHandlesLongRunsWithoutDrift) {
  SlidingAggregateTracker tracker(AggregateKind::kSum, {10});
  for (int i = 0; i < 100000; ++i) tracker.Push(1.0);
  EXPECT_NEAR(tracker.Current(0), 10.0, 1e-6);
}

TEST(SlidingTrackerTest, SpreadOfMonotoneRun) {
  SlidingAggregateTracker tracker(AggregateKind::kSpread, {5});
  for (int i = 0; i < 20; ++i) {
    tracker.Push(static_cast<double>(i));
    if (i >= 4) {
      EXPECT_EQ(tracker.Current(0), 4.0);
    }
  }
}

}  // namespace
}  // namespace stardust
