#include "transform/sliding_tracker.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serialize.h"

namespace stardust {
namespace {

double BruteForce(AggregateKind kind, const std::vector<double>& data,
                  std::size_t end, std::size_t w) {
  const auto first = data.begin() + (end + 1 - w);
  const auto last = data.begin() + (end + 1);
  switch (kind) {
    case AggregateKind::kSum: {
      double s = 0.0;
      for (auto it = first; it != last; ++it) s += *it;
      return s;
    }
    case AggregateKind::kMax:
      return *std::max_element(first, last);
    case AggregateKind::kMin:
      return *std::min_element(first, last);
    case AggregateKind::kSpread:
      return *std::max_element(first, last) - *std::min_element(first, last);
  }
  return 0.0;
}

class SlidingTrackerProperty
    : public ::testing::TestWithParam<AggregateKind> {};

TEST_P(SlidingTrackerProperty, MatchesBruteForceOnRandomData) {
  const AggregateKind kind = GetParam();
  Rng rng(55);
  const std::vector<std::size_t> windows{1, 3, 7, 20, 64};
  SlidingAggregateTracker tracker(kind, windows);
  std::vector<double> data;
  for (std::size_t t = 0; t < 500; ++t) {
    const double v = rng.NextDouble(-100.0, 100.0);
    data.push_back(v);
    tracker.Push(v);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (t + 1 < windows[i]) {
        EXPECT_FALSE(tracker.Ready(i));
        continue;
      }
      ASSERT_TRUE(tracker.Ready(i));
      EXPECT_NEAR(tracker.Current(i),
                  BruteForce(kind, data, t, windows[i]), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SlidingTrackerProperty,
                         ::testing::Values(AggregateKind::kSum,
                                           AggregateKind::kMax,
                                           AggregateKind::kMin,
                                           AggregateKind::kSpread));

TEST(SlidingTrackerTest, WindowOfOneTracksLatestValue) {
  SlidingAggregateTracker tracker(AggregateKind::kMax, {1});
  tracker.Push(5.0);
  EXPECT_EQ(tracker.Current(0), 5.0);
  tracker.Push(-2.0);
  EXPECT_EQ(tracker.Current(0), -2.0);
}

TEST(SlidingTrackerTest, NowCounts) {
  SlidingAggregateTracker tracker(AggregateKind::kSum, {4});
  EXPECT_EQ(tracker.now(), 0u);
  tracker.Push(1.0);
  tracker.Push(1.0);
  EXPECT_EQ(tracker.now(), 2u);
  EXPECT_FALSE(tracker.Ready(0));
}

TEST(SlidingTrackerTest, SumHandlesLongRunsWithoutDrift) {
  SlidingAggregateTracker tracker(AggregateKind::kSum, {10});
  for (int i = 0; i < 100000; ++i) tracker.Push(1.0);
  EXPECT_NEAR(tracker.Current(0), 10.0, 1e-6);
}

// The kSum bugfix: subtract-on-evict alone loses one rounding error per
// arrival, a random walk that grows with stream length. With large-
// magnitude values over 10M appends the naive accumulator drifts visibly
// while the compensated tracker stays within a few ulps of the exact
// window sum throughout.
TEST(SlidingTrackerTest, SumDoesNotDriftOverTenMillionAppends) {
  constexpr std::size_t kWindow = 64;
  constexpr std::size_t kAppends = 10'000'000;
  SlidingAggregateTracker tracker(AggregateKind::kSum, {kWindow});
  Rng rng(77);

  // The naive subtract-on-evict accumulator the tracker used to be.
  double naive_sum = 0.0;
  std::vector<double> ring(kWindow, 0.0);

  double max_tracker_error = 0.0;
  double max_naive_error = 0.0;
  for (std::size_t t = 0; t < kAppends; ++t) {
    // Large offset so each add/evict rounds: the regime where the drift
    // actually shows.
    const double v = 1.0e9 + rng.NextDouble(-1.0, 1.0);
    tracker.Push(v);
    naive_sum += v;
    if (t >= kWindow) naive_sum -= ring[t % kWindow];
    ring[t % kWindow] = v;

    // Checking every append would dominate the runtime; the drift is
    // monotone-ish in expectation, so periodic checks plus the final one
    // bound it fine.
    if (t >= kWindow && (t % 1'000'000 == 0 || t == kAppends - 1)) {
      long double exact = 0.0L;
      for (double r : ring) exact += static_cast<long double>(r);
      const double exact_sum = static_cast<double>(exact);
      max_tracker_error =
          std::max(max_tracker_error,
                   std::abs(tracker.Current(0) - exact_sum));
      max_naive_error =
          std::max(max_naive_error, std::abs(naive_sum - exact_sum));
    }
  }
  // Compensated: bounded by a few ulps of the window magnitude (~6.4e10,
  // ulp ~ 1e-5) regardless of stream length.
  EXPECT_LT(max_tracker_error, 1e-3) << "compensated sum drifted";
  // And strictly tighter than the naive accumulator it replaced.
  EXPECT_LT(max_tracker_error, max_naive_error);
}

TEST(SlidingTrackerTest, SaveRestoreRoundTripAllKinds) {
  for (const AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMax, AggregateKind::kMin,
        AggregateKind::kSpread}) {
    const std::vector<std::size_t> windows{3, 8, 25};
    SlidingAggregateTracker original(kind, windows);
    Rng rng(123);
    for (int t = 0; t < 400; ++t) {
      original.Push(rng.NextDouble(-50.0, 50.0));
    }

    Writer writer;
    original.SaveTo(&writer);
    Reader reader(writer.buffer());
    SlidingAggregateTracker restored(kind, windows);
    ASSERT_TRUE(restored.RestoreFrom(&reader).ok());
    ASSERT_TRUE(reader.AtEnd());

    EXPECT_EQ(restored.now(), original.now());
    // Continue both with the same values: bit-exact agreement.
    for (int t = 0; t < 200; ++t) {
      const double v = rng.NextDouble(-50.0, 50.0);
      original.Push(v);
      restored.Push(v);
      for (std::size_t i = 0; i < windows.size(); ++i) {
        EXPECT_EQ(restored.Current(i), original.Current(i))
            << "kind " << static_cast<int>(kind) << " window " << i;
      }
    }
  }
}

TEST(SlidingTrackerTest, RestoreRejectsShapeMismatchAndCorruption) {
  SlidingAggregateTracker original(AggregateKind::kMax, {4, 16});
  Rng rng(9);
  for (int t = 0; t < 100; ++t) original.Push(rng.NextDouble(0.0, 1.0));
  Writer writer;
  original.SaveTo(&writer);
  const std::string bytes = writer.buffer();

  {  // Wrong kind.
    Reader reader(bytes);
    SlidingAggregateTracker other(AggregateKind::kMin, {4, 16});
    EXPECT_FALSE(other.RestoreFrom(&reader).ok());
  }
  {  // Wrong window set.
    Reader reader(bytes);
    SlidingAggregateTracker other(AggregateKind::kMax, {4, 32});
    EXPECT_FALSE(other.RestoreFrom(&reader).ok());
  }
  {  // Truncated payload.
    const std::string cut = bytes.substr(0, bytes.size() / 2);
    Reader reader(cut);
    SlidingAggregateTracker other(AggregateKind::kMax, {4, 16});
    EXPECT_FALSE(other.RestoreFrom(&reader).ok());
  }
}

TEST(SlidingTrackerTest, SpreadOfMonotoneRun) {
  SlidingAggregateTracker tracker(AggregateKind::kSpread, {5});
  for (int i = 0; i < 20; ++i) {
    tracker.Push(static_cast<double>(i));
    if (i >= 4) {
      EXPECT_EQ(tracker.Current(0), 4.0);
    }
  }
}

}  // namespace
}  // namespace stardust
