#include "core/lag_correlation.h"

#include <cmath>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transform/feature.h"

namespace stardust {
namespace {

StardustConfig LagConfig(std::size_t w, std::size_t levels,
                         std::size_t extra_history) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = w;
  config.num_levels = levels;
  config.history = (w << (levels - 1)) + extra_history;
  config.box_capacity = 1;
  config.update_period = w;
  return config;
}

TEST(LagCorrelationTest, CreateValidation) {
  // history == N: no room for lags > 0.
  EXPECT_TRUE(
      LagCorrelationMonitor::Create(LagConfig(8, 3, 0), 4, 0.5, 0).ok());
  EXPECT_FALSE(
      LagCorrelationMonitor::Create(LagConfig(8, 3, 0), 4, 0.5, 8).ok());
  EXPECT_TRUE(
      LagCorrelationMonitor::Create(LagConfig(8, 3, 16), 4, 0.5, 16).ok());
  // max_lag must be a multiple of W.
  EXPECT_FALSE(
      LagCorrelationMonitor::Create(LagConfig(8, 3, 16), 4, 0.5, 12).ok());
  EXPECT_FALSE(
      LagCorrelationMonitor::Create(LagConfig(8, 3, 16), 0, 0.5, 8).ok());
  EXPECT_FALSE(
      LagCorrelationMonitor::Create(LagConfig(8, 3, 16), 4, -0.5, 8).ok());
}

TEST(LagCorrelationTest, DetectsPlantedLaggedPair) {
  const std::size_t w = 8, levels = 4;  // N = 64
  const std::size_t lag = 16;           // two feature rounds
  auto monitor = std::move(LagCorrelationMonitor::Create(
                               LagConfig(w, levels, 64), 4, 0.3, 32))
                     .value();
  // Stream 1 follows stream 0 with the given lag; 2 and 3 independent.
  Rng rng(5);
  std::vector<double> leader_history;
  double walk = 10.0, w2 = 40.0, w3 = 80.0;
  for (std::size_t t = 0; t < 400; ++t) {
    walk += rng.NextDouble() - 0.5;
    leader_history.push_back(walk);
    w2 += rng.NextDouble() - 0.5;
    w3 += rng.NextDouble() - 0.5;
    const double follower =
        t >= lag ? leader_history[t - lag] + 0.001 * rng.NextGaussian()
                 : 0.0;
    ASSERT_TRUE(monitor->AppendAll({walk, follower, w2, w3}).ok());
  }
  bool found = false;
  for (const auto& pair : monitor->last_round()) {
    if (pair.leader == 0 && pair.follower == 1 && pair.lag == lag) {
      found = true;
      EXPECT_TRUE(pair.verified);
      EXPECT_LT(pair.distance, 0.3);
    }
  }
  EXPECT_TRUE(found) << "planted lagged pair not reported";
  EXPECT_GT(monitor->stats().true_pairs, 0u);
}

// With max_lag = 0 the monitor reduces to plain correlation detection:
// verified lag-0 pairs match the exact oracle.
TEST(LagCorrelationTest, ZeroLagMatchesExactPairs) {
  const std::size_t w = 8, levels = 4;
  const std::size_t n = w << (levels - 1);
  auto monitor = std::move(LagCorrelationMonitor::Create(
                               LagConfig(w, levels, 0), 6, 0.8, 0))
                     .value();
  Rng rng(9);
  std::vector<std::vector<double>> streams(6);
  std::vector<double> values(6);
  std::vector<double> walks{10, 10.05, 50, 90, 130, 170};
  for (std::size_t t = 0; t < 200; ++t) {
    for (std::size_t i = 0; i < 6; ++i) {
      walks[i] += rng.NextDouble() - 0.5;
      // Streams 0 and 1 share increments (strong correlation).
      if (i == 1) walks[1] = walks[0] + 0.05;
      values[i] = walks[i];
      streams[i].push_back(values[i]);
    }
    ASSERT_TRUE(monitor->AppendAll(values).ok());
  }
  // Exact pairs over the final window.
  std::set<std::pair<StreamId, StreamId>> oracle;
  std::vector<std::vector<double>> z(6);
  for (std::size_t i = 0; i < 6; ++i) {
    std::vector<double> window(streams[i].end() - n, streams[i].end());
    z[i] = ZNormalize(window);
  }
  for (StreamId i = 0; i < 6; ++i) {
    for (StreamId j = i + 1; j < 6; ++j) {
      if (Dist2(z[i], z[j]) <= 0.8 * 0.8) oracle.insert({i, j});
    }
  }
  std::set<std::pair<StreamId, StreamId>> reported;
  for (const auto& pair : monitor->last_round()) {
    EXPECT_EQ(pair.lag, 0u);
    if (pair.verified) {
      reported.insert({std::min(pair.leader, pair.follower),
                       std::max(pair.leader, pair.follower)});
    }
  }
  EXPECT_EQ(reported, oracle);
  EXPECT_TRUE(oracle.count({0, 1}) == 1);
}

TEST(LagCorrelationTest, CandidatesDominateVerified) {
  auto monitor = std::move(LagCorrelationMonitor::Create(
                               LagConfig(8, 3, 32), 5, 0.9, 32))
                     .value();
  Rng rng(11);
  std::vector<double> values(5);
  std::vector<double> walks{10, 30, 50, 70, 90};
  for (std::size_t t = 0; t < 300; ++t) {
    for (std::size_t i = 0; i < 5; ++i) {
      walks[i] += rng.NextDouble() - 0.5;
      values[i] = walks[i];
    }
    ASSERT_TRUE(monitor->AppendAll(values).ok());
  }
  EXPECT_GE(monitor->stats().candidates, monitor->stats().true_pairs);
  EXPECT_LE(monitor->stats().Precision(), 1.0);
}

TEST(LagCorrelationTest, RejectsWrongValueCount) {
  auto monitor = std::move(LagCorrelationMonitor::Create(
                               LagConfig(8, 3, 16), 3, 0.5, 8))
                     .value();
  EXPECT_FALSE(monitor->AppendAll({1.0}).ok());
}

}  // namespace
}  // namespace stardust
