// Variable-length pattern search over price-like streams (paper Sections
// 1 and 5.2): "find all time periods during which the movement of a
// particular stock follows an interesting trend", without fixing the
// trend's duration in advance.
//
//   $ ./build/examples/stock_patterns
//
// Indexes 8 random-walk "price" streams online, then issues the same
// head-and-shoulders-like template at three different durations — the
// variable-length capability single-resolution indexes lack.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "core/pattern_query.h"
#include "stream/dataset.h"

namespace {

// A smooth three-peak template resampled to any length, scaled into the
// value range of the data.
std::vector<double> TrendTemplate(std::size_t length, double level,
                                  double amplitude) {
  std::vector<double> out(length);
  for (std::size_t i = 0; i < length; ++i) {
    const double x = static_cast<double>(i) / (length - 1);  // [0, 1]
    const double shoulders = std::sin(3.0 * std::numbers::pi * x);
    const double head = std::exp(-40.0 * (x - 0.5) * (x - 0.5));
    out[i] = level + amplitude * (0.4 * shoulders + 0.8 * head);
  }
  return out;
}

}  // namespace

int main() {
  using namespace stardust;

  // Price streams, with the template planted into stream 5 at two
  // different durations.
  Dataset data = MakeRandomWalkDataset(8, 4096, /*seed=*/31);
  const auto short_trend = TrendTemplate(128, 55.0, 6.0);
  const auto long_trend = TrendTemplate(512, 48.0, 9.0);
  for (std::size_t i = 0; i < short_trend.size(); ++i) {
    data.streams[5][800 + i] = short_trend[i];
  }
  for (std::size_t i = 0; i < long_trend.size(); ++i) {
    data.streams[5][2600 + i] = long_trend[i];
  }

  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 8;
  config.r_max = data.r_max;
  config.base_window = 64;
  config.num_levels = 4;  // query lengths up to 64 * 15
  config.history = 4096;
  config.box_capacity = 16;
  config.update_period = 1;  // online algorithm -> Algorithm 3 queries
  config.index_features = true;

  auto core_or = Stardust::Create(config);
  if (!core_or.ok()) {
    std::fprintf(stderr, "%s\n", core_or.status().ToString().c_str());
    return 1;
  }
  auto core = std::move(core_or).value();
  for (std::size_t i = 0; i < data.num_streams(); ++i) {
    const StreamId id = core->AddStream();
    for (double v : data.streams[i]) {
      if (!core->Append(id, v).ok()) return 1;
    }
  }
  PatternQueryEngine engine(*core);

  // The same trend at three durations — no re-indexing required.
  for (std::size_t duration : {128u, 256u, 512u}) {
    const auto query = TrendTemplate(duration, 50.0, 8.0);
    const double radius = 0.02;
    auto result = engine.QueryOnline(query, radius);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("trend of %3zu days, radius %.2f: %2zu match(es), "
                "%llu candidates checked (precision %.2f)\n",
                duration, radius, result.value().matches.size(),
                static_cast<unsigned long long>(result.value().candidates),
                result.value().Precision());
    // Matches come in runs of near-identical alignments; show the best
    // few only.
    std::vector<PatternMatch> top = result.value().matches;
    std::sort(top.begin(), top.end(),
              [](const PatternMatch& a, const PatternMatch& b) {
                return a.distance < b.distance;
              });
    for (std::size_t i = 0; i < top.size() && i < 3; ++i) {
      std::printf("    stream %u, days %llu..%llu, distance %.4f\n",
                  top[i].stream,
                  static_cast<unsigned long long>(
                      top[i].end_time - duration + 1),
                  static_cast<unsigned long long>(top[i].end_time),
                  top[i].distance);
    }
  }
  std::printf("\nThe 128- and 512-day plants surface at their own\n"
              "timescales; the multi-resolution index answered all three\n"
              "durations from the same summary.\n");
  return 0;
}
