// stardust_server — the network front door as a standalone process.
//
//   stardust_server --streams M [--shards n] [--port p] [--host addr]
//                   [--base K] [--agg-window W] [--agg-threshold T]
//                   [--overload block|drop-newest|drop-oldest]
//                   [--queue-capacity c] [--max-connections n]
//                   [--replay n] [--hub-overflow block|drop-newest|drop-oldest]
//                   [--checkpoint dir] [--checkpoint-period ms]
//                   [--metrics-period s] [--duration s]
//
// Boots a sharded IngestEngine, registers an aggregate threshold query
// when --agg-threshold is given, and serves the binary frame protocol
// (docs/NETWORK.md) on the given port: producers stream Batch frames in,
// subscribers get every alert pushed with a durable, resumable cursor.
//
//   --port 0 (the default) binds an ephemeral port; the actual port is
//     printed on stderr as "listening on <host>:<port>".
//   --checkpoint names a directory to restore from at boot (when it
//     holds a complete checkpoint) and to checkpoint into every
//     --checkpoint-period ms (default 2000) plus once at shutdown —
//     subscriber cursors and the alert sequence allocator ride along
//     (manifest v4), so reconnecting subscribers resume across restarts.
//   --metrics-period prints the merged engine+net metrics JSON on stdout
//     every s seconds (0 disables; default 10).
//   --duration exits after s seconds; default 0 runs until SIGINT/SIGTERM.
//
// Producer/subscriber counterparts live in stardust_cli (`ingest` and
// `subscribe --tcp`).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <chrono>
#include <memory>
#include <thread>

#include "engine/engine.h"
#include "net/server.h"
#include "stream/threshold.h"

namespace {

using namespace stardust;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct Args {
  std::map<std::string, std::string> options;

  double GetDouble(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    auto it = options.find(key);
    return it == options.end()
               ? fallback
               : static_cast<std::size_t>(
                     std::strtoull(it->second.c_str(), nullptr, 10));
  }
  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

bool ParsePolicy(const std::string& name, OverloadPolicy* out) {
  if (name == "block") {
    *out = OverloadPolicy::kBlock;
  } else if (name == "drop-newest") {
    *out = OverloadPolicy::kDropNewest;
  } else if (name == "drop-oldest") {
    *out = OverloadPolicy::kDropOldest;
  } else {
    return false;
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: stardust_server --streams M [--shards n] [--port p] "
               "[--agg-window W --agg-threshold T] [--checkpoint dir] ...\n"
               "see the header of examples/stardust_server.cpp for the "
               "full option list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || i + 1 >= argc) return Usage();
    args.options[arg.substr(2)] = argv[++i];
  }
  if (args.options.count("streams") == 0) return Usage();
  const std::size_t num_streams = args.GetSize("streams", 0);
  if (num_streams == 0) return Usage();

  const std::size_t base = args.GetSize("base", 10);
  const std::size_t agg_window = args.GetSize("agg-window", 2 * base);

  // Fleet core sized so the query window is an indexed resolution; the
  // fleet's own thresholds are parked out of range — alerts come from
  // registered queries only (same shape as stardust_cli subscribe).
  StardustConfig fleet;
  fleet.transform = TransformKind::kAggregate;
  fleet.aggregate = AggregateKind::kSum;
  fleet.base_window = base;
  fleet.num_levels = 1;
  while ((agg_window / std::max<std::size_t>(base, 1)) >> fleet.num_levels) {
    ++fleet.num_levels;
  }
  fleet.history = std::max(4 * agg_window, base << (fleet.num_levels - 1));
  fleet.box_capacity = args.GetSize("capacity", 4);
  fleet.update_period = 1;
  std::vector<WindowThreshold> fleet_thresholds = {{base, 1e18}};

  EngineConfig econfig;
  econfig.num_shards = args.GetSize("shards", 4);
  econfig.queue_capacity = args.GetSize("queue-capacity", 1024);
  econfig.max_batch = args.GetSize("max-batch", base);
  if (!ParsePolicy(args.GetString("overload", "block"), &econfig.overload)) {
    return Usage();
  }

  const std::string checkpoint_dir = args.GetString("checkpoint", "");
  if (!checkpoint_dir.empty()) {
    econfig.checkpoint_dir = checkpoint_dir;
    econfig.checkpoint_period_ms = args.GetSize("checkpoint-period", 2000);
  }

  // Restore from the checkpoint directory when it holds a complete
  // checkpoint; boot fresh otherwise.
  bool restored = false;
  Result<std::unique_ptr<IngestEngine>> engine = Status::NotFound("fresh");
  if (!checkpoint_dir.empty()) {
    engine = IngestEngine::Create(fleet, fleet_thresholds, num_streams,
                                  econfig, checkpoint_dir);
    restored = engine.ok();
    if (!engine.ok() && engine.status().code() != StatusCode::kNotFound) {
      return Fail(engine.status());
    }
  }
  if (!engine.ok()) {
    engine = IngestEngine::Create(fleet, fleet_thresholds, num_streams,
                                  econfig);
    if (!engine.ok()) return Fail(engine.status());
  }

  // A restored engine continues its checkpointed query lineage; only a
  // fresh boot registers the requested query.
  if (!restored && args.options.count("agg-threshold") != 0) {
    Result<QueryId> id = engine.value()->RegisterQuery(QuerySpec::Aggregate(
        agg_window, args.GetDouble("agg-threshold", 0.0)));
    if (!id.ok()) return Fail(id.status());
  }

  net::NetServer::Options options;
  options.host = args.GetString("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(args.GetSize("port", 0));
  options.max_connections = args.GetSize("max-connections", 64);
  options.hub.replay_capacity = args.GetSize("replay", 1 << 16);
  if (!ParsePolicy(args.GetString("hub-overflow", "drop-oldest"),
                   &options.hub.overflow)) {
    return Usage();
  }

  Result<std::unique_ptr<net::NetServer>> server =
      net::NetServer::Start(engine.value().get(), options);
  if (!server.ok()) return Fail(server.status());

  std::fprintf(stderr, "listening on %s:%u (%zu stream(s), %zu shard(s)%s)\n",
               options.host.c_str(), server.value()->port(), num_streams,
               engine.value()->num_shards(),
               restored ? ", restored from checkpoint" : "");

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  const std::size_t metrics_period = args.GetSize("metrics-period", 10);
  const std::size_t duration = args.GetSize("duration", 0);
  const auto start = std::chrono::steady_clock::now();
  auto last_metrics = start;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const auto now = std::chrono::steady_clock::now();
    if (duration > 0 &&
        now - start >= std::chrono::seconds(duration)) {
      break;
    }
    if (metrics_period > 0 &&
        now - last_metrics >= std::chrono::seconds(metrics_period)) {
      std::printf("%s\n", server.value()->MetricsJson().c_str());
      std::fflush(stdout);
      last_metrics = now;
    }
  }

  // Shutdown: close the front door first (cursors persist in the hub),
  // take a final checkpoint so they survive the restart, then stop the
  // engine.
  Status st = server.value()->Stop();
  if (!st.ok()) return Fail(st);
  if (!checkpoint_dir.empty()) {
    st = engine.value()->Checkpoint(checkpoint_dir);
    if (!st.ok()) {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   st.ToString().c_str());
    }
  }
  st = engine.value()->Stop();
  if (!st.ok()) return Fail(st);
  std::printf("%s\n", server.value()->MetricsJson().c_str());
  return 0;
}
