// Gamma-ray burst detection — the paper's motivating astrophysics
// scenario (Section 1): a photon detector produces an event count per
// tick; a burst may last "a few milliseconds, a few hours, or even a few
// days", so the monitor must watch every timescale at once.
//
//   $ ./build/examples/gamma_ray_burst
//
// Sets up an AggregateMonitor over 24 window sizes spanning two orders of
// magnitude, with thresholds trained on a quiet prefix, and reports the
// alarms as they happen — then compares against the SWT baseline.
#include <cstdio>
#include <vector>

#include "baselines/swt.h"
#include "core/aggregate_monitor.h"
#include "stream/bursty_source.h"
#include "stream/threshold.h"

int main() {
  using namespace stardust;

  // The detector: Poisson-like background with injected bursts whose
  // durations are log-uniform over [8, 1200] ticks.
  BurstySourceOptions source_options;
  source_options.background_rate = 12.0;
  source_options.mean_burst_gap = 600.0;
  BurstySource detector(/*seed=*/2025, source_options);

  // Train thresholds tau_w = mu + 4 sigma on a quiet training prefix.
  BurstySource training_detector(/*seed=*/1905,
                                 BurstySourceOptions{
                                     .background_rate = 12.0,
                                     .mean_burst_gap = 1e9,  // no bursts
                                 });
  const std::vector<double> training = training_detector.Take(6000);
  const std::size_t base = 10;
  std::vector<std::size_t> windows;
  for (std::size_t i = 1; i <= 24; ++i) windows.push_back(i * base);
  const auto thresholds =
      TrainThresholds(AggregateKind::kSum, training, windows, 4.0);

  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = base;
  config.num_levels = 5;  // covers b = w/W up to 24
  config.history = 512;
  config.box_capacity = 4;
  config.update_period = 1;
  auto monitor_or = AggregateMonitor::Create(config, thresholds);
  if (!monitor_or.ok()) {
    std::fprintf(stderr, "%s\n", monitor_or.status().ToString().c_str());
    return 1;
  }
  auto monitor = std::move(monitor_or).value();
  auto swt =
      std::move(SwtMonitor::Create(AggregateKind::kSum, base, thresholds))
          .value();

  // Stream 30,000 ticks; print a line whenever a new burst epoch begins.
  std::uint64_t last_alarm_tick = 0;
  std::uint64_t previous_true = 0;
  for (std::uint64_t t = 0; t < 30000; ++t) {
    const double count = detector.Next();
    if (!monitor->Append(count).ok()) return 1;
    swt->Append(count);
    const std::uint64_t now_true = monitor->TotalStats().true_alarms;
    if (now_true > previous_true && t > last_alarm_tick + 50) {
      // Report which timescales see the burst right now.
      std::printf("t=%6llu  burst detected on windows:",
                  static_cast<unsigned long long>(t));
      int printed = 0;
      for (std::size_t i = 0; i < monitor->num_windows() && printed < 6;
           ++i) {
        auto answer = monitor->stardust().AggregateQuery(
            0, monitor->threshold(i).window, monitor->threshold(i).threshold);
        if (answer.ok() && answer.value().alarm) {
          std::printf(" %zu", monitor->threshold(i).window);
          ++printed;
        }
      }
      std::printf("\n");
      last_alarm_tick = t;
    }
    previous_true = now_true;
  }

  const AlarmStats sd = monitor->TotalStats();
  const AlarmStats sw = swt->TotalStats();
  std::printf("\n%-10s  alarms raised %8llu  true %8llu  precision %.3f\n",
              "Stardust",
              static_cast<unsigned long long>(sd.candidates),
              static_cast<unsigned long long>(sd.true_alarms),
              sd.Precision());
  std::printf("%-10s  alarms raised %8llu  true %8llu  precision %.3f\n",
              "SWT", static_cast<unsigned long long>(sw.candidates),
              static_cast<unsigned long long>(sw.true_alarms),
              sw.Precision());
  std::printf("\nBoth monitors catch every true burst (sound filters);\n"
              "Stardust wastes far fewer verifications doing so.\n");
  return 0;
}
