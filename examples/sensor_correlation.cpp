// Correlation monitoring across a sensor network (paper Sections 1, 2.4,
// 5.3): continuously report pairs of sensors whose recent histories are
// correlated above a chosen coefficient.
//
//   $ ./build/examples/sensor_correlation
//
// Builds 12 temperature-like sensor streams where sensors 0-2 share a
// common weather signal, 3-4 share another (inverted for 4), and the rest
// drift independently; then monitors Pearson correlation >= 0.9 over a
// sliding history of 256 samples.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/correlation_monitor.h"
#include "transform/feature.h"

int main() {
  using namespace stardust;

  const std::size_t num_sensors = 12;
  const std::size_t history = 256;     // N
  const std::size_t basic_window = 16; // W: features refresh every 16

  // Correlation >= 0.9 corresponds to z-normalized distance <= sqrt(0.2).
  const double min_correlation = 0.9;
  const double radius = DistanceForMinCorrelation(min_correlation);

  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 8;
  config.base_window = basic_window;
  config.num_levels = 5;  // N = W * 2^4
  config.history = history;
  config.box_capacity = 1;            // batch algorithm (c = 1, T = W)
  config.update_period = basic_window;

  auto monitor_or = CorrelationMonitor::Create(config, num_sensors, radius);
  if (!monitor_or.ok()) {
    std::fprintf(stderr, "%s\n", monitor_or.status().ToString().c_str());
    return 1;
  }
  auto monitor = std::move(monitor_or).value();

  // Simulate the sensor field.
  Rng rng(99);
  double weather_a = 20.0, weather_b = 5.0;
  std::vector<double> independent(num_sensors, 15.0);
  std::vector<double> values(num_sensors);
  std::size_t rounds_printed = 0;
  for (std::size_t t = 0; t < 1200; ++t) {
    weather_a += 0.3 * rng.NextGaussian();
    weather_b += 0.3 * rng.NextGaussian();
    for (std::size_t i = 0; i < num_sensors; ++i) {
      if (i <= 2) {
        values[i] = weather_a + 0.05 * rng.NextGaussian();
      } else if (i == 3) {
        values[i] = weather_b + 0.05 * rng.NextGaussian();
      } else if (i == 4) {
        values[i] = -weather_b + 0.05 * rng.NextGaussian();  // anti-corr.
      } else {
        independent[i] += 0.3 * rng.NextGaussian();
        values[i] = independent[i];
      }
    }
    if (!monitor->AppendAll(values).ok()) return 1;
    if (!monitor->last_round().empty() && rounds_printed < 5 &&
        t % 128 == 0) {
      std::printf("t=%4zu correlated pairs:", t);
      for (const auto& pair : monitor->last_round()) {
        if (!pair.verified) continue;
        std::printf(" (%u,%u corr=%.3f)", pair.a, pair.b,
                    CorrelationFromDist2(pair.distance * pair.distance));
      }
      std::printf("\n");
      ++rounds_printed;
    }
  }

  std::printf("\nover the whole run: %llu candidate pairs, %llu verified "
              "(precision %.3f)\n",
              static_cast<unsigned long long>(monitor->stats().candidates),
              static_cast<unsigned long long>(monitor->stats().true_pairs),
              monitor->stats().Precision());
  std::printf("expected: the (0,1), (0,2), (1,2) weather-A group pairs;\n"
              "sensor 4 tracks weather B inversely, so (3,4) only shows up\n"
              "if you monitor |corr| — anti-correlation maps to distance\n"
              "near 2, outside this query's radius.\n");
  return 0;
}
