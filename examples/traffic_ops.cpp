// Network traffic operations — the paper's telecom motivation (Section 1)
// end to end: a fleet of link counters is monitored for volume bursts at
// many timescales, while a lag-correlation monitor discovers which links
// feed which (propagation paths) without being told the topology.
//
// The burst fleet runs behind the sharded ingestion engine (src/engine):
// arrivals are posted to lock-free shard queues and applied by worker
// threads, the way a production collector would ingest link counters.
// The engine's runtime metrics are printed at the end.
//
//   $ ./build/examples/traffic_ops
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/lag_correlation.h"
#include "engine/engine.h"
#include "stream/threshold.h"

int main() {
  using namespace stardust;

  // Topology (hidden from the monitors): ingress link 0 feeds link 3
  // after 32 ticks and link 5 after 64; links 1, 2, 4 are independent.
  const std::size_t links = 6;
  Rng rng(8080);
  auto traffic_step = [&](std::uint64_t t,
                          std::vector<std::vector<double>>& history) {
    std::vector<double> values(links);
    // Ingress: diurnal-ish base + bursts.
    const double base =
        400.0 + 150.0 * std::sin(2.0 * 3.14159 * t / 4000.0);
    const bool burst = (t / 500) % 7 == 3;
    values[0] = std::max(
        0.0, base + (burst ? 350.0 : 0.0) + 20.0 * rng.NextGaussian());
    for (std::size_t i : {1u, 2u, 4u}) {
      values[i] =
          std::max(0.0, 300.0 + 60.0 * std::sin(2.0 * 3.14159 * t /
                                                (900.0 + 200.0 * i)) +
                            15.0 * rng.NextGaussian());
    }
    values[3] = t >= 32 ? 0.92 * history[0][t - 32] +
                              8.0 * rng.NextGaussian()
                        : 300.0;
    values[5] = t >= 64 ? 0.85 * history[0][t - 64] +
                              8.0 * rng.NextGaussian()
                        : 300.0;
    for (std::size_t i = 0; i < links; ++i) {
      values[i] = std::max(0.0, values[i]);
      history[i].push_back(values[i]);
    }
    return values;
  };

  // --- Fleet burst monitoring over windows 25..400 ----------------------
  std::vector<std::vector<double>> warmup_history(links);
  std::vector<double> training;
  {
    for (std::uint64_t t = 0; t < 4000; ++t) {
      const auto v = traffic_step(t, warmup_history);
      training.push_back(v[0]);
    }
  }
  std::vector<std::size_t> windows;
  for (std::size_t i = 1; i <= 16; ++i) windows.push_back(i * 25);
  const auto thresholds =
      TrainThresholds(AggregateKind::kSum, training, windows, 2.0);
  StardustConfig fleet_config;
  fleet_config.transform = TransformKind::kAggregate;
  fleet_config.aggregate = AggregateKind::kSum;
  fleet_config.base_window = 25;
  fleet_config.num_levels = 5;
  fleet_config.history = 800;
  fleet_config.box_capacity = 5;
  fleet_config.update_period = 1;
  // Two shards: links {0,2,4} land on shard 0, links {1,3,5} on shard 1.
  // kBlock keeps the run lossless; the drop policies are for live feeds.
  EngineConfig engine_config;
  engine_config.num_shards = 2;
  engine_config.queue_capacity = 1024;
  engine_config.overload = OverloadPolicy::kBlock;
  auto engine = std::move(IngestEngine::Create(fleet_config, thresholds,
                                               links, engine_config))
                    .value();

  // --- Lag correlation over windows of 256, lags up to 128 --------------
  StardustConfig lag_config;
  lag_config.transform = TransformKind::kDwt;
  lag_config.normalization = Normalization::kZNorm;
  lag_config.coefficients = 8;
  lag_config.base_window = 32;
  lag_config.num_levels = 4;  // N = 256
  lag_config.history = 256 + 128;
  lag_config.box_capacity = 1;
  lag_config.update_period = 32;
  auto lag_monitor = std::move(LagCorrelationMonitor::Create(
                                   lag_config, links, 0.45, 128))
                         .value();

  std::vector<std::vector<double>> history(links);
  std::vector<StreamValue> tick(links);
  for (std::uint64_t t = 0; t < 8000; ++t) {
    const auto values = traffic_step(t, history);
    for (StreamId link = 0; link < links; ++link) {
      tick[link] = {link, values[link]};
    }
    if (!engine->PostBatch(tick).ok()) return 1;
    if (!lag_monitor->AppendAll(values).ok()) return 1;
  }
  // Drain the shard queues so the totals below cover every arrival.
  if (!engine->Flush().ok()) return 1;

  std::printf("fleet burst monitoring (16 windows x %zu links, %zu "
              "engine shards):\n",
              links, engine->num_shards());
  for (StreamId link = 0; link < links; ++link) {
    const AlarmStats stats = engine->StreamTotal(link);
    std::printf("  link %u: %8llu alarms, %8llu true (precision %.3f)\n",
                link, static_cast<unsigned long long>(stats.candidates),
                static_cast<unsigned long long>(stats.true_alarms),
                stats.Precision());
  }

  std::printf("\ndiscovered propagation (last round, verified lagged "
              "pairs):\n");
  bool any = false;
  for (const auto& pair : lag_monitor->last_round()) {
    if (!pair.verified || pair.lag == 0) continue;
    std::printf("  link %u -> link %u after %zu ticks (corr %.3f)\n",
                pair.leader, pair.follower, pair.lag,
                1.0 - pair.distance * pair.distance / 2.0);
    any = true;
  }
  if (!any) std::printf("  (none this round)\n");
  std::printf("\nexpected: 0 -> 3 after ~32 ticks and 0 -> 5 after ~64\n"
              "(lag granularity = the 32-tick feature refresh).\n");

  std::printf("\ningestion engine metrics:\n%s\n",
              engine->MetricsJson().c_str());
  if (!engine->Stop().ok()) return 1;
  return 0;
}
