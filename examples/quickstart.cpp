// Quickstart: summarize one stream at multiple resolutions and ask the
// three kinds of questions Stardust answers.
//
//   $ ./build/examples/quickstart
//
// Walks through: (1) configuring the framework, (2) feeding a stream,
// (3) an approximate aggregate query with verification (Algorithm 2),
// and (4) what the summary actually stores (threads of MBRs per level).
#include <cstdio>

#include "core/stardust.h"
#include "stream/random_walk.h"

int main() {
  using namespace stardust;

  // 1. Configure: SUM features over windows of 16, 32, 64, 128 values,
  //    boxes of 8 features each, online updates (a feature per arrival).
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 16;   // W: the finest monitored window
  config.num_levels = 4;     // resolutions W, 2W, 4W, 8W
  config.history = 1024;     // N: how far back queries may reach
  config.box_capacity = 8;   // c: features per MBR (space/accuracy knob)
  config.update_period = 1;  // T = 1: the online algorithm

  auto created = Stardust::Create(config);
  if (!created.ok()) {
    std::fprintf(stderr, "config rejected: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Stardust> stardust = std::move(created).value();

  // 2. Feed a random-walk stream (the paper's synthetic model).
  const StreamId stream = stardust->AddStream();
  RandomWalkSource source(/*seed=*/7);
  for (int t = 0; t < 2000; ++t) {
    const Status st = stardust->Append(stream, source.Next());
    if (!st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // 3. Ask: "is the sum over the last 80 values at least 4200?"
  //    80 = 16·5 = 16·(101b) decomposes into sub-windows of 16 and 64;
  //    the answer interval comes from two MBR lookups, and only a
  //    candidate triggers exact verification on the raw window.
  const std::size_t window = 80;
  auto probe = stardust->AggregateInterval(stream, window);
  if (!probe.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 probe.status().ToString().c_str());
    return 1;
  }
  std::printf("sum over last %zu values is within [%.2f, %.2f]\n", window,
              probe.value().lo, probe.value().hi);
  // Thresholds on either side of the interval show both filter outcomes.
  for (double threshold : {probe.value().lo - 1.0, probe.value().hi + 1.0}) {
    auto answer = stardust->AggregateQuery(stream, window, threshold);
    if (!answer.ok()) return 1;
    std::printf("threshold %.2f: ", threshold);
    if (answer.value().candidate) {
      std::printf("filter fired; exact sum = %.2f -> %s\n",
                  answer.value().exact,
                  answer.value().alarm ? "ALARM" : "false alarm discarded");
    } else {
      std::printf("filter did not fire; the raw data was never touched\n");
    }
  }

  // 4. Peek at the summary: each level keeps a thread of sealed MBRs.
  std::printf("\nsummary state after 2000 arrivals (history %zu):\n",
              config.history);
  const StreamSummarizer& summarizer = stardust->summarizer(stream);
  for (std::size_t level = 0; level < config.num_levels; ++level) {
    std::printf("  level %zu (window %4zu): %3zu boxes of up to %zu "
                "features\n",
                level, config.LevelWindow(level),
                summarizer.thread(level).box_count(), config.box_capacity);
  }
  std::printf("\nRaising box_capacity shrinks the summary and loosens the\n"
              "intervals; box_capacity = 1 makes every answer exact.\n");
  return 0;
}
