// Adaptive window selection — the paper's proposed extension (§7):
// use incremental regression/statistics to *estimate the right window
// sizes to monitor* instead of guessing them a priori.
//
//   $ ./build/examples/adaptive_windows
//
// A stream hides bursts of one characteristic duration. The WindowAdvisor
// watches all dyadic windows, ranks them by robust peak excursion, and
// recommends the monitoring window — which is then handed to a live
// AggregateMonitor with thresholds estimated by the advisor itself
// (no separate training pass).
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/aggregate_monitor.h"
#include "core/window_advisor.h"

namespace {

/// Background Poisson-ish counts with hidden bursts of duration ~96.
std::vector<double> HiddenBurstStream(std::size_t length,
                                      std::uint64_t seed) {
  stardust::Rng rng(seed);
  std::vector<double> out(length);
  std::size_t burst_left = 0, next_burst = 900;
  for (std::size_t t = 0; t < length; ++t) {
    double rate = 25.0;
    if (burst_left > 0) {
      rate += 18.0;
      --burst_left;
    } else if (--next_burst == 0) {
      burst_left = 96;
      next_burst = 900;
    }
    out[t] = std::max(0.0, rate + std::sqrt(rate) * rng.NextGaussian());
  }
  return out;
}

}  // namespace

int main() {
  using namespace stardust;

  const auto history = HiddenBurstStream(30000, 2026);

  // Phase 1: watch the stream and learn which timescale is interesting.
  auto advisor =
      std::move(WindowAdvisor::Create(AggregateKind::kSum, 8, 8)).value();
  for (double v : history) advisor->Append(v);

  std::printf("window ranking after %zu arrivals (lambda = 4):\n",
              history.size());
  std::printf("%8s %10s %14s %12s %12s\n", "window", "score", "threshold",
              "alarm rate", "drift");
  for (const auto& advice : advisor->Advise(4.0)) {
    std::printf("%8zu %10.2f %14.1f %12.5f %12.4f\n", advice.window,
                advice.score, advice.threshold, advice.alarm_rate,
                advice.drift);
  }
  const auto recommended = advisor->RecommendWindow();
  if (!recommended.ok()) {
    std::fprintf(stderr, "%s\n", recommended.status().ToString().c_str());
    return 1;
  }
  std::printf("\nrecommended monitoring window: %zu (hidden burst "
              "duration: 96)\n\n",
              recommended.value());

  // Phase 2: monitor the recommended window with the advisor's threshold.
  const std::size_t window = recommended.value();
  double threshold = 0.0;
  for (const auto& advice : advisor->Advise(4.0)) {
    if (advice.window == window) threshold = advice.threshold;
  }
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = window;  // monitor exactly the advised scale
  config.num_levels = 1;
  config.history = 4 * window;
  config.box_capacity = 4;
  config.update_period = 1;
  auto monitor = std::move(AggregateMonitor::Create(
                               config, {{window, threshold}}))
                     .value();
  const auto live = HiddenBurstStream(20000, 2027);
  for (double v : live) {
    if (!monitor->Append(v).ok()) return 1;
  }
  const AlarmStats stats = monitor->TotalStats();
  std::printf("live monitoring at window %zu, threshold %.1f:\n", window,
              threshold);
  std::printf("  %llu alarms raised, %llu verified true "
              "(precision %.3f)\n",
              static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(stats.true_alarms),
              stats.Precision());
  std::printf("\nThe advisor picked the bursts' own timescale and a\n"
              "threshold that fires on them without a training pass.\n");
  return 0;
}
