// stardust_cli — run the framework on your own CSV traces.
//
//   stardust_cli monitor   <data.csv> [--base K] [--windows m]
//                          [--lambda L] [--capacity c] [--training n]
//   stardust_cli patterns  <data.csv> <query.csv> [--radius r] [--base W]
//                          [--levels J] [--capacity c] [--coefficients f]
//   stardust_cli correlate <data.csv> [--radius r] [--window N]
//                          [--basic W] [--coefficients f]
//   stardust_cli advise    <data.csv> [--base W] [--levels J] [--lambda L]
//   stardust_cli surprise  <data.csv> [--threshold d] [--base W]
//                          [--levels J] [--coefficients f]
//   stardust_cli subscribe <data.csv> [--shards n] [--base K]
//                          [--agg-window W --agg-threshold T]
//                          [--pattern query.csv] [--radius r]
//                          [--pattern-base W] [--corr-radius r]
//                          [--corr-base W] [--corr-window N]
//                          [--coefficients f] [--max-batch n]
//   stardust_cli subscribe --tcp host:port [--id name] [--resume seq]
//                          [--count n] [--idle-timeout ms]
//   stardust_cli ingest    <data.csv|-> --port p [--host h] [--batch n]
//   stardust_cli placement --port p [--host h]
//   stardust_cli migrate   <stream> <shard> --port p [--host h]
//   stardust_cli run       <scenario.yaml> [--verbose 1]
//
// `run` replays a declarative scenario (docs/DSL.md): the file describes
// the engine shape, the monitors (exact aggregates and sketch measures
// with their assess ranges), the input tuples, and the expected alert
// counts. Exit status 0 means every expectation held; a violated bound
// prints the failing monitors and exits 1. --verbose 1 additionally
// streams each alert as a JSON line on stdout.
//
// `ingest` streams CSV rows (column c -> stream c) to a running
// stardust_server over the binary frame protocol (docs/NETWORK.md).
// Malformed lines are reported on stderr with the input name and line
// number and skipped — the run keeps going instead of aborting. `-`
// reads stdin.
//
// `placement` dumps a running server's stream→shard placement table as
// JSON. `migrate` live-migrates one stream to a target shard and prints
// the migration summary — or the engine's refusal — without stopping the
// feed (docs/ENGINE.md, "Elastic sharding").
//
// `subscribe --tcp` attaches to a running stardust_server as a durable
// subscriber: every alert arrives as one JSON line on stdout and is
// acknowledged, so a restarted `subscribe --tcp --id NAME` resumes where
// the last one stopped. --resume fast-forwards the cursor, --count exits
// after n alerts, --idle-timeout exits after ms without one.
//
// `subscribe` (with a CSV) replays it through the sharded ingestion engine
// (src/engine) with continuous queries registered up front, and streams
// every alert as one JSON line on stdout while a run summary goes to
// stderr — the offline stand-in for subscribing to a live feed
// (docs/QUERIES.md). Each flag group registers one query: --agg-threshold
// an aggregate threshold query, --pattern a pattern query, --corr-radius
// a correlation query.
//
// Preprocessing flags accepted by every command, applied in this order:
//   --fill-gaps 1        linearly interpolate NaN/Inf gaps
//   --resample k         average non-overlapping blocks of k rows
//   --detrend 1          remove each stream's linear trend
//
// Data format: one row per time step, one column per stream; an optional
// header row is skipped (see src/stream/io.h). The query file for
// `patterns` uses its first column.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <chrono>
#include <memory>
#include <thread>

#include "core/aggregate_monitor.h"
#include "dsl/scenario.h"
#include "core/correlation_monitor.h"
#include "core/pattern_query.h"
#include "core/surprise_monitor.h"
#include "core/window_advisor.h"
#include "engine/engine.h"
#include "net/client.h"
#include "query/sinks.h"
#include "stream/io.h"
#include "stream/preprocess.h"
#include "stream/threshold.h"
#include "dwt/haar.h"
#include "transform/feature.h"

namespace {

using namespace stardust;

/// --flag value option map; positional arguments in order.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  double GetDouble(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    auto it = options.find(key);
    return it == options.end()
               ? fallback
               : static_cast<std::size_t>(
                     std::strtoull(it->second.c_str(), nullptr, 10));
  }
  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[arg.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Loads a dataset and applies the shared preprocessing flags.
Result<Dataset> LoadAndPreprocess(const Args& args,
                                  const std::string& path) {
  Result<Dataset> data = LoadDatasetCsv(path);
  if (!data.ok()) return data;
  if (args.GetSize("fill-gaps", 0) != 0) {
    data = FillGaps(data.value());
    if (!data.ok()) return data;
  }
  const std::size_t factor = args.GetSize("resample", 1);
  if (factor > 1) {
    data = Resample(data.value(), factor);
    if (!data.ok()) return data;
  }
  if (args.GetSize("detrend", 0) != 0) {
    data = Detrend(data.value());
    if (!data.ok()) return data;
  }
  return data;
}

int RunSurprise(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "surprise: missing <data.csv>\n");
    return 2;
  }
  Result<Dataset> data = LoadAndPreprocess(args, args.positional[0]);
  if (!data.ok()) return Fail(data.status());
  const double threshold = args.GetDouble("threshold", 0.05);
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = args.GetSize("coefficients", 8);
  config.r_max = data.value().r_max;
  config.base_window = args.GetSize("base", 16);
  config.num_levels = args.GetSize("levels", 3);
  config.history = data.value().length();
  config.box_capacity = 1;
  config.update_period = 1;
  config.index_features = true;
  Result<std::unique_ptr<SurpriseMonitor>> monitor =
      SurpriseMonitor::Create(config, data.value().num_streams(),
                              threshold);
  if (!monitor.ok()) return Fail(monitor.status());
  std::vector<SurpriseEvent> events;
  for (std::size_t t = 0; t < data.value().length(); ++t) {
    for (std::size_t s = 0; s < data.value().num_streams(); ++s) {
      const Status st =
          monitor.value()->Append(static_cast<StreamId>(s),
                                  data.value().streams[s][t], &events);
      if (!st.ok()) return Fail(st);
    }
  }
  std::printf("threshold %.4f: %zu novelty event(s)\n", threshold,
              events.size());
  for (const auto& event : events) {
    std::printf("  stream %u, rows %llu..%llu (window %zu), novelty "
                "%.4f\n",
                event.stream,
                static_cast<unsigned long long>(event.end_time + 1 -
                                                event.window),
                static_cast<unsigned long long>(event.end_time),
                event.window, event.novelty);
  }
  return 0;
}

int RunMonitor(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "monitor: missing <data.csv>\n");
    return 2;
  }
  Result<Dataset> data = LoadAndPreprocess(args, args.positional[0]);
  if (!data.ok()) return Fail(data.status());
  const std::size_t base = args.GetSize("base", 10);
  const std::size_t m = args.GetSize("windows", 16);
  const double lambda = args.GetDouble("lambda", 3.0);
  const std::size_t capacity = args.GetSize("capacity", 4);
  const std::size_t training_len =
      args.GetSize("training", data.value().length() / 4);

  std::size_t levels = 1;
  while ((std::size_t{1} << levels) <= m) ++levels;
  std::vector<std::size_t> windows;
  for (std::size_t i = 1; i <= m; ++i) windows.push_back(i * base);

  std::printf("%zu stream(s), %zu values each; windows %zu..%zu, "
              "lambda %.2f, c=%zu\n",
              data.value().num_streams(), data.value().length(), base,
              m * base, lambda, capacity);
  for (std::size_t s = 0; s < data.value().num_streams(); ++s) {
    const std::vector<double>& stream = data.value().streams[s];
    if (stream.size() <= training_len) continue;
    const std::vector<double> training(stream.begin(),
                                       stream.begin() + training_len);
    const auto thresholds =
        TrainThresholds(AggregateKind::kSum, training, windows, lambda);
    if (thresholds.empty()) continue;
    StardustConfig config;
    config.transform = TransformKind::kAggregate;
    config.aggregate = AggregateKind::kSum;
    config.base_window = base;
    config.num_levels = levels;
    config.history =
        std::max(m * base, base << (levels - 1));
    config.box_capacity = capacity;
    config.update_period = 1;
    Result<std::unique_ptr<AggregateMonitor>> monitor =
        AggregateMonitor::Create(config, thresholds);
    if (!monitor.ok()) return Fail(monitor.status());
    for (double v : stream) {
      const Status st = monitor.value()->Append(v);
      if (!st.ok()) return Fail(st);
    }
    const AlarmStats total = monitor.value()->TotalStats();
    std::printf("stream %zu: %llu alarms raised, %llu true, "
                "precision %.3f\n",
                s, static_cast<unsigned long long>(total.candidates),
                static_cast<unsigned long long>(total.true_alarms),
                total.Precision());
  }
  return 0;
}

int RunPatterns(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "patterns: need <data.csv> <query.csv>\n");
    return 2;
  }
  Result<Dataset> data = LoadAndPreprocess(args, args.positional[0]);
  if (!data.ok()) return Fail(data.status());
  Result<Dataset> query_data = LoadDatasetCsv(args.positional[1]);
  if (!query_data.ok()) return Fail(query_data.status());
  const std::vector<double>& query = query_data.value().streams[0];
  const double radius = args.GetDouble("radius", 0.05);
  const std::size_t base = args.GetSize("base", 16);
  const std::size_t levels = args.GetSize("levels", 4);
  const std::size_t capacity = args.GetSize("capacity", 8);
  const std::size_t f = args.GetSize("coefficients", 4);

  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = f;
  config.r_max = data.value().r_max;
  config.base_window = base;
  config.num_levels = levels;
  config.history = data.value().length();
  config.box_capacity = capacity;
  config.update_period = 1;
  config.index_features = true;
  Result<std::unique_ptr<Stardust>> core = Stardust::Create(config);
  if (!core.ok()) return Fail(core.status());
  for (const auto& stream : data.value().streams) {
    const StreamId id = core.value()->AddStream();
    for (double v : stream) {
      const Status st = core.value()->Append(id, v);
      if (!st.ok()) return Fail(st);
    }
  }
  PatternQueryEngine engine(*core.value());
  Result<PatternResult> result = engine.QueryOnline(query, radius);
  if (!result.ok()) return Fail(result.status());
  std::printf("query length %zu, radius %.4f: %zu match(es), "
              "%llu candidates checked\n",
              query.size(), radius, result.value().matches.size(),
              static_cast<unsigned long long>(result.value().candidates));
  for (const auto& match : result.value().matches) {
    std::printf("  stream %u, rows %llu..%llu, distance %.6f\n",
                match.stream,
                static_cast<unsigned long long>(match.end_time + 1 -
                                                query.size()),
                static_cast<unsigned long long>(match.end_time),
                match.distance);
  }
  return 0;
}

int RunCorrelate(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "correlate: missing <data.csv>\n");
    return 2;
  }
  Result<Dataset> data = LoadAndPreprocess(args, args.positional[0]);
  if (!data.ok()) return Fail(data.status());
  const std::size_t basic = args.GetSize("basic", 16);
  std::size_t n = args.GetSize("window", 256);
  const std::size_t f = args.GetSize("coefficients", 4);
  const double radius = args.GetDouble("radius", 0.5);
  std::size_t levels = 1;
  while ((basic << (levels - 1)) < n) ++levels;
  n = basic << (levels - 1);

  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = f;
  config.base_window = basic;
  config.num_levels = levels;
  config.history = n;
  config.box_capacity = 1;
  config.update_period = basic;
  Result<std::unique_ptr<CorrelationMonitor>> monitor =
      CorrelationMonitor::Create(config, data.value().num_streams(),
                                 radius);
  if (!monitor.ok()) return Fail(monitor.status());
  std::vector<double> values(data.value().num_streams());
  for (std::size_t t = 0; t < data.value().length(); ++t) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = data.value().streams[i][t];
    }
    const Status st = monitor.value()->AppendAll(values);
    if (!st.ok()) return Fail(st);
  }
  std::printf("window %zu, distance radius %.3f (corr >= %.3f): "
              "%llu candidates, %llu verified over the run\n",
              n, radius, CorrelationFromDist2(radius * radius),
              static_cast<unsigned long long>(
                  monitor.value()->stats().candidates),
              static_cast<unsigned long long>(
                  monitor.value()->stats().true_pairs));
  std::printf("final round:\n");
  for (const auto& pair : monitor.value()->last_round()) {
    if (!pair.verified) continue;
    std::printf("  streams (%u, %u): corr %.4f\n", pair.a, pair.b,
                CorrelationFromDist2(pair.distance * pair.distance));
  }
  return 0;
}

int RunAdvise(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "advise: missing <data.csv>\n");
    return 2;
  }
  Result<Dataset> data = LoadAndPreprocess(args, args.positional[0]);
  if (!data.ok()) return Fail(data.status());
  const std::size_t base = args.GetSize("base", 8);
  const std::size_t levels = args.GetSize("levels", 8);
  const double lambda = args.GetDouble("lambda", 4.0);
  for (std::size_t s = 0; s < data.value().num_streams(); ++s) {
    Result<std::unique_ptr<WindowAdvisor>> advisor =
        WindowAdvisor::Create(AggregateKind::kSum, base, levels);
    if (!advisor.ok()) return Fail(advisor.status());
    for (double v : data.value().streams[s]) advisor.value()->Append(v);
    std::printf("stream %zu:\n", s);
    std::printf("  %8s %10s %14s %12s\n", "window", "score", "threshold",
                "alarm rate");
    for (const auto& advice : advisor.value()->Advise(lambda)) {
      std::printf("  %8zu %10.2f %14.2f %12.5f\n", advice.window,
                  advice.score, advice.threshold, advice.alarm_rate);
    }
  }
  // DWT coefficient suggestion for pattern/correlation monitoring
  // (Section 4's energy-concentration premise, measured on this data).
  const std::size_t w = args.GetSize("window", 64);
  if (IsPowerOfTwo(w) && data.value().length() >= w) {
    std::vector<std::vector<double>> samples;
    const std::size_t stride =
        std::max<std::size_t>(1, (data.value().length() - w) / 50 + 1);
    for (const auto& stream : data.value().streams) {
      for (std::size_t start = 0; start + w <= stream.size();
           start += stride) {
        samples.emplace_back(stream.begin() + start,
                             stream.begin() + start + w);
        if (samples.size() >= 200) break;
      }
      if (samples.size() >= 200) break;
    }
    std::printf("\nDWT coefficients for %zu-step windows: f = %zu keeps "
                ">=95%% of the energy, f = %zu keeps >=99%%\n",
                w, SuggestCoefficientCount(samples, 0.95),
                SuggestCoefficientCount(samples, 0.99));
  }
  return 0;
}

/// TCP producer: CSV rows in, Batch frames out (docs/NETWORK.md).
/// Malformed lines are diagnosed with their line number and skipped.
/// Workload harness: replay a declarative scenario and assert its
/// expected alerts (src/dsl, docs/DSL.md).
int RunScenarioFile(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "run: missing <scenario.yaml>\n");
    return 2;
  }
  Result<dsl::ScenarioDef> scenario =
      dsl::LoadScenarioFile(args.positional[0]);
  if (!scenario.ok()) return Fail(scenario.status());
  std::function<void(const Alert&)> on_alert;
  if (args.GetSize("verbose", 0) != 0) {
    on_alert = [](const Alert& alert) {
      std::printf("%s\n", AlertToJson(alert).c_str());
      std::fflush(stdout);
    };
  }
  Result<dsl::ScenarioReport> report =
      dsl::RunScenario(scenario.value(), on_alert);
  if (!report.ok()) return Fail(report.status());
  std::fprintf(stderr, "scenario '%s': %zu stream(s), %zu row(s), "
               "%zu monitor(s)\n",
               scenario.value().name.c_str(), scenario.value().streams,
               scenario.value().rows.size(),
               scenario.value().monitors.size());
  for (const dsl::MonitorAlertCount& count : report.value().monitors) {
    std::fprintf(stderr, "  monitor %s: %llu alert(s)\n",
                 count.name.c_str(),
                 static_cast<unsigned long long>(count.alerts));
  }
  std::fprintf(stderr, "  %llu alert(s) total, expectations met\n",
               static_cast<unsigned long long>(
                   report.value().total_alerts));
  return 0;
}

int RunIngest(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "ingest: missing <data.csv|->\n");
    return 2;
  }
  if (args.options.count("port") == 0) {
    std::fprintf(stderr, "ingest: missing --port\n");
    return 2;
  }
  const std::string host = args.GetString("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.GetSize("port", 0));
  const std::size_t batch_rows =
      std::max<std::size_t>(1, args.GetSize("batch", 64));

  std::ifstream file;
  std::istream* in = &std::cin;
  if (args.positional[0] != "-") {
    file.open(args.positional[0], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "ingest: cannot open %s\n",
                   args.positional[0].c_str());
      return 1;
    }
    in = &file;
  }

  Result<std::unique_ptr<net::ProducerClient>> client =
      net::ProducerClient::Connect(host, port);
  if (!client.ok()) return Fail(client.status());

  net::BatchMessage batch;
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rows = 0;
  std::uint64_t malformed = 0;
  std::size_t pending_rows = 0;

  auto flush = [&]() -> Status {
    if (batch.runs.empty()) return Status::OK();
    Result<net::BatchAckMessage> ack = client.value()->Send(batch);
    if (!ack.ok()) return ack.status();
    accepted += ack.value().accepted;
    dropped += ack.value().dropped;
    batch.runs.clear();
    pending_rows = 0;
    return Status::OK();
  };

  // Name the input in diagnostics so interleaved feeds stay attributable.
  const std::string input_name =
      args.positional[0] == "-" ? "stdin" : args.positional[0];
  std::string line;
  std::vector<double> row;
  std::size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const Status parsed = ParseCsvRow(line, &row);
    if (!parsed.ok()) {
      // Diagnose and keep going — one bad line must not kill a feed.
      ++malformed;
      std::fprintf(stderr, "ingest: %s:%zu: %s (skipped)\n",
                   input_name.c_str(), line_no, parsed.message().c_str());
      continue;
    }
    for (std::size_t s = 0; s < row.size(); ++s) {
      if (batch.runs.size() <= s) {
        batch.runs.push_back({static_cast<std::uint32_t>(s), {}});
      }
      batch.runs[s].values.push_back(row[s]);
    }
    ++rows;
    if (++pending_rows >= batch_rows) {
      const Status st = flush();
      if (!st.ok()) return Fail(st);
    }
  }
  Status st = flush();
  if (!st.ok()) return Fail(st);
  client.value()->Close();

  std::fprintf(stderr,
               "ingest: %llu row(s) sent, %llu value(s) accepted, "
               "%llu dropped, %llu malformed line(s) skipped\n",
               static_cast<unsigned long long>(rows),
               static_cast<unsigned long long>(accepted),
               static_cast<unsigned long long>(dropped),
               static_cast<unsigned long long>(malformed));
  return 0;
}

/// Operator plane: connects to a running server and dumps its placement
/// table (epoch + stream→shard map) as one JSON document on stdout.
int RunPlacement(const Args& args) {
  if (args.options.count("port") == 0) {
    std::fprintf(stderr, "placement: missing --port\n");
    return 2;
  }
  const std::string host = args.GetString("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.GetSize("port", 0));
  Result<std::unique_ptr<net::AdminClient>> client =
      net::AdminClient::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  Result<net::AdminResultMessage> result = client.value()->PlacementDump();
  if (!result.ok()) return Fail(result.status());
  if (!result.value().ok) {
    std::fprintf(stderr, "placement: %s\n", result.value().message.c_str());
    return 1;
  }
  std::printf("%s\n", result.value().json.c_str());
  return 0;
}

/// Operator plane: live-migrates one stream to a target shard on a
/// running server. Prints the migration summary (stream, shard, new
/// placement epoch) on success; the engine's refusal goes to stderr.
int RunMigrate(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "migrate: need <stream> <shard>\n");
    return 2;
  }
  if (args.options.count("port") == 0) {
    std::fprintf(stderr, "migrate: missing --port\n");
    return 2;
  }
  const std::string host = args.GetString("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.GetSize("port", 0));
  const std::uint64_t stream =
      std::strtoull(args.positional[0].c_str(), nullptr, 10);
  const std::uint64_t shard =
      std::strtoull(args.positional[1].c_str(), nullptr, 10);
  Result<std::unique_ptr<net::AdminClient>> client =
      net::AdminClient::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  Result<net::AdminResultMessage> result =
      client.value()->Migrate(stream, shard);
  if (!result.ok()) return Fail(result.status());
  if (!result.value().ok) {
    std::fprintf(stderr, "migrate: %s\n", result.value().message.c_str());
    return 1;
  }
  std::printf("%s\n", result.value().json.c_str());
  return 0;
}

/// Live TCP subscriber: alerts as JSON lines on stdout, each
/// acknowledged so the server-side cursor survives reconnects.
int RunSubscribeTcp(const Args& args) {
  const std::string target = args.options.at("tcp");
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "subscribe: --tcp wants host:port\n");
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const auto port = static_cast<std::uint16_t>(
      std::strtoull(target.c_str() + colon + 1, nullptr, 10));
  const std::string id = args.GetString("id", "stardust-cli");
  const std::uint64_t resume = args.GetSize("resume", 0);
  const std::size_t count = args.GetSize("count", 0);
  const int idle_timeout =
      static_cast<int>(args.GetSize("idle-timeout", 0));

  Result<std::unique_ptr<net::SubscriberClient>> client =
      net::SubscriberClient::Connect(host, port, id, resume);
  if (!client.ok()) return Fail(client.status());
  std::fprintf(stderr, "subscribed as '%s', resuming after seq %llu\n",
               id.c_str(),
               static_cast<unsigned long long>(
                   client.value()->resume_from()));

  std::size_t received = 0;
  for (;;) {
    const int wait_ms = idle_timeout > 0 ? idle_timeout : 1000;
    Result<net::AlertFrameMessage> alert = client.value()->Next(wait_ms);
    if (!alert.ok()) {
      if (alert.status().code() == StatusCode::kNotFound) {
        if (idle_timeout > 0) break;  // idle long enough; done
        continue;
      }
      return Fail(alert.status());
    }
    std::printf("%s\n", alert.value().json.c_str());
    std::fflush(stdout);
    const Status st = client.value()->Ack(alert.value().seq);
    if (!st.ok()) return Fail(st);
    ++received;
    if (count > 0 && received >= count) break;
  }
  std::fprintf(stderr, "%zu alert(s) received\n", received);
  return 0;
}

int RunSubscribe(const Args& args) {
  if (args.options.count("tcp") != 0) return RunSubscribeTcp(args);
  if (args.positional.empty()) {
    std::fprintf(stderr, "subscribe: missing <data.csv>\n");
    return 2;
  }
  Result<Dataset> data = LoadAndPreprocess(args, args.positional[0]);
  if (!data.ok()) return Fail(data.status());
  const std::size_t num_streams = data.value().num_streams();
  const std::size_t length = data.value().length();
  const std::size_t base = args.GetSize("base", 10);
  const std::size_t agg_window = args.GetSize("agg-window", 2 * base);
  const std::size_t f = args.GetSize("coefficients", 4);

  // Fleet (aggregate) core: sized so the requested query window is an
  // indexed resolution. The fleet's own thresholds are parked far out of
  // range — alerts come from the registered queries only.
  StardustConfig fleet;
  fleet.transform = TransformKind::kAggregate;
  fleet.aggregate = AggregateKind::kSum;
  fleet.base_window = base;
  fleet.num_levels = 1;
  while ((agg_window / std::max<std::size_t>(base, 1)) >>
         fleet.num_levels) {
    ++fleet.num_levels;
  }
  fleet.history = std::max(length, base << (fleet.num_levels - 1));
  fleet.box_capacity = args.GetSize("capacity", 4);
  fleet.update_period = 1;
  std::vector<WindowThreshold> fleet_thresholds = {{base, 1e18}};

  EngineConfig econfig;
  econfig.num_shards = args.GetSize("shards", 2);
  // Queries are evaluated once per applied batch. An offline replay can
  // outrun the workers and land in giant batches that step over
  // short-lived threshold crossings, so bound the batch at one base
  // window per stream to mimic a paced live feed.
  econfig.max_batch =
      args.GetSize("max-batch", std::max<std::size_t>(base, 1));

  Result<Dataset> pattern_query = Status::NotFound("no pattern");
  if (args.options.count("pattern") != 0) {
    pattern_query = LoadDatasetCsv(args.options.at("pattern"));
    if (!pattern_query.ok()) return Fail(pattern_query.status());
    const std::size_t len = pattern_query.value().streams[0].size();
    StardustConfig& pat = econfig.query.pattern;
    pat.transform = TransformKind::kDwt;
    pat.normalization = Normalization::kUnitSphere;
    pat.coefficients = f;
    pat.r_max = data.value().r_max;
    pat.base_window = args.GetSize("pattern-base", 16);
    pat.num_levels = 1;
    while ((len / std::max<std::size_t>(pat.base_window, 1)) >>
           pat.num_levels) {
      ++pat.num_levels;
    }
    pat.history = length;
    pat.box_capacity = 1;
    pat.update_period = 1;
    pat.index_features = true;
    econfig.query.enable_patterns = true;
  }
  if (args.options.count("corr-radius") != 0) {
    StardustConfig& corr = econfig.query.correlation;
    corr.transform = TransformKind::kDwt;
    corr.normalization = Normalization::kZNorm;
    corr.coefficients = f;
    corr.base_window = args.GetSize("corr-base", 16);
    std::size_t n = args.GetSize("corr-window", 64);
    corr.num_levels = 1;
    while ((corr.base_window << (corr.num_levels - 1)) < n) {
      ++corr.num_levels;
    }
    corr.history = corr.base_window << (corr.num_levels - 1);
    corr.box_capacity = 1;
    corr.update_period = corr.base_window;
    econfig.query.enable_correlation = true;
  }

  Result<std::unique_ptr<IngestEngine>> engine = IngestEngine::Create(
      fleet, fleet_thresholds, num_streams, econfig);
  if (!engine.ok()) return Fail(engine.status());

  // JSONL subscriber: one line per alert on stdout, delivered on the bus
  // dispatcher thread while ingestion runs.
  engine.value()->alerts().AddSink(
      std::make_shared<CallbackSink>([](const Alert& alert) {
        std::printf("%s\n", AlertToJson(alert).c_str());
      }));

  std::vector<QueryId> registered;
  if (args.options.count("agg-threshold") != 0) {
    Result<QueryId> id = engine.value()->RegisterQuery(QuerySpec::Aggregate(
        agg_window, args.GetDouble("agg-threshold", 0.0)));
    if (!id.ok()) return Fail(id.status());
    registered.push_back(id.value());
  }
  if (pattern_query.ok()) {
    Result<QueryId> id = engine.value()->RegisterQuery(QuerySpec::Pattern(
        pattern_query.value().streams[0], args.GetDouble("radius", 0.05)));
    if (!id.ok()) return Fail(id.status());
    registered.push_back(id.value());
  }
  if (args.options.count("corr-radius") != 0) {
    Result<QueryId> id = engine.value()->RegisterQuery(
        QuerySpec::Correlation(args.GetDouble("corr-radius", 0.5)));
    if (!id.ok()) return Fail(id.status());
    registered.push_back(id.value());
  }
  if (registered.empty()) {
    std::fprintf(stderr,
                 "subscribe: no queries registered — pass --agg-threshold, "
                 "--pattern, and/or --corr-radius\n");
    return 2;
  }

  for (std::size_t t = 0; t < length; ++t) {
    for (std::size_t s = 0; s < num_streams; ++s) {
      const Status st = engine.value()->Post(static_cast<StreamId>(s),
                                             data.value().streams[s][t]);
      if (!st.ok()) return Fail(st);
    }
  }
  Status st = engine.value()->Flush();
  if (!st.ok()) return Fail(st);
  if (econfig.query.enable_correlation) {
    // Give the correlator a couple of periods to evaluate the final
    // common feature time before tearing down.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        4 * econfig.query.correlator_period_ms));
  }
  st = engine.value()->Stop();
  if (!st.ok()) return Fail(st);

  std::fprintf(stderr, "%zu stream(s), %zu values, %zu shard(s), "
               "%zu query(ies)\n",
               num_streams, length, engine.value()->num_shards(),
               registered.size());
  for (const auto& m : engine.value()->queries().Metrics()) {
    std::fprintf(stderr,
                 "  query %llu (%s): %llu evals, %llu hits, %llu errors\n",
                 static_cast<unsigned long long>(m.id),
                 QueryKindName(m.kind),
                 static_cast<unsigned long long>(m.evals),
                 static_cast<unsigned long long>(m.hits),
                 static_cast<unsigned long long>(m.errors));
  }
  const AlertBus& bus = engine.value()->alerts();
  std::fprintf(stderr,
               "  alerts: %llu published, %llu delivered, %llu dropped\n",
               static_cast<unsigned long long>(bus.published()),
               static_cast<unsigned long long>(bus.delivered()),
               static_cast<unsigned long long>(bus.dropped_newest() +
                                               bus.dropped_oldest()));
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: stardust_cli "
      "<monitor|patterns|correlate|advise|surprise|subscribe|ingest"
      "|placement|migrate|run> ...\n"
      "see the header of examples/stardust_cli.cpp for options\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args = ParseArgs(argc, argv);
  if (command == "monitor") return RunMonitor(args);
  if (command == "patterns") return RunPatterns(args);
  if (command == "correlate") return RunCorrelate(args);
  if (command == "advise") return RunAdvise(args);
  if (command == "surprise") return RunSurprise(args);
  if (command == "subscribe") return RunSubscribe(args);
  if (command == "ingest") return RunIngest(args);
  if (command == "placement") return RunPlacement(args);
  if (command == "migrate") return RunMigrate(args);
  if (command == "run") return RunScenarioFile(args);
  return Usage();
}
