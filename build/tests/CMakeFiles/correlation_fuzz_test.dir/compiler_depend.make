# Empty compiler generated dependencies file for correlation_fuzz_test.
# This may be replaced when dependencies are built.
