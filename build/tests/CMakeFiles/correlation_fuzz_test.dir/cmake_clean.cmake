file(REMOVE_RECURSE
  "CMakeFiles/correlation_fuzz_test.dir/correlation_fuzz_test.cc.o"
  "CMakeFiles/correlation_fuzz_test.dir/correlation_fuzz_test.cc.o.d"
  "correlation_fuzz_test"
  "correlation_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlation_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
