# Empty dependencies file for lag_correlation_test.
# This may be replaced when dependencies are built.
