file(REMOVE_RECURSE
  "CMakeFiles/lag_correlation_test.dir/lag_correlation_test.cc.o"
  "CMakeFiles/lag_correlation_test.dir/lag_correlation_test.cc.o.d"
  "lag_correlation_test"
  "lag_correlation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lag_correlation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
