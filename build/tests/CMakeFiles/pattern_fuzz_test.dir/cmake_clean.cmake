file(REMOVE_RECURSE
  "CMakeFiles/pattern_fuzz_test.dir/pattern_fuzz_test.cc.o"
  "CMakeFiles/pattern_fuzz_test.dir/pattern_fuzz_test.cc.o.d"
  "pattern_fuzz_test"
  "pattern_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
