file(REMOVE_RECURSE
  "CMakeFiles/incremental_dwt_test.dir/incremental_dwt_test.cc.o"
  "CMakeFiles/incremental_dwt_test.dir/incremental_dwt_test.cc.o.d"
  "incremental_dwt_test"
  "incremental_dwt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_dwt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
