# Empty compiler generated dependencies file for incremental_dwt_test.
# This may be replaced when dependencies are built.
