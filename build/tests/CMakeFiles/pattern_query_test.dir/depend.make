# Empty dependencies file for pattern_query_test.
# This may be replaced when dependencies are built.
