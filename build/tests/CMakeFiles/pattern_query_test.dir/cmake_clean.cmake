file(REMOVE_RECURSE
  "CMakeFiles/pattern_query_test.dir/pattern_query_test.cc.o"
  "CMakeFiles/pattern_query_test.dir/pattern_query_test.cc.o.d"
  "pattern_query_test"
  "pattern_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
