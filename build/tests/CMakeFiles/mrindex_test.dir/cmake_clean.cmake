file(REMOVE_RECURSE
  "CMakeFiles/mrindex_test.dir/mrindex_test.cc.o"
  "CMakeFiles/mrindex_test.dir/mrindex_test.cc.o.d"
  "mrindex_test"
  "mrindex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
