# Empty compiler generated dependencies file for mrindex_test.
# This may be replaced when dependencies are built.
