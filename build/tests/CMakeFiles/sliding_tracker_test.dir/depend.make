# Empty dependencies file for sliding_tracker_test.
# This may be replaced when dependencies are built.
