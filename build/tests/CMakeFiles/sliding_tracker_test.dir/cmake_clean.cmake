file(REMOVE_RECURSE
  "CMakeFiles/sliding_tracker_test.dir/sliding_tracker_test.cc.o"
  "CMakeFiles/sliding_tracker_test.dir/sliding_tracker_test.cc.o.d"
  "sliding_tracker_test"
  "sliding_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
