file(REMOVE_RECURSE
  "CMakeFiles/mbr_transform_test.dir/mbr_transform_test.cc.o"
  "CMakeFiles/mbr_transform_test.dir/mbr_transform_test.cc.o.d"
  "mbr_transform_test"
  "mbr_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
