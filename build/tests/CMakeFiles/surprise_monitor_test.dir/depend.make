# Empty dependencies file for surprise_monitor_test.
# This may be replaced when dependencies are built.
