file(REMOVE_RECURSE
  "CMakeFiles/surprise_monitor_test.dir/surprise_monitor_test.cc.o"
  "CMakeFiles/surprise_monitor_test.dir/surprise_monitor_test.cc.o.d"
  "surprise_monitor_test"
  "surprise_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surprise_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
