file(REMOVE_RECURSE
  "CMakeFiles/fleet_monitor_test.dir/fleet_monitor_test.cc.o"
  "CMakeFiles/fleet_monitor_test.dir/fleet_monitor_test.cc.o.d"
  "fleet_monitor_test"
  "fleet_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
