# Empty compiler generated dependencies file for summarizer_test.
# This may be replaced when dependencies are built.
