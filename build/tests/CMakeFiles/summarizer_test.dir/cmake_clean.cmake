file(REMOVE_RECURSE
  "CMakeFiles/summarizer_test.dir/summarizer_test.cc.o"
  "CMakeFiles/summarizer_test.dir/summarizer_test.cc.o.d"
  "summarizer_test"
  "summarizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summarizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
