file(REMOVE_RECURSE
  "CMakeFiles/statstream_test.dir/statstream_test.cc.o"
  "CMakeFiles/statstream_test.dir/statstream_test.cc.o.d"
  "statstream_test"
  "statstream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
