# Empty compiler generated dependencies file for statstream_test.
# This may be replaced when dependencies are built.
