file(REMOVE_RECURSE
  "CMakeFiles/swt_test.dir/swt_test.cc.o"
  "CMakeFiles/swt_test.dir/swt_test.cc.o.d"
  "swt_test"
  "swt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
