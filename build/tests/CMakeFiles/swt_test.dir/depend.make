# Empty dependencies file for swt_test.
# This may be replaced when dependencies are built.
