# Empty dependencies file for level_state_test.
# This may be replaced when dependencies are built.
