file(REMOVE_RECURSE
  "CMakeFiles/level_state_test.dir/level_state_test.cc.o"
  "CMakeFiles/level_state_test.dir/level_state_test.cc.o.d"
  "level_state_test"
  "level_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/level_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
