file(REMOVE_RECURSE
  "CMakeFiles/window_advisor_test.dir/window_advisor_test.cc.o"
  "CMakeFiles/window_advisor_test.dir/window_advisor_test.cc.o.d"
  "window_advisor_test"
  "window_advisor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
