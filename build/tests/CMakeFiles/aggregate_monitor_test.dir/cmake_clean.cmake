file(REMOVE_RECURSE
  "CMakeFiles/aggregate_monitor_test.dir/aggregate_monitor_test.cc.o"
  "CMakeFiles/aggregate_monitor_test.dir/aggregate_monitor_test.cc.o.d"
  "aggregate_monitor_test"
  "aggregate_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
