# Empty dependencies file for aggregate_monitor_test.
# This may be replaced when dependencies are built.
