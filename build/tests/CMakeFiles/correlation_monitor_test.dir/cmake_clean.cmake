file(REMOVE_RECURSE
  "CMakeFiles/correlation_monitor_test.dir/correlation_monitor_test.cc.o"
  "CMakeFiles/correlation_monitor_test.dir/correlation_monitor_test.cc.o.d"
  "correlation_monitor_test"
  "correlation_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlation_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
