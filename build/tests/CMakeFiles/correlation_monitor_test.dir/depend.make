# Empty dependencies file for correlation_monitor_test.
# This may be replaced when dependencies are built.
