file(REMOVE_RECURSE
  "CMakeFiles/generalmatch_test.dir/generalmatch_test.cc.o"
  "CMakeFiles/generalmatch_test.dir/generalmatch_test.cc.o.d"
  "generalmatch_test"
  "generalmatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalmatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
