# Empty compiler generated dependencies file for generalmatch_test.
# This may be replaced when dependencies are built.
