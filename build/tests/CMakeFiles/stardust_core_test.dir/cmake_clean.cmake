file(REMOVE_RECURSE
  "CMakeFiles/stardust_core_test.dir/stardust_core_test.cc.o"
  "CMakeFiles/stardust_core_test.dir/stardust_core_test.cc.o.d"
  "stardust_core_test"
  "stardust_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stardust_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
