# Empty compiler generated dependencies file for stardust_core_test.
# This may be replaced when dependencies are built.
