file(REMOVE_RECURSE
  "CMakeFiles/multires_correlation_test.dir/multires_correlation_test.cc.o"
  "CMakeFiles/multires_correlation_test.dir/multires_correlation_test.cc.o.d"
  "multires_correlation_test"
  "multires_correlation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multires_correlation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
