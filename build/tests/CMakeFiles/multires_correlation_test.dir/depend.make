# Empty dependencies file for multires_correlation_test.
# This may be replaced when dependencies are built.
