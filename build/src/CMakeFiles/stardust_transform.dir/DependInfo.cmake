
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/aggregate.cc" "src/CMakeFiles/stardust_transform.dir/transform/aggregate.cc.o" "gcc" "src/CMakeFiles/stardust_transform.dir/transform/aggregate.cc.o.d"
  "/root/repo/src/transform/feature.cc" "src/CMakeFiles/stardust_transform.dir/transform/feature.cc.o" "gcc" "src/CMakeFiles/stardust_transform.dir/transform/feature.cc.o.d"
  "/root/repo/src/transform/quantile.cc" "src/CMakeFiles/stardust_transform.dir/transform/quantile.cc.o" "gcc" "src/CMakeFiles/stardust_transform.dir/transform/quantile.cc.o.d"
  "/root/repo/src/transform/regression.cc" "src/CMakeFiles/stardust_transform.dir/transform/regression.cc.o" "gcc" "src/CMakeFiles/stardust_transform.dir/transform/regression.cc.o.d"
  "/root/repo/src/transform/sliding_tracker.cc" "src/CMakeFiles/stardust_transform.dir/transform/sliding_tracker.cc.o" "gcc" "src/CMakeFiles/stardust_transform.dir/transform/sliding_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stardust_dwt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stardust_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stardust_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
