file(REMOVE_RECURSE
  "CMakeFiles/stardust_transform.dir/transform/aggregate.cc.o"
  "CMakeFiles/stardust_transform.dir/transform/aggregate.cc.o.d"
  "CMakeFiles/stardust_transform.dir/transform/feature.cc.o"
  "CMakeFiles/stardust_transform.dir/transform/feature.cc.o.d"
  "CMakeFiles/stardust_transform.dir/transform/quantile.cc.o"
  "CMakeFiles/stardust_transform.dir/transform/quantile.cc.o.d"
  "CMakeFiles/stardust_transform.dir/transform/regression.cc.o"
  "CMakeFiles/stardust_transform.dir/transform/regression.cc.o.d"
  "CMakeFiles/stardust_transform.dir/transform/sliding_tracker.cc.o"
  "CMakeFiles/stardust_transform.dir/transform/sliding_tracker.cc.o.d"
  "libstardust_transform.a"
  "libstardust_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stardust_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
