file(REMOVE_RECURSE
  "libstardust_transform.a"
)
