# Empty compiler generated dependencies file for stardust_transform.
# This may be replaced when dependencies are built.
