file(REMOVE_RECURSE
  "libstardust_baselines.a"
)
