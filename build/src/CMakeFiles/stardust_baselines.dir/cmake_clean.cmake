file(REMOVE_RECURSE
  "CMakeFiles/stardust_baselines.dir/baselines/generalmatch.cc.o"
  "CMakeFiles/stardust_baselines.dir/baselines/generalmatch.cc.o.d"
  "CMakeFiles/stardust_baselines.dir/baselines/linear_scan.cc.o"
  "CMakeFiles/stardust_baselines.dir/baselines/linear_scan.cc.o.d"
  "CMakeFiles/stardust_baselines.dir/baselines/mrindex.cc.o"
  "CMakeFiles/stardust_baselines.dir/baselines/mrindex.cc.o.d"
  "CMakeFiles/stardust_baselines.dir/baselines/statstream.cc.o"
  "CMakeFiles/stardust_baselines.dir/baselines/statstream.cc.o.d"
  "CMakeFiles/stardust_baselines.dir/baselines/swt.cc.o"
  "CMakeFiles/stardust_baselines.dir/baselines/swt.cc.o.d"
  "libstardust_baselines.a"
  "libstardust_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stardust_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
