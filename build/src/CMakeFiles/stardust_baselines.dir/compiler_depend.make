# Empty compiler generated dependencies file for stardust_baselines.
# This may be replaced when dependencies are built.
