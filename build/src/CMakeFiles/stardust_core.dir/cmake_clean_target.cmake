file(REMOVE_RECURSE
  "libstardust_core.a"
)
