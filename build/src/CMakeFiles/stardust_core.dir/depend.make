# Empty dependencies file for stardust_core.
# This may be replaced when dependencies are built.
