file(REMOVE_RECURSE
  "CMakeFiles/stardust_core.dir/core/aggregate_monitor.cc.o"
  "CMakeFiles/stardust_core.dir/core/aggregate_monitor.cc.o.d"
  "CMakeFiles/stardust_core.dir/core/config.cc.o"
  "CMakeFiles/stardust_core.dir/core/config.cc.o.d"
  "CMakeFiles/stardust_core.dir/core/correlation_monitor.cc.o"
  "CMakeFiles/stardust_core.dir/core/correlation_monitor.cc.o.d"
  "CMakeFiles/stardust_core.dir/core/fleet_monitor.cc.o"
  "CMakeFiles/stardust_core.dir/core/fleet_monitor.cc.o.d"
  "CMakeFiles/stardust_core.dir/core/lag_correlation.cc.o"
  "CMakeFiles/stardust_core.dir/core/lag_correlation.cc.o.d"
  "CMakeFiles/stardust_core.dir/core/level_state.cc.o"
  "CMakeFiles/stardust_core.dir/core/level_state.cc.o.d"
  "CMakeFiles/stardust_core.dir/core/pattern_query.cc.o"
  "CMakeFiles/stardust_core.dir/core/pattern_query.cc.o.d"
  "CMakeFiles/stardust_core.dir/core/snapshot.cc.o"
  "CMakeFiles/stardust_core.dir/core/snapshot.cc.o.d"
  "CMakeFiles/stardust_core.dir/core/stardust.cc.o"
  "CMakeFiles/stardust_core.dir/core/stardust.cc.o.d"
  "CMakeFiles/stardust_core.dir/core/summarizer.cc.o"
  "CMakeFiles/stardust_core.dir/core/summarizer.cc.o.d"
  "CMakeFiles/stardust_core.dir/core/surprise_monitor.cc.o"
  "CMakeFiles/stardust_core.dir/core/surprise_monitor.cc.o.d"
  "CMakeFiles/stardust_core.dir/core/window_advisor.cc.o"
  "CMakeFiles/stardust_core.dir/core/window_advisor.cc.o.d"
  "libstardust_core.a"
  "libstardust_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stardust_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
