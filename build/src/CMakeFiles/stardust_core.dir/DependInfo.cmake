
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate_monitor.cc" "src/CMakeFiles/stardust_core.dir/core/aggregate_monitor.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/aggregate_monitor.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/stardust_core.dir/core/config.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/config.cc.o.d"
  "/root/repo/src/core/correlation_monitor.cc" "src/CMakeFiles/stardust_core.dir/core/correlation_monitor.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/correlation_monitor.cc.o.d"
  "/root/repo/src/core/fleet_monitor.cc" "src/CMakeFiles/stardust_core.dir/core/fleet_monitor.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/fleet_monitor.cc.o.d"
  "/root/repo/src/core/lag_correlation.cc" "src/CMakeFiles/stardust_core.dir/core/lag_correlation.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/lag_correlation.cc.o.d"
  "/root/repo/src/core/level_state.cc" "src/CMakeFiles/stardust_core.dir/core/level_state.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/level_state.cc.o.d"
  "/root/repo/src/core/pattern_query.cc" "src/CMakeFiles/stardust_core.dir/core/pattern_query.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/pattern_query.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/CMakeFiles/stardust_core.dir/core/snapshot.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/snapshot.cc.o.d"
  "/root/repo/src/core/stardust.cc" "src/CMakeFiles/stardust_core.dir/core/stardust.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/stardust.cc.o.d"
  "/root/repo/src/core/summarizer.cc" "src/CMakeFiles/stardust_core.dir/core/summarizer.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/summarizer.cc.o.d"
  "/root/repo/src/core/surprise_monitor.cc" "src/CMakeFiles/stardust_core.dir/core/surprise_monitor.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/surprise_monitor.cc.o.d"
  "/root/repo/src/core/window_advisor.cc" "src/CMakeFiles/stardust_core.dir/core/window_advisor.cc.o" "gcc" "src/CMakeFiles/stardust_core.dir/core/window_advisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stardust_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stardust_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stardust_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stardust_dwt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stardust_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stardust_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
