
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/bursty_source.cc" "src/CMakeFiles/stardust_stream.dir/stream/bursty_source.cc.o" "gcc" "src/CMakeFiles/stardust_stream.dir/stream/bursty_source.cc.o.d"
  "/root/repo/src/stream/dataset.cc" "src/CMakeFiles/stardust_stream.dir/stream/dataset.cc.o" "gcc" "src/CMakeFiles/stardust_stream.dir/stream/dataset.cc.o.d"
  "/root/repo/src/stream/host_load_source.cc" "src/CMakeFiles/stardust_stream.dir/stream/host_load_source.cc.o" "gcc" "src/CMakeFiles/stardust_stream.dir/stream/host_load_source.cc.o.d"
  "/root/repo/src/stream/io.cc" "src/CMakeFiles/stardust_stream.dir/stream/io.cc.o" "gcc" "src/CMakeFiles/stardust_stream.dir/stream/io.cc.o.d"
  "/root/repo/src/stream/packet_source.cc" "src/CMakeFiles/stardust_stream.dir/stream/packet_source.cc.o" "gcc" "src/CMakeFiles/stardust_stream.dir/stream/packet_source.cc.o.d"
  "/root/repo/src/stream/preprocess.cc" "src/CMakeFiles/stardust_stream.dir/stream/preprocess.cc.o" "gcc" "src/CMakeFiles/stardust_stream.dir/stream/preprocess.cc.o.d"
  "/root/repo/src/stream/random_walk.cc" "src/CMakeFiles/stardust_stream.dir/stream/random_walk.cc.o" "gcc" "src/CMakeFiles/stardust_stream.dir/stream/random_walk.cc.o.d"
  "/root/repo/src/stream/threshold.cc" "src/CMakeFiles/stardust_stream.dir/stream/threshold.cc.o" "gcc" "src/CMakeFiles/stardust_stream.dir/stream/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stardust_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stardust_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stardust_dwt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stardust_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
