file(REMOVE_RECURSE
  "CMakeFiles/stardust_stream.dir/stream/bursty_source.cc.o"
  "CMakeFiles/stardust_stream.dir/stream/bursty_source.cc.o.d"
  "CMakeFiles/stardust_stream.dir/stream/dataset.cc.o"
  "CMakeFiles/stardust_stream.dir/stream/dataset.cc.o.d"
  "CMakeFiles/stardust_stream.dir/stream/host_load_source.cc.o"
  "CMakeFiles/stardust_stream.dir/stream/host_load_source.cc.o.d"
  "CMakeFiles/stardust_stream.dir/stream/io.cc.o"
  "CMakeFiles/stardust_stream.dir/stream/io.cc.o.d"
  "CMakeFiles/stardust_stream.dir/stream/packet_source.cc.o"
  "CMakeFiles/stardust_stream.dir/stream/packet_source.cc.o.d"
  "CMakeFiles/stardust_stream.dir/stream/preprocess.cc.o"
  "CMakeFiles/stardust_stream.dir/stream/preprocess.cc.o.d"
  "CMakeFiles/stardust_stream.dir/stream/random_walk.cc.o"
  "CMakeFiles/stardust_stream.dir/stream/random_walk.cc.o.d"
  "CMakeFiles/stardust_stream.dir/stream/threshold.cc.o"
  "CMakeFiles/stardust_stream.dir/stream/threshold.cc.o.d"
  "libstardust_stream.a"
  "libstardust_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stardust_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
