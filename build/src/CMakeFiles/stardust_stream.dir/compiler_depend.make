# Empty compiler generated dependencies file for stardust_stream.
# This may be replaced when dependencies are built.
