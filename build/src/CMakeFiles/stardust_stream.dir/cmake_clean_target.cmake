file(REMOVE_RECURSE
  "libstardust_stream.a"
)
