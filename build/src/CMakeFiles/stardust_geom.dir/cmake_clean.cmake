file(REMOVE_RECURSE
  "CMakeFiles/stardust_geom.dir/geom/mbr.cc.o"
  "CMakeFiles/stardust_geom.dir/geom/mbr.cc.o.d"
  "libstardust_geom.a"
  "libstardust_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stardust_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
