# Empty compiler generated dependencies file for stardust_geom.
# This may be replaced when dependencies are built.
