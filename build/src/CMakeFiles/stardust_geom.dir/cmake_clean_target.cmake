file(REMOVE_RECURSE
  "libstardust_geom.a"
)
