
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dwt/filters.cc" "src/CMakeFiles/stardust_dwt.dir/dwt/filters.cc.o" "gcc" "src/CMakeFiles/stardust_dwt.dir/dwt/filters.cc.o.d"
  "/root/repo/src/dwt/haar.cc" "src/CMakeFiles/stardust_dwt.dir/dwt/haar.cc.o" "gcc" "src/CMakeFiles/stardust_dwt.dir/dwt/haar.cc.o.d"
  "/root/repo/src/dwt/incremental.cc" "src/CMakeFiles/stardust_dwt.dir/dwt/incremental.cc.o" "gcc" "src/CMakeFiles/stardust_dwt.dir/dwt/incremental.cc.o.d"
  "/root/repo/src/dwt/mbr_transform.cc" "src/CMakeFiles/stardust_dwt.dir/dwt/mbr_transform.cc.o" "gcc" "src/CMakeFiles/stardust_dwt.dir/dwt/mbr_transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stardust_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stardust_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
