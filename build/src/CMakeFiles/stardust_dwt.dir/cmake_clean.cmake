file(REMOVE_RECURSE
  "CMakeFiles/stardust_dwt.dir/dwt/filters.cc.o"
  "CMakeFiles/stardust_dwt.dir/dwt/filters.cc.o.d"
  "CMakeFiles/stardust_dwt.dir/dwt/haar.cc.o"
  "CMakeFiles/stardust_dwt.dir/dwt/haar.cc.o.d"
  "CMakeFiles/stardust_dwt.dir/dwt/incremental.cc.o"
  "CMakeFiles/stardust_dwt.dir/dwt/incremental.cc.o.d"
  "CMakeFiles/stardust_dwt.dir/dwt/mbr_transform.cc.o"
  "CMakeFiles/stardust_dwt.dir/dwt/mbr_transform.cc.o.d"
  "libstardust_dwt.a"
  "libstardust_dwt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stardust_dwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
