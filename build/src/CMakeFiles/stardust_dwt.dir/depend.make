# Empty dependencies file for stardust_dwt.
# This may be replaced when dependencies are built.
