file(REMOVE_RECURSE
  "libstardust_dwt.a"
)
