file(REMOVE_RECURSE
  "CMakeFiles/stardust_rtree.dir/rtree/rtree.cc.o"
  "CMakeFiles/stardust_rtree.dir/rtree/rtree.cc.o.d"
  "libstardust_rtree.a"
  "libstardust_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stardust_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
