file(REMOVE_RECURSE
  "libstardust_rtree.a"
)
