# Empty compiler generated dependencies file for stardust_rtree.
# This may be replaced when dependencies are built.
