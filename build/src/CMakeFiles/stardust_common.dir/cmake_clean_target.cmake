file(REMOVE_RECURSE
  "libstardust_common.a"
)
