file(REMOVE_RECURSE
  "CMakeFiles/stardust_common.dir/common/rng.cc.o"
  "CMakeFiles/stardust_common.dir/common/rng.cc.o.d"
  "CMakeFiles/stardust_common.dir/common/status.cc.o"
  "CMakeFiles/stardust_common.dir/common/status.cc.o.d"
  "CMakeFiles/stardust_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/stardust_common.dir/common/stopwatch.cc.o.d"
  "libstardust_common.a"
  "libstardust_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stardust_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
