# Empty dependencies file for stardust_common.
# This may be replaced when dependencies are built.
