# Empty compiler generated dependencies file for bench_correlation_scale.
# This may be replaced when dependencies are built.
