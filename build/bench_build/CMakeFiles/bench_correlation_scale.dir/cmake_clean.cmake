file(REMOVE_RECURSE
  "../bench/bench_correlation_scale"
  "../bench/bench_correlation_scale.pdb"
  "CMakeFiles/bench_correlation_scale.dir/bench_correlation_scale.cc.o"
  "CMakeFiles/bench_correlation_scale.dir/bench_correlation_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_correlation_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
