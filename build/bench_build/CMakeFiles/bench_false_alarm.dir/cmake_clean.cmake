file(REMOVE_RECURSE
  "../bench/bench_false_alarm"
  "../bench/bench_false_alarm.pdb"
  "CMakeFiles/bench_false_alarm.dir/bench_false_alarm.cc.o"
  "CMakeFiles/bench_false_alarm.dir/bench_false_alarm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_false_alarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
