file(REMOVE_RECURSE
  "../bench/bench_burst"
  "../bench/bench_burst.pdb"
  "CMakeFiles/bench_burst.dir/bench_burst.cc.o"
  "CMakeFiles/bench_burst.dir/bench_burst.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
