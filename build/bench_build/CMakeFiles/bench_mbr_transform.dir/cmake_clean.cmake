file(REMOVE_RECURSE
  "../bench/bench_mbr_transform"
  "../bench/bench_mbr_transform.pdb"
  "CMakeFiles/bench_mbr_transform.dir/bench_mbr_transform.cc.o"
  "CMakeFiles/bench_mbr_transform.dir/bench_mbr_transform.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mbr_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
