# Empty compiler generated dependencies file for bench_mbr_transform.
# This may be replaced when dependencies are built.
