# Empty compiler generated dependencies file for bench_volatility.
# This may be replaced when dependencies are built.
