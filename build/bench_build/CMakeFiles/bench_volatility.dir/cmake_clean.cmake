file(REMOVE_RECURSE
  "../bench/bench_volatility"
  "../bench/bench_volatility.pdb"
  "CMakeFiles/bench_volatility.dir/bench_volatility.cc.o"
  "CMakeFiles/bench_volatility.dir/bench_volatility.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_volatility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
