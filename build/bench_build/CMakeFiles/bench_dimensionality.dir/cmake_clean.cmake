file(REMOVE_RECURSE
  "../bench/bench_dimensionality"
  "../bench/bench_dimensionality.pdb"
  "CMakeFiles/bench_dimensionality.dir/bench_dimensionality.cc.o"
  "CMakeFiles/bench_dimensionality.dir/bench_dimensionality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
