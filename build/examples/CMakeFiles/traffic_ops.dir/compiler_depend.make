# Empty compiler generated dependencies file for traffic_ops.
# This may be replaced when dependencies are built.
