file(REMOVE_RECURSE
  "CMakeFiles/traffic_ops.dir/traffic_ops.cpp.o"
  "CMakeFiles/traffic_ops.dir/traffic_ops.cpp.o.d"
  "traffic_ops"
  "traffic_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
