# Empty compiler generated dependencies file for stardust_cli.
# This may be replaced when dependencies are built.
