file(REMOVE_RECURSE
  "CMakeFiles/stardust_cli.dir/stardust_cli.cpp.o"
  "CMakeFiles/stardust_cli.dir/stardust_cli.cpp.o.d"
  "stardust_cli"
  "stardust_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stardust_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
