# Empty compiler generated dependencies file for stock_patterns.
# This may be replaced when dependencies are built.
