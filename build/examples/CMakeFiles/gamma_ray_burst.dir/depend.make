# Empty dependencies file for gamma_ray_burst.
# This may be replaced when dependencies are built.
