# Empty compiler generated dependencies file for adaptive_windows.
# This may be replaced when dependencies are built.
