file(REMOVE_RECURSE
  "CMakeFiles/adaptive_windows.dir/adaptive_windows.cpp.o"
  "CMakeFiles/adaptive_windows.dir/adaptive_windows.cpp.o.d"
  "adaptive_windows"
  "adaptive_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
