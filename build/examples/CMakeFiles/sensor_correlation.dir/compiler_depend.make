# Empty compiler generated dependencies file for sensor_correlation.
# This may be replaced when dependencies are built.
