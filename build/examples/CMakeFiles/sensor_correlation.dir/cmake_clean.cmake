file(REMOVE_RECURSE
  "CMakeFiles/sensor_correlation.dir/sensor_correlation.cpp.o"
  "CMakeFiles/sensor_correlation.dir/sensor_correlation.cpp.o.d"
  "sensor_correlation"
  "sensor_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
