# Empty dependencies file for sensor_correlation.
# This may be replaced when dependencies are built.
