// Minimum bounding rectangles in f-dimensional feature space.
//
// MBRs are the central approximation object of the paper: every box of c
// consecutive features at a resolution level is summarized by its MBR
// (Section 4, Figure 1(c)), and all approximate feature computation
// (Lemma 4.2 / Lemma A.2) is interval arithmetic on MBR extents.
#ifndef STARDUST_GEOM_MBR_H_
#define STARDUST_GEOM_MBR_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/kernels.h"

namespace stardust {

/// A point in f-dimensional feature space.
using Point = std::vector<double>;

/// Axis-aligned box with `dims()` dimensions. An empty MBR (containing no
/// points) has inverted extents and reports empty() == true.
class Mbr {
 public:
  Mbr() = default;

  /// An empty MBR of the given dimensionality.
  explicit Mbr(std::size_t dims)
      : lo_(dims, std::numeric_limits<double>::infinity()),
        hi_(dims, -std::numeric_limits<double>::infinity()) {}

  /// A box with explicit extents. Requires lo.size() == hi.size() and
  /// lo[d] <= hi[d] for all d.
  Mbr(Point lo, Point hi);

  /// The degenerate box containing exactly one point.
  static Mbr FromPoint(const Point& p);

  std::size_t dims() const { return lo_.size(); }
  bool empty() const { return lo_.empty() || lo_[0] > hi_[0]; }

  double lo(std::size_t d) const { return lo_[d]; }
  double hi(std::size_t d) const { return hi_[d]; }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  /// Direct extent access for allocation-free kernels (transform/aggregate,
  /// dwt/mbr_transform). Callers must keep lo[d] <= hi[d] per dimension and
  /// both vectors equal-sized, or leave the box in the inverted-empty form.
  Point& mutable_lo() { return lo_; }
  Point& mutable_hi() { return hi_; }

  /// Resizes to `dims` dimensions and sets lo = hi = p, reusing existing
  /// storage. Allocation-free equivalent of `*this = Mbr::FromPoint(...)`
  /// once the vectors have reached their steady-state size.
  void AssignPoint(const double* p, std::size_t dims) {
    lo_.resize(dims);
    hi_.resize(dims);
    kernels::Copy(p, dims, lo_.data());
    kernels::Copy(p, dims, hi_.data());
  }

  /// Resizes to `dims` dimensions and resets to the inverted-empty form,
  /// reusing existing storage. Allocation-free equivalent of
  /// `*this = Mbr(dims)` once the vectors have reached steady-state size.
  void ResetEmpty(std::size_t dims) {
    lo_.assign(dims, std::numeric_limits<double>::infinity());
    hi_.assign(dims, -std::numeric_limits<double>::infinity());
  }

  /// Center of the box (midpoint per dimension). Requires !empty().
  Point Center() const;

  /// Grows the box to include the point / other box.
  /// (The box predicates and accumulators below are defined inline: they
  /// are the innermost loops of R*-tree descent and range probes.)
  void Expand(const Point& p) {
    SD_DCHECK(p.size() == dims());
    for (std::size_t d = 0; d < dims(); ++d) {
      lo_[d] = std::min(lo_[d], p[d]);
      hi_[d] = std::max(hi_[d], p[d]);
    }
  }
  void Expand(const Mbr& other) {
    SD_DCHECK(other.dims() == dims());
    if (other.empty()) return;
    for (std::size_t d = 0; d < dims(); ++d) {
      lo_[d] = std::min(lo_[d], other.lo_[d]);
      hi_[d] = std::max(hi_[d], other.hi_[d]);
    }
  }
  /// Expand by a non-empty box given as raw lo/hi spans of dims() values.
  /// Bit-identical to Expand(Mbr(lo, hi)) without materializing the box.
  void ExpandSpans(const double* lo, const double* hi) {
    for (std::size_t d = 0; d < dims(); ++d) {
      lo_[d] = std::min(lo_[d], lo[d]);
      hi_[d] = std::max(hi_[d], hi[d]);
    }
  }

  /// Grows the box by `delta` on both sides of every dimension.
  void Inflate(double delta);

  /// Product of extents. Zero-width dimensions contribute factor 0.
  double Area() const {
    if (empty()) return 0.0;
    double area = 1.0;
    for (std::size_t d = 0; d < dims(); ++d) area *= hi_[d] - lo_[d];
    return area;
  }

  /// Sum of extents over all dimensions (the R*-tree "margin").
  double Margin() const {
    if (empty()) return 0.0;
    double margin = 0.0;
    for (std::size_t d = 0; d < dims(); ++d) margin += hi_[d] - lo_[d];
    return margin;
  }

  /// Area of the intersection with `other`; 0 if disjoint.
  double OverlapArea(const Mbr& other) const {
    SD_DCHECK(other.dims() == dims());
    if (empty() || other.empty()) return 0.0;
    double area = 1.0;
    for (std::size_t d = 0; d < dims(); ++d) {
      const double w =
          std::min(hi_[d], other.hi_[d]) - std::max(lo_[d], other.lo_[d]);
      if (w <= 0.0) return 0.0;
      area *= w;
    }
    return area;
  }

  /// Area(this ∪ {p or other}) - Area(this), computed without
  /// materializing the union box.
  double Enlargement(const Point& p) const {
    SD_DCHECK(p.size() == dims());
    if (empty()) return 0.0;
    double grown = 1.0;
    for (std::size_t d = 0; d < dims(); ++d) {
      grown *= std::max(hi_[d], p[d]) - std::min(lo_[d], p[d]);
    }
    return grown - Area();
  }
  double Enlargement(const Mbr& other) const {
    SD_DCHECK(other.dims() == dims());
    if (other.empty()) return 0.0;
    if (empty()) return other.Area();
    double grown = 1.0;
    for (std::size_t d = 0; d < dims(); ++d) {
      grown *= std::max(hi_[d], other.hi_[d]) - std::min(lo_[d], other.lo_[d]);
    }
    return grown - Area();
  }

  bool Intersects(const Mbr& other) const {
    SD_DCHECK(other.dims() == dims());
    if (empty() || other.empty()) return false;
    for (std::size_t d = 0; d < dims(); ++d) {
      if (lo_[d] > other.hi_[d] || hi_[d] < other.lo_[d]) return false;
    }
    return true;
  }
  bool Contains(const Point& p) const {
    SD_DCHECK(p.size() == dims());
    if (empty()) return false;
    for (std::size_t d = 0; d < dims(); ++d) {
      if (p[d] < lo_[d] || p[d] > hi_[d]) return false;
    }
    return true;
  }
  bool Contains(const Mbr& other) const {
    SD_DCHECK(other.dims() == dims());
    if (empty() || other.empty()) return false;
    for (std::size_t d = 0; d < dims(); ++d) {
      if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
    }
    return true;
  }

  /// Minimum squared L2 distance from point `p` to this box
  /// (0 if p is inside). This is d_min^2 of the paper's Section 5.2.
  double MinDist2(const Point& p) const {
    SD_DCHECK(p.size() == dims());
    SD_DCHECK(!empty());
    double sum = 0.0;
    for (std::size_t d = 0; d < dims(); ++d) {
      double diff = 0.0;
      if (p[d] < lo_[d]) {
        diff = lo_[d] - p[d];
      } else if (p[d] > hi_[d]) {
        diff = p[d] - hi_[d];
      }
      sum += diff * diff;
    }
    return sum;
  }

  /// Minimum squared L2 distance between two boxes (0 if they intersect).
  double MinDist2(const Mbr& other) const {
    SD_DCHECK(other.dims() == dims());
    SD_DCHECK(!empty() && !other.empty());
    double sum = 0.0;
    for (std::size_t d = 0; d < dims(); ++d) {
      double diff = 0.0;
      if (other.hi_[d] < lo_[d]) {
        diff = lo_[d] - other.hi_[d];
      } else if (other.lo_[d] > hi_[d]) {
        diff = other.lo_[d] - hi_[d];
      }
      sum += diff * diff;
    }
    return sum;
  }

  /// Maximum squared L2 distance from point `p` to any point in this box.
  double MaxDist2(const Point& p) const;

  std::string ToString() const;

  friend bool operator==(const Mbr& a, const Mbr& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  Point lo_;
  Point hi_;
};

/// Squared L2 distance between equal-dimension points.
inline double Dist2(const Point& a, const Point& b) {
  SD_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace stardust

#endif  // STARDUST_GEOM_MBR_H_
