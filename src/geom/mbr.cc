#include "geom/mbr.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace stardust {

Mbr::Mbr(Point lo, Point hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  SD_CHECK(lo_.size() == hi_.size());
#ifndef NDEBUG
  for (std::size_t d = 0; d < lo_.size(); ++d) SD_DCHECK(lo_[d] <= hi_[d]);
#endif
}

Mbr Mbr::FromPoint(const Point& p) { return Mbr(p, p); }

bool Mbr::empty() const {
  if (lo_.empty()) return true;
  return lo_[0] > hi_[0];
}

Point Mbr::Center() const {
  SD_DCHECK(!empty());
  Point c(dims());
  for (std::size_t d = 0; d < dims(); ++d) c[d] = 0.5 * (lo_[d] + hi_[d]);
  return c;
}

void Mbr::Expand(const Point& p) {
  SD_DCHECK(p.size() == dims());
  for (std::size_t d = 0; d < dims(); ++d) {
    lo_[d] = std::min(lo_[d], p[d]);
    hi_[d] = std::max(hi_[d], p[d]);
  }
}

void Mbr::Expand(const Mbr& other) {
  SD_DCHECK(other.dims() == dims());
  if (other.empty()) return;
  for (std::size_t d = 0; d < dims(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
}

void Mbr::Inflate(double delta) {
  SD_DCHECK(!empty());
  for (std::size_t d = 0; d < dims(); ++d) {
    lo_[d] -= delta;
    hi_[d] += delta;
  }
}

double Mbr::Area() const {
  if (empty()) return 0.0;
  double area = 1.0;
  for (std::size_t d = 0; d < dims(); ++d) area *= hi_[d] - lo_[d];
  return area;
}

double Mbr::Margin() const {
  if (empty()) return 0.0;
  double margin = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) margin += hi_[d] - lo_[d];
  return margin;
}

double Mbr::OverlapArea(const Mbr& other) const {
  SD_DCHECK(other.dims() == dims());
  if (empty() || other.empty()) return 0.0;
  double area = 1.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    const double w = std::min(hi_[d], other.hi_[d]) -
                     std::max(lo_[d], other.lo_[d]);
    if (w <= 0.0) return 0.0;
    area *= w;
  }
  return area;
}

double Mbr::Enlargement(const Point& p) const {
  Mbr grown = *this;
  grown.Expand(p);
  return grown.Area() - Area();
}

double Mbr::Enlargement(const Mbr& other) const {
  Mbr grown = *this;
  grown.Expand(other);
  return grown.Area() - Area();
}

bool Mbr::Intersects(const Mbr& other) const {
  SD_DCHECK(other.dims() == dims());
  if (empty() || other.empty()) return false;
  for (std::size_t d = 0; d < dims(); ++d) {
    if (lo_[d] > other.hi_[d] || hi_[d] < other.lo_[d]) return false;
  }
  return true;
}

bool Mbr::Contains(const Point& p) const {
  SD_DCHECK(p.size() == dims());
  if (empty()) return false;
  for (std::size_t d = 0; d < dims(); ++d) {
    if (p[d] < lo_[d] || p[d] > hi_[d]) return false;
  }
  return true;
}

bool Mbr::Contains(const Mbr& other) const {
  SD_DCHECK(other.dims() == dims());
  if (empty() || other.empty()) return false;
  for (std::size_t d = 0; d < dims(); ++d) {
    if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
  }
  return true;
}

double Mbr::MinDist2(const Point& p) const {
  SD_DCHECK(p.size() == dims());
  SD_DCHECK(!empty());
  double sum = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    double diff = 0.0;
    if (p[d] < lo_[d]) {
      diff = lo_[d] - p[d];
    } else if (p[d] > hi_[d]) {
      diff = p[d] - hi_[d];
    }
    sum += diff * diff;
  }
  return sum;
}

double Mbr::MinDist2(const Mbr& other) const {
  SD_DCHECK(other.dims() == dims());
  SD_DCHECK(!empty() && !other.empty());
  double sum = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    double diff = 0.0;
    if (other.hi_[d] < lo_[d]) {
      diff = lo_[d] - other.hi_[d];
    } else if (other.lo_[d] > hi_[d]) {
      diff = other.lo_[d] - hi_[d];
    }
    sum += diff * diff;
  }
  return sum;
}

double Mbr::MaxDist2(const Point& p) const {
  SD_DCHECK(p.size() == dims());
  SD_DCHECK(!empty());
  double sum = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    const double diff =
        std::max(std::abs(p[d] - lo_[d]), std::abs(p[d] - hi_[d]));
    sum += diff * diff;
  }
  return sum;
}

std::string Mbr::ToString() const {
  std::ostringstream os;
  os << "Mbr{";
  for (std::size_t d = 0; d < dims(); ++d) {
    if (d > 0) os << ", ";
    os << "[" << lo_[d] << ", " << hi_[d] << "]";
  }
  os << "}";
  return os.str();
}

double Dist2(const Point& a, const Point& b) {
  SD_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace stardust
