#include "geom/mbr.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace stardust {

Mbr::Mbr(Point lo, Point hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  SD_CHECK(lo_.size() == hi_.size());
#ifndef NDEBUG
  for (std::size_t d = 0; d < lo_.size(); ++d) SD_DCHECK(lo_[d] <= hi_[d]);
#endif
}

Mbr Mbr::FromPoint(const Point& p) { return Mbr(p, p); }

Point Mbr::Center() const {
  SD_DCHECK(!empty());
  Point c(dims());
  for (std::size_t d = 0; d < dims(); ++d) c[d] = 0.5 * (lo_[d] + hi_[d]);
  return c;
}

void Mbr::Inflate(double delta) {
  SD_DCHECK(!empty());
  for (std::size_t d = 0; d < dims(); ++d) {
    lo_[d] -= delta;
    hi_[d] += delta;
  }
}


double Mbr::MaxDist2(const Point& p) const {
  SD_DCHECK(p.size() == dims());
  SD_DCHECK(!empty());
  double sum = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    const double diff =
        std::max(std::abs(p[d] - lo_[d]), std::abs(p[d] - hi_[d]));
    sum += diff * diff;
  }
  return sum;
}

std::string Mbr::ToString() const {
  std::ostringstream os;
  os << "Mbr{";
  for (std::size_t d = 0; d < dims(); ++d) {
    if (d > 0) os << ", ";
    os << "[" << lo_[d] << ", " << hi_[d] << "]";
  }
  os << "}";
  return os.str();
}

}  // namespace stardust
