// Approximate cross-resolution feature computation on MBRs (Lemma A.2).
//
// When level-(j-1) features are summarized by MBRs, the level-j feature is
// only known to lie inside a box: the two half MBRs (each in R^f) are
// concatenated into B ∈ R^{2f}, and the low-pass + downsample step is
// applied to the box itself. Three algorithms are provided:
//
//  - Online I  (TransformMbrCorners): transform all 2^{2f} corners of B and
//    bound the results — the tightest box for a unitary transform, at cost
//    Θ(2^{2f} · f) (Appendix A).
//  - Online II (TransformMbrLoHi): the paper's Θ(f) scheme using only the
//    low and high corners with the δ amplitude-shift filter
//    (Equations 16-17). Exact for non-negative filters such as Haar.
//  - Interval  (TransformMbrInterval): classical interval arithmetic over
//    the filter taps — also Θ(f) and never looser than Online II; provided
//    as an ablation (§"extensions" in DESIGN.md).
//
// All three return a box guaranteed to contain the true feature of every
// point in B (containment is property-tested against Online I).
#ifndef STARDUST_DWT_MBR_TRANSFORM_H_
#define STARDUST_DWT_MBR_TRANSFORM_H_

#include "dwt/filters.h"
#include "geom/mbr.h"

namespace stardust {

/// Online I: corner enumeration. `box` must have an even number of
/// dimensions 2f with 2f <= 20 (corner count 2^{2f}).
/// `rescale` multiplies outputs (see MergeHalvesHaar for its role).
Mbr TransformMbrCorners(const Mbr& box, const WaveletFilter& filter,
                        double rescale = 1.0);

/// Online II: the paper's low/high-corner scheme with the δ filter shift.
Mbr TransformMbrLoHi(const Mbr& box, const WaveletFilter& filter,
                     double rescale = 1.0);

/// Tight interval arithmetic per output coefficient.
Mbr TransformMbrInterval(const Mbr& box, const WaveletFilter& filter,
                         double rescale = 1.0);

/// Merges two level-(j-1) feature MBRs (each in R^f) into the level-j
/// feature MBR in R^f via Online II — the Θ(f) fast path Stardust uses in
/// its online algorithm. Equivalent to TransformMbrLoHi on the
/// concatenation of `left` and `right`.
Mbr MergeMbrHalvesHaar(const Mbr& left, const Mbr& right,
                       double rescale = 1.0);

/// Allocation-free form of MergeMbrHalvesHaar for the batched maintenance
/// path: reuses `out`'s storage and restructures the inner loop into
/// contiguous per-half passes with no index branch, so the compiler can
/// vectorize it. Results are bit-identical to MergeMbrHalvesHaar. `out`
/// must not alias `left` or `right`.
void MergeMbrHalvesHaarInto(const Mbr& left, const Mbr& right, double rescale,
                            Mbr* out);

}  // namespace stardust

#endif  // STARDUST_DWT_MBR_TRANSFORM_H_
