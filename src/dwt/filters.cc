#include "dwt/filters.h"

#include <algorithm>
#include <cmath>

namespace stardust {

double WaveletFilter::DeltaAmplitude() const {
  double min_tap = 0.0;
  for (double h : lowpass) min_tap = std::min(min_tap, h);
  return -min_tap;
}

const WaveletFilter& HaarFilter() {
  static const WaveletFilter* kFilter = [] {
    auto* f = new WaveletFilter;
    f->name = "haar";
    const double s = 1.0 / std::sqrt(2.0);
    f->lowpass = {s, s};
    return f;
  }();
  return *kFilter;
}

const WaveletFilter& Daubechies4Filter() {
  static const WaveletFilter* kFilter = [] {
    auto* f = new WaveletFilter;
    f->name = "db4";
    const double r3 = std::sqrt(3.0);
    const double denom = 4.0 * std::sqrt(2.0);
    f->lowpass = {(1.0 + r3) / denom, (3.0 + r3) / denom,
                  (3.0 - r3) / denom, (1.0 - r3) / denom};
    return f;
  }();
  return *kFilter;
}

}  // namespace stardust
