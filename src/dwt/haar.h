// Orthonormal Haar discrete wavelet transform.
//
// Stardust's pattern / correlation features are the first f coefficients of
// the DWT of a window (Section 4). We represent that feature by the length-f
// *approximation vector* of the window — the coefficients <x, φ_{d,k}> at
// the depth d where exactly f coefficients remain. The approximation space
// V_d is spanned by the top approximation plus all details coarser than d,
// so the length-f approximation vector is a unitary change of basis of the
// "first f ordered DWT coefficients": all L2 distances between features are
// identical in either representation, and the representation makes the
// incremental half-merge of Lemma A.1 a single low-pass step.
#ifndef STARDUST_DWT_HAAR_H_
#define STARDUST_DWT_HAAR_H_

#include <cstddef>
#include <vector>

namespace stardust {

/// True iff n is a power of two (n >= 1).
bool IsPowerOfTwo(std::size_t n);

/// Full orthonormal Haar DWT of x (|x| must be a power of two).
/// Output ordering: [a_top, d_top, d_{next level} (2 values), ...,
/// finest details (|x|/2 values)]. Energy preserving.
std::vector<double> HaarDwt(const std::vector<double>& x);

/// Inverse of HaarDwt.
std::vector<double> HaarInverse(const std::vector<double>& coeffs);

/// Approximation coefficients of x at the depth with exactly `out_len`
/// coefficients. Requires |x| and out_len powers of two, out_len <= |x|.
/// out[k] = <x, φ_{d,k}> with orthonormal scaling: each step halves the
/// length via out[k] = (in[2k] + in[2k+1]) / √2.
std::vector<double> HaarApprox(const std::vector<double>& x,
                               std::size_t out_len);

/// First `f` coefficients of the ordered full DWT (prefix of HaarDwt).
/// Requires f <= |x|.
std::vector<double> HaarPrefix(const std::vector<double>& x, std::size_t f);

/// Allocation-free HaarDwt for batched feature maintenance: writes the
/// full ordered DWT of x into `out` using `scratch` for the shrinking
/// approximation vector (both are resized; steady-state reuse is
/// allocation-free). Results are bit-identical to HaarDwt.
void HaarDwtInto(const std::vector<double>& x, std::vector<double>* out,
                 std::vector<double>* scratch);

/// Allocation-free HaarApprox: repeatedly halves *x in place and resizes
/// it to out_len. Same preconditions as HaarApprox. This is the hot path
/// of batch feature maintenance (Theorem 4.3's per-item cost).
void HaarApproxInPlace(std::vector<double>* x, std::size_t out_len);

/// Fraction of total signal energy captured by the length-f approximation
/// vector, averaged over the sample windows (each a power-of-two length
/// >= f). Windows with zero energy are skipped; returns 1.0 when every
/// window is zero.
double ApproxEnergyFraction(const std::vector<std::vector<double>>& windows,
                            std::size_t f);

/// The smallest power-of-two f <= |window| whose approximation vector
/// retains at least `energy_fraction` of the energy on average — the
/// paper's "for most real time series the first f (f << w) DWT
/// coefficients retain most of the energy of the signal" (Section 4),
/// turned into a calibration tool for choosing the coefficient count.
/// All sample windows must share one power-of-two length.
std::size_t SuggestCoefficientCount(
    const std::vector<std::vector<double>>& windows,
    double energy_fraction);

}  // namespace stardust

#endif  // STARDUST_DWT_HAAR_H_
