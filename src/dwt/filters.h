// Wavelet decomposition filters.
//
// The paper's incremental feature computation (Appendix A) is expressed in
// terms of a low-pass decomposition filter h̃: approximation coefficients at
// level j+1 are obtained by convolving level-j coefficients with h̃ and
// downsampling by two (Equations 11-12). Haar is the filter used throughout
// the paper's experiments; Daubechies-4 is provided to exercise the
// general-filter path of Lemma A.2 (the amplitude-shift δ trick is only
// needed when h̃ has negative entries, which Haar does not).
#ifndef STARDUST_DWT_FILTERS_H_
#define STARDUST_DWT_FILTERS_H_

#include <string>
#include <vector>

namespace stardust {

/// A low-pass wavelet decomposition filter.
struct WaveletFilter {
  std::string name;
  /// Low-pass decomposition taps h̃[0..len).
  std::vector<double> lowpass;

  /// Smallest non-negative amplitude δ such that every entry of h̃ + δ is
  /// non-negative (Lemma A.2). Zero for filters with non-negative taps.
  double DeltaAmplitude() const;
};

/// Haar: h̃ = [1/√2, 1/√2]. All taps non-negative (δ = 0).
const WaveletFilter& HaarFilter();

/// Daubechies-4: four taps, one negative (δ > 0).
const WaveletFilter& Daubechies4Filter();

}  // namespace stardust

#endif  // STARDUST_DWT_FILTERS_H_
