#include "dwt/mbr_transform.h"

#include <cmath>

#include "common/check.h"
#include "common/kernels.h"
#include "dwt/incremental.h"

namespace stardust {

Mbr TransformMbrCorners(const Mbr& box, const WaveletFilter& filter,
                        double rescale) {
  SD_CHECK(!box.empty());
  SD_CHECK(box.dims() % 2 == 0);
  SD_CHECK(box.dims() <= 20);
  SD_CHECK(rescale > 0.0);
  const std::size_t in_dims = box.dims();
  const std::size_t out_dims = in_dims / 2;
  Mbr out(out_dims);
  Point corner(in_dims);
  const std::size_t corner_count = std::size_t{1} << in_dims;
  for (std::size_t mask = 0; mask < corner_count; ++mask) {
    for (std::size_t d = 0; d < in_dims; ++d) {
      corner[d] = (mask >> d) & 1 ? box.hi(d) : box.lo(d);
    }
    std::vector<double> transformed = LowpassDownsample(corner, filter);
    for (double& v : transformed) v *= rescale;
    out.Expand(transformed);
  }
  return out;
}

Mbr TransformMbrLoHi(const Mbr& box, const WaveletFilter& filter,
                     double rescale) {
  SD_CHECK(!box.empty());
  SD_CHECK(box.dims() % 2 == 0);
  SD_CHECK(rescale > 0.0);
  const std::size_t n = box.dims();
  const std::size_t out_dims = n / 2;
  const double delta = filter.DeltaAmplitude();
  Point out_lo(out_dims), out_hi(out_dims);
  for (std::size_t k = 0; k < out_dims; ++k) {
    double lo_acc = 0.0;
    double hi_acc = 0.0;
    for (std::size_t m = 0; m < filter.lowpass.size(); ++m) {
      const std::size_t idx = (2 * k + m) % n;
      const double shifted = filter.lowpass[m] + delta;
      // Equations 16-17: A_lo = ↓(x_lo*(h̃+δ) − x_hi*δ),
      //                  A_hi = ↓(x_hi*(h̃+δ) − x_lo*δ).
      lo_acc += shifted * box.lo(idx) - delta * box.hi(idx);
      hi_acc += shifted * box.hi(idx) - delta * box.lo(idx);
    }
    out_lo[k] = lo_acc * rescale;
    out_hi[k] = hi_acc * rescale;
  }
  return Mbr(std::move(out_lo), std::move(out_hi));
}

Mbr TransformMbrInterval(const Mbr& box, const WaveletFilter& filter,
                         double rescale) {
  SD_CHECK(!box.empty());
  SD_CHECK(box.dims() % 2 == 0);
  SD_CHECK(rescale > 0.0);
  const std::size_t n = box.dims();
  const std::size_t out_dims = n / 2;
  Point out_lo(out_dims), out_hi(out_dims);
  for (std::size_t k = 0; k < out_dims; ++k) {
    double lo_acc = 0.0;
    double hi_acc = 0.0;
    for (std::size_t m = 0; m < filter.lowpass.size(); ++m) {
      const std::size_t idx = (2 * k + m) % n;
      const double h = filter.lowpass[m];
      if (h >= 0.0) {
        lo_acc += h * box.lo(idx);
        hi_acc += h * box.hi(idx);
      } else {
        lo_acc += h * box.hi(idx);
        hi_acc += h * box.lo(idx);
      }
    }
    out_lo[k] = lo_acc * rescale;
    out_hi[k] = hi_acc * rescale;
  }
  return Mbr(std::move(out_lo), std::move(out_hi));
}

Mbr MergeMbrHalvesHaar(const Mbr& left, const Mbr& right, double rescale) {
  SD_CHECK(!left.empty() && !right.empty());
  SD_CHECK(left.dims() == right.dims());
  SD_CHECK(rescale > 0.0);
  const std::size_t f = left.dims();
  const double scale = rescale / std::sqrt(2.0);
  auto lo_at = [&](std::size_t i) {
    return i < f ? left.lo(i) : right.lo(i - f);
  };
  auto hi_at = [&](std::size_t i) {
    return i < f ? left.hi(i) : right.hi(i - f);
  };
  Point out_lo(f), out_hi(f);
  for (std::size_t k = 0; k < f; ++k) {
    out_lo[k] = (lo_at(2 * k) + lo_at(2 * k + 1)) * scale;
    out_hi[k] = (hi_at(2 * k) + hi_at(2 * k + 1)) * scale;
  }
  return Mbr(std::move(out_lo), std::move(out_hi));
}

void MergeMbrHalvesHaarInto(const Mbr& left, const Mbr& right, double rescale,
                            Mbr* out) {
  SD_DCHECK(!left.empty() && !right.empty());
  SD_DCHECK(left.dims() == right.dims());
  SD_DCHECK(rescale > 0.0);
  const std::size_t f = left.dims();
  const double scale = rescale / std::sqrt(2.0);
  Point& out_lo = out->mutable_lo();
  Point& out_hi = out->mutable_hi();
  out_lo.resize(f);
  out_hi.resize(f);
  const double* llo = left.lo().data();
  const double* lhi = left.hi().data();
  const double* rlo = right.lo().data();
  const double* rhi = right.hi().data();
  // Output k reads concatenated inputs 2k and 2k+1: the first ⌊f/2⌋
  // outputs pair within `left`, the last ⌊f/2⌋ pair within `right`, and an
  // odd f leaves one output straddling the seam. Each contiguous segment
  // runs the dispatched haar_down kernel (common/kernels.h) —
  // bit-identical to the fused per-index loop of MergeMbrHalvesHaar.
  const std::size_t half = f / 2;
  const std::size_t seam = f % 2;
  kernels::HaarDown(llo, half, scale, out_lo.data());
  kernels::HaarDown(lhi, half, scale, out_hi.data());
  if (seam != 0) {
    out_lo[half] = (llo[f - 1] + rlo[0]) * scale;
    out_hi[half] = (lhi[f - 1] + rhi[0]) * scale;
  }
  kernels::HaarDown(rlo + seam, half, scale, out_lo.data() + half + seam);
  kernels::HaarDown(rhi + seam, half, scale, out_hi.data() + half + seam);
}

}  // namespace stardust
