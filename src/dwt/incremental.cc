#include "dwt/incremental.h"

#include <cmath>

#include "common/check.h"
#include "common/kernels.h"

namespace stardust {

void LowpassDownsampleSpan(const double* in, std::size_t n,
                           const WaveletFilter& filter, double* out) {
  SD_CHECK(in != nullptr && out != nullptr);
  SD_CHECK(n > 0 && n % 2 == 0);
  const std::size_t half = n / 2;
  for (std::size_t k = 0; k < half; ++k) {
    double acc = 0.0;
    for (std::size_t m = 0; m < filter.lowpass.size(); ++m) {
      acc += filter.lowpass[m] * in[(2 * k + m) % n];
    }
    out[k] = acc;
  }
}

std::vector<double> LowpassDownsample(const std::vector<double>& in,
                                      const WaveletFilter& filter) {
  SD_CHECK(!in.empty() && in.size() % 2 == 0);
  std::vector<double> out(in.size() / 2, 0.0);
  LowpassDownsampleSpan(in.data(), in.size(), filter, out.data());
  return out;
}

void MergeHalvesHaarSpan(const double* left, const double* right,
                         std::size_t f, double rescale, double* out) {
  SD_CHECK(left != nullptr && right != nullptr && out != nullptr);
  SD_CHECK(f > 0);
  const double scale = rescale / std::sqrt(2.0);
  // Concatenated vector c = [left | right]; Haar low-pass pairs c[2k],
  // c[2k+1]. The first ⌊f/2⌋ outputs pair within `left`, the last ⌊f/2⌋
  // pair within `right`, and an odd f leaves one output straddling the
  // seam — split there so both segments run the dispatched haar_down
  // kernel over contiguous input (bit-identical to the fused loop).
  const std::size_t half = f / 2;
  kernels::HaarDown(left, half, scale, out);
  if (f % 2 != 0) {
    out[half] = (left[f - 1] + right[0]) * scale;
  }
  kernels::HaarDown(right + (f % 2), half, scale, out + half + (f % 2));
}

std::vector<double> MergeHalvesHaar(const std::vector<double>& left,
                                    const std::vector<double>& right,
                                    double rescale) {
  SD_CHECK(left.size() == right.size());
  SD_CHECK(!left.empty());
  std::vector<double> out(left.size());
  MergeHalvesHaarSpan(left.data(), right.data(), left.size(), rescale,
                      out.data());
  return out;
}

std::vector<double> MergeHalves(const std::vector<double>& left,
                                const std::vector<double>& right,
                                const WaveletFilter& filter, double rescale) {
  SD_CHECK(left.size() == right.size());
  std::vector<double> concat;
  concat.reserve(left.size() * 2);
  concat.insert(concat.end(), left.begin(), left.end());
  concat.insert(concat.end(), right.begin(), right.end());
  std::vector<double> out = LowpassDownsample(concat, filter);
  if (rescale != 1.0) {
    for (double& v : out) v *= rescale;
  }
  return out;
}

}  // namespace stardust
