#include "dwt/haar.h"

#include <cmath>

#include "common/check.h"
#include "common/kernels.h"

namespace stardust {

namespace {

const double kInvSqrt2 = 1.0 / std::sqrt(2.0);

}  // namespace

bool IsPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::vector<double> HaarDwt(const std::vector<double>& x) {
  SD_CHECK(IsPowerOfTwo(x.size()));
  const std::size_t n = x.size();
  std::vector<double> out(n);
  std::vector<double> approx = x;
  // Iteratively halve; details of each level go to out[len .. 2*len).
  while (approx.size() > 1) {
    const std::size_t half = approx.size() / 2;
    std::vector<double> next(half);
    for (std::size_t k = 0; k < half; ++k) {
      next[k] = (approx[2 * k] + approx[2 * k + 1]) * kInvSqrt2;
      out[half + k] = (approx[2 * k] - approx[2 * k + 1]) * kInvSqrt2;
    }
    approx = std::move(next);
  }
  out[0] = approx[0];
  return out;
}

std::vector<double> HaarInverse(const std::vector<double>& coeffs) {
  SD_CHECK(IsPowerOfTwo(coeffs.size()));
  const std::size_t n = coeffs.size();
  std::vector<double> approx(1, coeffs[0]);
  while (approx.size() < n) {
    const std::size_t half = approx.size();
    std::vector<double> next(2 * half);
    for (std::size_t k = 0; k < half; ++k) {
      const double a = approx[k];
      const double d = coeffs[half + k];
      next[2 * k] = (a + d) * kInvSqrt2;
      next[2 * k + 1] = (a - d) * kInvSqrt2;
    }
    approx = std::move(next);
  }
  return approx;
}

std::vector<double> HaarApprox(const std::vector<double>& x,
                               std::size_t out_len) {
  SD_CHECK(IsPowerOfTwo(x.size()));
  SD_CHECK(IsPowerOfTwo(out_len));
  SD_CHECK(out_len <= x.size());
  std::vector<double> approx = x;
  while (approx.size() > out_len) {
    const std::size_t half = approx.size() / 2;
    std::vector<double> next(half);
    for (std::size_t k = 0; k < half; ++k) {
      next[k] = (approx[2 * k] + approx[2 * k + 1]) * kInvSqrt2;
    }
    approx = std::move(next);
  }
  return approx;
}

std::vector<double> HaarPrefix(const std::vector<double>& x, std::size_t f) {
  SD_CHECK(f <= x.size());
  std::vector<double> full = HaarDwt(x);
  full.resize(f);
  return full;
}

double ApproxEnergyFraction(const std::vector<std::vector<double>>& windows,
                            std::size_t f) {
  SD_CHECK(!windows.empty());
  double fraction_sum = 0.0;
  std::size_t counted = 0;
  for (const auto& window : windows) {
    SD_CHECK(f <= window.size());
    double total = 0.0;
    for (double v : window) total += v * v;
    if (total <= 0.0) continue;
    // Energy of the approximation vector (unitary transform: the rest of
    // the energy lives in the discarded detail coefficients).
    const std::vector<double> approx = HaarApprox(window, f);
    double kept = 0.0;
    for (double v : approx) kept += v * v;
    fraction_sum += kept / total;
    ++counted;
  }
  return counted == 0 ? 1.0
                      : fraction_sum / static_cast<double>(counted);
}

std::size_t SuggestCoefficientCount(
    const std::vector<std::vector<double>>& windows,
    double energy_fraction) {
  SD_CHECK(!windows.empty());
  SD_CHECK(energy_fraction > 0.0 && energy_fraction <= 1.0);
  const std::size_t w = windows[0].size();
  for (const auto& window : windows) SD_CHECK(window.size() == w);
  for (std::size_t f = 1; f <= w; f *= 2) {
    // Small slack so an exact-fraction request is not defeated by the
    // transform's floating-point rounding.
    if (ApproxEnergyFraction(windows, f) >= energy_fraction - 1e-9) {
      return f;
    }
  }
  return w;
}

void HaarDwtInto(const std::vector<double>& x, std::vector<double>* out,
                 std::vector<double>* scratch) {
  SD_CHECK(IsPowerOfTwo(x.size()));
  const std::size_t n = x.size();
  out->resize(n);
  scratch->assign(x.begin(), x.end());
  double* a = scratch->data();
  double* o = out->data();
  std::size_t len = n;
  // Same halving recurrence as HaarDwt, with the approximation vector
  // shrinking in place: a[k] is only written after a[2k] and a[2k+1] were
  // read (k <= 2k), so no temporary is needed. The dispatched haar_step
  // kernel (common/kernels.h) is bit-identical to the scalar recurrence on
  // every backend.
  while (len > 1) {
    const std::size_t half = len / 2;
    kernels::HaarStep(a, half, kInvSqrt2, a, o + half);
    len = half;
  }
  o[0] = a[0];
}

void HaarApproxInPlace(std::vector<double>* x, std::size_t out_len) {
  SD_CHECK(IsPowerOfTwo(x->size()));
  SD_CHECK(IsPowerOfTwo(out_len));
  SD_CHECK(out_len <= x->size());
  std::size_t len = x->size();
  double* data = x->data();
  // In-place halving through the dispatched haar_down kernel
  // (common/kernels.h) — bit-identical on every backend.
  while (len > out_len) {
    const std::size_t half = len / 2;
    kernels::HaarDown(data, half, kInvSqrt2, data);
    len = half;
  }
  x->resize(out_len);
}

}  // namespace stardust
