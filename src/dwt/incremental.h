// Incremental cross-resolution feature computation (Lemma A.1).
//
// The level-j feature of window x[t-w+1 : t] is computed exactly from the
// level-(j-1) features of the two halves x[t-w+1 : t-w/2] and
// x[t-w/2+1 : t]: concatenating the two length-f approximation vectors
// yields the 2f approximation coefficients of the whole window one depth
// finer, and a single low-pass + downsample step produces the length-f
// approximation at level j. This is the "compute higher-level features from
// lower-level features" single-pass scheme of Figure 1(b).
#ifndef STARDUST_DWT_INCREMENTAL_H_
#define STARDUST_DWT_INCREMENTAL_H_

#include <cstddef>
#include <vector>

#include "dwt/filters.h"

namespace stardust {

/// One periodized low-pass decomposition step: convolve with `filter` and
/// downsample by two. |in| must be even; output has |in| / 2 entries.
/// out[n] = Σ_m h̃[m] · in[(2n + m) mod |in|].
std::vector<double> LowpassDownsample(const std::vector<double>& in,
                                      const WaveletFilter& filter);

/// Allocation-free span form of LowpassDownsample: reads `n` values at
/// `in` (n even, > 0) and writes n / 2 values to `out`. `out` must not
/// alias `in`.
void LowpassDownsampleSpan(const double* in, std::size_t n,
                           const WaveletFilter& filter, double* out);

/// Allocation-free span form of MergeHalvesHaar for batch callers
/// (core/summarizer, engine/feature_pipeline) that keep features in flat
/// buffers: merges the two length-f halves into `out` (length f), scaled
/// by `rescale`. `out` must not alias either input.
void MergeHalvesHaarSpan(const double* left, const double* right,
                         std::size_t f, double rescale, double* out);

/// Lemma A.1 for Haar: merges the approximation vectors of the two halves
/// of a window into the approximation vector of the whole window at the
/// same output length f. `left` and `right` must have equal size f.
///
/// `rescale` multiplies the merged coefficients; pass 1.0 for raw windows.
/// When features are unit-hypersphere normalized (Equation 2 divides by
/// √w·R_max), the normalization factor of the doubled window differs by √2
/// from the halves', so pass 1/√2 to keep features normalized per level.
std::vector<double> MergeHalvesHaar(const std::vector<double>& left,
                                    const std::vector<double>& right,
                                    double rescale = 1.0);

/// General-filter version of the half merge: concatenate then one
/// periodized low-pass step with `filter`, scaled by `rescale`.
std::vector<double> MergeHalves(const std::vector<double>& left,
                                const std::vector<double>& right,
                                const WaveletFilter& filter,
                                double rescale = 1.0);

}  // namespace stardust

#endif  // STARDUST_DWT_INCREMENTAL_H_
