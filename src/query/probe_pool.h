// Small persistent worker pool for the correlator's probe phase.
//
// A correlator round probes every present stream's feature point against
// the level's CorrelationIndex — independent read-only lookups over an
// index that does not change during the phase. The pool partitions the
// probe set dynamically (an atomic task cursor) across its workers plus
// the calling thread, and Run returns only when every task finished, so
// the caller's merge step sees all results. With zero workers (single
// hardware thread, or configured off) Run degrades to a plain inline
// loop — no threads, no synchronization.
#ifndef STARDUST_QUERY_PROBE_POOL_H_
#define STARDUST_QUERY_PROBE_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stardust {

class ProbePool {
 public:
  /// Spawns `workers` persistent threads (0 is valid: Run stays inline).
  explicit ProbePool(std::size_t workers);
  ~ProbePool();

  ProbePool(const ProbePool&) = delete;
  ProbePool& operator=(const ProbePool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  /// Invokes `fn(task)` exactly once for every task in [0, num_tasks),
  /// partitioned across the workers and the calling thread; blocks until
  /// all tasks completed. `fn` must be safe to call concurrently for
  /// distinct tasks. Only one Run may be in flight at a time (the
  /// correlator serializes rounds).
  void Run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

  /// Resolves a configured worker count: 0 means auto — one less than the
  /// hardware concurrency, clamped to [0, 4] (on a single-core host the
  /// pool degrades to inline execution; beyond a few workers the probe
  /// phase is memory-bound).
  static std::size_t ResolveWorkers(std::size_t configured);

 private:
  void WorkerLoop();
  /// Claims and runs tasks until the cursor is exhausted; returns the
  /// number of tasks this thread completed.
  std::size_t Drain();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for completion
  std::uint64_t generation_ = 0;      // bumped per Run, guarded by mu_
  bool stop_ = false;                 // guarded by mu_
  // Current run (set under mu_ before the generation bump publishes it).
  std::size_t num_tasks_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::size_t> next_task_{0};
  std::size_t completed_ = 0;         // guarded by mu_
  std::size_t acked_ = 0;             // workers done with this generation
  std::vector<std::thread> threads_;
};

}  // namespace stardust

#endif  // STARDUST_QUERY_PROBE_POOL_H_
