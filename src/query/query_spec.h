// Continuous-query specifications for the runtime query registry.
//
// One flat QuerySpec struct covers the paper's three query classes
// (Sections 2.2-2.4, 5): aggregate threshold monitoring, pattern
// (subsequence similarity) monitoring, and pairwise correlation
// monitoring. A spec is registered with QueryRegistry while ingestion is
// live; validation against the engine's configured cores happens at
// registration time so clients get synchronous errors.
#ifndef STARDUST_QUERY_QUERY_SPEC_H_
#define STARDUST_QUERY_QUERY_SPEC_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace stardust {

/// The three continuous-query classes of the paper (Section 5).
enum class QueryKind : std::uint8_t {
  kAggregate = 0,
  kPattern = 1,
  kCorrelation = 2,
};

inline const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kAggregate: return "aggregate";
    case QueryKind::kPattern: return "pattern";
    case QueryKind::kCorrelation: return "correlation";
  }
  return "unknown";
}

/// Stable identifier of a registered query. Ids are engine-unique,
/// monotonically assigned, and never reused. 0 is never a valid id.
using QueryId = std::uint64_t;
inline constexpr QueryId kInvalidQueryId = 0;

/// Sentinel for CorrelationSpec::level: detect at the correlation core's
/// top resolution (window N = W * 2^J, the paper's experimental setting).
inline constexpr std::size_t kTopLevel =
    std::numeric_limits<std::size_t>::max();

/// One continuous query. Only the fields of the selected kind are
/// meaningful; the factory functions build well-formed instances.
struct QuerySpec {
  QueryKind kind = QueryKind::kAggregate;

  /// kAggregate: alarm when the exact aggregate over the trailing
  /// `window` values of a stream reaches `threshold` (Algorithm 2 filter
  /// + verify). `window` must be a positive multiple of the fleet's base
  /// window with window/W < 2^num_levels.
  std::size_t window = 0;
  double threshold = 0.0;

  /// kPattern: report stream windows within `radius` (normalized
  /// Euclidean distance, Equation 2) of `pattern` (Algorithm 3 over the
  /// shard's online DWT core). |pattern| must be a positive multiple of
  /// the pattern core's base window with |pattern|/W < 2^num_levels.
  std::vector<double> pattern;

  /// kPattern / kCorrelation: the distance radius. For correlation it
  /// maps to a minimum correlation via corr >= 1 - r^2/2 (Section 2.4).
  double radius = 0.0;

  /// kCorrelation: resolution level of the correlation core to detect at
  /// (window W * 2^level); kTopLevel means the top level.
  std::size_t level = kTopLevel;

  /// Any kind: token-bucket limit on published alerts. 0 disables the
  /// limit (every hit publishes). When positive, at most `alert_burst`
  /// alerts fire back-to-back and the bucket refills at
  /// `alert_rate_per_sec` tokens per second; suppressed hits are counted
  /// (QueryMetricsSnapshot::rate_limited), never queued or re-raised.
  double alert_rate_per_sec = 0.0;
  std::uint64_t alert_burst = 0;

  QuerySpec& WithAlertRate(double per_sec, std::uint64_t burst) {
    alert_rate_per_sec = per_sec;
    alert_burst = burst;
    return *this;
  }

  static QuerySpec Aggregate(std::size_t window, double threshold) {
    QuerySpec spec;
    spec.kind = QueryKind::kAggregate;
    spec.window = window;
    spec.threshold = threshold;
    return spec;
  }

  static QuerySpec Pattern(std::vector<double> pattern, double radius) {
    QuerySpec spec;
    spec.kind = QueryKind::kPattern;
    spec.pattern = std::move(pattern);
    spec.radius = radius;
    return spec;
  }

  static QuerySpec Correlation(double radius, std::size_t level = kTopLevel) {
    QuerySpec spec;
    spec.kind = QueryKind::kCorrelation;
    spec.radius = radius;
    spec.level = level;
    return spec;
  }

  /// Checkpoint support: fixed-width little-endian encoding, matching the
  /// snapshot conventions (common/serialize.h). The rate-limit fields
  /// were added in registry envelope v2; `version` selects the layout so
  /// v1 snapshots stay readable (they restore with the limit disabled).
  void SaveTo(Writer* writer, std::uint32_t version) const {
    writer->U8(static_cast<std::uint8_t>(kind));
    writer->U64(window);
    writer->F64(threshold);
    writer->DoubleVector(pattern);
    writer->F64(radius);
    writer->U64(level == kTopLevel ? std::uint64_t{0xffffffffffffffffULL}
                                   : static_cast<std::uint64_t>(level));
    if (version >= 2) {
      writer->F64(alert_rate_per_sec);
      writer->U64(alert_burst);
    }
  }

  Status RestoreFrom(Reader* reader, std::uint32_t version) {
    std::uint8_t kind_byte = 0;
    SD_RETURN_NOT_OK(reader->U8(&kind_byte));
    if (kind_byte > static_cast<std::uint8_t>(QueryKind::kCorrelation)) {
      return Status::InvalidArgument("unknown query kind in snapshot");
    }
    kind = static_cast<QueryKind>(kind_byte);
    std::uint64_t window64 = 0;
    SD_RETURN_NOT_OK(reader->U64(&window64));
    window = static_cast<std::size_t>(window64);
    SD_RETURN_NOT_OK(reader->F64(&threshold));
    SD_RETURN_NOT_OK(reader->DoubleVector(&pattern));
    SD_RETURN_NOT_OK(reader->F64(&radius));
    std::uint64_t level64 = 0;
    SD_RETURN_NOT_OK(reader->U64(&level64));
    level = level64 == 0xffffffffffffffffULL
                ? kTopLevel
                : static_cast<std::size_t>(level64);
    if (version >= 2) {
      SD_RETURN_NOT_OK(reader->F64(&alert_rate_per_sec));
      SD_RETURN_NOT_OK(reader->U64(&alert_burst));
    } else {
      alert_rate_per_sec = 0.0;
      alert_burst = 0;
    }
    return Status::OK();
  }
};

}  // namespace stardust

#endif  // STARDUST_QUERY_QUERY_SPEC_H_
