// Continuous-query specifications for the runtime query registry.
//
// One flat QuerySpec struct covers the paper's three query classes
// (Sections 2.2-2.4, 5): aggregate threshold monitoring, pattern
// (subsequence similarity) monitoring, and pairwise correlation
// monitoring. A spec is registered with QueryRegistry while ingestion is
// live; validation against the engine's configured cores happens at
// registration time so clients get synchronous errors.
#ifndef STARDUST_QUERY_QUERY_SPEC_H_
#define STARDUST_QUERY_QUERY_SPEC_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "sketch/measure.h"

namespace stardust {

/// The paper's three continuous-query classes (Section 5) plus sketch
/// measures (windowed approximate distinct / heavy-hitter / quantile
/// monitors over the same shard pipeline).
enum class QueryKind : std::uint8_t {
  kAggregate = 0,
  kPattern = 1,
  kCorrelation = 2,
  kSketch = 3,
};

inline const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kAggregate: return "aggregate";
    case QueryKind::kPattern: return "pattern";
    case QueryKind::kCorrelation: return "correlation";
    case QueryKind::kSketch: return "sketch";
  }
  return "unknown";
}

/// Conformance range of a monitored measure (the Stream DaQ "assess"
/// clause): the measure is healthy while its value lies inside
/// [lo, hi] / (lo, hi) / half-open variants, and a query alarms when the
/// value leaves the range. Half-infinite ranges express plain thresholds
/// (">= 5" conforms on [5, +inf]; "< 5" on [-inf, 5) with hi_inclusive
/// false).
struct AssessRange {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_inclusive = true;
  bool hi_inclusive = true;

  bool operator==(const AssessRange&) const = default;

  bool Contains(double v) const {
    if (lo_inclusive ? v < lo : v <= lo) return false;
    if (hi_inclusive ? v > hi : v >= hi) return false;
    return true;
  }

  /// The bound a non-conforming value crossed (reported as the alert's
  /// threshold). For conforming values returns the upper bound.
  double ViolatedBound(double v) const {
    if (lo_inclusive ? v < lo : v <= lo) return lo;
    return hi;
  }

  /// OK when the range is non-empty and the bounds are not NaN.
  Status Validate() const {
    if (std::isnan(lo) || std::isnan(hi)) {
      return Status::InvalidArgument("assess range bound is NaN");
    }
    if (lo > hi || (lo == hi && !(lo_inclusive && hi_inclusive))) {
      return Status::InvalidArgument("assess range is empty");
    }
    return Status::OK();
  }

  /// 17-byte fixed layout: lo, hi, inclusivity flag bits.
  void SaveTo(Writer* writer) const {
    writer->F64(lo);
    writer->F64(hi);
    writer->U8(static_cast<std::uint8_t>((lo_inclusive ? 1 : 0) |
                                         (hi_inclusive ? 2 : 0)));
  }

  Status RestoreFrom(Reader* reader) {
    SD_RETURN_NOT_OK(reader->F64(&lo));
    SD_RETURN_NOT_OK(reader->F64(&hi));
    std::uint8_t flags = 0;
    SD_RETURN_NOT_OK(reader->U8(&flags));
    if (flags > 3) {
      return Status::InvalidArgument("assess range flags out of range");
    }
    lo_inclusive = (flags & 1) != 0;
    hi_inclusive = (flags & 2) != 0;
    return Status::OK();
  }
};

/// Stable identifier of a registered query. Ids are engine-unique,
/// monotonically assigned, and never reused. 0 is never a valid id.
using QueryId = std::uint64_t;
inline constexpr QueryId kInvalidQueryId = 0;

/// Sentinel for CorrelationSpec::level: detect at the correlation core's
/// top resolution (window N = W * 2^J, the paper's experimental setting).
inline constexpr std::size_t kTopLevel =
    std::numeric_limits<std::size_t>::max();

/// One continuous query. Only the fields of the selected kind are
/// meaningful; the factory functions build well-formed instances.
struct QuerySpec {
  QueryKind kind = QueryKind::kAggregate;

  /// kAggregate: alarm when the exact aggregate over the trailing
  /// `window` values of a stream reaches `threshold` (Algorithm 2 filter
  /// + verify). `window` must be a positive multiple of the fleet's base
  /// window with window/W < 2^num_levels.
  std::size_t window = 0;
  double threshold = 0.0;

  /// kPattern: report stream windows within `radius` (normalized
  /// Euclidean distance, Equation 2) of `pattern` (Algorithm 3 over the
  /// shard's online DWT core). |pattern| must be a positive multiple of
  /// the pattern core's base window with |pattern|/W < 2^num_levels.
  std::vector<double> pattern;

  /// kPattern / kCorrelation: the distance radius. For correlation it
  /// maps to a minimum correlation via corr >= 1 - r^2/2 (Section 2.4).
  double radius = 0.0;

  /// kCorrelation: resolution level of the correlation core to detect at
  /// (window W * 2^level); kTopLevel means the top level.
  std::size_t level = kTopLevel;

  /// kSketch: which windowed sketch to maintain per stream. Queries with
  /// equal configs share one measure instance per stream (the eval plan
  /// groups by config).
  SketchConfig sketch;

  /// kAggregate / kSketch: the conformance range; the query alarms when
  /// the measure leaves it. Aggregate() initializes it to
  /// [-inf, threshold) so the legacy "alarm at >= threshold" behavior is
  /// the upper-bound violation of an assess range.
  AssessRange assess;

  /// Any kind: token-bucket limit on published alerts. 0 disables the
  /// limit (every hit publishes). When positive, at most `alert_burst`
  /// alerts fire back-to-back and the bucket refills at
  /// `alert_rate_per_sec` tokens per second; suppressed hits are counted
  /// (QueryMetricsSnapshot::rate_limited), never queued or re-raised.
  double alert_rate_per_sec = 0.0;
  std::uint64_t alert_burst = 0;

  QuerySpec& WithAlertRate(double per_sec, std::uint64_t burst) {
    alert_rate_per_sec = per_sec;
    alert_burst = burst;
    return *this;
  }

  static QuerySpec Aggregate(std::size_t window, double threshold) {
    QuerySpec spec;
    spec.kind = QueryKind::kAggregate;
    spec.window = window;
    spec.threshold = threshold;
    spec.assess.hi = threshold;
    spec.assess.hi_inclusive = false;
    return spec;
  }

  /// Aggregate query that conforms to `assess` instead of a single upper
  /// threshold. `threshold` mirrors the range's finite bound for display.
  static QuerySpec AggregateRange(std::size_t window, AssessRange assess) {
    QuerySpec spec;
    spec.kind = QueryKind::kAggregate;
    spec.window = window;
    spec.assess = assess;
    spec.threshold = std::isfinite(assess.hi) ? assess.hi : assess.lo;
    return spec;
  }

  static QuerySpec Sketch(SketchConfig config, AssessRange assess) {
    QuerySpec spec;
    spec.kind = QueryKind::kSketch;
    spec.sketch = config;
    spec.window = static_cast<std::size_t>(config.window);
    spec.assess = assess;
    spec.threshold = std::isfinite(assess.hi) ? assess.hi : assess.lo;
    return spec;
  }

  static QuerySpec Pattern(std::vector<double> pattern, double radius) {
    QuerySpec spec;
    spec.kind = QueryKind::kPattern;
    spec.pattern = std::move(pattern);
    spec.radius = radius;
    return spec;
  }

  static QuerySpec Correlation(double radius, std::size_t level = kTopLevel) {
    QuerySpec spec;
    spec.kind = QueryKind::kCorrelation;
    spec.radius = radius;
    spec.level = level;
    return spec;
  }

  /// Checkpoint support: fixed-width little-endian encoding, matching the
  /// snapshot conventions (common/serialize.h). The rate-limit fields
  /// were added in registry envelope v2 and the assess-range + sketch
  /// fields in v3; `version` selects the layout so older snapshots stay
  /// readable (v1 restores with the limit disabled, v1/v2 restore with
  /// the legacy [-inf, threshold) assess range).
  void SaveTo(Writer* writer, std::uint32_t version) const {
    writer->U8(static_cast<std::uint8_t>(kind));
    writer->U64(window);
    writer->F64(threshold);
    writer->DoubleVector(pattern);
    writer->F64(radius);
    writer->U64(level == kTopLevel ? std::uint64_t{0xffffffffffffffffULL}
                                   : static_cast<std::uint64_t>(level));
    if (version >= 2) {
      writer->F64(alert_rate_per_sec);
      writer->U64(alert_burst);
    }
    if (version >= 3) {
      assess.SaveTo(writer);
      sketch.SaveTo(writer);
    }
  }

  Status RestoreFrom(Reader* reader, std::uint32_t version) {
    std::uint8_t kind_byte = 0;
    SD_RETURN_NOT_OK(reader->U8(&kind_byte));
    const auto max_kind = static_cast<std::uint8_t>(
        version >= 3 ? QueryKind::kSketch : QueryKind::kCorrelation);
    if (kind_byte > max_kind) {
      return Status::InvalidArgument("unknown query kind in snapshot");
    }
    kind = static_cast<QueryKind>(kind_byte);
    std::uint64_t window64 = 0;
    SD_RETURN_NOT_OK(reader->U64(&window64));
    window = static_cast<std::size_t>(window64);
    SD_RETURN_NOT_OK(reader->F64(&threshold));
    SD_RETURN_NOT_OK(reader->DoubleVector(&pattern));
    SD_RETURN_NOT_OK(reader->F64(&radius));
    std::uint64_t level64 = 0;
    SD_RETURN_NOT_OK(reader->U64(&level64));
    level = level64 == 0xffffffffffffffffULL
                ? kTopLevel
                : static_cast<std::size_t>(level64);
    if (version >= 2) {
      SD_RETURN_NOT_OK(reader->F64(&alert_rate_per_sec));
      SD_RETURN_NOT_OK(reader->U64(&alert_burst));
    } else {
      alert_rate_per_sec = 0.0;
      alert_burst = 0;
    }
    if (version >= 3) {
      SD_RETURN_NOT_OK(assess.RestoreFrom(reader));
      SD_RETURN_NOT_OK(sketch.RestoreFrom(reader));
    } else {
      assess = AssessRange{};
      if (kind == QueryKind::kAggregate) {
        assess.hi = threshold;
        assess.hi_inclusive = false;
      }
      sketch = SketchConfig{};
    }
    return Status::OK();
  }
};

}  // namespace stardust

#endif  // STARDUST_QUERY_QUERY_SPEC_H_
