#include "query/alert_bus.h"

#include <chrono>

#include "common/check.h"

namespace stardust {

namespace {

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void UpdateMaxSize(std::atomic<std::size_t>* target, std::size_t value) {
  std::size_t cur = target->load(std::memory_order_relaxed);
  while (cur < value && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

AlertBus::AlertBus(std::size_t capacity, OverloadPolicy policy)
    : capacity_(capacity), policy_(policy) {
  SD_CHECK(capacity_ > 0);
}

AlertBus::~AlertBus() { Stop(); }

AlertBus::SinkId AlertBus::AddSink(std::shared_ptr<AlertSink> sink) {
  SD_CHECK(sink != nullptr);
  std::lock_guard<std::mutex> lock(sinks_mu_);
  const SinkId id = next_sink_id_++;
  sinks_.emplace_back(id, std::move(sink));
  return id;
}

bool AlertBus::RemoveSink(SinkId id) {
  std::lock_guard<std::mutex> lock(sinks_mu_);
  for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
    if (it->first == id) {
      sinks_.erase(it);
      return true;
    }
  }
  return false;
}

void AlertBus::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

void AlertBus::Stop() {
  // Serialized so a second Stop (e.g. explicit Stop followed by the
  // destructor) does not return before the first one has delivered the
  // tail of the queue and flushed the sinks.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_finished_) return;
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  } else {
    // The bus was never started: alerts published before Start sit in the
    // queue with no dispatcher to drain them. Deliver them inline here so
    // a publish-then-Stop sequence never silently drops the tail.
    DrainQueueToSinks();
  }
  // Final flush so file sinks are durable when Stop returns.
  {
    std::lock_guard<std::mutex> lock(sinks_mu_);
    for (auto& [id, sink] : sinks_) (void)sink->Flush();
  }
  std::lock_guard<std::mutex> lock(mu_);
  stop_finished_ = true;
}

void AlertBus::DrainQueueToSinks() {
  std::deque<Entry> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(queue_);
  }
  if (pending.empty()) return;
  std::vector<std::shared_ptr<AlertSink>> sinks;
  {
    std::lock_guard<std::mutex> lock(sinks_mu_);
    for (const auto& [id, sink] : sinks_) sinks.push_back(sink);
  }
  const std::uint64_t now = NowNanos();
  for (const Entry& entry : pending) {
    for (const auto& sink : sinks) sink->OnAlert(entry.alert);
    delivery_latency_.Record(now >= entry.publish_ns ? now - entry.publish_ns
                                                     : 0);
    delivered_.fetch_add(1, std::memory_order_release);
  }
  std::lock_guard<std::mutex> lock(mu_);
  drained_.notify_all();
}

Status AlertBus::Publish(const Alert& alert) {
  Entry entry{alert, NowNanos()};
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) return Status::Aborted("alert bus is stopping");
  if (queue_.size() >= capacity_) {
    switch (policy_) {
      case OverloadPolicy::kDropNewest:
        dropped_newest_.fetch_add(1, std::memory_order_release);
        published_.fetch_add(1, std::memory_order_release);
        return Status::OK();
      case OverloadPolicy::kDropOldest:
        queue_.pop_front();
        dropped_oldest_.fetch_add(1, std::memory_order_release);
        break;
      case OverloadPolicy::kBlock: {
        block_waits_.fetch_add(1, std::memory_order_release);
        not_full_.wait(lock, [this] {
          return stopping_ || queue_.size() < capacity_;
        });
        if (stopping_) {
          return Status::Aborted("alert bus stopped while publish waited");
        }
        break;
      }
    }
  }
  queue_.push_back(std::move(entry));
  published_.fetch_add(1, std::memory_order_release);
  UpdateMaxSize(&queue_high_water_, queue_.size());
  lock.unlock();
  not_empty_.notify_one();
  return Status::OK();
}

Status AlertBus::WaitDrained() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("alert bus is not started");
  }
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] {
    return (queue_.empty() && in_flight_ == 0) || stopping_;
  });
  if (!queue_.empty() || in_flight_ != 0) {
    return Status::Aborted("alert bus stopped before draining");
  }
  return Status::OK();
}

void AlertBus::DispatchLoop() {
  constexpr std::size_t kMaxDispatchBatch = 64;
  std::vector<Entry> batch;
  batch.reserve(kMaxDispatchBatch);
  std::vector<std::shared_ptr<AlertSink>> sinks;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock,
                      [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ and fully drained: exit.
        drained_.notify_all();
        return;
      }
      while (!queue_.empty() && batch.size() < kMaxDispatchBatch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ = batch.size();
    }
    not_full_.notify_all();
    {
      std::lock_guard<std::mutex> lock(sinks_mu_);
      sinks.clear();
      for (const auto& [id, sink] : sinks_) sinks.push_back(sink);
    }
    const std::uint64_t now = NowNanos();
    for (const Entry& entry : batch) {
      for (const auto& sink : sinks) sink->OnAlert(entry.alert);
      delivery_latency_.Record(now >= entry.publish_ns
                                   ? now - entry.publish_ns
                                   : 0);
      delivered_.fetch_add(1, std::memory_order_release);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ = 0;
      if (queue_.empty()) drained_.notify_all();
    }
  }
}

}  // namespace stardust
