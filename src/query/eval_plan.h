// Compiled per-shard evaluation plans.
//
// A QueryRegistry snapshot is a flat list of queries; executing it
// naively re-derives per-query state every batch (pattern piece features,
// aggregate window scans, correlation level resolution). The plan
// compiler turns one snapshot into an immutable EvalPlan: queries grouped
// by class and by the state they share — aggregate queries by window (one
// sliding tracker serves every query on that window), pattern queries
// precompiled once (CompilePatternQuery), correlation queries by resolved
// resolution level (one feature gather serves every query on that level).
// Shard workers and the correlator swap plans atomically when the
// registry version moves; a plan is never mutated after compilation
// except for its per-stage counters.
#ifndef STARDUST_QUERY_EVAL_PLAN_H_
#define STARDUST_QUERY_EVAL_PLAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/pattern_query.h"
#include "query/registry.h"

namespace stardust {

/// What the plan compiler may assume about the engine's cores.
struct PlanContext {
  /// Fleet monitor configuration (aggregate path). Required.
  const StardustConfig* fleet = nullptr;
  /// Online pattern core configuration; null when patterns are disabled.
  const StardustConfig* pattern = nullptr;
  /// Batch correlation core configuration; null when disabled.
  const StardustConfig* correlation = nullptr;
};

/// Immutable compiled form of one registry snapshot.
struct EvalPlan {
  /// Registry version this plan was compiled from.
  std::uint64_t version = 0;

  /// Aggregate queries sharing a window evaluate against one shared
  /// sliding tracker maintained by the feature pipeline.
  struct AggregateGroup {
    std::size_t window = 0;
    /// Index into `aggregate_windows` (== the pipeline tracker slot).
    std::size_t tracker_index = 0;
    /// False when `window` exceeds the fleet's raw history: the seed
    /// path could never verify such a window exactly (Algorithm 2's
    /// post-check needs the raw subsequence), so the group is skipped
    /// rather than alarm from tracker state the seed path never saw.
    bool evaluable = true;
    std::vector<std::shared_ptr<RegisteredQuery>> queries;
  };
  /// Ascending by window.
  std::vector<AggregateGroup> aggregate;
  /// Deduplicated, sorted windows of the evaluable groups — the window
  /// set the pipeline's per-stream trackers are built over.
  std::vector<std::size_t> aggregate_windows;

  struct PatternEntry {
    std::shared_ptr<RegisteredQuery> query;
    CompiledPatternQuery compiled;
    /// False when compilation failed (the shard surfaces this as a
    /// per-batch query error, matching the uncompiled path).
    bool ok = false;
  };
  std::vector<PatternEntry> pattern;

  /// Correlation queries sharing a resolved level share one feature
  /// gather per correlator round.
  struct CorrelationGroup {
    std::size_t level = 0;   // resolved (kTopLevel mapped to the top)
    std::size_t window = 0;  // LevelWindow(level) of the correlation core
    /// Radius extremes over the group's queries: `max_radius` is the one
    /// probe radius serving every query of the round (per-query radii
    /// re-filter the verified pairs), and the correlator derives the
    /// default grid cell of its per-level CorrelationIndex from it.
    double min_radius = 0.0;
    double max_radius = 0.0;
    std::vector<std::shared_ptr<RegisteredQuery>> queries;
  };
  /// Ascending by level.
  std::vector<CorrelationGroup> correlation;

  /// Sketch queries whose configs compare equal share one windowed
  /// measure per stream, maintained by the feature pipeline in the slot
  /// named here.
  struct SketchGroup {
    SketchConfig config;
    /// Index into `sketch_slots` (== the pipeline measure slot).
    std::size_t slot = 0;
    std::vector<std::shared_ptr<RegisteredQuery>> queries;
  };
  /// In first-registration order.
  std::vector<SketchGroup> sketch;
  /// The deduplicated configs the pipeline maintains, indexed by slot.
  std::vector<SketchConfig> sketch_slots;

  /// Per-stage evaluation counters over the plan's lifetime (batches or
  /// rounds that executed the stage), surfaced through shard metrics.
  mutable std::atomic<std::uint64_t> aggregate_evals{0};
  mutable std::atomic<std::uint64_t> pattern_evals{0};
  mutable std::atomic<std::uint64_t> correlation_evals{0};
  mutable std::atomic<std::uint64_t> sketch_evals{0};

  bool empty() const {
    return aggregate.empty() && pattern.empty() && correlation.empty() &&
           sketch.empty();
  }
};

/// Compiles `snapshot` (at registry `version`) into an immutable plan.
/// Never fails: queries that cannot be compiled or evaluated under `ctx`
/// become non-ok pattern entries / non-evaluable aggregate groups, and
/// correlation queries are dropped when no correlation core exists.
std::shared_ptr<const EvalPlan> CompileEvalPlan(
    const QueryRegistry::Snapshot& snapshot, std::uint64_t version,
    const PlanContext& ctx);

}  // namespace stardust

#endif  // STARDUST_QUERY_EVAL_PLAN_H_
