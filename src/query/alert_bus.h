// AlertBus: the delivery stage of the continuous-query pipeline
// (ingest -> evaluate -> deliver, in the style of fault-tolerant data
// feeds).
//
// Shard workers and the correlator publish Alert records into one bounded
// MPMC queue; a dispatcher thread drains it and fans each alert out to
// every registered sink. The queue's overflow behavior is an explicit
// OverloadPolicy mirroring the ingestion rings: kBlock applies
// backpressure to the publishers (and therefore, transitively, to query
// evaluation), the drop policies shed load and account every loss in the
// bus counters. Sinks run on the dispatcher thread and must not block
// indefinitely; a slow sink slows delivery for all sinks (single ordered
// delivery stream), which is what makes the overflow policy meaningful.
#ifndef STARDUST_QUERY_ALERT_BUS_H_
#define STARDUST_QUERY_ALERT_BUS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/latency_histogram.h"
#include "common/overload_policy.h"
#include "common/status.h"
#include "query/alert.h"

namespace stardust {

/// Receives alerts on the bus dispatcher thread. Implementations must be
/// internally synchronized if they are read from other threads.
class AlertSink {
 public:
  virtual ~AlertSink() = default;
  virtual void OnAlert(const Alert& alert) = 0;
  /// Pushes buffered state to its destination (e.g. fsync for file
  /// sinks). Called by AlertBus::Stop after the final alert.
  virtual Status Flush() { return Status::OK(); }
};

/// Bounded multi-producer queue + dispatcher. Publish is thread-safe from
/// any number of threads; Start/Stop manage the dispatcher. Alerts
/// published before Start queue up (subject to the overflow policy) and
/// are delivered once the dispatcher runs.
class AlertBus {
 public:
  using SinkId = std::uint64_t;

  /// `capacity` bounds the undelivered queue (> 0); `policy` picks the
  /// overflow behavior.
  AlertBus(std::size_t capacity, OverloadPolicy policy);
  ~AlertBus();

  AlertBus(const AlertBus&) = delete;
  AlertBus& operator=(const AlertBus&) = delete;

  /// Registers a sink; delivery starts with the next dispatched alert.
  SinkId AddSink(std::shared_ptr<AlertSink> sink);
  /// Unregisters; returns false for an unknown id. The sink may still
  /// receive alerts already being dispatched when the call races the
  /// dispatcher.
  bool RemoveSink(SinkId id);

  /// Starts the dispatcher thread. Idempotent.
  void Start();
  /// Drains every queued alert to the sinks, flushes them, and joins the
  /// dispatcher. On a bus that was never started the queued alerts are
  /// delivered inline on the calling thread, so publish-then-Stop never
  /// drops the tail. Publishes racing Stop may be rejected with Aborted.
  /// Idempotent, and a concurrent second Stop blocks until the first has
  /// finished delivering and flushing.
  void Stop();

  /// Enqueues one alert under the bus's overflow policy. kBlock waits for
  /// space (Aborted if the bus stops while waiting); the drop policies
  /// return OK and account the loss.
  Status Publish(const Alert& alert);

  /// Blocks until every alert published before the call has been handed
  /// to the sinks (or dropped). Requires a started bus.
  Status WaitDrained();

  // --- Counters ---------------------------------------------------------
  std::uint64_t published() const {
    return published_.load(std::memory_order_acquire);
  }
  std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_acquire);
  }
  std::uint64_t dropped_newest() const {
    return dropped_newest_.load(std::memory_order_acquire);
  }
  std::uint64_t dropped_oldest() const {
    return dropped_oldest_.load(std::memory_order_acquire);
  }
  std::uint64_t block_waits() const {
    return block_waits_.load(std::memory_order_acquire);
  }
  std::size_t queue_high_water() const {
    return queue_high_water_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return capacity_; }
  OverloadPolicy policy() const { return policy_; }
  /// Publish-to-sink-handoff latency in nanoseconds.
  const LatencyHistogram& delivery_latency() const {
    return delivery_latency_;
  }

 private:
  struct Entry {
    Alert alert;
    std::uint64_t publish_ns = 0;
  };

  void DispatchLoop();
  /// Inline delivery path for a bus whose dispatcher never ran (Stop
  /// without Start).
  void DrainQueueToSinks();

  const std::size_t capacity_;
  const OverloadPolicy policy_;

  /// Serializes Stop() so every caller returns only after the tail of the
  /// queue is delivered and the sinks are flushed.
  std::mutex stop_mu_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable drained_;
  std::deque<Entry> queue_;
  /// Entries popped by the dispatcher but not yet handed to every sink.
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  /// Set once Stop has fully delivered and flushed; later Stops return
  /// immediately (after taking stop_mu_, i.e. after the first finished).
  bool stop_finished_ = false;

  std::mutex sinks_mu_;
  std::vector<std::pair<SinkId, std::shared_ptr<AlertSink>>> sinks_;
  SinkId next_sink_id_ = 1;

  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_newest_{0};
  std::atomic<std::uint64_t> dropped_oldest_{0};
  std::atomic<std::uint64_t> block_waits_{0};
  std::atomic<std::size_t> queue_high_water_{0};
  LatencyHistogram delivery_latency_;

  std::thread dispatcher_;
};

}  // namespace stardust

#endif  // STARDUST_QUERY_ALERT_BUS_H_
