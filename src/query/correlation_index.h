// Persistent candidate-pair indexes for the cross-shard correlator.
//
// Section 5.3 reports correlated pairs by range-searching the feature
// points of every live stream at an aligned time. The engine used to
// rebuild a throwaway R*-tree from scratch every round, which turned the
// correlator into an O(streams · log streams) rebuild per round even when
// almost nothing moved. A CorrelationIndex instead lives across rounds:
// the correlator upserts the streams whose feature changed, erases the
// ones that expired, and probes the survivors.
//
// All three implementations only promise a *superset* of the true
// neighbor set: Candidates(q, r) returns every live slot whose feature
// point might lie within `r` of `q` (and possibly more). The correlator
// verifies every candidate pair exactly on the z-normalized raw windows,
// and the DWT feature distance lower-bounds the window distance, so every
// kind yields the identical alert set — kBruteForce (all live slots) is
// the all-pairs reference the equivalence suite checks the others
// against.
//
// Not thread-safe: the correlator serializes all mutation; concurrent
// Candidates calls against an unchanging index are safe (const).
#ifndef STARDUST_QUERY_CORRELATION_INDEX_H_
#define STARDUST_QUERY_CORRELATION_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "geom/mbr.h"

namespace stardust {

enum class CorrelationIndexKind : std::uint8_t {
  /// StatStream-style orthogonal grid over the leading DWT coefficients:
  /// O(1) upsert/erase, neighbors enumerated cell-by-cell. The default.
  kGrid = 0,
  /// Persistent R*-tree (src/rtree) maintained with Update/Delete.
  kRTree = 1,
  /// No structure at all: every live slot is a candidate. The all-pairs
  /// reference for equivalence tests and tiny fleets.
  kBruteForce = 2,
};

const char* CorrelationIndexKindName(CorrelationIndexKind kind);

/// A set of feature points keyed by dense slot ids (the correlator maps
/// global stream ids to slots). Upserting an identical point is a no-op —
/// the change detection that makes periodic workloads cheap.
class CorrelationIndex {
 public:
  /// `dims` is the feature dimensionality; `cell` the grid cell edge
  /// (ignored by the other kinds; must be positive for kGrid).
  static std::unique_ptr<CorrelationIndex> Create(CorrelationIndexKind kind,
                                                  std::size_t dims,
                                                  double cell);
  virtual ~CorrelationIndex() = default;

  /// Inserts or moves `slot` to `point` (size dims()). Returns false when
  /// the slot was already live at exactly this point (nothing changed).
  virtual bool Upsert(std::size_t slot, const Point& point) = 0;
  /// Removes `slot`; no-op when not live.
  virtual void Erase(std::size_t slot) = 0;
  /// Appends every live slot whose point may lie within `radius` of `q`
  /// (a superset; callers verify exactly). Never appends duplicates.
  virtual void Candidates(const Point& q, double radius,
                          std::vector<std::size_t>* out) const = 0;
  /// Live slots.
  virtual std::size_t size() const = 0;
  virtual std::size_t dims() const = 0;
  virtual CorrelationIndexKind kind() const = 0;
};

}  // namespace stardust

#endif  // STARDUST_QUERY_CORRELATION_INDEX_H_
