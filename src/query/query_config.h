// Configuration of the continuous-query subsystem layered on the
// ingestion engine (docs/QUERIES.md).
//
// The aggregate path always exists (it evaluates against the engine's
// fleet monitors); the pattern and correlation paths each need a
// dedicated Stardust core per shard and are opt-in because they add a
// per-tuple summarization cost to the shard workers.
#ifndef STARDUST_QUERY_QUERY_CONFIG_H_
#define STARDUST_QUERY_QUERY_CONFIG_H_

#include <cstddef>

#include "common/overload_policy.h"
#include "common/status.h"
#include "core/config.h"
#include "query/correlation_index.h"
#include "transform/feature.h"

namespace stardust {

struct QueryConfig {
  /// Maintain one online unit-sphere DWT core per shard (update_period
  /// 1, index_features) so pattern queries can be evaluated inline
  /// (Algorithm 3). `pattern` must be such a configuration.
  bool enable_patterns = false;
  StardustConfig pattern;

  /// Maintain one batch z-normalized DWT core per shard (c == 1,
  /// T == W) feeding the cross-shard correlator thread (Section 5.3).
  /// `correlation` must be such a configuration.
  bool enable_correlation = false;
  StardustConfig correlation;

  /// Period of the correlator thread in milliseconds. Each round aligns
  /// all shards on a common feature time and runs every registered
  /// correlation query once if that time advanced.
  std::size_t correlator_period_ms = 10;

  /// Candidate structure the correlator maintains per monitored level
  /// across rounds (query/correlation_index.h). Every kind yields the
  /// identical alert set — candidates are verified exactly on the
  /// z-normalized windows — so this is purely a performance knob.
  CorrelationIndexKind correlation_index_kind = CorrelationIndexKind::kGrid;

  /// Grid cell edge for kGrid. 0 (the default) derives the cell from the
  /// largest registered radius of each level group (StatStream's choice:
  /// cell == radius, so neighbor enumeration reaches one cell out).
  double correlation_grid_cell = 0.0;

  /// Worker threads of the correlator's probe pool (the calling thread
  /// always participates too). 0 (the default) auto-sizes to the
  /// hardware: one less than the concurrency, clamped to [0, 4] — a
  /// single-core host probes inline with no pool threads at all.
  std::size_t correlator_probe_workers = 0;

  /// Bounded alert-queue capacity and overflow policy (mirrors the
  /// ingestion rings; see common/overload_policy.h). kBlock applies
  /// backpressure to query evaluation — and transitively to ingestion —
  /// when sinks fall behind.
  std::size_t alert_capacity = 4096;
  OverloadPolicy alert_overflow = OverloadPolicy::kBlock;

  Status Validate() const {
    if (alert_capacity == 0) {
      return Status::InvalidArgument("alert_capacity must be positive");
    }
    if (enable_patterns) {
      SD_RETURN_NOT_OK(pattern.Validate());
      if (pattern.transform != TransformKind::kDwt ||
          pattern.normalization != Normalization::kUnitSphere) {
        return Status::InvalidArgument(
            "pattern queries require the unit-sphere DWT transform");
      }
      if (pattern.update_period != 1 ||
          pattern.update_schedule != UpdateSchedule::kUniform) {
        return Status::InvalidArgument(
            "pattern queries require the online algorithm "
            "(uniform update_period == 1)");
      }
      if (!pattern.index_features) {
        return Status::InvalidArgument(
            "pattern queries require index_features");
      }
    }
    if (enable_correlation) {
      SD_RETURN_NOT_OK(correlation.Validate());
      if (correlation.transform != TransformKind::kDwt ||
          correlation.normalization != Normalization::kZNorm) {
        return Status::InvalidArgument(
            "correlation queries require the z-normalized DWT transform");
      }
      if (correlation.update_period != correlation.base_window ||
          correlation.box_capacity != 1 ||
          correlation.update_schedule != UpdateSchedule::kUniform) {
        return Status::InvalidArgument(
            "correlation queries use the batch algorithm "
            "(uniform T == W, c == 1)");
      }
      if (correlator_period_ms == 0) {
        return Status::InvalidArgument(
            "correlator_period_ms must be positive");
      }
      if (correlation_grid_cell < 0.0) {
        return Status::InvalidArgument(
            "correlation_grid_cell must be non-negative");
      }
      if (correlator_probe_workers > 64) {
        return Status::InvalidArgument(
            "correlator_probe_workers must be at most 64");
      }
    }
    return Status::OK();
  }
};

}  // namespace stardust

#endif  // STARDUST_QUERY_QUERY_CONFIG_H_
