#include "query/probe_pool.h"

#include <algorithm>

namespace stardust {

ProbePool::ProbePool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ProbePool::~ProbePool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t ProbePool::ResolveWorkers(std::size_t configured) {
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 0;
  return std::min<std::size_t>(hw - 1, 4);
}

std::size_t ProbePool::Drain() {
  std::size_t done = 0;
  for (;;) {
    const std::size_t task =
        next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= num_tasks_) return done;
    (*fn_)(task);
    ++done;
  }
}

void ProbePool::Run(std::size_t num_tasks,
                    const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (threads_.empty()) {
    for (std::size_t task = 0; task < num_tasks; ++task) fn(task);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    num_tasks_ = num_tasks;
    fn_ = &fn;
    next_task_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    acked_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  const std::size_t mine = Drain();
  std::unique_lock<std::mutex> lock(mu_);
  completed_ += mine;
  // Full rendezvous: besides task completion, wait until every worker has
  // woken for this generation and left its drain. A worker that has not
  // acked yet may still read the run's cursor or callback, so returning
  // (and letting `fn` die or the next Run reset the cursor) before all
  // acks arrive would hand it dangling state.
  done_cv_.wait(lock, [this] {
    return completed_ == num_tasks_ && acked_ == threads_.size();
  });
  fn_ = nullptr;
}

void ProbePool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    const std::size_t done = Drain();
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_ += done;
      ++acked_;
      if (completed_ == num_tasks_ && acked_ == threads_.size()) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace stardust
