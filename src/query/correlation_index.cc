#include "query/correlation_index.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "rtree/rtree.h"

namespace stardust {

namespace {

/// Grid axes: the leading DWT coefficients carry most of the energy
/// (Section 4), so quantizing more than a few axes multiplies the
/// neighbor-cell count without pruning much.
constexpr std::size_t kMaxGridAxes = 4;
/// Quantized per-axis cell coordinates are clamped to int16 before
/// packing four of them into a 64-bit key. Clamping is monotone, so a
/// far-out point lands in a boundary cell that neighbor enumeration
/// still covers — candidates stay a superset.
constexpr long long kCoordMin = -32768;
constexpr long long kCoordMax = 32767;

long long QuantizeClamped(double x, double inv_cell) {
  const long long c = static_cast<long long>(std::floor(x * inv_cell));
  return std::clamp(c, kCoordMin, kCoordMax);
}

std::uint64_t PackKey(const long long* coords, std::size_t g) {
  std::uint64_t key = 0;
  for (std::size_t a = 0; a < g; ++a) {
    key = (key << 16) |
          static_cast<std::uint64_t>(coords[a] - kCoordMin);
  }
  return key;
}

void UnpackKey(std::uint64_t key, std::size_t g, long long* coords) {
  for (std::size_t a = g; a-- > 0;) {
    coords[a] = static_cast<long long>(key & 0xffffULL) + kCoordMin;
    key >>= 16;
  }
}

/// StatStream-style orthogonal grid: each live slot lives in exactly one
/// cell keyed by its quantized leading coordinates.
class GridIndex final : public CorrelationIndex {
 public:
  GridIndex(std::size_t dims, double cell)
      : dims_(dims),
        axes_(std::min(dims, kMaxGridAxes)),
        cell_(cell),
        inv_cell_(1.0 / cell) {
    SD_CHECK(cell > 0.0);
    SD_CHECK(axes_ > 0);
  }

  bool Upsert(std::size_t slot, const Point& point) override {
    SD_DCHECK(point.size() == dims_);
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    Slot& s = slots_[slot];
    if (s.live && s.point == point) return false;
    const std::uint64_t key = KeyOf(point);
    if (s.live) {
      if (s.key != key) {
        RemoveFromCell(s.key, slot);
        cells_[key].push_back(slot);
        s.key = key;
      }
    } else {
      cells_[key].push_back(slot);
      s.key = key;
      s.live = true;
      ++size_;
    }
    s.point = point;
    return true;
  }

  void Erase(std::size_t slot) override {
    if (slot >= slots_.size() || !slots_[slot].live) return;
    RemoveFromCell(slots_[slot].key, slot);
    slots_[slot].live = false;
    --size_;
  }

  void Candidates(const Point& q, double radius,
                  std::vector<std::size_t>* out) const override {
    SD_DCHECK(q.size() == dims_);
    if (size_ == 0) return;
    const long long reach =
        static_cast<long long>(std::ceil(radius * inv_cell_));
    long long lo[kMaxGridAxes];
    long long hi[kMaxGridAxes];
    double cell_product = 1.0;
    for (std::size_t a = 0; a < axes_; ++a) {
      const long long qc = QuantizeClamped(q[a], inv_cell_);
      lo[a] = std::max(qc - reach, kCoordMin);
      hi[a] = std::min(qc + reach, kCoordMax);
      cell_product *= static_cast<double>(hi[a] - lo[a] + 1);
    }
    // Enumerating (2·reach+1)^axes neighbor keys only pays off while it
    // beats walking the occupied cells directly; with a large radius (or
    // tiny cell) the sweep over occupied cells is both bounded and exact.
    if (cell_product > static_cast<double>(cells_.size())) {
      long long coords[kMaxGridAxes];
      for (const auto& [key, members] : cells_) {
        if (members.empty()) continue;
        UnpackKey(key, axes_, coords);
        bool in_range = true;
        for (std::size_t a = 0; a < axes_; ++a) {
          if (coords[a] < lo[a] || coords[a] > hi[a]) {
            in_range = false;
            break;
          }
        }
        if (in_range) out->insert(out->end(), members.begin(), members.end());
      }
      return;
    }
    long long coords[kMaxGridAxes];
    for (std::size_t a = 0; a < axes_; ++a) coords[a] = lo[a];
    for (;;) {
      const auto it = cells_.find(PackKey(coords, axes_));
      if (it != cells_.end()) {
        out->insert(out->end(), it->second.begin(), it->second.end());
      }
      std::size_t a = axes_;
      while (a > 0) {
        --a;
        if (++coords[a] <= hi[a]) break;
        coords[a] = lo[a];
        if (a == 0) return;
      }
    }
  }

  std::size_t size() const override { return size_; }
  std::size_t dims() const override { return dims_; }
  CorrelationIndexKind kind() const override {
    return CorrelationIndexKind::kGrid;
  }

 private:
  struct Slot {
    Point point;
    std::uint64_t key = 0;
    bool live = false;
  };

  std::uint64_t KeyOf(const Point& p) const {
    long long coords[kMaxGridAxes];
    for (std::size_t a = 0; a < axes_; ++a) {
      coords[a] = QuantizeClamped(p[a], inv_cell_);
    }
    return PackKey(coords, axes_);
  }

  void RemoveFromCell(std::uint64_t key, std::size_t slot) {
    auto it = cells_.find(key);
    SD_DCHECK(it != cells_.end());
    std::vector<std::size_t>& members = it->second;
    const auto pos = std::find(members.begin(), members.end(), slot);
    SD_DCHECK(pos != members.end());
    *pos = members.back();
    members.pop_back();
    if (members.empty()) cells_.erase(it);
  }

  const std::size_t dims_;
  const std::size_t axes_;
  const double cell_;
  const double inv_cell_;
  std::vector<Slot> slots_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> cells_;
  std::size_t size_ = 0;
};

/// Persistent R*-tree over point boxes, maintained with the in-place
/// Update path (a moving slot keeps its leaf; only ancestor boxes move).
class RTreeIndex final : public CorrelationIndex {
 public:
  explicit RTreeIndex(std::size_t dims) : dims_(dims), tree_(dims) {}

  bool Upsert(std::size_t slot, const Point& point) override {
    SD_DCHECK(point.size() == dims_);
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    Slot& s = slots_[slot];
    const RecordId id = static_cast<RecordId>(slot);
    if (s.live) {
      if (s.point == point) return false;
      SD_CHECK(tree_
                   .Update(Mbr::FromPoint(s.point), id, Mbr::FromPoint(point),
                           id)
                   .ok());
    } else {
      SD_CHECK(tree_.Insert(Mbr::FromPoint(point), id).ok());
      s.live = true;
    }
    s.point = point;
    return true;
  }

  void Erase(std::size_t slot) override {
    if (slot >= slots_.size() || !slots_[slot].live) return;
    SD_CHECK(tree_
                 .Delete(Mbr::FromPoint(slots_[slot].point),
                         static_cast<RecordId>(slot))
                 .ok());
    slots_[slot].live = false;
  }

  void Candidates(const Point& q, double radius,
                  std::vector<std::size_t>* out) const override {
    std::vector<RTreeEntry> hits;
    tree_.SearchWithin(q, radius, &hits);
    out->reserve(out->size() + hits.size());
    for (const RTreeEntry& hit : hits) {
      out->push_back(static_cast<std::size_t>(hit.id));
    }
  }

  std::size_t size() const override { return tree_.size(); }
  std::size_t dims() const override { return dims_; }
  CorrelationIndexKind kind() const override {
    return CorrelationIndexKind::kRTree;
  }

 private:
  struct Slot {
    Point point;
    bool live = false;
  };

  const std::size_t dims_;
  RTree tree_;
  std::vector<Slot> slots_;
};

/// Every live slot is a candidate — the all-pairs reference.
class BruteForceIndex final : public CorrelationIndex {
 public:
  explicit BruteForceIndex(std::size_t dims) : dims_(dims) {}

  bool Upsert(std::size_t slot, const Point& point) override {
    SD_DCHECK(point.size() == dims_);
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    Slot& s = slots_[slot];
    if (s.live && s.point == point) return false;
    if (!s.live) {
      s.live = true;
      ++size_;
    }
    s.point = point;
    return true;
  }

  void Erase(std::size_t slot) override {
    if (slot >= slots_.size() || !slots_[slot].live) return;
    slots_[slot].live = false;
    --size_;
  }

  void Candidates(const Point& /*q*/, double /*radius*/,
                  std::vector<std::size_t>* out) const override {
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
      if (slots_[slot].live) out->push_back(slot);
    }
  }

  std::size_t size() const override { return size_; }
  std::size_t dims() const override { return dims_; }
  CorrelationIndexKind kind() const override {
    return CorrelationIndexKind::kBruteForce;
  }

 private:
  struct Slot {
    Point point;
    bool live = false;
  };

  const std::size_t dims_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace

const char* CorrelationIndexKindName(CorrelationIndexKind kind) {
  switch (kind) {
    case CorrelationIndexKind::kGrid: return "grid";
    case CorrelationIndexKind::kRTree: return "rtree";
    case CorrelationIndexKind::kBruteForce: return "brute_force";
  }
  return "unknown";
}

std::unique_ptr<CorrelationIndex> CorrelationIndex::Create(
    CorrelationIndexKind kind, std::size_t dims, double cell) {
  SD_CHECK(dims > 0);
  switch (kind) {
    case CorrelationIndexKind::kGrid:
      return std::make_unique<GridIndex>(dims, cell);
    case CorrelationIndexKind::kRTree:
      return std::make_unique<RTreeIndex>(dims);
    case CorrelationIndexKind::kBruteForce:
      return std::make_unique<BruteForceIndex>(dims);
  }
  return nullptr;
}

}  // namespace stardust
