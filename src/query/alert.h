// Typed alert records delivered by the alert bus (src/query/alert_bus.h).
//
// Every hit of a registered continuous query — an aggregate threshold
// crossing, a verified pattern match, a verified correlated pair —
// becomes one Alert. Alerts are small value types so they can cross the
// bounded bus queue by copy; the JSONL encoding below is the stable wire
// schema (docs/QUERIES.md).
#ifndef STARDUST_QUERY_ALERT_H_
#define STARDUST_QUERY_ALERT_H_

#include <cstdint>
#include <string>

#include "core/config.h"
#include "query/query_spec.h"

namespace stardust {

/// One query hit. Field semantics by kind:
///  - kAggregate:   `stream` alarmed; `value` is the exact aggregate,
///                  `threshold` the query threshold, `window` the query
///                  window, `end_time` the stream time of the window end.
///  - kPattern:     `stream` matched; `value` is the normalized match
///                  distance, `threshold` the query radius, `window` the
///                  pattern length, `end_time` the match end position.
///  - kCorrelation: streams `stream` and `stream_b` are correlated;
///                  `value` is the exact z-normalized window distance,
///                  `threshold` the query radius, `window` the level
///                  window, `end_time` the detection round time.
struct Alert {
  QueryId query = kInvalidQueryId;
  QueryKind kind = QueryKind::kAggregate;
  StreamId stream = 0;
  /// Partner stream of a correlated pair; unused (0) otherwise.
  StreamId stream_b = 0;
  std::size_t window = 0;
  std::uint64_t end_time = 0;
  /// Shard epoch (aggregate/pattern) or correlator round (correlation)
  /// that produced the alert; identifies the evaluated state.
  std::uint64_t epoch = 0;
  double value = 0.0;
  double threshold = 0.0;
};

/// One-line JSON encoding of an alert (no trailing newline):
///   {"query":3,"kind":"pattern","stream":5,"stream_b":0,"window":32,
///    "end_time":511,"epoch":14,"value":0.0132,"threshold":0.05}
std::string AlertToJson(const Alert& alert);

/// Same schema with a leading `"seq":<n>` field — the delivery order
/// stamped by the network fan-out tier (net/alert_hub.h): subscribers
/// deduplicate replays and detect gaps by it (docs/NETWORK.md).
std::string AlertToJson(const Alert& alert, std::uint64_t seq);

}  // namespace stardust

#endif  // STARDUST_QUERY_ALERT_H_
