#include "query/registry.h"

#include <cmath>
#include <cstring>
#include <utility>

namespace stardust {

namespace {

constexpr char kRegistryMagic[4] = {'S', 'D', 'Q', 'R'};
/// v2 appended the per-query alert rate-limit fields (QuerySpec::
/// alert_rate_per_sec / alert_burst); v3 appended the assess range and
/// sketch config. Older snapshots restore with the limit disabled and
/// the legacy threshold-derived assess range.
constexpr std::uint32_t kRegistryVersion = 3;
constexpr std::uint32_t kMinRegistryVersion = 1;

/// Lower bound on one serialized query (id + kind + window + threshold +
/// pattern length + radius + level, plus rate + burst in v2, plus the
/// 17-byte assess range and 65-byte sketch config in v3); bounds the
/// declared count against the remaining payload.
constexpr std::uint64_t MinQueryBytes(std::uint32_t version) {
  if (version >= 3) return 139;
  return version >= 2 ? 57 : 41;
}

/// Kind-independent validation of the optional token-bucket limit.
Status ValidateAlertRate(const QuerySpec& spec) {
  if (spec.alert_rate_per_sec == 0.0) return Status::OK();
  if (!std::isfinite(spec.alert_rate_per_sec) ||
      spec.alert_rate_per_sec < 0.0) {
    return Status::InvalidArgument(
        "alert_rate_per_sec must be finite and non-negative");
  }
  if (spec.alert_burst == 0) {
    return Status::InvalidArgument(
        "a rate-limited query needs alert_burst >= 1");
  }
  return Status::OK();
}

}  // namespace

QueryRegistry::QueryRegistry(const StardustConfig& aggregate_config,
                             const QueryConfig& query_config)
    : aggregate_config_(aggregate_config),
      query_config_(query_config),
      snapshot_(std::make_shared<const Snapshot>()) {}

Status QueryRegistry::ValidateSpec(const QuerySpec& spec) const {
  SD_RETURN_NOT_OK(ValidateAlertRate(spec));
  switch (spec.kind) {
    case QueryKind::kAggregate: {
      const std::size_t w_base = aggregate_config_.base_window;
      if (spec.window == 0 || spec.window % w_base != 0) {
        return Status::InvalidArgument(
            "aggregate query window must be a positive multiple of the "
            "base window");
      }
      if ((spec.window / w_base) >> aggregate_config_.num_levels != 0) {
        return Status::InvalidArgument(
            "aggregate query window exceeds the largest indexed "
            "resolution");
      }
      if (!std::isfinite(spec.threshold)) {
        return Status::InvalidArgument(
            "aggregate query threshold must be finite");
      }
      SD_RETURN_NOT_OK(spec.assess.Validate());
      return Status::OK();
    }
    case QueryKind::kPattern: {
      if (!query_config_.enable_patterns) {
        return Status::FailedPrecondition(
            "pattern queries are not enabled on this engine "
            "(QueryConfig::enable_patterns)");
      }
      const std::size_t w_base = query_config_.pattern.base_window;
      if (spec.pattern.empty() || spec.pattern.size() % w_base != 0) {
        return Status::InvalidArgument(
            "pattern length must be a positive multiple of the pattern "
            "core's base window");
      }
      if ((spec.pattern.size() / w_base) >>
              query_config_.pattern.num_levels !=
          0) {
        return Status::InvalidArgument(
            "pattern length exceeds the pattern core's largest indexed "
            "resolution");
      }
      if (spec.pattern.size() > query_config_.pattern.history) {
        return Status::InvalidArgument(
            "pattern length exceeds the pattern core's history");
      }
      if (!(spec.radius >= 0.0)) {
        return Status::InvalidArgument(
            "pattern radius must be non-negative");
      }
      return Status::OK();
    }
    case QueryKind::kCorrelation: {
      if (!query_config_.enable_correlation) {
        return Status::FailedPrecondition(
            "correlation queries are not enabled on this engine "
            "(QueryConfig::enable_correlation)");
      }
      const std::size_t levels = query_config_.correlation.num_levels;
      const std::size_t level =
          spec.level == kTopLevel ? levels - 1 : spec.level;
      if (level >= levels) {
        return Status::InvalidArgument(
            "correlation level out of the correlation core's range");
      }
      if (query_config_.correlation.LevelWindow(level) >
          query_config_.correlation.history) {
        return Status::InvalidArgument(
            "correlation core history must cover the monitored window");
      }
      if (!(spec.radius >= 0.0)) {
        return Status::InvalidArgument(
            "correlation radius must be non-negative");
      }
      return Status::OK();
    }
    case QueryKind::kSketch: {
      SD_RETURN_NOT_OK(spec.sketch.Validate());
      if (spec.window != spec.sketch.window) {
        return Status::InvalidArgument(
            "sketch query window must mirror its sketch config window");
      }
      SD_RETURN_NOT_OK(spec.assess.Validate());
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown query kind");
}

void QueryRegistry::PublishLocked() {
  auto snapshot = std::make_shared<Snapshot>();
  for (const auto& query : queries_) {
    switch (query->spec.kind) {
      case QueryKind::kAggregate:
        snapshot->aggregate.push_back(query);
        break;
      case QueryKind::kPattern:
        snapshot->pattern.push_back(query);
        break;
      case QueryKind::kCorrelation:
        snapshot->correlation.push_back(query);
        break;
      case QueryKind::kSketch:
        snapshot->sketch.push_back(query);
        break;
    }
  }
  snapshot_ = std::move(snapshot);
  version_.fetch_add(1, std::memory_order_release);
}

Result<QueryId> QueryRegistry::Register(QuerySpec spec) {
  SD_RETURN_NOT_OK(ValidateSpec(spec));
  std::lock_guard<std::mutex> lock(mu_);
  const QueryId id = next_id_++;
  queries_.push_back(std::make_shared<RegisteredQuery>(id, std::move(spec)));
  PublishLocked();
  return id;
}

Status QueryRegistry::Unregister(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queries_.begin(); it != queries_.end(); ++it) {
    if ((*it)->id == id) {
      queries_.erase(it);
      PublishLocked();
      return Status::OK();
    }
  }
  return Status::NotFound("no registered query with id " +
                          std::to_string(id));
}

std::shared_ptr<const QueryRegistry::Snapshot> QueryRegistry::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

std::size_t QueryRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_.size();
}

std::vector<QueryMetricsSnapshot> QueryRegistry::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryMetricsSnapshot> out;
  out.reserve(queries_.size());
  for (const auto& query : queries_) {
    QueryMetricsSnapshot m;
    m.id = query->id;
    m.kind = query->spec.kind;
    m.evals = query->evals.load(std::memory_order_relaxed);
    m.hits = query->hits.load(std::memory_order_relaxed);
    m.errors = query->errors.load(std::memory_order_relaxed);
    m.eval_nanos = query->eval_nanos.load(std::memory_order_relaxed);
    m.rate_limited = query->rate_limited.load(std::memory_order_relaxed);
    out.push_back(m);
  }
  return out;
}

std::string QueryRegistry::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  Writer payload;
  payload.U64(next_id_);
  payload.U64(queries_.size());
  for (const auto& query : queries_) {
    payload.U64(query->id);
    query->spec.SaveTo(&payload, kRegistryVersion);
  }

  Writer envelope;
  envelope.Bytes(kRegistryMagic, sizeof(kRegistryMagic));
  envelope.U32(kRegistryVersion);
  envelope.U64(Fnv1a(payload.buffer()));
  envelope.Bytes(payload.buffer().data(), payload.buffer().size());
  return std::move(envelope.TakeBuffer());
}

Status QueryRegistry::Restore(const std::string& bytes) {
  if (bytes.size() < sizeof(kRegistryMagic) + 4 + 8) {
    return Status::InvalidArgument("query registry snapshot too small");
  }
  if (std::memcmp(bytes.data(), kRegistryMagic, sizeof(kRegistryMagic)) !=
      0) {
    return Status::InvalidArgument(
        "not a query registry snapshot (bad magic)");
  }
  Reader header(bytes);
  {
    std::uint8_t b = 0;
    for (std::size_t i = 0; i < sizeof(kRegistryMagic); ++i) {
      SD_RETURN_NOT_OK(header.U8(&b));
    }
  }
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  SD_RETURN_NOT_OK(header.U32(&version));
  SD_RETURN_NOT_OK(header.U64(&checksum));
  if (version < kMinRegistryVersion || version > kRegistryVersion) {
    return Status::InvalidArgument("unsupported query registry version " +
                                   std::to_string(version));
  }
  const std::string payload = bytes.substr(sizeof(kRegistryMagic) + 12);
  if (Fnv1a(payload) != checksum) {
    return Status::InvalidArgument(
        "query registry snapshot checksum mismatch");
  }

  Reader reader(payload);
  std::uint64_t next_id = 0;
  std::uint64_t count = 0;
  SD_RETURN_NOT_OK(reader.U64(&next_id));
  SD_RETURN_NOT_OK(reader.U64(&count));
  if (count > reader.remaining() / MinQueryBytes(version)) {
    return Status::InvalidArgument(
        "query registry count out of range");
  }
  std::vector<std::shared_ptr<RegisteredQuery>> restored;
  restored.reserve(count);
  QueryId last_id = kInvalidQueryId;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    SD_RETURN_NOT_OK(reader.U64(&id));
    QuerySpec spec;
    SD_RETURN_NOT_OK(spec.RestoreFrom(&reader, version));
    // Ids are assigned monotonically and serialized in registration
    // order, so a valid snapshot is strictly increasing — which also
    // guarantees uniqueness against corrupt input.
    if (id <= last_id || id >= next_id) {
      return Status::InvalidArgument(
          "query registry snapshot has an id outside its allocator");
    }
    last_id = id;
    SD_RETURN_NOT_OK(ValidateSpec(spec));
    restored.push_back(
        std::make_shared<RegisteredQuery>(id, std::move(spec)));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "query registry snapshot has trailing bytes");
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!queries_.empty()) {
    return Status::FailedPrecondition(
        "query registry restore requires an empty registry");
  }
  queries_ = std::move(restored);
  next_id_ = next_id;
  PublishLocked();
  return Status::OK();
}

}  // namespace stardust
