#include "query/eval_plan.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace stardust {

std::shared_ptr<const EvalPlan> CompileEvalPlan(
    const QueryRegistry::Snapshot& snapshot, std::uint64_t version,
    const PlanContext& ctx) {
  SD_CHECK(ctx.fleet != nullptr);
  auto plan = std::make_shared<EvalPlan>();
  plan->version = version;

  // --- Aggregate: group by window, ascending -------------------------
  std::vector<std::shared_ptr<RegisteredQuery>> aggregate =
      snapshot.aggregate;
  std::stable_sort(aggregate.begin(), aggregate.end(),
                   [](const std::shared_ptr<RegisteredQuery>& a,
                      const std::shared_ptr<RegisteredQuery>& b) {
                     return a->spec.window < b->spec.window;
                   });
  for (const auto& q : aggregate) {
    if (plan->aggregate.empty() ||
        plan->aggregate.back().window != q->spec.window) {
      EvalPlan::AggregateGroup group;
      group.window = q->spec.window;
      // Algorithm 2's verification reads the raw subsequence; a window
      // wider than the retained history can never be verified, so the
      // seed path never alarmed on it and neither does the plan.
      group.evaluable = q->spec.window <= ctx.fleet->history;
      plan->aggregate.push_back(std::move(group));
    }
    plan->aggregate.back().queries.push_back(q);
  }
  for (EvalPlan::AggregateGroup& group : plan->aggregate) {
    if (!group.evaluable) continue;
    group.tracker_index = plan->aggregate_windows.size();
    plan->aggregate_windows.push_back(group.window);
  }

  // --- Pattern: precompile each query once ---------------------------
  for (const auto& q : snapshot.pattern) {
    EvalPlan::PatternEntry entry;
    entry.query = q;
    if (ctx.pattern != nullptr) {
      Result<CompiledPatternQuery> compiled =
          CompilePatternQuery(*ctx.pattern, q->spec.pattern, q->spec.radius);
      if (compiled.ok()) {
        entry.compiled = std::move(compiled.value());
        entry.ok = true;
      }
    }
    plan->pattern.push_back(std::move(entry));
  }

  // --- Correlation: group by resolved level, ascending ---------------
  if (ctx.correlation != nullptr) {
    std::vector<std::shared_ptr<RegisteredQuery>> correlation =
        snapshot.correlation;
    const std::size_t top = ctx.correlation->num_levels - 1;
    auto resolved = [top](const std::shared_ptr<RegisteredQuery>& q) {
      return q->spec.level == kTopLevel ? top : q->spec.level;
    };
    std::stable_sort(correlation.begin(), correlation.end(),
                     [&](const std::shared_ptr<RegisteredQuery>& a,
                         const std::shared_ptr<RegisteredQuery>& b) {
                       return resolved(a) < resolved(b);
                     });
    for (const auto& q : correlation) {
      const std::size_t level = resolved(q);
      if (level >= ctx.correlation->num_levels) continue;  // stale spec
      if (plan->correlation.empty() ||
          plan->correlation.back().level != level) {
        EvalPlan::CorrelationGroup group;
        group.level = level;
        group.window = ctx.correlation->LevelWindow(level);
        plan->correlation.push_back(std::move(group));
      }
      EvalPlan::CorrelationGroup& group = plan->correlation.back();
      if (group.queries.empty()) {
        group.min_radius = q->spec.radius;
        group.max_radius = q->spec.radius;
      } else {
        group.min_radius = std::min(group.min_radius, q->spec.radius);
        group.max_radius = std::max(group.max_radius, q->spec.radius);
      }
      group.queries.push_back(q);
    }
  }

  // --- Sketch: group by config equality ------------------------------
  for (const auto& q : snapshot.sketch) {
    std::size_t slot = plan->sketch.size();
    for (std::size_t i = 0; i < plan->sketch.size(); ++i) {
      if (plan->sketch[i].config == q->spec.sketch) {
        slot = i;
        break;
      }
    }
    if (slot == plan->sketch.size()) {
      EvalPlan::SketchGroup group;
      group.config = q->spec.sketch;
      group.slot = slot;
      plan->sketch.push_back(std::move(group));
      plan->sketch_slots.push_back(q->spec.sketch);
    }
    plan->sketch[slot].queries.push_back(q);
  }

  return plan;
}

}  // namespace stardust
