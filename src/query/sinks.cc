#include "query/sinks.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "query/alert.h"

namespace stardust {

Result<std::unique_ptr<JsonlFileSink>> JsonlFileSink::Open(
    const std::string& path, std::size_t fsync_every) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::Internal("cannot open alert log " + path + ": " +
                            std::strerror(errno));
  }
  return std::unique_ptr<JsonlFileSink>(
      new JsonlFileSink(path, file, fsync_every));
}

JsonlFileSink::~JsonlFileSink() {
  if (file_ != nullptr) {
    (void)Flush();
    std::fclose(file_);
  }
}

void JsonlFileSink::OnAlert(const Alert& alert) {
  const std::string line = AlertToJson(alert);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++written_;
  if (fsync_every_ > 0 && written_ % fsync_every_ == 0) (void)Flush();
}

Status JsonlFileSink::Flush() {
  if (std::fflush(file_) != 0) {
    return Status::Internal("fflush failed for " + path_ + ": " +
                            std::strerror(errno));
  }
  if (::fsync(fileno(file_)) != 0) {
    return Status::Internal("fsync failed for " + path_ + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace stardust
