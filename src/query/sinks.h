// Pluggable alert sinks for the alert bus (src/query/alert_bus.h).
//
//  - CallbackSink: invokes a user function per alert on the dispatcher
//    thread (the in-process subscriber).
//  - RingSink: keeps the most recent alerts in memory behind a mutex —
//    the test/debug subscriber.
//  - JsonlFileSink: appends one JSON line per alert to a file, following
//    the durability conventions of common/atomic_file: an explicit
//    fsync cadence, and a final flush+fsync on Flush()/close so that
//    everything delivered before a clean Stop survives a crash. (Unlike
//    snapshots, an alert log is append-only, so atomic whole-file
//    replacement does not apply; a torn final line after a hard crash is
//    possible and readers must tolerate it — see docs/QUERIES.md.)
#ifndef STARDUST_QUERY_SINKS_H_
#define STARDUST_QUERY_SINKS_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "query/alert_bus.h"

namespace stardust {

/// Invokes `fn` for every delivered alert on the dispatcher thread.
class CallbackSink : public AlertSink {
 public:
  explicit CallbackSink(std::function<void(const Alert&)> fn)
      : fn_(std::move(fn)) {}

  void OnAlert(const Alert& alert) override { fn_(alert); }

 private:
  std::function<void(const Alert&)> fn_;
};

/// Retains the most recent `keep` alerts; snapshot-readable from any
/// thread. Total count keeps counting past the retention bound.
class RingSink : public AlertSink {
 public:
  explicit RingSink(std::size_t keep = 1024) : keep_(keep) {}

  void OnAlert(const Alert& alert) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    alerts_.push_back(alert);
    if (alerts_.size() > keep_) alerts_.pop_front();
  }

  /// The retained alerts, oldest first.
  std::vector<Alert> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::vector<Alert>(alerts_.begin(), alerts_.end());
  }

  /// Alerts ever delivered to this sink.
  std::uint64_t total() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

 private:
  const std::size_t keep_;
  mutable std::mutex mu_;
  std::deque<Alert> alerts_;
  std::uint64_t total_ = 0;
};

/// Appends AlertToJson(alert) + '\n' per alert. `fsync_every` > 0 makes
/// every Nth alert durable immediately; 0 defers durability to Flush()
/// (which AlertBus::Stop calls) — the throughput-friendly default.
class JsonlFileSink : public AlertSink {
 public:
  /// Opens `path` for appending (created if missing).
  static Result<std::unique_ptr<JsonlFileSink>> Open(
      const std::string& path, std::size_t fsync_every = 0);
  ~JsonlFileSink() override;

  void OnAlert(const Alert& alert) override;
  /// fflush + fsync.
  Status Flush() override;

  const std::string& path() const { return path_; }
  /// Alerts written since open.
  std::uint64_t written() const { return written_; }

 private:
  JsonlFileSink(std::string path, std::FILE* file, std::size_t fsync_every)
      : path_(std::move(path)), file_(file), fsync_every_(fsync_every) {}

  const std::string path_;
  std::FILE* file_;
  const std::size_t fsync_every_;
  std::uint64_t written_ = 0;
};

}  // namespace stardust

#endif  // STARDUST_QUERY_SINKS_H_
