// QueryRegistry: runtime registration of continuous queries while
// ingestion is live.
//
// Register/Unregister may be called from any thread at any time; the
// evaluation hot paths (shard workers, the correlator) never take the
// registry mutex per tuple — they poll the cheap atomic version() and,
// only when it changed, fetch a new immutable snapshot (copy-on-write:
// every mutation publishes a fresh shared_ptr<const Snapshot>). A worker
// holding an old snapshot keeps evaluating the old query set for at most
// one batch; per-query counters live on the RegisteredQuery objects
// themselves, so metrics survive snapshot swaps and even unregistration
// races (a worker mid-evaluation bumps counters on a query that was just
// removed — harmless, the object is shared-ptr kept alive).
#ifndef STARDUST_QUERY_REGISTRY_H_
#define STARDUST_QUERY_REGISTRY_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "query/query_config.h"
#include "query/query_spec.h"

namespace stardust {

/// A registered query plus its live counters. Immutable spec; atomic
/// counters are bumped by evaluators without synchronization.
struct RegisteredQuery {
  QueryId id = kInvalidQueryId;
  QuerySpec spec;
  /// Evaluation runs (per shard batch / correlator round touching it).
  mutable std::atomic<std::uint64_t> evals{0};
  /// Alerts this query emitted.
  mutable std::atomic<std::uint64_t> hits{0};
  /// Evaluations that failed with a non-OK status (skipped silently on
  /// the hot path; visible here for observability).
  mutable std::atomic<std::uint64_t> errors{0};
  /// Total wall-clock nanoseconds spent evaluating this query.
  mutable std::atomic<std::uint64_t> eval_nanos{0};
  /// Hits whose alert was suppressed by the token bucket (QuerySpec::
  /// alert_rate_per_sec). Suppressed hits still count as hits.
  mutable std::atomic<std::uint64_t> rate_limited{0};

  RegisteredQuery(QueryId query_id, QuerySpec query_spec)
      : id(query_id),
        spec(std::move(query_spec)),
        bucket_tokens_(static_cast<double>(spec.alert_burst)),
        bucket_refill_(std::chrono::steady_clock::now()) {}

  /// Token-bucket admission for one would-be alert: true when the alert
  /// may publish (consumes a token), false when it is rate limited
  /// (bumps rate_limited). Always true when the spec sets no limit.
  /// Callers commit their dedup state (rising edge, watermark, active
  /// pair set) regardless of the verdict, so a suppressed alert is
  /// dropped for good rather than re-raised when tokens refill.
  bool AllowAlert() const {
    if (spec.alert_rate_per_sec <= 0.0) return true;
    std::lock_guard<std::mutex> lock(bucket_mu_);
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - bucket_refill_).count();
    bucket_refill_ = now;
    bucket_tokens_ =
        std::min(static_cast<double>(spec.alert_burst),
                 bucket_tokens_ + elapsed * spec.alert_rate_per_sec);
    if (bucket_tokens_ >= 1.0) {
      bucket_tokens_ -= 1.0;
      return true;
    }
    rate_limited.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

 private:
  /// Token-bucket state; contended only by evaluators that just detected
  /// a hit on this specific query, never per tuple.
  mutable std::mutex bucket_mu_;
  mutable double bucket_tokens_ = 0.0;
  mutable std::chrono::steady_clock::time_point bucket_refill_;
};

/// Point-in-time per-query counters for metrics export.
struct QueryMetricsSnapshot {
  QueryId id = kInvalidQueryId;
  QueryKind kind = QueryKind::kAggregate;
  std::uint64_t evals = 0;
  std::uint64_t hits = 0;
  std::uint64_t errors = 0;
  std::uint64_t eval_nanos = 0;
  std::uint64_t rate_limited = 0;
};

class QueryRegistry {
 public:
  /// Immutable view of the registered queries, split by kind for the
  /// evaluators.
  struct Snapshot {
    std::vector<std::shared_ptr<RegisteredQuery>> aggregate;
    std::vector<std::shared_ptr<RegisteredQuery>> pattern;
    std::vector<std::shared_ptr<RegisteredQuery>> correlation;
    std::vector<std::shared_ptr<RegisteredQuery>> sketch;

    std::size_t size() const {
      return aggregate.size() + pattern.size() + correlation.size() +
             sketch.size();
    }
  };

  /// `aggregate_config` is the fleet monitors' Stardust configuration
  /// (validates aggregate query windows); `query_config` gates the
  /// pattern/correlation kinds and validates their specs.
  QueryRegistry(const StardustConfig& aggregate_config,
                const QueryConfig& query_config);

  /// Validates `spec` against the engine's configuration and registers
  /// it. The returned id is stable until Unregister and never reused.
  Result<QueryId> Register(QuerySpec spec);
  /// NotFound for ids that are unknown (or already unregistered).
  Status Unregister(QueryId id);

  /// Bumped by every successful Register/Unregister. Evaluators poll
  /// this (acquire) and refetch snapshot() only on change.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  /// The current immutable query set.
  std::shared_ptr<const Snapshot> snapshot() const;

  std::size_t size() const;
  std::vector<QueryMetricsSnapshot> Metrics() const;

  /// Checkpoint support: serializes every registered query (id + spec)
  /// and the id allocator under the snapshot envelope conventions
  /// (magic + version + FNV-1a checksum).
  std::string Serialize() const;
  /// Restores a serialized registry into this (empty) instance. Every
  /// restored spec is re-validated against the current configuration, so
  /// a checkpoint from an engine with pattern queries enabled cannot be
  /// restored into one without. Ids and the allocator continue the
  /// checkpointed lineage.
  Status Restore(const std::string& bytes);

 private:
  Status ValidateSpec(const QuerySpec& spec) const;
  /// Rebuilds and publishes the snapshot; callers hold mu_.
  void PublishLocked();

  const StardustConfig aggregate_config_;
  const QueryConfig query_config_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<RegisteredQuery>> queries_;
  QueryId next_id_ = 1;
  std::shared_ptr<const Snapshot> snapshot_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace stardust

#endif  // STARDUST_QUERY_REGISTRY_H_
