#include "query/alert.h"

#include <cinttypes>
#include <cstdio>

namespace stardust {

std::string AlertToJson(const Alert& alert) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"query\":%" PRIu64
                ",\"kind\":\"%s\",\"stream\":%u,\"stream_b\":%u,"
                "\"window\":%zu,\"end_time\":%" PRIu64 ",\"epoch\":%" PRIu64
                ",\"value\":%.6g,\"threshold\":%.6g}",
                alert.query, QueryKindName(alert.kind), alert.stream,
                alert.stream_b, alert.window, alert.end_time, alert.epoch,
                alert.value, alert.threshold);
  return buf;
}

std::string AlertToJson(const Alert& alert, std::uint64_t seq) {
  char buf[352];
  std::snprintf(buf, sizeof(buf),
                "{\"seq\":%" PRIu64 ",\"query\":%" PRIu64
                ",\"kind\":\"%s\",\"stream\":%u,\"stream_b\":%u,"
                "\"window\":%zu,\"end_time\":%" PRIu64 ",\"epoch\":%" PRIu64
                ",\"value\":%.6g,\"threshold\":%.6g}",
                seq, alert.query, QueryKindName(alert.kind), alert.stream,
                alert.stream_b, alert.window, alert.end_time, alert.epoch,
                alert.value, alert.threshold);
  return buf;
}

}  // namespace stardust
