#include "stream/preprocess.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "transform/regression.h"

namespace stardust {

namespace {

void RefitRange(Dataset* dataset) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : dataset->streams) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!(lo <= hi)) {
    lo = 0.0;
    hi = 1.0;
  }
  dataset->r_min = std::min(0.0, lo);
  dataset->r_max = hi + 0.05 * std::max(1.0, hi - lo);
}

}  // namespace

Result<Dataset> FillGaps(const Dataset& dataset) {
  Dataset out = dataset;
  for (std::size_t s = 0; s < out.streams.size(); ++s) {
    auto& stream = out.streams[s];
    // Indexes of finite samples.
    std::vector<std::size_t> finite;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (std::isfinite(stream[i])) finite.push_back(i);
    }
    if (finite.empty()) {
      return Status::InvalidArgument(
          "stream " + std::to_string(s) + " has no finite values");
    }
    // Clamp the edges.
    for (std::size_t i = 0; i < finite.front(); ++i) {
      stream[i] = stream[finite.front()];
    }
    for (std::size_t i = finite.back() + 1; i < stream.size(); ++i) {
      stream[i] = stream[finite.back()];
    }
    // Interpolate interior gaps.
    for (std::size_t k = 0; k + 1 < finite.size(); ++k) {
      const std::size_t a = finite[k];
      const std::size_t b = finite[k + 1];
      for (std::size_t i = a + 1; i < b; ++i) {
        const double frac = static_cast<double>(i - a) /
                            static_cast<double>(b - a);
        stream[i] = stream[a] + frac * (stream[b] - stream[a]);
      }
    }
  }
  RefitRange(&out);
  return out;
}

Result<Dataset> Resample(const Dataset& dataset, std::size_t factor) {
  if (factor == 0) return Status::InvalidArgument("factor must be positive");
  if (dataset.length() < factor) {
    return Status::InvalidArgument("dataset shorter than one block");
  }
  Dataset out;
  out.streams.reserve(dataset.num_streams());
  for (const auto& stream : dataset.streams) {
    std::vector<double> down;
    down.reserve(stream.size() / factor);
    for (std::size_t start = 0; start + factor <= stream.size();
         start += factor) {
      double sum = 0.0;
      for (std::size_t i = 0; i < factor; ++i) sum += stream[start + i];
      down.push_back(sum / static_cast<double>(factor));
    }
    out.streams.push_back(std::move(down));
  }
  RefitRange(&out);
  return out;
}

Result<Dataset> Detrend(const Dataset& dataset) {
  if (dataset.length() < 2) {
    return Status::InvalidArgument("need at least two values to detrend");
  }
  Dataset out = dataset;
  for (auto& stream : out.streams) {
    OnlineLinearRegression regression;
    for (std::size_t t = 0; t < stream.size(); ++t) {
      regression.Add(static_cast<double>(t), stream[t]);
    }
    const double slope = regression.Slope();
    const double mid =
        slope * (static_cast<double>(stream.size() - 1) / 2.0);
    for (std::size_t t = 0; t < stream.size(); ++t) {
      // Remove the trend but keep the level (rotate about the midpoint).
      stream[t] -= slope * static_cast<double>(t) - mid;
    }
  }
  RefitRange(&out);
  return out;
}

}  // namespace stardust
