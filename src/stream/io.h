// Dataset CSV I/O.
//
// Lets users run the framework and the experiment harnesses on their own
// traces. Format: one row per time step, one column per stream, comma
// separated; an optional first header row (detected by non-numeric
// content) is skipped. All rows must have the same number of columns.
#ifndef STARDUST_STREAM_IO_H_
#define STARDUST_STREAM_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stream/dataset.h"

namespace stardust {

/// Parses one CSV row of numeric fields into `out` (cleared first).
/// On a malformed field returns InvalidArgument naming the 1-based
/// column, so line-oriented callers (stardust_cli ingest) can report
/// "line N: <reason>" and keep going instead of aborting the run.
Status ParseCsvRow(const std::string& line, std::vector<double>* out);

/// Parses a dataset from CSV text (see the file header for the format).
/// The value range [r_min, r_max] is fitted from the data with a small
/// safety margin, like the synthetic generators do.
Result<Dataset> ParseDatasetCsv(const std::string& text);

/// Loads a dataset from a CSV file.
Result<Dataset> LoadDatasetCsv(const std::string& path);

/// Serializes a dataset to CSV text (streams as columns, 17 significant
/// digits — round-trip exact for doubles).
std::string FormatDatasetCsv(const Dataset& dataset);

/// Writes a dataset to a CSV file (overwrites).
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

}  // namespace stardust

#endif  // STARDUST_STREAM_IO_H_
