#include "stream/bursty_source.h"

#include <cmath>

#include "common/check.h"

namespace stardust {

BurstySource::BurstySource(std::uint64_t seed, BurstySourceOptions options)
    : rng_(seed), options_(options) {
  SD_CHECK(options_.background_rate > 0.0);
  SD_CHECK(options_.mean_burst_gap > 0.0);
  SD_CHECK(options_.min_burst_duration >= 1.0);
  SD_CHECK(options_.max_burst_duration >= options_.min_burst_duration);
  next_burst_in_ = static_cast<std::int64_t>(
      std::ceil(rng_.NextExponential(1.0 / options_.mean_burst_gap)));
}

double BurstySource::PoissonSample(double mean) {
  // Knuth's method for small means; Gaussian approximation for large ones.
  if (mean > 64.0) {
    const double v = mean + std::sqrt(mean) * rng_.NextGaussian();
    return std::max(0.0, std::round(v));
  }
  const double limit = std::exp(-mean);
  double product = rng_.NextDouble();
  double count = 0.0;
  while (product > limit) {
    product *= rng_.NextDouble();
    count += 1.0;
  }
  return count;
}

void BurstySource::MaybeStartBurst() {
  if (burst_remaining_ > 0) return;
  if (--next_burst_in_ > 0) return;
  // Log-uniform duration across the configured decades.
  const double log_min = std::log(options_.min_burst_duration);
  const double log_max = std::log(options_.max_burst_duration);
  const double duration = std::exp(rng_.NextDouble(log_min, log_max));
  burst_remaining_ = static_cast<std::int64_t>(std::ceil(duration));
  const double boost =
      rng_.NextDouble(options_.min_burst_boost, options_.max_burst_boost);
  // Attenuate long bursts: intensity falls with √duration so long bursts
  // are visible only when summed over long windows.
  const double atten =
      std::sqrt(options_.min_burst_duration / duration);
  burst_rate_ = options_.background_rate * (boost - 1.0) *
                std::max(atten, 0.05);
  next_burst_in_ = static_cast<std::int64_t>(
      std::ceil(rng_.NextExponential(1.0 / options_.mean_burst_gap)));
}

double BurstySource::Next() {
  MaybeStartBurst();
  double rate = options_.background_rate;
  if (burst_remaining_ > 0) {
    rate += burst_rate_;
    --burst_remaining_;
  }
  return PoissonSample(rate);
}

}  // namespace stardust
