// Synthetic substitute for the UCR `burst.dat` series (see DESIGN.md §2).
//
// Models an event-count stream such as a Gamma-Ray-Burst photon detector
// (paper, Introduction): a noisy Poisson-like background plus occasional
// bursts whose durations span several orders of magnitude, so that
// different bursts are only detectable at different monitoring timescales —
// the property that motivates multi-resolution aggregate monitoring.
#ifndef STARDUST_STREAM_BURSTY_SOURCE_H_
#define STARDUST_STREAM_BURSTY_SOURCE_H_

#include <cstdint>

#include "common/rng.h"
#include "stream/stream_source.h"

namespace stardust {

/// Tuning for the bursty event source.
struct BurstySourceOptions {
  /// Mean of the background event count per tick.
  double background_rate = 10.0;
  /// Mean gap (ticks) between burst onsets.
  double mean_burst_gap = 400.0;
  /// Burst durations are log-uniform in [min, max] ticks, covering the
  /// "milliseconds to days" spread of timescales at trace resolution.
  double min_burst_duration = 8.0;
  double max_burst_duration = 1200.0;
  /// Burst intensity as a multiple of the background rate, uniform in
  /// [min, max]. Long bursts are attenuated (energy roughly conserved) so
  /// that short bursts are sharp and long bursts are shallow.
  double min_burst_boost = 1.5;
  double max_burst_boost = 6.0;
};

/// Event-count stream: background + injected variable-duration bursts.
class BurstySource : public StreamSource {
 public:
  BurstySource(std::uint64_t seed, BurstySourceOptions options = {});

  double Next() override;

  /// True if a burst was active at the most recently produced tick.
  bool burst_active() const { return burst_remaining_ > 0; }

 private:
  void MaybeStartBurst();
  double PoissonSample(double mean);

  Rng rng_;
  BurstySourceOptions options_;
  std::int64_t next_burst_in_ = 0;
  std::int64_t burst_remaining_ = 0;
  double burst_rate_ = 0.0;
};

}  // namespace stardust

#endif  // STARDUST_STREAM_BURSTY_SOURCE_H_
