// Synthetic substitute for the UCR `packet.dat` series (see DESIGN.md §2).
//
// Models a network packet-count stream: aggregated traffic is long-range
// dependent, which we approximate by multiplicatively modulating a base
// rate with sinusoidal components at several timescales plus random regime
// shifts, and adding heteroscedastic noise. The result has local ranges
// (SPREAD) that fluctuate at multiple scales — the structure the paper's
// volatility-monitoring experiment (Figure 4(b,c)) exercises.
#ifndef STARDUST_STREAM_PACKET_SOURCE_H_
#define STARDUST_STREAM_PACKET_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "stream/stream_source.h"

namespace stardust {

/// Tuning for the packet-count source.
struct PacketSourceOptions {
  double base_rate = 500.0;
  /// Periods (ticks) of the multiplicative modulation components.
  std::vector<double> periods = {97.0, 1009.0, 10007.0};
  /// Relative amplitude of each component.
  double amplitude = 0.35;
  /// Mean gap between regime shifts (sudden rate-level changes).
  double mean_regime_gap = 5000.0;
  /// Noise std dev as a fraction of the instantaneous rate.
  double noise_fraction = 0.15;
};

/// Self-similar-like packet-count stream.
class PacketSource : public StreamSource {
 public:
  PacketSource(std::uint64_t seed, PacketSourceOptions options = {});

  double Next() override;

 private:
  Rng rng_;
  PacketSourceOptions options_;
  std::vector<double> phases_;
  double regime_factor_ = 1.0;
  std::int64_t regime_remaining_ = 0;
  std::int64_t t_ = 0;
};

}  // namespace stardust

#endif  // STARDUST_STREAM_PACKET_SOURCE_H_
