// Synthetic substitute for the CMU Host Load traces (see DESIGN.md §2).
//
// The CMU traces (Dinda, 1997) record UNIX one-minute load averages: they
// are strongly autocorrelated, have daily periodic structure, and show
// occasional level shifts when tasks arrive or finish. We model each trace
// as an AR(1) process around a slowly moving periodic baseline with
// task-arrival jumps — the same smooth-but-shifting shape the paper's
// pattern-query experiment (Figure 5) searches over.
#ifndef STARDUST_STREAM_HOST_LOAD_SOURCE_H_
#define STARDUST_STREAM_HOST_LOAD_SOURCE_H_

#include <cstdint>

#include "common/rng.h"
#include "stream/stream_source.h"

namespace stardust {

/// Tuning for the host-load source.
struct HostLoadOptions {
  double ar_coefficient = 0.97;
  double noise_std = 0.06;
  /// Period of the "daily" baseline component in ticks.
  double daily_period = 1440.0;
  double daily_amplitude = 0.6;
  /// Mean gap between task arrival/departure level shifts.
  double mean_task_gap = 300.0;
  /// Baseline mean load.
  double mean_load = 1.2;
};

/// Host load average trace.
class HostLoadSource : public StreamSource {
 public:
  HostLoadSource(std::uint64_t seed, HostLoadOptions options = {});

  double Next() override;

 private:
  Rng rng_;
  HostLoadOptions options_;
  double deviation_ = 0.0;   // AR(1) state around the baseline
  double task_level_ = 0.0;  // current task-induced load offset
  std::int64_t task_remaining_ = 0;
  double phase_ = 0.0;
  std::int64_t t_ = 0;
};

}  // namespace stardust

#endif  // STARDUST_STREAM_HOST_LOAD_SOURCE_H_
