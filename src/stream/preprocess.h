// Dataset preprocessing for real-world traces.
//
// The framework requires finite values at a uniform rate; raw operational
// CSVs rarely oblige. These utilities bridge the gap: NaN-gap
// interpolation, resampling to a coarser rate, and linear detrending —
// each a pure function over Dataset so pipelines stay explicit.
#ifndef STARDUST_STREAM_PREPROCESS_H_
#define STARDUST_STREAM_PREPROCESS_H_

#include <cstddef>

#include "common/status.h"
#include "stream/dataset.h"

namespace stardust {

/// Replaces non-finite values by linear interpolation between the nearest
/// finite neighbours (edges clamp to the nearest finite value). Fails if
/// any stream has no finite value at all.
Result<Dataset> FillGaps(const Dataset& dataset);

/// Downsamples every stream by averaging non-overlapping blocks of
/// `factor` values (a trailing partial block is dropped). Fails when the
/// result would be empty.
Result<Dataset> Resample(const Dataset& dataset, std::size_t factor);

/// Removes each stream's least-squares linear trend (keeps the mean), so
/// volatility and correlation monitors see fluctuations rather than
/// drift. Requires at least two values.
Result<Dataset> Detrend(const Dataset& dataset);

}  // namespace stardust

#endif  // STARDUST_STREAM_PREPROCESS_H_
