#include "stream/dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "stream/bursty_source.h"
#include "stream/host_load_source.h"
#include "stream/packet_source.h"
#include "stream/random_walk.h"

namespace stardust {

namespace {

/// Computes [r_min, r_max] over all values, widened a little so later
/// values from the same generator family stay in range.
void FitRange(Dataset* dataset) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : dataset->streams) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!(lo <= hi)) {
    lo = 0.0;
    hi = 1.0;
  }
  dataset->r_min = std::min(0.0, lo);
  dataset->r_max = hi + 0.05 * std::max(1.0, hi - lo);
}

}  // namespace

Dataset MakeRandomWalkDataset(std::size_t num_streams, std::size_t length,
                              std::uint64_t seed) {
  Dataset dataset;
  dataset.streams.reserve(num_streams);
  SplitMix64 mix(seed);
  for (std::size_t i = 0; i < num_streams; ++i) {
    RandomWalkSource source(mix.Next());
    dataset.streams.push_back(source.Take(length));
  }
  FitRange(&dataset);
  return dataset;
}

Dataset MakeHostLoadDataset(std::size_t num_streams, std::size_t length,
                            std::uint64_t seed) {
  Dataset dataset;
  dataset.streams.reserve(num_streams);
  SplitMix64 mix(seed);
  for (std::size_t i = 0; i < num_streams; ++i) {
    HostLoadSource source(mix.Next());
    dataset.streams.push_back(source.Take(length));
  }
  FitRange(&dataset);
  return dataset;
}

Dataset MakeBurstDataset(std::size_t length, std::uint64_t seed) {
  Dataset dataset;
  BurstySource source(seed);
  dataset.streams.push_back(source.Take(length));
  FitRange(&dataset);
  return dataset;
}

Dataset MakePacketDataset(std::size_t length, std::uint64_t seed) {
  Dataset dataset;
  PacketSource source(seed);
  dataset.streams.push_back(source.Take(length));
  FitRange(&dataset);
  return dataset;
}

std::vector<std::vector<double>> MakeQueryWorkload(
    std::size_t count, const std::vector<std::size_t>& lengths,
    std::uint64_t seed) {
  SD_CHECK(!lengths.empty());
  std::vector<std::vector<double>> queries;
  queries.reserve(count);
  SplitMix64 mix(seed);
  Rng pick(mix.Next());
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = lengths[pick.NextUint64(lengths.size())];
    RandomWalkSource source(mix.Next());
    queries.push_back(source.Take(len));
  }
  return queries;
}

void RescaleDataset(Dataset* dataset, double r_max_target) {
  SD_CHECK(r_max_target > 0.0);
  SD_CHECK(dataset->r_max > dataset->r_min);
  const double lo = dataset->r_min;
  const double scale = r_max_target / (dataset->r_max - lo);
  for (auto& s : dataset->streams) {
    for (double& v : s) v = (v - lo) * scale;
  }
  dataset->r_min = 0.0;
  dataset->r_max = r_max_target;
}

}  // namespace stardust
