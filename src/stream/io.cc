#include "stream/io.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace stardust {

namespace {

/// Splits one CSV line on commas (no quoting: numeric data only).
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

/// Strict double parse of a trimmed field.
bool ParseDouble(const std::string& field, double* out) {
  std::size_t begin = field.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return false;
  std::size_t end = field.find_last_not_of(" \t\r") + 1;
  const char* first = field.data() + begin;
  const char* last = field.data() + end;
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

void FitRange(Dataset* dataset) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : dataset->streams) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!(lo <= hi)) {
    lo = 0.0;
    hi = 1.0;
  }
  dataset->r_min = std::min(0.0, lo);
  dataset->r_max = hi + 0.05 * std::max(1.0, hi - lo);
}

}  // namespace

Status ParseCsvRow(const std::string& line, std::vector<double>* out) {
  out->clear();
  const std::vector<std::string> fields = SplitFields(line);
  out->reserve(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    double value = 0.0;
    if (!ParseDouble(fields[i], &value)) {
      return Status::InvalidArgument(
          "column " + std::to_string(i + 1) + ": not a number: '" +
          fields[i] + "'");
    }
    out->push_back(value);
  }
  return Status::OK();
}

Result<Dataset> ParseDatasetCsv(const std::string& text) {
  Dataset dataset;
  std::istringstream in(text);
  std::string line;
  std::size_t columns = 0;
  std::size_t line_no = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    const std::vector<std::string> fields = SplitFields(line);
    std::vector<double> row(fields.size());
    bool numeric = true;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (!ParseDouble(fields[i], &row[i])) {
        numeric = false;
        break;
      }
    }
    if (!numeric) {
      if (first_data_line) continue;  // header row
      return Status::InvalidArgument("non-numeric field at line " +
                                     std::to_string(line_no));
    }
    if (first_data_line) {
      columns = row.size();
      dataset.streams.resize(columns);
      first_data_line = false;
    } else if (row.size() != columns) {
      return Status::InvalidArgument(
          "inconsistent column count at line " + std::to_string(line_no));
    }
    for (std::size_t i = 0; i < columns; ++i) {
      dataset.streams[i].push_back(row[i]);
    }
  }
  if (dataset.streams.empty() || dataset.streams[0].empty()) {
    return Status::InvalidArgument("no data rows");
  }
  FitRange(&dataset);
  return dataset;
}

Result<Dataset> LoadDatasetCsv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDatasetCsv(buffer.str());
}

std::string FormatDatasetCsv(const Dataset& dataset) {
  std::string out;
  char field[64];
  for (std::size_t t = 0; t < dataset.length(); ++t) {
    for (std::size_t s = 0; s < dataset.num_streams(); ++s) {
      const int len = std::snprintf(field, sizeof(field), "%.17g",
                                    dataset.streams[s][t]);
      if (s > 0) out += ',';
      out.append(field, static_cast<std::size_t>(len));
    }
    out += '\n';
  }
  return out;
}

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out << FormatDatasetCsv(dataset);
  if (!out) {
    return Status::Internal("write failed for " + path);
  }
  return Status::OK();
}

}  // namespace stardust
