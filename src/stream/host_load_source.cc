#include "stream/host_load_source.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace stardust {

HostLoadSource::HostLoadSource(std::uint64_t seed, HostLoadOptions options)
    : rng_(seed), options_(options) {
  SD_CHECK(options_.ar_coefficient > 0.0 && options_.ar_coefficient < 1.0);
  phase_ = rng_.NextDouble(0.0, 2.0 * std::numbers::pi);
  task_remaining_ = static_cast<std::int64_t>(
      std::ceil(rng_.NextExponential(1.0 / options_.mean_task_gap)));
}

double HostLoadSource::Next() {
  if (--task_remaining_ <= 0) {
    // A task arrives or departs: the load level steps up or down.
    task_level_ += rng_.NextDouble(-0.8, 1.0);
    task_level_ = std::max(-options_.mean_load * 0.5, task_level_);
    task_remaining_ = static_cast<std::int64_t>(
        std::ceil(rng_.NextExponential(1.0 / options_.mean_task_gap)));
  }
  deviation_ = options_.ar_coefficient * deviation_ +
               options_.noise_std * rng_.NextGaussian();
  const double daily =
      options_.daily_amplitude *
      std::sin(2.0 * std::numbers::pi * static_cast<double>(t_) /
                   options_.daily_period +
               phase_);
  ++t_;
  const double load =
      options_.mean_load + daily + task_level_ + deviation_;
  return std::max(0.0, load);
}

}  // namespace stardust
