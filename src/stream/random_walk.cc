#include "stream/random_walk.h"

namespace stardust {

RandomWalkSource::RandomWalkSource(std::uint64_t seed) : rng_(seed) {
  value_ = rng_.NextDouble(0.0, 100.0);
}

double RandomWalkSource::Next() {
  value_ += rng_.NextDouble() - 0.5;
  return value_;
}

}  // namespace stardust
