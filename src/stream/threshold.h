// Threshold training for aggregate monitoring (paper §6.1): for each query
// window size w, compute the sliding-window aggregate series y over a
// training prefix and set the alarm threshold to τ_w = μ_y + λ·σ_y.
#ifndef STARDUST_STREAM_THRESHOLD_H_
#define STARDUST_STREAM_THRESHOLD_H_

#include <cstddef>
#include <vector>

#include "transform/aggregate.h"

namespace stardust {

/// One monitored window: its size and trained threshold (Section 2.2).
struct WindowThreshold {
  std::size_t window = 0;
  double threshold = 0.0;
};

/// Sliding-window aggregate series of `training` with window size w.
/// For SUM this is O(n) via a running sum; MAX/MIN/SPREAD use monotonic
/// deques, also O(n).
std::vector<double> SlidingAggregate(AggregateKind kind,
                                     const std::vector<double>& training,
                                     std::size_t window);

/// Trains τ_w = μ + λσ of the sliding aggregate for every window size.
/// Window sizes larger than the training data are skipped.
std::vector<WindowThreshold> TrainThresholds(
    AggregateKind kind, const std::vector<double>& training,
    const std::vector<std::size_t>& windows, double lambda);

}  // namespace stardust

#endif  // STARDUST_STREAM_THRESHOLD_H_
