// Abstract stream source. All data in the experiments is produced by
// deterministic, seeded sources (see DESIGN.md §2 for how each synthetic
// source substitutes for the paper's datasets).
#ifndef STARDUST_STREAM_STREAM_SOURCE_H_
#define STARDUST_STREAM_STREAM_SOURCE_H_

#include <cstddef>
#include <vector>

namespace stardust {

/// Produces one unbounded sequence of stream values.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// The next value of the stream.
  virtual double Next() = 0;

  /// Appends `n` values to `out`.
  void Generate(std::size_t n, std::vector<double>* out) {
    out->reserve(out->size() + n);
    for (std::size_t i = 0; i < n; ++i) out->push_back(Next());
  }

  /// Returns `n` values as a fresh vector.
  std::vector<double> Take(std::size_t n) {
    std::vector<double> out;
    Generate(n, &out);
    return out;
  }
};

}  // namespace stardust

#endif  // STARDUST_STREAM_STREAM_SOURCE_H_
