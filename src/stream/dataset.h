// In-memory multi-stream datasets and query workloads.
#ifndef STARDUST_STREAM_DATASET_H_
#define STARDUST_STREAM_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stardust {

/// A finite collection of M equal-length streams plus the value range
/// [r_min, r_max] used for unit-sphere normalization (Section 2.1 assumes
/// values in a bounded range with R_min = 0).
struct Dataset {
  std::vector<std::vector<double>> streams;
  double r_min = 0.0;
  double r_max = 1.0;

  std::size_t num_streams() const { return streams.size(); }
  std::size_t length() const {
    return streams.empty() ? 0 : streams[0].size();
  }
};

/// M random-walk streams of the given length (paper's synthetic data).
Dataset MakeRandomWalkDataset(std::size_t num_streams, std::size_t length,
                              std::uint64_t seed);

/// M host-load traces of the given length (Host Load substitute).
Dataset MakeHostLoadDataset(std::size_t num_streams, std::size_t length,
                            std::uint64_t seed);

/// One bursty event-count stream (burst.dat substitute).
Dataset MakeBurstDataset(std::size_t length, std::uint64_t seed);

/// One packet-count stream (packet.dat substitute).
Dataset MakePacketDataset(std::size_t length, std::uint64_t seed);

/// Pattern-query workload: `count` random-walk query sequences with lengths
/// drawn uniformly from `lengths` (paper §6: "queries of uniformly random
/// length generated using the random walk model").
std::vector<std::vector<double>> MakeQueryWorkload(
    std::size_t count, const std::vector<std::size_t>& lengths,
    std::uint64_t seed);

/// Rescales every stream (and r_max) so values fall in [0, r_max_target].
void RescaleDataset(Dataset* dataset, double r_max_target);

}  // namespace stardust

#endif  // STARDUST_STREAM_DATASET_H_
