#include "stream/threshold.h"

#include <cmath>
#include <deque>

#include "common/check.h"

namespace stardust {

namespace {

/// Sliding max (or min) via a monotonic deque of indices; O(n) total.
std::vector<double> SlidingExtreme(const std::vector<double>& x,
                                   std::size_t w, bool want_max) {
  std::vector<double> out;
  out.reserve(x.size() - w + 1);
  std::deque<std::size_t> dq;
  for (std::size_t i = 0; i < x.size(); ++i) {
    while (!dq.empty() &&
           (want_max ? x[dq.back()] <= x[i] : x[dq.back()] >= x[i])) {
      dq.pop_back();
    }
    dq.push_back(i);
    if (dq.front() + w <= i) dq.pop_front();
    if (i + 1 >= w) out.push_back(x[dq.front()]);
  }
  return out;
}

}  // namespace

std::vector<double> SlidingAggregate(AggregateKind kind,
                                     const std::vector<double>& x,
                                     std::size_t w) {
  SD_CHECK(w >= 1);
  SD_CHECK(x.size() >= w);
  switch (kind) {
    case AggregateKind::kSum: {
      std::vector<double> out;
      out.reserve(x.size() - w + 1);
      double sum = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        sum += x[i];
        if (i >= w) sum -= x[i - w];
        if (i + 1 >= w) out.push_back(sum);
      }
      return out;
    }
    case AggregateKind::kMax:
      return SlidingExtreme(x, w, /*want_max=*/true);
    case AggregateKind::kMin:
      return SlidingExtreme(x, w, /*want_max=*/false);
    case AggregateKind::kSpread: {
      std::vector<double> hi = SlidingExtreme(x, w, /*want_max=*/true);
      std::vector<double> lo = SlidingExtreme(x, w, /*want_max=*/false);
      std::vector<double> out(hi.size());
      for (std::size_t i = 0; i < hi.size(); ++i) out[i] = hi[i] - lo[i];
      return out;
    }
  }
  return {};
}

std::vector<WindowThreshold> TrainThresholds(
    AggregateKind kind, const std::vector<double>& training,
    const std::vector<std::size_t>& windows, double lambda) {
  std::vector<WindowThreshold> out;
  out.reserve(windows.size());
  for (std::size_t w : windows) {
    if (w == 0 || w > training.size()) continue;
    const std::vector<double> y = SlidingAggregate(kind, training, w);
    double mean = 0.0;
    for (double v : y) mean += v;
    mean /= static_cast<double>(y.size());
    double var = 0.0;
    for (double v : y) {
      const double d = v - mean;
      var += d * d;
    }
    var /= static_cast<double>(y.size());
    out.push_back({w, mean + lambda * std::sqrt(var)});
  }
  return out;
}

}  // namespace stardust
