#include "stream/packet_source.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace stardust {

PacketSource::PacketSource(std::uint64_t seed, PacketSourceOptions options)
    : rng_(seed), options_(std::move(options)) {
  SD_CHECK(options_.base_rate > 0.0);
  SD_CHECK(!options_.periods.empty());
  phases_.reserve(options_.periods.size());
  for (std::size_t i = 0; i < options_.periods.size(); ++i) {
    phases_.push_back(rng_.NextDouble(0.0, 2.0 * std::numbers::pi));
  }
  regime_remaining_ = static_cast<std::int64_t>(
      std::ceil(rng_.NextExponential(1.0 / options_.mean_regime_gap)));
}

double PacketSource::Next() {
  if (--regime_remaining_ <= 0) {
    // New regime: rate level jumps by a factor in [0.5, 2.0].
    regime_factor_ = rng_.NextDouble(0.5, 2.0);
    regime_remaining_ = static_cast<std::int64_t>(
        std::ceil(rng_.NextExponential(1.0 / options_.mean_regime_gap)));
  }
  double modulation = 1.0;
  for (std::size_t i = 0; i < options_.periods.size(); ++i) {
    modulation *=
        1.0 + options_.amplitude *
                  std::sin(2.0 * std::numbers::pi *
                               static_cast<double>(t_) / options_.periods[i] +
                           phases_[i]);
  }
  ++t_;
  const double rate = options_.base_rate * regime_factor_ * modulation;
  const double noisy =
      rate + rate * options_.noise_fraction * rng_.NextGaussian();
  return std::max(0.0, noisy);
}

}  // namespace stardust
