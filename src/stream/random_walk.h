// The paper's synthetic stream model (Section 6): for a stream x,
//   x[i] = R + Σ_{j=1..i} (u_j − 0.5)
// where R is uniform in [0, 100] and u_j uniform in [0, 1].
#ifndef STARDUST_STREAM_RANDOM_WALK_H_
#define STARDUST_STREAM_RANDOM_WALK_H_

#include <cstdint>

#include "common/rng.h"
#include "stream/stream_source.h"

namespace stardust {

/// Random-walk stream source, identical to the paper's construction.
class RandomWalkSource : public StreamSource {
 public:
  explicit RandomWalkSource(std::uint64_t seed);

  double Next() override;

 private:
  Rng rng_;
  double value_;
};

}  // namespace stardust

#endif  // STARDUST_STREAM_RANDOM_WALK_H_
