#include "transform/sliding_tracker.h"

#include <algorithm>

#include "common/check.h"

namespace stardust {

void SlidingAggregateTracker::MonotonicDeque::Push(std::uint64_t t, double v,
                                                   bool want_max,
                                                   std::uint64_t w) {
  while (!entries.empty() && (want_max ? entries.back().second <= v
                                       : entries.back().second >= v)) {
    entries.pop_back();
  }
  entries.emplace_back(t, v);
  // Drop entries that fell out of the window [t - w + 1, t].
  while (entries.front().first + w <= t) entries.pop_front();
}

SlidingAggregateTracker::SlidingAggregateTracker(
    AggregateKind kind, std::vector<std::size_t> windows)
    : kind_(kind), windows_(std::move(windows)) {
  SD_CHECK(!windows_.empty());
  for (std::size_t w : windows_) SD_CHECK(w >= 1);
  recent_capacity_ = *std::max_element(windows_.begin(), windows_.end());
  const bool needs_max =
      kind_ == AggregateKind::kMax || kind_ == AggregateKind::kSpread;
  const bool needs_min =
      kind_ == AggregateKind::kMin || kind_ == AggregateKind::kSpread;
  if (kind_ == AggregateKind::kSum) {
    sums_.assign(windows_.size(), 0.0);
    recent_.assign(recent_capacity_, 0.0);
  }
  if (needs_max) maxes_.resize(windows_.size());
  if (needs_min) mins_.resize(windows_.size());
}

void SlidingAggregateTracker::Push(double value) {
  const std::uint64_t t = count_;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const std::uint64_t w = windows_[i];
    switch (kind_) {
      case AggregateKind::kSum:
        sums_[i] += value;
        if (t >= w) sums_[i] -= recent_[(t - w) % recent_capacity_];
        break;
      case AggregateKind::kMax:
        maxes_[i].Push(t, value, /*want_max=*/true, w);
        break;
      case AggregateKind::kMin:
        mins_[i].Push(t, value, /*want_max=*/false, w);
        break;
      case AggregateKind::kSpread:
        maxes_[i].Push(t, value, /*want_max=*/true, w);
        mins_[i].Push(t, value, /*want_max=*/false, w);
        break;
    }
  }
  if (kind_ == AggregateKind::kSum) {
    recent_[t % recent_capacity_] = value;
  }
  ++count_;
}

double SlidingAggregateTracker::Current(std::size_t i) const {
  SD_DCHECK(Ready(i));
  switch (kind_) {
    case AggregateKind::kSum:
      return sums_[i];
    case AggregateKind::kMax:
      return maxes_[i].Front();
    case AggregateKind::kMin:
      return mins_[i].Front();
    case AggregateKind::kSpread:
      return maxes_[i].Front() - mins_[i].Front();
  }
  return 0.0;
}

}  // namespace stardust
