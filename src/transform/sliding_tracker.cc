#include "transform/sliding_tracker.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace stardust {

namespace {

/// Neumaier's variant of Kahan summation: folds the rounding error of
/// each add (or evict, term < 0) into a compensation term instead of
/// losing it, so the accumulated drift stays bounded by a few ulps of the
/// window magnitude regardless of how many values have streamed past.
void CompensatedAdd(double* sum, double* comp, double term) {
  const double t = *sum + term;
  if (std::abs(*sum) >= std::abs(term)) {
    *comp += (*sum - t) + term;
  } else {
    *comp += (term - t) + *sum;
  }
  *sum = t;
}

}  // namespace

void SlidingAggregateTracker::MonotonicDeque::Push(std::uint64_t t, double v,
                                                   bool want_max,
                                                   std::uint64_t w) {
  while (!entries.empty() && (want_max ? entries.back().second <= v
                                       : entries.back().second >= v)) {
    entries.pop_back();
  }
  entries.emplace_back(t, v);
  // Drop entries that fell out of the window [t - w + 1, t].
  while (entries.front().first + w <= t) entries.pop_front();
}

SlidingAggregateTracker::SlidingAggregateTracker(
    AggregateKind kind, std::vector<std::size_t> windows)
    : kind_(kind), windows_(std::move(windows)) {
  SD_CHECK(!windows_.empty());
  for (std::size_t w : windows_) SD_CHECK(w >= 1);
  recent_capacity_ = *std::max_element(windows_.begin(), windows_.end());
  const bool needs_max =
      kind_ == AggregateKind::kMax || kind_ == AggregateKind::kSpread;
  const bool needs_min =
      kind_ == AggregateKind::kMin || kind_ == AggregateKind::kSpread;
  if (kind_ == AggregateKind::kSum) {
    sums_.assign(windows_.size(), 0.0);
    comps_.assign(windows_.size(), 0.0);
    recent_.assign(recent_capacity_, 0.0);
  }
  if (needs_max) maxes_.resize(windows_.size());
  if (needs_min) mins_.resize(windows_.size());
}

void SlidingAggregateTracker::Push(double value) {
  const std::uint64_t t = count_;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const std::uint64_t w = windows_[i];
    switch (kind_) {
      case AggregateKind::kSum:
        CompensatedAdd(&sums_[i], &comps_[i], value);
        if (t >= w) {
          CompensatedAdd(&sums_[i], &comps_[i],
                         -recent_[(t - w) % recent_capacity_]);
        }
        break;
      case AggregateKind::kMax:
        maxes_[i].Push(t, value, /*want_max=*/true, w);
        break;
      case AggregateKind::kMin:
        mins_[i].Push(t, value, /*want_max=*/false, w);
        break;
      case AggregateKind::kSpread:
        maxes_[i].Push(t, value, /*want_max=*/true, w);
        mins_[i].Push(t, value, /*want_max=*/false, w);
        break;
    }
  }
  if (kind_ == AggregateKind::kSum) {
    recent_[t % recent_capacity_] = value;
  }
  ++count_;
}

void SlidingAggregateTracker::PushSpan(const double* values, std::size_t n) {
  SD_CHECK(values != nullptr || n == 0);
  if (n == 0) return;
  // Window-major restructuring of n Push calls: windows are independent,
  // and per window the value order is preserved, so every running sum and
  // deque sees the exact operation sequence of the per-value path (bit
  // identical), while each window's state is loaded and stored once per
  // run instead of once per value.
  const std::uint64_t t0 = count_;
  if (kind_ == AggregateKind::kSum) {
    for (std::size_t i = 0; i < windows_.size(); ++i) {
      const std::uint64_t w = windows_[i];
      double sum = sums_[i];
      double comp = comps_[i];
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t t = t0 + k;
        CompensatedAdd(&sum, &comp, values[k]);
        if (t >= w) {
          // The evicted value is inside this run when t - w >= t0 and
          // still in the ring otherwise; ring writes are deferred below,
          // so the ring holds exactly the pre-run values here.
          const std::uint64_t evict = t - w;
          const double old = evict >= t0
                                 ? values[static_cast<std::size_t>(evict - t0)]
                                 : recent_[evict % recent_capacity_];
          CompensatedAdd(&sum, &comp, -old);
        }
      }
      sums_[i] = sum;
      comps_[i] = comp;
    }
    for (std::size_t k = 0; k < n; ++k) {
      recent_[(t0 + k) % recent_capacity_] = values[k];
    }
  } else {
    const bool want_max =
        kind_ == AggregateKind::kMax || kind_ == AggregateKind::kSpread;
    const bool want_min =
        kind_ == AggregateKind::kMin || kind_ == AggregateKind::kSpread;
    for (std::size_t i = 0; i < windows_.size(); ++i) {
      const std::uint64_t w = windows_[i];
      if (want_max) {
        MonotonicDeque& dq = maxes_[i];
        for (std::size_t k = 0; k < n; ++k) {
          dq.Push(t0 + k, values[k], /*want_max=*/true, w);
        }
      }
      if (want_min) {
        MonotonicDeque& dq = mins_[i];
        for (std::size_t k = 0; k < n; ++k) {
          dq.Push(t0 + k, values[k], /*want_max=*/false, w);
        }
      }
    }
  }
  count_ += n;
}

double SlidingAggregateTracker::Current(std::size_t i) const {
  SD_DCHECK(Ready(i));
  switch (kind_) {
    case AggregateKind::kSum:
      return sums_[i] + comps_[i];
    case AggregateKind::kMax:
      return maxes_[i].Front();
    case AggregateKind::kMin:
      return mins_[i].Front();
    case AggregateKind::kSpread:
      return maxes_[i].Front() - mins_[i].Front();
  }
  return 0.0;
}

void SlidingAggregateTracker::SaveTo(Writer* writer) const {
  writer->U8(static_cast<std::uint8_t>(kind_));
  writer->U64(windows_.size());
  for (std::size_t w : windows_) writer->U64(w);
  writer->U64(count_);
  if (kind_ == AggregateKind::kSum) {
    for (std::size_t i = 0; i < windows_.size(); ++i) {
      writer->F64(sums_[i]);
      writer->F64(comps_[i]);
    }
    writer->DoubleVector(recent_);
  }
  const auto save_deques = [writer](const std::vector<MonotonicDeque>& dqs) {
    for (const MonotonicDeque& dq : dqs) {
      writer->U64(dq.entries.size());
      for (const auto& [t, v] : dq.entries) {
        writer->U64(t);
        writer->F64(v);
      }
    }
  };
  save_deques(maxes_);
  save_deques(mins_);
}

Status SlidingAggregateTracker::RestoreFrom(Reader* reader) {
  std::uint8_t kind = 0;
  SD_RETURN_NOT_OK(reader->U8(&kind));
  if (kind != static_cast<std::uint8_t>(kind_)) {
    return Status::InvalidArgument("snapshot tracker kind mismatch");
  }
  std::uint64_t num_windows = 0;
  SD_RETURN_NOT_OK(reader->U64(&num_windows));
  if (num_windows != windows_.size()) {
    return Status::InvalidArgument("snapshot tracker window count mismatch");
  }
  for (std::size_t expected : windows_) {
    std::uint64_t w = 0;
    SD_RETURN_NOT_OK(reader->U64(&w));
    if (w != expected) {
      return Status::InvalidArgument("snapshot tracker window size mismatch");
    }
  }
  SD_RETURN_NOT_OK(reader->U64(&count_));
  if (kind_ == AggregateKind::kSum) {
    for (std::size_t i = 0; i < windows_.size(); ++i) {
      SD_RETURN_NOT_OK(reader->F64(&sums_[i]));
      SD_RETURN_NOT_OK(reader->F64(&comps_[i]));
    }
    SD_RETURN_NOT_OK(reader->DoubleVector(&recent_, recent_capacity_));
    if (recent_.size() != recent_capacity_) {
      return Status::InvalidArgument("snapshot tracker ring size mismatch");
    }
  }
  const auto load_deques = [&](std::vector<MonotonicDeque>* dqs) -> Status {
    for (std::size_t i = 0; i < dqs->size(); ++i) {
      std::uint64_t n = 0;
      SD_RETURN_NOT_OK(reader->U64(&n));
      // A monotonic deque never holds more entries than its window.
      if (n > windows_[i] || n * 16 > reader->remaining()) {
        return Status::InvalidArgument("snapshot tracker deque too large");
      }
      MonotonicDeque& dq = (*dqs)[i];
      dq.entries.clear();
      std::uint64_t prev_t = 0;
      for (std::uint64_t k = 0; k < n; ++k) {
        std::uint64_t t = 0;
        double v = 0.0;
        SD_RETURN_NOT_OK(reader->U64(&t));
        SD_RETURN_NOT_OK(reader->F64(&v));
        if (k > 0 && t <= prev_t) {
          return Status::InvalidArgument(
              "snapshot tracker deque times out of order");
        }
        if (t >= count_) {
          return Status::InvalidArgument(
              "snapshot tracker deque time in the future");
        }
        prev_t = t;
        dq.entries.emplace_back(t, v);
      }
    }
    return Status::OK();
  };
  SD_RETURN_NOT_OK(load_deques(&maxes_));
  SD_RETURN_NOT_OK(load_deques(&mins_));
  return Status::OK();
}

}  // namespace stardust
