// P² online quantile estimation (Jain & Chlamtac, CACM 1985).
//
// Estimates a single quantile of a stream in O(1) space and O(1) time per
// observation with five markers whose heights are adjusted by a piecewise
// parabolic (P²) formula. The window advisor uses three of these (q25,
// q50, q75) for a burst-robust location/scale estimate of each level's
// aggregate distribution.
#ifndef STARDUST_TRANSFORM_QUANTILE_H_
#define STARDUST_TRANSFORM_QUANTILE_H_

#include <array>
#include <cstdint>

namespace stardust {

/// Streaming estimator of the p-quantile (0 < p < 1).
class P2Quantile {
 public:
  explicit P2Quantile(double p);

  void Add(double value);

  std::uint64_t count() const { return count_; }
  /// Current estimate. Exact while count() <= 5; P² approximation after.
  /// Requires count() >= 1.
  double Value() const;

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, int d) const;

  double p_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights q_i
  std::array<double, 5> positions_{}; // actual positions n_i
  std::array<double, 5> desired_{};   // desired positions n'_i
  std::array<double, 5> increments_{};
};

}  // namespace stardust

#endif  // STARDUST_TRANSFORM_QUANTILE_H_
