#include "transform/quantile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace stardust {

P2Quantile::P2Quantile(double p) : p_(p) {
  SD_CHECK(p > 0.0 && p < 1.0);
  desired_ = {1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0};
  increments_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

double P2Quantile::Parabolic(int i, double d) const {
  const double n_prev = positions_[i - 1];
  const double n = positions_[i];
  const double n_next = positions_[i + 1];
  const double q_prev = heights_[i - 1];
  const double q = heights_[i];
  const double q_next = heights_[i + 1];
  return q + d / (n_next - n_prev) *
                 ((n - n_prev + d) * (q_next - q) / (n_next - n) +
                  (n_next - n - d) * (q - q_prev) / (n - n_prev));
}

double P2Quantile::Linear(int i, int d) const {
  return heights_[i] + d * (heights_[i + d] - heights_[i]) /
                           (positions_[i + d] - positions_[i]);
}

void P2Quantile::Add(double value) {
  if (count_ < 5) {
    heights_[count_] = value;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
    }
    return;
  }
  ++count_;

  // Which cell does the observation fall into?
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the inner markers.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const int dir = d >= 0.0 ? 1 : -1;
      const double candidate = Parabolic(i, dir);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = Linear(i, dir);
      }
      positions_[i] += dir;
    }
  }
}

double P2Quantile::Value() const {
  SD_DCHECK(count_ >= 1);
  if (count_ >= 5) return heights_[2];
  // Exact small-sample quantile on the sorted prefix.
  std::array<double, 5> sorted{};
  std::copy(heights_.begin(), heights_.begin() + count_, sorted.begin());
  std::sort(sorted.begin(), sorted.begin() + count_);
  const double rank = p_ * static_cast<double>(count_ - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min<std::size_t>(lo + 1, count_ - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace stardust
