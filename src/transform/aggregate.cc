#include "transform/aggregate.h"

#include <algorithm>

#include "common/check.h"
#include "common/kernels.h"

namespace stardust {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kSpread:
      return "SPREAD";
  }
  return "?";
}

std::size_t AggregateFeatureDims(AggregateKind kind) {
  return kind == AggregateKind::kSpread ? 2 : 1;
}

Point AggregateExactFeature(AggregateKind kind,
                            const std::vector<double>& window) {
  SD_CHECK(!window.empty());
  switch (kind) {
    case AggregateKind::kSum: {
      double sum = 0.0;
      for (double v : window) sum += v;
      return {sum};
    }
    case AggregateKind::kMax:
      return {*std::max_element(window.begin(), window.end())};
    case AggregateKind::kMin:
      return {*std::min_element(window.begin(), window.end())};
    case AggregateKind::kSpread: {
      const auto [mn, mx] = std::minmax_element(window.begin(), window.end());
      return {*mx, *mn};
    }
  }
  return {};
}

void AggregateExactFeatureInto(AggregateKind kind, const double* values,
                               std::size_t count, Mbr* out) {
  SD_CHECK(count > 0);
  // Each branch mirrors AggregateExactFeature exactly through the
  // dispatched reduction kernels (common/kernels.h): reduce_max/min/spread
  // reproduce the tie handling of max_element (first maximum), min_element
  // (first minimum), and minmax_element (first minimum, last maximum) on
  // every backend, so results are bit-identical even for signed-zero ties.
  // kSum keeps the scalar left-to-right loop unless the reassociating fast
  // reduction was explicitly opted into (rounding differs).
  switch (kind) {
    case AggregateKind::kSum: {
      double sum;
      if (kernels::FastReductionsEnabled()) {
        sum = kernels::ReduceSum(values, count);
      } else {
        sum = 0.0;
        for (std::size_t i = 0; i < count; ++i) sum += values[i];
      }
      out->AssignPoint(&sum, 1);
      return;
    }
    case AggregateKind::kMax: {
      const double mx = kernels::ReduceMax(values, count);
      out->AssignPoint(&mx, 1);
      return;
    }
    case AggregateKind::kMin: {
      const double mn = kernels::ReduceMin(values, count);
      out->AssignPoint(&mn, 1);
      return;
    }
    case AggregateKind::kSpread: {
      double feature[2];
      kernels::ReduceSpread(values, count, &feature[0], &feature[1]);
      out->AssignPoint(feature, 2);
      return;
    }
  }
}

void AggregateExactFeatureSpans(AggregateKind kind, const double* values,
                                std::size_t count, double* lo, double* hi) {
  SD_DCHECK(count > 0);
  // Same kernel calls (and therefore the same bits) as
  // AggregateExactFeatureInto, minus the Mbr bookkeeping.
  switch (kind) {
    case AggregateKind::kSum: {
      double sum;
      if (kernels::FastReductionsEnabled()) {
        sum = kernels::ReduceSum(values, count);
      } else {
        sum = 0.0;
        for (std::size_t i = 0; i < count; ++i) sum += values[i];
      }
      lo[0] = hi[0] = sum;
      return;
    }
    case AggregateKind::kMax:
      lo[0] = hi[0] = kernels::ReduceMax(values, count);
      return;
    case AggregateKind::kMin:
      lo[0] = hi[0] = kernels::ReduceMin(values, count);
      return;
    case AggregateKind::kSpread: {
      double mx, mn;
      kernels::ReduceSpread(values, count, &mx, &mn);
      lo[0] = hi[0] = mx;
      lo[1] = hi[1] = mn;
      return;
    }
  }
}

void AggregateMergeExtentSpans(AggregateKind kind, const double* left_lo,
                               const double* left_hi, const double* right_lo,
                               const double* right_hi, double* out_lo,
                               double* out_hi) {
  // Same reads-before-writes discipline and operand order as
  // AggregateMergeExtentsInto, so outputs are bit-identical and aliasing
  // is safe.
  const double llo0 = left_lo[0], lhi0 = left_hi[0];
  const double rlo0 = right_lo[0], rhi0 = right_hi[0];
  switch (kind) {
    case AggregateKind::kSum:
      out_lo[0] = llo0 + rlo0;
      out_hi[0] = lhi0 + rhi0;
      return;
    case AggregateKind::kMax:
      out_lo[0] = std::max(llo0, rlo0);
      out_hi[0] = std::max(lhi0, rhi0);
      return;
    case AggregateKind::kMin:
      out_lo[0] = std::min(llo0, rlo0);
      out_hi[0] = std::min(lhi0, rhi0);
      return;
    case AggregateKind::kSpread: {
      const double llo1 = left_lo[1], lhi1 = left_hi[1];
      const double rlo1 = right_lo[1], rhi1 = right_hi[1];
      out_lo[0] = std::max(llo0, rlo0);
      out_lo[1] = std::min(llo1, rlo1);
      out_hi[0] = std::max(lhi0, rhi0);
      out_hi[1] = std::min(lhi1, rhi1);
      return;
    }
  }
}

void AggregateMergeExtentsInto(AggregateKind kind, const Mbr& left,
                               const Mbr& right, Mbr* out) {
  SD_DCHECK(!left.empty() && !right.empty());
  SD_DCHECK(left.dims() == AggregateFeatureDims(kind));
  SD_DCHECK(right.dims() == AggregateFeatureDims(kind));
  // Read everything before writing so `out` may alias either input.
  const double llo0 = left.lo(0), lhi0 = left.hi(0);
  const double rlo0 = right.lo(0), rhi0 = right.hi(0);
  if (kind == AggregateKind::kSpread) {
    const double llo1 = left.lo(1), lhi1 = left.hi(1);
    const double rlo1 = right.lo(1), rhi1 = right.hi(1);
    const double lo[2] = {std::max(llo0, rlo0), std::min(llo1, rlo1)};
    const double hi[2] = {std::max(lhi0, rhi0), std::min(lhi1, rhi1)};
    out->mutable_lo().assign(lo, lo + 2);
    out->mutable_hi().assign(hi, hi + 2);
    return;
  }
  double lo = 0.0, hi = 0.0;
  switch (kind) {
    case AggregateKind::kSum:
      lo = llo0 + rlo0;
      hi = lhi0 + rhi0;
      break;
    case AggregateKind::kMax:
      lo = std::max(llo0, rlo0);
      hi = std::max(lhi0, rhi0);
      break;
    case AggregateKind::kMin:
      lo = std::min(llo0, rlo0);
      hi = std::min(lhi0, rhi0);
      break;
    case AggregateKind::kSpread:
      break;  // handled above
  }
  out->mutable_lo().assign(1, lo);
  out->mutable_hi().assign(1, hi);
}

Point AggregateMergeFeatures(AggregateKind kind, const Point& left,
                             const Point& right) {
  SD_DCHECK(left.size() == AggregateFeatureDims(kind));
  SD_DCHECK(right.size() == AggregateFeatureDims(kind));
  switch (kind) {
    case AggregateKind::kSum:
      return {left[0] + right[0]};
    case AggregateKind::kMax:
      return {std::max(left[0], right[0])};
    case AggregateKind::kMin:
      return {std::min(left[0], right[0])};
    case AggregateKind::kSpread:
      return {std::max(left[0], right[0]), std::min(left[1], right[1])};
  }
  return {};
}

Mbr AggregateMergeExtents(AggregateKind kind, const Mbr& left,
                          const Mbr& right) {
  SD_DCHECK(!left.empty() && !right.empty());
  SD_DCHECK(left.dims() == AggregateFeatureDims(kind));
  SD_DCHECK(right.dims() == AggregateFeatureDims(kind));
  switch (kind) {
    case AggregateKind::kSum:
      return Mbr({left.lo(0) + right.lo(0)}, {left.hi(0) + right.hi(0)});
    case AggregateKind::kMax:
      return Mbr({std::max(left.lo(0), right.lo(0))},
                 {std::max(left.hi(0), right.hi(0))});
    case AggregateKind::kMin:
      return Mbr({std::min(left.lo(0), right.lo(0))},
                 {std::min(left.hi(0), right.hi(0))});
    case AggregateKind::kSpread:
      return Mbr({std::max(left.lo(0), right.lo(0)),
                  std::min(left.lo(1), right.lo(1))},
                 {std::max(left.hi(0), right.hi(0)),
                  std::min(left.hi(1), right.hi(1))});
  }
  return Mbr();
}

double AggregateScalar(AggregateKind kind, const Point& feature) {
  SD_DCHECK(feature.size() == AggregateFeatureDims(kind));
  if (kind == AggregateKind::kSpread) return feature[0] - feature[1];
  return feature[0];
}

ScalarInterval AggregateScalarBound(AggregateKind kind, const Mbr& extent) {
  SD_DCHECK(!extent.empty());
  SD_DCHECK(extent.dims() == AggregateFeatureDims(kind));
  if (kind == AggregateKind::kSpread) {
    // max ∈ [lo0, hi0], min ∈ [lo1, hi1] ⇒ spread ∈ [lo0 − hi1, hi0 − lo1].
    return {std::max(0.0, extent.lo(0) - extent.hi(1)),
            extent.hi(0) - extent.lo(1)};
  }
  return {extent.lo(0), extent.hi(0)};
}

}  // namespace stardust
