#include "transform/aggregate.h"

#include <algorithm>

#include "common/check.h"

namespace stardust {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kSpread:
      return "SPREAD";
  }
  return "?";
}

std::size_t AggregateFeatureDims(AggregateKind kind) {
  return kind == AggregateKind::kSpread ? 2 : 1;
}

Point AggregateExactFeature(AggregateKind kind,
                            const std::vector<double>& window) {
  SD_CHECK(!window.empty());
  switch (kind) {
    case AggregateKind::kSum: {
      double sum = 0.0;
      for (double v : window) sum += v;
      return {sum};
    }
    case AggregateKind::kMax:
      return {*std::max_element(window.begin(), window.end())};
    case AggregateKind::kMin:
      return {*std::min_element(window.begin(), window.end())};
    case AggregateKind::kSpread: {
      const auto [mn, mx] = std::minmax_element(window.begin(), window.end());
      return {*mx, *mn};
    }
  }
  return {};
}

Point AggregateMergeFeatures(AggregateKind kind, const Point& left,
                             const Point& right) {
  SD_DCHECK(left.size() == AggregateFeatureDims(kind));
  SD_DCHECK(right.size() == AggregateFeatureDims(kind));
  switch (kind) {
    case AggregateKind::kSum:
      return {left[0] + right[0]};
    case AggregateKind::kMax:
      return {std::max(left[0], right[0])};
    case AggregateKind::kMin:
      return {std::min(left[0], right[0])};
    case AggregateKind::kSpread:
      return {std::max(left[0], right[0]), std::min(left[1], right[1])};
  }
  return {};
}

Mbr AggregateMergeExtents(AggregateKind kind, const Mbr& left,
                          const Mbr& right) {
  SD_DCHECK(!left.empty() && !right.empty());
  SD_DCHECK(left.dims() == AggregateFeatureDims(kind));
  SD_DCHECK(right.dims() == AggregateFeatureDims(kind));
  switch (kind) {
    case AggregateKind::kSum:
      return Mbr({left.lo(0) + right.lo(0)}, {left.hi(0) + right.hi(0)});
    case AggregateKind::kMax:
      return Mbr({std::max(left.lo(0), right.lo(0))},
                 {std::max(left.hi(0), right.hi(0))});
    case AggregateKind::kMin:
      return Mbr({std::min(left.lo(0), right.lo(0))},
                 {std::min(left.hi(0), right.hi(0))});
    case AggregateKind::kSpread:
      return Mbr({std::max(left.lo(0), right.lo(0)),
                  std::min(left.lo(1), right.lo(1))},
                 {std::max(left.hi(0), right.hi(0)),
                  std::min(left.hi(1), right.hi(1))});
  }
  return Mbr();
}

double AggregateScalar(AggregateKind kind, const Point& feature) {
  SD_DCHECK(feature.size() == AggregateFeatureDims(kind));
  if (kind == AggregateKind::kSpread) return feature[0] - feature[1];
  return feature[0];
}

ScalarInterval AggregateScalarBound(AggregateKind kind, const Mbr& extent) {
  SD_DCHECK(!extent.empty());
  SD_DCHECK(extent.dims() == AggregateFeatureDims(kind));
  if (kind == AggregateKind::kSpread) {
    // max ∈ [lo0, hi0], min ∈ [lo1, hi1] ⇒ spread ∈ [lo0 − hi1, hi0 − lo1].
    return {std::max(0.0, extent.lo(0) - extent.hi(1)),
            extent.hi(0) - extent.lo(1)};
  }
  return {extent.lo(0), extent.hi(0)};
}

}  // namespace stardust
