#include "transform/aggregate.h"

#include <algorithm>

#include "common/check.h"

namespace stardust {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kSpread:
      return "SPREAD";
  }
  return "?";
}

std::size_t AggregateFeatureDims(AggregateKind kind) {
  return kind == AggregateKind::kSpread ? 2 : 1;
}

Point AggregateExactFeature(AggregateKind kind,
                            const std::vector<double>& window) {
  SD_CHECK(!window.empty());
  switch (kind) {
    case AggregateKind::kSum: {
      double sum = 0.0;
      for (double v : window) sum += v;
      return {sum};
    }
    case AggregateKind::kMax:
      return {*std::max_element(window.begin(), window.end())};
    case AggregateKind::kMin:
      return {*std::min_element(window.begin(), window.end())};
    case AggregateKind::kSpread: {
      const auto [mn, mx] = std::minmax_element(window.begin(), window.end());
      return {*mx, *mn};
    }
  }
  return {};
}

void AggregateExactFeatureInto(AggregateKind kind, const double* values,
                               std::size_t count, Mbr* out) {
  SD_CHECK(count > 0);
  // Each branch mirrors AggregateExactFeature exactly: kSum adds in the
  // same left-to-right order; the comparison forms reproduce the tie
  // handling of max_element (first maximum), min_element (first minimum),
  // and minmax_element (first minimum, last maximum), so results are
  // bit-identical even for signed-zero ties.
  switch (kind) {
    case AggregateKind::kSum: {
      double sum = 0.0;
      for (std::size_t i = 0; i < count; ++i) sum += values[i];
      out->AssignPoint(&sum, 1);
      return;
    }
    case AggregateKind::kMax: {
      double mx = values[0];
      for (std::size_t i = 1; i < count; ++i) {
        if (mx < values[i]) mx = values[i];
      }
      out->AssignPoint(&mx, 1);
      return;
    }
    case AggregateKind::kMin: {
      double mn = values[0];
      for (std::size_t i = 1; i < count; ++i) {
        if (values[i] < mn) mn = values[i];
      }
      out->AssignPoint(&mn, 1);
      return;
    }
    case AggregateKind::kSpread: {
      double mx = values[0];
      double mn = values[0];
      for (std::size_t i = 1; i < count; ++i) {
        const double v = values[i];
        if (!(v < mx)) mx = v;
        if (v < mn) mn = v;
      }
      const double feature[2] = {mx, mn};
      out->AssignPoint(feature, 2);
      return;
    }
  }
}

void AggregateMergeExtentsInto(AggregateKind kind, const Mbr& left,
                               const Mbr& right, Mbr* out) {
  SD_DCHECK(!left.empty() && !right.empty());
  SD_DCHECK(left.dims() == AggregateFeatureDims(kind));
  SD_DCHECK(right.dims() == AggregateFeatureDims(kind));
  // Read everything before writing so `out` may alias either input.
  const double llo0 = left.lo(0), lhi0 = left.hi(0);
  const double rlo0 = right.lo(0), rhi0 = right.hi(0);
  if (kind == AggregateKind::kSpread) {
    const double llo1 = left.lo(1), lhi1 = left.hi(1);
    const double rlo1 = right.lo(1), rhi1 = right.hi(1);
    const double lo[2] = {std::max(llo0, rlo0), std::min(llo1, rlo1)};
    const double hi[2] = {std::max(lhi0, rhi0), std::min(lhi1, rhi1)};
    out->mutable_lo().assign(lo, lo + 2);
    out->mutable_hi().assign(hi, hi + 2);
    return;
  }
  double lo = 0.0, hi = 0.0;
  switch (kind) {
    case AggregateKind::kSum:
      lo = llo0 + rlo0;
      hi = lhi0 + rhi0;
      break;
    case AggregateKind::kMax:
      lo = std::max(llo0, rlo0);
      hi = std::max(lhi0, rhi0);
      break;
    case AggregateKind::kMin:
      lo = std::min(llo0, rlo0);
      hi = std::min(lhi0, rhi0);
      break;
    case AggregateKind::kSpread:
      break;  // handled above
  }
  out->mutable_lo().assign(1, lo);
  out->mutable_hi().assign(1, hi);
}

Point AggregateMergeFeatures(AggregateKind kind, const Point& left,
                             const Point& right) {
  SD_DCHECK(left.size() == AggregateFeatureDims(kind));
  SD_DCHECK(right.size() == AggregateFeatureDims(kind));
  switch (kind) {
    case AggregateKind::kSum:
      return {left[0] + right[0]};
    case AggregateKind::kMax:
      return {std::max(left[0], right[0])};
    case AggregateKind::kMin:
      return {std::min(left[0], right[0])};
    case AggregateKind::kSpread:
      return {std::max(left[0], right[0]), std::min(left[1], right[1])};
  }
  return {};
}

Mbr AggregateMergeExtents(AggregateKind kind, const Mbr& left,
                          const Mbr& right) {
  SD_DCHECK(!left.empty() && !right.empty());
  SD_DCHECK(left.dims() == AggregateFeatureDims(kind));
  SD_DCHECK(right.dims() == AggregateFeatureDims(kind));
  switch (kind) {
    case AggregateKind::kSum:
      return Mbr({left.lo(0) + right.lo(0)}, {left.hi(0) + right.hi(0)});
    case AggregateKind::kMax:
      return Mbr({std::max(left.lo(0), right.lo(0))},
                 {std::max(left.hi(0), right.hi(0))});
    case AggregateKind::kMin:
      return Mbr({std::min(left.lo(0), right.lo(0))},
                 {std::min(left.hi(0), right.hi(0))});
    case AggregateKind::kSpread:
      return Mbr({std::max(left.lo(0), right.lo(0)),
                  std::min(left.lo(1), right.lo(1))},
                 {std::max(left.hi(0), right.hi(0)),
                  std::min(left.hi(1), right.hi(1))});
  }
  return Mbr();
}

double AggregateScalar(AggregateKind kind, const Point& feature) {
  SD_DCHECK(feature.size() == AggregateFeatureDims(kind));
  if (kind == AggregateKind::kSpread) return feature[0] - feature[1];
  return feature[0];
}

ScalarInterval AggregateScalarBound(AggregateKind kind, const Mbr& extent) {
  SD_DCHECK(!extent.empty());
  SD_DCHECK(extent.dims() == AggregateFeatureDims(kind));
  if (kind == AggregateKind::kSpread) {
    // max ∈ [lo0, hi0], min ∈ [lo1, hi1] ⇒ spread ∈ [lo0 − hi1, hi0 − lo1].
    return {std::max(0.0, extent.lo(0) - extent.hi(1)),
            extent.hi(0) - extent.lo(1)};
  }
  return {extent.lo(0), extent.hi(0)};
}

}  // namespace stardust
