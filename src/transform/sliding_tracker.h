// Exact sliding-window aggregates maintained incrementally.
//
// O(1) amortized per arrival per window via running sums (SUM) and
// monotonic deques (MAX / MIN / SPREAD). Used as the ground-truth oracle
// when measuring precision (the "linear scan" the paper's baselines are
// compared against) and as the verification fast path of the continuous
// aggregate monitor.
#ifndef STARDUST_TRANSFORM_SLIDING_TRACKER_H_
#define STARDUST_TRANSFORM_SLIDING_TRACKER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/aligned.h"
#include "common/serialize.h"
#include "common/status.h"
#include "transform/aggregate.h"

namespace stardust {

/// Tracks the exact aggregate of the most recent w values, for a set of
/// window sizes, over one stream.
class SlidingAggregateTracker {
 public:
  SlidingAggregateTracker(AggregateKind kind,
                          std::vector<std::size_t> windows);

  void Push(double value);

  /// Consumes `n` values in arrival order. Equivalent to calling Push on
  /// each element; batch form for the engine feature pipeline.
  void PushSpan(const double* values, std::size_t n);

  std::size_t num_windows() const { return windows_.size(); }
  std::size_t window(std::size_t i) const { return windows_[i]; }
  /// Number of values consumed.
  std::uint64_t now() const { return count_; }
  /// True once at least window(i) values have been consumed.
  bool Ready(std::size_t i) const { return count_ >= windows_[i]; }
  /// Exact aggregate over the last window(i) values. Requires Ready(i).
  double Current(std::size_t i) const;

  /// Snapshot support (core/snapshot.cc): serializes the full tracker
  /// state — counts, compensated sums, the recent-value ring, and the
  /// monotonic deques — so a restored tracker continues bit-exactly.
  void SaveTo(Writer* writer) const;
  /// Restores a serialized tracker. The instance must have been
  /// constructed with the same kind and window set the snapshot was taken
  /// with; anything else (or a structurally corrupt payload) is rejected.
  Status RestoreFrom(Reader* reader);

 private:
  struct MonotonicDeque {
    /// Indices into the global time axis; values kept monotonic.
    std::deque<std::pair<std::uint64_t, double>> entries;
    void Push(std::uint64_t t, double v, bool want_max, std::uint64_t w);
    double Front() const { return entries.front().second; }
  };

  AggregateKind kind_;
  std::vector<std::size_t> windows_;
  std::uint64_t count_ = 0;
  /// Ring of the last max(windows) values (for running sums). 64-byte
  /// aligned so PushSpan's kernel reads never straddle a cache line.
  AlignedVector<double> recent_;
  std::size_t recent_capacity_ = 0;
  /// Per-window running sums with Neumaier compensation (kSum): the true
  /// window sum is sums_[i] + comps_[i]. Subtract-on-evict alone loses one
  /// rounding error per arrival, which drifts over millions of appends;
  /// the compensation term keeps the error bounded independent of stream
  /// length (tested to 10M appends in tests/sliding_tracker_test.cc).
  std::vector<double> sums_;
  std::vector<double> comps_;
  std::vector<MonotonicDeque> maxes_;         // per window (kMax / kSpread)
  std::vector<MonotonicDeque> mins_;          // per window (kMin / kSpread)
};

}  // namespace stardust

#endif  // STARDUST_TRANSFORM_SLIDING_TRACKER_H_
