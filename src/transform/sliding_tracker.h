// Exact sliding-window aggregates maintained incrementally.
//
// O(1) amortized per arrival per window via running sums (SUM) and
// monotonic deques (MAX / MIN / SPREAD). Used as the ground-truth oracle
// when measuring precision (the "linear scan" the paper's baselines are
// compared against) and as the verification fast path of the continuous
// aggregate monitor.
#ifndef STARDUST_TRANSFORM_SLIDING_TRACKER_H_
#define STARDUST_TRANSFORM_SLIDING_TRACKER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "transform/aggregate.h"

namespace stardust {

/// Tracks the exact aggregate of the most recent w values, for a set of
/// window sizes, over one stream.
class SlidingAggregateTracker {
 public:
  SlidingAggregateTracker(AggregateKind kind,
                          std::vector<std::size_t> windows);

  void Push(double value);

  std::size_t num_windows() const { return windows_.size(); }
  std::size_t window(std::size_t i) const { return windows_[i]; }
  /// Number of values consumed.
  std::uint64_t now() const { return count_; }
  /// True once at least window(i) values have been consumed.
  bool Ready(std::size_t i) const { return count_ >= windows_[i]; }
  /// Exact aggregate over the last window(i) values. Requires Ready(i).
  double Current(std::size_t i) const;

 private:
  struct MonotonicDeque {
    /// Indices into the global time axis; values kept monotonic.
    std::deque<std::pair<std::uint64_t, double>> entries;
    void Push(std::uint64_t t, double v, bool want_max, std::uint64_t w);
    double Front() const { return entries.front().second; }
  };

  AggregateKind kind_;
  std::vector<std::size_t> windows_;
  std::uint64_t count_ = 0;
  /// Ring of the last max(windows) values (for running sums).
  std::vector<double> recent_;
  std::size_t recent_capacity_ = 0;
  std::vector<double> sums_;                  // per window (kSum)
  std::vector<MonotonicDeque> maxes_;         // per window (kMax / kSpread)
  std::vector<MonotonicDeque> mins_;          // per window (kMin / kSpread)
};

}  // namespace stardust

#endif  // STARDUST_TRANSFORM_SLIDING_TRACKER_H_
