// Incremental regression and moment tracking.
//
// The paper's concluding remarks propose "fitting incremental regression
// models in our framework in order to enable parameter estimation, e.g.,
// determining the right window sizes to monitor" (Section 7). This module
// provides the numeric substrate: numerically stable online moments
// (Welford) and online simple linear regression over (x, y) pairs, both
// O(1) per update. core/window_advisor.h builds the window-selection
// logic on top.
#ifndef STARDUST_TRANSFORM_REGRESSION_H_
#define STARDUST_TRANSFORM_REGRESSION_H_

#include <cstdint>

namespace stardust {

/// Online mean / variance (Welford's algorithm).
class OnlineMoments {
 public:
  void Add(double value);

  std::uint64_t count() const { return count_; }
  /// Requires count() >= 1.
  double Mean() const;
  /// Population variance; requires count() >= 1.
  double Variance() const;
  /// Population standard deviation.
  double StdDev() const;
  /// Coefficient of variation σ/|μ|; 0 when the mean is ~0.
  double CoefficientOfVariation() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Online simple linear regression y ≈ intercept + slope·x, maintained
/// from co-moments in O(1) per observation (numerically stable centered
/// updates).
class OnlineLinearRegression {
 public:
  void Add(double x, double y);

  std::uint64_t count() const { return count_; }
  /// Least-squares slope; 0 when x has no variance. Requires count() >= 2
  /// for a meaningful value.
  double Slope() const;
  double Intercept() const;
  /// Coefficient of determination R² in [0, 1]; 0 when degenerate.
  double R2() const;
  /// Prediction at x.
  double Predict(double x) const;

 private:
  std::uint64_t count_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double m2_x_ = 0.0;   // Σ (x - μx)²
  double m2_y_ = 0.0;   // Σ (y - μy)²
  double co_xy_ = 0.0;  // Σ (x - μx)(y - μy)
};

}  // namespace stardust

#endif  // STARDUST_TRANSFORM_REGRESSION_H_
