#include "transform/regression.h"

#include <cmath>

#include "common/check.h"

namespace stardust {

void OnlineMoments::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double OnlineMoments::Mean() const {
  SD_DCHECK(count_ >= 1);
  return mean_;
}

double OnlineMoments::Variance() const {
  SD_DCHECK(count_ >= 1);
  return m2_ / static_cast<double>(count_);
}

double OnlineMoments::StdDev() const { return std::sqrt(Variance()); }

double OnlineMoments::CoefficientOfVariation() const {
  const double mean = std::abs(Mean());
  if (mean < 1e-12) return 0.0;
  return StdDev() / mean;
}

void OnlineLinearRegression::Add(double x, double y) {
  ++count_;
  const double n = static_cast<double>(count_);
  const double dx = x - mean_x_;
  const double dy = y - mean_y_;
  mean_x_ += dx / n;
  mean_y_ += dy / n;
  m2_x_ += dx * (x - mean_x_);
  m2_y_ += dy * (y - mean_y_);
  co_xy_ += dx * (y - mean_y_);
}

double OnlineLinearRegression::Slope() const {
  if (m2_x_ <= 0.0) return 0.0;
  return co_xy_ / m2_x_;
}

double OnlineLinearRegression::Intercept() const {
  return mean_y_ - Slope() * mean_x_;
}

double OnlineLinearRegression::R2() const {
  if (m2_x_ <= 0.0 || m2_y_ <= 0.0) return 0.0;
  const double r = co_xy_ / std::sqrt(m2_x_ * m2_y_);
  return r * r;
}

double OnlineLinearRegression::Predict(double x) const {
  return Intercept() + Slope() * x;
}

}  // namespace stardust
