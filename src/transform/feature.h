// Window normalizations and the DWT feature extractor shared by the
// pattern and correlation paths.
//
// Pattern queries normalize to the unit hyper-sphere (Equation 2):
//   x̂[i] = x[i] / (√w · R_max)
// Correlation queries z-normalize (Equation 3):
//   x̂[i] = (x[i] − μ) / ‖x − μ‖₂
// and the Pearson correlation coefficient between two windows is
//   corr(x, y) = 1 − L2²(x̂, ŷ) / 2.
#ifndef STARDUST_TRANSFORM_FEATURE_H_
#define STARDUST_TRANSFORM_FEATURE_H_

#include <cstddef>
#include <vector>

#include "geom/mbr.h"

namespace stardust {

/// How a window is normalized before feature extraction.
enum class Normalization {
  kNone,
  kUnitSphere,  // Equation 2 (pattern queries)
  kZNorm,       // Equation 3 (correlation queries)
};

/// Equation 2. Requires r_max > 0 and a non-empty window.
std::vector<double> NormalizeUnitSphere(const std::vector<double>& window,
                                        double r_max);

/// Equation 3. A constant window (zero deviation) maps to the zero vector.
std::vector<double> ZNormalize(const std::vector<double>& window);

/// Span form of ZNormalize for callers that cache z-normalization state
/// (engine/feature_pipeline): writes the z-normalized window to `dst`
/// (length n, may alias `src`) and, when non-null, the window mean to
/// `mean_out` and ‖x − μ‖₂² to `norm2_out`. Numerics match ZNormalize
/// bit-for-bit.
void ZNormalizeTo(const double* src, std::size_t n, double* dst,
                  double* mean_out, double* norm2_out);

/// Applies the requested normalization.
std::vector<double> NormalizeWindow(const std::vector<double>& window,
                                    Normalization norm, double r_max);

/// Allocation-free variants for the maintenance hot path.
void NormalizeUnitSphereInPlace(std::vector<double>* window, double r_max);
void ZNormalizeInPlace(std::vector<double>* window);
void NormalizeWindowInPlace(std::vector<double>* window, Normalization norm,
                            double r_max);

/// Pearson correlation from the squared L2 distance of the z-normalized
/// windows: corr = 1 − d²/2 (Section 2.4).
double CorrelationFromDist2(double dist2);

/// Squared L2 distance threshold corresponding to a minimum correlation:
/// d² = 2 · (1 − min_corr); d = √(2(1 − min_corr)).
double DistanceForMinCorrelation(double min_corr);

/// Exact Pearson correlation coefficient between two equal-length windows.
/// Returns 0 if either window is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// DWT feature of a (normalized) window: the length-f Haar approximation
/// vector (see dwt/haar.h for why this equals the paper's "first f DWT
/// coefficients" up to a unitary basis change). Requires |window| and f
/// powers of two with f <= |window|.
Point DwtFeature(const std::vector<double>& window, std::size_t f);

}  // namespace stardust

#endif  // STARDUST_TRANSFORM_FEATURE_H_
