#include "transform/feature.h"

#include <cmath>

#include "common/check.h"
#include "common/kernels.h"
#include "dwt/haar.h"

namespace stardust {

std::vector<double> NormalizeUnitSphere(const std::vector<double>& window,
                                        double r_max) {
  SD_CHECK(!window.empty());
  SD_CHECK(r_max > 0.0);
  const double scale =
      1.0 / (std::sqrt(static_cast<double>(window.size())) * r_max);
  std::vector<double> out(window.size());
  for (std::size_t i = 0; i < window.size(); ++i) out[i] = window[i] * scale;
  return out;
}

std::vector<double> ZNormalize(const std::vector<double>& window) {
  SD_CHECK(!window.empty());
  std::vector<double> out(window.size());
  ZNormalizeTo(window.data(), window.size(), out.data(), nullptr, nullptr);
  return out;
}

void ZNormalizeTo(const double* src, std::size_t n, double* dst,
                  double* mean_out, double* norm2_out) {
  SD_CHECK(src != nullptr && dst != nullptr);
  SD_CHECK(n > 0);
  // Moments are order-sensitive sums: the scalar left-to-right loops stay
  // the default; the vectorized znorm_moments kernel only engages behind
  // the explicit fast-reduction opt-in (rounding differs — see
  // common/kernels.h). The apply step is elementwise and dispatches
  // unconditionally (bit-identical on every backend).
  double mean = 0.0;
  double norm2 = 0.0;
  if (kernels::FastReductionsEnabled()) {
    kernels::ZNormMoments(src, n, &mean, &norm2);
  } else {
    for (std::size_t i = 0; i < n; ++i) mean += src[i];
    mean /= static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = src[i] - mean;
      norm2 += d * d;
    }
  }
  if (mean_out != nullptr) *mean_out = mean;
  if (norm2_out != nullptr) *norm2_out = norm2;
  if (norm2 <= 0.0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0.0;
    return;
  }
  const double scale = 1.0 / std::sqrt(norm2);
  kernels::ZNormApply(src, n, mean, scale, dst);
}

std::vector<double> NormalizeWindow(const std::vector<double>& window,
                                    Normalization norm, double r_max) {
  switch (norm) {
    case Normalization::kNone:
      return window;
    case Normalization::kUnitSphere:
      return NormalizeUnitSphere(window, r_max);
    case Normalization::kZNorm:
      return ZNormalize(window);
  }
  return window;
}

void NormalizeUnitSphereInPlace(std::vector<double>* window, double r_max) {
  SD_CHECK(!window->empty());
  SD_CHECK(r_max > 0.0);
  const double scale =
      1.0 / (std::sqrt(static_cast<double>(window->size())) * r_max);
  for (double& v : *window) v *= scale;
}

void ZNormalizeInPlace(std::vector<double>* window) {
  SD_CHECK(!window->empty());
  const std::size_t n = window->size();
  double mean = 0.0;
  for (double v : *window) mean += v;
  mean /= static_cast<double>(n);
  double norm2 = 0.0;
  for (double v : *window) {
    const double d = v - mean;
    norm2 += d * d;
  }
  if (norm2 <= 0.0) {
    for (double& v : *window) v = 0.0;
    return;
  }
  const double scale = 1.0 / std::sqrt(norm2);
  for (double& v : *window) v = (v - mean) * scale;
}

void NormalizeWindowInPlace(std::vector<double>* window, Normalization norm,
                            double r_max) {
  switch (norm) {
    case Normalization::kNone:
      return;
    case Normalization::kUnitSphere:
      NormalizeUnitSphereInPlace(window, r_max);
      return;
    case Normalization::kZNorm:
      ZNormalizeInPlace(window);
      return;
  }
}

double CorrelationFromDist2(double dist2) { return 1.0 - dist2 / 2.0; }

double DistanceForMinCorrelation(double min_corr) {
  SD_CHECK(min_corr <= 1.0);
  return std::sqrt(2.0 * (1.0 - min_corr));
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  SD_CHECK(x.size() == y.size());
  SD_CHECK(!x.empty());
  const std::vector<double> zx = ZNormalize(x);
  const std::vector<double> zy = ZNormalize(y);
  double dot = 0.0;
  bool x_const = true, y_const = true;
  for (std::size_t i = 0; i < x.size(); ++i) {
    dot += zx[i] * zy[i];
    x_const = x_const && zx[i] == 0.0;
    y_const = y_const && zy[i] == 0.0;
  }
  if (x_const || y_const) return 0.0;
  return dot;
}

Point DwtFeature(const std::vector<double>& window, std::size_t f) {
  return HaarApprox(window, f);
}

}  // namespace stardust
