// Incremental aggregate transforms: SUM, MAX, MIN, SPREAD (= MAX − MIN).
//
// Lemma 4.1: the exact aggregate feature of a window is computable from the
// features of its two halves. Lemma 4.2: when the halves are only known as
// MBR extents, the merged extent still brackets the true feature. SPREAD is
// tracked as the 2-dimensional feature (MAX, MIN) and reduced to a scalar
// (or a scalar interval) only when a query needs the volatility value —
// exactly the paper's "MAX-MIN for volatility detection" (Section 4).
#ifndef STARDUST_TRANSFORM_AGGREGATE_H_
#define STARDUST_TRANSFORM_AGGREGATE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "geom/mbr.h"

namespace stardust {

/// Aggregate function F of Section 2.2.
enum class AggregateKind {
  kSum,
  kMax,
  kMin,
  kSpread,
};

const char* AggregateKindName(AggregateKind kind);

/// Closed scalar interval [lo, hi]; the approximate answer of Algorithm 2.
struct ScalarInterval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Dimensionality of the aggregate feature vector: 1 for SUM/MAX/MIN,
/// 2 for SPREAD (stored as [max, min]).
std::size_t AggregateFeatureDims(AggregateKind kind);

/// Exact feature of a raw window (Lemma 4.1 base case).
Point AggregateExactFeature(AggregateKind kind,
                            const std::vector<double>& window);

/// Lemma 4.1: exact feature of a window from the features of its two
/// (equal-length, adjacent, left-then-right) halves.
Point AggregateMergeFeatures(AggregateKind kind, const Point& left,
                             const Point& right);

/// Lemma 4.2: bracketing extent of a window's feature from the extents
/// containing its two halves' features.
Mbr AggregateMergeExtents(AggregateKind kind, const Mbr& left,
                          const Mbr& right);

/// Allocation-free span form of AggregateExactFeature for the batched
/// maintenance path: writes the degenerate extent of the exact feature of
/// window [values, values + count) into `out`, reusing its storage.
/// Evaluation order (and hence every rounding and tie-break) matches
/// AggregateExactFeature bit-for-bit.
void AggregateExactFeatureInto(AggregateKind kind, const double* values,
                               std::size_t count, Mbr* out);

/// Raw-span form of AggregateExactFeatureInto for the level-major run
/// path: the degenerate extent is written into lo/hi spans of
/// AggregateFeatureDims(kind) values (lo == hi). Same reduction kernels,
/// bit-identical values.
void AggregateExactFeatureSpans(AggregateKind kind, const double* values,
                                std::size_t count, double* lo, double* hi);

/// Raw-span form of AggregateMergeExtentsInto for the level-major run
/// path: merges the extents given as lo/hi spans (dims values each) into
/// out_lo/out_hi, which may alias the inputs. Bit-identical to
/// AggregateMergeExtentsInto on the materialized boxes.
void AggregateMergeExtentSpans(AggregateKind kind, const double* left_lo,
                               const double* left_hi, const double* right_lo,
                               const double* right_hi, double* out_lo,
                               double* out_hi);

/// Allocation-free form of AggregateMergeExtents. `out` may alias `left`
/// or `right`; results are bit-identical to AggregateMergeExtents.
void AggregateMergeExtentsInto(AggregateKind kind, const Mbr& left,
                               const Mbr& right, Mbr* out);

/// The scalar monitored quantity of a feature: the value itself for
/// SUM/MAX/MIN, max − min for SPREAD.
double AggregateScalar(AggregateKind kind, const Point& feature);

/// Scalar interval guaranteed to contain AggregateScalar of every feature
/// inside `extent`. For SPREAD the lower end is clamped at 0.
ScalarInterval AggregateScalarBound(AggregateKind kind, const Mbr& extent);

}  // namespace stardust

#endif  // STARDUST_TRANSFORM_AGGREGATE_H_
