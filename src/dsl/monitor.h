// Declarative monitor definitions — the unit of the DSL (docs/DSL.md).
//
// A monitor names a measure over a sliding window, an assessment range
// the measure must stay inside (the Stream DaQ "assess" clause), and an
// optional alert rate limit. Measures cover both the engine's exact
// aggregates (sum / max / min / spread — whichever the fleet cores
// maintain) and the approximate sketch measures of src/sketch (distinct /
// heavy_hitters / quantile). CompileMonitor turns a definition into the
// QuerySpec registered with the live QueryRegistry; after that the DSL is
// out of the loop — evaluation runs the compiled plan, never this text.
#ifndef STARDUST_DSL_MONITOR_H_
#define STARDUST_DSL_MONITOR_H_

#include <cstdint>
#include <string>

#include "dsl/text.h"
#include "query/query_spec.h"
#include "transform/aggregate.h"

namespace stardust::dsl {

/// One parsed `monitors:` entry. Sketch knobs keep SketchConfig's
/// defaults and only apply to the matching measure.
struct MonitorDef {
  std::string name;
  /// "sum" | "max" | "min" | "spread" | "distinct" | "heavy_hitters" |
  /// "quantile".
  std::string measure;
  std::size_t window = 0;
  AssessRange assess;
  /// Alert rate limit (QuerySpec::WithAlertRate); 0 = unlimited.
  double alert_rate = 0.0;
  std::uint64_t alert_burst = 0;
  // Sketch measure knobs (sketch/measure.h SketchConfig).
  std::size_t buckets = 4;
  std::size_t precision = 12;  // HLL registers = 2^precision
  double epsilon = 0.01;       // CountMin over-count bound
  std::size_t depth = 4;
  double phi = 0.05;           // heavy-hitter frequency threshold
  std::size_t candidates = 32;
  double q = 0.5;              // quantile rank

  bool operator==(const MonitorDef&) const = default;
};

/// True when `measure` names an approximate sketch measure (as opposed
/// to an exact fleet aggregate).
bool IsSketchMeasure(const std::string& measure);

/// Parses an assessment range:
///   "[lo, hi]"  "(lo, hi)"  "[lo, hi)"  "(lo, hi]"   (lo/hi: number,
///   -inf, inf)  — or a one-sided comparator:  ">x"  ">=x"  "<x"  "<=x".
Result<AssessRange> ParseAssessRange(const std::string& text);

/// Interval form that ParseAssessRange round-trips exactly.
std::string FormatAssessRange(const AssessRange& range);

/// Emits the monitor as a DSL list item (round-trips through
/// ParseTextDocument + MonitorFromNode).
std::string FormatMonitor(const MonitorDef& def);

/// Compiles one `monitors:` map node. Unknown keys, missing required
/// keys, and malformed values fail closed with a "<source>:line:col:"
/// diagnostic.
Result<MonitorDef> MonitorFromNode(const TextNode& node,
                                   const std::string& source);

/// Lowers a definition into the QuerySpec to register. `engine_kind` is
/// the aggregate the fleet cores maintain: an exact measure naming any
/// other aggregate is a compile error (the engine computes one exact
/// aggregate per deployment; sketch measures are independent of it).
Result<QuerySpec> CompileMonitor(const MonitorDef& def,
                                 AggregateKind engine_kind);

// Scalar helpers shared with the scenario compiler: positioned
// diagnostics on any malformed value.
Result<double> ScalarDouble(const TextNode& node, const std::string& source);
Result<std::size_t> ScalarSize(const TextNode& node,
                               const std::string& source);
Result<std::string> ScalarString(const TextNode& node,
                                 const std::string& source);

}  // namespace stardust::dsl

#endif  // STARDUST_DSL_MONITOR_H_
