#include "dsl/monitor.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace stardust::dsl {

namespace {

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Shortest decimal form that strtod parses back to the exact value.
std::string FormatNumber(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string FormatBound(double v) {
  if (std::isinf(v)) return v < 0 ? "-inf" : "inf";
  return FormatNumber(v);
}

Result<double> ParseBound(const std::string& text) {
  const std::string t = Trim(text);
  if (t == "inf" || t == "+inf") {
    return std::numeric_limits<double>::infinity();
  }
  if (t == "-inf") return -std::numeric_limits<double>::infinity();
  if (t.empty()) return Status::InvalidArgument("empty range bound");
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) {
    return Status::InvalidArgument("not a number: '" + t + "'");
  }
  return v;
}

Status ExpectScalar(const TextNode& node, const std::string& source) {
  if (node.kind != TextNode::Kind::kScalar || node.literal_block) {
    return TextError(source, node.line, node.col,
                     "expected a scalar value");
  }
  return Status::OK();
}

AggregateKind* ExactMeasureKind(const std::string& measure,
                                AggregateKind* out) {
  if (measure == "sum") {
    *out = AggregateKind::kSum;
  } else if (measure == "max") {
    *out = AggregateKind::kMax;
  } else if (measure == "min") {
    *out = AggregateKind::kMin;
  } else if (measure == "spread") {
    *out = AggregateKind::kSpread;
  } else {
    return nullptr;
  }
  return out;
}

}  // namespace

bool IsSketchMeasure(const std::string& measure) {
  return measure == "distinct" || measure == "heavy_hitters" ||
         measure == "quantile";
}

Result<AssessRange> ParseAssessRange(const std::string& text) {
  const std::string t = Trim(text);
  if (t.empty()) return Status::InvalidArgument("empty assess range");
  AssessRange range;
  if (t[0] == '>' || t[0] == '<') {
    const bool inclusive = t.size() > 1 && t[1] == '=';
    Result<double> bound = ParseBound(t.substr(inclusive ? 2 : 1));
    if (!bound.ok()) return bound.status();
    if (t[0] == '>') {
      range.lo = bound.value();
      range.lo_inclusive = inclusive;
    } else {
      range.hi = bound.value();
      range.hi_inclusive = inclusive;
    }
  } else if (t[0] == '[' || t[0] == '(') {
    if (t.size() < 2 || (t.back() != ']' && t.back() != ')')) {
      return Status::InvalidArgument(
          "assess interval must end with ']' or ')'");
    }
    const std::string body = t.substr(1, t.size() - 2);
    const std::size_t comma = body.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument(
          "assess interval wants 'lo, hi' bounds");
    }
    Result<double> lo = ParseBound(body.substr(0, comma));
    if (!lo.ok()) return lo.status();
    Result<double> hi = ParseBound(body.substr(comma + 1));
    if (!hi.ok()) return hi.status();
    range.lo = lo.value();
    range.hi = hi.value();
    range.lo_inclusive = t[0] == '[';
    range.hi_inclusive = t.back() == ']';
  } else {
    return Status::InvalidArgument(
        "assess range wants '[lo, hi]' (or '(', ')') or a comparator "
        "'>x' '>=x' '<x' '<=x'");
  }
  SD_RETURN_NOT_OK(range.Validate());
  return range;
}

std::string FormatAssessRange(const AssessRange& range) {
  std::string out;
  out += range.lo_inclusive ? '[' : '(';
  out += FormatBound(range.lo);
  out += ", ";
  out += FormatBound(range.hi);
  out += range.hi_inclusive ? ']' : ')';
  return out;
}

std::string FormatMonitor(const MonitorDef& def) {
  std::string out;
  char buf[96];
  out += "- name: " + def.name + "\n";
  out += "  measure: " + def.measure + "\n";
  std::snprintf(buf, sizeof(buf), "  window: %zu\n", def.window);
  out += buf;
  out += "  assess: \"" + FormatAssessRange(def.assess) + "\"\n";
  if (def.alert_rate > 0.0) {
    out += "  alert_rate: " + FormatNumber(def.alert_rate) + "\n";
    std::snprintf(buf, sizeof(buf), "  alert_burst: %llu\n",
                  static_cast<unsigned long long>(def.alert_burst));
    out += buf;
  }
  if (IsSketchMeasure(def.measure)) {
    std::snprintf(buf, sizeof(buf), "  buckets: %zu\n", def.buckets);
    out += buf;
    if (def.measure == "distinct") {
      std::snprintf(buf, sizeof(buf), "  precision: %zu\n", def.precision);
      out += buf;
    } else if (def.measure == "heavy_hitters") {
      out += "  epsilon: " + FormatNumber(def.epsilon) + "\n";
      std::snprintf(buf, sizeof(buf), "  depth: %zu\n", def.depth);
      out += buf;
      out += "  phi: " + FormatNumber(def.phi) + "\n";
      std::snprintf(buf, sizeof(buf), "  candidates: %zu\n",
                    def.candidates);
      out += buf;
    } else {
      out += "  q: " + FormatNumber(def.q) + "\n";
    }
  }
  return out;
}

Result<double> ScalarDouble(const TextNode& node,
                            const std::string& source) {
  SD_RETURN_NOT_OK(ExpectScalar(node, source));
  char* end = nullptr;
  const std::string t = Trim(node.scalar);
  const double v = t.empty() ? 0.0 : std::strtod(t.c_str(), &end);
  if (t.empty() || end != t.c_str() + t.size()) {
    return TextError(source, node.line, node.col,
                     "not a number: '" + node.scalar + "'");
  }
  return v;
}

Result<std::size_t> ScalarSize(const TextNode& node,
                               const std::string& source) {
  SD_RETURN_NOT_OK(ExpectScalar(node, source));
  const std::string t = Trim(node.scalar);
  for (char c : t) {
    if (c < '0' || c > '9') {
      return TextError(source, node.line, node.col,
                       "not a non-negative integer: '" + node.scalar +
                           "'");
    }
  }
  if (t.empty() || t.size() > 19) {
    return TextError(source, node.line, node.col,
                     "not a non-negative integer: '" + node.scalar + "'");
  }
  return static_cast<std::size_t>(std::strtoull(t.c_str(), nullptr, 10));
}

Result<std::string> ScalarString(const TextNode& node,
                                 const std::string& source) {
  SD_RETURN_NOT_OK(ExpectScalar(node, source));
  return node.scalar;
}

Result<MonitorDef> MonitorFromNode(const TextNode& node,
                                   const std::string& source) {
  if (node.kind != TextNode::Kind::kMap) {
    return TextError(source, node.line, node.col,
                     "monitor must be a map of 'key: value' entries");
  }
  MonitorDef def;
  bool have_assess = false;
  for (const auto& [key, value] : node.entries) {
    if (key == "name") {
      Result<std::string> v = ScalarString(value, source);
      if (!v.ok()) return v.status();
      def.name = v.value();
    } else if (key == "measure") {
      Result<std::string> v = ScalarString(value, source);
      if (!v.ok()) return v.status();
      def.measure = v.value();
      AggregateKind exact;
      if (!IsSketchMeasure(def.measure) &&
          ExactMeasureKind(def.measure, &exact) == nullptr) {
        return TextError(source, value.line, value.col,
                         "unknown measure '" + def.measure +
                             "' (sum, max, min, spread, distinct, "
                             "heavy_hitters, quantile)");
      }
    } else if (key == "window") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.window = v.value();
    } else if (key == "assess") {
      Result<std::string> v = ScalarString(value, source);
      if (!v.ok()) return v.status();
      Result<AssessRange> range = ParseAssessRange(v.value());
      if (!range.ok()) {
        return TextError(source, value.line, value.col,
                         range.status().message());
      }
      def.assess = range.value();
      have_assess = true;
    } else if (key == "alert_rate") {
      Result<double> v = ScalarDouble(value, source);
      if (!v.ok()) return v.status();
      def.alert_rate = v.value();
    } else if (key == "alert_burst") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.alert_burst = v.value();
    } else if (key == "buckets") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.buckets = v.value();
    } else if (key == "precision") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.precision = v.value();
    } else if (key == "epsilon") {
      Result<double> v = ScalarDouble(value, source);
      if (!v.ok()) return v.status();
      def.epsilon = v.value();
    } else if (key == "depth") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.depth = v.value();
    } else if (key == "phi") {
      Result<double> v = ScalarDouble(value, source);
      if (!v.ok()) return v.status();
      def.phi = v.value();
    } else if (key == "candidates") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.candidates = v.value();
    } else if (key == "q") {
      Result<double> v = ScalarDouble(value, source);
      if (!v.ok()) return v.status();
      def.q = v.value();
    } else {
      return TextError(source, value.line, value.col,
                       "unknown monitor key '" + key + "'");
    }
  }
  if (def.name.empty()) {
    return TextError(source, node.line, node.col,
                     "monitor needs a 'name'");
  }
  if (def.measure.empty()) {
    return TextError(source, node.line, node.col,
                     "monitor '" + def.name + "' needs a 'measure'");
  }
  if (def.window == 0) {
    return TextError(source, node.line, node.col,
                     "monitor '" + def.name + "' needs a 'window' >= 1");
  }
  if (!have_assess) {
    return TextError(source, node.line, node.col,
                     "monitor '" + def.name + "' needs an 'assess' range");
  }
  return def;
}

Result<QuerySpec> CompileMonitor(const MonitorDef& def,
                                 AggregateKind engine_kind) {
  const auto fail = [&def](const std::string& message) {
    return Status::InvalidArgument("monitor '" + def.name + "': " +
                                   message);
  };
  const Status assess_ok = def.assess.Validate();
  if (!assess_ok.ok()) return fail(assess_ok.message());
  if (!IsSketchMeasure(def.measure)) {
    AggregateKind kind;
    if (ExactMeasureKind(def.measure, &kind) == nullptr) {
      return fail("unknown measure '" + def.measure + "'");
    }
    if (kind != engine_kind) {
      return fail("measures " + def.measure +
                  " but the engine's exact aggregate is " +
                  std::string(AggregateKindName(engine_kind)));
    }
    QuerySpec spec = QuerySpec::AggregateRange(def.window, def.assess);
    return spec.WithAlertRate(def.alert_rate, def.alert_burst);
  }
  SketchConfig config;
  config.kind = def.measure == "distinct"        ? SketchKind::kDistinct
                : def.measure == "heavy_hitters" ? SketchKind::kHeavyHitters
                                                 : SketchKind::kQuantile;
  config.window = def.window;
  config.buckets = def.buckets;
  config.hll_precision = def.precision;
  config.epsilon = def.epsilon;
  config.depth = def.depth;
  config.phi = def.phi;
  config.candidates = def.candidates;
  config.q = def.q;
  const Status config_ok = config.Validate();
  if (!config_ok.ok()) return fail(config_ok.message());
  QuerySpec spec = QuerySpec::Sketch(config, def.assess);
  return spec.WithAlertRate(def.alert_rate, def.alert_burst);
}

}  // namespace stardust::dsl
