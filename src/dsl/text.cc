#include "dsl/text.h"

#include <cstdio>

namespace stardust::dsl {

namespace {

/// One physical line: the raw text (for literal blocks, which must keep
/// `#` and trailing spaces) and the comment-stripped view the structural
/// parser reads.
struct Line {
  std::string raw;
  std::string text;       // comment stripped, right-trimmed
  std::size_t indent = 0;  // first non-space index into `text`
  std::size_t line_no = 0;
  bool blank = false;      // nothing but whitespace/comment
};

bool IsSpaceOnly(const std::string& s) {
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

/// Strips a trailing `# comment` (only when the '#' starts the content or
/// follows whitespace, and is outside double quotes) and right-trims.
std::string StripComment(const std::string& raw) {
  bool in_quotes = false;
  std::size_t end = raw.size();
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == '"') in_quotes = !in_quotes;
    if (c == '#' && !in_quotes &&
        (i == 0 || raw[i - 1] == ' ' || raw[i - 1] == '\t')) {
      end = i;
      break;
    }
  }
  while (end > 0 && (raw[end - 1] == ' ' || raw[end - 1] == '\t' ||
                     raw[end - 1] == '\r')) {
    --end;
  }
  return raw.substr(0, end);
}

class Parser {
 public:
  Parser(const std::string& text, std::string source)
      : source_(std::move(source)) {
    std::size_t start = 0;
    std::size_t line_no = 1;
    while (start <= text.size()) {
      std::size_t nl = text.find('\n', start);
      const std::size_t len =
          (nl == std::string::npos ? text.size() : nl) - start;
      Line line;
      line.raw = text.substr(start, len);
      if (!line.raw.empty() && line.raw.back() == '\r') line.raw.pop_back();
      line.text = StripComment(line.raw);
      line.line_no = line_no;
      line.blank = IsSpaceOnly(line.text);
      if (!line.blank) {
        line.indent = line.text.find_first_not_of(' ');
      }
      lines_.push_back(std::move(line));
      if (nl == std::string::npos) break;
      start = nl + 1;
      ++line_no;
    }
  }

  Result<TextNode> Parse() {
    SkipBlank();
    if (pos_ >= lines_.size()) {
      return TextError(source_, 1, 1, "empty document");
    }
    const Line& first = lines_[pos_];
    if (first.indent != 0) {
      return TextError(source_, first.line_no, first.indent + 1,
                       "top-level content must start in column 1");
    }
    Result<TextNode> root = ParseBlock(0);
    if (!root.ok()) return root.status();
    SkipBlank();
    if (pos_ < lines_.size()) {
      const Line& extra = lines_[pos_];
      return TextError(source_, extra.line_no, extra.indent + 1,
                       "unexpected content after document");
    }
    if (root.value().kind == TextNode::Kind::kScalar) {
      return TextError(source_, first.line_no, 1,
                       "top-level must be a map or a list");
    }
    return root;
  }

 private:
  void SkipBlank() {
    while (pos_ < lines_.size() && lines_[pos_].blank) ++pos_;
  }

  Status IndentError(const Line& line) const {
    return TextError(source_, line.line_no, line.indent + 1,
                     "unexpected indentation");
  }

  /// Parses the block whose first significant line sits at exactly
  /// `indent`; consumes every line belonging to it.
  Result<TextNode> ParseBlock(std::size_t indent) {
    SkipBlank();
    const Line& first = lines_[pos_];
    if (first.text[first.indent] == '\t') {
      return TextError(source_, first.line_no, first.indent + 1,
                       "tab in indentation");
    }
    const bool is_list =
        first.text[indent] == '-' &&
        (first.text.size() == indent + 1 || first.text[indent + 1] == ' ');
    if (is_list) return ParseList(indent);
    // A line with no top-level colon is a bare scalar block (a scalar
    // list item after the '-' rewrite); maps require 'key: value'.
    bool in_quotes = false;
    bool has_colon = false;
    for (std::size_t i = indent; i < first.text.size(); ++i) {
      if (first.text[i] == '"') in_quotes = !in_quotes;
      if (first.text[i] == ':' && !in_quotes) {
        has_colon = true;
        break;
      }
    }
    if (!has_colon) {
      const std::size_t line_no = first.line_no;
      const std::string rest = first.text.substr(indent);
      ++pos_;
      return ParseScalar(rest, line_no, indent + 1);
    }
    return ParseMap(indent);
  }

  Result<TextNode> ParseList(std::size_t indent) {
    TextNode node;
    node.kind = TextNode::Kind::kList;
    node.line = lines_[pos_].line_no;
    node.col = indent + 1;
    for (;;) {
      SkipBlank();
      if (pos_ >= lines_.size()) break;
      Line& line = lines_[pos_];
      if (line.indent < indent) break;       // block ends
      if (line.indent > indent) return IndentError(line);
      if (line.text[indent] == '\t') {
        return TextError(source_, line.line_no, indent + 1,
                         "tab in indentation");
      }
      if (line.text[indent] != '-') break;   // sibling map key ends the list
      if (line.text.size() > indent + 1 && line.text[indent + 1] != ' ') {
        return TextError(source_, line.line_no, indent + 2,
                         "expected a space after '-'");
      }
      // Rewrite "- item..." as "  item..." in place: the item then parses
      // as an ordinary block at indent+2, and source columns stay true.
      line.text[indent] = ' ';
      line.blank = IsSpaceOnly(line.text);
      if (!line.blank) {
        line.indent = line.text.find_first_not_of(' ');
        if (line.indent != indent + 2) {
          return TextError(source_, line.line_no, line.indent + 1,
                           "list item must start two columns after '-'");
        }
      } else {
        ++pos_;  // bare "-": the item is the following deeper block
        SkipBlank();
        if (pos_ >= lines_.size() || lines_[pos_].indent <= indent) {
          return TextError(source_, line.line_no, indent + 1,
                           "empty list item");
        }
        if (lines_[pos_].indent < indent + 2) {
          return IndentError(lines_[pos_]);
        }
      }
      Result<TextNode> item = ParseBlock(lines_[pos_].indent);
      if (!item.ok()) return item.status();
      node.items.push_back(std::move(item.value()));
    }
    return node;
  }

  Result<TextNode> ParseMap(std::size_t indent) {
    TextNode node;
    node.kind = TextNode::Kind::kMap;
    node.line = lines_[pos_].line_no;
    node.col = indent + 1;
    for (;;) {
      SkipBlank();
      if (pos_ >= lines_.size()) break;
      const Line& line = lines_[pos_];
      if (line.indent < indent) break;  // block ends
      if (line.indent > indent) return IndentError(line);
      if (line.text[indent] == '\t') {
        return TextError(source_, line.line_no, indent + 1,
                         "tab in indentation");
      }
      if (line.text[indent] == '-') break;  // parent list continues
      // Split "key: value" at the first ':' outside quotes.
      std::size_t colon = std::string::npos;
      bool in_quotes = false;
      for (std::size_t i = indent; i < line.text.size(); ++i) {
        const char c = line.text[i];
        if (c == '"') in_quotes = !in_quotes;
        if (c == ':' && !in_quotes) {
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos || colon == indent) {
        return TextError(source_, line.line_no, indent + 1,
                         "expected 'key: value'");
      }
      std::string key = line.text.substr(indent, colon - indent);
      while (!key.empty() && key.back() == ' ') key.pop_back();
      if (key.find('"') != std::string::npos) {
        return TextError(source_, line.line_no, indent + 1,
                         "quoted keys are not supported");
      }
      for (const auto& entry : node.entries) {
        if (entry.first == key) {
          return TextError(source_, line.line_no, indent + 1,
                           "duplicate key '" + key + "'");
        }
      }
      std::size_t value_at = colon + 1;
      while (value_at < line.text.size() && line.text[value_at] == ' ') {
        ++value_at;
      }
      const std::string rest = line.text.substr(value_at);
      const std::size_t key_line = line.line_no;
      ++pos_;
      Result<TextNode> value =
          rest.empty()  ? ParseNestedValue(key, key_line, indent)
          : rest == "|" ? ParseLiteralBlock(key_line, indent)
                        : ParseScalar(rest, key_line, value_at + 1);
      if (!value.ok()) return value.status();
      node.entries.emplace_back(std::move(key), std::move(value.value()));
    }
    return node;
  }

  Result<TextNode> ParseNestedValue(const std::string& key,
                                    std::size_t key_line,
                                    std::size_t indent) {
    SkipBlank();
    if (pos_ < lines_.size()) {
      const Line& next = lines_[pos_];
      // YAML idiom: a list under a key may sit at the key's own indent.
      if (next.indent == indent && next.text[indent] == '-' &&
          (next.text.size() == indent + 1 ||
           next.text[indent + 1] == ' ')) {
        return ParseList(indent);
      }
      if (next.indent > indent) return ParseBlock(next.indent);
    }
    return TextError(source_, key_line, indent + 1,
                     "missing value for key '" + key + "'");
  }

  Result<TextNode> ParseScalar(const std::string& rest, std::size_t line_no,
                               std::size_t col) {
    TextNode node;
    node.kind = TextNode::Kind::kScalar;
    node.line = line_no;
    node.col = col;
    if (rest.front() == '"') {
      if (rest.size() < 2 || rest.back() != '"') {
        return TextError(source_, line_no, col,
                         "unterminated quoted scalar");
      }
      node.scalar = rest.substr(1, rest.size() - 2);
      if (node.scalar.find('"') != std::string::npos) {
        return TextError(source_, line_no, col,
                         "embedded quote in quoted scalar");
      }
    } else {
      node.scalar = rest;
    }
    return node;
  }

  /// `key: |` — collects every following raw line indented past the key
  /// (blank lines included), dedents by the first content line's indent,
  /// and joins with '\n'.
  Result<TextNode> ParseLiteralBlock(std::size_t key_line,
                                     std::size_t indent) {
    std::size_t block_indent = 0;
    bool have_indent = false;
    std::vector<const Line*> block;
    while (pos_ < lines_.size()) {
      const Line& line = lines_[pos_];
      if (!line.blank && line.raw.find_first_not_of(' ') <= indent) break;
      if (!line.blank && !have_indent) {
        block_indent = line.raw.find_first_not_of(' ');
        have_indent = true;
      }
      block.push_back(&line);
      ++pos_;
    }
    // Trailing blank lines belong to the document, not the block.
    while (!block.empty() && block.back()->blank) {
      block.pop_back();
      --pos_;
    }
    if (!have_indent) {
      return TextError(source_, key_line, indent + 1,
                       "empty literal block");
    }
    TextNode node;
    node.kind = TextNode::Kind::kScalar;
    node.literal_block = true;
    node.line = block.front()->line_no;
    node.col = block_indent + 1;
    for (std::size_t i = 0; i < block.size(); ++i) {
      if (i != 0) node.scalar += '\n';
      const std::string& raw = block[i]->raw;
      if (IsSpaceOnly(raw)) continue;  // blank -> empty line
      const std::size_t at = raw.find_first_not_of(' ');
      if (at < block_indent) {
        return TextError(source_, block[i]->line_no, at + 1,
                         "literal block line dedents past the block");
      }
      node.scalar += raw.substr(block_indent);
    }
    return node;
  }

  std::string source_;
  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

}  // namespace

const TextNode* TextNode::Get(const std::string& key) const {
  for (const auto& entry : entries) {
    if (entry.first == key) return &entry.second;
  }
  return nullptr;
}

Status TextError(const std::string& source, std::size_t line,
                 std::size_t col, const std::string& message) {
  char pos[64];
  std::snprintf(pos, sizeof(pos), ":%zu:%zu: ", line, col);
  return Status::InvalidArgument(source + pos + message);
}

Result<TextNode> ParseTextDocument(const std::string& text,
                                   const std::string& source) {
  return Parser(text, source).Parse();
}

}  // namespace stardust::dsl
