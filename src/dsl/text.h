// Position-aware parser for the monitor DSL's document syntax — a strict
// YAML subset (docs/DSL.md). Supported: nested maps keyed by indentation,
// `- ` block lists, scalar values (optionally double-quoted), `key: |`
// literal block scalars, and `#` comments. Everything else — flow
// collections, anchors, multi-document streams, tabs — is rejected with a
// positioned diagnostic, never guessed at. Every node remembers the
// 1-based line/column it started at so the layers above (monitor and
// scenario compilation) can report errors against the user's source text.
#ifndef STARDUST_DSL_TEXT_H_
#define STARDUST_DSL_TEXT_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace stardust::dsl {

/// One parsed node: a scalar, a map (insertion-ordered, duplicate keys
/// rejected at parse time), or a list.
struct TextNode {
  enum class Kind { kScalar, kMap, kList };

  Kind kind = Kind::kScalar;
  /// Scalar payload (quotes stripped). For a literal block (`key: |`)
  /// this is the dedented block joined with '\n'.
  std::string scalar;
  /// True when `scalar` came from a `|` literal block — `line` then
  /// points at the first block line so row-oriented consumers (the
  /// scenario tuple section) can diagnose per-line.
  bool literal_block = false;
  /// Map entries in source order.
  std::vector<std::pair<std::string, TextNode>> entries;
  /// List items in source order.
  std::vector<TextNode> items;
  /// 1-based source position where the node's value starts.
  std::size_t line = 0;
  std::size_t col = 0;

  /// Map lookup; nullptr when absent or when this node is not a map.
  const TextNode* Get(const std::string& key) const;
};

/// InvalidArgument formatted "<source>:<line>:<col>: <message>" — the one
/// diagnostic shape every DSL error uses.
Status TextError(const std::string& source, std::size_t line,
                 std::size_t col, const std::string& message);

/// Parses a document into its top-level map or list. `source` names the
/// input (file name, or something like "<string>") for diagnostics.
Result<TextNode> ParseTextDocument(const std::string& text,
                                   const std::string& source);

}  // namespace stardust::dsl

#endif  // STARDUST_DSL_TEXT_H_
