// Scenario documents: a whole monitoring deployment — engine shape,
// monitor set, input tuples, expected alert counts — in one DSL file,
// replayed end to end by RunScenario (docs/DSL.md). This is the workload
// harness behind `stardust_cli run scenario.yaml` and the example ctest:
// it builds a live IngestEngine, compiles and registers every monitor,
// replays the tuple section tick by tick, and asserts the `expect` block
// against the alerts the compiled plans actually produced.
#ifndef STARDUST_DSL_SCENARIO_H_
#define STARDUST_DSL_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "dsl/monitor.h"
#include "query/alert.h"

namespace stardust::dsl {

/// Expected alert-count bounds for one monitor.
struct MonitorExpect {
  std::string name;
  std::uint64_t min = 0;
  std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
};

/// The scenario's `expect:` block; all bounds inclusive.
struct ScenarioExpect {
  std::uint64_t min_alerts = 0;
  std::uint64_t max_alerts = std::numeric_limits<std::uint64_t>::max();
  std::vector<MonitorExpect> monitors;
};

/// One parsed scenario document.
struct ScenarioDef {
  /// Source name (file path) the document came from, for diagnostics.
  std::string source;
  std::string name;
  std::size_t streams = 0;
  std::size_t base_window = 0;
  /// 0 = derive from the largest exact-monitor window.
  std::size_t num_levels = 0;
  /// 0 = derive (covers the replay and the largest indexed window).
  std::size_t history = 0;
  std::size_t shards = 2;
  /// 0 = one base window per stream (paced replay; see RunScenario).
  std::size_t max_batch = 0;
  /// Exact aggregate the fleet cores maintain: "sum" (default), "max",
  /// "min", or "spread".
  std::string aggregate = "sum";
  std::vector<MonitorDef> monitors;
  ScenarioExpect expect;
  /// The `tuples: |` block: one row per tick, one column per stream.
  std::vector<std::vector<double>> rows;
};

/// Parses and validates a scenario document. All diagnostics carry
/// "<source>:<line>:<col>:" positions; the tuple section additionally
/// diagnoses per CSV row via stream/io.h ParseCsvRow.
Result<ScenarioDef> ParseScenario(const std::string& text,
                                  const std::string& source);

/// Reads `path` and parses it (diagnostics name the file).
Result<ScenarioDef> LoadScenarioFile(const std::string& path);

/// Alert tally of one monitor after a replay.
struct MonitorAlertCount {
  std::string name;
  std::uint64_t alerts = 0;
};

/// What a replay produced.
struct ScenarioReport {
  std::uint64_t total_alerts = 0;
  std::vector<MonitorAlertCount> monitors;  // scenario order
};

/// Replays the scenario against a fresh engine and checks the `expect`
/// block. Returns the report on success; an expectation violation (or
/// any engine error) returns a status naming every failed bound.
/// `on_alert`, when set, sees every alert on the bus dispatcher thread
/// (the CLI's --verbose stream; tests inspect alert payloads with it).
Result<ScenarioReport> RunScenario(
    const ScenarioDef& def,
    const std::function<void(const Alert&)>& on_alert = {});

}  // namespace stardust::dsl

#endif  // STARDUST_DSL_SCENARIO_H_
