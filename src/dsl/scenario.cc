#include "dsl/scenario.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "engine/engine.h"
#include "query/sinks.h"
#include "stream/io.h"

namespace stardust::dsl {

namespace {

Result<MonitorExpect> ExpectFromNode(const TextNode& node,
                                     const std::string& source) {
  if (node.kind != TextNode::Kind::kMap) {
    return TextError(source, node.line, node.col,
                     "expect monitor must be a map");
  }
  MonitorExpect expect;
  for (const auto& [key, value] : node.entries) {
    if (key == "name") {
      Result<std::string> v = ScalarString(value, source);
      if (!v.ok()) return v.status();
      expect.name = v.value();
    } else if (key == "min") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      expect.min = v.value();
    } else if (key == "max") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      expect.max = v.value();
    } else {
      return TextError(source, value.line, value.col,
                       "unknown expect key '" + key + "'");
    }
  }
  if (expect.name.empty()) {
    return TextError(source, node.line, node.col,
                     "expect monitor needs a 'name'");
  }
  return expect;
}

Status ParseExpect(const TextNode& node, const std::string& source,
                   ScenarioExpect* out) {
  if (node.kind != TextNode::Kind::kMap) {
    return TextError(source, node.line, node.col,
                     "'expect' must be a map");
  }
  for (const auto& [key, value] : node.entries) {
    if (key == "min_alerts") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      out->min_alerts = v.value();
    } else if (key == "max_alerts") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      out->max_alerts = v.value();
    } else if (key == "monitors") {
      if (value.kind != TextNode::Kind::kList) {
        return TextError(source, value.line, value.col,
                         "'expect.monitors' must be a list");
      }
      for (const TextNode& item : value.items) {
        Result<MonitorExpect> expect = ExpectFromNode(item, source);
        if (!expect.ok()) return expect.status();
        out->monitors.push_back(std::move(expect.value()));
      }
    } else {
      return TextError(source, value.line, value.col,
                       "unknown expect key '" + key + "'");
    }
  }
  return Status::OK();
}

/// Parses the `tuples: |` block: one CSV row per line, exactly
/// `streams` columns. Diagnostics carry the absolute source line of the
/// offending row (the node remembers where the block started).
Status ParseTuples(const TextNode& node, const std::string& source,
                   std::size_t streams,
                   std::vector<std::vector<double>>* out) {
  if (node.kind != TextNode::Kind::kScalar || !node.literal_block) {
    return TextError(source, node.line, node.col,
                     "'tuples' must be a '|' literal block of CSV rows");
  }
  std::istringstream in(node.scalar);
  std::string line;
  std::size_t offset = 0;
  while (std::getline(in, line)) {
    const std::size_t line_no = node.line + offset;
    ++offset;
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    std::vector<double> row;
    const Status parsed = ParseCsvRow(line, &row);
    if (!parsed.ok()) {
      return TextError(source, line_no, node.col, parsed.message());
    }
    if (row.size() != streams) {
      char msg[96];
      std::snprintf(msg, sizeof(msg),
                    "row has %zu column(s), scenario declares %zu "
                    "stream(s)",
                    row.size(), streams);
      return TextError(source, line_no, node.col, msg);
    }
    out->push_back(std::move(row));
  }
  return Status::OK();
}

}  // namespace

Result<ScenarioDef> ParseScenario(const std::string& text,
                                  const std::string& source) {
  Result<TextNode> doc = ParseTextDocument(text, source);
  if (!doc.ok()) return doc.status();
  const TextNode& root = doc.value();

  ScenarioDef def;
  def.source = source;
  const TextNode* tuples = nullptr;
  for (const auto& [key, value] : root.entries) {
    if (key == "scenario") {
      Result<std::string> v = ScalarString(value, source);
      if (!v.ok()) return v.status();
      def.name = v.value();
    } else if (key == "streams") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.streams = v.value();
    } else if (key == "base_window") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.base_window = v.value();
    } else if (key == "num_levels") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.num_levels = v.value();
    } else if (key == "history") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.history = v.value();
    } else if (key == "shards") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.shards = v.value();
    } else if (key == "max_batch") {
      Result<std::size_t> v = ScalarSize(value, source);
      if (!v.ok()) return v.status();
      def.max_batch = v.value();
    } else if (key == "aggregate") {
      Result<std::string> v = ScalarString(value, source);
      if (!v.ok()) return v.status();
      def.aggregate = v.value();
      if (IsSketchMeasure(def.aggregate) ||
          (def.aggregate != "sum" && def.aggregate != "max" &&
           def.aggregate != "min" && def.aggregate != "spread")) {
        return TextError(source, value.line, value.col,
                         "'aggregate' must be sum, max, min, or spread");
      }
    } else if (key == "monitors") {
      if (value.kind != TextNode::Kind::kList) {
        return TextError(source, value.line, value.col,
                         "'monitors' must be a list");
      }
      for (const TextNode& item : value.items) {
        Result<MonitorDef> monitor = MonitorFromNode(item, source);
        if (!monitor.ok()) return monitor.status();
        for (const MonitorDef& existing : def.monitors) {
          if (existing.name == monitor.value().name) {
            return TextError(source, item.line, item.col,
                             "duplicate monitor name '" +
                                 monitor.value().name + "'");
          }
        }
        def.monitors.push_back(std::move(monitor.value()));
      }
    } else if (key == "expect") {
      SD_RETURN_NOT_OK(ParseExpect(value, source, &def.expect));
    } else if (key == "tuples") {
      tuples = &value;
    } else {
      return TextError(source, value.line, value.col,
                       "unknown scenario key '" + key + "'");
    }
  }

  if (def.name.empty()) {
    return TextError(source, root.line, root.col,
                     "scenario needs a 'scenario: <name>' entry");
  }
  if (def.streams == 0) {
    return TextError(source, root.line, root.col,
                     "scenario needs 'streams' >= 1");
  }
  if (def.base_window == 0) {
    return TextError(source, root.line, root.col,
                     "scenario needs 'base_window' >= 1");
  }
  if (def.monitors.empty()) {
    return TextError(source, root.line, root.col,
                     "scenario needs at least one monitor");
  }
  if (tuples == nullptr) {
    return TextError(source, root.line, root.col,
                     "scenario needs a 'tuples: |' block");
  }
  SD_RETURN_NOT_OK(ParseTuples(*tuples, source, def.streams, &def.rows));
  if (def.rows.empty()) {
    return TextError(source, tuples->line, tuples->col,
                     "tuple block holds no rows");
  }
  for (const MonitorExpect& expect : def.expect.monitors) {
    const bool known =
        std::any_of(def.monitors.begin(), def.monitors.end(),
                    [&expect](const MonitorDef& m) {
                      return m.name == expect.name;
                    });
    if (!known) {
      return Status::InvalidArgument(
          source + ": expect references unknown monitor '" + expect.name +
          "'");
    }
  }
  return def;
}

Result<ScenarioDef> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open scenario file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseScenario(text.str(), path);
}

Result<ScenarioReport> RunScenario(
    const ScenarioDef& def,
    const std::function<void(const Alert&)>& on_alert) {
  AggregateKind engine_kind = AggregateKind::kSum;
  if (def.aggregate == "max") {
    engine_kind = AggregateKind::kMax;
  } else if (def.aggregate == "min") {
    engine_kind = AggregateKind::kMin;
  } else if (def.aggregate == "spread") {
    engine_kind = AggregateKind::kSpread;
  }

  // Compile every monitor first: a bad definition must fail before the
  // engine spins up.
  std::vector<QuerySpec> specs;
  specs.reserve(def.monitors.size());
  for (const MonitorDef& monitor : def.monitors) {
    Result<QuerySpec> spec = CompileMonitor(monitor, engine_kind);
    if (!spec.ok()) return spec.status();
    specs.push_back(std::move(spec.value()));
  }

  // Size the fleet so every exact-monitor window is an indexed
  // resolution (the same derivation stardust_cli's subscribe path uses).
  const std::size_t base = def.base_window;
  std::size_t levels = std::max<std::size_t>(def.num_levels, 1);
  for (const MonitorDef& monitor : def.monitors) {
    if (IsSketchMeasure(monitor.measure)) continue;
    while ((monitor.window / base) >> levels != 0) ++levels;
  }
  StardustConfig fleet;
  fleet.transform = TransformKind::kAggregate;
  fleet.aggregate = engine_kind;
  fleet.base_window = base;
  fleet.num_levels = levels;
  fleet.history = def.history != 0
                      ? def.history
                      : std::max(def.rows.size(), base << (levels - 1));
  fleet.box_capacity = 4;
  fleet.update_period = 1;
  // The fleet's own window thresholds are parked out of range — alerts
  // come from the compiled monitors only.
  std::vector<WindowThreshold> fleet_thresholds = {{base, 1e18}};

  EngineConfig econfig;
  econfig.num_shards = std::max<std::size_t>(def.shards, 1);
  // Replays outrun live feeds; bounding the batch at one base window per
  // stream keeps short-lived crossings visible to the per-batch
  // evaluation, mimicking a paced feed.
  econfig.max_batch = def.max_batch != 0 ? def.max_batch : base;

  Result<std::unique_ptr<IngestEngine>> engine =
      IngestEngine::Create(fleet, fleet_thresholds, def.streams, econfig);
  if (!engine.ok()) return engine.status();

  std::vector<QueryId> ids;
  ids.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Result<QueryId> id = engine.value()->RegisterQuery(specs[i]);
    if (!id.ok()) {
      return Status::InvalidArgument("monitor '" + def.monitors[i].name +
                                     "': " + id.status().message());
    }
    ids.push_back(id.value());
  }

  // Tally alerts per monitor on the bus dispatcher thread.
  struct Tally {
    std::mutex mu;
    std::unordered_map<QueryId, std::uint64_t> by_query;
  };
  auto tally = std::make_shared<Tally>();
  engine.value()->alerts().AddSink(
      std::make_shared<CallbackSink>([tally, on_alert](const Alert& alert) {
        {
          std::lock_guard<std::mutex> lock(tally->mu);
          ++tally->by_query[alert.query];
        }
        if (on_alert) on_alert(alert);
      }));

  for (const std::vector<double>& row : def.rows) {
    for (std::size_t s = 0; s < row.size(); ++s) {
      const Status posted =
          engine.value()->Post(static_cast<StreamId>(s), row[s]);
      if (!posted.ok()) return posted;
    }
  }
  SD_RETURN_NOT_OK(engine.value()->Flush());
  SD_RETURN_NOT_OK(engine.value()->Stop());

  ScenarioReport report;
  {
    std::lock_guard<std::mutex> lock(tally->mu);
    for (std::size_t i = 0; i < def.monitors.size(); ++i) {
      const auto it = tally->by_query.find(ids[i]);
      const std::uint64_t count =
          it == tally->by_query.end() ? 0 : it->second;
      report.monitors.push_back({def.monitors[i].name, count});
      report.total_alerts += count;
    }
  }

  // Check the expect block; collect every violation, not just the first.
  std::string violations;
  const auto violate = [&violations](const std::string& line) {
    if (!violations.empty()) violations += "; ";
    violations += line;
  };
  char msg[160];
  if (report.total_alerts < def.expect.min_alerts ||
      report.total_alerts > def.expect.max_alerts) {
    std::snprintf(msg, sizeof(msg),
                  "total alerts %llu outside expected [%llu, %llu]",
                  static_cast<unsigned long long>(report.total_alerts),
                  static_cast<unsigned long long>(def.expect.min_alerts),
                  static_cast<unsigned long long>(def.expect.max_alerts));
    violate(msg);
  }
  for (const MonitorExpect& expect : def.expect.monitors) {
    for (const MonitorAlertCount& count : report.monitors) {
      if (count.name != expect.name) continue;
      if (count.alerts < expect.min || count.alerts > expect.max) {
        std::snprintf(
            msg, sizeof(msg),
            "monitor '%s' raised %llu alert(s), expected [%llu, %llu]",
            expect.name.c_str(),
            static_cast<unsigned long long>(count.alerts),
            static_cast<unsigned long long>(expect.min),
            static_cast<unsigned long long>(expect.max));
        violate(msg);
      }
    }
  }
  if (!violations.empty()) {
    return Status::FailedPrecondition("scenario '" + def.name +
                                      "': " + violations);
  }
  return report;
}

}  // namespace stardust::dsl
