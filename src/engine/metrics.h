// Runtime counters of the ingestion engine, exported as JSON for benches,
// examples, and operational scraping. Everything is an atomic updated with
// relaxed ordering: metrics tolerate racy reads, correctness does not
// depend on them.
#ifndef STARDUST_ENGINE_METRICS_H_
#define STARDUST_ENGINE_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/latency_histogram.h"
#include "core/config.h"
#include "query/registry.h"

namespace stardust {

/// Engine-wide counters. Producers bump the posting/drop side; shard
/// workers bump `appended` and the latency histogram.
struct EngineMetrics {
  /// Tuples accepted by Post/PostBatch (including ones later dropped by
  /// kDropOldest; excluding kDropNewest rejections).
  std::atomic<std::uint64_t> posted{0};
  /// Tuples applied to a shard's monitors.
  std::atomic<std::uint64_t> appended{0};
  /// Tuples rejected on arrival (kDropNewest) / reclaimed from a full
  /// queue to make room (kDropOldest).
  std::atomic<std::uint64_t> dropped_newest{0};
  std::atomic<std::uint64_t> dropped_oldest{0};
  /// Full-queue episodes a producer waited out under kBlock.
  std::atomic<std::uint64_t> block_waits{0};
  /// Monitor appends that returned a non-OK status inside a worker.
  std::atomic<std::uint64_t> append_errors{0};
  /// Checkpoints fully written (manifest durable) / attempts that failed
  /// before the manifest rename (engine/checkpoint.h).
  std::atomic<std::uint64_t> checkpoints{0};
  std::atomic<std::uint64_t> checkpoint_failures{0};
  /// Alerts accepted by the bus from shard workers and the correlator
  /// (the bus's own counters break this down by drop/delivery).
  std::atomic<std::uint64_t> alerts_published{0};
  /// Correlator rounds that evaluated at least one level group (counted
  /// once per round even when several levels evaluate; a round where no
  /// level's common feature time advanced is not counted).
  std::atomic<std::uint64_t> correlator_rounds{0};
  /// Level groups a correlator round failed to evaluate (feature gather
  /// error): the round commits nothing for that level and retries it at
  /// the next firing, so transient failures delay alerts instead of
  /// dropping them.
  std::atomic<std::uint64_t> correlator_errors{0};
  /// Per-resolution-level evaluation counts of the correlator (how many
  /// rounds actually evaluated each level of the correlation core).
  /// Sized by the engine before any thread starts; empty when the
  /// correlation path is disabled.
  std::unique_ptr<std::atomic<std::uint64_t>[]> correlator_level_evals;
  std::size_t correlator_num_levels = 0;
  /// Shard workers whose requested core pin failed (warn-once per shard;
  /// the worker keeps running unpinned).
  std::atomic<std::uint64_t> pin_failures{0};
  /// Completed live stream migrations (IngestEngine::MigrateStream) and
  /// the serialized per-stream state bytes they moved between shards.
  std::atomic<std::uint64_t> migrations{0};
  std::atomic<std::uint64_t> migrated_bytes{0};
  /// Wall-clock nanoseconds per monitor append, measured by the workers.
  LatencyHistogram append_latency;
  /// Wall-clock nanoseconds per completed migration (placement flip to
  /// park drain).
  LatencyHistogram migration_latency;
};

/// Point-in-time view of one shard, stamped with the epoch (number of
/// applied batches) at which it was taken.
struct ShardMetricsSnapshot {
  std::size_t shard = 0;
  std::uint64_t epoch = 0;
  std::uint64_t appended = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  std::size_t queue_high_water = 0;
  std::size_t num_streams = 0;
  /// Per-resident-stream append counts, keyed by global stream id and
  /// sorted ascending — the rebalancer's load signal. The counts are the
  /// fleet's existing per-monitor append counters read at scrape time,
  /// so maintaining them adds nothing to the hot append path.
  std::vector<std::pair<StreamId, std::uint64_t>> stream_appends;

  // Feature pipeline accounting (docs/FEATURES.md): the exactly-once
  // invariant is pipeline_batches == epoch and pipeline_appends ==
  // appended minus append errors.
  std::uint64_t pipeline_batches = 0;
  std::uint64_t pipeline_appends = 0;
  std::uint64_t znorm_computes = 0;
  std::uint64_t tracker_rebuilds = 0;
  std::uint64_t store_puts = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;

  // Sketch-measure maintenance (sketch/measure.h counters summed over
  // the pipeline's live measures, plus checkpoint bytes they produced).
  std::uint64_t sketch_appends = 0;
  std::uint64_t sketch_merges = 0;
  std::uint64_t sketch_estimates = 0;
  std::uint64_t sketch_serialized_bytes = 0;
  std::size_t sketch_slots = 0;

  // Compiled-plan stage counters: batches (or correlator rounds) that
  // executed each stage of the shard's current EvalPlan.
  std::uint64_t plan_version = 0;
  std::uint64_t plan_aggregate_evals = 0;
  std::uint64_t plan_pattern_evals = 0;
  std::uint64_t plan_correlation_evals = 0;
  std::uint64_t plan_sketch_evals = 0;

  // Batched-maintenance accounting: whether the worker is pinned to its
  // requested core, nanoseconds spent in state maintenance (fleet +
  // pipeline appends and batch close), and the per-ApplyBatch wall-time
  // histogram summary.
  bool pinned = false;
  std::uint64_t maintain_ns = 0;
  std::uint64_t apply_batch_count = 0;
  double apply_batch_mean_ns = 0.0;
  std::uint64_t apply_batch_p50_ns = 0;
  std::uint64_t apply_batch_p99_ns = 0;

  /// Maintenance nanoseconds per applied tuple — the headline number the
  /// batched columnar path optimizes (bench/bench_feature.cc reports the
  /// same ratio measured standalone).
  double MaintainNsPerAppend() const {
    return appended == 0 ? 0.0
                         : static_cast<double>(maintain_ns) /
                               static_cast<double>(appended);
  }

  double AvgBatch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(appended) /
                              static_cast<double>(batches);
  }
};

/// One-line JSON document over the engine counters and per-shard
/// snapshots (schema in docs/ENGINE.md).
std::string EngineMetricsJson(const EngineMetrics& metrics,
                              const std::vector<ShardMetricsSnapshot>& shards);

/// Overload additionally emitting a "queries" array with the per-query
/// counters (evals, hits, errors, rate_limited, eval_nanos) from
/// QueryRegistry::Metrics().
std::string EngineMetricsJson(const EngineMetrics& metrics,
                              const std::vector<ShardMetricsSnapshot>& shards,
                              const std::vector<QueryMetricsSnapshot>& queries);

/// Inserts `"name":{body}` as a top-level member of an EngineMetricsJson
/// document (before the closing brace). `body` must be the member list of
/// a JSON object, without the surrounding braces. Lets layers above the
/// engine (the network server) extend the document without the engine
/// knowing their schema. Returns `json` unchanged if it is not a
/// `{...}`-shaped document.
std::string MergeMetricsSection(const std::string& json,
                                const std::string& name,
                                const std::string& body);

}  // namespace stardust

#endif  // STARDUST_ENGINE_METRICS_H_
