// Crash-safe checkpoint layout of the ingestion engine.
//
// A checkpoint is one epoch-stamped v2 fleet snapshot per shard
// (`shard-<i>-ck<seq>.snap`), one feature-pipeline snapshot per shard
// (`features-<i>-ck<seq>.feat`, manifest v3 — the query cores and the
// feature store), an optional serialized query registry
// (`queries-ck<seq>.qry`, manifest v2), plus a checksummed manifest
// (`manifest-<seq>.ck`) naming them, all written atomically
// (common/atomic_file.h) with the manifest last. Because the manifest is
// the commit point, a crash anywhere during a checkpoint leaves the
// previous manifest — and the complete files it references — untouched.
// Recovery walks the manifests newest-first and restores from the first
// one whose own checksum and every referenced file verify; partial or
// corrupt checkpoints are skipped, never half-loaded. Older manifest
// versions stay loadable: a v1 manifest restores with an empty registry,
// a v1/v2 manifest (no feature files) restores with empty query cores
// that warm up as tuples flow, and a pre-v4 manifest (no net-state file,
// `net-ck<seq>.net`) restores with a fresh alert sequence allocator and
// no subscriber cursors. v5 marks checkpoints whose feature files carry
// the sketch-measure section (SDFP v2) and whose registry is SDQR v3;
// both formats are self-versioned, so v4 checkpoints restore with sketch
// measures warming up. v6 appends the stream-placement file
// (`placement-ck<seq>.plc`: the placement epoch plus every shard's
// local->global slot table), so a checkpoint taken after live migrations
// restores with streams on the shards that own their state; pre-v6
// manifests restore with the modulo-hash layout (which is exactly the
// layout their shard files were written under). v6 also carries one
// rising-edge snapshot per shard (`edges-<i>-ck<seq>.edge`: alarming
// flags, pattern watermarks and evaluation floors), so a restored engine
// continues the alert stream exactly — conditions already announced
// before the checkpoint are not re-announced; pre-v6 manifests restore
// with empty edge state and err toward re-announcing. docs/ENGINE.md and
// docs/FEATURES.md document the format and guarantees; docs/NETWORK.md
// covers the net state.
#ifndef STARDUST_ENGINE_CHECKPOINT_H_
#define STARDUST_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace stardust {

/// One shard's entry in a checkpoint manifest.
struct CheckpointShardEntry {
  /// Snapshot filename, relative to the checkpoint directory.
  std::string file;
  /// Shard epoch (applied batches) when the snapshot was serialized.
  std::uint64_t epoch = 0;
  /// Tuples applied to the shard's monitors at that point.
  std::uint64_t appended = 0;
  /// FNV-1a checksum of the complete shard snapshot file.
  std::uint64_t checksum = 0;
};

/// One shard's feature-pipeline snapshot in a checkpoint manifest (v3).
struct CheckpointFeatureEntry {
  /// Snapshot filename, relative to the checkpoint directory.
  std::string file;
  /// FNV-1a checksum of the complete feature snapshot file.
  std::uint64_t checksum = 0;
};

/// The manifest committed (atomically, last) by IngestEngine::Checkpoint.
struct CheckpointManifest {
  /// Checkpoint sequence number, monotonic per engine lineage.
  std::uint64_t seq = 0;
  std::uint64_t num_streams = 0;
  std::uint64_t num_shards = 0;
  /// Engine configuration at checkpoint time, recorded so operators can
  /// reconstruct the runtime shape; restore validates the structural
  /// fields (stream and shard counts) only.
  std::uint64_t queue_capacity = 0;
  std::uint64_t max_producers = 0;
  std::uint64_t max_batch = 0;
  std::uint8_t overload = 0;
  std::vector<CheckpointShardEntry> shards;
  /// Serialized query registry (QueryRegistry::Serialize), manifest v2.
  /// Empty file name when the checkpoint carries no registry — either a
  /// v1 manifest or an engine whose registry was empty.
  std::string queries_file;
  std::uint64_t queries_checksum = 0;
  /// Per-shard feature pipeline snapshots (FeaturePipeline::Serialize),
  /// manifest v3. Either empty (older manifest: query cores restore
  /// empty) or exactly one entry per shard, in shard order.
  std::vector<CheckpointFeatureEntry> features;
  /// Serialized network tier state (net/alert_hub.h: the alert sequence
  /// allocator, subscriber cursors, and replay ring), manifest v4. Empty
  /// file name when the checkpoint carries none — an older manifest or an
  /// engine without a network front door attached.
  std::string net_file;
  std::uint64_t net_checksum = 0;
  /// Stream placement (engine/placement.h) the shard files were laid out
  /// under, manifest v6: the placement epoch plus each shard's
  /// local->global slot table. Empty file name on pre-v6 manifests, which
  /// restore with the modulo-hash default layout.
  std::string placement_file;
  std::uint64_t placement_checksum = 0;
  /// Per-shard rising-edge snapshots (alarming flags, pattern watermarks),
  /// manifest v6. Either empty (pre-v6 manifest: edge state restores
  /// empty, so conditions still alarming at the checkpoint are announced
  /// once more) or exactly one entry per shard, in shard order.
  std::vector<CheckpointFeatureEntry> edges;
};

/// Canonical file names within a checkpoint directory.
std::string CheckpointShardFileName(std::size_t shard, std::uint64_t seq);
std::string CheckpointFeaturesFileName(std::size_t shard, std::uint64_t seq);
std::string CheckpointEdgesFileName(std::size_t shard, std::uint64_t seq);
std::string CheckpointQueriesFileName(std::uint64_t seq);
std::string CheckpointNetFileName(std::uint64_t seq);
std::string CheckpointPlacementFileName(std::uint64_t seq);
std::string CheckpointManifestFileName(std::uint64_t seq);

/// Manifest (de)serialization behind the same magic + version + checksum
/// envelope style as core snapshots.
std::string SerializeManifest(const CheckpointManifest& manifest);
Result<CheckpointManifest> ParseManifest(const std::string& bytes);

/// Newest manifest in `dir` whose envelope checksum and every referenced
/// shard file's checksum verify. Older checkpoints are consulted in
/// descending sequence order (the fallback path after a crash or
/// corruption); NotFound when no complete checkpoint exists.
Result<CheckpointManifest> FindLatestValidCheckpoint(const std::string& dir);

/// Removes checkpoint files in `dir` whose sequence number is below
/// `keep_min_seq`, plus any stale `.tmp` leftovers from interrupted
/// writes. Unrecognized files are left alone. Best-effort: removal errors
/// are ignored (a later GC retries).
void GarbageCollectCheckpoints(const std::string& dir,
                               std::uint64_t keep_min_seq);

}  // namespace stardust

#endif  // STARDUST_ENGINE_CHECKPOINT_H_
