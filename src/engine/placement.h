// PlacementTable: the one routing decision point of the sharded engine.
//
// Every stream→shard lookup — producer Post/TryPost, the net ingest
// path (which funnels through TryPost), reader APIs, and the
// correlator's per-shard feature alignment — goes through an
// epoch-versioned table published copy-on-write, exactly like registry
// snapshots: writers build a new immutable Snapshot and flip one atomic
// pointer; readers grab the pointer with a single seq_cst load and never
// block. The default layout for an unmapped stream is the historical
// modulo hash (stream % num_shards), so a fresh table routes identically
// to the fixed-hash engine it replaces.
//
// Retired snapshots are kept until the table is destroyed rather than
// reference-counted: migrations are rare (human- or rebalancer-paced)
// and a snapshot is num_streams * 4 bytes, so leaking superseded epochs
// until teardown buys wait-free readers with no hazard-pointer
// machinery.
#ifndef STARDUST_ENGINE_PLACEMENT_H_
#define STARDUST_ENGINE_PLACEMENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"

namespace stardust {

/// Sentinel for "no stream" in per-shard slot tables: a tombstoned
/// local slot left behind by a migration.
inline constexpr StreamId kNoStream = static_cast<StreamId>(-1);

class PlacementTable {
 public:
  /// One immutable published version of the map. shard_of[stream] is
  /// the owning shard index.
  struct Snapshot {
    std::uint64_t epoch = 0;
    std::uint32_t num_shards = 0;
    std::vector<std::uint32_t> shard_of;
  };

  /// Builds the modulo-default table: stream s lives on shard
  /// s % num_shards (the pre-placement fixed hash).
  PlacementTable(std::size_t num_streams, std::size_t num_shards);
  ~PlacementTable();

  PlacementTable(const PlacementTable&) = delete;
  PlacementTable& operator=(const PlacementTable&) = delete;

  std::size_t num_streams() const { return num_streams_; }
  std::size_t num_shards() const { return num_shards_; }

  /// Wait-free read of the current version. The pointer stays valid for
  /// the lifetime of the table.
  const Snapshot* Acquire() const {
    return current_.load(std::memory_order_seq_cst);
  }

  std::uint64_t epoch() const { return Acquire()->epoch; }
  std::size_t ShardOf(StreamId stream) const {
    return Acquire()->shard_of[stream];
  }

  /// Publishes a new version with `stream` moved to `shard` and the
  /// epoch bumped. Serialized by the caller (the engine's migration
  /// lock); concurrent readers see either the old or the new version.
  Status SetShard(StreamId stream, std::size_t shard);

  /// Replaces the whole map (checkpoint restore). `shard_of` must have
  /// num_streams entries, each < num_shards.
  Status Reset(std::uint64_t epoch,
               const std::vector<std::uint32_t>& shard_of);

  /// JSON object for the CLI / metrics: epoch, shard count, and the
  /// full stream→shard vector.
  std::string ToJson() const;

 private:
  void Publish(std::unique_ptr<Snapshot> next);

  const std::size_t num_streams_;
  const std::size_t num_shards_;

  std::atomic<const Snapshot*> current_{nullptr};
  /// All versions ever published, including the live one; guards
  /// publication and owns the memory.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Snapshot>> versions_;
};

}  // namespace stardust

#endif  // STARDUST_ENGINE_PLACEMENT_H_
