#include "engine/metrics.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/kernels.h"

namespace stardust {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

std::string EngineMetricsJson(
    const EngineMetrics& metrics,
    const std::vector<ShardMetricsSnapshot>& shards) {
  return EngineMetricsJson(metrics, shards, {});
}

std::string EngineMetricsJson(
    const EngineMetrics& metrics,
    const std::vector<ShardMetricsSnapshot>& shards,
    const std::vector<QueryMetricsSnapshot>& queries) {
  std::string out;
  out.reserve(1024);
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  AppendF(&out,
          "{\"posted\":%" PRIu64 ",\"appended\":%" PRIu64
          ",\"dropped_newest\":%" PRIu64 ",\"dropped_oldest\":%" PRIu64,
          load(metrics.posted), load(metrics.appended),
          load(metrics.dropped_newest), load(metrics.dropped_oldest));
  AppendF(&out,
          ",\"block_waits\":%" PRIu64 ",\"append_errors\":%" PRIu64
          ",\"checkpoints\":%" PRIu64 ",\"checkpoint_failures\":%" PRIu64,
          load(metrics.block_waits), load(metrics.append_errors),
          load(metrics.checkpoints), load(metrics.checkpoint_failures));
  AppendF(&out,
          ",\"alerts_published\":%" PRIu64 ",\"correlator_rounds\":%" PRIu64
          ",\"correlator_errors\":%" PRIu64 ",\"pin_failures\":%" PRIu64,
          load(metrics.alerts_published), load(metrics.correlator_rounds),
          load(metrics.correlator_errors), load(metrics.pin_failures));
  const LatencyHistogram& mh = metrics.migration_latency;
  AppendF(&out,
          ",\"migrations\":%" PRIu64 ",\"migrated_bytes\":%" PRIu64
          ",\"migration_ns\":{\"count\":%" PRIu64 ",\"mean\":%.1f"
          ",\"p50\":%" PRIu64 ",\"p99\":%" PRIu64 "}",
          load(metrics.migrations), load(metrics.migrated_bytes), mh.Count(),
          mh.MeanNanos(), mh.PercentileNanos(0.50), mh.PercentileNanos(0.99));
  out += ",\"correlator_level_evals\":[";
  for (std::size_t i = 0; i < metrics.correlator_num_levels; ++i) {
    AppendF(&out, "%s%" PRIu64, i == 0 ? "" : ",",
            load(metrics.correlator_level_evals[i]));
  }
  out += "]";

  const LatencyHistogram& h = metrics.append_latency;
  AppendF(&out,
          ",\"append_latency_ns\":{\"count\":%" PRIu64
          ",\"mean\":%.1f,\"p50\":%" PRIu64 ",\"p99\":%" PRIu64
          ",\"buckets\":[",
          h.Count(), h.MeanNanos(), h.PercentileNanos(0.50),
          h.PercentileNanos(0.99));
  bool first = true;
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const std::uint64_t count = h.bucket_count(i);
    if (count == 0) continue;  // sparse export: empty buckets are implied
    AppendF(&out, "%s{\"le\":%" PRIu64 ",\"count\":%" PRIu64 "}",
            first ? "" : ",", LatencyHistogram::BucketBound(i), count);
    first = false;
  }
  out += "]}";

  out += ",\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardMetricsSnapshot& s = shards[i];
    AppendF(&out,
            "%s{\"shard\":%zu,\"epoch\":%" PRIu64 ",\"appended\":%" PRIu64
            ",\"batches\":%" PRIu64 ",\"max_batch\":%" PRIu64
            ",\"avg_batch\":%.2f,\"queue_high_water\":%zu"
            ",\"streams\":%zu",
            i == 0 ? "" : ",", s.shard, s.epoch, s.appended, s.batches,
            s.max_batch, s.AvgBatch(), s.queue_high_water, s.num_streams);
    out += ",\"stream_appends\":[";
    for (std::size_t k = 0; k < s.stream_appends.size(); ++k) {
      AppendF(&out, "%s[%u,%" PRIu64 "]", k == 0 ? "" : ",",
              s.stream_appends[k].first, s.stream_appends[k].second);
    }
    out += "]";
    AppendF(&out,
            ",\"pinned\":%s,\"maintain_ns_per_append\":%.1f"
            ",\"apply_batch_ns\":{\"count\":%" PRIu64
            ",\"mean\":%.1f,\"p50\":%" PRIu64 ",\"p99\":%" PRIu64 "}",
            s.pinned ? "true" : "false", s.MaintainNsPerAppend(),
            s.apply_batch_count, s.apply_batch_mean_ns, s.apply_batch_p50_ns,
            s.apply_batch_p99_ns);
    AppendF(&out,
            ",\"pipeline\":{\"batches\":%" PRIu64 ",\"appends\":%" PRIu64
            ",\"znorm_computes\":%" PRIu64 ",\"tracker_rebuilds\":%" PRIu64
            ",\"store_puts\":%" PRIu64 ",\"store_hits\":%" PRIu64
            ",\"store_misses\":%" PRIu64 "}",
            s.pipeline_batches, s.pipeline_appends, s.znorm_computes,
            s.tracker_rebuilds, s.store_puts, s.store_hits, s.store_misses);
    AppendF(&out,
            ",\"sketch\":{\"slots\":%zu,\"appends\":%" PRIu64
            ",\"merges\":%" PRIu64 ",\"estimate_calls\":%" PRIu64
            ",\"serialized_bytes\":%" PRIu64 "}",
            s.sketch_slots, s.sketch_appends, s.sketch_merges,
            s.sketch_estimates, s.sketch_serialized_bytes);
    AppendF(&out,
            ",\"plan\":{\"version\":%" PRIu64 ",\"aggregate_evals\":%" PRIu64
            ",\"pattern_evals\":%" PRIu64 ",\"correlation_evals\":%" PRIu64
            ",\"sketch_evals\":%" PRIu64 "}}",
            s.plan_version, s.plan_aggregate_evals, s.plan_pattern_evals,
            s.plan_correlation_evals, s.plan_sketch_evals);
  }
  out += "]";

  out += ",\"queries\":[";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const QueryMetricsSnapshot& q = queries[i];
    AppendF(&out,
            "%s{\"id\":%" PRIu64 ",\"kind\":\"%s\",\"evals\":%" PRIu64
            ",\"hits\":%" PRIu64 ",\"errors\":%" PRIu64
            ",\"rate_limited\":%" PRIu64 ",\"eval_nanos\":%" PRIu64 "}",
            i == 0 ? "" : ",", q.id, QueryKindName(q.kind), q.evals, q.hits,
            q.errors, q.rate_limited, q.eval_nanos);
  }
  out += "]";

  // SIMD kernel dispatch (common/kernels.h): the active ISA tier and the
  // process-wide per-kernel invocation counters, so deployments can
  // confirm which backend actually served the traffic.
  AppendF(&out, ",\"kernels\":{\"backend\":\"%s\",\"max_supported\":\"%s\"",
          kernels::BackendName(kernels::SelectedBackend()),
          kernels::BackendName(kernels::MaxSupportedBackend()));
  AppendF(&out, ",\"fast_reductions\":%s,\"run_cutoff\":%zu,\"counts\":{",
          kernels::FastReductionsEnabled() ? "true" : "false",
          kernels::BatchedRunCutoff());
  for (std::size_t id = 0; id < kernels::kNumKernels; ++id) {
    AppendF(&out, "%s\"%s\":%" PRIu64, id == 0 ? "" : ",",
            kernels::KernelName(id), kernels::KernelCount(id));
  }
  out += "}}}";
  return out;
}

std::string MergeMetricsSection(const std::string& json,
                                const std::string& name,
                                const std::string& body) {
  if (json.size() < 2 || json.front() != '{' || json.back() != '}') {
    return json;
  }
  std::string out;
  out.reserve(json.size() + name.size() + body.size() + 8);
  out.append(json, 0, json.size() - 1);
  if (json.size() > 2) out += ',';  // not an empty document
  out += '"';
  out += name;
  out += "\":{";
  out += body;
  out += "}}";
  return out;
}

}  // namespace stardust
