// Configuration of the sharded ingestion engine (src/engine).
#ifndef STARDUST_ENGINE_ENGINE_CONFIG_H_
#define STARDUST_ENGINE_ENGINE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/overload_policy.h"
#include "common/status.h"
#include "query/query_config.h"

namespace stardust {

/// Tunables of the ingestion runtime. Stream state parameters (windows,
/// thresholds, history) stay in StardustConfig; this struct only shapes
/// the threading/queueing layer around it.
struct EngineConfig {
  /// Worker shards. Streams are placed by stream id modulo the effective
  /// shard count (capped at the number of streams).
  std::size_t num_shards = 4;
  /// Capacity of each producer->shard SPSC ring, rounded up to a power of
  /// two. Total queued capacity is num_shards * max_producers * this.
  std::size_t queue_capacity = 1024;
  /// Maximum number of distinct producer threads that may ever call
  /// Post/PostBatch on one engine. Each gets a private SPSC ring per
  /// shard; registration is automatic on first Post.
  std::size_t max_producers = 8;
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// Upper bound on tuples a worker applies per state-lock acquisition;
  /// bounds reader (snapshot) latency under sustained load.
  std::size_t max_batch = 256;
  /// Start with the workers paused (queues fill until Resume). Gives
  /// deterministic overload behavior for tests and lets deployments
  /// pre-fill before the first drain.
  bool start_paused = false;
  /// Pin each shard worker to a core (shard s -> core s modulo the
  /// hardware concurrency). Best-effort: a failed affinity call is
  /// counted once per shard in EngineMetrics::pin_failures and the
  /// worker runs unpinned — it never aborts ingestion. Linux only; other
  /// platforms always count as failed.
  bool pin_shards = false;
  /// Test hook replacing the affinity syscall (receives the target core,
  /// returns success). Leave null for the real pthread_setaffinity_np.
  std::function<bool(std::size_t core)> pin_hook;
  /// Test hook injecting correlator gather failures: consulted once per
  /// level group per round; returning true makes that level's evaluation
  /// fail as if the feature gather errored (counted in
  /// correlator_errors; the level retries next round). Leave null in
  /// production.
  std::function<bool(std::size_t level)> correlator_fault_hook;
  /// Aligned feature times retained per (level, stream) in each shard's
  /// FeatureStore ring. 0 (the default) derives a capacity from the
  /// cache geometry so a shard's hot store set fits in roughly half the
  /// L2 cache (core/feature_store.h, DeriveStoreCapacity).
  std::size_t store_capacity = 0;
  /// Cache budget in bytes the derivation above targets. 0 (the default)
  /// probes the L2 data-cache size, falling back to the fixed default
  /// capacity when the platform does not expose it.
  std::size_t cache_bytes = 0;
  /// Period of the background checkpoint thread in milliseconds; 0 (the
  /// default) disables it. When enabled the engine checkpoints itself
  /// into `checkpoint_dir` every period without stopping ingestion
  /// (docs/ENGINE.md, "Checkpoint / restore").
  std::size_t checkpoint_period_ms = 0;
  /// Directory the background checkpoint thread writes into. Required
  /// when checkpoint_period_ms > 0; created on first use.
  std::string checkpoint_dir;
  /// Period of the background rebalancer thread in milliseconds; 0 (the
  /// default) disables it. When enabled the engine samples per-shard and
  /// per-stream append deltas every period and migrates the hottest
  /// stream off the hottest shard when the load skew exceeds the
  /// hysteresis bounds below (docs/ENGINE.md, "Elastic sharding").
  std::size_t rebalance_period_ms = 0;
  /// A rebalance tick acts only when the hottest shard's append delta
  /// exceeds the coldest's by this factor. Must be > 1 (hysteresis: a
  /// balanced fleet must never oscillate streams back and forth).
  double rebalance_hysteresis = 1.5;
  /// Minimum per-tick append delta of the hottest shard before the
  /// rebalancer considers acting; keeps idle and trickle workloads from
  /// migrating on noise.
  std::uint64_t rebalance_min_delta = 4096;
  /// Continuous-query subsystem layered on the shards: pattern /
  /// correlation core configurations, correlator cadence, and the alert
  /// bus shape (src/query, docs/QUERIES.md).
  QueryConfig query;
  /// SIMD tier for the maintenance kernels (common/kernels.h): "" keeps
  /// whatever is active (the CPUID pick, or a STARDUST_KERNELS override),
  /// "auto" re-resolves to the best supported tier, and "scalar" / "avx2"
  /// / "avx512" force one (clamped to what the CPU supports). Applied
  /// process-wide when the engine starts.
  std::string kernel_backend;

  Status Validate() const {
    SD_RETURN_NOT_OK(query.Validate());
    if (num_shards == 0) {
      return Status::InvalidArgument("num_shards must be positive");
    }
    if (queue_capacity == 0) {
      return Status::InvalidArgument("queue_capacity must be positive");
    }
    if (max_producers == 0) {
      return Status::InvalidArgument("max_producers must be positive");
    }
    if (max_batch == 0) {
      return Status::InvalidArgument("max_batch must be positive");
    }
    if (checkpoint_period_ms > 0 && checkpoint_dir.empty()) {
      return Status::InvalidArgument(
          "checkpoint_period_ms requires a checkpoint_dir");
    }
    if (rebalance_period_ms > 0 && rebalance_hysteresis <= 1.0) {
      return Status::InvalidArgument(
          "rebalance_hysteresis must exceed 1.0");
    }
    if (!kernel_backend.empty() && kernel_backend != "auto" &&
        kernel_backend != "scalar" && kernel_backend != "avx2" &&
        kernel_backend != "avx512") {
      return Status::InvalidArgument(
          "kernel_backend must be one of \"\", auto, scalar, avx2, avx512");
    }
    return Status::OK();
  }
};

}  // namespace stardust

#endif  // STARDUST_ENGINE_ENGINE_CONFIG_H_
