#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/kernels.h"
#include "common/serialize.h"
#include "core/snapshot.h"
#include "geom/mbr.h"
#include "rtree/rtree.h"

namespace stardust {

namespace {

std::atomic<std::uint64_t> g_next_engine_id{1};

/// Producer registration cache: which slot this thread holds on which
/// engine (keyed by a process-unique engine id, so a recycled engine
/// address can never alias a stale entry). A thread rarely talks to more
/// than a couple of engines, so a flat vector beats a hash map.
struct TlsProducerEntry {
  std::uint64_t engine_id = 0;
  std::uint32_t slot = 0;
};
thread_local std::vector<TlsProducerEntry> tls_producer_slots;

}  // namespace

Result<std::unique_ptr<IngestEngine>> IngestEngine::Create(
    const StardustConfig& config, std::vector<WindowThreshold> thresholds,
    std::size_t num_streams, const EngineConfig& engine_config,
    const std::string& restore_dir) {
  SD_RETURN_NOT_OK(engine_config.Validate());
  if (num_streams == 0) {
    return Status::InvalidArgument("need at least one stream");
  }
  if (!engine_config.kernel_backend.empty()) {
    // Validate() vetted the name; SetBackend clamps requests above what
    // this CPU supports. Process-wide, like the STARDUST_KERNELS override.
    kernels::SetBackend(engine_config.kernel_backend);
  }
  const std::size_t num_shards =
      std::min(engine_config.num_shards, num_streams);

  CheckpointManifest manifest;
  const bool restoring = !restore_dir.empty();
  if (restoring) {
    Result<CheckpointManifest> found = FindLatestValidCheckpoint(restore_dir);
    if (!found.ok()) return found.status();
    manifest = std::move(found).value();
    if (manifest.num_streams != num_streams) {
      return Status::InvalidArgument(
          "checkpoint has " + std::to_string(manifest.num_streams) +
          " streams, engine was asked for " + std::to_string(num_streams));
    }
    if (manifest.num_shards != num_shards) {
      return Status::InvalidArgument(
          "checkpoint has " + std::to_string(manifest.num_shards) +
          " shards, engine would run " + std::to_string(num_shards) +
          "; stream placement would not line up");
    }
  }

  // Feature-store ring capacity: explicit override, or derived from the
  // cache geometry so one shard's hot store set (every local stream at
  // every monitored correlation level) fits in roughly half the L2. When
  // shards outnumber cores they share an L2, so the budget shrinks by the
  // sharing factor. Unknown cache or no correlation core falls back to
  // the pipeline's fixed default inside DeriveStoreCapacity.
  std::size_t store_capacity = engine_config.store_capacity;
  if (store_capacity == 0 && engine_config.query.enable_correlation) {
    const StardustConfig& corr = engine_config.query.correlation;
    std::size_t entry_bytes = 0;
    for (std::size_t j = 0; j < corr.num_levels; ++j) {
      entry_bytes +=
          FeatureStoreEntryBytes(corr.base_window << j, corr.coefficients);
    }
    const std::size_t max_local_streams =
        (num_streams + num_shards - 1) / num_shards;
    const std::size_t cores = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
    const std::size_t sharing = (num_shards + cores - 1) / cores;
    std::size_t cache_bytes = engine_config.cache_bytes != 0
                                  ? engine_config.cache_bytes
                                  : ProbedL2CacheBytes();
    cache_bytes /= std::max<std::size_t>(1, sharing);
    store_capacity =
        DeriveStoreCapacity(max_local_streams, entry_bytes, cache_bytes);
  } else if (store_capacity == 0) {
    store_capacity = FeaturePipeline::kDefaultStoreCapacity;
  }

  // Placement: a fresh engine (and any pre-v6 checkpoint) routes by the
  // modulo-hash default; a v6 checkpoint carries the slot tables its
  // shard files were laid out under, parsed and validated here.
  std::uint64_t placement_epoch = 0;
  std::vector<std::vector<StreamId>> restored_mappings;
  if (restoring && !manifest.placement_file.empty()) {
    const std::filesystem::path placement_path =
        std::filesystem::path(restore_dir) / manifest.placement_file;
    Result<std::string> read = ReadFileToString(placement_path.string());
    if (!read.ok()) return read.status();
    const std::string placement_bytes = std::move(read).value();
    Reader reader(placement_bytes);
    std::uint64_t file_shards = 0;
    SD_RETURN_NOT_OK(reader.U64(&placement_epoch));
    SD_RETURN_NOT_OK(reader.U64(&file_shards));
    if (file_shards != num_shards) {
      return Status::InvalidArgument(
          "checkpoint placement shard count disagrees with manifest");
    }
    restored_mappings.resize(num_shards);
    std::size_t resident = 0;
    std::vector<char> seen(num_streams, 0);
    for (std::size_t s = 0; s < num_shards; ++s) {
      std::uint64_t slots = 0;
      SD_RETURN_NOT_OK(reader.U64(&slots));
      if (slots > reader.remaining() / 8) {
        return Status::InvalidArgument("checkpoint placement truncated");
      }
      restored_mappings[s].reserve(slots);
      for (std::uint64_t i = 0; i < slots; ++i) {
        std::uint64_t global = 0;
        SD_RETURN_NOT_OK(reader.U64(&global));
        const StreamId id = static_cast<StreamId>(global);
        if (id != kNoStream) {
          if (global >= num_streams || seen[id] != 0) {
            return Status::InvalidArgument(
                "checkpoint placement names an invalid or duplicate "
                "stream");
          }
          seen[id] = 1;
          ++resident;
        }
        restored_mappings[s].push_back(id);
      }
    }
    if (!reader.AtEnd() || resident != num_streams) {
      return Status::InvalidArgument(
          "checkpoint placement does not cover every stream");
    }
  }

  std::unique_ptr<IngestEngine> engine(
      new IngestEngine(engine_config, num_streams));
  engine->core_config_ = config;
  engine->placement_ =
      std::make_unique<PlacementTable>(num_streams, num_shards);
  if (!restored_mappings.empty()) {
    std::vector<std::uint32_t> shard_of(num_streams, 0);
    for (std::size_t s = 0; s < restored_mappings.size(); ++s) {
      for (const StreamId global : restored_mappings[s]) {
        if (global != kNoStream) {
          shard_of[global] = static_cast<std::uint32_t>(s);
        }
      }
    }
    SD_RETURN_NOT_OK(engine->placement_->Reset(placement_epoch, shard_of));
  }
  engine->registry_ =
      std::make_unique<QueryRegistry>(config, engine_config.query);
  engine->alert_bus_ = std::make_unique<AlertBus>(
      engine_config.query.alert_capacity, engine_config.query.alert_overflow);
  if (restoring && !manifest.queries_file.empty()) {
    const std::filesystem::path queries_path =
        std::filesystem::path(restore_dir) / manifest.queries_file;
    Result<std::string> bytes = ReadFileToString(queries_path.string());
    if (!bytes.ok()) return bytes.status();
    SD_RETURN_NOT_OK(engine->registry_->Restore(bytes.value()));
  }
  engine->shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    // Default layout: streams s, s + N, s + 2N, ... live on shard s. A
    // restored v6 placement sizes each shard by its checkpointed slot
    // table instead (tombstoned slots included).
    const std::size_t local_streams =
        restored_mappings.empty()
            ? (num_streams - s + num_shards - 1) / num_shards
            : restored_mappings[s].size();
    std::unique_ptr<FleetAggregateMonitor> fleet;
    if (restoring) {
      const std::filesystem::path shard_path =
          std::filesystem::path(restore_dir) / manifest.shards[s].file;
      Result<std::unique_ptr<FleetAggregateMonitor>> restored =
          LoadFleetSnapshot(shard_path.string());
      if (!restored.ok()) return restored.status();
      fleet = std::move(restored).value();
      if (fleet->num_streams() != local_streams) {
        return Status::InvalidArgument(
            "checkpoint shard " + std::to_string(s) +
            " stream count disagrees with placement");
      }
      if (fleet->num_windows() != thresholds.size()) {
        return Status::InvalidArgument(
            "checkpoint window count disagrees with requested thresholds");
      }
      for (std::size_t w = 0; w < thresholds.size(); ++w) {
        if (fleet->threshold(w).window != thresholds[w].window ||
            fleet->threshold(w).threshold != thresholds[w].threshold) {
          return Status::InvalidArgument(
              "checkpoint thresholds disagree with requested thresholds");
        }
      }
    } else {
      Result<std::unique_ptr<FleetAggregateMonitor>> created =
          FleetAggregateMonitor::Create(config, thresholds, local_streams);
      if (!created.ok()) return created.status();
      fleet = std::move(created).value();
    }
    // The query cores are per-shard Stardust instances over the same
    // local streams, owned by the shard's feature pipeline together with
    // the shared feature store.
    std::unique_ptr<Stardust> pattern_core;
    if (engine_config.query.enable_patterns) {
      Result<std::unique_ptr<Stardust>> core =
          Stardust::Create(engine_config.query.pattern);
      if (!core.ok()) return core.status();
      pattern_core = std::move(core).value();
      for (std::size_t i = 0; i < local_streams; ++i) {
        pattern_core->AddStream();
      }
    }
    std::unique_ptr<Stardust> corr_core;
    if (engine_config.query.enable_correlation) {
      Result<std::unique_ptr<Stardust>> core =
          Stardust::Create(engine_config.query.correlation);
      if (!core.ok()) return core.status();
      corr_core = std::move(core).value();
      for (std::size_t i = 0; i < local_streams; ++i) {
        corr_core->AddStream();
      }
    }
    auto pipeline = std::make_unique<FeaturePipeline>(
        std::move(pattern_core), std::move(corr_core), local_streams,
        store_capacity);
    ShardOptions shard_options;
    if (engine_config.pin_shards) {
      const std::size_t cores = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
      shard_options.pin = true;
      shard_options.pin_core = s % cores;
      shard_options.pin_hook = engine_config.pin_hook;
    }
    engine->shards_.push_back(std::make_unique<Shard>(
        s, num_shards, engine_config.max_producers,
        engine_config.queue_capacity, engine_config.overload,
        engine_config.max_batch, std::move(fleet), std::move(pipeline),
        engine->registry_.get(), engine->alert_bus_.get(),
        engine->metrics_.get(), std::move(shard_options)));
    if (restoring) {
      engine->shards_.back()->RestoreProgress(manifest.shards[s].epoch,
                                              manifest.shards[s].appended);
      // Manifest v3 carries the feature pipelines (query cores + feature
      // store); pre-v3 checkpoints leave them empty and they warm up as
      // tuples flow (the pre-v3 behavior).
      if (!manifest.features.empty()) {
        const std::filesystem::path features_path =
            std::filesystem::path(restore_dir) / manifest.features[s].file;
        Result<std::string> feature_bytes =
            ReadFileToString(features_path.string());
        if (!feature_bytes.ok()) return feature_bytes.status();
        SD_RETURN_NOT_OK(
            engine->shards_.back()->RestoreFeatures(feature_bytes.value()));
      }
      if (!restored_mappings.empty()) {
        SD_RETURN_NOT_OK(engine->shards_.back()->SetStreamMapping(
            restored_mappings[s]));
      }
      // Manifest v6 carries the rising-edge maps; pre-v6 checkpoints
      // leave them empty and the restore errs toward re-announcing.
      if (!manifest.edges.empty()) {
        const std::filesystem::path edge_path =
            std::filesystem::path(restore_dir) / manifest.edges[s].file;
        Result<std::string> edge_bytes =
            ReadFileToString(edge_path.string());
        if (!edge_bytes.ok()) return edge_bytes.status();
        SD_RETURN_NOT_OK(
            engine->shards_.back()->RestoreEdges(edge_bytes.value()));
      }
    }
  }
  SD_CHECK(!engine->shards_.empty());
  if (restoring) {
    // Continue the checkpoint lineage instead of restarting at 1, so the
    // next checkpoint never collides with (or sorts below) the one just
    // restored.
    engine->next_checkpoint_seq_ = manifest.seq + 1;
    engine->last_checkpoint_seq_.store(manifest.seq,
                                       std::memory_order_release);
    if (!manifest.net_file.empty()) {
      const std::filesystem::path net_path =
          std::filesystem::path(restore_dir) / manifest.net_file;
      Result<std::string> net_bytes = ReadFileToString(net_path.string());
      if (!net_bytes.ok()) return net_bytes.status();
      engine->restored_net_state_ = std::move(net_bytes).value();
    }
  }
  if (engine_config.query.enable_correlation) {
    // Correlator-side state, sized before any thread can observe it: the
    // per-level eval counters and the probe pool (0 workers on a
    // single-core host — Run stays inline).
    const std::size_t levels = engine_config.query.correlation.num_levels;
    engine->metrics_->correlator_level_evals =
        std::make_unique<std::atomic<std::uint64_t>[]>(levels);
    engine->metrics_->correlator_num_levels = levels;
    engine->probe_pool_ = std::make_unique<ProbePool>(
        ProbePool::ResolveWorkers(
            engine_config.query.correlator_probe_workers));
  }
  engine->alert_bus_->Start();
  for (auto& shard : engine->shards_) {
    if (engine_config.start_paused) shard->set_paused(true);
    shard->Start();
  }
  engine->StartCheckpointThread();
  engine->StartCorrelatorThread();
  engine->StartRebalanceThread();
  return engine;
}

IngestEngine::IngestEngine(const EngineConfig& config,
                           std::size_t num_streams)
    : engine_id_(g_next_engine_id.fetch_add(1, std::memory_order_relaxed)),
      config_(config),
      num_streams_(num_streams),
      metrics_(std::make_unique<EngineMetrics>()),
      producer_seq_(std::make_unique<std::atomic<std::uint64_t>[]>(
          config.max_producers)) {}

IngestEngine::~IngestEngine() { Stop(); }

Result<std::size_t> IngestEngine::ProducerSlot() {
  for (const TlsProducerEntry& entry : tls_producer_slots) {
    if (entry.engine_id == engine_id_) return std::size_t{entry.slot};
  }
  const std::uint32_t slot =
      next_producer_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= config_.max_producers) {
    return Status::FailedPrecondition(
        "too many producer threads; raise EngineConfig::max_producers");
  }
  tls_producer_slots.push_back({engine_id_, slot});
  return std::size_t{slot};
}

Status IngestEngine::Post(StreamId stream, double value) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  if (stream >= num_streams_) {
    return Status::InvalidArgument("unknown stream");
  }
  Result<std::size_t> slot = ProducerSlot();
  if (!slot.ok()) return slot.status();
  // Routing window (odd = inside): the placement snapshot is loaded and
  // the push lands before the counter returns to even, so a migration's
  // quiescence wait can order its drain barrier after every push that
  // routed by the superseded epoch.
  std::atomic<std::uint64_t>& seq = producer_seq_[slot.value()];
  seq.fetch_add(1, std::memory_order_seq_cst);
  const PlacementTable::Snapshot* placement = placement_->Acquire();
  const Status status =
      shards_[placement->shard_of[stream]]->Push(slot.value(), stream, value);
  seq.fetch_add(1, std::memory_order_seq_cst);
  return status;
}

Result<PostOutcome> IngestEngine::TryPost(StreamId stream, double value) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  if (stream >= num_streams_) {
    return Status::InvalidArgument("unknown stream");
  }
  Result<std::size_t> slot = ProducerSlot();
  if (!slot.ok()) return slot.status();
  std::atomic<std::uint64_t>& seq = producer_seq_[slot.value()];
  seq.fetch_add(1, std::memory_order_seq_cst);
  const PlacementTable::Snapshot* placement = placement_->Acquire();
  const PostOutcome outcome =
      shards_[placement->shard_of[stream]]->TryPush(slot.value(), stream,
                                                    value);
  seq.fetch_add(1, std::memory_order_seq_cst);
  return outcome;
}

Status IngestEngine::PostBatch(std::span<const StreamValue> tuples) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  Result<std::size_t> slot = ProducerSlot();
  if (!slot.ok()) return slot.status();
  // One routing window for the whole batch: every push routes by one
  // placement snapshot, and a concurrent migration waits the window out
  // before reading its drain barrier.
  std::atomic<std::uint64_t>& seq = producer_seq_[slot.value()];
  seq.fetch_add(1, std::memory_order_seq_cst);
  const PlacementTable::Snapshot* placement = placement_->Acquire();
  Status status = Status::OK();
  for (const StreamValue& tuple : tuples) {
    if (tuple.stream >= num_streams_) {
      status = Status::InvalidArgument("unknown stream");
      break;
    }
    status = shards_[placement->shard_of[tuple.stream]]->Push(
        slot.value(), tuple.stream, tuple.value);
    if (!status.ok()) break;
  }
  seq.fetch_add(1, std::memory_order_seq_cst);
  return status;
}

void IngestEngine::WaitProducersQuiescent() const {
  const std::uint32_t producers =
      std::min(next_producer_.load(std::memory_order_seq_cst),
               static_cast<std::uint32_t>(config_.max_producers));
  for (std::uint32_t i = 0; i < producers; ++i) {
    const std::uint64_t seq =
        producer_seq_[i].load(std::memory_order_seq_cst);
    if ((seq & 1) == 0) continue;  // outside any routing window
    // Inside a window entered before (or racing) the placement flip:
    // wait for the counter to move. The next window re-loads the
    // snapshot and routes by the new epoch.
    while (producer_seq_[i].load(std::memory_order_seq_cst) == seq) {
      std::this_thread::sleep_for(std::chrono::microseconds(10));
    }
  }
}

Status IngestEngine::Flush() {
  // Per-ring barriers, like a migration's source drain: exact for the
  // tuples enqueued before the snapshot even while other producers keep
  // posting concurrently.
  std::vector<std::vector<std::uint64_t>> targets;
  targets.reserve(shards_.size());
  for (const auto& shard : shards_) {
    targets.push_back(shard->RingEnqueueCursors());
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    while (!shards_[s]->RingsDrainedPast(targets[s])) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // A tuple parked for an in-flight migration is retired from its ring's
  // point of view but not yet applied; wait until every park has drained
  // so "flushed" keeps meaning "applied".
  for (const auto& shard : shards_) {
    while (!shard->ParkDrained()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // Alerts for a batch are published after the apply counters move; wait
  // until every shard's publication watermark catches up with what it has
  // applied, then drain the bus so the sinks have seen everything.
  for (const auto& shard : shards_) {
    const std::uint64_t applied = shard->applied();
    while (shard->alert_progress() < applied) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  if (!stopped_.load(std::memory_order_acquire)) {
    SD_RETURN_NOT_OK(alert_bus_->WaitDrained());
  }
  for (const auto& shard : shards_) {
    SD_RETURN_NOT_OK(shard->worker_status());
  }
  return Status::OK();
}

Status IngestEngine::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) {
    return Status::OK();
  }
  StopRebalanceThread();
  StopCheckpointThread();
  StopCorrelatorThread();
  // Wait out an in-flight manual migration (its worker-progress spins
  // need the workers alive); a migration that starts after this barrier
  // sees stopped_ and refuses.
  { std::lock_guard<std::mutex> migration_lock(migration_mu_); }
  accepting_.store(false, std::memory_order_release);
  for (auto& shard : shards_) {
    shard->set_paused(false);  // a paused worker must wake up to drain
    shard->RequestStop();
  }
  for (auto& shard : shards_) shard->Join();
  // Workers are quiet; drain every queued alert to the sinks and flush
  // them so file sinks are durable when Stop returns.
  alert_bus_->Stop();
  for (const auto& shard : shards_) {
    SD_RETURN_NOT_OK(shard->worker_status());
  }
  return Status::OK();
}

void IngestEngine::Pause() {
  for (auto& shard : shards_) shard->set_paused(true);
}

void IngestEngine::Resume() {
  for (auto& shard : shards_) shard->set_paused(false);
}

AlarmStats IngestEngine::StreamTotal(StreamId stream) const {
  SD_CHECK(stream < num_streams_);
  AlarmStats out;
  if (shards_[ShardOf(stream)]->FindStreamTotal(stream, &out, nullptr)) {
    return out;
  }
  // Mid-migration gap: the placement names the target before the state
  // installs there. Whichever shard still holds the slice answers.
  for (const auto& shard : shards_) {
    if (shard->FindStreamTotal(stream, &out, nullptr)) return out;
  }
  return AlarmStats{};
}

AlarmStats IngestEngine::FleetTotal(
    std::vector<ShardStamp>* stamps) const {
  if (stamps != nullptr) {
    stamps->clear();
    stamps->reserve(shards_.size());
  }
  AlarmStats total;
  for (const auto& shard : shards_) {
    ShardStamp stamp;
    const AlarmStats s = shard->ShardTotal(&stamp);
    total.candidates += s.candidates;
    total.true_alarms += s.true_alarms;
    total.checks += s.checks;
    if (stamps != nullptr) stamps->push_back(stamp);
  }
  return total;
}

Result<std::vector<StreamId>> IngestEngine::CurrentlyAlarming(
    std::size_t window_index, std::vector<ShardStamp>* stamps) const {
  if (stamps != nullptr) {
    stamps->clear();
    stamps->reserve(shards_.size());
  }
  std::vector<StreamId> alarming;
  for (const auto& shard : shards_) {
    ShardStamp stamp;
    Result<std::vector<StreamId>> local =
        shard->CurrentlyAlarming(window_index, &stamp);
    if (!local.ok()) return local.status();
    // Shards report global ids directly off their slot tables.
    alarming.insert(alarming.end(), local.value().begin(),
                    local.value().end());
    if (stamps != nullptr) stamps->push_back(stamp);
  }
  std::sort(alarming.begin(), alarming.end());
  return alarming;
}

std::uint64_t IngestEngine::StreamAppendCount(StreamId stream) const {
  SD_CHECK(stream < num_streams_);
  std::uint64_t count = 0;
  if (shards_[ShardOf(stream)]->FindStreamAppendCount(stream, &count)) {
    return count;
  }
  for (const auto& shard : shards_) {
    if (shard->FindStreamAppendCount(stream, &count)) return count;
  }
  return 0;
}

Status IngestEngine::DebugStreamState(StreamId stream,
                                      std::string* blob) const {
  if (stream >= num_streams_) {
    return Status::InvalidArgument("unknown stream");
  }
  const Status owned =
      shards_[ShardOf(stream)]->SerializeStream(stream, blob);
  if (owned.ok()) return owned;
  for (const auto& shard : shards_) {
    if (shard->SerializeStream(stream, blob).ok()) return Status::OK();
  }
  return owned;
}

Status IngestEngine::MigrateStream(StreamId stream, std::size_t from,
                                   std::size_t to) {
  if (stream >= num_streams_) {
    return Status::InvalidArgument("unknown stream");
  }
  if (from >= shards_.size() || to >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  if (from == to) {
    return Status::InvalidArgument(
        "migration source and target are the same shard");
  }
  std::lock_guard<std::mutex> lock(migration_mu_);
  if (stopped_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  if (placement_->ShardOf(stream) != from) {
    return Status::FailedPrecondition(
        "stream is not on the requested source shard");
  }
  if (shards_[from]->paused() || shards_[to]->paused()) {
    // A paused worker can neither drain the source's rings nor apply the
    // target's park; refusing beats deadlocking the migration.
    return Status::FailedPrecondition(
        "cannot migrate to or from a paused shard");
  }
  const auto start = std::chrono::steady_clock::now();
  // 1. The target begins parking the stream's tuples in arrival order.
  SD_RETURN_NOT_OK(shards_[to]->PrepareReceive(stream));
  // 2. Flip the placement: every routing window opened from here on
  // pushes the stream to the target (parked until its state installs).
  SD_RETURN_NOT_OK(placement_->SetShard(stream, to));
  // 3. Wait out producers still inside a window opened under the old
  // epoch, then drain the source past a per-ring barrier: after it
  // passes, every tuple routed here under the old epoch has been
  // applied, and the rings hold nothing more for this stream, ever.
  // The barrier must be per-ring — an aggregate retired-vs-enqueued
  // comparison can be satisfied by post-flip traffic from other
  // producers' rings while the migrating stream's last tuples still sit
  // queued, and extracting then would strand them.
  WaitProducersQuiescent();
  const std::vector<std::uint64_t> barrier =
      shards_[from]->RingEnqueueCursors();
  while (!shards_[from]->RingsDrainedPast(barrier)) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
  // 4. Move the state. The correlator round lock is held across the
  // extract/install gap so no round can observe a fleet without the
  // stream and spuriously re-alert its pairs when it reappears.
  std::string blob;
  {
    std::lock_guard<std::mutex> round_lock(correlator_round_mu_);
    SD_RETURN_NOT_OK(shards_[from]->ExtractStream(stream, &blob));
    SD_RETURN_NOT_OK(shards_[to]->InstallStream(stream, blob));
  }
  // 5. Live on the target once the parked backlog has applied.
  while (!shards_[to]->ParkDrained()) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
  metrics_->migrations.fetch_add(1, std::memory_order_relaxed);
  metrics_->migrated_bytes.fetch_add(blob.size(),
                                     std::memory_order_relaxed);
  metrics_->migration_latency.Record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return Status::OK();
}

void IngestEngine::StartRebalanceThread() {
  if (config_.rebalance_period_ms == 0) return;
  rebalance_thread_ = std::thread([this] { RebalanceLoop(); });
}

void IngestEngine::StopRebalanceThread() {
  if (!rebalance_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(rebalance_cv_mu_);
    rebalance_stop_ = true;
  }
  rebalance_cv_.notify_all();
  rebalance_thread_.join();
}

void IngestEngine::RebalanceLoop() {
  const auto period =
      std::chrono::milliseconds(config_.rebalance_period_ms);
  // Ticks a migrated stream sits out before it may move again — the
  // second hysteresis stage, against ping-ponging one stream.
  constexpr std::uint64_t kCooldownTicks = 8;
  // Ticks the whole loop observes without acting after any migration:
  // the move itself pollutes the next deltas (the source drained, the
  // target replayed a parked backlog), and deciding on them would
  // cascade a second bogus move — e.g. stacking both hot streams onto
  // the shard that just received one.
  constexpr std::uint64_t kSettleTicks = 2;
  std::vector<std::uint64_t> prev_shard(shards_.size(), 0);
  std::unordered_map<StreamId, std::uint64_t> prev_stream;
  std::unordered_map<StreamId, std::uint64_t> cooldown_until;
  std::uint64_t settle_until = 0;
  std::uint64_t tick = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(rebalance_cv_mu_);
      if (rebalance_cv_.wait_for(lock, period,
                                 [this] { return rebalance_stop_; })) {
        return;
      }
    }
    ++tick;
    // Per-shard applied deltas over this tick: the load signal.
    std::size_t hottest = 0;
    std::size_t coldest = 0;
    std::uint64_t max_delta = 0;
    std::uint64_t min_delta = ~std::uint64_t{0};
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::uint64_t applied = shards_[s]->applied();
      const std::uint64_t delta = applied - prev_shard[s];
      prev_shard[s] = applied;
      if (delta > max_delta) {
        max_delta = delta;
        hottest = s;
      }
      if (delta < min_delta) {
        min_delta = delta;
        coldest = s;
      }
    }
    // Per-stream deltas, scraped from every shard each tick so a
    // stream's history stays continuous across its own migrations. The
    // candidate is the hottest shard's hottest stream not in cooldown.
    StreamId candidate = kNoStream;
    std::uint64_t candidate_delta = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      for (const auto& [global, count] : shards_[s]->StreamAppendCounts()) {
        const auto [it, inserted] = prev_stream.try_emplace(global, 0);
        const std::uint64_t delta = count - it->second;
        it->second = count;
        if (s == hottest && delta > candidate_delta &&
            tick >= cooldown_until[global]) {
          candidate = global;
          candidate_delta = delta;
        }
      }
    }
    // The counters above are re-baselined every tick even while
    // settling, so the first post-settle decision sees clean deltas.
    if (tick < settle_until) continue;
    if (max_delta < config_.rebalance_min_delta) continue;  // trickle/idle
    if (static_cast<double>(max_delta) <=
        config_.rebalance_hysteresis * static_cast<double>(min_delta)) {
      continue;  // balanced enough; never oscillate a balanced fleet
    }
    if (candidate == kNoStream || candidate_delta == 0) continue;
    if (candidate_delta > max_delta - min_delta) {
      // Overshoot guard: moving a stream hotter than the whole skew
      // would only invert the imbalance next tick.
      continue;
    }
    // One migration per tick; the next tick re-measures before moving
    // anything else.
    if (MigrateStream(candidate, hottest, coldest).ok()) {
      cooldown_until[candidate] = tick + kCooldownTicks;
      settle_until = tick + 1 + kSettleTicks;
    }
  }
}

std::vector<ShardMetricsSnapshot> IngestEngine::ShardMetrics() const {
  std::vector<ShardMetricsSnapshot> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->MetricsSnapshot());
  return out;
}

std::string IngestEngine::MetricsJson() const {
  return EngineMetricsJson(*metrics_, ShardMetrics(), registry_->Metrics());
}

Status IngestEngine::Checkpoint(const std::string& dir) {
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  // No migration may run while the per-shard slot tables are captured:
  // otherwise a stream could appear in two shards' mappings (or
  // neither). Ingestion itself keeps flowing. Lock order is always
  // checkpoint_mu_ then migration_mu_; migrations never take
  // checkpoint_mu_, so there is no cycle.
  std::lock_guard<std::mutex> migration_lock(migration_mu_);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("cannot create checkpoint directory " + dir +
                            ": " + ec.message());
  }

  const std::uint64_t seq = next_checkpoint_seq_;
  CheckpointManifest manifest;
  manifest.seq = seq;
  manifest.num_streams = num_streams_;
  manifest.num_shards = shards_.size();
  manifest.queue_capacity = config_.queue_capacity;
  manifest.max_producers = config_.max_producers;
  manifest.max_batch = config_.max_batch;
  manifest.overload = static_cast<std::uint8_t>(config_.overload);
  manifest.shards.reserve(shards_.size());

  // Serialize and persist shard by shard. Each SerializeState holds only
  // that shard's state mutex, so ingestion keeps flowing on every other
  // shard (and on this one, into its rings) while the checkpoint runs.
  // The feature pipeline bytes come out of the same mutex hold as the
  // fleet bytes, so the two files describe one point in the apply
  // sequence.
  manifest.features.reserve(shards_.size());
  manifest.edges.reserve(shards_.size());
  std::vector<std::vector<StreamId>> mappings(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard* shard = shards_[s].get();
    ShardStamp stamp;
    std::string feature_bytes;
    std::string edge_bytes;
    const std::string bytes = shard->SerializeState(
        &stamp, &feature_bytes, &mappings[s], &edge_bytes);
    CheckpointShardEntry entry;
    entry.file = CheckpointShardFileName(shard->index(), seq);
    entry.epoch = stamp.epoch;
    entry.appended = stamp.appended;
    entry.checksum = Fnv1a(bytes);
    const std::filesystem::path path = std::filesystem::path(dir) / entry.file;
    const Status written = AtomicWriteFile(path.string(), bytes);
    if (!written.ok()) {
      metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      return written;
    }
    manifest.shards.push_back(std::move(entry));

    CheckpointFeatureEntry feature_entry;
    feature_entry.file = CheckpointFeaturesFileName(shard->index(), seq);
    feature_entry.checksum = Fnv1a(feature_bytes);
    const std::filesystem::path feature_path =
        std::filesystem::path(dir) / feature_entry.file;
    const Status feature_written =
        AtomicWriteFile(feature_path.string(), feature_bytes);
    if (!feature_written.ok()) {
      metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      return feature_written;
    }
    manifest.features.push_back(std::move(feature_entry));

    // The rising-edge maps ride next to the feature bytes (manifest v6):
    // without them a restore would re-announce every condition that was
    // already alarming when the checkpoint was taken.
    CheckpointFeatureEntry edge_entry;
    edge_entry.file = CheckpointEdgesFileName(shard->index(), seq);
    edge_entry.checksum = Fnv1a(edge_bytes);
    const std::filesystem::path edge_path =
        std::filesystem::path(dir) / edge_entry.file;
    const Status edge_written =
        AtomicWriteFile(edge_path.string(), edge_bytes);
    if (!edge_written.ok()) {
      metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      return edge_written;
    }
    manifest.edges.push_back(std::move(edge_entry));
  }

  // The query registry rides every checkpoint (even when empty, so the
  // id allocator's lineage survives a restore and ids are never reused).
  {
    const std::string bytes = registry_->Serialize();
    manifest.queries_file = CheckpointQueriesFileName(seq);
    manifest.queries_checksum = Fnv1a(bytes);
    const std::filesystem::path path =
        std::filesystem::path(dir) / manifest.queries_file;
    const Status written = AtomicWriteFile(path.string(), bytes);
    if (!written.ok()) {
      metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      return written;
    }
  }

  // The network tier's state (alert sequence allocator, subscriber
  // cursors, replay ring) rides along when a provider is attached
  // (manifest v4). Taken after the shard snapshots: the hub state may be
  // slightly fresher than the shards, which errs toward retaining — a
  // replayed alert is deduplicated by its sequence number downstream.
  if (net_state_provider_) {
    const std::string bytes = net_state_provider_();
    if (!bytes.empty()) {
      manifest.net_file = CheckpointNetFileName(seq);
      manifest.net_checksum = Fnv1a(bytes);
      const std::filesystem::path path =
          std::filesystem::path(dir) / manifest.net_file;
      const Status written = AtomicWriteFile(path.string(), bytes);
      if (!written.ok()) {
        metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
        return written;
      }
    }
  }

  // The stream placement rides the checkpoint (manifest v6): the
  // placement epoch plus every shard's local->global slot table,
  // captured under the same migration_mu_ hold as the shard bytes so
  // the restore lays streams out exactly as the shard files were
  // written.
  {
    Writer placement_writer;
    placement_writer.U64(placement_->epoch());
    placement_writer.U64(shards_.size());
    for (const std::vector<StreamId>& mapping : mappings) {
      placement_writer.U64(mapping.size());
      for (const StreamId global : mapping) {
        placement_writer.U64(global);
      }
    }
    const std::string& bytes = placement_writer.buffer();
    manifest.placement_file = CheckpointPlacementFileName(seq);
    manifest.placement_checksum = Fnv1a(bytes);
    const std::filesystem::path path =
        std::filesystem::path(dir) / manifest.placement_file;
    const Status written = AtomicWriteFile(path.string(), bytes);
    if (!written.ok()) {
      metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      return written;
    }
  }

  // The manifest is the commit point: until this rename lands, recovery
  // still resolves to the previous checkpoint.
  const std::filesystem::path manifest_path =
      std::filesystem::path(dir) / CheckpointManifestFileName(seq);
  const Status committed =
      AtomicWriteFile(manifest_path.string(), SerializeManifest(manifest));
  if (!committed.ok()) {
    metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
    return committed;
  }

  const std::uint64_t prev =
      last_checkpoint_seq_.load(std::memory_order_relaxed);
  next_checkpoint_seq_ = seq + 1;
  last_checkpoint_seq_.store(seq, std::memory_order_release);
  metrics_->checkpoints.fetch_add(1, std::memory_order_relaxed);
  // Keep the new checkpoint plus the previous one as a fallback; drop
  // anything older and any .tmp leftovers of interrupted attempts.
  GarbageCollectCheckpoints(dir, prev != 0 ? prev : seq);
  return Status::OK();
}

void IngestEngine::SetNetStateProvider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  net_state_provider_ = std::move(provider);
}

void IngestEngine::StartCheckpointThread() {
  if (config_.checkpoint_period_ms == 0) return;
  checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
}

void IngestEngine::StopCheckpointThread() {
  if (!checkpoint_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(checkpoint_cv_mu_);
    checkpoint_stop_ = true;
  }
  checkpoint_cv_.notify_all();
  checkpoint_thread_.join();
}

void IngestEngine::CheckpointLoop() {
  const auto period = std::chrono::milliseconds(config_.checkpoint_period_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(checkpoint_cv_mu_);
      if (checkpoint_cv_.wait_for(lock, period,
                                  [this] { return checkpoint_stop_; })) {
        return;
      }
    }
    // Failures are counted in metrics (checkpoint_failures) and retried
    // at the next period; the background thread never takes the engine
    // down over a transient filesystem error.
    (void)Checkpoint(config_.checkpoint_dir);
  }
}

void IngestEngine::StartCorrelatorThread() {
  if (!config_.query.enable_correlation) return;
  correlator_thread_ = std::thread([this] { CorrelatorLoop(); });
}

void IngestEngine::StopCorrelatorThread() {
  if (!correlator_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(correlator_cv_mu_);
    correlator_stop_ = true;
  }
  correlator_cv_.notify_all();
  correlator_thread_.join();
}

void IngestEngine::CorrelatorLoop() {
  const auto period =
      std::chrono::milliseconds(config_.query.correlator_period_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(correlator_cv_mu_);
      if (correlator_cv_.wait_for(lock, period,
                                  [this] { return correlator_stop_; })) {
        return;
      }
    }
    RunCorrelatorRound();
  }
}

void IngestEngine::TriggerCorrelatorRound() { RunCorrelatorRound(); }

void IngestEngine::RunCorrelatorRound() {
  std::lock_guard<std::mutex> round_lock(correlator_round_mu_);
  // The correlator consumes the same compiled-plan form as the shard
  // workers: correlation queries grouped by resolved level, recompiled
  // only when the registry version moves.
  const std::uint64_t version = registry_->version();
  if (corr_plan_ == nullptr || version != corr_plan_version_) {
    const std::shared_ptr<const QueryRegistry::Snapshot> snapshot =
        registry_->snapshot();
    PlanContext ctx;
    ctx.fleet = &core_config_;
    ctx.pattern = config_.query.enable_patterns ? &config_.query.pattern
                                                : nullptr;
    ctx.correlation = config_.query.enable_correlation
                          ? &config_.query.correlation
                          : nullptr;
    corr_plan_ = CompileEvalPlan(*snapshot, version, ctx);
    corr_plan_version_ = version;
    // Drop rising-edge state of queries that left the registry, so the
    // map cannot grow without bound under register/unregister churn.
    for (auto it = corr_active_pairs_.begin();
         it != corr_active_pairs_.end();) {
      bool live = false;
      for (const EvalPlan::CorrelationGroup& group :
           corr_plan_->correlation) {
        for (const auto& q : group.queries) {
          if (q->id == it->first) {
            live = true;
            break;
          }
        }
        if (live) break;
      }
      it = live ? std::next(it) : corr_active_pairs_.erase(it);
    }
    // Prune the persistent per-level indexes of levels the new plan no
    // longer monitors, so state cannot grow without bound as queries on
    // exotic levels come and go.
    for (auto it = corr_levels_.begin(); it != corr_levels_.end();) {
      bool monitored = false;
      for (const EvalPlan::CorrelationGroup& group :
           corr_plan_->correlation) {
        if (group.level == it->first) {
          monitored = true;
          break;
        }
      }
      it = monitored ? std::next(it) : corr_levels_.erase(it);
    }
  }
  if (corr_plan_->correlation.empty()) return;

  bool round_counted = false;
  std::uint64_t round = 0;
  for (const EvalPlan::CorrelationGroup& group : corr_plan_->correlation) {
    if (!RunCorrelatorGroup(group, &round_counted, &round)) {
      // A failed gather evaluates nothing and commits nothing for this
      // level: the same round retries at the next firing, and the
      // remaining level groups still evaluate. (The pre-index correlator
      // stamped corr_last_time_ before gathering and returned on the
      // first failure, silently skipping that round's alerts for this
      // level and abandoning every later group.)
      metrics_->correlator_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool IngestEngine::RunCorrelatorGroup(
    const EvalPlan::CorrelationGroup& group, bool* round_counted,
    std::uint64_t* round) {
  using Clock = std::chrono::steady_clock;
  const std::size_t level = group.level;
  CorrLevelState& state = corr_levels_[level];
  if (state.clock_epochs.size() != shards_.size()) {
    state.clock_epochs.assign(shards_.size(), 0);
    state.clocks.assign(shards_.size(), Shard::ClockSummary{});
    state.gathers.resize(shards_.size());
  }

  // Phase 1: the round time is the slowest started stream's latest
  // feature time at this level — the most recent time every started
  // stream can still serve. Streams whose window has not filled yet do
  // not hold the round back; they simply contribute nothing. Per-shard
  // summaries are cached and refreshed only when the shard's feature
  // store saw a put since the last look (dirty epochs), so idle rounds
  // cost one flag read per shard instead of a full clock scan.
  std::uint64_t t_round = 0;
  bool any = false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    if (!shard.has_correlation_core()) continue;
    Shard::ClockSummary summary;
    if (shard.CorrelationClockMinSince(level, state.clock_epochs[i],
                                       &summary)) {
      state.clocks[i] = summary;
      state.clock_epochs[i] = summary.store_epoch;
    }
    const Shard::ClockSummary& cached = state.clocks[i];
    if (!cached.any) continue;
    t_round = any ? std::min(t_round, cached.min_time) : cached.min_time;
    any = true;
  }
  if (!any) return true;
  const auto last = corr_last_time_.find(level);
  if (last != corr_last_time_.end() && last->second == t_round) {
    return true;  // nothing new to evaluate at this level
  }

  if (config_.correlator_fault_hook != nullptr &&
      config_.correlator_fault_hook(level)) {
    return false;
  }

  // Phase 2: gather every shard's feature points and exact z-normed
  // windows at the aligned time into flat reusable buffers. Per-shard
  // mutex-coherent; streams whose data already expired at t_round are
  // skipped.
  const StardustConfig& cfg = config_.query.correlation;
  const std::size_t dims = cfg.coefficients;
  const std::size_t window = group.window;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard::CorrelationGather& gather = state.gathers[i];
    if (!shards_[i]->has_correlation_core()) {
      gather.streams.clear();
      continue;
    }
    if (!shards_[i]->CorrelationGatherAt(level, t_round, &gather).ok()) {
      return false;
    }
    if (!gather.streams.empty() &&
        (gather.dims != dims || gather.window != window)) {
      return false;  // core/plan shape mismatch; retry next round
    }
  }

  // Phase 3: sync the persistent candidate index to this round's feature
  // set — upsert what is present (a no-op for points that did not move),
  // erase what expired. The index survives to the next round; the
  // rebuild-from-scratch tree this replaces cost O(n log n) per round
  // even when nothing moved.
  double cell = config_.query.correlation_grid_cell;
  if (cell <= 0.0) {
    cell = group.max_radius > 0.0 ? group.max_radius : 1.0;
  }
  if (state.index == nullptr || state.cell != cell) {
    state.index = CorrelationIndex::Create(
        config_.query.correlation_index_kind, dims, cell);
    state.cell = cell;
    state.slot_of.clear();
    state.stream_of.clear();
    state.live.clear();
    state.seen_round.clear();
    state.free_slots.clear();
    state.features.clear();
    state.znormed.clear();
  }
  ++state.round_serial;
  state.present.clear();
  Point point(dims);
  for (const Shard::CorrelationGather& gather : state.gathers) {
    for (std::size_t k = 0; k < gather.streams.size(); ++k) {
      const StreamId global = gather.streams[k];
      std::size_t slot;
      const auto it = state.slot_of.find(global);
      if (it != state.slot_of.end()) {
        slot = it->second;
      } else {
        if (!state.free_slots.empty()) {
          slot = state.free_slots.back();
          state.free_slots.pop_back();
        } else {
          slot = state.stream_of.size();
          state.stream_of.push_back(0);
          state.live.push_back(0);
          state.seen_round.push_back(0);
          state.features.resize((slot + 1) * dims);
          state.znormed.resize((slot + 1) * window);
        }
        state.stream_of[slot] = global;
        state.slot_of.emplace(global, slot);
      }
      const double* feature = &gather.features[k * dims];
      std::copy(feature, feature + dims, point.begin());
      state.index->Upsert(slot, point);
      std::copy(feature, feature + dims,
                state.features.begin() + slot * dims);
      const double* znormed = &gather.znormed[k * window];
      std::copy(znormed, znormed + window,
                state.znormed.begin() + slot * window);
      state.live[slot] = 1;
      state.seen_round[slot] = state.round_serial;
      state.present.push_back(slot);
    }
  }
  for (std::size_t slot = 0; slot < state.stream_of.size(); ++slot) {
    if (!state.live[slot] || state.seen_round[slot] == state.round_serial) {
      continue;
    }
    state.index->Erase(slot);
    state.live[slot] = 0;
    state.slot_of.erase(state.stream_of[slot]);
    state.free_slots.push_back(slot);
  }
  // Canonical probe order (ascending global id) so the merged pair sets
  // and alert order are identical however the probe tasks interleave.
  std::sort(state.present.begin(), state.present.end(),
            [&state](std::size_t a, std::size_t b) {
              return state.stream_of[a] < state.stream_of[b];
            });

  // This level produced an evaluable round: account it. Rounds count
  // once per RunCorrelatorRound invocation however many levels evaluate
  // (the per-group skew previously leaked into alert.epoch); per-level
  // counts live in correlator_level_evals.
  if (!*round_counted) {
    *round =
        metrics_->correlator_rounds.fetch_add(1, std::memory_order_relaxed) +
        1;
    *round_counted = true;
  }
  if (level < metrics_->correlator_num_levels) {
    metrics_->correlator_level_evals[level].fetch_add(
        1, std::memory_order_relaxed);
  }
  corr_plan_->correlation_evals.fetch_add(1, std::memory_order_relaxed);

  // Phase 4: probe every present slot against the index, partitioned
  // across the probe pool (the pool is read-only over the synced index).
  // One probe at the group's widest radius serves every query; the exact
  // window distance is computed once per candidate pair and re-filtered
  // per query below. Each unordered pair is emitted by exactly one task
  // (the smaller global id probes, the larger is the candidate), so the
  // per-task outputs are disjoint and their concatenation deterministic.
  struct PairHit {
    StreamId a = 0;
    StreamId b = 0;
    double d2 = 0.0;
  };
  std::vector<std::vector<PairHit>> task_hits(state.present.size());
  const double max_r = group.max_radius;
  const double max_r2 = max_r * max_r;
  const auto probe = [&](std::size_t task) {
    const std::size_t slot = state.present[task];
    const StreamId g_i = state.stream_of[slot];
    const Point q(state.features.begin() + slot * dims,
                  state.features.begin() + (slot + 1) * dims);
    std::vector<std::size_t> candidates;
    state.index->Candidates(q, max_r, &candidates);
    std::vector<PairHit>& out = task_hits[task];
    const double* zi = &state.znormed[slot * window];
    for (const std::size_t cand : candidates) {
      const StreamId g_j = state.stream_of[cand];
      if (g_j <= g_i) continue;  // count each pair once
      const double* zj = &state.znormed[cand * window];
      double d2 = 0.0;
      for (std::size_t x = 0; x < window; ++x) {
        const double d = zi[x] - zj[x];
        d2 += d * d;
      }
      if (d2 > max_r2) continue;
      out.push_back({g_i, g_j, d2});
    }
  };
  if (probe_pool_ != nullptr) {
    probe_pool_->Run(state.present.size(), probe);
  } else {
    for (std::size_t task = 0; task < state.present.size(); ++task) {
      probe(task);
    }
  }

  // Phase 5: serial per-query merge and rising-edge publication, in
  // sorted pair order. Every query of the group re-filters the verified
  // pairs by its own radius. Rounds with fewer than two present features
  // run through here with zero hits on purpose: the query's active set
  // is replaced (emptied) either way, so a pair whose features expired
  // re-alerts when it correlates again. (The pre-index correlator
  // `continue`d before this step, leaving the stale active set pinned
  // and suppressing the re-alert forever.)
  std::vector<PairHit> query_hits;
  for (const auto& q : group.queries) {
    const Clock::time_point start = Clock::now();
    std::set<std::pair<StreamId, StreamId>>& active =
        corr_active_pairs_[q->id];
    const double r2 = q->spec.radius * q->spec.radius;
    query_hits.clear();
    for (const std::vector<PairHit>& hits : task_hits) {
      for (const PairHit& hit : hits) {
        if (hit.d2 <= r2) query_hits.push_back(hit);
      }
    }
    std::sort(query_hits.begin(), query_hits.end(),
              [](const PairHit& x, const PairHit& y) {
                return std::make_pair(x.a, x.b) < std::make_pair(y.a, y.b);
              });
    std::set<std::pair<StreamId, StreamId>> current;
    for (const PairHit& hit : query_hits) {
      current.emplace(hit.a, hit.b);
      if (active.count({hit.a, hit.b}) != 0) continue;  // still correlated
      Alert alert;
      alert.query = q->id;
      alert.kind = QueryKind::kCorrelation;
      alert.stream = hit.a;
      alert.stream_b = hit.b;
      alert.window = window;
      alert.end_time = t_round;
      alert.epoch = *round;
      alert.value = std::sqrt(hit.d2);
      alert.threshold = q->spec.radius;
      q->hits.fetch_add(1, std::memory_order_relaxed);
      // The pair still entered the current set above, so a suppressed
      // alert is not re-raised when the token bucket refills.
      if (!q->AllowAlert()) continue;
      if (alert_bus_->Publish(alert).ok()) {
        metrics_->alerts_published.fetch_add(1, std::memory_order_relaxed);
      }
    }
    active = std::move(current);
    q->evals.fetch_add(1, std::memory_order_relaxed);
    q->eval_nanos.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count()),
        std::memory_order_relaxed);
  }

  // Commit the round time only now that the level fully evaluated; any
  // failure above left it unstamped so the next firing retries.
  corr_last_time_[level] = t_round;
  return true;
}

}  // namespace stardust
