#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/serialize.h"
#include "core/snapshot.h"

namespace stardust {

namespace {

std::atomic<std::uint64_t> g_next_engine_id{1};

/// Producer registration cache: which slot this thread holds on which
/// engine (keyed by a process-unique engine id, so a recycled engine
/// address can never alias a stale entry). A thread rarely talks to more
/// than a couple of engines, so a flat vector beats a hash map.
struct TlsProducerEntry {
  std::uint64_t engine_id = 0;
  std::uint32_t slot = 0;
};
thread_local std::vector<TlsProducerEntry> tls_producer_slots;

}  // namespace

Result<std::unique_ptr<IngestEngine>> IngestEngine::Create(
    const StardustConfig& config, std::vector<WindowThreshold> thresholds,
    std::size_t num_streams, const EngineConfig& engine_config,
    const std::string& restore_dir) {
  SD_RETURN_NOT_OK(engine_config.Validate());
  if (num_streams == 0) {
    return Status::InvalidArgument("need at least one stream");
  }
  const std::size_t num_shards =
      std::min(engine_config.num_shards, num_streams);

  CheckpointManifest manifest;
  const bool restoring = !restore_dir.empty();
  if (restoring) {
    Result<CheckpointManifest> found = FindLatestValidCheckpoint(restore_dir);
    if (!found.ok()) return found.status();
    manifest = std::move(found).value();
    if (manifest.num_streams != num_streams) {
      return Status::InvalidArgument(
          "checkpoint has " + std::to_string(manifest.num_streams) +
          " streams, engine was asked for " + std::to_string(num_streams));
    }
    if (manifest.num_shards != num_shards) {
      return Status::InvalidArgument(
          "checkpoint has " + std::to_string(manifest.num_shards) +
          " shards, engine would run " + std::to_string(num_shards) +
          "; stream placement would not line up");
    }
  }

  std::unique_ptr<IngestEngine> engine(
      new IngestEngine(engine_config, num_streams));
  engine->shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    // Streams s, s + N, s + 2N, ... live on shard s.
    const std::size_t local_streams =
        (num_streams - s + num_shards - 1) / num_shards;
    std::unique_ptr<FleetAggregateMonitor> fleet;
    if (restoring) {
      const std::filesystem::path shard_path =
          std::filesystem::path(restore_dir) / manifest.shards[s].file;
      Result<std::unique_ptr<FleetAggregateMonitor>> restored =
          LoadFleetSnapshot(shard_path.string());
      if (!restored.ok()) return restored.status();
      fleet = std::move(restored).value();
      if (fleet->num_streams() != local_streams) {
        return Status::InvalidArgument(
            "checkpoint shard " + std::to_string(s) +
            " stream count disagrees with placement");
      }
      if (fleet->num_windows() != thresholds.size()) {
        return Status::InvalidArgument(
            "checkpoint window count disagrees with requested thresholds");
      }
      for (std::size_t w = 0; w < thresholds.size(); ++w) {
        if (fleet->threshold(w).window != thresholds[w].window ||
            fleet->threshold(w).threshold != thresholds[w].threshold) {
          return Status::InvalidArgument(
              "checkpoint thresholds disagree with requested thresholds");
        }
      }
    } else {
      Result<std::unique_ptr<FleetAggregateMonitor>> created =
          FleetAggregateMonitor::Create(config, thresholds, local_streams);
      if (!created.ok()) return created.status();
      fleet = std::move(created).value();
    }
    engine->shards_.push_back(std::make_unique<Shard>(
        s, engine_config.max_producers, engine_config.queue_capacity,
        engine_config.overload, engine_config.max_batch, std::move(fleet),
        engine->metrics_.get()));
    if (restoring) {
      engine->shards_.back()->RestoreProgress(manifest.shards[s].epoch,
                                              manifest.shards[s].appended);
    }
  }
  if (restoring) {
    // Continue the checkpoint lineage instead of restarting at 1, so the
    // next checkpoint never collides with (or sorts below) the one just
    // restored.
    engine->next_checkpoint_seq_ = manifest.seq + 1;
    engine->last_checkpoint_seq_.store(manifest.seq,
                                       std::memory_order_release);
  }
  for (auto& shard : engine->shards_) {
    if (engine_config.start_paused) shard->set_paused(true);
    shard->Start();
  }
  engine->StartCheckpointThread();
  return engine;
}

IngestEngine::IngestEngine(const EngineConfig& config,
                           std::size_t num_streams)
    : engine_id_(g_next_engine_id.fetch_add(1, std::memory_order_relaxed)),
      config_(config),
      num_streams_(num_streams),
      metrics_(std::make_unique<EngineMetrics>()) {}

IngestEngine::~IngestEngine() { Stop(); }

Result<std::size_t> IngestEngine::ProducerSlot() {
  for (const TlsProducerEntry& entry : tls_producer_slots) {
    if (entry.engine_id == engine_id_) return std::size_t{entry.slot};
  }
  const std::uint32_t slot =
      next_producer_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= config_.max_producers) {
    return Status::FailedPrecondition(
        "too many producer threads; raise EngineConfig::max_producers");
  }
  tls_producer_slots.push_back({engine_id_, slot});
  return std::size_t{slot};
}

Status IngestEngine::Post(StreamId stream, double value) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  if (stream >= num_streams_) {
    return Status::InvalidArgument("unknown stream");
  }
  Result<std::size_t> slot = ProducerSlot();
  if (!slot.ok()) return slot.status();
  return shards_[ShardOf(stream)]->Push(slot.value(), LocalOf(stream),
                                        value);
}

Status IngestEngine::PostBatch(std::span<const StreamValue> tuples) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  Result<std::size_t> slot = ProducerSlot();
  if (!slot.ok()) return slot.status();
  for (const StreamValue& tuple : tuples) {
    if (tuple.stream >= num_streams_) {
      return Status::InvalidArgument("unknown stream");
    }
    SD_RETURN_NOT_OK(shards_[ShardOf(tuple.stream)]->Push(
        slot.value(), LocalOf(tuple.stream), tuple.value));
  }
  return Status::OK();
}

Status IngestEngine::Flush() {
  std::vector<std::uint64_t> targets;
  targets.reserve(shards_.size());
  for (const auto& shard : shards_) targets.push_back(shard->enqueued());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    while (shards_[s]->retired() < targets[s]) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  for (const auto& shard : shards_) {
    SD_RETURN_NOT_OK(shard->worker_status());
  }
  return Status::OK();
}

Status IngestEngine::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) {
    return Status::OK();
  }
  StopCheckpointThread();
  accepting_.store(false, std::memory_order_release);
  for (auto& shard : shards_) {
    shard->set_paused(false);  // a paused worker must wake up to drain
    shard->RequestStop();
  }
  for (auto& shard : shards_) shard->Join();
  for (const auto& shard : shards_) {
    SD_RETURN_NOT_OK(shard->worker_status());
  }
  return Status::OK();
}

void IngestEngine::Pause() {
  for (auto& shard : shards_) shard->set_paused(true);
}

void IngestEngine::Resume() {
  for (auto& shard : shards_) shard->set_paused(false);
}

AlarmStats IngestEngine::StreamTotal(StreamId stream) const {
  SD_CHECK(stream < num_streams_);
  return shards_[ShardOf(stream)]->StreamTotal(LocalOf(stream), nullptr);
}

AlarmStats IngestEngine::FleetTotal(
    std::vector<ShardStamp>* stamps) const {
  if (stamps != nullptr) {
    stamps->clear();
    stamps->reserve(shards_.size());
  }
  AlarmStats total;
  for (const auto& shard : shards_) {
    ShardStamp stamp;
    const AlarmStats s = shard->ShardTotal(&stamp);
    total.candidates += s.candidates;
    total.true_alarms += s.true_alarms;
    total.checks += s.checks;
    if (stamps != nullptr) stamps->push_back(stamp);
  }
  return total;
}

Result<std::vector<StreamId>> IngestEngine::CurrentlyAlarming(
    std::size_t window_index, std::vector<ShardStamp>* stamps) const {
  if (stamps != nullptr) {
    stamps->clear();
    stamps->reserve(shards_.size());
  }
  std::vector<StreamId> alarming;
  for (const auto& shard : shards_) {
    ShardStamp stamp;
    Result<std::vector<StreamId>> local =
        shard->CurrentlyAlarming(window_index, &stamp);
    if (!local.ok()) return local.status();
    for (const StreamId local_id : local.value()) {
      // Inverse of the placement map: global = local * N + shard.
      alarming.push_back(static_cast<StreamId>(
          local_id * shards_.size() + shard->index()));
    }
    if (stamps != nullptr) stamps->push_back(stamp);
  }
  std::sort(alarming.begin(), alarming.end());
  return alarming;
}

std::uint64_t IngestEngine::StreamAppendCount(StreamId stream) const {
  SD_CHECK(stream < num_streams_);
  return shards_[ShardOf(stream)]->StreamAppendCount(LocalOf(stream));
}

std::vector<ShardMetricsSnapshot> IngestEngine::ShardMetrics() const {
  std::vector<ShardMetricsSnapshot> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->MetricsSnapshot());
  return out;
}

std::string IngestEngine::MetricsJson() const {
  return EngineMetricsJson(*metrics_, ShardMetrics());
}

Status IngestEngine::Checkpoint(const std::string& dir) {
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("cannot create checkpoint directory " + dir +
                            ": " + ec.message());
  }

  const std::uint64_t seq = next_checkpoint_seq_;
  CheckpointManifest manifest;
  manifest.seq = seq;
  manifest.num_streams = num_streams_;
  manifest.num_shards = shards_.size();
  manifest.queue_capacity = config_.queue_capacity;
  manifest.max_producers = config_.max_producers;
  manifest.max_batch = config_.max_batch;
  manifest.overload = static_cast<std::uint8_t>(config_.overload);
  manifest.shards.reserve(shards_.size());

  // Serialize and persist shard by shard. Each SerializeState holds only
  // that shard's state mutex, so ingestion keeps flowing on every other
  // shard (and on this one, into its rings) while the checkpoint runs.
  for (const auto& shard : shards_) {
    ShardStamp stamp;
    const std::string bytes = shard->SerializeState(&stamp);
    CheckpointShardEntry entry;
    entry.file = CheckpointShardFileName(shard->index(), seq);
    entry.epoch = stamp.epoch;
    entry.appended = stamp.appended;
    entry.checksum = Fnv1a(bytes);
    const std::filesystem::path path = std::filesystem::path(dir) / entry.file;
    const Status written = AtomicWriteFile(path.string(), bytes);
    if (!written.ok()) {
      metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      return written;
    }
    manifest.shards.push_back(std::move(entry));
  }

  // The manifest is the commit point: until this rename lands, recovery
  // still resolves to the previous checkpoint.
  const std::filesystem::path manifest_path =
      std::filesystem::path(dir) / CheckpointManifestFileName(seq);
  const Status committed =
      AtomicWriteFile(manifest_path.string(), SerializeManifest(manifest));
  if (!committed.ok()) {
    metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
    return committed;
  }

  const std::uint64_t prev =
      last_checkpoint_seq_.load(std::memory_order_relaxed);
  next_checkpoint_seq_ = seq + 1;
  last_checkpoint_seq_.store(seq, std::memory_order_release);
  metrics_->checkpoints.fetch_add(1, std::memory_order_relaxed);
  // Keep the new checkpoint plus the previous one as a fallback; drop
  // anything older and any .tmp leftovers of interrupted attempts.
  GarbageCollectCheckpoints(dir, prev != 0 ? prev : seq);
  return Status::OK();
}

void IngestEngine::StartCheckpointThread() {
  if (config_.checkpoint_period_ms == 0) return;
  checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
}

void IngestEngine::StopCheckpointThread() {
  if (!checkpoint_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(checkpoint_cv_mu_);
    checkpoint_stop_ = true;
  }
  checkpoint_cv_.notify_all();
  checkpoint_thread_.join();
}

void IngestEngine::CheckpointLoop() {
  const auto period = std::chrono::milliseconds(config_.checkpoint_period_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(checkpoint_cv_mu_);
      if (checkpoint_cv_.wait_for(lock, period,
                                  [this] { return checkpoint_stop_; })) {
        return;
      }
    }
    // Failures are counted in metrics (checkpoint_failures) and retried
    // at the next period; the background thread never takes the engine
    // down over a transient filesystem error.
    (void)Checkpoint(config_.checkpoint_dir);
  }
}

}  // namespace stardust
